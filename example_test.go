package denovosync_test

import (
	"fmt"

	"denovosync"
)

// The simplest possible simulation: two threads hand a value across a
// synchronization flag on a DeNovoSync machine.
func ExampleNewMachine() {
	space := denovosync.NewSpace()
	flag := space.AllocPadded(space.Region("sync"))
	data := space.AllocAligned(1, space.Region("data"))

	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync, space)
	var got uint64
	_, err := m.Run("handoff", func(t *denovosync.Thread) {
		switch t.ID {
		case 0:
			t.Store(data, 42)
			t.SyncStore(flag, 1) // release: orders the data store before it
		case 1:
			t.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
			t.SelfInvalidate(denovosync.NewRegionSet(space.Region("data")))
			got = t.Load(data)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(got)
	// Output: 42
}

// Locks from the synchronization library provide mutual exclusion on any
// protocol; on DeNovo machines the acquire self-invalidates the protected
// regions.
func ExampleTATASLock() {
	space := denovosync.NewSpace()
	region := space.Region("counter")
	counter := space.AllocAligned(1, region)
	lock := denovosync.NewTATASLock(space, space.Region("lock"),
		denovosync.NewRegionSet(region), true)

	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync0, space)
	_, err := m.Run("count", func(t *denovosync.Thread) {
		for i := 0; i < 5; i++ {
			tk := lock.Acquire(t)
			v := t.Load(counter)
			t.Store(counter, v+1)
			t.Fence()
			lock.Release(t, tk)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Store.Read(counter))
	// Output: 80
}

// The Michael-Scott queue runs unchanged on all three protocols; the
// machine's statistics expose the protocol-level differences.
func ExampleMSQueue() {
	space := denovosync.NewSpace()
	m := denovosync.NewMachine(denovosync.Params16(), denovosync.MESI, space)
	q := denovosync.NewMSQueue(space, m.Store)
	total := make([]int, 16)
	_, err := m.Run("queue", func(t *denovosync.Thread) {
		q.Enqueue(t, uint64(t.ID))
		if _, ok := q.Dequeue(t); ok {
			total[t.ID] = 1
		}
	})
	if err != nil {
		panic(err)
	}
	n := 0
	for _, v := range total {
		n += v
	}
	fmt.Println(n)
	// Output: 16
}

// RunKernel drives one of the paper's 24 kernels with the evaluation
// protocol of §5.3.1 (dummy computation between iterations, closing
// barrier).
func ExampleRunKernel() {
	k, _ := denovosync.KernelByID("bar-tree")
	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync, denovosync.NewSpace())
	rs, err := denovosync.RunKernel(k, m, denovosync.KernelConfig{
		Cores: 16, Iters: 5, EqChecks: -1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rs.ExecTime > 0, rs.TotalTraffic > 0)
	// Output: true true
}
