package denovosync_test

import (
	"strings"
	"testing"

	"denovosync"
)

// TestQuickstartAPI exercises the documented public-API quick start.
func TestQuickstartAPI(t *testing.T) {
	space := denovosync.NewSpace()
	flag := space.AllocPadded(space.Region("sync"))
	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync, space)
	var got uint64
	rs, err := m.Run("handoff", func(th *denovosync.Thread) {
		switch th.ID {
		case 0:
			th.Compute(100)
			th.SyncStore(flag, 1)
		case 1:
			got = th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("consumer read %d", got)
	}
	if rs.ExecTime == 0 {
		t.Fatal("zero exec time")
	}
}

// TestPublicSyncLibrary drives every exported synchronization construct
// through the façade on one machine.
func TestPublicSyncLibrary(t *testing.T) {
	space := denovosync.NewSpace()
	dataRegion := space.Region("data")
	data := space.AllocAligned(4, dataRegion)
	lk := denovosync.NewTATASLock(space, space.Region("lk"), denovosync.NewRegionSet(dataRegion), true)
	al := denovosync.NewArrayLock(space, space.Region("al"), 0, 16)
	bar := denovosync.NewTreeBarrier(space, space.Region("bar"), 0, 16, 2, 2)
	cb := denovosync.NewCentralBarrier(space, space.Region("cbar"), 0, 16)

	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync0, space)
	m.Store.Write(al.SlotAddr(0), 1)
	q := denovosync.NewMSQueue(space, m.Store)
	pq := denovosync.NewPLJQueue(space, m.Store)
	ts := denovosync.NewTreiberStack(space, m.Store)
	hs := denovosync.NewHerlihyStack(space, m.Store, 80)
	hh := denovosync.NewHerlihyHeap(space, m.Store, 48)
	fc := denovosync.NewFAICounter(space, m.Store)

	_, err := m.Run("library", func(th *denovosync.Thread) {
		tk := lk.Acquire(th)
		v := th.Load(data)
		th.Store(data, v+1)
		th.Fence()
		lk.Release(th, tk)

		tk = al.Acquire(th)
		th.Compute(10)
		al.Release(th, tk)

		bar.Wait(th)
		q.Enqueue(th, uint64(th.ID))
		pq.Enqueue(th, uint64(th.ID))
		ts.Push(th, uint64(th.ID))
		hs.Push(th, uint64(th.ID))
		hh.Insert(th, uint64(th.ID))
		fc.Increment(th)
		cb.Wait(th)
		if _, ok := q.Dequeue(th); !ok {
			panic("queue lost an element")
		}
		bar.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Read(data); got != 16 {
		t.Fatalf("lock-protected counter = %d", got)
	}
}

// TestKernelAndAppFacades spot-check the evaluation entry points.
func TestKernelAndAppFacades(t *testing.T) {
	if len(denovosync.Kernels()) != 24 {
		t.Fatal("kernel façade broken")
	}
	if len(denovosync.Apps()) != 13 {
		t.Fatal("app façade broken")
	}
	k, ok := denovosync.KernelByID("bar-tree")
	if !ok {
		t.Fatal("KernelByID broken")
	}
	m := denovosync.NewMachine(denovosync.Params16(), denovosync.MESI, denovosync.NewSpace())
	if _, err := denovosync.RunKernel(k, m, denovosync.KernelConfig{Cores: 16, Iters: 3, EqChecks: -1}); err != nil {
		t.Fatal(err)
	}
	a, ok := denovosync.AppByID("ocean")
	if !ok {
		t.Fatal("AppByID broken")
	}
	m2 := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync, denovosync.NewSpace())
	if _, err := denovosync.RunApp(a, m2, 8); err != nil {
		t.Fatal(err)
	}
}

// TestFigureRendering runs a tiny Figure 4 and checks the render shape.
func TestFigureRendering(t *testing.T) {
	f, err := denovosync.Fig4(16, denovosync.FigureOptions{Scale: 25})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Array locks", "single Q", "heap", "large CS", "SYNCH", "execution time", "network traffic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	f.CSV(&csv)
	if lines := strings.Count(csv.String(), "\n"); lines != 1+6*3 {
		t.Fatalf("CSV rows = %d, want 19", lines)
	}
	if e, tr := f.GeoMeanVsMESI(denovosync.DeNovoSync); e <= 0 || tr <= 0 || tr >= 1.5 {
		t.Fatalf("implausible geomeans: %f %f", e, tr)
	}
}
