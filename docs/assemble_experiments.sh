#!/bin/sh
# Assemble EXPERIMENTS.md from the archived run:
#   results.csv          (paperbench -csv — canonical figure data)
#   ablations.txt        (paperbench -ablate runs)
#   docs/commentary.md   (per-figure analysis)
# Usage: sh docs/assemble_experiments.sh
set -e
cd "$(dirname "$0")/.."

go run ./cmd/report -csv results.csv -full > experiments_raw.txt

{
	# Preamble up to the results marker.
	sed -n '1,/<!-- RESULTS -->/p' EXPERIMENTS.md | sed '$d'

	echo "## Figures 3-7 — measured ratios (vs MESI, lower is better)"
	echo
	go run ./cmd/report -csv results.csv
	echo "Full normalized component tables: experiments_raw.txt (regenerable"
	echo "with \`go run ./cmd/report -csv results.csv -full\`)."
	echo
	echo "## Paper-claim verdicts"
	echo
	echo '```'
	go run ./cmd/report -csv results.csv -claims
	echo '```'
	echo
	# Per-figure commentary (skip its title line).
	tail -n +2 docs/commentary.md
	echo
	echo "## Sensitivity studies"
	echo
	echo "Raw tables in ablations.txt; geometric-mean summaries:"
	echo
	echo '```'
	awk '/^=== ABLATION/{name=$0} /geomean/{if(name!=""){print name; name=""} print}' ablations.txt
	echo '```'
	echo
	# Everything after the ablations marker.
	sed -n '/<!-- ABLATIONS -->/,$p' EXPERIMENTS.md | tail -n +2
} > EXPERIMENTS.md.new
mv EXPERIMENTS.md.new EXPERIMENTS.md
echo "EXPERIMENTS.md assembled."
