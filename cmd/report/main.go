// Command report digests the machine-readable results emitted by
// `paperbench -csv` into the per-figure markdown tables embedded in
// EXPERIMENTS.md (one row per workload with the DS0/DS execution-time and
// network-traffic ratios against MESI), and optionally re-evaluates the
// paper's qualitative claims against the archived numbers.
//
// Usage:
//
//	paperbench -csv results.csv
//	report -csv results.csv > tables.md
//	report -csv results.csv -claims
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"denovosync"
)

type row struct {
	figure, workload, protocol string
	cores                      int
	exec, traffic              float64
	times                      []float64 // per TimeComponent
	classes                    []float64 // per MsgClass
}

func main() {
	path := flag.String("csv", "results.csv", "results file from paperbench -csv")
	claims := flag.Bool("claims", false, "evaluate the paper's qualitative claims instead of printing tables")
	full := flag.Bool("full", false, "print full normalized component tables (like paperbench output)")
	flag.Parse()

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	recs, err := r.ReadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	var rows []row
	col := map[string]int{}
	for _, rec := range recs {
		if rec[0] == "figure" { // header (repeats per figure)
			for i, name := range rec {
				col[name] = i
			}
			continue
		}
		exec, _ := strconv.ParseFloat(rec[col["exec_cycles"]], 64)
		traffic, _ := strconv.ParseFloat(rec[col["total_traffic"]], 64)
		cores, _ := strconv.Atoi(rec[col["cores"]])
		rw := row{
			figure:   rec[col["figure"]],
			workload: rec[col["workload"]],
			protocol: rec[col["protocol"]],
			cores:    cores,
			exec:     exec,
			traffic:  traffic,
		}
		for _, name := range []string{"time_non-synch", "time_compute", "time_memory_stall", "time_sw_backoff", "time_hw_backoff", "time_barrier"} {
			v, _ := strconv.ParseFloat(rec[col[name]], 64)
			rw.times = append(rw.times, v)
		}
		for _, name := range []string{"traffic_LD", "traffic_ST", "traffic_WB", "traffic_Inv", "traffic_SYNCH"} {
			v, _ := strconv.ParseFloat(rec[col[name]], 64)
			rw.classes = append(rw.classes, v)
		}
		rows = append(rows, rw)
	}

	// Group by figure, preserving first-seen order.
	var figures []string
	byFig := map[string][]row{}
	for _, rw := range rows {
		if _, ok := byFig[rw.figure]; !ok {
			figures = append(figures, rw.figure)
		}
		byFig[rw.figure] = append(byFig[rw.figure], rw)
	}

	if *full {
		printFull(figures, byFig)
		return
	}

	if *claims {
		totalPass, totalDev := 0, 0
		for _, fig := range figures {
			f := rebuild(fig, byFig[fig])
			if len(denovosync.ClaimsFor(f)) == 0 {
				continue
			}
			fmt.Printf("-- %s --\n", fig)
			p, d := denovosync.CheckClaims(f, os.Stdout)
			totalPass += p
			totalDev += d
		}
		fmt.Printf("\ntotal: %d claims hold, %d deviate\n", totalPass, totalDev)
		return
	}

	for _, fig := range figures {
		rs := byFig[fig]
		// Index MESI baselines.
		base := map[string]row{}
		for _, rw := range rs {
			if rw.protocol == "M" {
				base[rw.workload] = rw
			}
		}
		hasDS0 := false
		for _, rw := range rs {
			if rw.protocol == "DS0" {
				hasDS0 = true
			}
		}
		fmt.Printf("### %s\n\n", fig)
		if hasDS0 {
			fmt.Println("| workload | DS0 exec | DS exec | DS0 traffic | DS traffic |")
			fmt.Println("|---|---|---|---|---|")
		} else {
			fmt.Println("| workload | DS exec | DS traffic |")
			fmt.Println("|---|---|---|")
		}
		var order []string
		seen := map[string]bool{}
		vals := map[string]map[string]row{}
		for _, rw := range rs {
			if !seen[rw.workload] {
				seen[rw.workload] = true
				order = append(order, rw.workload)
				vals[rw.workload] = map[string]row{}
			}
			vals[rw.workload][rw.protocol] = rw
		}
		ratio := func(w, prot string, traffic bool) string {
			b, ok := base[w]
			v, ok2 := vals[w][prot]
			if !ok || !ok2 {
				return "—"
			}
			num, den := v.exec, b.exec
			if traffic {
				num, den = v.traffic, b.traffic
			}
			if den == 0 {
				return "—"
			}
			return fmt.Sprintf("%.2fx", num/den)
		}
		for _, w := range order {
			if hasDS0 {
				fmt.Printf("| %s | %s | %s | %s | %s |\n", w,
					ratio(w, "DS0", false), ratio(w, "DS", false),
					ratio(w, "DS0", true), ratio(w, "DS", true))
			} else {
				fmt.Printf("| %s | %s | %s |\n", w,
					ratio(w, "DS", false), ratio(w, "DS", true))
			}
		}
		fmt.Println()
	}
}

// rebuild reconstructs a harness Figure (exec/traffic only) from CSV rows
// so claims can be re-evaluated offline.
func rebuild(id string, rs []row) *denovosync.Figure {
	f := &denovosync.Figure{ID: id}
	for _, rw := range rs {
		if f.Cores == 0 {
			f.Cores = rw.cores
		}
		var prot denovosync.Protocol
		switch rw.protocol {
		case "M":
			prot = denovosync.MESI
		case "DS0":
			prot = denovosync.DeNovoSync0
		case "DS":
			prot = denovosync.DeNovoSync
		default:
			continue // labeled ablation variants carry no claims
		}
		st := &denovosync.RunStats{
			Workload:     rw.workload,
			Cores:        rw.cores,
			ExecTime:     denovosync.Cycle(rw.exec),
			TotalTraffic: uint64(rw.traffic),
		}
		f.Rows = append(f.Rows, denovosync.FigureRow{Workload: rw.workload, Protocol: prot, Stats: st})
	}
	return f
}

// printFull reproduces paperbench's normalized component tables from the
// archived CSV (used to rebuild experiments_raw.txt if the live output is
// lost or garbled).
func printFull(figures []string, byFig map[string][]row) {
	pct := func(v, norm float64) string {
		if norm == 0 {
			return "     —"
		}
		return fmt.Sprintf("%6.1f", v/norm*100)
	}
	for _, fig := range figures {
		rs := byFig[fig]
		base := map[string]row{}
		var order []string
		for _, rw := range rs {
			if rw.protocol == "M" {
				if _, ok := base[rw.workload]; !ok {
					order = append(order, rw.workload)
				}
				base[rw.workload] = rw
			}
		}
		fmt.Printf("%s — execution time (%% of MESI)\n", fig)
		fmt.Printf("%-26s %-5s %7s | %8s %8s %8s %8s %8s %8s\n", "workload", "prot", "total",
			"nonsynch", "compute", "memstall", "swbkoff", "hwbkoff", "barrier")
		for _, w := range order {
			for _, rw := range rs {
				if rw.workload != w {
					continue
				}
				b := base[w]
				fmt.Printf("%-26s %-5s %7s |", w, rw.protocol, pct(rw.exec, b.exec))
				for _, v := range rw.times {
					fmt.Printf(" %8s", pct(v, b.exec))
				}
				fmt.Println()
			}
		}
		fmt.Printf("\n%s — network traffic (%% of MESI)\n", fig)
		fmt.Printf("%-26s %-5s %7s | %8s %8s %8s %8s %8s\n", "workload", "prot", "total",
			"LD", "ST", "WB", "Inv", "SYNCH")
		for _, w := range order {
			for _, rw := range rs {
				if rw.workload != w {
					continue
				}
				b := base[w]
				fmt.Printf("%-26s %-5s %7s |", w, rw.protocol, pct(rw.traffic, b.traffic))
				for _, v := range rw.classes {
					fmt.Printf(" %8s", pct(v, b.traffic))
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}
}
