// Command report digests machine-readable results into the per-figure
// markdown tables embedded in EXPERIMENTS.md (one row per workload with
// the DS0/DS execution-time and network-traffic ratios against MESI),
// and optionally re-evaluates the paper's qualitative claims against the
// archived numbers. It reads either the CSV emitted by `paperbench -csv`
// or an internal/exp JSONL result journal directly.
//
// Usage:
//
//	paperbench -csv results.csv
//	report -csv results.csv > tables.md
//	report -csv results.csv -claims
//	report -journal run.jsonl -o tables.md
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"denovosync"
	"denovosync/internal/exp"
)

type row struct {
	figure, workload, protocol string
	cores                      int
	exec, traffic              float64
	times                      []float64 // per TimeComponent
	classes                    []float64 // per MsgClass
}

func main() {
	path := flag.String("csv", "", "results file from paperbench -csv")
	journalPath := flag.String("journal", "", "JSONL result journal from exp/paperbench/sweep")
	outPath := flag.String("o", "", "output file (default stdout)")
	claims := flag.Bool("claims", false, "evaluate the paper's qualitative claims instead of printing tables")
	full := flag.Bool("full", false, "print full normalized component tables (like paperbench output)")
	flag.Parse()

	var rows []row
	var err error
	switch {
	case *journalPath != "" && *path != "":
		fatal(fmt.Errorf("-csv and -journal are mutually exclusive"))
	case *journalPath != "":
		rows, err = rowsFromJournal(*journalPath)
	default:
		if *path == "" {
			*path = "results.csv"
		}
		rows, err = rowsFromCSV(*path)
	}
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		// Checked close: a write error must fail the run, not truncate
		// the tables silently.
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	// Group by figure, preserving first-seen order.
	var figures []string
	byFig := map[string][]row{}
	for _, rw := range rows {
		if _, ok := byFig[rw.figure]; !ok {
			figures = append(figures, rw.figure)
		}
		byFig[rw.figure] = append(byFig[rw.figure], rw)
	}

	if *full {
		printFull(out, figures, byFig)
		return
	}

	if *claims {
		totalPass, totalDev := 0, 0
		for _, fig := range figures {
			f := rebuild(fig, byFig[fig])
			if len(denovosync.ClaimsFor(f)) == 0 {
				continue
			}
			fmt.Fprintf(out, "-- %s --\n", fig)
			p, d := denovosync.CheckClaims(f, out)
			totalPass += p
			totalDev += d
		}
		fmt.Fprintf(out, "\ntotal: %d claims hold, %d deviate\n", totalPass, totalDev)
		return
	}

	for _, fig := range figures {
		rs := byFig[fig]
		// Index MESI baselines.
		base := map[string]row{}
		for _, rw := range rs {
			if rw.protocol == "M" {
				base[rw.workload] = rw
			}
		}
		hasDS0 := false
		for _, rw := range rs {
			if rw.protocol == "DS0" {
				hasDS0 = true
			}
		}
		fmt.Fprintf(out, "### %s\n\n", fig)
		if hasDS0 {
			fmt.Fprintln(out, "| workload | DS0 exec | DS exec | DS0 traffic | DS traffic |")
			fmt.Fprintln(out, "|---|---|---|---|---|")
		} else {
			fmt.Fprintln(out, "| workload | DS exec | DS traffic |")
			fmt.Fprintln(out, "|---|---|---|")
		}
		var order []string
		seen := map[string]bool{}
		vals := map[string]map[string]row{}
		for _, rw := range rs {
			if !seen[rw.workload] {
				seen[rw.workload] = true
				order = append(order, rw.workload)
				vals[rw.workload] = map[string]row{}
			}
			vals[rw.workload][rw.protocol] = rw
		}
		ratio := func(w, prot string, traffic bool) string {
			b, ok := base[w]
			v, ok2 := vals[w][prot]
			if !ok || !ok2 {
				return "—"
			}
			num, den := v.exec, b.exec
			if traffic {
				num, den = v.traffic, b.traffic
			}
			if den == 0 {
				return "—"
			}
			return fmt.Sprintf("%.2fx", num/den)
		}
		for _, w := range order {
			if hasDS0 {
				fmt.Fprintf(out, "| %s | %s | %s | %s | %s |\n", w,
					ratio(w, "DS0", false), ratio(w, "DS", false),
					ratio(w, "DS0", true), ratio(w, "DS", true))
			} else {
				fmt.Fprintf(out, "| %s | %s | %s |\n", w,
					ratio(w, "DS", false), ratio(w, "DS", true))
			}
		}
		fmt.Fprintln(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}

// rowsFromCSV parses the `paperbench -csv` format.
func rowsFromCSV(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	recs, err := r.ReadAll()
	if err != nil {
		return nil, err
	}

	var rows []row
	col := map[string]int{}
	for _, rec := range recs {
		if rec[0] == "figure" { // header (repeats per figure)
			for i, name := range rec {
				col[name] = i
			}
			continue
		}
		exec, _ := strconv.ParseFloat(rec[col["exec_cycles"]], 64)
		traffic, _ := strconv.ParseFloat(rec[col["total_traffic"]], 64)
		cores, _ := strconv.Atoi(rec[col["cores"]])
		rw := row{
			figure:   rec[col["figure"]],
			workload: rec[col["workload"]],
			protocol: rec[col["protocol"]],
			cores:    cores,
			exec:     exec,
			traffic:  traffic,
		}
		for _, name := range []string{"time_non-synch", "time_compute", "time_memory_stall", "time_sw_backoff", "time_hw_backoff", "time_barrier"} {
			v, _ := strconv.ParseFloat(rec[col[name]], 64)
			rw.times = append(rw.times, v)
		}
		for _, name := range []string{"traffic_LD", "traffic_ST", "traffic_WB", "traffic_Inv", "traffic_SYNCH"} {
			v, _ := strconv.ParseFloat(rec[col[name]], 64)
			rw.classes = append(rw.classes, v)
		}
		rows = append(rows, rw)
	}
	return rows, nil
}

// protoRank orders the paper's protocol columns (M, DS0, DS, variants).
func protoRank(p string) int {
	switch p {
	case "M":
		return 0
	case "DS0":
		return 1
	case "DS":
		return 2
	}
	return 3 // labeled ablation variants after the plain protocols
}

// rowsFromJournal builds report rows straight from an exp result journal.
// Journal line order is execution order (nondeterministic under the
// worker pool), so rows are sorted by (figure, workload, protocol rank,
// label) for a deterministic report.
func rowsFromJournal(path string) ([]row, error) {
	recs, err := exp.LoadJournal(path)
	if err != nil {
		return nil, err
	}
	latest := map[string]*exp.Record{}
	var keys []string
	for _, rec := range recs {
		if _, ok := latest[rec.Key]; !ok {
			keys = append(keys, rec.Key)
		}
		latest[rec.Key] = rec // later lines win (e.g. a retried failure)
	}
	var rows []row
	for _, k := range keys {
		rec := latest[k]
		if rec.Status != exp.StatusOK || rec.Stats == nil {
			continue
		}
		r := rec.Run
		workload := r.Display
		if workload == "" {
			workload = r.Workload
		}
		protocol := r.Label
		if protocol == "" {
			protocol = r.Protocol
		}
		rw := row{
			figure:   rec.Fig,
			workload: workload,
			protocol: protocol,
			cores:    r.Cores,
			exec:     float64(rec.Stats.ExecTime),
			traffic:  float64(rec.Stats.TotalTraffic),
		}
		rw.times = append(rw.times, rec.Stats.Time[:]...)
		for _, v := range rec.Stats.Traffic {
			rw.classes = append(rw.classes, float64(v))
		}
		rows = append(rows, rw)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.figure != b.figure {
			return a.figure < b.figure
		}
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		ra, rb := protoRank(a.protocol), protoRank(b.protocol)
		if ra != rb {
			return ra < rb
		}
		return a.protocol < b.protocol
	})
	return rows, nil
}

// rebuild reconstructs a harness Figure (exec/traffic only) from CSV rows
// so claims can be re-evaluated offline.
func rebuild(id string, rs []row) *denovosync.Figure {
	f := &denovosync.Figure{ID: id}
	for _, rw := range rs {
		if f.Cores == 0 {
			f.Cores = rw.cores
		}
		var prot denovosync.Protocol
		switch rw.protocol {
		case "M":
			prot = denovosync.MESI
		case "DS0":
			prot = denovosync.DeNovoSync0
		case "DS":
			prot = denovosync.DeNovoSync
		default:
			continue // labeled ablation variants carry no claims
		}
		st := &denovosync.RunStats{
			Workload:     rw.workload,
			Cores:        rw.cores,
			ExecTime:     denovosync.Cycle(rw.exec),
			TotalTraffic: uint64(rw.traffic),
		}
		f.Rows = append(f.Rows, denovosync.FigureRow{Workload: rw.workload, Protocol: prot, Stats: st})
	}
	return f
}

// printFull reproduces paperbench's normalized component tables from the
// archived CSV (used to rebuild experiments_raw.txt if the live output is
// lost or garbled).
func printFull(out io.Writer, figures []string, byFig map[string][]row) {
	pct := func(v, norm float64) string {
		if norm == 0 {
			return "     —"
		}
		return fmt.Sprintf("%6.1f", v/norm*100)
	}
	for _, fig := range figures {
		rs := byFig[fig]
		base := map[string]row{}
		var order []string
		for _, rw := range rs {
			if rw.protocol == "M" {
				if _, ok := base[rw.workload]; !ok {
					order = append(order, rw.workload)
				}
				base[rw.workload] = rw
			}
		}
		fmt.Fprintf(out, "%s — execution time (%% of MESI)\n", fig)
		fmt.Fprintf(out, "%-26s %-5s %7s | %8s %8s %8s %8s %8s %8s\n", "workload", "prot", "total",
			"nonsynch", "compute", "memstall", "swbkoff", "hwbkoff", "barrier")
		for _, w := range order {
			for _, rw := range rs {
				if rw.workload != w {
					continue
				}
				b := base[w]
				fmt.Fprintf(out, "%-26s %-5s %7s |", w, rw.protocol, pct(rw.exec, b.exec))
				for _, v := range rw.times {
					fmt.Fprintf(out, " %8s", pct(v, b.exec))
				}
				fmt.Fprintln(out)
			}
		}
		fmt.Fprintf(out, "\n%s — network traffic (%% of MESI)\n", fig)
		fmt.Fprintf(out, "%-26s %-5s %7s | %8s %8s %8s %8s %8s\n", "workload", "prot", "total",
			"LD", "ST", "WB", "Inv", "SYNCH")
		for _, w := range order {
			for _, rw := range rs {
				if rw.workload != w {
					continue
				}
				b := base[w]
				fmt.Fprintf(out, "%-26s %-5s %7s |", w, rw.protocol, pct(rw.traffic, b.traffic))
				for _, v := range rw.classes {
					fmt.Fprintf(out, " %8s", pct(v, b.traffic))
				}
				fmt.Fprintln(out)
			}
		}
		fmt.Fprintln(out)
	}
}
