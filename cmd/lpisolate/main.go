// Command lpisolate maintains and enforces the ownership atlas
// (docs/isolation/ownership.json): the static cross-tile isolation
// certificate proving the simulated machine is PDES-partitionable.
//
// Modes:
//
//	-mode extract    regenerate docs/isolation/ownership.json
//	-mode check      fail if the checked-in golden drifts from the source,
//	                 or if the analysis reports any unannotated finding
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"denovosync/internal/lint/atlas"
	"denovosync/internal/lint/lpisolate"
)

func main() {
	mode := flag.String("mode", "check", "extract | check")
	dirFlag := flag.String("dir", "", "module root (default: walk up from cwd)")
	flag.Parse()

	moduleDir := *dirFlag
	if moduleDir == "" {
		d, err := atlas.FindModuleDir(".")
		if err != nil {
			fatal(err)
		}
		moduleDir = d
	}
	goldenPath := filepath.Join(moduleDir, "docs", "isolation", "ownership.json")

	fresh, err := lpisolate.ExtractDir(moduleDir, lpisolate.DefaultModel())
	if err != nil {
		fatal(err)
	}

	ok := true
	switch *mode {
	case "extract":
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			fatal(err)
		}
		if err := fresh.WriteFile(goldenPath); err != nil {
			fatal(err)
		}
		fmt.Printf("lpisolate: wrote %s (%d locations, %d crossings, %d findings)\n",
			goldenPath, len(fresh.Locations), len(fresh.Crossings), len(fresh.Findings))
		for _, f := range fresh.Findings {
			fmt.Printf("lpisolate: FINDING %s: %s\n", f.Pos, f.Message)
		}
	case "check":
		for _, f := range fresh.Findings {
			fmt.Printf("lpisolate: FINDING %s: %s\n", f.Pos, f.Message)
		}
		if len(fresh.Findings) > 0 {
			fmt.Printf("lpisolate: %d isolation findings — fix the crossing or audit it with //lpisolate:boundary(reason)\n",
				len(fresh.Findings))
			ok = false
		}
		golden, err := lpisolate.ReadFile(goldenPath)
		if err != nil {
			fmt.Printf("lpisolate: %v (run `make isolate`)\n", err)
			ok = false
			break
		}
		diffs := lpisolate.Diff(golden, fresh)
		for _, d := range diffs {
			fmt.Printf("lpisolate: atlas drift: %s\n", d)
		}
		if len(diffs) > 0 || !lpisolate.Equal(golden, fresh) {
			fmt.Printf("lpisolate: ownership atlas is stale — run `make isolate` and commit docs/isolation/ownership.json\n")
			ok = false
		} else {
			fmt.Printf("lpisolate: ownership atlas up to date (%d locations, %d crossings, 0 findings)\n",
				len(golden.Locations), len(golden.Crossings))
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpisolate:", err)
	os.Exit(1)
}
