// Command protocheck exhaustively model-checks abstract versions of both
// coherence protocols and prints the state-space comparison behind the
// paper's simplicity claim (§2.2, after Komuravelli et al. [21]): DeNovo
// has three stable states and essentially one transient flavor, while
// MESI's blocking directory and invalidation races breed many more.
//
// Usage:
//
//	protocheck            # 2 and 3 cores, 2 ops each
//	protocheck -cores 3 -ops 3
package main

import (
	"flag"
	"fmt"
	"os"

	"denovosync/internal/verify"
)

func main() {
	cores := flag.Int("cores", 0, "core count (0 = run 2 and 3)")
	ops := flag.Int("ops", 2, "sync operations per core")
	flag.Parse()

	sizes := []int{2, 3}
	if *cores != 0 {
		sizes = []int{*cores}
	}

	fmt.Println("Exhaustive protocol state-space exploration (all message interleavings)")
	fmt.Println()
	fmt.Printf("%-12s %-6s %-6s %16s %14s %12s %10s\n",
		"protocol", "cores", "ops", "reachable", "L1 states", "transient", "violations")
	fail := false
	for _, n := range sizes {
		for _, run := range []func(int, int) *verify.Result{verify.NewDeNovoModelBase, verify.NewMESIModelBase, verify.NewDeNovoModel, verify.NewMESIModel} {
			r := run(n, *ops)
			fmt.Printf("%-12s %-6d %-6d %16d %14d %12d %10d\n",
				r.Protocol, r.Cores, r.MaxOps, r.ReachableStates,
				r.L1ControllerStates, r.TransientL1States, len(r.Violations))
			for _, v := range r.Violations {
				fmt.Fprintf(os.Stderr, "  VIOLATION: %s\n", v)
				fail = true
			}
		}
	}
	fmt.Println()
	fmt.Println("Invariants checked: single registrant / SWMR, registry-owner agreement,")
	fmt.Println("no M+S coexistence, deadlock freedom. The -base models cover reads and")
	fmt.Println("writes only (the like-for-like complexity comparison); the full models")
	fmt.Println("add eviction/writeback races (and data reads for DeNovoSync).")
	if fail {
		os.Exit(1)
	}
}
