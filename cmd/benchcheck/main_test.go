package main

import (
	"strings"
	"testing"
)

// TestGatePerRowTolerance pins the per-row override semantics: a row
// over the default tolerance passes when its baseline row carries a
// looser "tolerances" entry, an unlisted row still gates at the
// default, and a row beyond even its own override fails.
func TestGatePerRowTolerance(t *testing.T) {
	base := &baseline{
		Benchmarks: map[string]float64{
			"internal/sim.BenchmarkNoisy":   100, // own tolerance 3.0
			"internal/sim.BenchmarkSteady":  100, // default tolerance
			"internal/sim.BenchmarkRunaway": 100, // own tolerance 0.5, exceeded
		},
		Tolerances: map[string]float64{
			"internal/sim.BenchmarkNoisy":   3.0,
			"internal/sim.BenchmarkRunaway": 0.5,
		},
	}
	measured := map[string]float64{
		"internal/sim.BenchmarkNoisy":   350, // 3.5x: over default +100%, within +300%
		"internal/sim.BenchmarkSteady":  150, // 1.5x: within default
		"internal/sim.BenchmarkRunaway": 160, // 1.6x: over its +50% row override
	}
	lines, failed := gate(base, 1.0, measured)
	if failed != 1 {
		t.Fatalf("failed = %d, want exactly the runaway row\n%s", failed, strings.Join(lines, "\n"))
	}
	find := func(key string) string {
		for _, l := range lines {
			if strings.Contains(l, key) {
				return l
			}
		}
		t.Fatalf("no report line for %s", key)
		return ""
	}
	if l := find("BenchmarkNoisy"); !strings.HasPrefix(l, "ok") || !strings.Contains(l, "+300%") {
		t.Errorf("noisy row must pass under its +300%% override: %q", l)
	}
	if l := find("BenchmarkSteady"); !strings.HasPrefix(l, "ok") {
		t.Errorf("steady row must pass at the default tolerance: %q", l)
	}
	if l := find("BenchmarkRunaway"); !strings.HasPrefix(l, "REGRESSED") {
		t.Errorf("runaway row must fail beyond its own override: %q", l)
	}
}

// TestGateDefaultTolerance pins the pre-override behavior for baselines
// with no tolerances object at all.
func TestGateDefaultTolerance(t *testing.T) {
	base := &baseline{Benchmarks: map[string]float64{"internal/sim.BenchmarkX": 100}}
	if _, failed := gate(base, 1.0, map[string]float64{"internal/sim.BenchmarkX": 199}); failed != 0 {
		t.Errorf("1.99x within +100%% must pass")
	}
	if _, failed := gate(base, 1.0, map[string]float64{"internal/sim.BenchmarkX": 201}); failed != 1 {
		t.Errorf("2.01x beyond +100%% must fail")
	}
	if _, failed := gate(base, 1.0, map[string]float64{}); failed != 1 {
		t.Errorf("a missing measurement must fail the gate")
	}
}
