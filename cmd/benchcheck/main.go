// Command benchcheck is the tolerance-gated benchmark regression gate:
// it re-runs every benchmark recorded in BENCH_baseline.json and fails
// when a measured ns/op exceeds the baseline by more than the tolerance.
//
//	go run ./cmd/benchcheck              # gate at the default +100%
//	go run ./cmd/benchcheck -tolerance 0.3 -benchtime 5x
//
// Baseline numbers are machine-dependent order-of-magnitude anchors
// (see the comment field in BENCH_baseline.json): run the gate on the
// machine that produced the baseline, or regenerate the baseline first
// with `make bench-baseline`. Improvements never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Comment    string             `json:"comment"`
	Date       string             `json:"date"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   123   45.6 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	var (
		path      = flag.String("baseline", "BENCH_baseline.json", "baseline file")
		tolerance = flag.Float64("tolerance", 1.0, "allowed slowdown fraction over baseline (1.0 = +100%)")
		benchtime = flag.String("benchtime", "", "forwarded to go test -benchtime (empty = go default)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*path)
	if err != nil {
		fatalf("%v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing %s: %v", *path, err)
	}
	if len(base.Benchmarks) == 0 {
		fatalf("%s records no benchmarks", *path)
	}

	// Group baseline entries by package: "internal/sim.BenchmarkX" runs
	// in ./internal/sim, "denovosync.BenchmarkY" in the module root.
	byPkg := map[string][]string{}
	for key := range base.Benchmarks {
		dot := strings.LastIndex(key, ".")
		if dot < 0 {
			fatalf("malformed baseline key %q (want pkg.BenchmarkName)", key)
		}
		pkg := "./" + key[:dot]
		if key[:dot] == "denovosync" {
			pkg = "."
		}
		byPkg[pkg] = append(byPkg[pkg], key[dot+1:])
	}

	measured := map[string]float64{}
	pkgs := make([]string, 0, len(byPkg))
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		names := byPkg[pkg]
		sort.Strings(names)
		pattern := "^(" + strings.Join(names, "|") + ")$"
		args := []string{"test", pkg, "-run", "^$", "-bench", pattern}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		fmt.Printf("benchcheck: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fatalf("go test %s: %v", pkg, err)
		}
		sc := bufio.NewScanner(strings.NewReader(string(out)))
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			qual := strings.TrimPrefix(pkg, "./") + "." + m[1]
			if pkg == "." {
				qual = "denovosync." + m[1]
			}
			measured[qual] = ns
		}
	}

	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	for _, k := range keys {
		want := base.Benchmarks[k]
		got, ok := measured[k]
		if !ok {
			fmt.Printf("MISSING  %-55s baseline %.4g ns/op, not measured\n", k, want)
			failed++
			continue
		}
		ratio := got / want
		status := "ok"
		if got > want*(1+*tolerance) {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("%-9s%-55s %.4g -> %.4g ns/op (%.2fx)\n", status, k, want, got, ratio)
	}
	if failed > 0 {
		fatalf("%d benchmark(s) regressed beyond +%.0f%% of baseline (re-anchor deliberately with make bench-baseline)", failed, *tolerance*100)
	}
	fmt.Printf("benchcheck: %d benchmarks within +%.0f%% of baseline\n", len(keys), *tolerance*100)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
