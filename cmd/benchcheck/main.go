// Command benchcheck is the tolerance-gated benchmark regression gate:
// it re-runs every benchmark recorded in BENCH_baseline.json and fails
// when a measured ns/op exceeds the baseline by more than the tolerance.
//
//	go run ./cmd/benchcheck              # gate at the default +100%
//	go run ./cmd/benchcheck -tolerance 0.3 -benchtime 5x
//
// Baseline numbers are machine-dependent order-of-magnitude anchors
// (see the comment field in BENCH_baseline.json): run the gate on the
// machine that produced the baseline, or regenerate the baseline first
// with `make bench-baseline`. Improvements never fail the gate.
//
// A noisy row can carry its own slack in the baseline's "tolerances"
// object ({"pkg.BenchmarkName": 2.0}); the per-row value replaces the
// -tolerance default for that row only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Comment    string             `json:"comment"`
	Date       string             `json:"date"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Tolerances overrides the gate's default tolerance per row
	// (fraction over baseline, 1.0 = +100%). Rows not listed use the
	// -tolerance flag.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
}

// tolFor returns the tolerance gating one baseline row.
func (b *baseline) tolFor(key string, def float64) float64 {
	if t, ok := b.Tolerances[key]; ok {
		return t
	}
	return def
}

// gate compares measured ns/op against the baseline rows and returns
// the per-row report lines plus the number of failed rows. Split from
// main so the tolerance logic is testable without running benchmarks.
func gate(base *baseline, defaultTol float64, measured map[string]float64) (lines []string, failed int) {
	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		want := base.Benchmarks[k]
		got, ok := measured[k]
		if !ok {
			lines = append(lines, fmt.Sprintf("MISSING  %-55s baseline %.4g ns/op, not measured", k, want))
			failed++
			continue
		}
		tol := base.tolFor(k, defaultTol)
		ratio := got / want
		status := "ok"
		if got > want*(1+tol) {
			status = "REGRESSED"
			failed++
		}
		note := ""
		if _, ok := base.Tolerances[k]; ok {
			note = fmt.Sprintf(" [row tolerance +%.0f%%]", tol*100)
		}
		lines = append(lines, fmt.Sprintf("%-10s%-55s %.4g -> %.4g ns/op (%.2fx)%s", status, k, want, got, ratio, note))
	}
	return lines, failed
}

// benchLine matches "BenchmarkName-8   123   45.6 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	var (
		path      = flag.String("baseline", "BENCH_baseline.json", "baseline file")
		tolerance = flag.Float64("tolerance", 1.0, "allowed slowdown fraction over baseline (1.0 = +100%)")
		benchtime = flag.String("benchtime", "", "forwarded to go test -benchtime (empty = go default)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*path)
	if err != nil {
		fatalf("%v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing %s: %v", *path, err)
	}
	if len(base.Benchmarks) == 0 {
		fatalf("%s records no benchmarks", *path)
	}

	// Group baseline entries by package: "internal/sim.BenchmarkX" runs
	// in ./internal/sim, "denovosync.BenchmarkY" in the module root.
	byPkg := map[string][]string{}
	for key := range base.Benchmarks {
		dot := strings.LastIndex(key, ".")
		if dot < 0 {
			fatalf("malformed baseline key %q (want pkg.BenchmarkName)", key)
		}
		pkg := "./" + key[:dot]
		if key[:dot] == "denovosync" {
			pkg = "."
		}
		byPkg[pkg] = append(byPkg[pkg], key[dot+1:])
	}

	measured := map[string]float64{}
	pkgs := make([]string, 0, len(byPkg))
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		names := byPkg[pkg]
		sort.Strings(names)
		pattern := "^(" + strings.Join(names, "|") + ")$"
		args := []string{"test", pkg, "-run", "^$", "-bench", pattern}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		fmt.Printf("benchcheck: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fatalf("go test %s: %v", pkg, err)
		}
		sc := bufio.NewScanner(strings.NewReader(string(out)))
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			qual := strings.TrimPrefix(pkg, "./") + "." + m[1]
			if pkg == "." {
				qual = "denovosync." + m[1]
			}
			measured[qual] = ns
		}
	}

	lines, failed := gate(&base, *tolerance, measured)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed > 0 {
		fatalf("%d benchmark(s) regressed beyond tolerance (re-anchor deliberately with make bench-baseline)", failed)
	}
	fmt.Printf("benchcheck: %d benchmarks within tolerance (default +%.0f%%)\n", len(base.Benchmarks), *tolerance*100)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
