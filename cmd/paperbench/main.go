// Command paperbench regenerates every table and figure of the paper's
// evaluation section (§7) plus the sensitivity studies, printing
// normalized tables in the same shape as the paper's stacked bars.
//
// Grids are planned and executed through internal/exp: runs execute in
// parallel on a worker pool with per-run fault isolation, and with
// -journal an interrupted reproduction resumes without re-executing
// completed grid points (grid points shared between figures — e.g. the
// MESI baselines an ablation reuses — execute once and are reused).
//
// Usage:
//
//	paperbench                     # everything (Figures 3-7, paper scale)
//	paperbench -fig 5              # one figure
//	paperbench -fig 3 -cores 16    # one figure, one machine size
//	paperbench -ablate swbackoff   # §7.1.1 software-backoff study
//	paperbench -ablate padding     # §7.1.1 lock-padding study
//	paperbench -ablate eqchecks    # §7.1.3 equality-check study
//	paperbench -ablate hwparams    # backoff parameter sweep
//	paperbench -scale 10           # 10x smaller workloads (quick look)
//	paperbench -csv out.csv        # also dump machine-readable rows
//	paperbench -journal run.jsonl  # resumable (^C, then re-run)
//	paperbench -list-config        # print Table 1
//	paperbench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	                               # profile the run (go tool pprof)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"

	"denovosync"
	"denovosync/internal/exp"
	"denovosync/internal/harness"
	"denovosync/internal/profiling"
)

func main() {
	var (
		fig         = flag.Int("fig", 0, "figure to reproduce (3-7); 0 = all")
		coresFlag   = flag.Int("cores", 0, "restrict kernel figures to 16 or 64 cores; 0 = both")
		ablate      = flag.String("ablate", "", "ablation: swbackoff | padding | eqchecks | signatures | invall | contention | mcs | granularity | hwparams")
		scale       = flag.Int("scale", 1, "workload divisor (1 = paper scale)")
		csvPath     = flag.String("csv", "", "append machine-readable results to this file")
		journalPath = flag.String("journal", "", "JSONL result journal (enables resume)")
		workers     = flag.Int("workers", 0, "concurrent runs; 0 = GOMAXPROCS")
		lpsFlag     = flag.Int("lps", 0, "logical processes per machine (parallel PDES engine; 0/1 = serial, results bit-identical)")
		timeoutFlag = flag.Duration("timeout", 0, "per-run wall-clock limit; 0 = none")
		retries     = flag.Int("retries", 0, "extra attempts after a failed run")
		retryFailed = flag.Bool("retry-failed", false, "re-execute journaled failures")
		progress    = flag.Bool("progress", false, "print live progress to stderr")
		listConfig  = flag.Bool("list-config", false, "print the Table 1 system parameters")
		bars        = flag.Bool("bars", false, "render ASCII stacked bars instead of tables")
		check       = flag.Bool("check", true, "evaluate the paper's qualitative claims per figure")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()

	if *listConfig {
		printTable1()
		return
	}

	stopProfile, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fatalf("%v", err)
		}
	}()

	exp.LPs = *lpsFlag
	harness.DefaultLPs = *lpsFlag

	opt := exp.Options{Scale: *scale}
	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		csv = f
	}

	eng := &exp.Engine{
		Workers: *workers, Timeout: *timeoutFlag,
		Retries: *retries, RetryFailed: *retryFailed,
	}
	if *progress {
		eng.Progress = os.Stderr
	}
	if *journalPath != "" {
		j, prior, err := exp.OpenJournal(*journalPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := j.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
		}()
		eng.Journal, eng.Prior = j, prior
	}

	// First ^C: stop dispatching, journal in-flight runs, exit 130
	// (re-running the same command resumes). Second ^C: abort.
	stop := make(chan struct{})
	eng.Stop = stop
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "paperbench: interrupt — finishing in-flight runs (^C again to abort)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	emit := func(name string, cores int) {
		plan, err := exp.FigurePlan(name, cores, opt)
		if err != nil {
			fatalf("%v", err)
		}
		records, _, err := eng.Execute(plan)
		if err != nil {
			if errors.Is(err, exp.ErrStopped) && interrupted.Load() {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(130)
			}
			fatalf("%v", err)
		}
		// Completed grid points feed the next figure's resume set (shared
		// baselines across figures execute only once per journal).
		eng.Prior, eng.RetryFailed = records, false
		f, err := exp.Figure(plan, records)
		if err != nil {
			fatalf("%v", err)
		}
		if *bars {
			f.RenderBars(os.Stdout)
		} else {
			f.Render(os.Stdout)
		}
		if *check {
			if pass, dev := denovosync.CheckClaims(f, os.Stdout); pass+dev > 0 {
				fmt.Printf("claims: %d hold, %d deviate\n", pass, dev)
			}
		}
		ds0e, ds0t := f.GeoMeanVsMESI(denovosync.DeNovoSync0)
		dse, dst := f.GeoMeanVsMESI(denovosync.DeNovoSync)
		fmt.Printf("geomean vs MESI:  DS0 exec %.2fx traffic %.2fx | DS exec %.2fx traffic %.2fx\n\n",
			ds0e, ds0t, dse, dst)
		if csv != nil {
			f.CSV(csv)
		}
	}

	if *ablate != "" {
		cores := *coresFlag
		if cores == 0 {
			cores = 64
		}
		switch *ablate {
		case "swbackoff", "padding", "eqchecks", "signatures", "invall",
			"contention", "mcs", "granularity", "hwparams":
			emit(*ablate, cores)
		default:
			fatalf("unknown ablation %q", *ablate)
		}
		closeCSV(csv)
		return
	}

	sizes := []int{16, 64}
	if *coresFlag != 0 {
		sizes = []int{*coresFlag}
	}
	for _, n := range []int{3, 4, 5, 6} {
		if *fig == 0 || *fig == n {
			for _, c := range sizes {
				emit(fmt.Sprintf("fig%d", n), c)
			}
		}
	}
	if *fig == 7 || (*fig == 0 && *coresFlag == 0) {
		emit("fig7", 0)
	}
	closeCSV(csv)
}

// closeCSV checks the CSV Close so a write error (e.g. a full disk)
// fails the run instead of truncating the archive silently.
func closeCSV(f *os.File) {
	if f == nil {
		return
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

func printTable1() {
	for _, n := range []int{16, 64} {
		var p denovosync.Params
		if n == 16 {
			p = denovosync.Params16()
		} else {
			p = denovosync.Params64()
		}
		maxHops := (p.MeshW - 1 + p.MeshH - 1)
		perHop := func(h int) denovosync.Cycle {
			return (denovosync.Cycle(h)*p.PerHopNum + p.PerHopDen - 1) / p.PerHopDen
		}
		l2 := denovosync.Cycle(1) + p.L2AccessLat
		rl1 := l2 + p.RemoteL1Lat
		memLat := l2 + p.DRAMLat
		fmt.Printf("Table 1 — %d cores:\n", n)
		fmt.Printf("  mesh               %dx%d, 16-bit flits, %d/%d cycles per hop\n", p.MeshW, p.MeshH, p.PerHopNum, p.PerHopDen)
		fmt.Printf("  L1 data cache      %d KB, %d-way, %d B lines, hit %d cycle\n", p.L1Size/1024, p.L1Ways, 64, p.L1AccessLat)
		fmt.Printf("  L2 (shared NUCA)   %d banks, hit %d to %d cycles\n", n, l2, l2+perHop(2*maxHops))
		fmt.Printf("  remote L1 hit      %d to %d cycles\n", rl1, rl1+perHop(3*maxHops))
		fmt.Printf("  memory hit         %d to %d cycles\n", memLat, memLat+perHop(4*maxHops))
		fmt.Printf("  hw backoff         %d-bit counter, default increment %d, grow every %d remote reads\n\n",
			p.BackoffBits, p.DefaultIncrement, p.IncEveryN)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}
