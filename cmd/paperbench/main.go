// Command paperbench regenerates every table and figure of the paper's
// evaluation section (§7) plus the sensitivity studies, printing
// normalized tables in the same shape as the paper's stacked bars.
//
// Usage:
//
//	paperbench                     # everything (Figures 3-7, paper scale)
//	paperbench -fig 5              # one figure
//	paperbench -fig 3 -cores 16    # one figure, one machine size
//	paperbench -ablate swbackoff   # §7.1.1 software-backoff study
//	paperbench -ablate padding     # §7.1.1 lock-padding study
//	paperbench -ablate eqchecks    # §7.1.3 equality-check study
//	paperbench -ablate hwparams    # backoff parameter sweep
//	paperbench -scale 10           # 10x smaller workloads (quick look)
//	paperbench -csv out.csv        # also dump machine-readable rows
//	paperbench -list-config        # print Table 1
//	paperbench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	                               # profile the run (go tool pprof)
package main

import (
	"flag"
	"fmt"
	"os"

	"denovosync"
	"denovosync/internal/profiling"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (3-7); 0 = all")
		coresFlag  = flag.Int("cores", 0, "restrict kernel figures to 16 or 64 cores; 0 = both")
		ablate     = flag.String("ablate", "", "ablation: swbackoff | padding | eqchecks | signatures | invall | contention | mcs | granularity | hwparams")
		scale      = flag.Int("scale", 1, "workload divisor (1 = paper scale)")
		csvPath    = flag.String("csv", "", "append machine-readable results to this file")
		listConfig = flag.Bool("list-config", false, "print the Table 1 system parameters")
		bars       = flag.Bool("bars", false, "render ASCII stacked bars instead of tables")
		check      = flag.Bool("check", true, "evaluate the paper's qualitative claims per figure")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()

	if *listConfig {
		printTable1()
		return
	}

	stopProfile, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fatalf("%v", err)
		}
	}()

	opt := denovosync.FigureOptions{Scale: *scale}
	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		csv = f
	}

	emit := func(f *denovosync.Figure, err error) {
		if err != nil {
			fatalf("%v", err)
		}
		if *bars {
			f.RenderBars(os.Stdout)
		} else {
			f.Render(os.Stdout)
		}
		if *check {
			if pass, dev := denovosync.CheckClaims(f, os.Stdout); pass+dev > 0 {
				fmt.Printf("claims: %d hold, %d deviate\n", pass, dev)
			}
		}
		ds0e, ds0t := f.GeoMeanVsMESI(denovosync.DeNovoSync0)
		dse, dst := f.GeoMeanVsMESI(denovosync.DeNovoSync)
		fmt.Printf("geomean vs MESI:  DS0 exec %.2fx traffic %.2fx | DS exec %.2fx traffic %.2fx\n\n",
			ds0e, ds0t, dse, dst)
		if csv != nil {
			f.CSV(csv)
		}
	}

	if *ablate != "" {
		cores := *coresFlag
		if cores == 0 {
			cores = 64
		}
		switch *ablate {
		case "swbackoff":
			emit(denovosync.AblationSWBackoff(cores, opt))
		case "padding":
			emit(denovosync.AblationPadding(cores, opt))
		case "eqchecks":
			emit(denovosync.AblationEqChecks(cores, opt))
		case "signatures":
			emit(denovosync.AblationSignatures(cores, opt))
		case "invall":
			emit(denovosync.AblationInvalidateAll(cores, opt))
		case "contention":
			emit(denovosync.AblationLinkContention(cores, opt))
		case "mcs":
			emit(denovosync.AblationAltLocks(cores, opt))
		case "granularity":
			emit(denovosync.AblationGranularity(cores, opt))
		case "hwparams":
			emit(denovosync.AblationBackoffParams(cores, opt))
		default:
			fatalf("unknown ablation %q", *ablate)
		}
		return
	}

	sizes := []int{16, 64}
	if *coresFlag != 0 {
		sizes = []int{*coresFlag}
	}

	runKernelFig := func(n int, fn func(int, denovosync.FigureOptions) (*denovosync.Figure, error)) {
		for _, c := range sizes {
			emit(fn(c, opt))
		}
		_ = n
	}

	if *fig == 0 || *fig == 3 {
		runKernelFig(3, denovosync.Fig3)
	}
	if *fig == 0 || *fig == 4 {
		runKernelFig(4, denovosync.Fig4)
	}
	if *fig == 0 || *fig == 5 {
		runKernelFig(5, denovosync.Fig5)
	}
	if *fig == 0 || *fig == 6 {
		runKernelFig(6, denovosync.Fig6)
	}
	if *fig == 0 || *fig == 7 {
		if *fig == 7 || *coresFlag == 0 {
			emit(denovosync.Fig7(opt))
		}
	}
}

func printTable1() {
	for _, n := range []int{16, 64} {
		var p denovosync.Params
		if n == 16 {
			p = denovosync.Params16()
		} else {
			p = denovosync.Params64()
		}
		maxHops := (p.MeshW - 1 + p.MeshH - 1)
		perHop := func(h int) denovosync.Cycle {
			return (denovosync.Cycle(h)*p.PerHopNum + p.PerHopDen - 1) / p.PerHopDen
		}
		l2 := denovosync.Cycle(1) + p.L2AccessLat
		rl1 := l2 + p.RemoteL1Lat
		memLat := l2 + p.DRAMLat
		fmt.Printf("Table 1 — %d cores:\n", n)
		fmt.Printf("  mesh               %dx%d, 16-bit flits, %d/%d cycles per hop\n", p.MeshW, p.MeshH, p.PerHopNum, p.PerHopDen)
		fmt.Printf("  L1 data cache      %d KB, %d-way, %d B lines, hit %d cycle\n", p.L1Size/1024, p.L1Ways, 64, p.L1AccessLat)
		fmt.Printf("  L2 (shared NUCA)   %d banks, hit %d to %d cycles\n", n, l2, l2+perHop(2*maxHops))
		fmt.Printf("  remote L1 hit      %d to %d cycles\n", rl1, rl1+perHop(3*maxHops))
		fmt.Printf("  memory hit         %d to %d cycles\n", memLat, memLat+perHop(4*maxHops))
		fmt.Printf("  hw backoff         %d-bit counter, default increment %d, grow every %d remote reads\n\n",
			p.BackoffBits, p.DefaultIncrement, p.IncEveryN)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}
