// Command simlint runs the repo's custom static analyzers (see
// internal/lint): exhauststate, determinism, threaddiscipline,
// cyclehygiene, observerpurity, and atlasdrift.
//
// Standalone mode analyzes a whole module tree offline:
//
//	simlint                       # the module in the current directory
//	simlint ./...                 # same (the go-style pattern is accepted)
//	simlint path/to/module
//	simlint -analyzer=determinism,atlasdrift ./...   # a subset of the suite
//	simlint -json ./...           # machine-readable diagnostics
//
// An unknown -analyzer name is an error listing the valid names (names
// match case-insensitively).
//
// It prints each unsuppressed finding as file:line:col: message
// (analyzer) and exits non-zero if there were any. With -json it
// instead emits one JSON array of every diagnostic — including the
// //simlint:allow-suppressed ones, each carrying its directive's reason
// — with file, line, col, analyzer, message, suppressed and reason
// fields; the exit status still reflects only unsuppressed findings.
//
// The binary also speaks enough of the go vet -vettool protocol
// (the -V=full handshake and the JSON .cfg unit format) to be used as
//
//	go vet -vettool=$(which simlint) ./...
//
// in which case type information comes from the compiler's export data
// instead of from source.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
	"denovosync/internal/lint/driver"
)

func main() {
	args := os.Args[1:]

	// go vet's tool handshake: report an identity for its action cache,
	// and an (empty) flag list. The identity must change whenever the
	// tool's behavior does, or vet replays stale cached results — so it
	// is a hash of this very binary.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("simlint version %s (gc)\n", selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		if err := runUnit(args[len(args)-1]); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(1)
		}
		return
	}

	analyzers, rest, err := selectAnalyzers(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(1)
	}
	jsonOut := false
	dirs := rest[:0:0]
	for _, arg := range rest {
		if arg == "-json" {
			jsonOut = true
			continue
		}
		dirs = append(dirs, arg)
	}
	dir := "."
	if len(dirs) > 0 {
		dir = strings.TrimSuffix(dirs[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}
	if jsonOut {
		findings, err := driver.RunAll(dir, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(1)
		}
		live, err := writeJSON(os.Stdout, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(1)
		}
		if live > 0 {
			os.Exit(2)
		}
		return
	}
	findings, err := driver.Run(dir, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// jsonFinding is the -json wire format for one diagnostic.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// writeJSON emits every diagnostic as one indented JSON array and
// returns the number of live (unsuppressed) findings.
func writeJSON(w io.Writer, findings []driver.Finding) (int, error) {
	out := make([]jsonFinding, 0, len(findings))
	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
			Suppressed: f.Suppressed, Reason: f.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return live, enc.Encode(out)
}

// selectAnalyzers consumes -analyzer flags from args and resolves the
// requested subset of the suite (the full suite when absent). An unknown
// name is an explicit error naming the valid analyzers: lint.ByName used
// to return nil for a misspelled or miscased name, and a silent nil made
// the whole filter a no-op.
func selectAnalyzers(args []string) ([]*analysis.Analyzer, []string, error) {
	var names []string
	var rest []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case strings.HasPrefix(arg, "-analyzer="):
			names = append(names, strings.Split(arg[len("-analyzer="):], ",")...)
		case arg == "-analyzer":
			if i+1 >= len(args) {
				return nil, nil, fmt.Errorf("-analyzer needs a value (valid: %s)", strings.Join(lint.Names(), ", "))
			}
			i++
			names = append(names, strings.Split(args[i], ",")...)
		default:
			rest = append(rest, arg)
		}
	}
	if len(names) == 0 {
		return lint.Analyzers(), rest, nil
	}
	var out []*analysis.Analyzer
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lint.ByName(name)
		if a == nil {
			return nil, nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(lint.Names(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("-analyzer selected nothing (valid: %s)", strings.Join(lint.Names(), ", "))
	}
	return out, rest, nil
}

// selfHash returns a content hash of the running binary (best-effort:
// a constant if the executable cannot be read).
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

// unitConfig is the subset of the go vet unit-checking protocol's JSON
// config that simlint consumes.
type unitConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit as directed by go vet.
func runUnit(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// simlint exports no facts, but the go command expects the output
	// file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}
	// Test files are excluded: the invariants guard simulator source, and
	// tests legitimately use literal latencies to construct scenarios.
	// go vet folds a package's _test.go files into the same unit as its
	// regular files, so filter by file name (non-test files never depend
	// on test files, so the remainder still typechecks). A unit left with
	// no files was an external _test package or a generated test main.
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 || strings.HasSuffix(cfg.ImportPath, ".test") {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}

	// Scope by the package's module-relative path. Test variants
	// ("pkg [pkg.test]", "pkg_test") keep the base package's scope.
	rel := cfg.ImportPath
	if i := strings.Index(rel, " "); i >= 0 {
		rel = rel[:i]
	}
	if mod, err := driver.ModulePathUp(cfg.Dir); err == nil {
		rel = strings.TrimPrefix(rel, mod+"/")
	}

	exit := 0
	for _, a := range lint.Analyzers() {
		if !lint.InScope(a, rel) {
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range lint.Filter(fset, files, a, diags) {
			pos := fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, a.Name)
			exit = 2
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
	return nil
}
