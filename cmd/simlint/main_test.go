package main

import (
	"strings"
	"testing"

	"denovosync/internal/lint"
)

func TestSelectAnalyzers(t *testing.T) {
	t.Run("default is the full suite", func(t *testing.T) {
		as, rest, err := selectAnalyzers([]string{"./..."})
		if err != nil || len(as) != len(lint.Analyzers()) || len(rest) != 1 {
			t.Fatalf("got %d analyzers, rest %v, err %v", len(as), rest, err)
		}
	})
	t.Run("subset with case-insensitive names", func(t *testing.T) {
		as, rest, err := selectAnalyzers([]string{"-analyzer=Determinism,atlasdrift", "."})
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 2 || as[0] != lint.Determinism || as[1] != lint.AtlasDrift {
			t.Fatalf("wrong subset: %v", as)
		}
		if len(rest) != 1 || rest[0] != "." {
			t.Fatalf("wrong rest: %v", rest)
		}
	})
	t.Run("separate flag value", func(t *testing.T) {
		as, _, err := selectAnalyzers([]string{"-analyzer", "cyclehygiene"})
		if err != nil || len(as) != 1 || as[0] != lint.CycleHygiene {
			t.Fatalf("got %v, err %v", as, err)
		}
	})
	t.Run("unknown name errors and lists valid names", func(t *testing.T) {
		_, _, err := selectAnalyzers([]string{"-analyzer=nosuch"})
		if err == nil {
			t.Fatal("unknown analyzer accepted")
		}
		for _, name := range lint.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error does not list %q: %v", name, err)
			}
		}
	})
	t.Run("missing value errors", func(t *testing.T) {
		if _, _, err := selectAnalyzers([]string{"-analyzer"}); err == nil {
			t.Fatal("dangling -analyzer accepted")
		}
	})
}
