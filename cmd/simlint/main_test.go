package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/driver"
)

func TestSelectAnalyzers(t *testing.T) {
	t.Run("default is the full suite", func(t *testing.T) {
		as, rest, err := selectAnalyzers([]string{"./..."})
		if err != nil || len(as) != len(lint.Analyzers()) || len(rest) != 1 {
			t.Fatalf("got %d analyzers, rest %v, err %v", len(as), rest, err)
		}
	})
	t.Run("subset with case-insensitive names", func(t *testing.T) {
		as, rest, err := selectAnalyzers([]string{"-analyzer=Determinism,atlasdrift", "."})
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 2 || as[0] != lint.Determinism || as[1] != lint.AtlasDrift {
			t.Fatalf("wrong subset: %v", as)
		}
		if len(rest) != 1 || rest[0] != "." {
			t.Fatalf("wrong rest: %v", rest)
		}
	})
	t.Run("separate flag value", func(t *testing.T) {
		as, _, err := selectAnalyzers([]string{"-analyzer", "cyclehygiene"})
		if err != nil || len(as) != 1 || as[0] != lint.CycleHygiene {
			t.Fatalf("got %v, err %v", as, err)
		}
	})
	t.Run("unknown name errors and lists valid names", func(t *testing.T) {
		_, _, err := selectAnalyzers([]string{"-analyzer=nosuch"})
		if err == nil {
			t.Fatal("unknown analyzer accepted")
		}
		for _, name := range lint.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error does not list %q: %v", name, err)
			}
		}
	})
	t.Run("missing value errors", func(t *testing.T) {
		if _, _, err := selectAnalyzers([]string{"-analyzer"}); err == nil {
			t.Fatal("dangling -analyzer accepted")
		}
	})
}

// TestOutputFormats is the acceptance test for both diagnostic formats:
// the same module yields the human file:line:col lines for the live
// finding only, and a -json array carrying both the live finding and the
// suppressed one with its directive's reason.
func TestOutputFormats(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n\ngo 1.22\n")
	write("internal/stats/dump.go", `package stats

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { //simlint:allow determinism: keys are sorted by the caller
		out = append(out, k)
	}
	return out
}

func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // no directive: must be reported
		s += v
	}
	return s
}
`)

	findings, err := driver.Run(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 live finding, got %v", findings)
	}
	human := findings[0].String()
	wantSuffix := "dump.go:13:2: map range iteration in a simulator package: order varies per run; sort the keys first (determinism)"
	if !strings.HasSuffix(human, wantSuffix) {
		t.Errorf("human format %q does not end with %q", human, wantSuffix)
	}

	all, err := driver.RunAll(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.RunAll: %v", err)
	}
	var buf bytes.Buffer
	live, err := writeJSON(&buf, all)
	if err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if live != 1 {
		t.Errorf("writeJSON reported %d live findings, want 1", live)
	}
	var decoded []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("want 2 JSON diagnostics, got %v", decoded)
	}
	bySupp := map[bool]jsonFinding{}
	for _, d := range decoded {
		bySupp[d.Suppressed] = d
	}
	s := bySupp[true]
	if s.Line != 5 || s.Analyzer != "determinism" || s.Reason != "keys are sorted by the caller" {
		t.Errorf("suppressed JSON diagnostic wrong: %+v", s)
	}
	l := bySupp[false]
	if l.Line != 13 || l.Reason != "" || !strings.HasSuffix(l.File, "dump.go") {
		t.Errorf("live JSON diagnostic wrong: %+v", l)
	}
}

// TestWriteJSONEmpty checks -json on a clean tree emits a valid empty
// array, not null.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	live, err := writeJSON(&buf, nil)
	if err != nil || live != 0 {
		t.Fatalf("live=%d err=%v", live, err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty output %q, want []", got)
	}
}
