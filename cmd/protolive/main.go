// Command protolive maintains and enforces the protocol-liveness
// certificate (docs/liveness/waitgraph.json): the static waits-for
// atlas over the mesi and denovo controllers, proved free of parking
// deadlocks, dropped requests, per-class message cycles, and unbounded
// backoff by the six liveness rules in internal/lint/liveness.
//
// Modes:
//
//	-mode extract    regenerate docs/liveness/waitgraph.json
//	-mode check      fail if the checked-in golden drifts from the source,
//	                 or if the analysis reports any unassumed finding
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"denovosync/internal/lint/atlas"
	"denovosync/internal/lint/liveness"
)

func main() {
	mode := flag.String("mode", "check", "extract | check")
	dirFlag := flag.String("dir", "", "module root (default: walk up from cwd)")
	flag.Parse()

	moduleDir := *dirFlag
	if moduleDir == "" {
		d, err := atlas.FindModuleDir(".")
		if err != nil {
			fatal(err)
		}
		moduleDir = d
	}
	module, err := atlas.ModulePath(moduleDir)
	if err != nil {
		fatal(err)
	}
	goldenPath := filepath.Join(moduleDir, "docs", "liveness", "waitgraph.json")

	fresh, err := liveness.ExtractDir(moduleDir, liveness.DefaultSpec(module))
	if err != nil {
		fatal(err)
	}

	ok := true
	switch *mode {
	case "extract":
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			fatal(err)
		}
		if err := fresh.WriteFile(goldenPath); err != nil {
			fatal(err)
		}
		fmt.Printf("protolive: wrote %s (%d nodes, %d edges, %d obligations, %d findings)\n",
			goldenPath, len(fresh.Nodes), len(fresh.Edges), len(fresh.Obligations), len(fresh.Findings))
		for _, f := range fresh.Findings {
			fmt.Printf("protolive: FINDING %s\n", f)
		}
	case "check":
		for _, f := range fresh.Findings {
			fmt.Printf("protolive: FINDING %s\n", f)
		}
		if len(fresh.Findings) > 0 {
			fmt.Printf("protolive: %d liveness findings — fix the arm or audit it with //protolive:assume(reason)\n",
				len(fresh.Findings))
			ok = false
		}
		golden, err := liveness.ReadFile(goldenPath)
		if err != nil {
			fmt.Printf("protolive: %v (run `make liveness`)\n", err)
			ok = false
			break
		}
		diffs := liveness.Diff(golden, fresh)
		for _, d := range diffs {
			fmt.Printf("protolive: waitgraph drift: %s\n", d)
		}
		if len(diffs) > 0 || !liveness.Equal(golden, fresh) {
			fmt.Printf("protolive: waits-for atlas is stale — run `make liveness` and commit docs/liveness/waitgraph.json\n")
			ok = false
		} else {
			fmt.Printf("protolive: waits-for atlas up to date (%d nodes, %d edges, %d obligations discharged)\n",
				len(golden.Nodes), len(golden.Edges), len(golden.Obligations))
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protolive:", err)
	os.Exit(1)
}
