// Command protocov maintains and enforces the protocol transition atlas
// (docs/atlas/): the machine-readable (controller, state, event) table
// extracted from the coherence controllers' source.
//
// Modes:
//
//	-mode extract    regenerate docs/atlas/{mesi,denovo}.json (and the
//	                 Table-1-style complexity summary)
//	-mode check      fail if the checked-in goldens drift from the source
//	-mode cover      run every kernel under every protocol config with
//	                 transition observers attached, then replay the
//	                 checked-in scenario corpus (testdata/corpus, owned by
//	                 cmd/scenfuzz); every atlas tuple must be covered or
//	                 annotated //atlas:unreachable
//	-mode crosscheck map the atlas onto the internal/verify abstract
//	                 models through docs/atlas/absmap.json; implemented-
//	                 but-unmodeled (and vice versa) transitions fail
//	-mode all        check + cover + crosscheck (the CI gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"denovosync/internal/alloc"
	"denovosync/internal/chaos"
	"denovosync/internal/denovo"
	"denovosync/internal/fuzz"
	"denovosync/internal/kernels"
	"denovosync/internal/lint/atlas"
	"denovosync/internal/machine"
	"denovosync/internal/mesi"
)

var protocols = []string{"mesi", "denovo"}

func main() {
	mode := flag.String("mode", "check", "extract | check | cover | crosscheck | all")
	dirFlag := flag.String("dir", "", "module root (default: walk up from cwd)")
	flag.Parse()

	moduleDir := *dirFlag
	if moduleDir == "" {
		d, err := atlas.FindModuleDir(".")
		if err != nil {
			fatal(err)
		}
		moduleDir = d
	}
	atlasDir := filepath.Join(moduleDir, "docs", "atlas")

	ok := true
	switch *mode {
	case "extract":
		if err := extract(moduleDir, atlasDir); err != nil {
			fatal(err)
		}
	case "check":
		ok = check(moduleDir, atlasDir)
	case "cover":
		ok = cover(moduleDir, atlasDir)
	case "crosscheck":
		ok = crosscheck(atlasDir)
	case "all":
		ok = check(moduleDir, atlasDir)
		ok = cover(moduleDir, atlasDir) && ok
		ok = crosscheck(atlasDir) && ok
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protocov:", err)
	os.Exit(1)
}

// extract regenerates the golden atlas files and the complexity summary.
func extract(moduleDir, atlasDir string) error {
	if err := os.MkdirAll(atlasDir, 0o755); err != nil {
		return err
	}
	var atlases []*atlas.Atlas
	for _, proto := range protocols {
		a, err := atlas.ExtractDir(moduleDir, "denovosync/internal/"+proto)
		if err != nil {
			return err
		}
		path := filepath.Join(atlasDir, proto+".json")
		if err := a.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("protocov: wrote %s (%d tuples)\n", path, len(a.Transitions))
		atlases = append(atlases, a)
	}
	return writeComplexity(atlasDir, atlases)
}

// check regenerates each atlas in memory and compares with the golden.
func check(moduleDir, atlasDir string) bool {
	ok := true
	for _, proto := range protocols {
		fresh, err := atlas.ExtractDir(moduleDir, "denovosync/internal/"+proto)
		if err != nil {
			fatal(err)
		}
		golden, err := atlas.ReadFile(filepath.Join(atlasDir, proto+".json"))
		if err != nil {
			fmt.Printf("protocov: %s: %v (run `make atlas`)\n", proto, err)
			ok = false
			continue
		}
		diffs := atlas.Diff(golden, fresh)
		for _, d := range diffs {
			fmt.Printf("protocov: %s atlas drift: %s\n", proto, d)
		}
		if len(diffs) > 0 {
			fmt.Printf("protocov: %s atlas is stale — run `make atlas` and commit docs/atlas/%s.json\n", proto, proto)
			ok = false
		} else {
			fmt.Printf("protocov: %s atlas up to date (%d tuples)\n", proto, len(golden.Transitions))
		}
	}
	return ok
}

// cover runs the full kernel grid (every kernel × every protocol config)
// with transition observers attached, replays the checked-in scenario
// corpus, and gates the goldens on coverage. The corpus entries carry the
// eviction-race workloads that used to be compiled in here — they now
// live as replayable JSON owned by cmd/scenfuzz, so the fuzzer can grow
// them and this gate picks the growth up without a rebuild.
func cover(moduleDir, atlasDir string) bool {
	goldens := map[string]*atlas.Atlas{}
	for _, proto := range protocols {
		a, err := atlas.ReadFile(filepath.Join(atlasDir, proto+".json"))
		if err != nil {
			fatal(fmt.Errorf("%v (run `make atlas` first)", err))
		}
		goldens[proto] = a
	}

	hits := map[string]map[atlas.Hit]uint64{
		"mesi":   {},
		"denovo": {},
	}
	runs := 0
	for _, cfg := range chaos.Configs() {
		family := "denovo"
		if cfg.Protocol == machine.MESI {
			family = "mesi"
		}
		sink := hits[family]
		obs := func(controller, state, event string) {
			sink[atlas.Hit{Controller: controller, State: state, Event: event}]++
		}
		for _, k := range kernels.All() {
			p := machine.Params16()
			p.Signatures = cfg.Signatures
			m := machine.New(p, cfg.Protocol, alloc.New())
			attachObservers(m, obs)
			if _, _, err := kernels.RunWithSummary(k, m, kernels.Config{
				Cores:         p.Cores,
				EqChecks:      -1,
				UseSignatures: cfg.Signatures,
			}); err != nil {
				fmt.Printf("protocov: kernel %q under %s failed: %v\n", k.Name, cfg.Name, err)
				return false
			}
			runs++
		}
	}

	corpusDir := filepath.Join(moduleDir, "testdata", "corpus")
	entries, err := fuzz.LoadCorpus(corpusDir)
	if err != nil {
		fmt.Printf("protocov: %v\n", err)
		return false
	}
	if len(entries) == 0 {
		fmt.Printf("protocov: no corpus entries in %s — run `scenfuzz seed-stress` and `scenfuzz seed-kernels`\n", corpusDir)
		return false
	}
	for _, e := range entries {
		res, reproduced := fuzz.Replay(e)
		if !res.OK() {
			fmt.Printf("protocov: corpus entry %s (%s) failed: %s: %s\n", e.Name(), e.Scenario, res.Verdict, res.Detail)
			return false
		}
		if !reproduced {
			fmt.Printf("protocov: corpus entry %s (%s) drifted: recorded result digest %s, live %s — re-record with `scenfuzz seed-stress`/`seed-kernels` or investigate\n",
				e.Name(), e.Scenario, e.Result.Digest(), res.Digest())
			return false
		}
		family := "denovo"
		if e.Scenario.Config == "M" {
			family = "mesi"
		}
		for _, h := range res.Hits {
			c, s, ev, good := fuzz.HitTuple(h)
			if !good {
				fmt.Printf("protocov: corpus entry %s reported a malformed hit %q\n", e.Name(), h)
				return false
			}
			hits[family][atlas.Hit{Controller: c, State: s, Event: ev}]++
		}
		runs++
	}

	ok := true
	for _, proto := range protocols {
		cov := atlas.Match(goldens[proto], hits[proto])
		total := len(goldens[proto].Transitions)
		fmt.Printf("protocov: %s coverage: %d/%d tuples covered, %d annotated unreachable\n",
			proto, len(cov.Covered), total, len(cov.Unreachable))
		for _, t := range cov.Uncovered {
			fmt.Printf("protocov: %s UNCOVERED tuple (%s) at %s — cover it with a kernel or annotate //atlas:unreachable\n",
				proto, t.Key(), t.Pos)
			ok = false
		}
		for _, t := range cov.Stale {
			fmt.Printf("protocov: %s STALE annotation: tuple (%s) at %s fired at runtime but is marked unreachable (%s)\n",
				proto, t.Key(), t.Pos, t.Unreachable)
			ok = false
		}
		for _, h := range cov.Unknown {
			fmt.Printf("protocov: %s note: runtime hit (%s %s %s) matches no atlas tuple\n",
				proto, h.Controller, h.State, h.Event)
		}
	}
	fmt.Printf("protocov: coverage grid: %d runs (%d-config kernel grid + %d corpus entries)\n",
		runs, len(chaos.Configs()), len(entries))
	return ok
}

// attachObservers wires a transition observer into every controller of m.
func attachObservers(m *machine.Machine, obs func(controller, state, event string)) {
	for _, l1 := range m.L1s {
		switch c := l1.(type) {
		case *mesi.L1:
			c.SetTransitionObserver(mesi.TransitionObserver(obs))
		case *denovo.L1:
			c.SetTransitionObserver(denovo.TransitionObserver(obs))
		}
	}
	if m.MESIDir != nil {
		m.MESIDir.SetTransitionObserver(mesi.TransitionObserver(obs))
	}
	if m.Registry != nil {
		m.Registry.SetTransitionObserver(denovo.TransitionObserver(obs))
	}
}
