package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"denovosync/internal/lint/atlas"
	"denovosync/internal/verify"
)

// The abstraction map (docs/atlas/absmap.json) relates the extracted
// implementation atlas to the internal/verify abstract models. Each
// implementation controller maps to a model component, each
// implementation state to a model state letter, and each handler event
// to the model events that abstract it (looked up by the exact
// kind-qualified event first, then by the base handler name).
//
// "unmodeled" lists implementation tuples the model deliberately
// abstracts away (with a reason); "unimplemented" lists model tuples
// with no implementation counterpart. Both lists are exact: an entry
// that no longer excuses anything fails the crosscheck as stale.
type absCtrl struct {
	Component string              `json:"component"`
	States    map[string]string   `json:"states"`
	Events    map[string][]string `json:"events"`
}

type absImplEntry struct {
	Controller string `json:"controller"`
	State      string `json:"state"` // "*" matches any state
	Event      string `json:"event"`
	Reason     string `json:"reason"`
}

type absModelEntry struct {
	Component string `json:"component"`
	State     string `json:"state"`
	Event     string `json:"event"`
	Reason    string `json:"reason"`
}

type absProto struct {
	Controllers   map[string]*absCtrl `json:"controllers"`
	Unmodeled     []absImplEntry      `json:"unmodeled"`
	Unimplemented []absModelEntry     `json:"unimplemented"`
}

type modelTuple struct{ component, state, event string }

// crosscheck maps the golden atlas onto the abstract models in both
// directions: every (reachable) implementation tuple must have a model
// image among the transitions the exhaustive exploration recorded, and
// every recorded model transition must have an implementation preimage.
func crosscheck(atlasDir string) bool {
	data, err := os.ReadFile(filepath.Join(atlasDir, "absmap.json"))
	if err != nil {
		fatal(fmt.Errorf("%v (the abstraction map is checked in; see docs/atlas)", err))
	}
	maps := map[string]*absProto{}
	if err := json.Unmarshal(data, &maps); err != nil {
		fatal(fmt.Errorf("absmap.json: %v", err))
	}

	// Record the models' reachable transitions at the protocheck grid
	// (2 and 3 cores, 2 ops/core; the full models subsume the base ones).
	recorded := map[string]map[modelTuple]bool{"mesi": {}, "denovo": {}}
	for _, cores := range []int{2, 3} {
		rm, rd := recorded["mesi"], recorded["denovo"]
		verify.NewMESIModelRecorded(cores, 2, func(c, s, e string) { rm[modelTuple{c, s, e}] = true })
		verify.NewDeNovoModelRecorded(cores, 2, func(c, s, e string) { rd[modelTuple{c, s, e}] = true })
	}

	ok := true
	for _, proto := range protocols {
		am := maps[proto]
		if am == nil {
			fmt.Printf("protocov: absmap.json has no %q section\n", proto)
			ok = false
			continue
		}
		golden, err := atlas.ReadFile(filepath.Join(atlasDir, proto+".json"))
		if err != nil {
			fatal(fmt.Errorf("%v (run `make atlas` first)", err))
		}
		ok = crosscheckProto(proto, am, golden, recorded[proto]) && ok
	}
	return ok
}

func crosscheckProto(proto string, am *absProto, golden *atlas.Atlas, recorded map[modelTuple]bool) bool {
	ok := true
	usedUnmod := make([]bool, len(am.Unmodeled))
	usedUnimp := make([]bool, len(am.Unimplemented))

	// Forward: implementation tuple -> model image.
	fwdOK := 0
	for _, t := range golden.Transitions {
		if t.Unreachable != "" {
			continue // statically present but dynamically dead; not modeled
		}
		ctrl := am.Controllers[t.Controller]
		if ctrl == nil {
			fmt.Printf("protocov: %s crosscheck: controller %s missing from absmap.json\n", proto, t.Controller)
			ok = false
			continue
		}
		mevents, haveEvents := ctrl.Events[t.Event]
		if !haveEvents {
			mevents, haveEvents = ctrl.Events[atlas.EventBase(t.Event)]
		}
		var mstates []string
		if t.State == "*" {
			for _, k := range sortedKeys(ctrl.States) {
				mstates = append(mstates, ctrl.States[k])
			}
		} else if ms, okS := ctrl.States[t.State]; okS {
			mstates = []string{ms}
		} else {
			fmt.Printf("protocov: %s crosscheck: state %s of %s missing from absmap.json\n", proto, t.State, t.Controller)
			ok = false
			continue
		}
		found := false
		if haveEvents {
			for _, s := range mstates {
				for _, e := range mevents {
					if recorded[modelTuple{ctrl.Component, s, e}] {
						found = true
					}
				}
			}
		}
		if found {
			fwdOK++
			continue
		}
		if i := matchUnmodeled(am.Unmodeled, t); i >= 0 {
			usedUnmod[i] = true
			continue
		}
		why := "no recorded model transition matches"
		if !haveEvents {
			why = "event has no absmap.json mapping"
		}
		fmt.Printf("protocov: %s IMPLEMENTED BUT UNMODELED: (%s) at %s — %s; extend the verify model, the event map, or the unmodeled list\n",
			proto, t.Key(), t.Pos, why)
		ok = false
	}

	// Reverse: recorded model transition -> implementation preimage.
	var mts []modelTuple
	for mt := range recorded { //simlint:allow determinism: sorted on the next line
		mts = append(mts, mt)
	}
	sort.Slice(mts, func(i, j int) bool {
		if mts[i].component != mts[j].component {
			return mts[i].component < mts[j].component
		}
		if mts[i].event != mts[j].event {
			return mts[i].event < mts[j].event
		}
		return mts[i].state < mts[j].state
	})
	revOK := 0
	for _, mt := range mts {
		if implPreimage(am, golden, mt) {
			revOK++
			continue
		}
		if i := matchUnimplemented(am.Unimplemented, mt); i >= 0 {
			usedUnimp[i] = true
			continue
		}
		fmt.Printf("protocov: %s MODELED BUT UNIMPLEMENTED: model transition (%s %s %s) has no atlas preimage\n",
			proto, mt.component, mt.state, mt.event)
		ok = false
	}

	for i, used := range usedUnmod {
		if !used {
			e := am.Unmodeled[i]
			fmt.Printf("protocov: %s STALE unmodeled entry (%s %s %s): every matching tuple now has a model image — remove it\n",
				proto, e.Controller, e.State, e.Event)
			ok = false
		}
	}
	for i, used := range usedUnimp {
		if !used {
			e := am.Unimplemented[i]
			fmt.Printf("protocov: %s STALE unimplemented entry (%s %s %s) — remove it\n",
				proto, e.Component, e.State, e.Event)
			ok = false
		}
	}
	fmt.Printf("protocov: %s crosscheck: %d impl tuples mapped onto the model, %d model transitions covered by the atlas\n",
		proto, fwdOK, revOK)
	return ok
}

// implPreimage reports whether some reachable atlas tuple abstracts to mt.
func implPreimage(am *absProto, golden *atlas.Atlas, mt modelTuple) bool {
	for _, t := range golden.Transitions {
		if t.Unreachable != "" {
			continue
		}
		ctrl := am.Controllers[t.Controller]
		if ctrl == nil || ctrl.Component != mt.component {
			continue
		}
		mevents, haveEvents := ctrl.Events[t.Event]
		if !haveEvents {
			mevents, haveEvents = ctrl.Events[atlas.EventBase(t.Event)]
		}
		if !haveEvents || !hasString(mevents, mt.event) {
			continue
		}
		if t.State == "*" || ctrl.States[t.State] == mt.state {
			return true
		}
	}
	return false
}

func matchUnmodeled(entries []absImplEntry, t *atlas.Transition) int {
	for i, e := range entries {
		if e.Controller != t.Controller {
			continue
		}
		if e.State != "*" && e.State != t.State {
			continue
		}
		if e.Event != t.Event && e.Event != atlas.EventBase(t.Event) {
			continue
		}
		return i
	}
	return -1
}

func matchUnimplemented(entries []absModelEntry, mt modelTuple) int {
	for i, e := range entries {
		if e.Component == mt.component && (e.State == "*" || e.State == mt.state) && e.Event == mt.event {
			return i
		}
	}
	return -1
}

func hasString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
