package main

import (
	"denovosync/internal/alloc"
	"denovosync/internal/chaos"
	"denovosync/internal/cpu"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
)

// Directed stress workloads for the coverage gate. The kernel grid
// exercises the protocols' steady-state paths; what it misses are the
// eviction races — a forward or writeback arriving at a controller that
// already lost the line. These workloads force capacity evictions of a
// contended line between accesses from other cores, under seeded message
// jitter inside the legal reorder envelope (per-class FIFO preserved),
// so those windows open on some seed deterministically.

const (
	stressRounds = 6
	// thrashLines of distinct lines exceed the 32 KiB L1, guaranteeing
	// the contended line is a capacity victim every sweep.
	thrashLines = 768
)

var stressSeeds = []uint64{1, 7, 13}

// raceSeeds drive the conflict-set variant; more seeds because the
// windows are narrow.
var raceSeeds = []uint64{3, 5, 11, 17, 29, 37, 41}

// wbRaceSeeds drive the direct-mapped writeback race. The target window
// needs one writeback's jitter to outlast a rival core's entire
// register→evict→writeback chain, so only some seeds open it; these were
// scanned to hit (and the schedule is deterministic, so they keep
// hitting). Several are listed for redundancy against timing-neutral
// refactors.
var wbRaceSeeds = []uint64{21, 26, 42, 59, 72}

// stressRun executes one seeded stress workload on a fresh machine with
// transition observers attached. Thread roles: cores 0 and 1 register a
// shared line and immediately thrash it out (writeback/Put in flight
// while forwards race in); core 2 reads the line (data and sync) so
// forwards chase the evicted owner; core 3 keeps a private read-only
// line (E in MESI) and evicts it.
func stressRun(cfg chaos.ProtoConfig, seed uint64, obs func(controller, state, event string)) error {
	p := machine.Params16()
	p.Signatures = cfg.Signatures
	p.WatchdogCycles = 2_000_000
	m := machine.New(p, cfg.Protocol, alloc.New())
	attachObservers(m, obs)
	chaos.Attach(m.Eng, m.Net, chaos.Policy{
		Seed: seed, MaxJitter: 32, Limit: -1, KeepClassOrder: true,
	})

	region := m.Space.Region("protocov.stress")
	a := m.Space.AllocAligned(proto.WordsPerLine, region)
	b := m.Space.AllocAligned(proto.WordsPerLine, region)
	thrash := m.Space.AllocAligned(thrashLines*proto.WordsPerLine, region)

	sweep := func(t *cpu.Thread) {
		for i := 0; i < thrashLines; i++ {
			t.Load(thrash + proto.Addr(i*proto.LineBytes))
		}
	}
	_, err := m.Run("protocov-stress", func(t *cpu.Thread) {
		switch t.ID {
		case 0, 1:
			for r := 0; r < stressRounds; r++ {
				t.SyncStore(a, uint64(r+1))
				if t.ID == 1 {
					t.Store(a+proto.WordBytes, uint64(r+1))
				}
				// Word 3 is never stored: this data read fills a line
				// whose word 0 is still registered.
				t.Load(a + 3*proto.WordBytes)
				sweep(t)
				t.Load(a)
				t.FetchAdd(a+2*proto.WordBytes, 1)
				t.Compute(t.RNG.Cycles(20, 300))
			}
		case 2:
			for r := 0; r < stressRounds*3; r++ {
				t.Load(a)
				t.Compute(t.RNG.Cycles(10, 150))
				t.SyncLoad(a)
				t.Load(a + proto.WordBytes)
			}
		case 3:
			for r := 0; r < stressRounds; r++ {
				t.Load(b)
				sweep(t)
			}
		}
	})
	return err
}

const raceRounds = 300

// raceRun is the conflict-set variant: the sweep touches only lines that
// map to the contended line's cache set, so a register→evict cycle takes
// ~1k cycles instead of a full-cache sweep, and a large jitter bound
// (still per-class FIFO) lets a writeback or Put linger in the mesh while
// requests from its own core (data loads pass the writeback gate) and
// others overtake it on different message classes.
func raceRun(cfg chaos.ProtoConfig, seed uint64, obs func(controller, state, event string)) error {
	p := machine.Params16()
	p.Signatures = cfg.Signatures
	p.WatchdogCycles = 2_000_000
	m := machine.New(p, cfg.Protocol, alloc.New())
	attachObservers(m, obs)
	chaos.Attach(m.Eng, m.Net, chaos.Policy{
		Seed: seed, MaxJitter: 2000, Limit: -1, KeepClassOrder: true,
	})

	sets := p.L1Size / proto.LineBytes / p.L1Ways
	region := m.Space.Region("protocov.race")
	a := m.Space.AllocAligned(proto.WordsPerLine, region)
	conflict := m.Space.AllocAligned((p.L1Ways+2)*sets*proto.WordsPerLine, region)
	// Offset the conflict rows so every row's line lands in a's set.
	setOf := func(x proto.Addr) int { return int(x/proto.LineBytes) & (sets - 1) }
	off := proto.Addr(((setOf(a) - setOf(conflict)) & (sets - 1)) * proto.LineBytes)

	sweep := func(t *cpu.Thread) {
		for j := 0; j < p.L1Ways+1; j++ {
			t.Load(conflict + off + proto.Addr(j*sets*proto.LineBytes))
		}
	}
	_, err := m.Run("protocov-race", func(t *cpu.Thread) {
		switch t.ID {
		case 0, 1:
			for r := 0; r < raceRounds; r++ {
				t.SyncStore(a, uint64(r+1))
				sweep(t)
				t.Load(a)
				t.Compute(t.RNG.Cycles(0, 100))
			}
		case 2:
			for r := 0; r < raceRounds*2; r++ {
				t.Load(a)
				t.Compute(t.RNG.Cycles(0, 50))
				t.Load(a)
				t.SyncLoad(a)
			}
		}
	})
	return err
}

const wbRaceRounds = 200

// wbRace targets the registry's rarest transition: a writeback arriving
// at a word the registry already owns (roL2 recvWB). The interleaving
// needs core A's writeback to linger in the mesh while core B registers
// the word, evicts it, and B's own writeback releases it first. Two
// workload properties make that window reachable at all:
//
//   - The registering access is a SyncLoad, which blocks until its ack,
//     so the word is provably Registered when the very next access runs.
//     (A non-blocking SyncStore races its own ack: the conflict eviction
//     usually wins, no writeback is sent, and the ack's reinstall defers
//     the writeback a whole round — thousands of cycles past any jitter
//     bound.)
//   - The L1 is direct-mapped (L1Ways=1), so evicting the contended
//     line costs exactly one conflicting load instead of an LRU sweep of
//     ways+1 jittered round trips. Eviction happens at access time, so
//     the writeback is in the mesh ~three hops after the registration
//     serialized — inside a rival writeback's jitter budget.
func wbRace(cfg chaos.ProtoConfig, seed uint64, obs func(controller, state, event string)) error {
	p := machine.Params16()
	p.Signatures = cfg.Signatures
	p.L1Ways = 1
	p.WatchdogCycles = 2_000_000
	m := machine.New(p, cfg.Protocol, alloc.New())
	attachObservers(m, obs)
	chaos.Attach(m.Eng, m.Net, chaos.Policy{
		Seed: seed, MaxJitter: 2000, Limit: -1, KeepClassOrder: true,
	})

	sets := p.L1Size / proto.LineBytes / p.L1Ways
	region := m.Space.Region("protocov.wbrace")
	a := m.Space.AllocAligned(proto.WordsPerLine, region)
	// Direct-mapped conflict: same set, different tag.
	b := a + proto.Addr(sets*proto.LineBytes)

	_, err := m.Run("protocov-wbrace", func(t *cpu.Thread) {
		switch t.ID {
		case 0, 1:
			for r := 0; r < wbRaceRounds; r++ {
				t.SyncLoad(a)
				t.Load(b)
				t.Compute(t.RNG.Cycles(0, 200))
			}
		}
	})
	return err
}
