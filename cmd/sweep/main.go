// Command sweep runs the contention sweep the paper's fixed
// configurations only sample: kernel performance versus offered load
// (the dummy-computation gap between synchronization operations), across
// protocols — locating the crossover where DeNovoSync0's
// read-registration ping-pong overtakes MESI's invalidation cost and
// where DeNovoSync's backoff pays off.
//
// The grid is planned and executed through internal/exp: runs execute in
// parallel on a worker pool, and with -journal an interrupted sweep
// resumes without re-executing completed grid points.
//
// Usage:
//
//	sweep -kernel nb-m-s-queue
//	sweep -kernel tatas-counter -cores 64
//	sweep -kernel nb-treiber-stack -csv out.csv
//	sweep -kernel nb-m-s-queue -journal sweep.jsonl   # resumable
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"

	"denovosync/internal/exp"
	"denovosync/internal/profiling"
)

func main() {
	var (
		kernelID    = flag.String("kernel", "nb-m-s-queue", "kernel slug (see denovosim -list)")
		cores       = flag.Int("cores", 16, "machine size: 16 or 64")
		iters       = flag.Int("iters", 30, "kernel iterations per thread")
		csvPath     = flag.String("csv", "", "write CSV to this file as well")
		journalPath = flag.String("journal", "", "JSONL result journal (enables resume)")
		workers     = flag.Int("workers", 0, "concurrent runs; 0 = GOMAXPROCS")
		timeout     = flag.Duration("timeout", 0, "per-run wall-clock limit; 0 = none")
		retries     = flag.Int("retries", 0, "extra attempts after a failed run")
		retryFailed = flag.Bool("retry-failed", false, "re-execute journaled failures")
		progress    = flag.Bool("progress", false, "print live progress to stderr")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()

	gaps := []int64{25600, 12800, 6400, 3200, 1600, 800, 400}
	plan, err := exp.SweepPlan(*kernelID, *cores, *iters, gaps)
	if err != nil {
		fatal(err)
	}

	stopProfile, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}()

	eng := &exp.Engine{
		Workers: *workers, Timeout: *timeout,
		Retries: *retries, RetryFailed: *retryFailed,
	}
	if *progress {
		eng.Progress = os.Stderr
	}
	if *journalPath != "" {
		j, prior, err := exp.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := j.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}()
		eng.Journal, eng.Prior = j, prior
	}

	// First ^C: stop dispatching, journal in-flight runs, exit 130.
	stop := make(chan struct{})
	eng.Stop = stop
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "sweep: interrupt — finishing in-flight runs (^C again to abort)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	records, sum, err := eng.Execute(plan)
	signal.Stop(sigc)
	if err != nil {
		if errors.Is(err, exp.ErrStopped) && interrupted.Load() {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("Sweep: %s on %d cores, %d iterations/thread — exec cycles (traffic)\n", *kernelID, *cores, *iters)
	fmt.Println("gap = dummy-compute cycles between operations (smaller = more contention)")
	fmt.Println()
	fmt.Printf("%8s", "gap")
	for _, prot := range []string{"MESI", "DeNovoSync0", "DeNovoSync"} {
		fmt.Printf("  %22s", prot)
	}
	fmt.Println()

	// Plan order is gap-major, protocol-minor: three runs per table row.
	for i := 0; i < len(plan.Runs); i += 3 {
		fmt.Printf("%8d", plan.Runs[i].GapMin)
		for _, r := range plan.Runs[i : i+3] {
			rec := records[r.Key()]
			if rec == nil || rec.Status != exp.StatusOK {
				fmt.Printf("  %22s", "FAILED")
				continue
			}
			fmt.Printf("  %12d (%8d)", rec.Stats.ExecTime, rec.Stats.TotalTraffic)
		}
		fmt.Println()
	}

	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return exp.SweepCSV(w, plan, records)
		}); err != nil {
			fatal(err)
		}
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d runs failed (-retry-failed re-executes journaled failures)\n",
			sum.Failed, sum.Total)
		os.Exit(1)
	}
}

// writeFile writes via fn and reports Close errors — a full disk
// surfaces as a failure, not a truncated CSV.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
