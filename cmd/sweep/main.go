// Command sweep runs the contention sweep the paper's fixed
// configurations only sample: kernel performance versus offered load
// (the dummy-computation gap between synchronization operations), across
// protocols — locating the crossover where DeNovoSync0's
// read-registration ping-pong overtakes MESI's invalidation cost and
// where DeNovoSync's backoff pays off.
//
// Usage:
//
//	sweep -kernel nb-m-s-queue
//	sweep -kernel tatas-counter -cores 64
//	sweep -kernel nb-treiber-stack -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"denovosync"
	"denovosync/internal/profiling"
)

func main() {
	var (
		kernelID   = flag.String("kernel", "nb-m-s-queue", "kernel slug (see denovosim -list)")
		cores      = flag.Int("cores", 16, "machine size: 16 or 64")
		iters      = flag.Int("iters", 30, "kernel iterations per thread")
		csvPath    = flag.String("csv", "", "write CSV to this file as well")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()

	k, ok := denovosync.KernelByID(*kernelID)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown kernel %q\n", *kernelID)
		os.Exit(1)
	}

	stopProfile, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}()

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		csv = f
		fmt.Fprintln(csv, "kernel,protocol,gap_cycles,exec_cycles,traffic_flit_hops")
	}

	protos := []denovosync.Protocol{denovosync.MESI, denovosync.DeNovoSync0, denovosync.DeNovoSync}
	fmt.Printf("Sweep: %s on %d cores, %d iterations/thread — exec cycles (traffic)\n", k.ID, *cores, *iters)
	fmt.Println("gap = dummy-compute cycles between operations (smaller = more contention)")
	fmt.Println()
	fmt.Printf("%8s", "gap")
	for _, p := range protos {
		fmt.Printf("  %22s", p)
	}
	fmt.Println()

	gaps := []int{25600, 12800, 6400, 3200, 1600, 800, 400}
	for _, gap := range gaps {
		fmt.Printf("%8d", gap)
		for _, prot := range protos {
			var params denovosync.Params
			if *cores == 64 {
				params = denovosync.Params64()
			} else {
				params = denovosync.Params16()
			}
			m := denovosync.NewMachine(params, prot, denovosync.NewSpace())
			cfg := denovosync.KernelConfig{
				Cores: *cores, Iters: *iters, EqChecks: -1,
				NonSynchMin: denovosync.Cycle(gap),
				NonSynchMax: denovosync.Cycle(gap) + denovosync.Cycle(gap)/4 + 1,
			}
			rs, err := denovosync.RunKernel(k, m, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\nsweep: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  %12d (%8d)", rs.ExecTime, rs.TotalTraffic)
			if csv != nil {
				fmt.Fprintf(csv, "%s,%s,%d,%d,%d\n", k.ID, prot.Short(), gap, rs.ExecTime, rs.TotalTraffic)
			}
		}
		fmt.Println()
	}
}
