// Command denovosim runs one workload (a synchronization kernel or an
// application model) on one protocol and machine size, and prints the full
// statistics — the single-experiment entry point.
//
// Usage:
//
//	denovosim -list
//	denovosim -kernel tatas-single-q -protocol DS -cores 16
//	denovosim -app canneal -protocol M
//	denovosim -kernel nb-m-s-queue -protocol DS0 -cores 64 -iters 20
package main

import (
	"flag"
	"fmt"
	"os"

	"denovosync"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available kernels and apps")
		kernelID = flag.String("kernel", "", "kernel slug (see -list)")
		appID    = flag.String("app", "", "application slug (see -list)")
		protName = flag.String("protocol", "DS", "protocol: M, DS0 or DS")
		cores    = flag.Int("cores", 0, "16 or 64 (default: kernel 16, app per paper)")
		iters    = flag.Int("iters", 0, "override kernel iteration count")
		scale    = flag.Int("scale", 1, "application workload divisor")
		seed     = flag.Uint64("seed", 1, "deterministic RNG seed")
		lps      = flag.Int("lps", 0, "partition the machine into this many logical processes run in parallel (0/1 = serial engine; results are bit-identical either way)")
		traceN   = flag.Int("trace", 0, "log the first N network messages to stderr")
		watchdog = flag.Uint64("watchdog-cycles", 100_000_000,
			"abort with a diagnostic snapshot if no core retires an operation for this many cycles (0 disables)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Synchronization kernels (-kernel):")
		for _, k := range denovosync.Kernels() {
			fmt.Printf("  %-22s %-12s (%q, %d iters)\n", k.ID, k.Group, k.Name, k.DefaultIters)
		}
		fmt.Println("Applications (-app, inputs are the Table 2 analog):")
		for _, a := range denovosync.Apps() {
			fmt.Printf("  %-14s %-16s %2d cores  %s\n", a.ID, a.Pattern, a.DefaultCores, a.Input)
		}
		return
	}

	prot, ok := parseProtocol(*protName)
	if !ok {
		fatalf("unknown protocol %q (want M, DS0 or DS)", *protName)
	}

	switch {
	case *kernelID != "" && *appID != "":
		fatalf("choose one of -kernel or -app")
	case *kernelID != "":
		k, ok := denovosync.KernelByID(*kernelID)
		if !ok {
			fatalf("unknown kernel %q (try -list)", *kernelID)
		}
		n := *cores
		if n == 0 {
			n = 16
		}
		p := paramsFor(n)
		p.Seed = *seed
		p.WatchdogCycles = denovosync.Cycle(*watchdog)
		p.LPs = clampLPs(*lps, n)
		m := denovosync.NewMachine(p, prot, denovosync.NewSpace())
		if *traceN > 0 {
			if p.LPs > 1 {
				fatalf("-trace is serial-only; drop -lps")
			}
			m.EnableTrace(os.Stderr, denovosync.AllMsgClasses, *traceN)
		}
		rs, err := denovosync.RunKernel(k, m, denovosync.KernelConfig{Cores: n, Iters: *iters, EqChecks: -1})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(rs)
	case *appID != "":
		a, ok := denovosync.AppByID(*appID)
		if !ok {
			fatalf("unknown app %q (try -list)", *appID)
		}
		n := *cores
		if n == 0 {
			n = a.DefaultCores
		}
		p := paramsFor(n)
		p.Seed = *seed
		p.WatchdogCycles = denovosync.Cycle(*watchdog)
		p.LPs = clampLPs(*lps, n)
		m := denovosync.NewMachine(p, prot, denovosync.NewSpace())
		if *traceN > 0 {
			if p.LPs > 1 {
				fatalf("-trace is serial-only; drop -lps")
			}
			m.EnableTrace(os.Stderr, denovosync.AllMsgClasses, *traceN)
		}
		rs, err := denovosync.RunApp(a, m, *scale)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(rs)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseProtocol(s string) (denovosync.Protocol, bool) {
	switch s {
	case "M", "MESI", "mesi":
		return denovosync.MESI, true
	case "DS0", "ds0", "DeNovoSync0":
		return denovosync.DeNovoSync0, true
	case "DS", "ds", "DeNovoSync":
		return denovosync.DeNovoSync, true
	}
	return 0, false
}

func paramsFor(cores int) denovosync.Params {
	switch cores {
	case 16:
		return denovosync.Params16()
	case 64:
		return denovosync.Params64()
	}
	fatalf("unsupported core count %d (want 16 or 64)", cores)
	panic("unreachable")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "denovosim: "+format+"\n", args...)
	os.Exit(1)
}

// clampLPs bounds the -lps request to the machine's tile count (an LP
// owns at least one tile), so one flag value drives mixed-size runs.
func clampLPs(lps, cores int) int {
	if lps > cores {
		return cores
	}
	return lps
}
