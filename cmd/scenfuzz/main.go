// Command scenfuzz drives the coverage-guided scenario fuzzer
// (internal/fuzz): seeded mutation campaigns over program and kernel
// scenarios, deterministic corpus replay, atlas-coverage gating of the
// checked-in corpus, failure minimization, corpus pruning, and external
// trace ingestion.
//
// Usage:
//
//	scenfuzz run -seed 1 -batches 8 -batch-size 32 \
//	    -corpus testdata/corpus -out /tmp/campaign      # fuzz campaign
//	scenfuzz replay testdata/corpus/<fp>.json           # reproduce one entry
//	scenfuzz cover -corpus testdata/corpus              # the fuzz-smoke gate
//	scenfuzz minimize findings/<fp>.json -o repro.json  # shrink a failure
//	scenfuzz seed-stress -o testdata/corpus             # translated batteries
//	scenfuzz seed-kernels -o testdata/corpus            # kernel-grid entries
//	scenfuzz prune -corpus testdata/corpus              # greedy set cover
//	scenfuzz ingest trace.jsonl -config DS -o corpus    # external trace
//
// Every command is deterministic: the same flags and inputs always
// produce the same scenarios, verdicts, and corpus bytes. Campaigns are
// resumable — interrupt one (^C or -stop-after) and re-run the identical
// command; journaled executions replay from disk and the final corpus is
// byte-identical to an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"denovosync/internal/fuzz"
	"denovosync/internal/kernels"
	"denovosync/internal/lint/atlas"
	"denovosync/internal/sim"
	"denovosync/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "cover":
		cmdCover(os.Args[2:])
	case "minimize":
		cmdMinimize(os.Args[2:])
	case "seed-stress":
		cmdSeedStress(os.Args[2:])
	case "seed-kernels":
		cmdSeedKernels(os.Args[2:])
	case "prune":
		cmdPrune(os.Args[2:])
	case "ingest":
		cmdIngest(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenfuzz: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: scenfuzz <command> [flags]

commands:
  run           coverage-guided mutation campaign (resumable, journaled)
  replay        re-run corpus entries and verify the recorded results
  cover         replay a corpus and gate full atlas-tuple coverage
  minimize      bisect a failing scenario to a minimal reproducer
  seed-stress   write the translated protocov stress batteries as entries
  seed-kernels  write kernel-grid coverage scenarios as entries
  prune         reduce a corpus to a minimal covering subset (set cover)
  ingest        convert an external trace (trace.v1 JSONL) into an entry

run 'scenfuzz <command> -h' for the command's flags
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenfuzz:", err)
	os.Exit(1)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("scenfuzz run", flag.ExitOnError)
	var (
		seed      = fs.Uint64("seed", 1, "campaign seed (drives candidate generation)")
		batches   = fs.Int("batches", 8, "mutation batches after the seed replay")
		batchSize = fs.Int("batch-size", 32, "candidates per batch")
		corpus    = fs.String("corpus", "testdata/corpus", "read-only seed corpus (empty or missing = from scratch)")
		out       = fs.String("out", "scenfuzz.out", "output dir (corpus/, findings/, journal.jsonl)")
		journal   = fs.String("journal", "", "journal path override (default <out>/journal.jsonl)")
		workers   = fs.Int("workers", 0, "concurrent executions; 0 = GOMAXPROCS")
		stopAfter = fs.Int("stop-after", 0, "stop after N executions this session (0 = no limit)")
		targets   = fs.String("targets", "", "comma-separated controller/state/event tuples: stop early once all are covered")
		quiet     = fs.Bool("quiet", false, "suppress progress output")
	)
	fs.Parse(args)

	cfg := fuzz.CampaignConfig{
		Seed:      *seed,
		Batches:   *batches,
		BatchSize: *batchSize,
		CorpusDir: *corpus,
		OutDir:    *out,
		Journal:   *journal,
		Workers:   *workers,
		StopAfter: *stopAfter,
		Targets:   splitCSV(*targets),
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	report, err := fuzz.RunCampaign(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenfuzz: %d batches, %d executed, %d replayed from journal\n",
		report.Batches, report.Executed, report.Resumed)
	fmt.Printf("scenfuzz: %d tuples covered, %d entries accepted into %s\n",
		len(report.Covered), report.Accepted, filepath.Join(*out, "corpus"))
	if report.TargetsMet {
		fmt.Println("scenfuzz: all targets covered")
	}
	if report.Stopped {
		fmt.Println("scenfuzz: stopped early — re-run the identical command to resume")
	}
	if report.Findings > 0 {
		// A finding is the campaign succeeding at its job; surface it
		// loudly so CI and nightly runs flag the scenario for triage.
		fmt.Fprintf(os.Stderr, "scenfuzz: %d non-ok scenarios written to %s — minimize with 'scenfuzz minimize'\n",
			report.Findings, filepath.Join(*out, "findings"))
		os.Exit(1)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("scenfuzz replay", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print the full live result")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(errors.New("usage: scenfuzz replay <entry.json> [more...]"))
	}
	ok := true
	for _, path := range fs.Args() {
		e, err := fuzz.LoadEntry(path)
		if err != nil {
			fatal(err)
		}
		res, match := fuzz.Replay(e)
		status := "reproduced"
		if !match {
			status = fmt.Sprintf("DRIFTED (recorded digest %s, live %s)", e.Result.Digest(), res.Digest())
			ok = false
		}
		fmt.Printf("%s: %s: verdict %s: %s\n", path, e.Scenario, res.Verdict, status)
		if *verbose {
			fmt.Printf("  hits=%d messages=%d events=%d summary=%q detail=%q\n",
				len(res.Hits), res.Messages, res.Events, res.Summary, res.Detail)
		}
	}
	if !ok {
		fatal(errors.New("one or more entries did not reproduce their recorded result"))
	}
}

// cmdCover is the fuzz-smoke gate: replay every corpus entry, verify
// each reproduces its recorded result digest-for-digest, and require the
// union of their hits to cover every reachable atlas tuple — proving the
// checked-in corpus alone re-reaches everything the retired compiled-in
// batteries and the kernel grid covered.
func cmdCover(args []string) {
	fs := flag.NewFlagSet("scenfuzz cover", flag.ExitOnError)
	var (
		corpusDir = fs.String("corpus", "testdata/corpus", "corpus to replay")
		atlasDir  = fs.String("atlas", "docs/atlas", "golden atlas dir")
		workers   = fs.Int("workers", 0, "concurrent replays; 0 = GOMAXPROCS")
		report    = fs.Bool("report", false, "report coverage without gating (for rediscovery measurements)")
	)
	fs.Parse(args)

	entries, err := fuzz.LoadCorpus(*corpusDir)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no corpus entries in %s", *corpusDir))
	}
	results := executeAll(entries, *workers)

	ok := true
	hits := map[string]map[atlas.Hit]uint64{"mesi": {}, "denovo": {}}
	for i, e := range entries {
		res := results[i]
		if e.Result.Verdict != "" && res.Digest() != e.Result.Digest() {
			fmt.Printf("scenfuzz: DRIFT: %s (%s) recorded digest %s, live %s\n",
				e.Name(), e.Scenario, e.Result.Digest(), res.Digest())
			ok = false
		}
		family := "denovo"
		if e.Scenario.Config == "M" {
			family = "mesi"
		}
		for _, h := range res.Hits {
			c, s, ev, good := fuzz.HitTuple(h)
			if !good {
				fatal(fmt.Errorf("malformed hit %q in %s", h, e.Name()))
			}
			hits[family][atlas.Hit{Controller: c, State: s, Event: ev}]++
		}
	}

	for _, proto := range []string{"mesi", "denovo"} {
		golden, err := atlas.ReadFile(filepath.Join(*atlasDir, proto+".json"))
		if err != nil {
			fatal(fmt.Errorf("%v (run `make atlas` first)", err))
		}
		cov := atlas.Match(golden, hits[proto])
		fmt.Printf("scenfuzz: %s coverage from corpus alone: %d/%d tuples covered, %d annotated unreachable\n",
			proto, len(cov.Covered), len(golden.Transitions), len(cov.Unreachable))
		if *report {
			continue
		}
		for _, t := range cov.Uncovered {
			fmt.Printf("scenfuzz: %s UNCOVERED tuple (%s) at %s — the corpus lost it; re-seed or fuzz it back\n",
				proto, t.Key(), t.Pos)
			ok = false
		}
		for _, t := range cov.Stale {
			fmt.Printf("scenfuzz: %s STALE annotation: tuple (%s) at %s fired but is marked unreachable (%s)\n",
				proto, t.Key(), t.Pos, t.Unreachable)
			ok = false
		}
	}
	fmt.Printf("scenfuzz: replayed %d corpus entries\n", len(entries))
	if !ok {
		os.Exit(1)
	}
}

func cmdMinimize(args []string) {
	fs := flag.NewFlagSet("scenfuzz minimize", flag.ExitOnError)
	out := fs.String("o", "minimized.json", "reduced reproducer output path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(errors.New("usage: scenfuzz minimize [-o out.json] <entry-or-scenario.json>"))
	}
	s, err := loadScenario(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scenfuzz: minimizing %s\n", s)
	m, err := fuzz.Minimize(s, fuzz.Execute)
	if err != nil {
		fatal(err)
	}
	if err := fuzz.WriteMinimized(*out, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scenfuzz: %d trials -> %s (verdict %s, %d messages)\n",
		len(m.Trials), *out, m.Verdict, m.Messages)
}

// loadScenario accepts either a corpus entry or a bare scenario file.
func loadScenario(path string) (fuzz.Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return fuzz.Scenario{}, err
	}
	if e, err := fuzz.DecodeEntry(b); err == nil {
		return e.Scenario, nil
	}
	s, err := fuzz.DecodeScenario(b)
	if err != nil {
		return fuzz.Scenario{}, fmt.Errorf("%s: neither a corpus entry nor a scenario: %w", path, err)
	}
	return s, nil
}

func cmdSeedStress(args []string) {
	fs := flag.NewFlagSet("scenfuzz seed-stress", flag.ExitOnError)
	out := fs.String("o", "testdata/corpus", "corpus dir to write entries into")
	workers := fs.Int("workers", 0, "concurrent executions; 0 = GOMAXPROCS")
	fs.Parse(args)
	writeRecorded(fuzz.StressSeeds(), *out, *workers)
}

func cmdSeedKernels(args []string) {
	fs := flag.NewFlagSet("scenfuzz seed-kernels", flag.ExitOnError)
	var (
		out       = fs.String("o", "testdata/corpus", "corpus dir to write entries into")
		iters     = fs.Int("iters", 4, "iterations per core (0 = kernel default)")
		seed      = fs.Uint64("seed", 1, "jitter seed")
		configCSV = fs.String("configs", "M,DS0,DS,DSsig", "comma-separated protocol configs")
		kernelCSV = fs.String("kernels", "", "comma-separated kernel IDs (empty = all)")
		workers   = fs.Int("workers", 0, "concurrent executions; 0 = GOMAXPROCS")
	)
	fs.Parse(args)

	ids := splitCSV(*kernelCSV)
	if len(ids) == 0 {
		for _, k := range kernels.All() {
			ids = append(ids, k.ID)
		}
	}
	var entries []fuzz.Entry
	for _, cfg := range splitCSV(*configCSV) {
		for _, id := range ids {
			entries = append(entries, fuzz.Entry{
				Note: fmt.Sprintf("seed-kernels: steady-state grid coverage, kernel %s under %s (iters %d)", id, cfg, *iters),
				Scenario: fuzz.Scenario{
					Schema: fuzz.Schema, Kind: fuzz.KindKernel, Config: cfg,
					Cores: 16, Kernel: id, Iters: *iters, Seed: *seed,
				},
			})
		}
	}
	writeRecorded(entries, *out, *workers)
}

// writeRecorded executes every entry's scenario, records the result, and
// writes the entries content-addressed into dir. Non-ok verdicts are
// surfaced (and still written — they are reproducers).
func writeRecorded(entries []fuzz.Entry, dir string, workers int) {
	for _, e := range entries {
		if err := e.Scenario.Validate(); err != nil {
			fatal(err)
		}
	}
	results := executeAll(entries, workers)
	nonOK := 0
	for i := range entries {
		entries[i].Result = results[i]
		if !results[i].OK() {
			nonOK++
			fmt.Fprintf(os.Stderr, "scenfuzz: %s: verdict %s: %s\n",
				entries[i].Scenario, results[i].Verdict, results[i].Detail)
		}
		if _, err := fuzz.WriteEntry(dir, entries[i]); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("scenfuzz: wrote %d recorded entries to %s\n", len(entries), dir)
	if nonOK > 0 {
		fatal(fmt.Errorf("%d entries recorded a non-ok verdict — the tree has a live failure", nonOK))
	}
}

// executeAll runs every entry's scenario on a worker pool and returns
// the results in entry order. Each execution is independent and
// deterministic, so parallelism cannot change any result.
func executeAll(entries []fuzz.Entry, workers int) []fuzz.Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]fuzz.Result, len(entries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = fuzz.Execute(entries[i].Scenario)
			}
		}()
	}
	for i := range entries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

func cmdPrune(args []string) {
	fs := flag.NewFlagSet("scenfuzz prune", flag.ExitOnError)
	corpusDir := fs.String("corpus", "testdata/corpus", "corpus dir to prune in place")
	dryRun := fs.Bool("n", false, "print what would be dropped without deleting")
	fs.Parse(args)

	entries, err := fuzz.LoadCorpus(*corpusDir)
	if err != nil {
		fatal(err)
	}
	keep := fuzz.Prune(entries)
	kept := map[string]bool{}
	for _, e := range keep {
		kept[e.Name()] = true
	}
	dropped := 0
	for _, e := range entries {
		if kept[e.Name()] {
			continue
		}
		dropped++
		if *dryRun {
			fmt.Printf("scenfuzz: would drop %s (%s)\n", e.Name(), e.Scenario)
			continue
		}
		if err := os.Remove(filepath.Join(*corpusDir, e.Name())); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("scenfuzz: kept %d of %d entries (%d dropped); coverage union preserved\n",
		len(keep), len(entries), dropped)
}

func cmdIngest(args []string) {
	fs := flag.NewFlagSet("scenfuzz ingest", flag.ExitOnError)
	var (
		config = fs.String("config", "DS", "protocol config for the replay (M, DS0, DS, DSsig)")
		seed   = fs.Uint64("seed", 1, "jitter seed")
		jitter = fs.Int64("jitter", 0, "per-message jitter bound in cycles (0 = none)")
		out    = fs.String("o", "testdata/corpus", "corpus dir to write the entry into")
		note   = fs.String("note", "", "provenance note (default names the trace file)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(errors.New("usage: scenfuzz ingest [flags] <trace.jsonl | ->"))
	}

	var r io.Reader = os.Stdin
	name := "stdin"
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, name = f, filepath.Base(path)
	}
	prog, err := trace.Ingest(r)
	if err != nil {
		fatal(err)
	}
	s, err := fuzz.FromTrace(prog, *config, *seed, sim.Cycle(*jitter))
	if err != nil {
		fatal(err)
	}
	e := fuzz.Entry{Note: *note, Scenario: s, Result: fuzz.Execute(s)}
	if e.Note == "" {
		e.Note = fmt.Sprintf("ingest: %s replayed under %s seed %d", name, *config, *seed)
	}
	path, err := fuzz.WriteEntry(*out, e)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenfuzz: %s -> %s (verdict %s, %d tuples hit)\n", name, path, e.Result.Verdict, len(e.Result.Hits))
	if !e.Result.OK() {
		fatal(fmt.Errorf("ingested trace fails: %s — minimize with 'scenfuzz minimize %s'", e.Result.Detail, path))
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
