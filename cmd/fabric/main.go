// Command fabric distributes an experiment grid across worker processes
// with crash tolerance at every seam: a lease-based coordinator serves
// content-addressed work units over HTTP, workers execute them through
// the internal/exp engine and journal locally before handing results
// off, and every failure mode — killed workers, dropped heartbeats,
// duplicate completions, an unreachable or restarted coordinator —
// converges to the same merged result set a serial single-machine run
// produces, byte for byte.
//
// Usage:
//
//	fabric serve -fig fig3 -cores 16 -journal coord.jsonl -addr 127.0.0.1:7716
//	fabric work  -coordinator http://127.0.0.1:7716 -id w1 -journal w1.jsonl
//	fabric status -coordinator http://127.0.0.1:7716
//	fabric merge -fig fig3 -cores 16 -journal coord.jsonl -journal w1.jsonl -o fig3.csv
//	fabric smoke                                 # self-contained fault battery
//
// serve exits once the grid completes (after -linger, giving workers
// time to observe completion); restarting it from the same -journal
// resumes mid-grid with nothing lost but live leases. work exits when
// the coordinator reports the grid done; -stop-after N makes it exit
// after N journaled runs *without* handing them off — the deterministic
// stand-in for SIGKILL used by the smoke battery (the restarted worker
// re-offers its journal and the grid still converges).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"denovosync/internal/backoff"
	"denovosync/internal/exp"
	"denovosync/internal/fabric"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "work":
		cmdWork(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	case "smoke":
		cmdSmoke(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fabric: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: fabric <subcommand> [flags]

  serve   coordinate a grid: lease work units to workers over HTTP
  work    claim, execute, and hand off work units from a coordinator
  status  print a coordinator's grid progress
  merge   reconcile coordinator/worker journals and render the CSV
  smoke   run the self-contained fault-injection battery (seconds)

Run 'fabric <subcommand> -h' for subcommand flags.
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fabric:", err)
	os.Exit(1)
}

// planFlags mirrors cmd/exp's grid selection.
type planFlags struct {
	manifest string
	fig      string
	cores    int
	scale    int
}

func (p *planFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.manifest, "manifest", "", "grid manifest file (JSON)")
	fs.StringVar(&p.fig, "fig", "", "built-in figure/ablation plan (see: exp list)")
	fs.IntVar(&p.cores, "cores", 16, "figure machine size: 16 or 64")
	fs.IntVar(&p.scale, "scale", 1, "workload divisor (1 = paper scale)")
}

func (p *planFlags) load() (exp.Plan, error) {
	switch {
	case p.manifest != "" && p.fig != "":
		return exp.Plan{}, errors.New("-manifest and -fig are mutually exclusive")
	case p.manifest != "":
		return exp.LoadManifest(p.manifest)
	case p.fig != "":
		return exp.FigurePlan(p.fig, p.cores, exp.Options{Scale: p.scale})
	}
	return exp.Plan{}, errors.New("select a grid with -manifest or -fig")
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("fabric serve", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	var (
		journalPath = fs.String("journal", "", "coordinator result journal (required: this is the durable state)")
		addr        = fs.String("addr", "127.0.0.1:7716", "listen address (port 0 picks a free port)")
		addrFile    = fs.String("addr-file", "", "write the bound http:// base URL here (for scripts/tests)")
		unit        = fs.Int("unit", 4, "runs per leased work unit")
		ttl         = fs.Duration("ttl", 30*time.Second, "lease TTL without a heartbeat")
		linger      = fs.Duration("linger", 2*time.Second, "serve this long after the grid completes")
	)
	fs.Parse(args)
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}
	if *journalPath == "" {
		fatal(errors.New("serve needs -journal (the coordinator's durable state)"))
	}

	c, err := fabric.Open(plan, *journalPath, fabric.Config{UnitSize: *unit, LeaseTTL: *ttl})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	base := "http://" + ln.Addr().String()
	if *addrFile != "" {
		if err := writeFileAtomic(*addrFile, []byte(base+"\n")); err != nil {
			fatal(err)
		}
	}
	st, _ := c.Status()
	fmt.Fprintf(os.Stderr, "fabric: serving %s at %s (%d/%d complete, unit %d, ttl %s)\n",
		plan.ID, base, st.OK+st.Failed, st.Total, *unit, *ttl)

	srv := &http.Server{Handler: fabric.Handler(c)}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-sigc:
			// Graceful stop: everything accepted so far is already fsynced;
			// restarting from the same -journal resumes mid-grid.
			fmt.Fprintln(os.Stderr, "fabric: interrupt — journal preserved; restart serve to resume")
			srv.Close()
			c.Close()
			os.Exit(130)
		case <-tick.C:
			if c.Done() {
				// Give workers a beat to observe completion on their next claim.
				time.Sleep(*linger)
				srv.Close()
				st, _ := c.Status()
				if err := c.Close(); err != nil {
					fatal(err)
				}
				reportStatus(st)
				if st.Failed > 0 || len(st.Conflicts) > 0 {
					os.Exit(1)
				}
				return
			}
		}
	}
}

func cmdWork(args []string) {
	fs := flag.NewFlagSet("fabric work", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (http://host:port)")
		id          = fs.String("id", "", "stable worker ID (a restart with the same ID supersedes its old leases)")
		journalPath = fs.String("journal", "", "worker-local result journal (journaled before hand-off)")
		workers     = fs.Int("workers", 0, "concurrent runs within a unit; 0 = GOMAXPROCS")
		timeout     = fs.Duration("timeout", 0, "per-attempt wall-clock limit; 0 = none")
		retries     = fs.Int("retries", 0, "extra attempts after a failed run")
		stopAfter   = fs.Int("stop-after", 0, "exit after N journaled runs WITHOUT hand-off (deterministic kill)")
		seed        = fs.Uint64("seed", 1, "backoff jitter seed")
		quiet       = fs.Bool("quiet", false, "suppress progress output")
	)
	fs.Parse(args)
	if *coordinator == "" || *id == "" {
		fatal(errors.New("work needs -coordinator and -id"))
	}

	// Graceful stop on ^C: finish in-flight runs, hand off, exit.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fabric: interrupt — finishing in-flight runs (^C again to abort)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	cfg := fabric.WorkerConfig{
		ID:            *id,
		JournalPath:   *journalPath,
		EngineWorkers: *workers,
		Timeout:       *timeout,
		Retries:       *retries,
		RunBackoff:    backoff.Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Seed: *seed},
		RPCBackoff:    backoff.Policy{Base: 100 * time.Millisecond, Max: 10 * time.Second, Seed: *seed + 1},
		StopAfter:     *stopAfter,
		Stop:          stop,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	sum, err := fabric.NewWorker(fabric.Dial(*coordinator), cfg).Run()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fabric: %s\n", sum)
	if sum.Killed {
		// The expected outcome of a bounded session (like exp -stop-after):
		// locally journaled results hand off on the next start.
		fmt.Fprintln(os.Stderr, "fabric: stop-after kill — restart work with the same -id and -journal to resume")
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("fabric status", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (http://host:port)")
	fs.Parse(args)
	if *coordinator == "" {
		fatal(errors.New("status needs -coordinator"))
	}
	st, err := fabric.Dial(*coordinator).Status()
	if err != nil {
		fatal(err)
	}
	reportStatus(st)
	if len(st.Conflicts) > 0 {
		os.Exit(1)
	}
}

func reportStatus(st fabric.StatusResponse) {
	fmt.Printf("%s: %d runs: %d ok, %d failed, %d leased, %d pending\n",
		st.Plan, st.Total, st.OK, st.Failed, st.Leased, st.Pending)
	for w, n := range st.Workers {
		fmt.Printf("  leased to %s: %d\n", w, n)
	}
	for _, c := range st.Conflicts {
		fmt.Printf("  DETERMINISM CONFLICT %s: %d distinct results for one run\n", c.Key, len(c.Results))
	}
	if st.Done {
		fmt.Println("grid complete")
	}
}

// journalList collects repeated -journal flags.
type journalList []string

func (j *journalList) String() string { return strings.Join(*j, ",") }
func (j *journalList) Set(s string) error {
	*j = append(*j, s)
	return nil
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("fabric merge", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	var journals journalList
	fs.Var(&journals, "journal", "result journal (repeatable: coordinator + workers)")
	outPath := fs.String("o", "", "output CSV file (default stdout)")
	salvage := fs.Bool("salvage", false, "recover damaged journals instead of refusing them")
	fs.Parse(args)
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}
	if len(journals) == 0 {
		fatal(errors.New("merge needs at least one -journal"))
	}
	records, sum, err := exp.ReconcileJournals(journals, *salvage)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fabric: %s\n", sum)
	if err := sum.Err(); err != nil {
		fatal(err) // a determinism conflict never merges silently
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := exp.MergeCSV(w, plan, records); err != nil {
		fatal(err)
	}
}

// writeFileAtomic writes via a temp file + rename so readers polling for
// the file never observe a partial write.
func writeFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
