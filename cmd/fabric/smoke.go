package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"denovosync/internal/backoff"
	"denovosync/internal/exp"
	"denovosync/internal/fabric"
)

// cmdSmoke is the seconds-scale CI gate over the whole fabric: a real
// grid served over real loopback HTTP to two workers, with a worker
// killed mid-grid (stop-after, no hand-off), its restart re-offering the
// local journal, an injected duplicate completion, a parked hand-off
// behind injected RPC failures, and a coordinator restart from its
// journal — all required to converge to a figure CSV byte-identical to
// a serial single-machine run of the same plan.
func cmdSmoke(args []string) {
	fs := flag.NewFlagSet("fabric smoke", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	fs.Parse(args)
	if pf.fig == "" && pf.manifest == "" {
		pf.fig, pf.scale = "fig3", 25 // the exp-smoke grid: 18 real runs, seconds
	}
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}
	dir, err := os.MkdirTemp("", "fabric-smoke-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	step := func(format string, a ...interface{}) {
		fmt.Fprintf(os.Stderr, "fabric-smoke: "+format+"\n", a...)
	}

	// Ground truth: the plan executed serially in this process.
	step("serial baseline: %s (%d runs)", plan.ID, len(plan.Runs))
	serial := &exp.Engine{Workers: 1}
	records, _, err := serial.Execute(plan)
	if err != nil {
		fatal(err)
	}
	var want bytes.Buffer
	if err := exp.MergeCSV(&want, plan, records); err != nil {
		fatal(err)
	}

	// The coordinator, over real loopback HTTP.
	coordJournal := filepath.Join(dir, "coordinator.jsonl")
	c, err := fabric.Open(plan, coordJournal, fabric.Config{UnitSize: 3})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: fabric.Handler(c)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	worker := func(id string, t fabric.Transport, stopAfter int) fabric.WorkerSummary {
		sum, err := fabric.NewWorker(t, fabric.WorkerConfig{
			ID:          id,
			JournalPath: filepath.Join(dir, id+".jsonl"),
			IdleWait:    10 * time.Millisecond,
			RPCBackoff:  backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 7},
			StopAfter:   stopAfter,
		}).Run()
		if err != nil {
			fatal(err)
		}
		return sum
	}

	// Fault 1: worker-1 is killed after 3 journaled runs, handing off
	// nothing from its final unit.
	step("worker-1: killed after 3 runs (no hand-off)")
	if sum := worker("worker-1", fabric.Dial(base), 3); !sum.Killed || sum.Parked == 0 {
		fatal(fmt.Errorf("stop-after kill did not trigger: %s", sum))
	}

	// Faults 2+3: worker-2 runs behind a scripted flaky link — its first
	// completion is dropped (records park, then flush) and a later one is
	// delivered twice (the retransmit the coordinator must dedup) — while
	// the restarted worker-1 re-offers its journal and finishes the grid
	// alongside it.
	step("worker-1 restarted + worker-2 on a flaky link (dropped + duplicated completions)")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		flaky := &fabric.FaultTransport{Inner: fabric.Dial(base), Plan: fabric.FaultPlan{
			FailCompletes:      []int{1},
			DuplicateCompletes: []int{3},
		}}
		worker("worker-2", flaky, 0)
	}()
	resumed := worker("worker-1", fabric.Dial(base), 0)
	wg.Wait()
	if resumed.Killed || resumed.Parked != 0 {
		fatal(fmt.Errorf("resumed worker-1 did not finish cleanly: %s", resumed))
	}

	if !c.Done() {
		fatal(fmt.Errorf("grid did not converge"))
	}
	if n := len(c.Conflicts()); n != 0 {
		fatal(fmt.Errorf("deterministic grid raised %d conflict findings", n))
	}
	var live bytes.Buffer
	if err := exp.MergeCSV(&live, plan, c.Records()); err != nil {
		fatal(err)
	}
	srv.Close()
	if err := c.Close(); err != nil {
		fatal(err)
	}
	if !bytes.Equal(live.Bytes(), want.Bytes()) {
		fatal(fmt.Errorf("fabric CSV differs from the serial run"))
	}
	step("converged: fabric CSV byte-identical to the serial run")

	// Fault 4: coordinator restart — reopen from the journal; the merged
	// result set must already be complete and identical.
	c2, err := fabric.Open(plan, coordJournal, fabric.Config{})
	if err != nil {
		fatal(err)
	}
	defer c2.Close()
	if !c2.Done() {
		fatal(fmt.Errorf("restarted coordinator lost results"))
	}
	var replayed bytes.Buffer
	if err := exp.MergeCSV(&replayed, plan, c2.Records()); err != nil {
		fatal(err)
	}
	if !bytes.Equal(replayed.Bytes(), want.Bytes()) {
		fatal(fmt.Errorf("restarted coordinator CSV differs from the serial run"))
	}
	step("coordinator restart: journal replay byte-identical")

	// And the external reconciler agrees across every journal written.
	paths := []string{coordJournal, filepath.Join(dir, "worker-1.jsonl"), filepath.Join(dir, "worker-2.jsonl")}
	recs, sum, err := exp.ReconcileJournals(paths, false)
	if err != nil {
		fatal(err)
	}
	if err := sum.Err(); err != nil {
		fatal(err)
	}
	var merged bytes.Buffer
	if err := exp.MergeCSV(&merged, plan, recs); err != nil {
		fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), want.Bytes()) {
		fatal(fmt.Errorf("reconciled journals differ from the serial run"))
	}
	step("reconciled %d journals (%s): byte-identical — PASS", len(paths), sum)
}
