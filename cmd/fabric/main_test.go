package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"denovosync/internal/exp"
)

// TestProcessKillAndResume drives the fabric through real processes: a
// coordinator served by one process, a worker process killed mid-grid
// via -stop-after (deterministic interrupt: journaled locally, nothing
// handed off), then a resumed worker process that must re-offer the
// journal, re-claim only unfinished keys, and finish the grid — with
// the merged CSV byte-identical to a serial in-process run.
func TestProcessKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes over a real grid")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fabric")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	grid := []string{"-fig", "fig3", "-cores", "16", "-scale", "25"}
	plan, err := exp.FigurePlan("fig3", 16, exp.Options{Scale: 25})
	if err != nil {
		t.Fatal(err)
	}

	// Serial ground truth, in-process.
	records, _, err := (&exp.Engine{}).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := exp.MergeCSV(&want, plan, records); err != nil {
		t.Fatal(err)
	}

	coordJournal := filepath.Join(dir, "coordinator.jsonl")
	addrFile := filepath.Join(dir, "addr")
	serve := exec.Command(bin, append([]string{"serve",
		"-journal", coordJournal, "-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-unit", "3", "-linger", "2s"}, grid...)...)
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()

	// The coordinator publishes its bound address atomically.
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil {
			base = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never published %s", addrFile)
		}
		time.Sleep(20 * time.Millisecond)
	}

	workerJournal := filepath.Join(dir, "worker.jsonl")
	work := func(extra ...string) {
		t.Helper()
		args := append([]string{"work", "-coordinator", base, "-id", "worker-a",
			"-journal", workerJournal, "-quiet"}, extra...)
		if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("fabric %s: %v\n%s", strings.Join(args, " "), err, out)
		}
	}

	// Session 1: killed after 4 journaled runs (mid-unit — nothing from
	// the in-flight unit is handed off).
	work("-stop-after", "4")
	killedRecs, err := exp.LoadJournal(workerJournal)
	if err != nil {
		t.Fatal(err)
	}
	if len(killedRecs) < 4 {
		t.Fatalf("killed session journaled %d runs, want >= 4", len(killedRecs))
	}

	// Session 2: the resumed worker finishes the grid.
	work()

	// No key was ever executed twice: the worker journal is append-only,
	// so a re-execution would show up as a repeated key.
	allRecs, err := exp.LoadJournal(workerJournal)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rec := range allRecs {
		if seen[rec.Key] {
			t.Errorf("key %s executed twice across kill+resume", rec.Key)
		}
		seen[rec.Key] = true
	}

	// The coordinator saw every run once and exits clean after -linger.
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve exited with: %v", err)
	}

	// Byte-identity of the merged CSV, via the real merge subcommand
	// reconciling both journals.
	csvPath := filepath.Join(dir, "merged.csv")
	mergeArgs := append([]string{"merge", "-journal", coordJournal, "-journal", workerJournal,
		"-o", csvPath}, grid...)
	if out, err := exec.Command(bin, mergeArgs...).CombinedOutput(); err != nil {
		t.Fatalf("fabric merge: %v\n%s", err, out)
	}
	got, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("process-level kill+resume CSV differs from the serial run:\n%s\nvs serial\n%s", got, want.Bytes())
	}

	// The coordinator journal also holds each key at most once (dedup
	// held under real RPC traffic).
	coordRecs, err := exp.LoadJournal(coordJournal)
	if err != nil {
		t.Fatal(err)
	}
	seen = map[string]bool{}
	for _, rec := range coordRecs {
		if rec.Status == exp.StatusOK && seen[rec.Key] {
			t.Errorf("coordinator journaled key %s twice", rec.Key)
		}
		seen[rec.Key] = true
	}
}
