// Command exp plans, executes, inspects and merges experiment grids
// through the internal/exp orchestration engine: declarative manifests
// (or built-in figure plans) expand into content-addressed runs, a
// worker pool executes them with per-run fault isolation, and a durable
// JSONL journal makes interrupted grids resumable — re-running the same
// command skips every already-journaled run.
//
// Usage:
//
//	exp list                                     # plannable figures
//	exp plan -fig fig3 -cores 16                 # show the expanded grid
//	exp plan -manifest grid.json -json           # machine-readable plan
//	exp run  -fig fig3 -cores 16 -journal f3.jsonl
//	exp run  -manifest grid.json -journal g.jsonl -workers 8 -retries 1
//	exp run  ... -stop-after 5                   # deterministic interrupt
//	exp status -fig fig3 -cores 16 -journal f3.jsonl
//	exp merge  -fig fig3 -cores 16 -journal f3.jsonl -o fig3.csv
//	exp merge  -fig fig3 -journal c.jsonl -journal w1.jsonl  # reconcile N journals
//	exp salvage -journal damaged.jsonl -o repaired.jsonl     # repair a journal
//
// merge accepts -journal repeatedly and reconciles the journals by
// content-addressed run key (identical duplicates dedup, successes
// supersede failures); two different results for one key are a
// determinism bug and fail the merge loudly. -salvage recovers what it
// can from damaged journals instead of refusing them.
//
// During run, the first ^C stops dispatching new runs and exits 130
// once in-flight runs are journaled (resume by re-running); a second ^C
// exits immediately. A -stop-after stop exits 0: it is the expected
// outcome of a bounded session, not an error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"

	"denovosync/internal/exp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		fmt.Println(strings.Join(exp.FigureNames(), "\n"))
	case "plan":
		cmdPlan(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	case "salvage":
		cmdSalvage(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "exp: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: exp <subcommand> [flags]

  list    print the plannable figure/ablation names
  plan    expand a grid and print it (keys, runs)
  run     execute a grid's pending runs (resumable via -journal)
  status  compare a journal against a plan
  merge   reconcile one or more journals and render the figure CSV
  salvage repair a damaged journal (recover good lines, quarantine bad)

Grid selection (plan, run, status, merge):
  -manifest FILE   declarative grid manifest (JSON)
  -fig NAME        built-in figure/ablation plan (see: exp list)
  -cores N         figure machine size: 16 or 64 (default 16)
  -scale N         workload divisor, 1 = paper scale (default 1)

Run 'exp <subcommand> -h' for subcommand flags.
`)
}

// planFlags registers the grid-selection flags shared by every
// plan-consuming subcommand.
type planFlags struct {
	manifest string
	fig      string
	cores    int
	scale    int
}

func (p *planFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.manifest, "manifest", "", "grid manifest file (JSON)")
	fs.StringVar(&p.fig, "fig", "", "built-in figure/ablation plan (see: exp list)")
	fs.IntVar(&p.cores, "cores", 16, "figure machine size: 16 or 64")
	fs.IntVar(&p.scale, "scale", 1, "workload divisor (1 = paper scale)")
}

func (p *planFlags) load() (exp.Plan, error) {
	switch {
	case p.manifest != "" && p.fig != "":
		return exp.Plan{}, errors.New("exp: -manifest and -fig are mutually exclusive")
	case p.manifest != "":
		return exp.LoadManifest(p.manifest)
	case p.fig != "":
		return exp.FigurePlan(p.fig, p.cores, exp.Options{Scale: p.scale})
	}
	return exp.Plan{}, errors.New("exp: select a grid with -manifest or -fig")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exp:", err)
	os.Exit(1)
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("exp plan", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	asJSON := fs.Bool("json", false, "print the plan as JSON")
	fs.Parse(args)
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s — %s\n%d runs:\n", plan.ID, plan.Title, len(plan.Runs))
	for _, r := range plan.Runs {
		fmt.Printf("  %s  %s\n", r.Key(), r)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("exp run", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	var (
		journalPath = fs.String("journal", "", "JSONL result journal (enables resume)")
		workers     = fs.Int("workers", 0, "concurrent runs; 0 = GOMAXPROCS")
		timeout     = fs.Duration("timeout", 0, "per-attempt wall-clock limit; 0 = none")
		retries     = fs.Int("retries", 0, "extra attempts after a failed run")
		retryFailed = fs.Bool("retry-failed", false, "re-execute journaled failures")
		stopAfter   = fs.Int("stop-after", 0, "stop dispatching after N completed runs (0 = no limit)")
		csvPath     = fs.String("csv", "", "write the merged figure CSV here on completion")
		quiet       = fs.Bool("quiet", false, "suppress progress output")
		lps         = fs.Int("lps", 0, "logical processes per machine (parallel PDES engine; 0/1 = serial, results bit-identical)")
	)
	fs.Parse(args)
	exp.LPs = *lps
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}

	eng := &exp.Engine{
		Workers: *workers, Timeout: *timeout,
		Retries: *retries, RetryFailed: *retryFailed,
		StopAfter: *stopAfter,
	}
	if !*quiet {
		eng.Progress = os.Stderr
	}
	if *journalPath != "" {
		j, prior, err := exp.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := j.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "exp:", err)
			}
		}()
		eng.Journal, eng.Prior = j, prior
	}

	// First ^C: stop dispatching, finish and journal in-flight runs, exit
	// 130 (resume by re-running). Second ^C: exit immediately.
	stop := make(chan struct{})
	eng.Stop = stop
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "exp: interrupt — finishing in-flight runs (^C again to abort)")
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	records, sum, err := eng.Execute(plan)
	signal.Stop(sigc)
	switch {
	case errors.Is(err, exp.ErrStopped):
		fmt.Fprintln(os.Stderr, "exp:", err)
		if interrupted.Load() {
			os.Exit(130)
		}
		return // a -stop-after stop is the expected outcome, not an error
	case err != nil:
		fatal(err)
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "exp: %d of %d runs failed (see journal; -retry-failed re-executes them)\n",
			sum.Failed, sum.Total)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return exp.MergeCSV(w, plan, records)
		}); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "exp: wrote %s\n", *csvPath)
		}
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("exp status", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	journalPath := fs.String("journal", "", "JSONL result journal")
	fs.Parse(args)
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}
	if *journalPath == "" {
		fatal(errors.New("status needs -journal"))
	}
	recs, err := exp.LoadJournal(*journalPath)
	if err != nil && !os.IsNotExist(err) {
		fatal(err)
	}
	byKey := map[string]*exp.Record{}
	for _, rec := range recs {
		byKey[rec.Key] = rec // later lines win
	}

	var ok, failed, missing int
	seen := map[string]bool{}
	var failures []string
	for _, r := range plan.Runs {
		k := r.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		switch rec := byKey[k]; {
		case rec == nil:
			missing++
		case rec.Status == exp.StatusOK:
			ok++
		default:
			failed++
			failures = append(failures, fmt.Sprintf("  %s  %s: %s", k, r, rec.Error))
		}
	}
	fmt.Printf("%s: %d distinct runs: %d ok, %d failed, %d pending\n",
		plan.ID, len(seen), ok, failed, missing)
	if len(failures) > 0 {
		fmt.Println("failed:")
		for _, f := range failures {
			if i := strings.IndexByte(f, '\n'); i >= 0 {
				f = f[:i] + " ..." // keep panic stacks to one line here
			}
			fmt.Println(f)
		}
	}
	if missing > 0 {
		fmt.Println("resume with: exp run (same grid flags and -journal)")
	}
}

// journalList collects repeated -journal flags.
type journalList []string

func (j *journalList) String() string { return strings.Join(*j, ",") }
func (j *journalList) Set(s string) error {
	*j = append(*j, s)
	return nil
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("exp merge", flag.ExitOnError)
	var pf planFlags
	pf.register(fs)
	var journals journalList
	fs.Var(&journals, "journal", "JSONL result journal (repeatable: reconcile several)")
	outPath := fs.String("o", "", "output CSV file (default stdout)")
	salvage := fs.Bool("salvage", false, "recover damaged journals instead of refusing them")
	fs.Parse(args)
	plan, err := pf.load()
	if err != nil {
		fatal(err)
	}
	if len(journals) == 0 {
		fatal(errors.New("merge needs at least one -journal"))
	}
	records, sum, err := exp.ReconcileJournals(journals, *salvage)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "exp: %s\n", sum)
	if err := sum.Err(); err != nil {
		// A determinism conflict never merges silently: report every
		// finding and fail.
		fatal(err)
	}
	if *outPath == "" {
		if err := exp.MergeCSV(os.Stdout, plan, records); err != nil {
			fatal(err)
		}
		return
	}
	if err := writeFile(*outPath, func(w io.Writer) error {
		return exp.MergeCSV(w, plan, records)
	}); err != nil {
		fatal(err)
	}
}

func cmdSalvage(args []string) {
	fs := flag.NewFlagSet("exp salvage", flag.ExitOnError)
	journalPath := fs.String("journal", "", "damaged JSONL result journal")
	outPath := fs.String("o", "", "write the repaired journal here (refuses to overwrite)")
	fs.Parse(args)
	if *journalPath == "" {
		fatal(errors.New("salvage needs -journal"))
	}
	recs, rep, err := exp.SalvageJournal(*journalPath)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	if !rep.Clean() {
		side, err := rep.WriteSidecar()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("quarantine report: %s\n", side)
	}
	if *outPath != "" {
		if err := exp.RewriteJournal(*outPath, recs); err != nil {
			fatal(err)
		}
		fmt.Printf("repaired journal: %s (%d records)\n", *outPath, len(recs))
	}
	if !rep.Clean() {
		os.Exit(1) // damaged input: loud even when the salvage succeeded
	}
}

// writeFile writes via fn and reports Close errors — a full disk
// surfaces as a failure, not a truncated artifact.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
