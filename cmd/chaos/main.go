// Command chaos drives the deterministic chaos engine (internal/chaos)
// from the command line: seed sweeps with live invariant checking,
// shrinking a failing spec to a minimal replayable reproducer, replaying
// a reproducer, and a forced-watchdog demo.
//
// Usage:
//
//	chaos run -kernels tatas-counter,bar-tree -seeds 16          # seed sweep
//	chaos run -journal c.jsonl -csv verdicts.csv                 # resumable
//	chaos shrink -kernel bar-tree -config DS -fault blackhole \
//	    -watchdog 100000 -o repro.json                           # minimize
//	chaos replay repro.json                                      # reproduce
//	chaos watchdog-demo                                          # diagnostic
//
// Every command is deterministic: the same flags always produce the same
// schedules, verdicts and artifacts.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"denovosync/internal/chaos"
	"denovosync/internal/exp"
	"denovosync/internal/sim"
)

// defaultKernels is the representative sweep set: a TTS lock, a simple
// array lock, a non-blocking structure, and a barrier — one kernel per
// synchronization family the paper studies.
var defaultKernels = "tatas-counter,array-counter,nb-treiber-stack,bar-tree"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "shrink":
		cmdShrink(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "watchdog-demo":
		cmdWatchdogDemo(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: chaos <command> [flags]

commands:
  run            seed sweep: kernels x protocol configs x seeds, each run
                 perturbed + differentially checked against its baseline
  shrink         reduce a failing spec to a minimal replayable reproducer
  replay         re-run a reproducer and confirm the verdict reproduces
  watchdog-demo  force a livelock and show the structured diagnostic

run 'chaos <command> -h' for the command's flags
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaos:", err)
	os.Exit(1)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("chaos run", flag.ExitOnError)
	var (
		kernelCSV = fs.String("kernels", defaultKernels, "comma-separated kernel IDs")
		configCSV = fs.String("configs", "M,DS0,DS,DSsig", "comma-separated protocol configs")
		cores     = fs.Int("cores", 16, "core count (16 or 64)")
		iters     = fs.Int("iters", 0, "iterations per core (0 = kernel default)")
		seeds     = fs.Int("seeds", 16, "jitter seeds per grid point")
		seedBase  = fs.Uint64("seed-base", 1, "first seed")
		jitter    = fs.Int64("jitter", 0, "per-message jitter bound in cycles (0 = default)")
		watchdog  = fs.Int64("watchdog", 0, "deadlock budget in cycles (0 = default)")
		journal   = fs.String("journal", "", "JSONL result journal (enables resume)")
		workers   = fs.Int("workers", 0, "concurrent runs; 0 = GOMAXPROCS")
		stopAfter = fs.Int("stop-after", 0, "stop dispatching after N completed runs (0 = no limit)")
		csvPath   = fs.String("csv", "", "write the per-seed verdict CSV here")
		quiet     = fs.Bool("quiet", false, "suppress progress output")
	)
	fs.Parse(args)

	plan, err := exp.ChaosPlan(splitCSV(*kernelCSV), splitCSV(*configCSV),
		*cores, *iters, *seeds, *seedBase, *jitter, *watchdog)
	if err != nil {
		fatal(err)
	}

	eng := &exp.Engine{Workers: *workers, StopAfter: *stopAfter}
	if !*quiet {
		eng.Progress = os.Stderr
	}
	if *journal != "" {
		j, prior, err := exp.OpenJournal(*journal)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := j.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "chaos:", err)
			}
		}()
		eng.Journal, eng.Prior = j, prior
	}

	records, sum, err := eng.Execute(plan)
	if errors.Is(err, exp.ErrStopped) {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return // -stop-after stop is the expected outcome, not an error
	}
	if err != nil {
		fatal(err)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error {
			return exp.ChaosCSV(w, plan, records)
		}); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "chaos: wrote %s\n", *csvPath)
		}
	}
	if sum.Failed > 0 {
		// A failed chaos run is a finding, not an infrastructure error:
		// surface every non-ok verdict so the seed can be shrunk.
		fmt.Fprintf(os.Stderr, "chaos: %d of %d runs did not verify:\n", sum.Failed, sum.Total)
		for _, r := range plan.Runs {
			rec := records[r.Key()]
			if rec == nil || rec.Status == exp.StatusOK {
				continue
			}
			fmt.Fprintf(os.Stderr, "  %-40s %s: %s\n", r, exp.ChaosVerdict(rec), rec.Error)
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "chaos: all %d runs ok (schedule-invariant, zero violations)\n", sum.Total)
	}
}

func cmdShrink(args []string) {
	fs := flag.NewFlagSet("chaos shrink", flag.ExitOnError)
	spec, out, resolve := specFlags(fs)
	fs.Parse(args)
	resolve()

	fmt.Fprintf(os.Stderr, "chaos: shrinking %s\n", spec)
	repro, err := chaos.Shrink(*spec, chaos.RunSpec)
	if err != nil {
		fatal(err)
	}
	if err := chaos.WriteRepro(*out, repro); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "chaos: %d trials -> minimal reproducer %s (verdict %s)\n",
		len(repro.Trials), *out, repro.Verdict)
	fmt.Fprintf(os.Stderr, "chaos: replay with: chaos replay %s\n", *out)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("chaos replay", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(errors.New("usage: chaos replay <repro.json>"))
	}
	repro, err := chaos.LoadRepro(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, reproduced := chaos.Replay(repro)
	fmt.Printf("spec:     %s\n", repro.Spec)
	fmt.Printf("expected: %s (%s)\n", repro.Verdict, repro.Detail)
	fmt.Printf("got:      %s (%s)\n", res.Verdict, res.Detail)
	if !reproduced {
		fatal(errors.New("verdict did NOT reproduce"))
	}
	fmt.Println("reproduced")
}

func cmdWatchdogDemo(args []string) {
	fs := flag.NewFlagSet("chaos watchdog-demo", flag.ExitOnError)
	budget := fs.Int64("watchdog", 100_000, "deadlock budget in cycles")
	fs.Parse(args)

	// A blackholed barrier message leaves waiters parked forever: no core
	// retires, the watchdog's progress budget expires, and the run aborts
	// with a structured snapshot instead of hanging.
	spec := chaos.Spec{
		Kernel: "bar-tree", Config: "DS", Iters: 4, Seed: 2,
		Fault:          &chaos.Fault{Kind: chaos.FaultBlackhole, Msg: 60},
		WatchdogCycles: sim.Cycle(*budget),
	}
	fmt.Fprintf(os.Stderr, "chaos: running %s with a blackholed message...\n", spec)
	res := chaos.RunSpec(spec)
	fmt.Printf("verdict: %s\n%s\n", res.Verdict, res.Detail)
	if res.Snapshot != nil {
		b, err := json.MarshalIndent(res.Snapshot, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("diagnostic snapshot:\n%s\n", b)
	}
	if res.Verdict != chaos.VerdictWatchdog {
		fatal(fmt.Errorf("expected the watchdog to fire, got verdict %q", res.Verdict))
	}
}

// specFlags registers the flags that assemble a chaos.Spec and returns
// the spec, the reproducer output path, and a resolve hook the caller
// must invoke after fs.Parse (the sim.Cycle and Fault fields are built
// from plain flag values).
func specFlags(fs *flag.FlagSet) (*chaos.Spec, *string, func()) {
	spec := &chaos.Spec{}
	fs.StringVar(&spec.Kernel, "kernel", "tatas-counter", "kernel ID")
	fs.StringVar(&spec.Config, "config", "DS", "protocol config (M, DS0, DS, DSsig)")
	fs.IntVar(&spec.Cores, "cores", 0, "core count (0 = 16)")
	fs.IntVar(&spec.Iters, "iters", 0, "iterations per core (0 = kernel default)")
	fs.IntVar(&spec.EqChecks, "eq-checks", 0, "equality checks (0 = kernel default, -1 = disabled)")
	fs.Uint64Var(&spec.Seed, "seed", 1, "jitter seed")
	jitter := fs.Int64("jitter", 0, "per-message jitter bound in cycles (0 = default)")
	watchdog := fs.Int64("watchdog", 0, "deadlock budget in cycles (0 = default)")
	faultKind := fs.String("fault", "", "planted fault: blackhole or rogue (empty = none)")
	faultMsg := fs.Int("fault-msg", 0, "blackhole: 0-based index of the doomed message")
	faultDelay := fs.Int64("fault-delay", 0, "blackhole: added delay in cycles (0 = default)")
	faultCycle := fs.Int64("fault-cycle", 0, "rogue: corruption cycle (0 = first sample)")
	out := fs.String("o", "repro.json", "reproducer output path")

	resolve := func() {
		spec.MaxJitter = sim.Cycle(*jitter)
		spec.WatchdogCycles = sim.Cycle(*watchdog)
		if *faultKind != "" {
			spec.Fault = &chaos.Fault{
				Kind:  *faultKind,
				Msg:   *faultMsg,
				Delay: sim.Cycle(*faultDelay),
				Cycle: sim.Cycle(*faultCycle),
			}
		}
	}
	return spec, out, resolve
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
