package lockfree

import (
	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
)

// Herlihy's methodology [14] makes any small sequential object
// non-blocking: read the root pointer, copy the object, apply the update
// to the copy, and CAS the root from the old version to the new one.
// The paper highlights these kernels for their many pre-linearization
// equality checks (§7.1.3): real implementations re-validate the root
// repeatedly to abort doomed copies early. ExtraChecks reproduces that
// (2 = as adapted from [29]; 0 = the paper's reduced-check modification).

// herlihyObject layout: word 0 = element count, words 1..cap = elements.
func objWords(capacity int) int { return capacity + 1 }

// HerlihyStack is a small-object-copy stack.
type HerlihyStack struct {
	root        proto.Addr
	space       *alloc.Space
	region      proto.RegionID
	capacity    int
	ExtraChecks int
	Backoff     Backoff
}

// NewHerlihyStack allocates the stack with the given element capacity and
// writes the initial empty version into the memory image.
func NewHerlihyStack(s *alloc.Space, st *mem.Store, capacity int) *HerlihyStack {
	h := &HerlihyStack{
		space:       s,
		region:      s.Region("herlihy.stack"),
		capacity:    capacity,
		ExtraChecks: 2,
		Backoff:     DefaultBackoff(),
	}
	h.root = s.AllocPadded(s.Region("herlihy.stack.sync"))
	initial := s.AllocAligned(objWords(capacity), h.region)
	st.Write(h.root, uint64(initial)) // count word is zero
	return h
}

// validate re-reads the root ExtraChecks times, aborting the attempt early
// if the snapshot went stale — the equality-check traffic §7.1.3 studies.
func validate(t *cpu.Thread, root proto.Addr, snap uint64, n int) bool {
	for i := 0; i < n; i++ {
		if t.SyncLoad(root) != snap {
			return false
		}
	}
	return true
}

// copyObj copies src's count+elements into a fresh version object carved
// from the copying thread's lane (runtime allocations must not touch the
// shared bump pointer — its order would depend on thread interleaving).
func (h *HerlihyStack) copyObj(t *cpu.Thread, src proto.Addr) (dst proto.Addr, count int) {
	count = int(t.Load(src))
	t.Flush() // pin the carve to the current simulated time
	dst = h.space.LaneAllocAligned(t.ID, objWords(h.capacity), h.region)
	t.Store(dst, uint64(count))
	for i := 0; i < count; i++ {
		off := proto.Addr((i + 1) * proto.WordBytes)
		t.Store(dst+off, t.Load(src+off))
	}
	return dst, count
}

// Push adds v (drops it silently when full, like a bounded kernel).
func (h *HerlihyStack) Push(t *cpu.Thread, v uint64) {
	for att := 0; ; att++ {
		snap := t.SyncLoad(h.root)
		obj := proto.Addr(snap)
		if !validate(t, h.root, snap, h.ExtraChecks) {
			h.Backoff.Wait(t, att)
			continue
		}
		dst, count := h.copyObj(t, obj)
		if count < h.capacity {
			t.Store(dst+proto.Addr((count+1)*proto.WordBytes), v)
			t.Store(dst, uint64(count+1))
		}
		if t.CAS(h.root, snap, uint64(dst)) {
			return
		}
		h.Backoff.Wait(t, att)
	}
}

// Pop removes the newest element; ok is false on empty.
func (h *HerlihyStack) Pop(t *cpu.Thread) (v uint64, ok bool) {
	for att := 0; ; att++ {
		snap := t.SyncLoad(h.root)
		obj := proto.Addr(snap)
		if !validate(t, h.root, snap, h.ExtraChecks) {
			h.Backoff.Wait(t, att)
			continue
		}
		dst, count := h.copyObj(t, obj)
		var val uint64
		if count > 0 {
			val = t.Load(dst + proto.Addr(count*proto.WordBytes))
			t.Store(dst, uint64(count-1))
		}
		if t.CAS(h.root, snap, uint64(dst)) {
			return val, count > 0
		}
		h.Backoff.Wait(t, att)
	}
}

// HerlihyHeap is a small-object-copy binary min-heap (priority queue).
type HerlihyHeap struct {
	root        proto.Addr
	space       *alloc.Space
	region      proto.RegionID
	capacity    int
	ExtraChecks int
	Backoff     Backoff
}

// NewHerlihyHeap allocates the heap with the given capacity.
func NewHerlihyHeap(s *alloc.Space, st *mem.Store, capacity int) *HerlihyHeap {
	h := &HerlihyHeap{
		space:       s,
		region:      s.Region("herlihy.heap"),
		capacity:    capacity,
		ExtraChecks: 2,
		Backoff:     DefaultBackoff(),
	}
	h.root = s.AllocPadded(s.Region("herlihy.heap.sync"))
	initial := s.AllocAligned(objWords(capacity), h.region)
	st.Write(h.root, uint64(initial))
	return h
}

func heapOff(i int) proto.Addr { return proto.Addr((i + 1) * proto.WordBytes) }

// copyHeap clones the current version into a lane-carved object (see
// HerlihyStack.copyObj for why runtime carves bypass the shared space).
func (h *HerlihyHeap) copyHeap(t *cpu.Thread, src proto.Addr) (dst proto.Addr, count int) {
	count = int(t.Load(src))
	t.Flush() // pin the carve to the current simulated time
	dst = h.space.LaneAllocAligned(t.ID, objWords(h.capacity), h.region)
	t.Store(dst, uint64(count))
	for i := 0; i < count; i++ {
		t.Store(dst+heapOff(i), t.Load(src+heapOff(i)))
	}
	return dst, count
}

// Insert adds v (dropped when full).
func (h *HerlihyHeap) Insert(t *cpu.Thread, v uint64) {
	for att := 0; ; att++ {
		snap := t.SyncLoad(h.root)
		if !validate(t, h.root, snap, h.ExtraChecks) {
			h.Backoff.Wait(t, att)
			continue
		}
		dst, count := h.copyHeap(t, proto.Addr(snap))
		if count < h.capacity {
			// Sift up on the copy (data accesses).
			i := count
			t.Store(dst+heapOff(i), v)
			for i > 0 {
				parent := (i - 1) / 2
				pv := t.Load(dst + heapOff(parent))
				cv := t.Load(dst + heapOff(i))
				if pv <= cv {
					break
				}
				t.Store(dst+heapOff(parent), cv)
				t.Store(dst+heapOff(i), pv)
				i = parent
			}
			t.Store(dst, uint64(count+1))
		}
		if t.CAS(h.root, snap, uint64(dst)) {
			return
		}
		h.Backoff.Wait(t, att)
	}
}

// DeleteMin removes and returns the minimum; ok is false on empty.
func (h *HerlihyHeap) DeleteMin(t *cpu.Thread) (v uint64, ok bool) {
	for att := 0; ; att++ {
		snap := t.SyncLoad(h.root)
		if !validate(t, h.root, snap, h.ExtraChecks) {
			h.Backoff.Wait(t, att)
			continue
		}
		dst, count := h.copyHeap(t, proto.Addr(snap))
		var min uint64
		if count > 0 {
			min = t.Load(dst + heapOff(0))
			last := t.Load(dst + heapOff(count-1))
			t.Store(dst+heapOff(0), last)
			t.Store(dst, uint64(count-1))
			// Sift down.
			n := count - 1
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				smallest := i
				sv := t.Load(dst + heapOff(i))
				if l < n {
					if lv := t.Load(dst + heapOff(l)); lv < sv {
						smallest, sv = l, lv
					}
				}
				if r < n {
					if rv := t.Load(dst + heapOff(r)); rv < sv {
						smallest, sv = r, rv
					}
				}
				if smallest == i {
					break
				}
				iv := t.Load(dst + heapOff(i))
				t.Store(dst+heapOff(i), sv)
				t.Store(dst+heapOff(smallest), iv)
				i = smallest
			}
		}
		if t.CAS(h.root, snap, uint64(dst)) {
			return min, count > 0
		}
		h.Backoff.Wait(t, att)
	}
}
