package lockfree

import (
	"fmt"

	"denovosync/internal/mem"
	"denovosync/internal/proto"
)

// Post-run walkers: they read the final functional memory image natively
// (no simulated accesses) so tests can compare each structure's outcome
// across protocols. limit bounds every chain walk so a corrupted pointer
// can never loop a test forever.

// Size counts resident elements by walking the next chain from the dummy
// node at head.
func (q *MSQueue) Size(st *mem.Store, limit int) (uint64, error) {
	return walkChain(st, proto.Addr(st.Read(q.head)), func(v uint64) proto.Addr {
		return proto.Addr(v)
	}, limit)
}

// Size counts resident elements; PLJ next links are counted pointers.
func (q *PLJQueue) Size(st *mem.Store, limit int) (uint64, error) {
	return walkChain(st, unpackAddr(st.Read(q.head)), unpackAddr, limit)
}

// Size counts resident elements by walking the top chain.
func (s *TreiberStack) Size(st *mem.Store, limit int) (uint64, error) {
	top := proto.Addr(st.Read(s.top))
	if top == 0 {
		return 0, nil
	}
	// The top node is an element (no dummy), so count it plus the chain
	// hanging off it.
	n, err := walkChain(st, top, func(v uint64) proto.Addr { return proto.Addr(v) }, limit)
	return n + 1, err
}

// walkChain counts the nodes reachable from node's next link, decoding
// each link word with nextAddr.
func walkChain(st *mem.Store, node proto.Addr, nextAddr func(uint64) proto.Addr, limit int) (uint64, error) {
	var n uint64
	for {
		next := nextAddr(st.Read(node + offNext))
		if next == 0 {
			return n, nil
		}
		if n++; int(n) > limit {
			return 0, fmt.Errorf("lockfree: next chain exceeds %d nodes", limit)
		}
		node = next
	}
}

// Size reads the current version object's element count.
func (h *HerlihyStack) Size(st *mem.Store) (uint64, error) {
	n := st.Read(proto.Addr(st.Read(h.root)))
	if int(n) > h.capacity {
		return 0, fmt.Errorf("herlihy stack: count %d exceeds capacity %d", n, h.capacity)
	}
	return n, nil
}

// Size reads the current version object's element count, validating the
// min-heap property over the resident elements.
func (h *HerlihyHeap) Size(st *mem.Store) (uint64, error) {
	obj := proto.Addr(st.Read(h.root))
	n := int(st.Read(obj))
	if n > h.capacity {
		return 0, fmt.Errorf("herlihy heap: count %d exceeds capacity %d", n, h.capacity)
	}
	for i := 1; i < n; i++ {
		p := (i - 1) / 2
		if st.Read(obj+heapOff(p)) > st.Read(obj+heapOff(i)) {
			return 0, fmt.Errorf("herlihy heap: min-heap property violated at index %d", i)
		}
	}
	return uint64(n), nil
}

// Total reads the counter's final value.
func (c *FAICounter) Total(st *mem.Store) uint64 { return st.Read(c.addr) }
