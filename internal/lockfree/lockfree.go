// Package lockfree implements the non-blocking data structures evaluated
// in §5.3.1/§7.1.3, adapted from Michael & Scott [29]: the Michael-Scott
// queue [28], the Prakash-Lee-Johnson counted-pointer queue, the Treiber
// stack, Herlihy's small-object-copy stack and heap [14], and a
// fetch-and-increment counter.
//
// Every kernel applies software exponential backoff in [128, 2048) cycles
// after a failed attempt, exactly as the paper configures them.
//
// Simulated pointers are word addresses stored as values; 0 is nil. The
// allocator never reuses addresses, which plays the role of the type-safe
// memory management these algorithms assume; the PLJ queue additionally
// demonstrates counted (serial-numbered) pointers packed into one word.
package lockfree

import (
	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Backoff is the software exponential backoff window of §5.3.1.
type Backoff struct {
	Min, Max sim.Cycle
}

// DefaultBackoff is the paper's [128, 2048) window.
func DefaultBackoff() Backoff { return Backoff{Min: 128, Max: 2048} }

// Wait stalls the thread for the attempt'th backoff delay (0-based).
func (b Backoff) Wait(t *cpu.Thread, attempt int) {
	if b.Max <= b.Min {
		return
	}
	hi := b.Min << uint(attempt+1)
	if hi > b.Max || hi < b.Min {
		hi = b.Max
	}
	if hi <= b.Min {
		t.SWBackoff(b.Min)
		return
	}
	t.SWBackoff(t.RNG.Cycles(b.Min, hi))
}

// node field offsets (words).
const (
	offValue = 0
	offNext  = proto.WordBytes
	nodeSize = 2
)

// allocNode carves a fresh line-padded node and initializes it with plain
// stores (unpublished memory: the publishing CAS orders them).
func allocNode(t *cpu.Thread, s *alloc.Space, region proto.RegionID, value uint64) proto.Addr {
	t.Flush() // pin the carve to the current simulated time
	n := s.LaneAllocAligned(t.ID, nodeSize, region)
	t.Store(n+offValue, value)
	t.Store(n+offNext, 0)
	return n
}

// MSQueue is the Michael-Scott non-blocking queue (Figure 1 of the paper).
type MSQueue struct {
	head, tail proto.Addr
	space      *alloc.Space
	region     proto.RegionID
	Backoff    Backoff
}

// NewMSQueue allocates the queue and its dummy node, pre-initialized in
// the memory image (st).
func NewMSQueue(s *alloc.Space, st *mem.Store) *MSQueue {
	q := &MSQueue{space: s, region: s.Region("msqueue"), Backoff: DefaultBackoff()}
	sync := s.Region("msqueue.sync")
	q.head = s.AllocPadded(sync)
	q.tail = s.AllocPadded(sync)
	dummy := s.AllocAligned(nodeSize, q.region)
	st.Write(q.head, uint64(dummy))
	st.Write(q.tail, uint64(dummy))
	return q
}

// Enqueue appends v (Figure 1a).
func (q *MSQueue) Enqueue(t *cpu.Thread, v uint64) {
	pw := allocNode(t, q.space, q.region, v)
	var pt uint64
	for att := 0; ; att++ {
		pt = t.SyncLoad(q.tail)                    // (1)
		pn := t.SyncLoad(proto.Addr(pt) + offNext) // (2)
		if pt == t.SyncLoad(q.tail) {              // (3) equality check
			if pn == 0 { // (4)
				if t.CAS(proto.Addr(pt)+offNext, 0, uint64(pw)) { // (5)
					break
				}
			} else {
				t.CAS(q.tail, pt, pn) // (6) help swing tail
			}
		}
		q.Backoff.Wait(t, att)
	}
	t.CAS(q.tail, pt, uint64(pw)) // (7)
}

// Dequeue removes the oldest element; ok is false on empty (Figure 1b).
func (q *MSQueue) Dequeue(t *cpu.Thread) (v uint64, ok bool) {
	for att := 0; ; att++ {
		ph := t.SyncLoad(q.head)
		pt := t.SyncLoad(q.tail)
		pn := t.SyncLoad(proto.Addr(ph) + offNext)
		if ph == t.SyncLoad(q.head) { // equality check
			if ph == pt {
				if pn == 0 {
					return 0, false
				}
				t.CAS(q.tail, pt, pn)
			} else {
				rtn := t.Load(proto.Addr(pn) + offValue)
				if t.CAS(q.head, ph, pn) {
					return rtn, true
				}
			}
		}
		q.Backoff.Wait(t, att)
	}
}

// PLJQueue is the Prakash-Lee-Johnson non-blocking queue with counted
// pointers: each pointer word packs (address, serial) so a stale snapshot
// can never be confused with a recycled one.
type PLJQueue struct {
	head, tail proto.Addr
	space      *alloc.Space
	region     proto.RegionID
	Backoff    Backoff
}

const serialShift = 32

func pack(addr proto.Addr, serial uint64) uint64 {
	return uint64(addr) | serial<<serialShift
}
func unpackAddr(v uint64) proto.Addr { return proto.Addr(v & (1<<serialShift - 1)) }
func unpackSerial(v uint64) uint64   { return v >> serialShift }

// NewPLJQueue allocates the queue and its dummy node.
func NewPLJQueue(s *alloc.Space, st *mem.Store) *PLJQueue {
	q := &PLJQueue{space: s, region: s.Region("pljqueue"), Backoff: DefaultBackoff()}
	sync := s.Region("pljqueue.sync")
	q.head = s.AllocPadded(sync)
	q.tail = s.AllocPadded(sync)
	dummy := s.AllocAligned(nodeSize, q.region)
	st.Write(q.head, pack(dummy, 0))
	st.Write(q.tail, pack(dummy, 0))
	return q
}

// Enqueue appends v. PLJ determines the true last node from a validated
// snapshot, re-reading the shared pointers more aggressively than the
// Michael-Scott queue before committing.
func (q *PLJQueue) Enqueue(t *cpu.Thread, v uint64) {
	w := allocNode(t, q.space, q.region, v)
	for att := 0; ; att++ {
		tp := t.SyncLoad(q.tail)
		if t.SyncLoad(q.tail) != tp { // snapshot validation
			q.Backoff.Wait(t, att)
			continue
		}
		np := t.SyncLoad(unpackAddr(tp) + offNext)
		if tp == t.SyncLoad(q.tail) { // snapshot still consistent
			if unpackAddr(np) == 0 {
				if t.CAS(unpackAddr(tp)+offNext, np, pack(w, unpackSerial(np)+1)) {
					t.CAS(q.tail, tp, pack(w, unpackSerial(tp)+1))
					return
				}
			} else {
				t.CAS(q.tail, tp, pack(unpackAddr(np), unpackSerial(tp)+1))
			}
		}
		q.Backoff.Wait(t, att)
	}
}

// Dequeue removes the oldest element; ok is false on empty.
func (q *PLJQueue) Dequeue(t *cpu.Thread) (v uint64, ok bool) {
	for att := 0; ; att++ {
		hp := t.SyncLoad(q.head)
		tp := t.SyncLoad(q.tail)
		if t.SyncLoad(q.head) != hp { // snapshot validation
			q.Backoff.Wait(t, att)
			continue
		}
		np := t.SyncLoad(unpackAddr(hp) + offNext)
		if hp == t.SyncLoad(q.head) {
			if unpackAddr(hp) == unpackAddr(tp) {
				if unpackAddr(np) == 0 {
					return 0, false
				}
				t.CAS(q.tail, tp, pack(unpackAddr(np), unpackSerial(tp)+1))
			} else {
				rtn := t.Load(unpackAddr(np) + offValue)
				if t.CAS(q.head, hp, pack(unpackAddr(np), unpackSerial(hp)+1)) {
					return rtn, true
				}
			}
		}
		q.Backoff.Wait(t, att)
	}
}

// TreiberStack is Treiber's classic non-blocking stack.
type TreiberStack struct {
	top     proto.Addr
	space   *alloc.Space
	region  proto.RegionID
	Backoff Backoff
}

// NewTreiberStack allocates an empty stack.
func NewTreiberStack(s *alloc.Space, _ *mem.Store) *TreiberStack {
	return &TreiberStack{
		top:     s.AllocPadded(s.Region("treiber.sync")),
		space:   s,
		region:  s.Region("treiber"),
		Backoff: DefaultBackoff(),
	}
}

// Push adds v.
func (st *TreiberStack) Push(t *cpu.Thread, v uint64) {
	w := allocNode(t, st.space, st.region, v)
	for att := 0; ; att++ {
		old := t.SyncLoad(st.top)
		t.Store(w+offNext, old)
		if t.CAS(st.top, old, uint64(w)) {
			return
		}
		st.Backoff.Wait(t, att)
	}
}

// Pop removes the newest element; ok is false on empty.
func (st *TreiberStack) Pop(t *cpu.Thread) (v uint64, ok bool) {
	for att := 0; ; att++ {
		old := t.SyncLoad(st.top)
		if old == 0 {
			return 0, false
		}
		next := t.Load(proto.Addr(old) + offNext)
		if t.CAS(st.top, old, next) {
			return t.Load(proto.Addr(old) + offValue), true
		}
		st.Backoff.Wait(t, att)
	}
}

// FAICounter is the fetch-and-increment counter kernel.
type FAICounter struct {
	addr proto.Addr
}

// NewFAICounter allocates the counter word.
func NewFAICounter(s *alloc.Space, _ *mem.Store) *FAICounter {
	return &FAICounter{addr: s.AllocPadded(s.Region("fai.sync"))}
}

// Increment atomically increments and returns the previous value.
func (c *FAICounter) Increment(t *cpu.Thread) uint64 {
	return t.FetchAdd(c.addr, 1)
}

// Addr exposes the counter word (tests and invariant checks).
func (c *FAICounter) Addr() proto.Addr { return c.addr }
