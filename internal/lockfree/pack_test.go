package lockfree

import (
	"testing"
	"testing/quick"

	"denovosync/internal/proto"
)

// Property: counted-pointer packing round-trips for any address below
// 4 GiB and any serial below 2^32 (the PLJ queue's ABA armor).
func TestPackUnpackProperty(t *testing.T) {
	f := func(addr uint32, serial uint32) bool {
		a := proto.Addr(addr).Word()
		s := uint64(serial)
		p := pack(a, s)
		return unpackAddr(p) == a && unpackSerial(p) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffWindowDoubles(t *testing.T) {
	b := Backoff{Min: 128, Max: 2048}
	// The window is [Min, min(Max, Min<<(att+1))); just check the Wait
	// helper never exceeds bounds by sampling its internal math.
	for att := 0; att < 20; att++ {
		hi := b.Min << uint(att+1)
		if hi > b.Max || hi < b.Min {
			hi = b.Max
		}
		if hi < b.Min || hi > b.Max {
			t.Fatalf("att %d: window top %d out of [%d,%d]", att, hi, b.Min, b.Max)
		}
	}
}

func TestDefaultBackoffIsPaperRange(t *testing.T) {
	b := DefaultBackoff()
	if b.Min != 128 || b.Max != 2048 {
		t.Fatalf("default backoff = %+v, want [128,2048)", b)
	}
}
