package lockfree_test

import (
	"sort"
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/lockfree"
	"denovosync/internal/machine"
	"denovosync/internal/sim"
)

var protocols = []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync}

// queueLike abstracts the two queues for shared checks.
type queueLike interface {
	Enqueue(t *cpu.Thread, v uint64)
	Dequeue(t *cpu.Thread) (uint64, bool)
}

// checkQueue: every thread enqueues distinct values and dequeues; across
// the run every enqueued value is dequeued exactly once (no loss, no
// duplication), on every protocol.
func checkQueue(t *testing.T, name string, mk func(*alloc.Space, *machine.Machine) queueLike) {
	const perThread = 6
	for _, prot := range protocols {
		space := alloc.New()
		m := machine.New(machine.Params16(), prot, space)
		q := mk(space, m)
		var got [][]uint64 = make([][]uint64, 16)
		_, err := m.Run(name, func(th *cpu.Thread) {
			for i := 0; i < perThread; i++ {
				q.Enqueue(th, uint64(th.ID*1000+i))
				th.Compute(simCycles(th, 50, 300))
				if v, ok := q.Dequeue(th); ok {
					got[th.ID] = append(got[th.ID], v)
				}
				th.Compute(simCycles(th, 50, 300))
			}
			// Drain whatever remains, one attempt per thread per round.
			for {
				v, ok := q.Dequeue(th)
				if !ok {
					break
				}
				got[th.ID] = append(got[th.ID], v)
			}
		})
		if err != nil {
			t.Fatalf("%v/%s: %v", prot, name, err)
		}
		var all []uint64
		for _, g := range got {
			all = append(all, g...)
		}
		if len(all) != 16*perThread {
			t.Fatalf("%v/%s: dequeued %d values, want %d", prot, name, len(all), 16*perThread)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < len(all); i++ {
			if all[i] == all[i-1] {
				t.Fatalf("%v/%s: duplicate value %d", prot, name, all[i])
			}
		}
	}
}

func simCycles(th *cpu.Thread, lo, hi int) sim.Cycle { return sim.Cycle(th.RNG.Range(lo, hi)) }

func TestMSQueue(t *testing.T) {
	checkQueue(t, "msqueue", func(s *alloc.Space, m *machine.Machine) queueLike {
		return lockfree.NewMSQueue(s, m.Store)
	})
}

func TestPLJQueue(t *testing.T) {
	checkQueue(t, "pljqueue", func(s *alloc.Space, m *machine.Machine) queueLike {
		return lockfree.NewPLJQueue(s, m.Store)
	})
}

// TestMSQueueFIFOSingleThread: single-threaded order is FIFO.
func TestMSQueueFIFOSingleThread(t *testing.T) {
	space := alloc.New()
	m := machine.New(machine.Params16(), machine.DeNovoSync, space)
	q := lockfree.NewMSQueue(space, m.Store)
	var got []uint64
	_, err := m.Run("fifo", func(th *cpu.Thread) {
		if th.ID != 0 {
			return
		}
		for i := uint64(1); i <= 5; i++ {
			q.Enqueue(th, i)
		}
		for {
			v, ok := q.Dequeue(th)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("dequeued %d, want 5", len(got))
	}
}

// stackLike abstracts the stacks.
type stackLike interface {
	Push(t *cpu.Thread, v uint64)
	Pop(t *cpu.Thread) (uint64, bool)
}

func checkStack(t *testing.T, name string, mk func(*alloc.Space, *machine.Machine) stackLike) {
	const perThread = 5
	for _, prot := range protocols {
		space := alloc.New()
		m := machine.New(machine.Params16(), prot, space)
		st := mk(space, m)
		popped := make([][]uint64, 16)
		_, err := m.Run(name, func(th *cpu.Thread) {
			for i := 0; i < perThread; i++ {
				st.Push(th, uint64(th.ID*1000+i))
				th.Compute(simCycles(th, 50, 400))
				if v, ok := st.Pop(th); ok {
					popped[th.ID] = append(popped[th.ID], v)
				}
			}
		})
		if err != nil {
			t.Fatalf("%v/%s: %v", prot, name, err)
		}
		seen := map[uint64]bool{}
		n := 0
		for _, g := range popped {
			for _, v := range g {
				if seen[v] {
					t.Fatalf("%v/%s: duplicate pop %d", prot, name, v)
				}
				seen[v] = true
				n++
			}
		}
		if n != 16*perThread {
			t.Fatalf("%v/%s: popped %d, want %d", prot, name, n, 16*perThread)
		}
	}
}

func TestTreiberStack(t *testing.T) {
	checkStack(t, "treiber", func(s *alloc.Space, m *machine.Machine) stackLike {
		return lockfree.NewTreiberStack(s, m.Store)
	})
}

func TestHerlihyStack(t *testing.T) {
	checkStack(t, "herlihy", func(s *alloc.Space, m *machine.Machine) stackLike {
		return lockfree.NewHerlihyStack(s, m.Store, 96) // 16 threads x 5 + slack
	})
}

func TestHerlihyStackReducedChecks(t *testing.T) {
	checkStack(t, "herlihy0", func(s *alloc.Space, m *machine.Machine) stackLike {
		h := lockfree.NewHerlihyStack(s, m.Store, 96)
		h.ExtraChecks = 0
		return h
	})
}

// TestHerlihyHeapOrdering: concurrent inserts then single-threaded
// delete-min drains in sorted order.
func TestHerlihyHeapOrdering(t *testing.T) {
	for _, prot := range protocols {
		space := alloc.New()
		m := machine.New(machine.Params16(), prot, space)
		h := lockfree.NewHerlihyHeap(space, m.Store, 64)
		var drained []uint64
		count := space.AllocPadded(space.Region("done"))
		_, err := m.Run("heap", func(th *cpu.Thread) {
			h.Insert(th, uint64(100-th.ID*3))
			h.Insert(th, uint64(th.ID*7+1))
			th.FetchAdd(count, 1)
			if th.ID == 0 {
				th.SpinSyncLoadUntil(count, func(v uint64) bool { return v == 16 })
				for {
					v, ok := h.DeleteMin(th)
					if !ok {
						break
					}
					drained = append(drained, v)
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if len(drained) != 32 {
			t.Fatalf("%v: drained %d, want 32", prot, len(drained))
		}
		for i := 1; i < len(drained); i++ {
			if drained[i] < drained[i-1] {
				t.Fatalf("%v: heap order violated: %v", prot, drained)
			}
		}
	}
}

// TestFAICounter: the counter is exact under contention.
func TestFAICounter(t *testing.T) {
	for _, prot := range protocols {
		space := alloc.New()
		m := machine.New(machine.Params16(), prot, space)
		c := lockfree.NewFAICounter(space, m.Store)
		_, err := m.Run("fai", func(th *cpu.Thread) {
			for i := 0; i < 25; i++ {
				c.Increment(th)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if got := m.Store.Read(c.Addr()); got != 400 {
			t.Fatalf("%v: counter = %d, want 400", prot, got)
		}
	}
}
