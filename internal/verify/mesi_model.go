package verify

import (
	"fmt"
	"sort"
	"strings"
)

// The abstract MESI model mirrors internal/mesi: a full-map directory with
// blocking ownership transactions, requestor-collected invalidation acks,
// exclusive clean grants, non-blocking read grants, silent S evictions,
// and M/E evictions whose writebacks can race forwarded requests (the
// directory stale-acks a Put from a core that already lost ownership, and
// a forwarded request reaching an evicted owner is answered from the
// committed image). One line, N cores, bounded reads/writes per core.
//
// The point of this model (after [21]): even this simplified MESI breeds
// a zoo of transient controller states — L1s waiting for data, counting
// acks, directories blocked mid-transaction with queued requests — while
// the DeNovo model next door gets by with three stable states and a
// single "registration pending" transient.

// meCoreState is the abstract model's per-core stable L1 state, and
// meDirState the directory's. Typed so that simlint's exhauststate
// analyzer verifies every switch covers all declared states — the model's
// whole point is enumerating transitions, so a silently ignored state
// would quietly prune the reachable space.
type meCoreState byte

const (
	meI meCoreState = 'I'
	meS meCoreState = 'S'
	meE meCoreState = 'E'
	meM meCoreState = 'M'
)

type meDirState byte

const (
	mdI meDirState = 'I'
	mdS meDirState = 'S'
	mdM meDirState = 'M'
)

type meTxn struct {
	wantM    bool
	dataRecv bool
	excl     bool
	unblock  bool
	acksNeed int // -1 = unknown
	acksGot  int
}

type meCore struct {
	state   meCoreState
	txn     *meTxn
	opsLeft int
}

type meMsg struct {
	kind string // "gets","getm","data","inv","invack","fwds","fwdm","unblock","ownerack"
	src  int    // sender: core ID or -1 for the directory
	to   int    // destination core; -1 = directory
	req  int    // original requestor
	acks int
	excl bool
	unbl bool
}

type meDirReq struct {
	core  int
	wantM bool
}

type meState struct {
	cores    []meCore
	dirState meDirState
	owner    int  // -1 = none
	sharers  []bool
	busy     bool
	needAcks int
	queue    []meDirReq
	msgs     []meMsg
}

func (s *meState) clone() *meState {
	n := &meState{dirState: s.dirState, owner: s.owner, busy: s.busy, needAcks: s.needAcks}
	n.cores = make([]meCore, len(s.cores))
	copy(n.cores, s.cores)
	for i := range s.cores {
		if s.cores[i].txn != nil {
			t := *s.cores[i].txn
			n.cores[i].txn = &t
		}
	}
	n.sharers = append([]bool(nil), s.sharers...)
	n.queue = append([]meDirReq(nil), s.queue...)
	n.msgs = append([]meMsg(nil), s.msgs...)
	return n
}

func (m meMsg) String() string {
	return fmt.Sprintf("%s(s%d,to%d,req%d,a%d,e%t,u%t)", m.kind, m.src, m.to, m.req, m.acks, m.excl, m.unbl)
}

func (s *meState) encode() string {
	var b strings.Builder
	for _, c := range s.cores {
		fmt.Fprintf(&b, "%c%d", c.state, c.opsLeft)
		if c.txn != nil {
			fmt.Fprintf(&b, "{%t,%t,%d,%d}", c.txn.wantM, c.txn.dataRecv, c.txn.acksNeed, c.txn.acksGot)
		}
		b.WriteString(";")
	}
	fmt.Fprintf(&b, "|%c,o%d,b%t,n%d,sh", s.dirState, s.owner, s.busy, s.needAcks)
	for _, sh := range s.sharers {
		if sh {
			b.WriteString("1")
		} else {
			b.WriteString("0")
		}
	}
	b.WriteString(",q")
	for _, q := range s.queue {
		fmt.Fprintf(&b, "(%d,%t)", q.core, q.wantM)
	}
	b.WriteString("|")
	// Per-channel (src,to) order is semantically significant (the mesh is
	// FIFO per source-destination pair), but the interleaving of distinct
	// channels is not: canonicalize by sorting whole channels.
	chans := map[[2]int][]string{}
	var keys [][2]int
	for _, m := range s.msgs {
		k := [2]int{m.src, m.to}
		if len(chans[k]) == 0 {
			keys = append(keys, k)
		}
		chans[k] = append(chans[k], m.String())
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		b.WriteString(strings.Join(chans[k], ">"))
		b.WriteString(",")
	}
	return b.String()
}

type meModel struct {
	cores, maxOps int
	extended      bool // evictions/writebacks beyond the base op set
	table         map[string]*meState
	rec           TransitionRecorder // optional; see transitions.go
}

// NewMESIModel explores the full MESI model including evictions and
// writeback races.
func NewMESIModel(cores, maxOps int) *Result {
	m := &meModel{cores: cores, maxOps: maxOps, extended: true, table: map[string]*meState{}}
	return explore(m, "MESI", cores, maxOps, 4_000_000)
}

// NewMESIModelBase explores the protocol over reads and writes only (no
// evictions) — the like-for-like counterpart of NewDeNovoModelBase.
func NewMESIModelBase(cores, maxOps int) *Result {
	m := &meModel{cores: cores, maxOps: maxOps, table: map[string]*meState{}}
	return explore(m, "MESI-base", cores, maxOps, 4_000_000)
}

func (d *meModel) initial() string {
	s := &meState{dirState: 'I', owner: -1, sharers: make([]bool, d.cores)}
	for i := 0; i < d.cores; i++ {
		s.cores = append(s.cores, meCore{state: 'I', opsLeft: d.maxOps})
	}
	return d.intern(s)
}

func (d *meModel) intern(s *meState) string {
	e := s.encode()
	if _, ok := d.table[e]; !ok {
		d.table[e] = s
	}
	return e
}

// dirService drains the directory queue until it blocks or empties
// (mirrors mesi.Directory.maybeStart/service: non-blocking read grants
// immediately re-service the queue).
func (d *meModel) dirService(n *meState) {
	for !n.busy && len(n.queue) > 0 {
		d.dirServiceOne(n)
	}
}

func (d *meModel) dirServiceOne(n *meState) {
	p := n.queue[0]
	n.queue = n.queue[1:]
	req := p.core
	if !p.wantM {
		d.record("dir", byte(n.dirState), "gets")
		switch n.dirState {
		case 'I':
			n.dirState = 'M'
			n.owner = req
			n.msgs = append(n.msgs, meMsg{kind: "data", src: -1, to: req, req: req, excl: true})
		case 'S':
			n.sharers[req] = true
			n.msgs = append(n.msgs, meMsg{kind: "data", src: -1, to: req, req: req})
		case 'M':
			owner := n.owner
			n.dirState = 'S'
			n.sharers[owner] = true
			n.sharers[req] = true
			n.owner = -1
			n.busy = true
			n.needAcks = 2
			n.msgs = append(n.msgs, meMsg{kind: "fwds", src: -1, to: owner, req: req})
		}
		return
	}
	d.record("dir", byte(n.dirState), "getm")
	switch n.dirState {
	case 'I':
		n.dirState = 'M'
		n.owner = req
		n.busy = true
		n.needAcks = 1
		n.msgs = append(n.msgs, meMsg{kind: "data", src: -1, to: req, req: req, unbl: true})
	case 'S':
		invs := 0
		for i, sh := range n.sharers {
			if sh && i != req {
				invs++
				n.msgs = append(n.msgs, meMsg{kind: "inv", src: -1, to: i, req: req})
			}
		}
		n.dirState = 'M'
		n.owner = req
		n.sharers = make([]bool, len(n.cores))
		n.busy = true
		n.needAcks = 1
		n.msgs = append(n.msgs, meMsg{kind: "data", src: -1, to: req, req: req, acks: invs, unbl: true})
	case 'M':
		owner := n.owner
		n.owner = req
		n.busy = true
		n.needAcks = 1
		n.msgs = append(n.msgs, meMsg{kind: "fwdm", src: -1, to: owner, req: req})
	}
}

// maybeComplete mirrors mesi.L1.maybeComplete.
func (d *meModel) maybeComplete(n *meState, core int) {
	c := &n.cores[core]
	t := c.txn
	if t == nil || !t.dataRecv || t.acksNeed < 0 || t.acksGot < t.acksNeed {
		return
	}
	d.record("core", byte(c.state), "complete")
	switch {
	case t.wantM:
		c.state = 'M'
	case t.excl:
		c.state = 'E'
	default:
		c.state = 'S'
	}
	c.opsLeft--
	if t.unblock {
		n.msgs = append(n.msgs, meMsg{kind: "unblock", src: core, to: -1, req: core})
	}
	c.txn = nil
}

func (d *meModel) successors(enc string) []string {
	s := d.table[enc]
	if s == nil {
		panic("verify: unknown state " + enc)
	}
	var out []string

	// 1. Core op issue.
	for i := range s.cores {
		c := &s.cores[i]
		if c.txn != nil || c.opsLeft == 0 {
			continue
		}
		// Read.
		{
			d.record("core", byte(c.state), "read")
			n := s.clone()
			nc := &n.cores[i]
			if nc.state != 'I' {
				nc.opsLeft--
			} else {
				nc.txn = &meTxn{wantM: false, acksNeed: -1}
				n.msgs = append(n.msgs, meMsg{kind: "gets", src: i, to: -1, req: i})
			}
			out = append(out, d.intern(n))
		}
		// Write.
		{
			d.record("core", byte(c.state), "write")
			n := s.clone()
			nc := &n.cores[i]
			if nc.state == 'M' || nc.state == 'E' {
				nc.state = 'M' // silent E->M upgrade
				nc.opsLeft--
			} else {
				nc.txn = &meTxn{wantM: true, acksNeed: -1}
				n.msgs = append(n.msgs, meMsg{kind: "getm", src: i, to: -1, req: i})
			}
			out = append(out, d.intern(n))
		}
	}

	// 1b. Evictions: silent for S; M/E writes back with a PutM that the
	// directory stale-acks if ownership already moved.
	for i := range s.cores {
		c := &s.cores[i]
		if !d.extended || c.txn != nil {
			continue
		}
		switch c.state {
		case 'S':
			d.record("core", 'S', "evict")
			n := s.clone()
			n.cores[i].state = 'I'
			out = append(out, d.intern(n))
		case 'M', 'E':
			d.record("core", byte(c.state), "evict")
			n := s.clone()
			n.cores[i].state = 'I'
			n.msgs = append(n.msgs, meMsg{kind: "putm", src: i, to: -1, req: i})
			out = append(out, d.intern(n))
		case 'I':
			// Nothing cached, nothing to evict.
		}
	}

	// 2. Message deliveries: the mesh is FIFO per (source, destination)
	// pair, so only the oldest message of each channel is deliverable.
	for mi := range s.msgs {
		blocked := false
		for mj := 0; mj < mi; mj++ {
			if s.msgs[mj].src == s.msgs[mi].src && s.msgs[mj].to == s.msgs[mi].to {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		n := s.clone()
		msg := n.msgs[mi]
		n.msgs = append(n.msgs[:mi], n.msgs[mi+1:]...)
		switch msg.kind {
		case "gets":
			n.queue = append(n.queue, meDirReq{core: msg.req, wantM: false})
			d.dirService(n)
		case "getm":
			n.queue = append(n.queue, meDirReq{core: msg.req, wantM: true})
			d.dirService(n)
		case "data":
			c := &n.cores[msg.to]
			if c.txn != nil {
				d.record("core", byte(c.state), "data")
				c.txn.dataRecv = true
				c.txn.excl = msg.excl
				c.txn.unblock = c.txn.unblock || msg.unbl
				c.txn.acksNeed = msg.acks
				d.maybeComplete(n, msg.to)
			}
		case "inv":
			c := &n.cores[msg.to]
			d.record("core", byte(c.state), "inv")
			if c.state == 'S' {
				c.state = 'I'
			}
			n.msgs = append(n.msgs, meMsg{kind: "invack", src: msg.to, to: msg.req})
		case "invack":
			c := &n.cores[msg.to]
			if c.txn != nil {
				d.record("core", byte(c.state), "invack")
				c.txn.acksGot++
				d.maybeComplete(n, msg.to)
			}
		case "fwds":
			c := &n.cores[msg.to]
			d.record("core", byte(c.state), "fwds")
			if c.state == 'M' || c.state == 'E' {
				c.state = 'S'
			}
			n.msgs = append(n.msgs,
				meMsg{kind: "data", src: msg.to, to: msg.req, req: msg.req, unbl: true},
				meMsg{kind: "ownerack", src: msg.to, to: -1})
		case "fwdm":
			c := &n.cores[msg.to]
			d.record("core", byte(c.state), "fwdm")
			c.state = 'I'
			n.msgs = append(n.msgs, meMsg{kind: "data", src: msg.to, to: msg.req, req: msg.req, unbl: true})
		case "putm":
			// Mirrors mesi.Directory.recvPut: only a current, unblocked
			// owner's writeback clears the entry; anything else is stale.
			d.record("dir", byte(n.dirState), "putm")
			if !n.busy && n.dirState == 'M' && n.owner == msg.req {
				n.dirState = 'I'
				n.owner = -1
			}
		case "unblock", "ownerack":
			d.record("dir", byte(n.dirState), "complete")
			n.needAcks--
			if n.needAcks <= 0 {
				n.busy = false
				d.dirService(n)
			}
		}
		out = append(out, d.intern(n))
	}
	return out
}

func (d *meModel) check(enc string) string {
	s := d.table[enc]
	if s == nil {
		return ""
	}
	owners, sharers := 0, 0
	for _, c := range s.cores {
		switch c.state {
		case 'M', 'E':
			owners++
		case 'S':
			sharers++
		case 'I':
			// Invalid copies are unconstrained.
		}
	}
	if owners > 1 {
		return "multiple M/E copies"
	}
	if owners == 1 && sharers > 0 {
		return "M/E coexists with S"
	}
	return ""
}

func (d *meModel) l1states(enc string) []string {
	s := d.table[enc]
	if s == nil {
		return nil
	}
	var out []string
	for _, c := range s.cores {
		label := string(rune(c.state))
		if t := c.txn; t != nil {
			label += fmt.Sprintf("+%t/%t/%d/%d/%t", t.wantM, t.dataRecv, t.acksNeed, t.acksGot, t.unblock)
		}
		out = append(out, label)
	}
	return out
}

func (d *meModel) quiescent(enc string) bool {
	s := d.table[enc]
	if s == nil {
		return false
	}
	if len(s.msgs) > 0 || s.busy || len(s.queue) > 0 {
		return false
	}
	for _, c := range s.cores {
		if c.txn != nil || c.opsLeft > 0 {
			return false
		}
	}
	return true
}
