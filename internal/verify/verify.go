// Package verify contains explicit-state model checkers for abstract
// versions of the two coherence protocols, reproducing the paper's
// complexity claim (§2.2, after Komuravelli et al. [21]): DeNovo has
// exactly three stable states and no transients, so its reachable
// state space is dramatically smaller than MESI's, whose blocking
// directory and in-flight invalidations breed transient states.
//
// The models are small abstract transition systems over one coherence
// unit (a word for DeNovo, a line for MESI) and N cores, exhaustively
// explored by BFS over all message-delivery and operation-issue
// interleavings. Each model checks its protocol's safety invariants in
// every reachable state:
//
//   - DeNovo: at most one Registered copy; the registry's owner chain is
//     acyclic and converges to the single registrant at quiescence.
//   - MESI: single-writer/multiple-reader — never two M/E copies, never
//     an M/E copy alongside an S copy (at quiescence).
//
// Both models also verify deadlock freedom (every non-quiescent state
// has a successor) and report the state-space size and the number of
// distinct per-L1 controller states (stable + transient), the measure
// under which the paper claims DeNovo's simplicity.
package verify

import "fmt"

// Result summarizes one exhaustive exploration.
type Result struct {
	Protocol string
	Cores    int
	MaxOps   int

	ReachableStates int
	// L1ControllerStates is the number of distinct per-core controller
	// configurations observed (stable state x outstanding-transaction
	// status) — the protocol-complexity measure.
	L1ControllerStates int
	// TransientL1States counts the L1 controller states that are not one
	// of the protocol's stable states.
	TransientL1States int
	Violations        []string
}

func (r *Result) String() string {
	return fmt.Sprintf("%s (%d cores, %d ops): %d reachable states, %d L1 controller states (%d transient), %d violations",
		r.Protocol, r.Cores, r.MaxOps, r.ReachableStates, r.L1ControllerStates, r.TransientL1States, len(r.Violations))
}

// model is the abstract transition system interface the explorer drives.
type model interface {
	initial() string
	// successors expands a state into every possible next state (all
	// deliverable messages delivered in every order, every core op
	// issued when allowed).
	successors(s string) []string
	// check returns an invariant-violation description or "".
	check(s string) string
	// l1states extracts each core's controller-state label.
	l1states(s string) []string
	// quiescent reports whether the state has no pending work.
	quiescent(s string) bool
}

// explore runs BFS to a fixed point (the models are finite because each
// core issues a bounded number of operations).
func explore(m model, name string, cores, maxOps, stateCap int) *Result {
	res := &Result{Protocol: name, Cores: cores, MaxOps: maxOps}
	visited := map[string]bool{}
	l1seen := map[string]bool{}
	frontier := []string{m.initial()}
	visited[frontier[0]] = true
	for len(frontier) > 0 {
		if len(visited) > stateCap {
			res.Violations = append(res.Violations, "state cap exceeded")
			break
		}
		s := frontier[0]
		frontier = frontier[1:]
		if v := m.check(s); v != "" {
			res.Violations = append(res.Violations, v+" in "+s)
			if len(res.Violations) > 10 {
				break
			}
		}
		for _, l1 := range m.l1states(s) {
			l1seen[l1] = true
		}
		succ := m.successors(s)
		if len(succ) == 0 && !m.quiescent(s) {
			res.Violations = append(res.Violations, "deadlock in "+s)
		}
		for _, n := range succ {
			if !visited[n] {
				visited[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	res.ReachableStates = len(visited)
	res.L1ControllerStates = len(l1seen)
	for l1 := range l1seen {
		if isTransientLabel(l1) {
			res.TransientL1States++
		}
	}
	return res
}

// isTransientLabel: stable states are single letters (I/V/R for DeNovo,
// I/S/E/M for MESI); anything longer carries transaction context.
func isTransientLabel(l string) bool { return len(l) > 1 }
