package verify

// TransitionRecorder receives one (component, state, event) record each
// time the abstract model applies a transition during exploration. The
// atlas cross-check (internal/lint/atlas, cmd/protocov -mode crosscheck)
// aggregates these into the model's reachable transition set and compares
// it — through the docs/atlas/absmap.json abstraction map — against the
// implementation's static transition atlas.
//
// Components: "core" (the per-core L1 word/line state machine), "dir"
// (the MESI directory), "registry" (the DeNovo registry). States are the
// model's stable-state letters ("I","S","E","M"; "I","V","R") or the
// registry's owner classification ("L2","Self","Other"). Events mirror
// the model's message kinds ("gets", "fwd:r", "issue:w", ...).
type TransitionRecorder func(component, state, event string)

// NewMESIModelRecorded explores the full MESI model with a transition
// recorder attached.
func NewMESIModelRecorded(cores, maxOps int, rec TransitionRecorder) *Result {
	m := &meModel{cores: cores, maxOps: maxOps, extended: true, table: map[string]*meState{}, rec: rec}
	return explore(m, "MESI", cores, maxOps, 4_000_000)
}

// NewDeNovoModelRecorded explores the full DeNovoSync model with a
// transition recorder attached.
func NewDeNovoModelRecorded(cores, maxOps int, rec TransitionRecorder) *Result {
	m := &dnModel{cores: cores, maxOps: maxOps, extended: true, table: map[string]*dnState{}, rec: rec}
	return explore(m, "DeNovoSync", cores, maxOps, 4_000_000)
}

func (d *meModel) record(component string, state byte, event string) {
	if d.rec != nil {
		d.rec(component, string(rune(state)), event)
	}
}

func (d *dnModel) record(component string, state byte, event string) {
	if d.rec != nil {
		d.rec(component, string(rune(state)), event)
	}
}

// recordOwner classifies the registry pointer relative to requester core
// (mirroring denovo.regLine.ownerState) and records the event.
func (d *dnModel) recordOwner(owner, core int, event string) {
	if d.rec == nil {
		return
	}
	cls := "Other"
	switch owner {
	case -1:
		cls = "L2"
	case core:
		cls = "Self"
	}
	d.rec("registry", cls, event)
}
