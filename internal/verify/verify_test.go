package verify

import "testing"

func TestDeNovoModelSafe(t *testing.T) {
	for _, cores := range []int{2, 3} {
		r := NewDeNovoModel(cores, 2)
		if len(r.Violations) != 0 {
			t.Fatalf("%d cores: %v", cores, r.Violations)
		}
		if r.ReachableStates == 0 {
			t.Fatal("explored nothing")
		}
		t.Log(r)
	}
}

func TestDeNovoBaseModelSafe(t *testing.T) {
	r := NewDeNovoModelBase(3, 2)
	if len(r.Violations) != 0 {
		t.Fatalf("%v", r.Violations)
	}
	t.Log(r)
}

func TestMESIBaseModelSafe(t *testing.T) {
	r := NewMESIModelBase(3, 2)
	if len(r.Violations) != 0 {
		t.Fatalf("%v", r.Violations)
	}
	t.Log(r)
}

// TestComplexityClaimExtended: the full models (data reads + evictions on
// both sides) preserve the ordering on controller-state counts.
func TestComplexityClaimExtended(t *testing.T) {
	dn := NewDeNovoModel(3, 2)
	me := NewMESIModel(3, 2)
	if dn.L1ControllerStates >= me.L1ControllerStates {
		t.Fatalf("extended complexity claim failed: DeNovo %d vs MESI %d",
			dn.L1ControllerStates, me.L1ControllerStates)
	}
	t.Logf("extended: DeNovo %d global / %d L1; MESI %d global / %d L1",
		dn.ReachableStates, dn.L1ControllerStates, me.ReachableStates, me.L1ControllerStates)
}

func TestMESIModelSafe(t *testing.T) {
	for _, cores := range []int{2, 3} {
		r := NewMESIModel(cores, 2)
		if len(r.Violations) != 0 {
			t.Fatalf("%d cores: %v", cores, r.Violations)
		}
		t.Log(r)
	}
}

// TestComplexityClaim reproduces the paper's §2.2 claim: DeNovo's L1
// controller has dramatically fewer reachable states than MESI's (three
// stable states, one pending flavor) because the registry never blocks
// and there are no invalidation/ack races. Compared like-for-like: the
// base DeNovo model covers the same operations as the MESI model.
func TestComplexityClaim(t *testing.T) {
	dn := NewDeNovoModelBase(3, 2)
	me := NewMESIModelBase(3, 2)
	if dn.L1ControllerStates >= me.L1ControllerStates {
		t.Fatalf("complexity claim failed: DeNovo %d states vs MESI %d",
			dn.L1ControllerStates, me.L1ControllerStates)
	}
	if dn.ReachableStates >= me.ReachableStates {
		t.Fatalf("state space claim failed: DeNovo %d vs MESI %d",
			dn.ReachableStates, me.ReachableStates)
	}
	t.Logf("DeNovo: %d global / %d L1 states; MESI: %d global / %d L1 states",
		dn.ReachableStates, dn.L1ControllerStates, me.ReachableStates, me.L1ControllerStates)
}
