package verify

import (
	"fmt"
	"sort"
	"strings"
)

// The abstract DeNovoSync model: one synchronization word, N cores, each
// issuing up to maxOps sync reads/writes (both choices explored at every
// decision point). Mirrors §4.1 of the paper and internal/denovo:
//
//   - L1 word state I/V/R; sync reads and writes both register.
//   - Registry: a single owner pointer (core or the LLC), updated
//     immediately on every registration request, forwarding to the
//     previous registrant — never blocking.
//   - A forwarded registration arriving at an L1 with its own
//     registration pending parks in the MSHR and is serviced on ack.
//   - A forwarded sync read downgrades R→V; any write invalidates.
//   - Data reads request the word without registering; the registry
//     forwards to the owner, who responds and stays Registered.
//   - A core may spontaneously evict a Registered word, writing it back;
//     a writeback that races a newer registration is stale at the
//     registry and must be ignored there.
//
// Delivery order: FIFO per (source, destination) channel, as the mesh
// provides; channels are otherwise unordered. This matters: exploring the
// model under fully unordered delivery finds real counterexamples
// (mutual registration-forward parking cycles, and a stale writeback
// clearing a re-registration) that all require a core's writeback to
// overtake its own later registration request on the same channel —
// exactly what point-to-point ordering forbids. Without evictions the
// protocol verifies safe even under unordered delivery.

// dnWordState is the abstract model's per-core word state, mirroring the
// three stable states of internal/denovo. Typed for simlint's
// exhauststate analyzer, like the MESI model's states.
type dnWordState byte

const (
	dnI dnWordState = 'I'
	dnV dnWordState = 'V'
	dnR dnWordState = 'R'
)

type dnCore struct {
	state     dnWordState
	pending   byte // 0 = none, 'r'/'w' = registration, 'd' = data read
	wbPending bool // eviction writeback awaiting registry ack
	parked    []dnMsg
	opsLeft   int
}

type dnMsg struct {
	kind string // "reg", "fwd", "ack", "read", "rfwd", "rresp", "wb"
	src  int    // sender: core ID or -1 for the registry
	core int    // requester
	to   int    // destination core for fwd/ack (-1 = registry)
	op   byte   // 'r' or 'w' (registrations only)
}

type dnState struct {
	cores []dnCore
	owner int // -1 = registry/LLC
	msgs  []dnMsg
}

func (s *dnState) clone() *dnState {
	n := &dnState{owner: s.owner}
	n.cores = make([]dnCore, len(s.cores))
	copy(n.cores, s.cores)
	for i := range s.cores {
		n.cores[i].parked = append([]dnMsg(nil), s.cores[i].parked...)
	}
	n.msgs = append([]dnMsg(nil), s.msgs...)
	return n
}

func (m dnMsg) String() string {
	return fmt.Sprintf("%s(s%d,c%d->%d,%c)", m.kind, m.src, m.core, m.to, m.op)
}

func (s *dnState) encode() string {
	var b strings.Builder
	for _, c := range s.cores {
		wb := byte('-')
		if c.wbPending {
			wb = 'W'
		}
		fmt.Fprintf(&b, "%c%c%c%d[", c.state, pendingChar(c.pending), wb, c.opsLeft)
		for _, p := range c.parked {
			b.WriteString(p.String())
		}
		b.WriteString("]")
	}
	fmt.Fprintf(&b, "|o%d|", s.owner)
	// Canonicalize: per-channel order is significant, channel interleaving
	// is not (FIFO mesh semantics, as in the MESI model).
	chans := map[[2]int][]string{}
	var keys [][2]int
	for _, m := range s.msgs {
		k := [2]int{m.src, m.to}
		if len(chans[k]) == 0 {
			keys = append(keys, k)
		}
		chans[k] = append(chans[k], m.String())
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		b.WriteString(strings.Join(chans[k], ">"))
		b.WriteString(",")
	}
	return b.String()
}

func pendingChar(p byte) byte {
	if p == 0 {
		return '-'
	}
	return p
}

type dnModel struct {
	cores, maxOps int
	extended      bool // evictions + data reads (beyond the MESI model's ops)
	table         map[string]*dnState
	rec           TransitionRecorder // optional; see transitions.go
}

// NewDeNovoModel explores the full DeNovoSync model: sync reads/writes,
// data reads, spontaneous evictions with acked writebacks.
func NewDeNovoModel(cores, maxOps int) *Result {
	m := &dnModel{cores: cores, maxOps: maxOps, extended: true, table: map[string]*dnState{}}
	return explore(m, "DeNovoSync", cores, maxOps, 4_000_000)
}

// NewDeNovoModelBase explores the registration protocol over the same
// operation set as the MESI model (reads and writes, no evictions) — the
// like-for-like comparison behind the complexity claim.
func NewDeNovoModelBase(cores, maxOps int) *Result {
	m := &dnModel{cores: cores, maxOps: maxOps, table: map[string]*dnState{}}
	return explore(m, "DeNovoSync-base", cores, maxOps, 4_000_000)
}

// The explorer works on encoded strings; a side table maps each
// canonical encoding back to its structured state (sound because the
// encoding is canonical).
func (d *dnModel) initial() string {
	s := &dnState{owner: -1}
	for i := 0; i < d.cores; i++ {
		s.cores = append(s.cores, dnCore{state: 'I', opsLeft: d.maxOps})
	}
	return d.intern(s)
}

func (d *dnModel) intern(s *dnState) string {
	e := s.encode()
	if _, ok := d.table[e]; !ok {
		d.table[e] = s
	}
	return e
}

func (d *dnModel) successors(enc string) []string {
	s := d.table[enc]
	if s == nil {
		panic("verify: unknown state " + enc)
	}
	var out []string

	// 1. Core op issue: any core with no pending registration and ops
	// left may issue a sync read, a sync write, or a data read.
	for i := range s.cores {
		c := &s.cores[i]
		if c.pending != 0 || c.opsLeft == 0 || c.wbPending {
			continue
		}
		for _, op := range []byte{'r', 'w'} {
			d.record("core", byte(c.state), "issue:"+string(rune(op)))
			n := s.clone()
			nc := &n.cores[i]
			if nc.state == 'R' {
				nc.opsLeft-- // hit: reads and writes stay Registered
			} else {
				nc.pending = op
				n.msgs = append(n.msgs, dnMsg{kind: "reg", src: i, core: i, to: -1, op: op})
			}
			out = append(out, d.intern(n))
		}
		// Data read: hits on V or R; otherwise a non-registering request.
		if d.extended {
			d.record("core", byte(c.state), "issue:d")
			n := s.clone()
			nc := &n.cores[i]
			if nc.state == 'V' || nc.state == 'R' {
				nc.opsLeft--
			} else {
				nc.pending = 'd'
				n.msgs = append(n.msgs, dnMsg{kind: "read", src: i, core: i, to: -1})
			}
			out = append(out, d.intern(n))
		}
	}

	// 1b. Spontaneous eviction of a Registered word (capacity pressure):
	// drop to Invalid, write back, and wait for the registry's ack before
	// registering the word again.
	for i := range s.cores {
		if !d.extended || s.cores[i].state != 'R' || s.cores[i].pending != 0 || s.cores[i].wbPending {
			continue
		}
		d.record("core", 'R', "evict")
		n := s.clone()
		n.cores[i].state = 'I'
		n.cores[i].wbPending = true
		n.msgs = append(n.msgs, dnMsg{kind: "wb", src: i, core: i, to: -1})
		out = append(out, d.intern(n))
	}

	// 2. Message deliveries: FIFO per (source, destination) channel,
	// arbitrary interleaving across channels.
	for mi := range s.msgs {
		blocked := false
		for mj := 0; mj < mi; mj++ {
			if s.msgs[mj].src == s.msgs[mi].src && s.msgs[mj].to == s.msgs[mi].to {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		n := s.clone()
		msg := n.msgs[mi]
		n.msgs = append(n.msgs[:mi], n.msgs[mi+1:]...)
		switch msg.kind {
		case "reg":
			prev := n.owner
			d.recordOwner(prev, msg.core, "reg")
			n.owner = msg.core
			if prev == -1 || prev == msg.core {
				n.msgs = append(n.msgs, dnMsg{kind: "ack", src: -1, core: msg.core, to: msg.core, op: msg.op})
			} else {
				n.msgs = append(n.msgs, dnMsg{kind: "fwd", src: -1, core: msg.core, to: prev, op: msg.op})
			}
		case "fwd":
			c := &n.cores[msg.to]
			d.record("core", byte(c.state), "fwd:"+string(rune(msg.op)))
			switch {
			case c.pending != 0:
				c.parked = append(c.parked, msg)
			case c.state == 'R':
				if msg.op == 'r' {
					c.state = 'V' // remote sync read downgrades (§4.2.1)
				} else {
					c.state = 'I'
				}
				n.msgs = append(n.msgs, dnMsg{kind: "ack", src: msg.to, core: msg.core, to: msg.core, op: msg.op})
			default:
				// Stale forward: respond from the committed image.
				n.msgs = append(n.msgs, dnMsg{kind: "ack", src: msg.to, core: msg.core, to: msg.core, op: msg.op})
			}
		case "read":
			d.recordOwner(n.owner, msg.core, "read")
			if n.owner == -1 || n.owner == msg.core {
				// Registry-owned (or stale self-pointer): respond directly.
				n.msgs = append(n.msgs, dnMsg{kind: "rresp", src: -1, core: msg.core, to: msg.core})
			} else {
				n.msgs = append(n.msgs, dnMsg{kind: "rfwd", src: -1, core: msg.core, to: n.owner})
			}
		case "rfwd":
			// Owner responds from its (or the committed) copy and stays
			// Registered; no state change either way.
			d.record("core", byte(n.cores[msg.to].state), "rfwd")
			n.msgs = append(n.msgs, dnMsg{kind: "rresp", src: msg.to, core: msg.core, to: msg.core})
		case "rresp":
			c := &n.cores[msg.to]
			d.record("core", byte(c.state), "rresp")
			if c.state == 'I' {
				c.state = 'V'
			}
			c.pending = 0
			c.opsLeft--
			// A parked registration forward can be waiting behind a data
			// read; service it from the stale path (we are not Registered).
			for _, p := range c.parked {
				d.record("core", byte(c.state), "fwd:"+string(rune(p.op)))
				n.msgs = append(n.msgs, dnMsg{kind: "ack", src: msg.to, core: p.core, to: p.core, op: p.op})
			}
			c.parked = nil
		case "wb":
			d.recordOwner(n.owner, msg.core, "wb")
			if n.owner == msg.core {
				n.owner = -1
			}
			// Otherwise the writeback raced a newer registration: stale.
			// Either way the evictor gets an ack so it may re-register.
			n.msgs = append(n.msgs, dnMsg{kind: "wback", src: -1, core: msg.core, to: msg.core})
		case "wback":
			d.record("core", byte(n.cores[msg.to].state), "wback")
			n.cores[msg.to].wbPending = false
		case "ack":
			c := &n.cores[msg.to]
			d.record("core", byte(c.state), "ack:"+string(rune(msg.op)))
			c.state = 'R'
			c.pending = 0
			c.opsLeft--
			// Service parked forwards in arrival order: the distributed
			// registration queue hand-off.
			for _, p := range c.parked {
				d.record("core", byte(c.state), "fwd:"+string(rune(p.op)))
				if c.state == 'R' {
					if p.op == 'r' {
						c.state = 'V'
					} else {
						c.state = 'I'
					}
				}
				n.msgs = append(n.msgs, dnMsg{kind: "ack", src: msg.to, core: p.core, to: p.core, op: p.op})
			}
			c.parked = nil
		}
		out = append(out, d.intern(n))
	}
	return out
}

func (d *dnModel) check(enc string) string {
	s := d.table[enc]
	if s == nil {
		return ""
	}
	registered := 0
	for _, c := range s.cores {
		if c.state == 'R' {
			registered++
		}
	}
	if registered > 1 {
		return "single-registrant violation"
	}
	// At quiescence the registry pointer must name the Registered core
	// (or no core is Registered and any stale pointer was cleaned by a
	// later registration — owner then names the last registrant, which
	// must still be Registered).
	if d.quiescent(enc) && s.owner >= 0 && s.cores[s.owner].state != 'R' {
		return "registry points to a non-registered core at quiescence"
	}
	return ""
}

func (d *dnModel) l1states(enc string) []string {
	s := d.table[enc]
	if s == nil {
		return nil
	}
	var out []string
	for _, c := range s.cores {
		label := string(rune(c.state))
		if c.pending != 0 {
			label += "+" + string(c.pending)
			if len(c.parked) > 0 {
				label += fmt.Sprintf("p%d", len(c.parked))
			}
		}
		out = append(out, label)
	}
	return out
}

func (d *dnModel) quiescent(enc string) bool {
	s := d.table[enc]
	if s == nil {
		return false
	}
	if len(s.msgs) > 0 {
		return false
	}
	for _, c := range s.cores {
		if c.pending != 0 || c.opsLeft > 0 || len(c.parked) > 0 || c.wbPending {
			return false
		}
	}
	return true
}
