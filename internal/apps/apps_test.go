package apps_test

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/apps"
	"denovosync/internal/machine"
)

func TestAllHas13(t *testing.T) {
	as := apps.All()
	if len(as) != 13 {
		t.Fatalf("app count = %d, want 13", len(as))
	}
	ids := map[string]bool{}
	for _, a := range as {
		if ids[a.ID] {
			t.Fatalf("duplicate app ID %q", a.ID)
		}
		ids[a.ID] = true
		want := 64
		if a.ID == "ferret" || a.ID == "x264" {
			want = 16 // §5.3.2: inputs do not fully utilize 64 cores
		}
		if a.DefaultCores != want {
			t.Errorf("%s: DefaultCores = %d, want %d", a.ID, a.DefaultCores, want)
		}
		if a.Input == "" || a.Pattern == "" {
			t.Errorf("%s: missing Input/Pattern metadata", a.ID)
		}
	}
}

func TestByID(t *testing.T) {
	a, ok := apps.ByID("canneal")
	if !ok || a.Name != "canneal" {
		t.Fatalf("ByID failed: %+v %v", a, ok)
	}
	if _, ok := apps.ByID("doom"); ok {
		t.Fatal("bogus app resolved")
	}
}

// TestEveryAppRunsOnMESIAndDS runs the full 13-app matrix at 16 cores
// with heavily scaled-down inputs on both Figure 7 protocols.
func TestEveryAppRunsOnMESIAndDS(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test skipped in -short mode")
	}
	for _, a := range apps.All() {
		for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync} {
			a, prot := a, prot
			t.Run(a.ID+"/"+prot.String(), func(t *testing.T) {
				t.Parallel()
				m := machine.New(machine.Params16(), prot, alloc.New())
				rs, err := apps.Run(a, m, 4)
				if err != nil {
					t.Fatalf("%s on %v: %v", a.ID, prot, err)
				}
				if rs.ExecTime == 0 || rs.TotalTraffic == 0 {
					t.Fatalf("%s on %v: empty stats", a.ID, prot)
				}
			})
		}
	}
}

// TestAppsRunOnDS0 spot-checks DeNovoSync0 compatibility (Figure 7 only
// compares M and DS, but the models must be protocol-agnostic).
func TestAppsRunOnDS0(t *testing.T) {
	for _, id := range []string{"lu", "canneal", "ferret"} {
		a, _ := apps.ByID(id)
		m := machine.New(machine.Params16(), machine.DeNovoSync0, alloc.New())
		if _, err := apps.Run(a, m, 4); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

// TestAppDeterminism: applications are cycle-exact reproducible.
func TestAppDeterminism(t *testing.T) {
	for _, id := range []string{"fft", "fluidanimate", "x264"} {
		a, _ := apps.ByID(id)
		run := func() (uint64, uint64) {
			m := machine.New(machine.Params16(), machine.MESI, alloc.New())
			rs, err := apps.Run(a, m, 4)
			if err != nil {
				t.Fatal(err)
			}
			return uint64(rs.ExecTime), rs.TotalTraffic
		}
		e1, t1 := run()
		e2, t2 := run()
		if e1 != e2 || t1 != t2 {
			t.Fatalf("%s nondeterministic: (%d,%d) vs (%d,%d)", id, e1, t1, e2, t2)
		}
	}
}

// TestAppsAt64Cores: one barrier app and one lock app at full 64-core
// scale (scaled-down inputs) to cover the 8x8 mesh path.
func TestAppsAt64Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core test skipped in -short mode")
	}
	for _, id := range []string{"ocean", "water"} {
		a, _ := apps.ByID(id)
		for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync} {
			m := machine.New(machine.Params64(), prot, alloc.New())
			if _, err := apps.Run(a, m, 4); err != nil {
				t.Fatalf("%s on %v: %v", id, prot, err)
			}
		}
	}
}
