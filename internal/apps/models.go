package apps

import (
	"denovosync/internal/cpu"
	"denovosync/internal/locks"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// newTATAS builds an app lock, honoring the run's signature mode.
func newTATAS(b *build, name string, protect proto.RegionSet) *locks.TATAS {
	l := locks.NewTATAS(b.space, b.space.Region(name), protect, true)
	l.Signatures = b.sigs
	return l
}

// ---- barrier-only applications (§7.2 "Barrier-only") ----

// fft: barrier phases with an all-to-all transpose — after each barrier a
// thread reads one block from every other thread's output.
func fft() App {
	return App{
		ID: "fft", Name: "FFT", DefaultCores: 64, Pattern: "barrier-only", Input: "6 phases, 64-word chunks, all-to-all transpose",
		build: func(b *build) func(int) machine.Workload {
			region := b.space.Region("fft.data")
			data := newChunkedArray(b, region, 64)
			bar := newTreeBarrier(b, proto.NewRegionSet(region))
			phases := b.div(6)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				// Local butterfly pass over the thread's own chunk.
				for i := 0; i < 64; i++ {
					v := t.Load(data.word(t.ID, i))
					t.Compute(2)
					t.Store(data.word(t.ID, i), v+uint64(p))
				}
				// Transpose: one element from every other thread's chunk.
				var acc uint64
				for o := 1; o < b.cores; o++ {
					acc += t.Load(data.word((t.ID+o)%b.cores, p*7+o))
				}
				t.Store(data.word(t.ID, 0), acc)
				t.Fence()
			})
		},
	}
}

// lu: blocked factorization whose block boundaries interleave adjacent
// threads' words within cache lines — data false sharing on MESI, which
// word-granularity DeNovo avoids (§7.2: "LU exhibits data false sharing
// with MESI").
func lu() App {
	return App{
		ID: "lu", Name: "LU", DefaultCores: 64, Pattern: "barrier-only", Input: "6 phases, 48-word blocks + 4-word interleaved borders",
		build: func(b *build) func(int) machine.Workload {
			region := b.space.Region("lu.data")
			blocks := newChunkedArray(b, region, 48)
			border := newInterleavedArray(b, region, 8)
			bar := newTreeBarrier(b, proto.NewRegionSet(region))
			phases := b.div(6)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				// Interior of the thread's block: private lines.
				for i := 0; i < 48; i++ {
					v := t.Load(blocks.word(t.ID, i))
					t.Compute(8)
					t.Store(blocks.word(t.ID, i), v+1)
				}
				// Block boundary: adjacent threads' words interleave within
				// cache lines — MESI false-shares, DeNovo does not. Only
				// the reduction phases touch the boundary.
				for i := 0; i < 4 && p%2 == 0; i++ {
					v := t.Load(border.word(t.ID, i))
					t.Compute(2)
					t.Store(border.word(t.ID, i), v+1)
				}
				t.Fence()
			})
		},
	}
}

// blackscholes: embarrassingly parallel option pricing over private data,
// with a few coordination barriers.
func blackscholes() App {
	return App{
		ID: "blackscholes", Name: "blackscholes", DefaultCores: 64, Pattern: "barrier-only", Input: "4 phases, 64 private options/thread",
		build: func(b *build) func(int) machine.Workload {
			region := b.space.Region("bs.data")
			priv := newChunkedArray(b, region, 64)
			bar := newTreeBarrier(b, 0) // private data: nothing to invalidate
			phases := b.div(4)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				for i := 0; i < 64; i++ {
					v := t.Load(priv.word(t.ID, i))
					t.Compute(30) // Black-Scholes formula evaluation
					t.Store(priv.word(t.ID, i), v*3+1)
				}
				t.Fence()
			})
		},
	}
}

// swaptions: Monte-Carlo simulation — compute-heavy, private data.
func swaptions() App {
	return App{
		ID: "swaptions", Name: "swaptions", DefaultCores: 64, Pattern: "barrier-only", Input: "3 phases, 8 Monte-Carlo trials/phase",
		build: func(b *build) func(int) machine.Workload {
			region := b.space.Region("sw.data")
			priv := newChunkedArray(b, region, 32)
			bar := newTreeBarrier(b, 0)
			phases := b.div(3)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				for trial := 0; trial < 8; trial++ {
					t.Compute(400) // path simulation
					for i := 0; i < 8; i++ {
						v := t.Load(priv.word(t.ID, trial*8+i))
						t.Store(priv.word(t.ID, trial*8+i), v+uint64(trial))
					}
				}
				t.Fence()
			})
		},
	}
}

// radix: sort phases whose histogram scatter writes hit words spread over
// shared lines (line-level write sharing for MESI, none for DeNovo).
func radix() App {
	return App{
		ID: "radix", Name: "radix", DefaultCores: 64, Pattern: "barrier-only", Input: "4 phases, 64 keys/thread, 1024-bucket scatter",
		build: func(b *build) func(int) machine.Workload {
			keysR := b.space.Region("radix.keys")
			histR := b.space.Region("radix.hist")
			keys := newChunkedArray(b, keysR, 64)
			hist := b.space.AllocAligned(1024, histR)
			bar := newTreeBarrier(b, proto.NewRegionSet(keysR, histR))
			phases := b.div(4)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				// Local histogram pass over the thread's own keys.
				for i := 0; i < 64; i++ {
					k := t.Load(keys.word(t.ID, i))
					t.Compute(4)
					t.Store(keys.word(t.ID, i), k+1)
				}
				// Global scatter: words spread over shared lines.
				for i := 0; i < 8; i++ {
					bucket := (t.ID*17 + i*131 + p) % 1024
					v := t.Load(wordAddr(hist, bucket))
					t.Store(wordAddr(hist, bucket), v+1)
					t.Compute(4)
				}
				t.Fence()
			})
		},
	}
}

// ---- barriers + locks (§7.2 "Barriers and locks") ----

// bodytrack: barrier phases dominated by per-particle likelihood
// computation, with occasional lock-protected updates of the shared pose
// model.
func bodytrack() App {
	return App{
		ID: "bodytrack", Name: "bodytrack", DefaultCores: 64, Pattern: "barriers+locks", Input: "4 phases, 3 particles/thread, 128-word shared pose",
		build: func(b *build) func(int) machine.Workload {
			poseR := b.space.Region("bt.pose")
			privR := b.space.Region("bt.priv")
			pose := b.space.AllocAligned(128, poseR)
			priv := newChunkedArray(b, privR, 16)
			const nLocks = 16
			var ls []*locks.TATAS
			for i := 0; i < nLocks; i++ {
				ls = append(ls, newTATAS(b, "bt.lock", proto.NewRegionSet(poseR)))
			}
			bar := newTreeBarrier(b, proto.NewRegionSet(poseR))
			phases := b.div(4)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				// Particle-filter evaluation on private data (dominant).
				for particle := 0; particle < 3; particle++ {
					t.Compute(2800)
					for i := 0; i < 8; i++ {
						v := t.Load(priv.word(t.ID, particle*4+i))
						t.Store(priv.word(t.ID, particle*4+i), v+1)
					}
					// Update the shared pose estimate under a lock.
					cell := (t.ID*7 + particle*31 + p) % 128
					lk := ls[cell%nLocks]
					tk := lk.Acquire(t)
					v := t.Load(wordAddr(pose, cell))
					t.Store(wordAddr(pose, cell), v+1)
					t.Fence()
					lk.Release(t, tk)
				}
			})
		},
	}
}

// barnes: irregular reads of a shared tree plus lock-protected force
// updates on a separate accumulation region.
func barnes() App {
	return App{
		ID: "barnes", Name: "barnes", DefaultCores: 64, Pattern: "barriers+locks", Input: "3 phases, 1024-node tree, 48-step walks, 16 locks",
		build: func(b *build) func(int) machine.Workload {
			treeR := b.space.Region("barnes.tree")
			forceR := b.space.Region("barnes.force")
			tree := b.space.AllocAligned(1024, treeR)
			force := b.space.AllocAligned(256, forceR)
			const nLocks = 16
			var ls []*locks.TATAS
			for i := 0; i < nLocks; i++ {
				ls = append(ls, newTATAS(b, "barnes.lock", proto.NewRegionSet(forceR)))
			}
			bar := newTreeBarrier(b, proto.NewRegionSet(treeR, forceR))
			phases := b.div(3)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				// Tree walk: data-dependent traversal of the shared octree,
				// compute-heavy force evaluation per visited node.
				pos := (t.ID*37 + p*11) % 1024
				var acc uint64
				for step := 0; step < 48; step++ {
					acc += t.Load(wordAddr(tree, pos))
					t.Compute(24)
					pos = (pos*5 + t.ID + step) % 1024
				}
				// Occasional force accumulation under per-partition locks.
				for u := 0; u < 3; u++ {
					cell := (t.ID*13 + u*29 + p) % 256
					lk := ls[cell%nLocks]
					tk := lk.Acquire(t)
					v := t.Load(wordAddr(force, cell))
					t.Store(wordAddr(force, cell), v+acc)
					t.Fence()
					lk.Release(t, tk)
				}
			})
		},
	}
}

// water: private molecule computation with lock-partitioned global force
// accumulation.
func water() App {
	return App{
		ID: "water", Name: "water", DefaultCores: 64, Pattern: "barriers+locks", Input: "3 phases, 32 molecules/thread, 8 accumulation locks",
		build: func(b *build) func(int) machine.Workload {
			molR := b.space.Region("water.mol")
			accR := b.space.Region("water.acc")
			mol := newChunkedArray(b, molR, 32)
			acc := b.space.AllocAligned(128, accR)
			const nLocks = 8
			var ls []*locks.TATAS
			for i := 0; i < nLocks; i++ {
				ls = append(ls, newTATAS(b, "water.lock", proto.NewRegionSet(accR)))
			}
			bar := newTreeBarrier(b, proto.NewRegionSet(accR))
			phases := b.div(3)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				for i := 0; i < 32; i++ {
					v := t.Load(mol.word(t.ID, i))
					t.Compute(8)
					t.Store(mol.word(t.ID, i), v+1)
				}
				for u := 0; u < 4; u++ {
					cell := (t.ID + u*nLocks) % 128
					lk := ls[cell%nLocks]
					tk := lk.Acquire(t)
					v := t.Load(wordAddr(acc, cell))
					t.Store(wordAddr(acc, cell), v+uint64(t.ID))
					t.Fence()
					lk.Release(t, tk)
				}
			})
		},
	}
}

// ocean: many light barrier phases with nearest-neighbor boundary reads.
func ocean() App {
	return App{
		ID: "ocean", Name: "ocean", DefaultCores: 64, Pattern: "barriers+locks", Input: "8 phases, 64-word rows, neighbor + column boundaries",
		build: func(b *build) func(int) machine.Workload {
			region := b.space.Region("ocean.grid")
			grid := newChunkedArray(b, region, 64)
			// Column boundaries of the 2D decomposition: adjacent threads'
			// words interleave within lines (false sharing for MESI).
			cols := newInterleavedArray(b, region, 4)
			bar := newTreeBarrier(b, proto.NewRegionSet(region))
			phases := b.div(8)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				up := (t.ID + b.cores - 1) % b.cores
				down := (t.ID + 1) % b.cores
				// Read neighbor boundary rows, relax own rows.
				for i := 0; i < 16; i++ {
					nb := t.Load(grid.word(up, 48+i)) + t.Load(grid.word(down, i))
					v := t.Load(grid.word(t.ID, i))
					t.Compute(3)
					t.Store(grid.word(t.ID, i), (v+nb)/2)
				}
				for i := 16; i < 48; i++ {
					v := t.Load(grid.word(t.ID, i))
					t.Compute(4)
					t.Store(grid.word(t.ID, i), v+1)
				}
				// Column-boundary update (alternating phases).
				for i := 0; i < 4 && p%2 == 0; i++ {
					v := t.Load(cols.word(t.ID, i))
					t.Store(cols.word(t.ID, i), v+1)
				}
				t.Fence()
			})
		},
	}
}

// fluidanimate: fine-grain cell locks over one big cell region — the
// conservative static self-invalidation at every acquire is exactly the
// case §7.2 reports as DeNovoSync's 7% loss.
func fluidanimate() App {
	return App{
		ID: "fluidanimate", Name: "fluidanimate", DefaultCores: 64, Pattern: "barriers+locks", Input: "3 phases, 16-cell neighborhoods, 256 cell locks",
		build: func(b *build) func(int) machine.Workload {
			cellsR := b.space.Region("fluid.cells")
			// Each thread owns a 16-word cell neighborhood; boundary cells
			// are shared with the next thread.
			cells := b.space.AllocAligned(b.cores*16, cellsR)
			const nLocks = 256
			var ls []*locks.TATAS
			for i := 0; i < nLocks; i++ {
				// Static information cannot tell which cells a given lock
				// guards, so every acquire conservatively self-invalidates
				// the whole cell region (§7.2: this is what costs
				// DeNovoSync its 7% on fluidanimate).
				ls = append(ls, newTATAS(b, "fluid.lock", proto.NewRegionSet(cellsR)))
			}
			nCells := b.cores * 16
			bar := newTreeBarrier(b, proto.NewRegionSet(cellsR))
			phases := b.div(3)
			return barrierPhases(b, bar, phases, func(t *cpu.Thread, p int) {
				for it := 0; it < 12; it++ {
					// Mostly own neighborhood, occasionally the boundary
					// cell shared with the neighbor thread.
					cell := t.ID*16 + (it*5+p)%16
					if it%6 == 5 {
						cell = ((t.ID+1)%b.cores)*16 + (it*3)%4
					}
					lk := ls[cell%nLocks]
					tk := lk.Acquire(t)
					// Read the neighborhood (re-missed on DeNovo after the
					// conservative self-invalidation; cached hits on MESI),
					// update the cell.
					var acc uint64
					for w := 0; w < 6; w++ {
						acc += t.Load(wordAddr(cells, (cell+w)%nCells))
					}
					t.Store(wordAddr(cells, cell), acc)
					t.Fence()
					lk.Release(t, tk)
					t.Compute(150)
				}
			})
		},
	}
}

// ---- non-blocking synchronization (§7.2 "Non-blocking") ----

// canneal: an aggressive lock-free swap loop over shared location words —
// synchronization forms a large fraction of all memory accesses.
func canneal() App {
	return App{
		ID: "canneal", Name: "canneal", DefaultCores: 64, Pattern: "lock-free CAS", Input: "32 moves/thread, 2048 elements (4/line), CAS swaps",
		build: func(b *build) func(int) machine.Workload {
			locR := b.space.Region("canneal.loc")
			netR := b.space.Region("canneal.net")
			// Element locations are packed four per cache line, as in the
			// real netlist layout: MESI false-shares them; DeNovo's word
			// coherence does not.
			const nElems = 2048
			elems := make([]proto.Addr, nElems)
			for i := range elems {
				elems[i] = b.space.AllocAligned(4, locR)
				b.store.Write(elems[i], uint64(i+1))
			}
			netlist := b.space.AllocAligned(512, netR)
			bar := newTreeBarrier(b, 0)
			iters := b.div(32)
			return func(i int) machine.Workload {
				return func(t *cpu.Thread) {
					for it := 0; it < iters; it++ {
						a := elems[t.RNG.Intn(nElems)]
						bb := elems[t.RNG.Intn(nElems)]
						if a == bb {
							continue
						}
						va := t.SyncLoad(a)
						vb := t.SyncLoad(bb)
						// Cost evaluation reads the netlist.
						var cost uint64
						for r := 0; r < 8; r++ {
							cost += t.Load(wordAddr(netlist, int(va+vb)+r*31))
						}
						t.Compute(120)
						if cost%3 != 0 { // accept the move
							if t.CAS(a, va, vb) {
								if !t.CAS(bb, vb, va) {
									// Second leg failed: undo the first.
									t.CAS(a, vb, va)
								}
							}
						}
					}
					bar.Wait(t)
				}
			}
		},
	}
}

// ---- pipeline parallelism (§7.2 "Pipeline parallelism") ----

// pipeQueue is a lock-protected bounded ring — the pthread-style pipeline
// queue used by ferret.
type pipeQueue struct {
	lock       *locks.TATAS
	head, tail proto.Addr
	buf        proto.Addr
	capacity   int
}

func newPipeQueue(b *build, name string, capacity int) *pipeQueue {
	region := b.space.Region("pipe." + name)
	return &pipeQueue{
		lock:     locks.NewTATAS(b.space, b.space.Region("pipe.lock."+name), proto.NewRegionSet(region), true),
		head:     b.space.AllocAligned(1, region),
		tail:     b.space.AllocAligned(1, region),
		buf:      b.space.AllocAligned(capacity, region),
		capacity: capacity,
	}
}

func (q *pipeQueue) tryPut(t *cpu.Thread, v uint64) bool {
	tk := q.lock.Acquire(t)
	defer q.lock.Release(t, tk)
	h, tl := t.Load(q.head), t.Load(q.tail)
	if tl-h >= uint64(q.capacity) {
		return false
	}
	t.Store(q.buf+proto.Addr(int(tl)%q.capacity*proto.WordBytes), v)
	t.Store(q.tail, tl+1)
	t.Fence()
	return true
}

func (q *pipeQueue) tryGet(t *cpu.Thread) (uint64, bool) {
	tk := q.lock.Acquire(t)
	defer q.lock.Release(t, tk)
	h, tl := t.Load(q.head), t.Load(q.tail)
	if h == tl {
		return 0, false
	}
	v := t.Load(q.buf + proto.Addr(int(h)%q.capacity*proto.WordBytes))
	t.Store(q.head, h+1)
	t.Fence()
	return v, true
}

// ferret: a four-stage similarity-search pipeline over lock-protected
// queues; threads are striped across stages.
func ferret() App {
	return App{
		ID: "ferret", Name: "ferret", DefaultCores: 16, Pattern: "pipeline", Input: "4 stages x 4 threads, 12 items/producer, 32-deep queues",
		build: func(b *build) func(int) machine.Workload {
			const stages = 4
			queues := []*pipeQueue{
				newPipeQueue(b, "q01", 32),
				newPipeQueue(b, "q12", 32),
				newPipeQueue(b, "q23", 32),
			}
			ctrR := b.space.Region("ferret.ctr")
			// processed[k] counts items completed by stage k+1; every
			// thread of a stage exits once its stage has handled the full
			// item count — no early-exit/stranded-item races.
			processed := make([]proto.Addr, stages-1)
			for i := range processed {
				processed[i] = b.space.AllocPadded(ctrR)
			}
			producers := b.cores / stages
			itemsPerProducer := b.div(12)
			total := uint64(producers * itemsPerProducer)
			bar := newTreeBarrier(b, 0)
			stageCost := []sim.Cycle{900, 2200, 1800, 700}
			return func(i int) machine.Workload {
				stage := i % stages
				return func(t *cpu.Thread) {
					switch stage {
					case 0:
						for it := 0; it < itemsPerProducer; it++ {
							t.Compute(stageCost[0])
							for !queues[0].tryPut(t, uint64(t.ID*1000+it)) {
								t.SWBackoff(200)
							}
						}
					default:
						in := queues[stage-1]
						ctr := processed[stage-1]
						for t.SyncLoad(ctr) < total {
							v, ok := in.tryGet(t)
							if !ok {
								t.SWBackoff(200)
								continue
							}
							t.Compute(stageCost[stage])
							if stage < stages-1 {
								for !queues[stage].tryPut(t, v+1) {
									t.SWBackoff(200)
								}
							}
							t.FetchAdd(ctr, 1)
						}
					}
					bar.Wait(t)
				}
			}
		},
	}
}

// x264: wavefront pipeline parallelism — each thread encodes frames that
// depend on its predecessor's progress counter.
func x264() App {
	return App{
		ID: "x264", Name: "x264", DefaultCores: 16, Pattern: "pipeline", Input: "8 frames/thread, wavefront progress dependencies",
		build: func(b *build) func(int) machine.Workload {
			progR := b.space.Region("x264.progress")
			frameR := b.space.Region("x264.frames")
			progress := make([]proto.Addr, b.cores)
			for i := range progress {
				progress[i] = b.space.AllocPadded(progR)
			}
			frames := newChunkedArray(b, frameR, 64)
			bar := newTreeBarrier(b, proto.NewRegionSet(frameR))
			nFrames := b.div(8)
			return func(i int) machine.Workload {
				return func(t *cpu.Thread) {
					for f := 0; f < nFrames; f++ {
						if t.ID > 0 {
							// Wait for the reference rows of the previous
							// thread's frame (motion-vector dependency).
							ff := uint64(f)
							t.SpinSyncLoadUntil(progress[t.ID-1], func(v uint64) bool { return v > ff })
							t.SelfInvalidate(proto.NewRegionSet(frameR))
							// Read reference data from the predecessor.
							for r := 0; r < 8; r++ {
								_ = t.Load(frames.word(t.ID-1, f*8+r))
							}
						}
						// Encode own rows.
						for r := 0; r < 32; r++ {
							v := t.Load(frames.word(t.ID, f*4+r))
							t.Compute(12)
							t.Store(frames.word(t.ID, f*4+r), v+uint64(f))
						}
						t.SyncStore(progress[t.ID], uint64(f+1))
					}
					bar.Wait(t)
				}
			}
		},
	}
}
