// Package apps models the 13 SPLASH-2 / PARSEC benchmarks of §5.3.2 /
// Figure 7 as parameterized synthetic workloads.
//
// The real suites are C/pthreads programs that cannot execute inside a Go
// protocol simulator, so each model reproduces the benchmark's
// *synchronization pattern* and data-sharing character as §7.2 describes
// them (documented per model below). The effects the paper attributes to
// these applications — barrier-dominated data sharing, false sharing (LU),
// lock-protected accumulation, conservative static self-invalidation
// penalties (fluidanimate, heap), aggressive lock-free CAS loops (canneal),
// and pipeline parallelism (ferret, x264) — are all synchronization-
// pattern and sharing-granularity effects, which these models exercise
// directly. This substitution is recorded in DESIGN.md §4.
package apps

import (
	"denovosync/internal/alloc"
	"denovosync/internal/barrier"
	"denovosync/internal/cpu"
	"denovosync/internal/machine"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
	"denovosync/internal/stats"
)

// App is one Figure 7 application model.
type App struct {
	ID   string
	Name string
	// DefaultCores is 64, except ferret and x264 (16; their inputs do not
	// fill 64 cores, §5.3.2).
	DefaultCores int
	// Pattern summarizes the synchronization pattern (§7.2 classes).
	Pattern string
	// Input describes the synthetic model's sizing — the analog of the
	// paper's Table 2 benchmark-input column.
	Input string

	build func(b *build) func(i int) machine.Workload
}

// build carries the per-run construction context.
type build struct {
	cores int
	scale int // 1 = paper-scale model; tests use larger divisors
	sigs  bool
	space *alloc.Space
	store *mem.Store
}

// div scales an iteration count down by the scale divisor (min 1).
func (b *build) div(n int) int {
	n /= b.scale
	if n < 1 {
		return 1
	}
	return n
}

// Run executes the app on m. scale > 1 shrinks the workload (tests).
func Run(a App, m *machine.Machine, scale int) (*stats.RunStats, error) {
	return RunSig(a, m, scale, false)
}

// RunSig runs the app with its locks optionally switched to DeNovoND-style
// write signatures (the machine must have Params.Signatures enabled).
func RunSig(a App, m *machine.Machine, scale int, signatures bool) (*stats.RunStats, error) {
	if scale < 1 {
		scale = 1
	}
	b := &build{cores: m.Params.Cores, scale: scale, sigs: signatures, space: m.Space, store: m.Store}
	body := a.build(b)
	return m.RunThreads(a.Name, body)
}

// All returns the 13 applications in Figure 7 order.
func All() []App {
	return []App{
		fft(), lu(), blackscholes(), swaptions(), radix(),
		bodytrack(), barnes(), water(), ocean(), fluidanimate(),
		canneal(), ferret(), x264(),
	}
}

// ByID finds an app by slug.
func ByID(id string) (App, bool) {
	for _, a := range All() {
		if a.ID == id {
			return a, true
		}
	}
	return App{}, false
}

// ---- shared building blocks ----

// newTreeBarrier allocates the tree barrier used by the applications
// (§7.2: barrier applications use tree barriers), self-invalidating the
// given regions on departure.
func newTreeBarrier(b *build, protect proto.RegionSet) *barrier.Tree {
	return barrier.NewTree(b.space, b.space.Region("app.barrier"), protect, b.cores, 2, 2)
}

func wordAddr(base proto.Addr, i int) proto.Addr {
	return base + proto.Addr(i*proto.WordBytes)
}

// chunkedArray is a shared array where thread i owns a contiguous chunk:
// line-disjoint ownership (no false sharing).
type chunkedArray struct {
	base          proto.Addr
	wordsPerChunk int
}

func newChunkedArray(b *build, region proto.RegionID, wordsPerChunk int) *chunkedArray {
	// Round the chunk to whole lines so chunks never share a line.
	wpl := proto.WordsPerLine
	wordsPerChunk = (wordsPerChunk + wpl - 1) / wpl * wpl
	return &chunkedArray{
		base:          b.space.AllocAligned(b.cores*wordsPerChunk, region),
		wordsPerChunk: wordsPerChunk,
	}
}

func (c *chunkedArray) word(chunk, i int) proto.Addr {
	return wordAddr(c.base, chunk*c.wordsPerChunk+i%c.wordsPerChunk)
}

// interleavedArray is a shared array where thread i owns words i, i+N,
// i+2N, … — adjacent threads' words share cache lines, producing false
// sharing on MESI but not on word-granularity DeNovo (the LU effect,
// §7.2).
type interleavedArray struct {
	base  proto.Addr
	cores int
	words int
}

func newInterleavedArray(b *build, region proto.RegionID, wordsPerThread int) *interleavedArray {
	return &interleavedArray{
		base:  b.space.AllocAligned(b.cores*wordsPerThread, region),
		cores: b.cores,
		words: wordsPerThread,
	}
}

func (a *interleavedArray) word(thread, i int) proto.Addr {
	return wordAddr(a.base, (i%a.words)*a.cores+thread)
}

// barrierPhases drives a classic barrier-synchronized data-parallel app:
// phases of per-thread work separated by tree barriers, closed by a final
// barrier. work(t, phase) runs in the kernel accounting phase.
func barrierPhases(b *build, bar *barrier.Tree, phases int, work func(t *cpu.Thread, phase int)) func(i int) machine.Workload {
	return func(i int) machine.Workload {
		return func(t *cpu.Thread) {
			for p := 0; p < phases; p++ {
				work(t, p)
				bar.Wait(t)
			}
		}
	}
}
