// Package barrier implements the barrier algorithms of §5.3.1, derived
// from the pseudo-code in Scott's Shared Memory Synchronization [33]:
// a centralized sense-reversing barrier and static tree barriers with
// configurable arrival fan-in and wakeup fan-out (binary = 2/2; the
// paper's "n-ary" = fan-in 4, fan-out 2).
package barrier

import (
	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
)

// Barrier is the common barrier interface.
type Barrier interface {
	// Wait blocks thread t until all n threads have arrived. On departure
	// it self-invalidates the configured region set (the data-consistency
	// hook for DeNovo; a no-op on MESI).
	Wait(t *cpu.Thread)
}

// Central is a centralized sense-reversing barrier: one arrival counter
// and one global sense word, both heavily read-shared — the unscalable
// pattern §6.3 warns about.
type Central struct {
	n       int
	count   proto.Addr
	sense   proto.Addr
	local   []uint64 // per-thread local sense
	protect proto.RegionSet
}

// NewCentral allocates a centralized barrier for n threads.
func NewCentral(s *alloc.Space, region proto.RegionID, protect proto.RegionSet, n int) *Central {
	return &Central{
		n:       n,
		count:   s.AllocPadded(region),
		sense:   s.AllocPadded(region),
		local:   make([]uint64, 256),
		protect: protect,
	}
}

// Wait implements Barrier.
func (b *Central) Wait(t *cpu.Thread) {
	mySense := b.local[t.ID] + 1
	b.local[t.ID] = mySense
	// Arrival: fetch-and-increment the counter (the serialized
	// linearization point of §6.3).
	arrived := t.FetchAdd(b.count, 1)
	if int(arrived) == b.n-1 {
		// Last arriver: reset the counter and release everyone by
		// reversing the sense.
		t.SyncStore(b.count, 0)
		t.SyncStore(b.sense, mySense)
	} else {
		t.SpinSyncLoadUntil(b.sense, func(v uint64) bool { return v >= mySense })
	}
	t.SelfInvalidate(b.protect)
}

// Tree is a static tree barrier: thread i's arrival parent is
// (i-1)/fanIn and its wakeup children are i*fanOut+1 … i*fanOut+fanOut.
// Every flag has exactly one reader and one writer (§6.3), so it behaves
// like an array lock slot. Rounds are encoded as increasing flag values,
// avoiding reinitialization.
type Tree struct {
	n              int
	fanIn, fanOut  int
	arrive, wakeup []proto.Addr
	round          []uint64
	protect        proto.RegionSet
}

// NewTree allocates a tree barrier for n threads with the given arrival
// fan-in and wakeup fan-out.
func NewTree(s *alloc.Space, region proto.RegionID, protect proto.RegionSet, n, fanIn, fanOut int) *Tree {
	if fanIn < 2 || fanOut < 2 {
		panic("barrier: fan degrees must be at least 2")
	}
	b := &Tree{n: n, fanIn: fanIn, fanOut: fanOut, round: make([]uint64, 256), protect: protect}
	for i := 0; i < n; i++ {
		b.arrive = append(b.arrive, s.AllocPadded(region))
		b.wakeup = append(b.wakeup, s.AllocPadded(region))
	}
	return b
}

// Wait implements Barrier.
func (b *Tree) Wait(t *cpu.Thread) {
	i := t.ID
	round := b.round[i] + 1
	b.round[i] = round

	// Arrival phase: gather children of the fan-in tree, then notify the
	// parent. Each arrive flag has one writer (the child) and one reader
	// (the parent).
	for c := 1; c <= b.fanIn; c++ {
		child := i*b.fanIn + c
		if child >= b.n {
			break
		}
		t.SpinSyncLoadUntil(b.arrive[child], func(v uint64) bool { return v >= round })
	}
	if i != 0 {
		t.SyncStore(b.arrive[i], round)
		// Departure phase: wait for the parent's wakeup.
		t.SpinSyncLoadUntil(b.wakeup[i], func(v uint64) bool { return v >= round })
	}
	// Propagate the wakeup down the fan-out tree.
	for c := 1; c <= b.fanOut; c++ {
		child := i*b.fanOut + c
		if child >= b.n {
			break
		}
		t.SyncStore(b.wakeup[child], round)
	}
	t.SelfInvalidate(b.protect)
}

// Preset is a no-op for Tree (flags start at zero, rounds at one); it
// exists so kernels can treat all barrier types uniformly.
func (b *Tree) Preset(*mem.Store) {}

// Preset is a no-op for Central (counter starts at zero).
func (b *Central) Preset(*mem.Store) {}

// Dissemination is the dissemination barrier (Hensgen/Finkel/Manber, as
// presented in [33]): ceil(log2 n) rounds in which thread i signals
// thread (i + 2^r) mod n and waits on its own per-round flag. No thread
// spins on a flag any other waiter reads — fully distributed, no root
// bottleneck, at the cost of n·log n flags.
type Dissemination struct {
	n      int
	rounds int
	// flags[i][r] is signaled by thread (i - 2^r + n) mod n; values are
	// barrier-episode numbers so no reinitialization is needed.
	flags   [][]proto.Addr
	episode []uint64
	protect proto.RegionSet
}

// NewDissemination allocates a dissemination barrier for n threads.
func NewDissemination(s *alloc.Space, region proto.RegionID, protect proto.RegionSet, n int) *Dissemination {
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &Dissemination{n: n, rounds: rounds, episode: make([]uint64, 256), protect: protect}
	for i := 0; i < n; i++ {
		var row []proto.Addr
		for r := 0; r < rounds; r++ {
			row = append(row, s.AllocPadded(region))
		}
		b.flags = append(b.flags, row)
	}
	return b
}

// Wait implements Barrier.
func (b *Dissemination) Wait(t *cpu.Thread) {
	i := t.ID
	ep := b.episode[i] + 1
	b.episode[i] = ep
	for r := 0; r < b.rounds; r++ {
		peer := (i + 1<<r) % b.n
		t.SyncStore(b.flags[peer][r], ep)
		t.SpinSyncLoadUntil(b.flags[i][r], func(v uint64) bool { return v >= ep })
	}
	t.SelfInvalidate(b.protect)
}
