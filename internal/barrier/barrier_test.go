package barrier_test

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/barrier"
	"denovosync/internal/cpu"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

var protocols = []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync}

// checkBarrier runs several rounds with unbalanced work and asserts that
// no thread enters round r+1 before every thread finished round r.
func checkBarrier(t *testing.T, name string, mk func(*alloc.Space, int) barrier.Barrier) {
	const rounds = 5
	for _, prot := range protocols {
		space := alloc.New()
		b := mk(space, 16)
		m := machine.New(machine.Params16(), prot, space)
		arrived := make([]int, rounds+1)
		departed := make([]int, rounds+1)
		ok := true
		_, err := m.Run(name, func(th *cpu.Thread) {
			for r := 0; r < rounds; r++ {
				th.Compute(sim.Cycle(th.RNG.Range(100, 3000)))
				arrived[r]++
				b.Wait(th)
				if arrived[r] != 16 {
					ok = false // departed before everyone arrived
				}
				departed[r]++
			}
		})
		if err != nil {
			t.Fatalf("%v/%s: %v", prot, name, err)
		}
		if !ok {
			t.Errorf("%v/%s: a thread departed before all arrived", prot, name)
		}
		for r := 0; r < rounds; r++ {
			if departed[r] != 16 {
				t.Errorf("%v/%s: round %d departures = %d", prot, name, r, departed[r])
			}
		}
	}
}

func TestCentralBarrier(t *testing.T) {
	checkBarrier(t, "central", func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewCentral(s, s.Region("bar"), 0, n)
	})
}

func TestBinaryTreeBarrier(t *testing.T) {
	checkBarrier(t, "tree", func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewTree(s, s.Region("bar"), 0, n, 2, 2)
	})
}

func TestNaryTreeBarrier(t *testing.T) {
	checkBarrier(t, "nary", func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewTree(s, s.Region("bar"), 0, n, 4, 2)
	})
}

// TestBarrierSelfInvalidation: the departure self-invalidation makes data
// written before the barrier visible to DeNovo readers after it.
func TestBarrierSelfInvalidation(t *testing.T) {
	space := alloc.New()
	region := space.Region("phase-data")
	data := space.AllocAligned(16, region)
	b := barrier.NewTree(space, space.Region("bar"), proto.NewRegionSet(region), 16, 2, 2)
	m := machine.New(machine.Params16(), machine.DeNovoSync0, space)
	bad := false
	_, err := m.Run("barinv", func(th *cpu.Thread) {
		slot := data + proto.Addr(th.ID*proto.WordBytes)
		// Phase 1: everyone reads everything (caching stale zeros), then
		// writes its own slot.
		for i := 0; i < 16; i++ {
			_ = th.Load(data + proto.Addr(i*proto.WordBytes))
		}
		th.Store(slot, uint64(th.ID+1))
		b.Wait(th)
		// Phase 2: every slot must show its writer's value.
		for i := 0; i < 16; i++ {
			if v := th.Load(data + proto.Addr(i*proto.WordBytes)); v != uint64(i+1) {
				bad = true
			}
		}
		b.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("stale data visible after barrier with self-invalidation")
	}
}

// TestTreeBarrierIsTrafficLean: per §6.3/§7.1.4, tree barriers have
// single-reader single-writer flags, so DeNovo traffic is far below a
// centralized barrier's with many waiters.
func TestTreeBarrierIsTrafficLean(t *testing.T) {
	run := func(mk func(*alloc.Space) barrier.Barrier) uint64 {
		space := alloc.New()
		b := mk(space)
		m := machine.New(machine.Params16(), machine.DeNovoSync0, space)
		_, err := m.Run("traffic", func(th *cpu.Thread) {
			for r := 0; r < 3; r++ {
				// Strong imbalance maximizes waiting.
				th.Compute(sim.Cycle(th.ID) * 500)
				b.Wait(th)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.Traffic()[proto.ClassSynch]
	}
	tree := run(func(s *alloc.Space) barrier.Barrier {
		return barrier.NewTree(s, s.Region("bar"), 0, 16, 2, 2)
	})
	central := run(func(s *alloc.Space) barrier.Barrier {
		return barrier.NewCentral(s, s.Region("bar"), 0, 16)
	})
	if tree >= central {
		t.Fatalf("tree barrier SYNCH traffic (%d) not below centralized (%d)", tree, central)
	}
}

func TestDisseminationBarrier(t *testing.T) {
	checkBarrier(t, "dissemination", func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewDissemination(s, s.Region("bar"), 0, n)
	})
}

// TestDisseminationNoHotFlag: every flag has exactly one writer and one
// reader, so DeNovo sync traffic stays point-to-point (no registration
// ping-pong regardless of imbalance).
func TestDisseminationNoHotFlag(t *testing.T) {
	space := alloc.New()
	b := barrier.NewDissemination(space, space.Region("bar"), 0, 16)
	m := machine.New(machine.Params16(), machine.DeNovoSync0, space)
	rs, err := m.Run("diss-traffic", func(th *cpu.Thread) {
		for r := 0; r < 4; r++ {
			th.Compute(sim.Cycle(th.ID) * 400) // strong imbalance
			b.Wait(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 threads x 4 rounds x log2(16)=4 signal/wait pairs: traffic should
	// be linear in that count, not quadratic ping-pong.
	msgs := m.Net.Messages()[proto.ClassSynch]
	if msgs > 16*4*4*12 {
		t.Fatalf("dissemination sync messages suspiciously high: %d", msgs)
	}
	if rs.ExecTime == 0 {
		t.Fatal("empty run")
	}
}
