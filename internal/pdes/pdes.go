// Package pdes runs a partitioned machine in parallel under a
// conservative time-window scheduler.
//
// The wired machine is split into logical processes (LPs): contiguous
// groups of tiles, each with its own sim.Engine cloned from the serial
// engine's arena/heap/ring design. The four memory controllers share a
// router with their corner tiles, so each is merged into its corner
// tile's LP — every zero-hop transfer is LP-local by construction, and
// every cross-LP message crosses at least one mesh link.
//
// That one-hop floor is the scheduler's lookahead L: during a window
// [tmin, tmin+L-1] no LP can make another LP dispatch an event at or
// before the horizon, because any message it sends arrives at least
// Latency(1 hop) = L cycles after its send cycle (jitter only adds).
// All LPs therefore run a window concurrently without coordination;
// cross-LP arrivals land in per-edge mailboxes that the coordinator
// drains at the barrier between windows.
//
// Determinism is not windowed — it is exact: every event carries the
// mode-invariant ordering key (at, schedAt, band|payload) described in
// package sim, so each LP's dispatch order is a subsequence of the
// serial order, and the differential battery in this package checks the
// resulting fingerprints and figure CSVs bit-for-bit against serial runs.
package pdes

import (
	"fmt"
	"sync"

	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Partition maps every node of a mesh to a logical process: tiles in
// contiguous row-major groups of near-equal size, memory controllers
// merged with their corner tiles.
type Partition struct {
	LPs   int
	Tiles int
	lpOf  []int // node -> LP, tiles first then the NumMemCtrl controllers
}

// NewPartition splits mesh into lps logical processes.
func NewPartition(mesh noc.Mesh, lps int) (Partition, error) {
	tiles := mesh.Tiles()
	if lps < 1 || lps > tiles {
		return Partition{}, fmt.Errorf("pdes: LPs must be in [1, %d tiles], got %d", tiles, lps)
	}
	p := Partition{LPs: lps, Tiles: tiles, lpOf: make([]int, tiles+noc.NumMemCtrl)}
	for t := 0; t < tiles; t++ {
		p.lpOf[t] = t * lps / tiles
	}
	for k := 0; k < noc.NumMemCtrl; k++ {
		// A controller shares its router with the corner tile at the same
		// coordinate; zero-hop transfers between them must stay LP-local.
		c := mesh.CoordOf(mesh.MemNode(k))
		p.lpOf[tiles+k] = p.lpOf[c.Y*mesh.W+c.X]
	}
	return p, nil
}

// LPOf returns the logical process owning node.
func (p Partition) LPOf(node proto.NodeID) int { return p.lpOf[node] }

// arrival is one cross-LP message waiting in a mailbox.
type arrival struct {
	src         proto.NodeID
	at, schedAt sim.Cycle
	ctr         uint64
	fn          func()
}

// mailbox is one directed LP edge's message buffer. Exactly one LP (the
// edge's source) appends, and the coordinator drains between windows when
// no LP is running; the mutex provides the memory-visibility handoff.
type mailbox struct {
	mu   sync.Mutex
	msgs []arrival
}

// Exchange routes cross-router deliveries for a partitioned machine: it
// implements noc.Exchange, pushing same-LP arrivals straight onto the
// destination engine (the caller is executing on it) and parking cross-LP
// arrivals in the (srcLP, dstLP) mailbox until the next window barrier.
type Exchange struct {
	part    Partition
	engines []*sim.Engine
	boxes   [][]mailbox // [srcLP][dstLP]
}

// NewExchange builds the message router for part over one engine per LP.
func NewExchange(part Partition, engines []*sim.Engine) *Exchange {
	if len(engines) != part.LPs {
		panic("pdes: engine count does not match partition")
	}
	x := &Exchange{part: part, engines: engines, boxes: make([][]mailbox, part.LPs)}
	for i := range x.boxes {
		x.boxes[i] = make([]mailbox, part.LPs)
	}
	return x
}

// Deliver implements noc.Exchange. It runs on the sending LP's goroutine.
func (x *Exchange) Deliver(src, dst proto.NodeID, at, schedAt sim.Cycle, ctr uint64, fn func()) {
	srcLP, dstLP := x.part.LPOf(src), x.part.LPOf(dst)
	if srcLP == dstLP {
		x.engines[dstLP].ScheduleArrivalAt(at, schedAt, uint32(src), ctr, fn)
		return
	}
	mb := &x.boxes[srcLP][dstLP]
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, arrival{src: src, at: at, schedAt: schedAt, ctr: ctr, fn: fn})
	mb.mu.Unlock()
}

// drainInto empties every mailbox aimed at dstLP into its engine. Only
// the coordinator calls it, between windows. Mailbox order across sources
// is irrelevant: the engine heap re-establishes the unique key order.
func (x *Exchange) drainInto(dstLP int) {
	eng := x.engines[dstLP]
	for s := 0; s < x.part.LPs; s++ {
		mb := &x.boxes[s][dstLP]
		mb.mu.Lock()
		msgs := mb.msgs
		mb.msgs = nil
		mb.mu.Unlock()
		for _, m := range msgs {
			eng.ScheduleArrivalAt(m.at, m.schedAt, uint32(m.src), m.ctr, m.fn)
		}
	}
}
