package pdes_test

// The differential battery: every parallel run must reproduce the serial
// run's determinism fingerprint bit-for-bit. This is the package's
// absolute oracle — the conservative window scheduler is only correct if
// partitioning is unobservable in every simulated quantity.

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/chaos"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// jobSpec is one cell of the differential matrix.
type jobSpec struct {
	kernel string
	prot   machine.Protocol
	sigs   bool // DeNovoSync with DeNovoND-style write signatures
}

// configName labels the protocol variant in failure messages.
func (j jobSpec) configName() string {
	if j.sigs {
		return "DSsig"
	}
	switch j.prot {
	case machine.MESI:
		return "M"
	case machine.DeNovoSync0:
		return "DS0"
	default:
		return "DS"
	}
}

// runJob executes one kernel on a fresh 16-core machine. lps == 1 is the
// serial reference; lps > 1 partitions the mesh. jitter > 0 attaches the
// hash perturber (partition-independent chaos timing).
func runJob(t *testing.T, j jobSpec, lps int, jitter sim.Cycle) *stats.RunStats {
	t.Helper()
	p := machine.Params16()
	p.Seed = 7
	p.LPs = lps
	p.Signatures = j.sigs
	k, ok := kernels.ByID(j.kernel)
	if !ok {
		t.Fatalf("unknown kernel %s", j.kernel)
	}
	m := machine.New(p, j.prot, alloc.New())
	if jitter > 0 {
		chaos.AttachHash(m.Net, chaos.HashPolicy{Seed: 99, MaxJitter: jitter})
	}
	rs, err := kernels.Run(k, m, kernels.Config{Iters: 4, EqChecks: -1, UseSignatures: j.sigs})
	if err != nil {
		t.Fatalf("%s/%s lps=%d: %v", j.kernel, j.configName(), lps, err)
	}
	return rs
}

// fullMatrix is all 24 kernels x {M, DS0, DS, DSsig}.
func fullMatrix() []jobSpec {
	var jobs []jobSpec
	for _, k := range kernels.All() {
		jobs = append(jobs,
			jobSpec{k.ID, machine.MESI, false},
			jobSpec{k.ID, machine.DeNovoSync0, false},
			jobSpec{k.ID, machine.DeNovoSync, false},
			jobSpec{k.ID, machine.DeNovoSync, true},
		)
	}
	return jobs
}

// shortMatrix trims to three synchronization shapes for -short runs; the
// CI pdes-check job runs the full matrix under -race.
func shortMatrix() []jobSpec {
	var jobs []jobSpec
	for _, k := range []string{"tatas-counter", "nb-m-s-queue", "bar-tree"} {
		jobs = append(jobs,
			jobSpec{k, machine.MESI, false},
			jobSpec{k, machine.DeNovoSync0, false},
			jobSpec{k, machine.DeNovoSync, false},
			jobSpec{k, machine.DeNovoSync, true},
		)
	}
	return jobs
}

func matrix(t *testing.T) []jobSpec {
	if testing.Short() {
		return shortMatrix()
	}
	return fullMatrix()
}

// TestDifferentialBattery: serial vs fully-partitioned (one LP per tile)
// fingerprints over the kernel x protocol matrix.
func TestDifferentialBattery(t *testing.T) {
	for _, j := range matrix(t) {
		j := j
		t.Run(j.kernel+"/"+j.configName(), func(t *testing.T) {
			t.Parallel()
			serial := stats.Fingerprint(runJob(t, j, 1, 0))
			parallel := stats.Fingerprint(runJob(t, j, 16, 0))
			if serial != parallel {
				t.Errorf("parallel run diverged from serial:\nserial:   %s\nparallel: %s", serial, parallel)
			}
		})
	}
}

// TestDifferentialLPGrouping: every legal LP count groups tiles
// differently but must land on the same fingerprint.
func TestDifferentialLPGrouping(t *testing.T) {
	for _, j := range shortMatrix() {
		j := j
		t.Run(j.kernel+"/"+j.configName(), func(t *testing.T) {
			t.Parallel()
			want := stats.Fingerprint(runJob(t, j, 1, 0))
			for _, lps := range []int{2, 4, 16} {
				if got := stats.Fingerprint(runJob(t, j, lps, 0)); got != want {
					t.Errorf("lps=%d diverged from serial:\nserial: %s\nlps=%d:  %s", lps, want, lps, got)
				}
			}
		})
	}
}

// TestDifferentialChaos: under hash-jittered message timing (the
// partition-independent chaos policy) parallel runs must still reproduce
// the jittered serial run exactly — jitter shifts delivery times but the
// ordering key and the per-edge clamp state are mode-invariant.
func TestDifferentialChaos(t *testing.T) {
	jobs := shortMatrix()
	if testing.Short() {
		jobs = jobs[:4]
	}
	for _, j := range jobs {
		j := j
		t.Run(j.kernel+"/"+j.configName(), func(t *testing.T) {
			t.Parallel()
			for _, jitter := range []sim.Cycle{3, 17} {
				serial := stats.Fingerprint(runJob(t, j, 1, jitter))
				parallel := stats.Fingerprint(runJob(t, j, 16, jitter))
				if serial != parallel {
					t.Errorf("jitter=%d parallel diverged:\nserial:   %s\nparallel: %s", jitter, serial, parallel)
				}
			}
		})
	}
}

// TestSmoke is the seconds-scale gate run by `make pdes-smoke`: one
// lock-based and one non-blocking kernel, serial vs lps=4 vs lps=16.
func TestSmoke(t *testing.T) {
	for _, j := range []jobSpec{
		{"tatas-counter", machine.DeNovoSync, false},
		{"nb-m-s-queue", machine.MESI, false},
	} {
		want := stats.Fingerprint(runJob(t, j, 1, 0))
		for _, lps := range []int{4, 16} {
			if got := stats.Fingerprint(runJob(t, j, lps, 0)); got != want {
				t.Fatalf("%s/%s lps=%d diverged:\nserial:   %s\nparallel: %s",
					j.kernel, j.configName(), lps, want, got)
			}
		}
	}
}
