package pdes

import (
	"fmt"

	"denovosync/internal/sim"
)

// defaultBudget caps the events one LP dispatches inside a single window:
// a zero-delay event storm that never advances time cannot pin an LP (and
// with it the barrier) forever. Windows that hit the cap simply resume in
// the next round at the same floor.
const defaultBudget = 1 << 16

// Scheduler drives one engine per logical process through conservative
// time windows. Each round the coordinator drains the mailboxes, computes
// the global floor tmin over all pending events, and releases every LP to
// run [.., tmin+Lookahead-1] concurrently; the lookahead bound guarantees
// no message sent during the round can arrive inside it.
type Scheduler struct {
	// Engines holds one engine per LP (index = LP id).
	Engines []*sim.Engine
	// Exchange is the mailbox router wired into the network.
	Exchange *Exchange
	// Lookahead is the window width: the minimum cross-LP message latency
	// (one mesh hop). Must be >= 1.
	Lookahead sim.Cycle
	// Budget caps events per LP per window (0 = defaultBudget).
	Budget uint64
	// EventLimit aborts the run when total dispatched events exceed it
	// (0 = unlimited) — the parallel analogue of the serial run cap.
	EventLimit uint64
	// TickPeriod, when > 0, runs OnTick at every multiple of the period —
	// the watchdog replication hook. The serial machine's watchdog is a
	// recurring event on the one engine; here the coordinator caps each
	// window at the next tick boundary and runs the check at the barrier,
	// which observes exactly the events-before-the-tick state the serial
	// tick would.
	TickPeriod sim.Cycle
	// OnTick runs at each tick barrier; returning true stops the run.
	// FinalTick: the serial watchdog leaves one last pending tick that
	// fires while the queue drains after every thread finished; Run calls
	// OnTick once more after the queues empty to mirror it.
	OnTick func() bool

	// Ticks counts OnTick activations (the serial machine adds them to its
	// event total: serial ticks are real engine events).
	Ticks uint64
	// Windows counts completed rounds (diagnostics).
	Windows uint64

	start []chan sim.Cycle
	done  chan struct{}
}

// Run executes rounds until every queue and mailbox is empty, OnTick
// requests a stop, or the event limit trips (returned as an error).
func (s *Scheduler) Run() error {
	if s.Lookahead < 1 {
		return fmt.Errorf("pdes: lookahead must be >= 1, got %d", s.Lookahead)
	}
	if len(s.Engines) == 0 || s.Exchange == nil {
		return fmt.Errorf("pdes: scheduler not wired")
	}
	budget := s.Budget
	if budget == 0 {
		budget = defaultBudget
	}

	// One persistent worker per LP: the channel handoffs publish engine
	// state to the worker at release and back to the coordinator at the
	// barrier, so engines are only ever touched by one goroutine at a time.
	s.start = make([]chan sim.Cycle, len(s.Engines))
	s.done = make(chan struct{}, len(s.Engines))
	for i := range s.Engines {
		s.start[i] = make(chan sim.Cycle)
		go func(eng *sim.Engine, start chan sim.Cycle) {
			for horizon := range start {
				eng.RunUntilBudget(horizon, budget)
				s.done <- struct{}{}
			}
		}(s.Engines[i], s.start[i])
	}
	defer func() {
		for _, c := range s.start {
			close(c)
		}
	}()

	nextTick := sim.Cycle(0)
	if s.TickPeriod > 0 {
		nextTick = s.TickPeriod
	}
	var total uint64
	for {
		// Barrier section: no worker is running.
		for lp := range s.Engines {
			s.Exchange.drainInto(lp)
		}
		tmin := sim.Cycle(0)
		any := false
		total = 0
		for _, eng := range s.Engines {
			total += eng.Executed
			if t, ok := eng.NextEventTime(); ok && (!any || t < tmin) {
				tmin, any = t, true
			}
		}
		if s.EventLimit > 0 && total >= s.EventLimit {
			return fmt.Errorf("pdes: event limit exceeded (%d events)", total)
		}
		if !any {
			// Queues drained. The serial watchdog's final pending tick
			// fires during the drain; mirror it.
			if s.TickPeriod > 0 && s.OnTick != nil {
				s.Ticks++
				s.OnTick()
			}
			return nil
		}
		if nextTick > 0 && tmin >= nextTick {
			// Every event before the tick boundary has dispatched: run the
			// progress check the serial tick event would run at this cycle.
			s.Ticks++
			if s.OnTick != nil && s.OnTick() {
				return nil
			}
			nextTick += s.TickPeriod
			continue
		}
		horizon := tmin + s.Lookahead - 1
		if nextTick > 0 && horizon >= nextTick {
			horizon = nextTick - 1
		}
		// Release only LPs with work inside the window. An idle LP's
		// clock lags harmlessly: arrivals drained at a later barrier
		// always carry at > that barrier's horizon, and RunUntilBudget
		// catches the clock up when the LP next has work. With a single
		// active LP (the common shape under lock contention) the window
		// runs inline on the coordinator — no handoffs at all.
		released := 0
		single := -1
		for lp, eng := range s.Engines {
			if t, ok := eng.NextEventTime(); ok && t <= horizon {
				if released == 0 {
					single = lp
				} else {
					single = -1
				}
				released++
			}
		}
		if single >= 0 {
			s.Engines[single].RunUntilBudget(horizon, budget)
		} else {
			for lp, eng := range s.Engines {
				if t, ok := eng.NextEventTime(); ok && t <= horizon {
					s.start[lp] <- horizon
				}
			}
			for i := 0; i < released; i++ {
				<-s.done
			}
		}
		s.Windows++
	}
}
