package pdes_test

// PDES throughput benchmarks: the serial engine vs the partitioned
// engine on the same workload mix. BenchmarkPDES* rows are recorded in
// BENCH_baseline.json and gated by `make bench-check`.
//
// The speedup-vs-serial metric is wall-clock serial time over parallel
// time for the identical (bit-for-bit) simulation. It only exceeds 1 when
// the host grants the process real parallelism: on a single-CPU host the
// parallel engine pays window-barrier and goroutine-handoff overhead with
// nothing to amortize it against, so the honest single-CPU reading is the
// overhead factor, not a speedup (see EXPERIMENTS.md, "PDES benchmarks").

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
)

// benchMix is the workload driven through both modes: one TATAS lock
// kernel (heavy sync contention, many small windows) and one non-blocking
// queue (longer independent stretches).
var benchMix = []struct {
	kernel string
	prot   machine.Protocol
}{
	{"tatas-counter", machine.DeNovoSync},
	{"nb-m-s-queue", machine.DeNovoSync},
}

func benchRun(b *testing.B, cores, lps int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, j := range benchMix {
			var p machine.Params
			if cores == 64 {
				p = machine.Params64()
			} else {
				p = machine.Params16()
			}
			p.LPs = lps
			k, ok := kernels.ByID(j.kernel)
			if !ok {
				b.Fatalf("unknown kernel %s", j.kernel)
			}
			m := machine.New(p, j.prot, alloc.New())
			if _, err := kernels.Run(k, m, kernels.Config{Iters: 20, EqChecks: -1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPDESSerial16 is the serial reference on the 16-core machine.
func BenchmarkPDESSerial16(b *testing.B) { benchRun(b, 16, 1) }

// BenchmarkPDESParallel16LP4 partitions the 4x4 mesh into 4 row LPs.
func BenchmarkPDESParallel16LP4(b *testing.B) { benchRun(b, 16, 4) }

// BenchmarkPDESParallel16 runs one LP per tile on the 16-core machine.
func BenchmarkPDESParallel16(b *testing.B) { benchRun(b, 16, 16) }

// BenchmarkPDESSerial64 is the serial reference on the 64-core machine.
func BenchmarkPDESSerial64(b *testing.B) { benchRun(b, 64, 1) }

// BenchmarkPDESParallel64LP8 partitions the 8x8 mesh into 8 row LPs.
func BenchmarkPDESParallel64LP8(b *testing.B) { benchRun(b, 64, 8) }
