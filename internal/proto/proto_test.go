package proto

import (
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	a := Addr(0x1234)
	if a.Line() != 0x1200 {
		t.Fatalf("Line = %v", a.Line())
	}
	if a.Word() != 0x1234 {
		t.Fatalf("Word = %v", a.Word())
	}
	if Addr(0x1236).Word() != 0x1234 {
		t.Fatal("sub-word align broken")
	}
	if a.WordIndex() != 13 {
		t.Fatalf("WordIndex = %d", a.WordIndex())
	}
}

// Properties of address arithmetic.
func TestAddrProperties(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		// Line() and Word() are idempotent projections.
		if a.Line().Line() != a.Line() || a.Word().Word() != a.Word() {
			return false
		}
		// A word belongs to its line.
		if a.Word().Line() != a.Line() {
			return false
		}
		// WordIndex reconstructs the word address.
		if a.Line()+Addr(a.WordIndex()*WordBytes) != a.Word() {
			return false
		}
		return a.WordIndex() >= 0 && a.WordIndex() < WordsPerLine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSet(t *testing.T) {
	s := NewRegionSet(1, 5, 63)
	for _, r := range []RegionID{1, 5, 63} {
		if !s.Has(r) {
			t.Fatalf("missing region %d", r)
		}
	}
	if s.Has(2) || s.Has(0) {
		t.Fatal("spurious region")
	}
	if s.Has(-1) || s.Has(64) {
		t.Fatal("out-of-range Has returned true")
	}
	if !s.Union(NewRegionSet(2)).Has(2) {
		t.Fatal("union broken")
	}
	if !RegionSet(0).Empty() || s.Empty() {
		t.Fatal("Empty broken")
	}
	if !AllRegions.Has(0) || !AllRegions.Has(63) {
		t.Fatal("AllRegions incomplete")
	}
}

func TestRegionSetAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewRegionSet(64)
}

// Property: membership after arbitrary adds matches a reference map.
func TestRegionSetProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		var s RegionSet
		ref := map[RegionID]bool{}
		for _, id := range ids {
			r := RegionID(id % MaxRegions)
			s = s.Add(r)
			ref[r] = true
		}
		for r := RegionID(0); r < MaxRegions; r++ {
			if s.Has(r) != ref[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessKindPredicates(t *testing.T) {
	cases := []struct {
		k     AccessKind
		sync  bool
		write bool
	}{
		{DataLoad, false, false},
		{DataStore, false, true},
		{SyncLoad, true, false},
		{SyncStore, true, true},
		{SyncRMW, true, true},
	}
	for _, c := range cases {
		if c.k.IsSync() != c.sync || c.k.IsWrite() != c.write {
			t.Fatalf("%v predicates wrong", c.k)
		}
	}
}

func TestStringers(t *testing.T) {
	if ClassSynch.String() != "SYNCH" || SyncRMW.String() != "SyncRMW" {
		t.Fatal("stringers broken")
	}
	if MsgClass(99).String() == "" || AccessKind(99).String() == "" {
		t.Fatal("unknown-value stringers empty")
	}
}
