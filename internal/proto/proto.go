// Package proto holds definitions shared by every coherence protocol in the
// simulator: simulated addresses, cache geometry helpers, message classes
// for traffic accounting, and the access-request plumbing between a core and
// its L1 controller.
package proto

import "fmt"

// Addr is a simulated physical byte address.
type Addr uint64

const (
	// WordBytes is the coherence granularity of DeNovo and the access
	// granularity of the simulated ISA (one 4-byte word per load/store).
	WordBytes = 4
	// LineBytes is the cache-line size from Table 1 of the paper.
	LineBytes = 64
	// WordsPerLine is the number of coherence-state words per line.
	WordsPerLine = LineBytes / WordBytes
)

// Line returns the line-aligned address containing a.
func (a Addr) Line() Addr { return a &^ (LineBytes - 1) }

// Word returns the word-aligned address containing a.
func (a Addr) Word() Addr { return a &^ (WordBytes - 1) }

// WordIndex returns a's word offset within its line (0..WordsPerLine-1).
func (a Addr) WordIndex() int { return int(a%LineBytes) / WordBytes }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// NodeID identifies a tile (core + L1 + co-located L2 bank) or a memory
// controller on the mesh.
type NodeID int

// CoreID identifies a simulated core, numbered 0..N-1.
type CoreID int

// MsgClass buckets network messages for the traffic breakdowns in the
// paper's figures. MESI tallies LD/ST/WB/Inv; DeNovo tallies
// LD/ST/WB/Synch (see §7.1, footnote 3).
type MsgClass int

const (
	ClassLD    MsgClass = iota // data load requests and their responses
	ClassST                    // data store/ownership requests and responses
	ClassWB                    // writebacks and their acks
	ClassInv                   // invalidations, inv-acks, unblocks (MESI only)
	ClassSynch                 // synchronization requests/responses (DeNovo only)
	NumMsgClasses
)

func (c MsgClass) String() string {
	switch c {
	case ClassLD:
		return "LD"
	case ClassST:
		return "ST"
	case ClassWB:
		return "WB"
	case ClassInv:
		return "Inv"
	case ClassSynch:
		return "SYNCH"
	}
	return fmt.Sprintf("MsgClass(%d)", int(c))
}

// Flit sizing: the network uses 16-bit flits (Table 1). A control message
// carries an 8-byte header; data messages add their payload.
const (
	FlitBytes     = 2
	HeaderBytes   = 8
	CtrlFlits     = HeaderBytes / FlitBytes
	LineDataFlits = CtrlFlits + LineBytes/FlitBytes
	WordDataFlits = CtrlFlits + WordBytes/FlitBytes
)

// DataFlits returns the flit count of a message carrying words data words.
func DataFlits(words int) int { return CtrlFlits + words*WordBytes/FlitBytes }

// AccessKind enumerates the memory operations a core can issue.
type AccessKind int

const (
	// Data accesses (race-free under the DRF software assumption).
	DataLoad AccessKind = iota
	DataStore
	// Synchronization accesses (racy; volatile/atomic in source terms).
	SyncLoad
	SyncStore
	SyncRMW // compare-and-swap, fetch-and-increment, test-and-set, ...
)

func (k AccessKind) String() string {
	switch k {
	case DataLoad:
		return "DataLoad"
	case DataStore:
		return "DataStore"
	case SyncLoad:
		return "SyncLoad"
	case SyncStore:
		return "SyncStore"
	case SyncRMW:
		return "SyncRMW"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// IsSync reports whether the access participates in synchronization races.
func (k AccessKind) IsSync() bool { return k >= SyncLoad }

// IsWrite reports whether the access can modify memory.
func (k AccessKind) IsWrite() bool {
	return k == DataStore || k == SyncStore || k == SyncRMW
}

// RMWOp is the atomic update applied by a SyncRMW access, evaluated at the
// point of registration/ownership. old is the current memory value; the
// returned newVal is stored if store is true (CAS failure stores nothing).
type RMWOp func(old uint64) (newVal uint64, store bool)

// Request is one memory access handed from a core to its L1 controller.
type Request struct {
	Kind  AccessKind
	Addr  Addr
	Value uint64 // store value for DataStore/SyncStore
	RMW   RMWOp  // non-nil for SyncRMW

	// Region tags the address's software region (self-invalidation unit);
	// recorded at fill so region invalidations can find cached words.
	Region RegionID

	// Done is invoked exactly once when the access commits, with the value
	// read (loads and RMWs; RMWs return the pre-update value) and the cycle
	// budget is accounted by the caller from the callback time.
	Done func(value uint64)
}

// RegionID names a software-assigned data region (see §3 of the paper).
// Region 0 is the default region for unannotated data.
type RegionID int
