package proto

// Signature is a 256-bit Bloom-filter summary of a set of word addresses —
// the hardware write signature of DeNovoND [35], which the paper names as
// the dynamic alternative to region-based static self-invalidation (§3):
// a releasing core attaches the signature of its writes to the lock, and
// the next acquirer self-invalidates only matching words instead of whole
// regions. False positives cause extra (safe) invalidations; false
// negatives are impossible.
type Signature struct {
	bits [4]uint64
}

// sigHashes returns two bit positions in [0, 256) for a word address.
func sigHashes(a Addr) (uint, uint) {
	x := uint64(a.Word()) / WordBytes
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	h1 := uint(x & 255)
	h2 := uint((x >> 8) & 255)
	return h1, h2
}

// Add inserts a word address.
func (s *Signature) Add(a Addr) {
	h1, h2 := sigHashes(a)
	s.bits[h1>>6] |= 1 << (h1 & 63)
	s.bits[h2>>6] |= 1 << (h2 & 63)
}

// MightContain reports whether a may have been inserted (no false
// negatives).
func (s *Signature) MightContain(a Addr) bool {
	h1, h2 := sigHashes(a)
	return s.bits[h1>>6]&(1<<(h1&63)) != 0 && s.bits[h2>>6]&(1<<(h2&63)) != 0
}

// UnionWith merges t into s.
func (s *Signature) UnionWith(t Signature) {
	for i := range s.bits {
		s.bits[i] |= t.bits[i]
	}
}

// Clear empties the signature.
func (s *Signature) Clear() { s.bits = [4]uint64{} }

// Empty reports whether no address was ever inserted.
func (s *Signature) Empty() bool {
	return s.bits == [4]uint64{}
}
