package proto

// RegionSet is a bitset of software regions, used by region-based static
// self-invalidation (§3): at an acquire the program names the regions whose
// cached Valid words must be dropped. The simulator supports up to 64
// regions, plenty for the paper's workloads.
type RegionSet uint64

// MaxRegions is the largest number of distinct regions supported.
const MaxRegions = 64

// NewRegionSet builds a set from region IDs.
func NewRegionSet(rs ...RegionID) RegionSet {
	var s RegionSet
	for _, r := range rs {
		s = s.Add(r)
	}
	return s
}

// Add returns s with r included. Region IDs outside [0,64) panic.
func (s RegionSet) Add(r RegionID) RegionSet {
	if r < 0 || r >= MaxRegions {
		panic("proto: region ID out of range")
	}
	return s | 1<<uint(r)
}

// Has reports whether r is in s.
func (s RegionSet) Has(r RegionID) bool {
	if r < 0 || r >= MaxRegions {
		return false
	}
	return s&(1<<uint(r)) != 0
}

// Union returns the union of s and t.
func (s RegionSet) Union(t RegionSet) RegionSet { return s | t }

// Empty reports whether the set has no regions.
func (s RegionSet) Empty() bool { return s == 0 }

// AllRegions is the set containing every region — self-invalidating it
// models the "no further information" fallback of §3.
const AllRegions RegionSet = ^RegionSet(0)
