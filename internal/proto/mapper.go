package proto

// RegionMapper resolves an address to its software region. In DPJ-style
// disciplined software the region of every address is statically known;
// the simulator's allocator plays that role, and both the cores (tagging
// requests) and the DeNovo L1 (tagging fills) consult it.
type RegionMapper interface {
	RegionOf(Addr) RegionID
}
