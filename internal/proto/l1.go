package proto

import "denovosync/internal/sim"

// L1Controller is the interface a core uses to talk to its private cache,
// implemented by both the MESI and the DeNovo controllers. All methods are
// called from engine events (single-threaded).
type L1Controller interface {
	// Access starts a memory access. req.Done is invoked (in a later engine
	// event) when the access commits. Non-blocking data stores call Done at
	// local commit while the coherence transaction continues in the
	// background; everything else calls Done when globally complete.
	Access(req *Request)

	// SelfInvalidate drops every cached Valid word whose region is in set
	// (DeNovo); a no-op for MESI, whose writer-initiated invalidations make
	// it unnecessary.
	SelfInvalidate(set RegionSet)

	// Epoch returns the disturbance counter for addr's word: it increments
	// whenever remote protocol activity or a self-invalidation changes the
	// locally cached state (invalidation, registration revocation,
	// downgrade, eviction). Local fills do not count. Cores use it with
	// WaitDisturb to model spin-waiting without simulating every spin hit.
	Epoch(addr Addr) uint64

	// WaitDisturb calls fn once Epoch(addr) differs from epoch; immediately
	// (via a scheduled event) if it already does.
	WaitDisturb(addr Addr, epoch uint64, fn func())

	// OnWritesDrained calls fn once all outstanding non-blocking stores
	// have completed their coherence transactions (fence/sync ordering).
	OnWritesDrained(fn func())

	// BackoffStallCycles returns the cumulative cycles this L1 has stalled
	// sync reads in hardware backoff (DeNovoSync only; 0 otherwise).
	BackoffStallCycles() sim.Cycle

	// SignatureRelease publishes the core's write-set signature to lock's
	// entry in the signature table and clears it — the release half of
	// DeNovoND-style dynamic self-invalidation. A no-op on MESI.
	SignatureRelease(lock Addr)

	// SignatureAcquire self-invalidates cached Valid words matching
	// lock's accumulated write signature — the acquire half. A no-op on
	// MESI.
	SignatureAcquire(lock Addr)

	// Stats returns the controller's hit/miss counters.
	Stats() *L1Stats
}

// L1Stats counts per-L1 cache events, split by access kind.
type L1Stats struct {
	Hits    [5]uint64 // indexed by AccessKind
	Misses  [5]uint64
	Evicted uint64
	WB      uint64 // writebacks issued
}

// Hit records a hit for kind k.
func (s *L1Stats) Hit(k AccessKind) { s.Hits[k]++ }

// Miss records a miss for kind k.
func (s *L1Stats) Miss(k AccessKind) { s.Misses[k]++ }

// TotalHits sums hits across kinds.
func (s *L1Stats) TotalHits() uint64 {
	var t uint64
	for _, v := range s.Hits {
		t += v
	}
	return t
}

// TotalMisses sums misses across kinds.
func (s *L1Stats) TotalMisses() uint64 {
	var t uint64
	for _, v := range s.Misses {
		t += v
	}
	return t
}
