package harness

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/stats"
)

func TestConfigRegistry(t *testing.T) {
	cs := Configs()
	if len(cs) != 2 {
		t.Fatalf("Configs() = %d entries, want 2", len(cs))
	}
	if cs[0].Name != "mesh4x4-16c" || cs[1].Name != "mesh8x8-64c" {
		t.Fatalf("Configs() order = %q, %q", cs[0].Name, cs[1].Name)
	}
	for _, c := range cs {
		if c.Cores != c.MeshW*c.MeshH {
			t.Errorf("%s: cores %d != mesh %dx%d", c.Name, c.Cores, c.MeshW, c.MeshH)
		}
		p := c.Params()
		if p.Cores != c.Cores || p.MeshW != c.MeshW || p.MeshH != c.MeshH {
			t.Errorf("%s: Params() = %d cores %dx%d, want %d %dx%d",
				c.Name, p.Cores, p.MeshW, p.MeshH, c.Cores, c.MeshW, c.MeshH)
		}
		if p.WatchdogCycles != DefaultWatchdog {
			t.Errorf("%s: Params() watchdog %d, want harness default %d",
				c.Name, p.WatchdogCycles, DefaultWatchdog)
		}
	}
	if _, err := ConfigByName("mesh8x8-64c"); err != nil {
		t.Fatalf("ConfigByName(mesh8x8-64c): %v", err)
	}
	if _, err := ConfigByName("mesh2x2-4c"); err == nil {
		t.Fatal("ConfigByName(mesh2x2-4c): want error, got nil")
	}
}

// TestConfig64Smoke runs a small kernel on the named 64-core 8x8-mesh
// configuration serially and under PDES partitioning, and requires the
// two runs to produce identical statistics — the large machine is a
// first-class citizen of the parallel engine, not just the 16-core one
// the differential battery leans on.
func TestConfig64Smoke(t *testing.T) {
	c, err := ConfigByName("mesh8x8-64c")
	if err != nil {
		t.Fatal(err)
	}
	k, ok := kernels.ByID("tatas-counter")
	if !ok {
		t.Fatal("kernel tatas-counter not registered")
	}
	run := func(lps int) string {
		p := c.Params()
		p.LPs = lps
		m := machine.New(p, machine.DeNovoSync, alloc.New())
		rs, err := kernels.Run(k, m, kernels.Config{Cores: c.Cores, Iters: 2, EqChecks: -1})
		if err != nil {
			t.Fatalf("lps=%d: %v", lps, err)
		}
		return stats.Fingerprint(rs)
	}
	serial := run(0)
	for _, lps := range []int{8, 64} {
		if got := run(lps); got != serial {
			t.Errorf("lps=%d fingerprint diverges from serial:\n got %s\nwant %s", lps, got, serial)
		}
	}
}
