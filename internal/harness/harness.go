// Package harness runs the paper's experiments — every figure and table of
// the evaluation (§7) plus the ablation studies — and renders the results
// as normalized tables in the same form as the paper's stacked-bar charts.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"denovosync/internal/alloc"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// Row is one (workload, protocol) result.
type Row struct {
	Workload string
	Protocol machine.Protocol
	// Label overrides the protocol abbreviation in rendered tables
	// (used by parameter-sweep ablations).
	Label string
	Stats *stats.RunStats
}

// label returns the display label for the row's protocol column.
func (r *Row) label() string {
	if r.Label != "" {
		return r.Label
	}
	return r.Protocol.Short()
}

// Figure is one reproduced figure: a set of workloads, each run under a
// set of protocols on one machine size.
type Figure struct {
	ID    string
	Title string
	Cores int
	Rows  []Row
}

// DefaultWatchdog is the deadlock/livelock budget applied to every
// machine the harness builds (machine.Params.WatchdogCycles): a hang
// aborts with a structured diagnostic snapshot instead of spinning to
// the event limit. The default is generous — orders of magnitude beyond
// any legitimate retirement gap — so it only fires on a genuine hang.
// Set to 0 to disable.
var DefaultWatchdog sim.Cycle = 100_000_000

// DefaultLPs partitions every machine the harness builds into this many
// logical processes run on concurrent goroutines (machine.Params.LPs);
// <= 1 keeps the serial engine. A package knob for the same reason as
// DefaultWatchdog: figures construct machines deep inside their run
// functions. The partition count is guaranteed unobservable in results —
// the pdes differential battery pins parallel runs to the serial
// fingerprints and golden CSVs bit-for-bit.
var DefaultLPs int

// ParamsFor returns the Table 1 configuration for a core count, with the
// harness's watchdog budget and LP partitioning applied.
func ParamsFor(cores int) machine.Params {
	var p machine.Params
	switch cores {
	case 16:
		p = machine.Params16()
	case 64:
		p = machine.Params64()
	default:
		panic(fmt.Sprintf("harness: unsupported core count %d", cores))
	}
	p.WatchdogCycles = DefaultWatchdog
	if p.LPs = DefaultLPs; p.LPs > cores {
		// An LP owns at least one tile; clamp so one -lps value can
		// drive mixed-size runs (e.g. Figure 7's 16- and 64-core apps).
		p.LPs = cores
	}
	return p
}

// DefaultProtocols is the paper's kernel comparison set (M, DS0, DS).
func DefaultProtocols() []machine.Protocol {
	return []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync}
}

// RunKernelGroup reproduces one kernel figure (3, 4, 5 or 6) at the given
// core count. cfg.Cores is overridden. Runs are independent machines, so
// they execute concurrently (each machine is internally single-threaded
// and deterministic; row order is fixed by index).
func RunKernelGroup(id, title string, g kernels.Group, cores int, cfg kernels.Config, protos []machine.Protocol) (*Figure, error) {
	f := &Figure{ID: id, Title: title, Cores: cores}
	cfg.Cores = cores
	type job struct {
		k    kernels.Kernel
		prot machine.Protocol
	}
	var jobs []job
	for _, k := range kernels.ByGroup(g) {
		for _, prot := range protos {
			jobs = append(jobs, job{k, prot})
		}
	}
	f.Rows = make([]Row, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// A panicking kernel configuration must fail its own row, not
			// kill the whole figure (and the process).
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("%s/%s/%v: panic: %v\n%s", id, j.k.ID, j.prot, p, debug.Stack())
				}
			}()
			m := machine.New(ParamsFor(cores), j.prot, alloc.New())
			rs, err := kernels.Run(j.k, m, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s/%v: %w", id, j.k.ID, j.prot, err)
				return
			}
			f.Rows[i] = Row{Workload: j.k.Name, Protocol: j.prot, Stats: rs}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// baseline returns the MESI row for a workload (normalization reference).
func (f *Figure) baseline(workload string) *Row {
	for i := range f.Rows {
		r := &f.Rows[i]
		if r.Workload == workload && r.Protocol == machine.MESI {
			return r
		}
	}
	return nil
}

// Workloads returns the distinct workload names in row order.
func (f *Figure) Workloads() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range f.Rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			out = append(out, r.Workload)
		}
	}
	return out
}

// pct formats v as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%6.1f", v*100) }

// RenderTime writes the execution-time table, normalized to MESI per
// workload (parts (a)/(c) of the kernel figures; Figure 7a for apps).
func (f *Figure) RenderTime(w io.Writer) {
	fmt.Fprintf(w, "%s — execution time (%% of MESI; components are %% of MESI total)\n", f.heading())
	fmt.Fprintf(w, "%-14s %-12s %7s | %8s %8s %8s %8s %8s %8s\n",
		"workload", "prot", "total",
		"nonsynch", "compute", "memstall", "swbkoff", "hwbkoff", "barrier")
	for _, wl := range f.Workloads() {
		base := f.baseline(wl)
		for _, r := range f.Rows {
			if r.Workload != wl {
				continue
			}
			norm := 1.0
			if base != nil && base.Stats.ExecTime > 0 {
				norm = float64(base.Stats.ExecTime)
			}
			name := ""
			if r.Protocol == machine.MESI || base == nil {
				name = wl
			}
			fmt.Fprintf(w, "%-14s %-12s %7s |", name, r.label(),
				pct(float64(r.Stats.ExecTime)/norm))
			for c := stats.TimeComponent(0); c < stats.NumTimeComponents; c++ {
				fmt.Fprintf(w, " %8s", pct(r.Stats.Time[c]/norm))
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderTraffic writes the network-traffic table, normalized to MESI
// (parts (b)/(d) of the kernel figures; Figure 7b for apps).
func (f *Figure) RenderTraffic(w io.Writer) {
	fmt.Fprintf(w, "%s — network traffic (%% of MESI; flit link-crossings by class)\n", f.heading())
	fmt.Fprintf(w, "%-14s %-12s %7s | %8s %8s %8s %8s %8s\n",
		"workload", "prot", "total", "LD", "ST", "WB", "Inv", "SYNCH")
	for _, wl := range f.Workloads() {
		base := f.baseline(wl)
		for _, r := range f.Rows {
			if r.Workload != wl {
				continue
			}
			norm := 1.0
			if base != nil && base.Stats.TotalTraffic > 0 {
				norm = float64(base.Stats.TotalTraffic)
			}
			name := ""
			if r.Protocol == machine.MESI || base == nil {
				name = wl
			}
			fmt.Fprintf(w, "%-14s %-12s %7s |", name, r.label(),
				pct(float64(r.Stats.TotalTraffic)/norm))
			for _, cl := range []proto.MsgClass{proto.ClassLD, proto.ClassST, proto.ClassWB, proto.ClassInv, proto.ClassSynch} {
				fmt.Fprintf(w, " %8s", pct(float64(r.Stats.Traffic[cl])/norm))
			}
			fmt.Fprintln(w)
		}
	}
}

// Render writes both tables.
func (f *Figure) Render(w io.Writer) {
	f.RenderTime(w)
	fmt.Fprintln(w)
	f.RenderTraffic(w)
}

func (f *Figure) heading() string {
	return fmt.Sprintf("%s: %s (%d cores)", f.ID, f.Title, f.Cores)
}

// CSV writes machine-readable rows (absolute numbers) for archival.
func (f *Figure) CSV(w io.Writer) {
	fmt.Fprintf(w, "figure,workload,protocol,cores,exec_cycles,total_traffic")
	for c := stats.TimeComponent(0); c < stats.NumTimeComponents; c++ {
		fmt.Fprintf(w, ",time_%s", strings.ReplaceAll(c.String(), " ", "_"))
	}
	for cl := proto.MsgClass(0); cl < proto.NumMsgClasses; cl++ {
		fmt.Fprintf(w, ",traffic_%s", cl)
	}
	fmt.Fprintln(w)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%s,%q,%s,%d,%d,%d", f.ID, r.Workload, r.label(), f.Cores,
			r.Stats.ExecTime, r.Stats.TotalTraffic)
		for c := stats.TimeComponent(0); c < stats.NumTimeComponents; c++ {
			fmt.Fprintf(w, ",%.0f", r.Stats.Time[c])
		}
		for cl := proto.MsgClass(0); cl < proto.NumMsgClasses; cl++ {
			fmt.Fprintf(w, ",%d", r.Stats.Traffic[cl])
		}
		fmt.Fprintln(w)
	}
}

// GeoMeanVsMESI returns the geometric-mean ratios (exec, traffic) of prot
// vs MESI across the figure's workloads — the paper's "X% lower on
// average" summary statistics.
func (f *Figure) GeoMeanVsMESI(prot machine.Protocol) (execRatio, trafficRatio float64) {
	var logE, logT float64
	n := 0
	for _, wl := range f.Workloads() {
		base := f.baseline(wl)
		if base == nil {
			continue
		}
		for _, r := range f.Rows {
			if r.Workload == wl && r.Protocol == prot {
				logE += math.Log(float64(r.Stats.ExecTime) / float64(base.Stats.ExecTime))
				logT += math.Log(float64(r.Stats.TotalTraffic) / float64(base.Stats.TotalTraffic))
				n++
			}
		}
	}
	if n == 0 {
		return 1, 1
	}
	return math.Exp(logE / float64(n)), math.Exp(logT / float64(n))
}
