package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"denovosync/internal/alloc"
	"denovosync/internal/apps"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/sim"
)

// Options tunes a full reproduction run.
type Options struct {
	// Scale shrinks the workloads (iteration counts) by this divisor to
	// trade fidelity for wall-clock time. 1 = the paper's sizes.
	Scale int
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

// kernelCfg builds the default kernel config at a scale.
func (o Options) kernelCfg() kernels.Config {
	c := kernels.Config{EqChecks: -1}
	if s := o.scale(); s > 1 {
		c.Iters = 100 / s
		if c.Iters < 2 {
			c.Iters = 2
		}
	}
	return c
}

// Fig3 reproduces Figure 3 (TATAS lock kernels) at the given core count.
func Fig3(cores int, o Options) (*Figure, error) {
	return RunKernelGroup(fmt.Sprintf("Figure 3 (%dc)", cores),
		"Test-and-Test-and-Set (TATAS) locks", kernels.LockTATAS, cores, o.kernelCfg(), DefaultProtocols())
}

// Fig4 reproduces Figure 4 (array lock kernels).
func Fig4(cores int, o Options) (*Figure, error) {
	return RunKernelGroup(fmt.Sprintf("Figure 4 (%dc)", cores),
		"Array locks", kernels.LockArray, cores, o.kernelCfg(), DefaultProtocols())
}

// Fig5 reproduces Figure 5 (non-blocking algorithms).
func Fig5(cores int, o Options) (*Figure, error) {
	return RunKernelGroup(fmt.Sprintf("Figure 5 (%dc)", cores),
		"Non-blocking algorithms", kernels.NonBlocking, cores, o.kernelCfg(), DefaultProtocols())
}

// Fig6 reproduces Figure 6 (barriers).
func Fig6(cores int, o Options) (*Figure, error) {
	return RunKernelGroup(fmt.Sprintf("Figure 6 (%dc)", cores),
		"Barrier synchronization (UB = unbalanced)", kernels.Barriers, cores, o.kernelCfg(), DefaultProtocols())
}

// Fig7 reproduces Figure 7: the 13 applications on MESI and DeNovoSync
// (ferret and x264 at 16 cores, the rest at 64; §5.3.2).
func Fig7(o Options) (*Figure, error) {
	f := &Figure{ID: "Figure 7", Title: "Applications (ferret/x264 at 16 cores, rest at 64)", Cores: 64}
	type job struct {
		a    apps.App
		prot machine.Protocol
	}
	var jobs []job
	for _, a := range apps.All() {
		for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync} {
			jobs = append(jobs, job{a, prot})
		}
	}
	f.Rows = make([]Row, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// A panicking application model must fail its own row, not
			// kill the whole figure (and the process).
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("fig7/%s/%v: panic: %v\n%s", j.a.ID, j.prot, p, debug.Stack())
				}
			}()
			m := machine.New(ParamsFor(j.a.DefaultCores), j.prot, alloc.New())
			rs, err := apps.Run(j.a, m, o.scale())
			if err != nil {
				errs[i] = fmt.Errorf("fig7/%s/%v: %w", j.a.ID, j.prot, err)
				return
			}
			f.Rows[i] = Row{Workload: j.a.Name, Protocol: j.prot, Stats: rs}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// AblationSWBackoff reproduces the §7.1.1 software-backoff sensitivity
// study: TATAS kernels with exponential software backoff in [128, 2048).
func AblationSWBackoff(cores int, o Options) (*Figure, error) {
	cfg := o.kernelCfg()
	cfg.LockBackoff.Min, cfg.LockBackoff.Max = 128, 2048
	return RunKernelGroup(fmt.Sprintf("Ablation: sw backoff (%dc)", cores),
		"TATAS kernels with software exponential backoff [128,2048)", kernels.LockTATAS, cores, cfg, DefaultProtocols())
}

// AblationPadding reproduces the §7.1.1 lock-padding study: TATAS kernels
// with unpadded lock words (false sharing between lock and data).
func AblationPadding(cores int, o Options) (*Figure, error) {
	cfg := o.kernelCfg()
	cfg.NoPadding = true
	return RunKernelGroup(fmt.Sprintf("Ablation: no lock padding (%dc)", cores),
		"TATAS kernels without lock padding", kernels.LockTATAS, cores, cfg, DefaultProtocols())
}

// AblationEqChecks reproduces the §7.1.3 software-modification study:
// non-blocking kernels with the Herlihy kernels' extra equality checks
// removed.
func AblationEqChecks(cores int, o Options) (*Figure, error) {
	cfg := o.kernelCfg()
	cfg.EqChecks = 0
	return RunKernelGroup(fmt.Sprintf("Ablation: reduced equality checks (%dc)", cores),
		"Non-blocking kernels, Herlihy equality checks removed", kernels.NonBlocking, cores, cfg, DefaultProtocols())
}

// AblationInvalidateAll measures what the static region annotations buy:
// the §3 fallback for programs with no region information invalidates all
// cached (non-registered) data at every acquire. Compares region-based
// DeNovoSync against the invalidate-all fallback on the lock kernels.
func AblationInvalidateAll(cores int, o Options) (*Figure, error) {
	f := &Figure{
		ID:    fmt.Sprintf("Ablation: invalidate-all fallback (%dc)", cores),
		Title: "Region-based self-invalidation vs the no-information fallback",
		Cores: cores,
	}
	cfg := o.kernelCfg()
	cfg.Cores = cores
	for _, id := range []string{"tatas-single-q", "tatas-heap", "array-stack"} {
		k, ok := kernels.ByID(id)
		if !ok {
			return nil, fmt.Errorf("missing kernel %s", id)
		}
		for _, variant := range []struct {
			prot  machine.Protocol
			all   bool
			label string
		}{
			{machine.MESI, false, ""},
			{machine.DeNovoSync, false, "DS/regions"},
			{machine.DeNovoSync, true, "DS/inv-all"},
		} {
			vcfg := cfg
			vcfg.InvalidateAll = variant.all
			m := machine.New(ParamsFor(cores), variant.prot, alloc.New())
			rs, err := kernels.Run(k, m, vcfg)
			if err != nil {
				return nil, err
			}
			f.Rows = append(f.Rows, Row{Workload: id, Protocol: variant.prot, Label: variant.label, Stats: rs})
		}
	}
	return f, nil
}

// AblationSignatures reproduces the remedy the paper points to for the
// heap kernel's static self-invalidation penalty (§7.1.2): DeNovoND-style
// dynamic write signatures instead of conservative region invalidation.
// Compares MESI, DeNovoSync with regions, and DeNovoSync with signatures
// on the data-access-heavy lock kernels.
func AblationSignatures(cores int, o Options) (*Figure, error) {
	f := &Figure{
		ID:    fmt.Sprintf("Ablation: hw signatures (%dc)", cores),
		Title: "Static region self-invalidation vs DeNovoND-style write signatures",
		Cores: cores,
	}
	cfg := o.kernelCfg()
	cfg.Cores = cores
	for _, id := range []string{"tatas-heap", "array-heap"} {
		k, ok := kernels.ByID(id)
		if !ok {
			return nil, fmt.Errorf("missing kernel %s", id)
		}
		// MESI baseline and region-based DeNovoSync.
		for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync} {
			m := machine.New(ParamsFor(cores), prot, alloc.New())
			rs, err := kernels.Run(k, m, cfg)
			if err != nil {
				return nil, err
			}
			label := ""
			if prot == machine.DeNovoSync {
				label = "DS/regions"
			}
			f.Rows = append(f.Rows, Row{Workload: id, Protocol: prot, Label: label, Stats: rs})
		}
		// Signature-based DeNovoSync.
		p := ParamsFor(cores)
		p.Signatures = true
		scfg := cfg
		scfg.UseSignatures = true
		m := machine.New(p, machine.DeNovoSync, alloc.New())
		rs, err := kernels.Run(k, m, scfg)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, Row{Workload: id, Protocol: machine.DeNovoSync, Label: "DS/sigs", Stats: rs})
	}
	// fluidanimate — the application §7.2 says would benefit from "more
	// dynamic solutions" to its conservative static self-invalidations.
	fa, _ := apps.ByID("fluidanimate")
	for _, variant := range []struct {
		prot  machine.Protocol
		sigs  bool
		label string
	}{
		{machine.MESI, false, ""},
		{machine.DeNovoSync, false, "DS/regions"},
		{machine.DeNovoSync, true, "DS/sigs"},
	} {
		p := ParamsFor(fa.DefaultCores)
		p.Signatures = variant.sigs
		m := machine.New(p, variant.prot, alloc.New())
		rs, err := apps.RunSig(fa, m, o.scale(), variant.sigs)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, Row{Workload: fa.Name, Protocol: variant.prot, Label: variant.label, Stats: rs})
	}
	return f, nil
}

// AblationBackoffParams sweeps the DeNovoSync hardware-backoff parameters
// (counter width × default increment) on one high-contention kernel — the
// design-choice ablation DESIGN.md calls out.
func AblationBackoffParams(cores int, o Options) (*Figure, error) {
	f := &Figure{
		ID:    fmt.Sprintf("Ablation: hw backoff params (%dc)", cores),
		Title: "DeNovoSync backoff counter width x default increment, M-S queue",
		Cores: cores,
	}
	k, _ := kernels.ByID("nb-m-s-queue")
	cfg := o.kernelCfg()
	cfg.Cores = cores

	type variant struct {
		name string
		bits uint
		inc  sim.Cycle
	}
	base := ParamsFor(cores)
	variants := []variant{
		{"paper", base.BackoffBits, base.DefaultIncrement},
		{"narrow(6b)", 6, base.DefaultIncrement},
		{"wide(14b)", 14, base.DefaultIncrement},
		{"inc=1", base.BackoffBits, 1},
		{"inc=256", base.BackoffBits, 256},
	}
	// MESI and DS0 references.
	for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync0} {
		m := machine.New(base, prot, alloc.New())
		rs, err := kernels.Run(k, m, cfg)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, Row{Workload: k.Name, Protocol: prot, Stats: rs})
	}
	for _, v := range variants {
		p := base
		p.BackoffBits = v.bits
		p.DefaultIncrement = v.inc
		m := machine.New(p, machine.DeNovoSync, alloc.New())
		rs, err := kernels.Run(k, m, cfg)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, Row{Workload: k.Name, Protocol: machine.DeNovoSync, Label: "DS/" + v.name, Stats: rs})
	}
	return f, nil
}

// AblationAltLocks runs the six lock kernels with the MCS list-based
// queuing lock (the other queuing-lock flavor of the paper's [4]) —
// checking that the array-lock conclusions (§6.1.2/§7.1.2: protocol
// parity, DeNovo traffic savings) carry over to list-based queuing.
func AblationAltLocks(cores int, o Options) (*Figure, error) {
	cfg := o.kernelCfg()
	cfg.ForceMCS = true
	return RunKernelGroup(fmt.Sprintf("Ablation: MCS locks (%dc)", cores),
		"Lock kernels with MCS list-based queuing locks", kernels.LockTATAS, cores, cfg, DefaultProtocols())
}

// AblationLinkContention compares the analytic network model against the
// wormhole link-contention approximation on a hot-spot kernel (every core
// hammering one L2 bank) — quantifying what the default model abstracts
// away.
func AblationLinkContention(cores int, o Options) (*Figure, error) {
	f := &Figure{
		ID:    fmt.Sprintf("Ablation: link contention (%dc)", cores),
		Title: "Analytic mesh latency vs wormhole link-contention model",
		Cores: cores,
	}
	cfg := o.kernelCfg()
	cfg.Cores = cores
	for _, id := range []string{"tatas-counter", "nb-fai-counter"} {
		k, ok := kernels.ByID(id)
		if !ok {
			return nil, fmt.Errorf("missing kernel %s", id)
		}
		for _, variant := range []struct {
			prot      machine.Protocol
			contended bool
			label     string
		}{
			{machine.MESI, false, "M/analytic"},
			{machine.MESI, true, "M/contended"},
			{machine.DeNovoSync, false, "DS/analytic"},
			{machine.DeNovoSync, true, "DS/contended"},
		} {
			p := ParamsFor(cores)
			p.LinkContention = variant.contended
			m := machine.New(p, variant.prot, alloc.New())
			rs, err := kernels.Run(k, m, cfg)
			if err != nil {
				return nil, err
			}
			f.Rows = append(f.Rows, Row{Workload: id, Protocol: variant.prot, Label: variant.label, Stats: rs})
		}
	}
	return f, nil
}

// AblationGranularity compares the paper's word-granularity DeNovo against
// a line-granularity variant on the workloads where §2.2's false-sharing
// claim bites: the unpadded-lock kernels and the LU application model
// (whose block borders interleave adjacent threads' words within lines).
func AblationGranularity(cores int, o Options) (*Figure, error) {
	f := &Figure{
		ID:    fmt.Sprintf("Ablation: coherence granularity (%dc)", cores),
		Title: "Word-granularity DeNovo vs line-granularity variant",
		Cores: cores,
	}
	cfg := o.kernelCfg()
	cfg.Cores = cores
	cfg.NoPadding = true // unpadded locks share lines with data
	for _, id := range []string{"tatas-counter", "tatas-single-q"} {
		k, ok := kernels.ByID(id)
		if !ok {
			return nil, fmt.Errorf("missing kernel %s", id)
		}
		for _, variant := range []struct {
			prot  machine.Protocol
			line  bool
			label string
		}{
			{machine.MESI, false, ""},
			{machine.DeNovoSync, false, "DS/word"},
			{machine.DeNovoSync, true, "DS/line"},
		} {
			p := ParamsFor(cores)
			p.LineGranularity = variant.line
			m := machine.New(p, variant.prot, alloc.New())
			rs, err := kernels.Run(k, m, cfg)
			if err != nil {
				return nil, err
			}
			f.Rows = append(f.Rows, Row{Workload: id + " (unpadded)", Protocol: variant.prot, Label: variant.label, Stats: rs})
		}
	}
	// LU: the false-sharing application.
	lu, _ := apps.ByID("lu")
	for _, variant := range []struct {
		prot  machine.Protocol
		line  bool
		label string
	}{
		{machine.MESI, false, ""},
		{machine.DeNovoSync, false, "DS/word"},
		{machine.DeNovoSync, true, "DS/line"},
	} {
		p := ParamsFor(lu.DefaultCores)
		p.LineGranularity = variant.line
		m := machine.New(p, variant.prot, alloc.New())
		rs, err := apps.Run(lu, m, o.scale())
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, Row{Workload: lu.Name, Protocol: variant.prot, Label: variant.label, Stats: rs})
	}
	return f, nil
}
