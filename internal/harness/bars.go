package harness

import (
	"fmt"
	"io"
	"strings"

	"denovosync/internal/machine"
	"denovosync/internal/proto"
	"denovosync/internal/stats"
)

// Stacked-bar rendering: the same visual shape as the paper's figures,
// in ASCII. Each bar is normalized to the workload's MESI total; one
// character of bar is barUnit percent.

const (
	barUnit  = 2.5 // percent of MESI per character
	barWidth = 68  // clip very tall bars (e.g. pathological DS0 runs)
)

// timeGlyphs maps execution-time components to bar characters.
var timeGlyphs = [stats.NumTimeComponents]byte{'.', 'c', 'm', 's', 'h', 'B'}

// trafficGlyphs maps traffic classes to bar characters.
var trafficGlyphs = [proto.NumMsgClasses]byte{'L', 'S', 'w', 'I', 'y'}

// RenderTimeBars draws the execution-time stacked bars.
func (f *Figure) RenderTimeBars(w io.Writer) {
	fmt.Fprintf(w, "%s — execution time, stacked bars (MESI = 100%%; 1 char = %.1f%%)\n", f.heading(), barUnit)
	fmt.Fprintf(w, "legend: . non-synch   c compute   m memory stall   s sw backoff   h hw backoff   B barrier\n\n")
	for _, wl := range f.Workloads() {
		base := f.baseline(wl)
		for _, r := range f.Rows {
			if r.Workload != wl {
				continue
			}
			norm := 1.0
			if base != nil && base.Stats.ExecTime > 0 {
				norm = float64(base.Stats.ExecTime)
			}
			var segs []float64
			for c := stats.TimeComponent(0); c < stats.NumTimeComponents; c++ {
				segs = append(segs, r.Stats.Time[c]/norm*100)
			}
			total := float64(r.Stats.ExecTime) / norm * 100
			fmt.Fprintf(w, "%-14s %-12s |%s %5.1f%%\n", labelFor(r, wl, base), r.label(),
				bar(segs, timeGlyphs[:]), total)
		}
		fmt.Fprintln(w)
	}
}

// RenderTrafficBars draws the network-traffic stacked bars.
func (f *Figure) RenderTrafficBars(w io.Writer) {
	fmt.Fprintf(w, "%s — network traffic, stacked bars (MESI = 100%%; 1 char = %.1f%%)\n", f.heading(), barUnit)
	fmt.Fprintf(w, "legend: L data load   S data store   w writeback   I invalidation   y synchronization\n\n")
	for _, wl := range f.Workloads() {
		base := f.baseline(wl)
		for _, r := range f.Rows {
			if r.Workload != wl {
				continue
			}
			norm := 1.0
			if base != nil && base.Stats.TotalTraffic > 0 {
				norm = float64(base.Stats.TotalTraffic)
			}
			var segs []float64
			for cl := proto.MsgClass(0); cl < proto.NumMsgClasses; cl++ {
				segs = append(segs, float64(r.Stats.Traffic[cl])/norm*100)
			}
			total := float64(r.Stats.TotalTraffic) / norm * 100
			fmt.Fprintf(w, "%-14s %-12s |%s %5.1f%%\n", labelFor(r, wl, base), r.label(),
				bar(segs, trafficGlyphs[:]), total)
		}
		fmt.Fprintln(w)
	}
}

// RenderBars draws both figures.
func (f *Figure) RenderBars(w io.Writer) {
	f.RenderTimeBars(w)
	fmt.Fprintln(w)
	f.RenderTrafficBars(w)
}

func labelFor(r Row, wl string, base *Row) string {
	if r.Protocol == machine.MESI || base == nil {
		return wl
	}
	return ""
}

// bar builds one stacked bar from per-segment percentages.
func bar(segs []float64, glyphs []byte) string {
	var b strings.Builder
	carry := 0.0
	for i, pct := range segs {
		carry += pct / barUnit
		n := int(carry + 0.5)
		carry -= float64(n)
		if b.Len()+n > barWidth {
			n = barWidth - b.Len()
		}
		if n > 0 {
			b.WriteString(strings.Repeat(string(glyphs[i]), n))
		}
	}
	if b.Len() >= barWidth {
		return b.String()[:barWidth-1] + ">"
	}
	return b.String()
}
