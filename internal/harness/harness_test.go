package harness

import (
	"strings"
	"testing"

	"denovosync/internal/kernels"
	"denovosync/internal/machine"
)

var quick = Options{Scale: 25} // 4 iterations per kernel

func TestParamsFor(t *testing.T) {
	if ParamsFor(16).Cores != 16 || ParamsFor(64).Cores != 64 {
		t.Fatal("ParamsFor broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ParamsFor(32) did not panic")
		}
	}()
	ParamsFor(32)
}

func TestRunKernelGroupShape(t *testing.T) {
	f, err := RunKernelGroup("t", "test", kernels.Barriers, 16, quick.kernelCfg(), DefaultProtocols())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 6*3 {
		t.Fatalf("rows = %d, want 18", len(f.Rows))
	}
	if wls := f.Workloads(); len(wls) != 6 {
		t.Fatalf("workloads = %v", wls)
	}
	for _, wl := range f.Workloads() {
		if f.baseline(wl) == nil {
			t.Fatalf("no MESI baseline for %q", wl)
		}
	}
}

// TestRunKernelGroupRecoversPanics: a panic inside a figure's worker
// goroutine (here: ParamsFor on an unsupported core count) must surface
// as that row's error, not crash the process.
func TestRunKernelGroupRecoversPanics(t *testing.T) {
	_, err := RunKernelGroup("t", "test", kernels.Barriers, 12, quick.kernelCfg(), DefaultProtocols())
	if err == nil {
		t.Fatal("want an error from the panicking rows")
	}
	for _, want := range []string{"panic", "unsupported core count"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	f, err := Fig6(16, quick)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"central (UB)", "n-ary", "100.0", "barrier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	var csv strings.Builder
	f.CSV(&csv)
	head := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"figure", "exec_cycles", "traffic_SYNCH", "time_hw_backoff"} {
		if !strings.Contains(head, col) {
			t.Fatalf("CSV header missing %q: %s", col, head)
		}
	}
}

func TestGeoMean(t *testing.T) {
	f, err := Fig4(16, quick)
	if err != nil {
		t.Fatal(err)
	}
	e, tr := f.GeoMeanVsMESI(machine.DeNovoSync)
	if e < 0.3 || e > 3 {
		t.Fatalf("implausible exec geomean %f", e)
	}
	if tr <= 0 || tr > 1.2 {
		t.Fatalf("implausible traffic geomean %f", tr)
	}
	// MESI vs itself is exactly 1.
	if e, tr := f.GeoMeanVsMESI(machine.MESI); e != 1 || tr != 1 {
		t.Fatalf("MESI self-ratio = %f, %f", e, tr)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite skipped in -short mode")
	}
	for name, fn := range map[string]func(int, Options) (*Figure, error){
		"swbackoff": AblationSWBackoff,
		"padding":   AblationPadding,
		"eqchecks":  AblationEqChecks,
		"hwparams":  AblationBackoffParams,
	} {
		f, err := fn(16, quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(f.Rows) == 0 {
			t.Fatalf("%s: empty figure", name)
		}
	}
}

func TestFig7SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 skipped in -short mode")
	}
	f, err := Fig7(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 13*2 {
		t.Fatalf("rows = %d, want 26", len(f.Rows))
	}
	if len(f.Workloads()) != 13 {
		t.Fatalf("workloads = %d", len(f.Workloads()))
	}
}

func TestRenderBars(t *testing.T) {
	f, err := Fig4(16, quick)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f.RenderBars(&sb)
	out := sb.String()
	for _, want := range []string{"stacked bars", "legend:", "100.0%", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bars missing %q", want)
		}
	}
	// Every MESI bar totals 100.0%.
	if strings.Count(out, "100.0%") < 6 {
		t.Fatalf("expected a 100%% MESI bar per workload:\n%s", out)
	}
}

func TestAblationInvalidateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	f, err := AblationInvalidateAll(16, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(f.Rows))
	}
	// The invalidate-all fallback must never beat region annotations on
	// traffic for the data-heavy heap kernel (it refetches more).
	var region, all uint64
	for _, r := range f.Rows {
		if r.Workload == "tatas-heap" {
			switch r.Label {
			case "DS/regions":
				region = r.Stats.TotalTraffic
			case "DS/inv-all":
				all = r.Stats.TotalTraffic
			}
		}
	}
	if region == 0 || all == 0 {
		t.Fatal("missing variant rows")
	}
	if all < region {
		t.Fatalf("invalidate-all produced less traffic (%d) than regions (%d)", all, region)
	}
}

func TestClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims need a real figure; skipped in -short mode")
	}
	f, err := Fig4(16, Options{Scale: 10})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	pass, dev := CheckClaims(f, &sb)
	if pass+dev != len(Fig4Claims(16)) {
		t.Fatalf("claim count mismatch: %d+%d", pass, dev)
	}
	out := sb.String()
	if !strings.Contains(out, "fig4-16c.parity") {
		t.Fatalf("claims output missing IDs:\n%s", out)
	}
	// Ablation figures have no claims.
	if cs := ClaimsFor(&Figure{ID: "Ablation: x"}); cs != nil {
		t.Fatal("ablation figure matched claims")
	}
}
