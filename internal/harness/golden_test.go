package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden CSVs from the current simulator. Only do
// this deliberately (see EXPERIMENTS.md): the goldens pin the simulated
// results bit-for-bit, so engine optimizations that claim to be
// behavior-preserving must pass WITHOUT regenerating.
var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// goldenFigures is the reduced-scale reproduction set: Figures 3-6 at 16
// cores plus Figure 7 (its own per-app machine sizes), all at Scale 10.
func goldenFigures() []struct {
	file string
	run  func() (*Figure, error)
} {
	o := Options{Scale: 10}
	return []struct {
		file string
		run  func() (*Figure, error)
	}{
		{"fig3_16c_scale10.csv", func() (*Figure, error) { return Fig3(16, o) }},
		{"fig4_16c_scale10.csv", func() (*Figure, error) { return Fig4(16, o) }},
		{"fig5_16c_scale10.csv", func() (*Figure, error) { return Fig5(16, o) }},
		{"fig6_16c_scale10.csv", func() (*Figure, error) { return Fig6(16, o) }},
		{"fig7_scale10.csv", func() (*Figure, error) { return Fig7(o) }},
	}
}

// TestGoldenFigures pins the exact CSV output of the reduced-scale paper
// figures. Any engine or protocol change that alters simulated timing,
// traffic, or event ordering shows up here as a byte-level diff.
func TestGoldenFigures(t *testing.T) {
	for _, g := range goldenFigures() {
		g := g
		t.Run(g.file, func(t *testing.T) {
			t.Parallel()
			f, err := g.run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			f.CSV(&buf)
			path := filepath.Join("testdata", g.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s diverged from golden.\n%s", g.file, firstDiff(want, buf.Bytes()))
			}
		})
	}
}

// TestGoldenFiguresParallel: the same reduced-scale figures rendered by a
// fully-partitioned machine (DefaultLPs = 16, one LP per tile at 16
// cores, clamped per machine size) must produce the serial golden CSVs
// byte-for-byte — the harness-level leg of the pdes differential battery.
// Top-level tests run sequentially and parallel subtests finish before
// their parent returns, so mutating the package knob here cannot leak
// into TestGoldenFigures.
func TestGoldenFiguresParallel(t *testing.T) {
	figs := goldenFigures()
	if testing.Short() {
		figs = figs[:1] // fig3 only; CI runs the full set under -race
	}
	DefaultLPs = 16
	t.Cleanup(func() { DefaultLPs = 0 })
	for _, g := range figs {
		g := g
		t.Run(g.file, func(t *testing.T) {
			t.Parallel()
			f, err := g.run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			f.CSV(&buf)
			want, err := os.ReadFile(filepath.Join("testdata", g.file))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFigures with -update first): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("parallel %s diverged from serial golden.\n%s", g.file, firstDiff(want, buf.Bytes()))
			}
		})
	}
}

// firstDiff renders the first differing line of two CSV bodies.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: want %d, got %d", len(wl), len(gl))
}
