package harness

import (
	"fmt"
	"sort"

	"denovosync/internal/machine"
)

// NamedConfig is a first-class machine configuration: a stable name for
// one of the paper's Table 1 machines, so CLIs, CI jobs and benchmarks
// can select a machine by slug instead of re-deriving it from a core
// count at every call site.
type NamedConfig struct {
	Name  string // stable slug, e.g. "mesh8x8-64c"
	Cores int
	MeshW int
	MeshH int
	Desc  string
}

// Params returns the configuration's machine.Params with the harness
// defaults (watchdog budget, LP partitioning) applied — the same values
// ParamsFor produces for the configuration's core count.
func (c NamedConfig) Params() machine.Params {
	return ParamsFor(c.Cores)
}

// The registry. Both entries are the paper's Table 1 machines; the
// 64-core 8x8 mesh is the configuration every application figure
// (Figure 7) and the large-machine kernel columns run on.
var namedConfigs = map[string]NamedConfig{
	"mesh4x4-16c": {
		Name: "mesh4x4-16c", Cores: 16, MeshW: 4, MeshH: 4,
		Desc: "16 cores on a 4x4 mesh (Table 1, small machine)",
	},
	"mesh8x8-64c": {
		Name: "mesh8x8-64c", Cores: 64, MeshW: 8, MeshH: 8,
		Desc: "64 cores on an 8x8 mesh (Table 1, large machine)",
	},
}

// Configs lists every named configuration, ordered by core count.
func Configs() []NamedConfig {
	out := make([]NamedConfig, 0, len(namedConfigs))
	for _, c := range namedConfigs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cores < out[j].Cores })
	return out
}

// ConfigByName resolves a configuration slug.
func ConfigByName(name string) (NamedConfig, error) {
	c, ok := namedConfigs[name]
	if !ok {
		names := make([]string, 0, len(namedConfigs))
		for n := range namedConfigs {
			names = append(names, n)
		}
		sort.Strings(names)
		return NamedConfig{}, fmt.Errorf("harness: unknown config %q (want one of %v)", name, names)
	}
	return c, nil
}
