package harness

import (
	"fmt"
	"io"
	"strings"

	"denovosync/internal/machine"
)

// A Claim is one qualitative result from the paper's evaluation, encoded
// as an executable predicate over a reproduced figure. Checking claims
// operationalizes "the shape holds": who wins, where the outliers are,
// and which mechanism shows up in the breakdowns.
type Claim struct {
	ID     string // stable identifier, e.g. "fig3.ds0-beats-mesi"
	Source string // the paper statement being checked (§ reference)
	Check  func(f *Figure) (ok bool, detail string)
}

// ratio returns prot's exec or traffic ratio vs MESI for workload wl
// (0 if missing).
func (f *Figure) ratio(wl string, prot machine.Protocol, traffic bool) float64 {
	base := f.baseline(wl)
	if base == nil {
		return 0
	}
	for _, r := range f.Rows {
		if r.Workload == wl && r.Protocol == prot && r.Label == "" {
			if traffic {
				if base.Stats.TotalTraffic == 0 {
					return 0
				}
				return float64(r.Stats.TotalTraffic) / float64(base.Stats.TotalTraffic)
			}
			if base.Stats.ExecTime == 0 {
				return 0
			}
			return float64(r.Stats.ExecTime) / float64(base.Stats.ExecTime)
		}
	}
	return 0
}

// countWhere counts workloads whose ratio satisfies pred.
func (f *Figure) countWhere(prot machine.Protocol, traffic bool, pred func(float64) bool) (n, total int) {
	for _, wl := range f.Workloads() {
		r := f.ratio(wl, prot, traffic)
		if r == 0 {
			continue
		}
		total++
		if pred(r) {
			n++
		}
	}
	return n, total
}

// Fig3Claims: §7.1.1 — TATAS lock kernels.
func Fig3Claims(cores int) []Claim {
	return []Claim{
		{
			ID:     fmt.Sprintf("fig3-%dc.ds0-beats-mesi", cores),
			Source: "§7.1.1: DeNovoSync0 outperforms MESI on both systems (except large CS at 16 cores)",
			Check: func(f *Figure) (bool, string) {
				n, total := f.countWhere(machine.DeNovoSync0, false, func(r float64) bool { return r < 1.0 })
				return n >= total-1, fmt.Sprintf("DS0 faster on %d/%d kernels", n, total)
			},
		},
		{
			ID:     fmt.Sprintf("fig3-%dc.ds-beats-ds0", cores),
			Source: "§7.1.1: DeNovoSync is comparable or better than DeNovoSync0 for all TATAS kernels",
			Check: func(f *Figure) (bool, string) {
				bad := 0
				for _, wl := range f.Workloads() {
					if f.ratio(wl, machine.DeNovoSync, false) > f.ratio(wl, machine.DeNovoSync0, false)*1.05 {
						bad++
					}
				}
				return bad == 0, fmt.Sprintf("%d kernels where DS > 1.05x DS0", bad)
			},
		},
		{
			ID:     fmt.Sprintf("fig3-%dc.traffic", cores),
			Source: "§7.1.1: DeNovoSync0 reduces network traffic (no invalidations; word-granularity responses)",
			Check: func(f *Figure) (bool, string) {
				n, total := f.countWhere(machine.DeNovoSync0, true, func(r float64) bool { return r < 1.0 })
				return n == total, fmt.Sprintf("DS0 traffic lower on %d/%d kernels", n, total)
			},
		},
	}
}

// Fig4Claims: §7.1.2 — array lock kernels.
func Fig4Claims(cores int) []Claim {
	return []Claim{
		{
			ID:     fmt.Sprintf("fig4-%dc.parity", cores),
			Source: "§7.1.2: comparable or better performance except heap",
			Check: func(f *Figure) (bool, string) {
				bad := []string{}
				for _, wl := range f.Workloads() {
					if wl == "heap" {
						continue
					}
					if f.ratio(wl, machine.DeNovoSync, false) > 1.10 {
						bad = append(bad, wl)
					}
				}
				return len(bad) == 0, "DS >1.10x on: " + strings.Join(bad, ",")
			},
		},
		{
			ID:     fmt.Sprintf("fig4-%dc.heap-worse", cores),
			Source: "§7.1.2: heap performs worse on DeNovo (conservative static self-invalidations)",
			Check: func(f *Figure) (bool, string) {
				r := f.ratio("heap", machine.DeNovoSync, false)
				return r > 1.0, fmt.Sprintf("heap DS/M = %.2fx", r)
			},
		},
		{
			ID:     fmt.Sprintf("fig4-%dc.no-backoff-effect", cores),
			Source: "§7.1.2: the single-reader design of array locks does not benefit from backoff (DS ≈ DS0)",
			Check: func(f *Figure) (bool, string) {
				worst := 0.0
				for _, wl := range f.Workloads() {
					d := f.ratio(wl, machine.DeNovoSync, false) / f.ratio(wl, machine.DeNovoSync0, false)
					if d > worst {
						worst = d
					}
				}
				return worst < 1.08, fmt.Sprintf("max DS/DS0 = %.2fx", worst)
			},
		},
		{
			ID:     fmt.Sprintf("fig4-%dc.traffic", cores),
			Source: "§7.1.2: reduces network traffic by ~64% on average",
			Check: func(f *Figure) (bool, string) {
				_, tr := f.GeoMeanVsMESI(machine.DeNovoSync)
				return tr < 0.6, fmt.Sprintf("DS traffic geomean %.2fx", tr)
			},
		},
	}
}

// Fig5Claims: §7.1.3 — non-blocking algorithms.
func Fig5Claims(cores int) []Claim {
	claims := []Claim{
		{
			ID:     fmt.Sprintf("fig5-%dc.traffic", cores),
			Source: "§7.1.3: DeNovoSync traffic well below MESI (54-60% better)",
			Check: func(f *Figure) (bool, string) {
				_, tr := f.GeoMeanVsMESI(machine.DeNovoSync)
				return tr < 0.7, fmt.Sprintf("DS traffic geomean %.2fx", tr)
			},
		},
	}
	if cores >= 64 {
		claims = append(claims,
			Claim{
				ID:     "fig5-64c.ds0-pathology",
				Source: "§7.1.3: DeNovoSync0 performs worse than MESI on some kernels at 64 cores (read-registration ping-pong)",
				Check: func(f *Figure) (bool, string) {
					n, total := f.countWhere(machine.DeNovoSync0, false, func(r float64) bool { return r > 1.0 })
					return n >= 1, fmt.Sprintf("DS0 slower than MESI on %d/%d kernels", n, total)
				},
			},
			Claim{
				ID:     "fig5-64c.backoff-recovers",
				Source: "§7.1.3: DeNovoSync performs much better than DeNovoSync0 at 64 cores (30% average)",
				Check: func(f *Figure) (bool, string) {
					e0, _ := f.GeoMeanVsMESI(machine.DeNovoSync0)
					e, _ := f.GeoMeanVsMESI(machine.DeNovoSync)
					return e < e0*0.9, fmt.Sprintf("DS %.2fx vs DS0 %.2fx", e, e0)
				},
			})
	}
	return claims
}

// Fig6Claims: §7.1.4 — barriers.
func Fig6Claims(cores int) []Claim {
	return []Claim{
		{
			ID:     fmt.Sprintf("fig6-%dc.tree-parity", cores),
			Source: "§7.1.4: all protocols behave similarly for tree barriers (single producer/consumer per flag)",
			Check: func(f *Figure) (bool, string) {
				worst := 0.0
				for _, wl := range []string{"tree", "n-ary", "tree (UB)", "n-ary (UB)"} {
					if r := f.ratio(wl, machine.DeNovoSync, false); r > worst {
						worst = r
					}
				}
				return worst < 1.10, fmt.Sprintf("worst tree-family DS/M = %.2fx", worst)
			},
		},
		{
			ID:     fmt.Sprintf("fig6-%dc.tree-traffic", cores),
			Source: "§7.1.4: DeNovo much lower traffic for tree barriers (67% average)",
			Check: func(f *Figure) (bool, string) {
				worst := 0.0
				for _, wl := range []string{"tree", "n-ary", "tree (UB)", "n-ary (UB)"} {
					if r := f.ratio(wl, machine.DeNovoSync, true); r > worst {
						worst = r
					}
				}
				return worst < 0.6, fmt.Sprintf("worst tree-family DS/M traffic = %.2fx", worst)
			},
		},
		{
			ID:     fmt.Sprintf("fig6-%dc.central-ds-damps", cores),
			Source: "§7.1.4: DeNovoSync mitigates the centralized barrier's registration ping-pong vs DeNovoSync0",
			Check: func(f *Figure) (bool, string) {
				t0 := f.ratio("central (UB)", machine.DeNovoSync0, true)
				t := f.ratio("central (UB)", machine.DeNovoSync, true)
				return t <= t0*1.02, fmt.Sprintf("central-UB traffic DS %.2fx vs DS0 %.2fx", t, t0)
			},
		},
	}
}

// Fig7Claims: §7.2 — applications.
func Fig7Claims() []Claim {
	return []Claim{
		{
			ID:     "fig7.comparable-time",
			Source: "§7.2: DeNovoSync provides comparable execution time (better on average)",
			Check: func(f *Figure) (bool, string) {
				e, _ := f.GeoMeanVsMESI(machine.DeNovoSync)
				return e < 1.05, fmt.Sprintf("DS exec geomean %.2fx", e)
			},
		},
		{
			ID:     "fig7.lower-traffic",
			Source: "§7.2: DeNovoSync is 24% better on network traffic on average",
			Check: func(f *Figure) (bool, string) {
				_, tr := f.GeoMeanVsMESI(machine.DeNovoSync)
				return tr < 0.9, fmt.Sprintf("DS traffic geomean %.2fx", tr)
			},
		},
		{
			ID:     "fig7.winners",
			Source: "§7.2: noticeably better for LU, water, ocean, and ferret",
			Check: func(f *Figure) (bool, string) {
				bad := []string{}
				for _, wl := range []string{"LU", "water", "ocean", "ferret"} {
					if f.ratio(wl, machine.DeNovoSync, false) > 0.95 {
						bad = append(bad, wl)
					}
				}
				return len(bad) == 0, "not noticeably better on: " + strings.Join(bad, ",")
			},
		},
		{
			ID:     "fig7.barrier-only-parity",
			Source: "§7.2: barrier-only applications are comparable (blackscholes, swaptions, FFT)",
			Check: func(f *Figure) (bool, string) {
				worst, which := 0.0, ""
				for _, wl := range []string{"blackscholes", "swaptions", "FFT"} {
					if r := f.ratio(wl, machine.DeNovoSync, false); r > worst {
						worst, which = r, wl
					}
				}
				return worst < 1.20, fmt.Sprintf("worst = %s at %.2fx", which, worst)
			},
		},
	}
}

// ClaimsFor returns the claim set matching a figure produced by
// Fig3..Fig7 (empty for ablations).
func ClaimsFor(f *Figure) []Claim {
	switch {
	case strings.HasPrefix(f.ID, "Figure 3"):
		return Fig3Claims(f.Cores)
	case strings.HasPrefix(f.ID, "Figure 4"):
		return Fig4Claims(f.Cores)
	case strings.HasPrefix(f.ID, "Figure 5"):
		return Fig5Claims(f.Cores)
	case strings.HasPrefix(f.ID, "Figure 6"):
		return Fig6Claims(f.Cores)
	case strings.HasPrefix(f.ID, "Figure 7"):
		return Fig7Claims()
	}
	return nil
}

// CheckClaims evaluates the figure's claims and writes one verdict line
// each; it returns the pass/deviation counts.
func CheckClaims(f *Figure, w io.Writer) (pass, deviations int) {
	for _, c := range ClaimsFor(f) {
		ok, detail := c.Check(f)
		verdict := "HOLDS    "
		if !ok {
			verdict = "DEVIATES "
			deviations++
		} else {
			pass++
		}
		fmt.Fprintf(w, "%s %-28s %s (%s)\n", verdict, c.ID, c.Source, detail)
	}
	return pass, deviations
}
