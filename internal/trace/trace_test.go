package trace

import (
	"strings"
	"testing"

	"denovosync/internal/proto"
)

func TestTracerFormatsAndFilters(t *testing.T) {
	var sb strings.Builder
	tr := New(&sb, proto.ClassSynch, 0)
	tr.Message(100, 1, 2, proto.ClassSynch, 4)
	tr.Message(101, 1, 2, proto.ClassLD, 36) // filtered out
	tr.Message(102, 3, 0, proto.ClassSynch, 6)
	if tr.Count() != 2 {
		t.Fatalf("count = %d, want 2", tr.Count())
	}
	out := sb.String()
	if !strings.Contains(out, "SYNCH") || strings.Contains(out, "LD") {
		t.Fatalf("filter broken:\n%s", out)
	}
	if !strings.Contains(out, "n01 -> n02") {
		t.Fatalf("route missing:\n%s", out)
	}
}

func TestTracerLimit(t *testing.T) {
	var sb strings.Builder
	tr := New(&sb, proto.NumMsgClasses, 2)
	for i := 0; i < 5; i++ {
		tr.Message(1, 0, 1, proto.ClassLD, 4)
	}
	if tr.Count() != 2 {
		t.Fatalf("limit ignored: %d", tr.Count())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Message(1, 0, 1, proto.ClassLD, 4) // must not panic
	if tr.Count() != 0 {
		t.Fatal("nil tracer counted")
	}
}

func TestDisabledTracer(t *testing.T) {
	tr := &Tracer{}
	tr.Message(1, 0, 1, proto.ClassLD, 4)
	if tr.Count() != 0 {
		t.Fatal("zero-value tracer emitted")
	}
}
