package trace

import (
	"strings"
	"testing"
)

const validTrace = `{"schema":"denovosync.trace.v1","cores":2,"arena_words":64}
{"c":0,"op":"syst","a":0,"v":1}
{"c":1,"op":"syld","a":0}
{"c":1,"op":"cas","a":1,"v":2,"old":0}
`

func TestIngestValid(t *testing.T) {
	p, err := Ingest(strings.NewReader(validTrace))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores != 2 || p.ArenaWords != 64 {
		t.Fatalf("header: cores=%d arena=%d", p.Cores, p.ArenaWords)
	}
	if len(p.Streams[0]) != 1 || len(p.Streams[1]) != 2 {
		t.Fatalf("streams: %d/%d ops", len(p.Streams[0]), len(p.Streams[1]))
	}
	if op := p.Streams[1][1]; op.Op != "cas" || op.Val != 2 || op.Old != 0 {
		t.Fatalf("cas op mangled: %+v", op)
	}
}

func TestIngestRejections(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty input"},
		{"bad header json", "{", "header"},
		{"wrong schema", `{"schema":"trace.v0","cores":1,"arena_words":1}`, "schema"},
		{"zero cores", `{"schema":"denovosync.trace.v1","cores":0,"arena_words":1}`, "cores"},
		{"huge arena", `{"schema":"denovosync.trace.v1","cores":1,"arena_words":9999999999}`, "arena"},
		{"unknown header field", `{"schema":"denovosync.trace.v1","cores":1,"arena_words":1,"x":1}`, "header"},
		{"no ops", `{"schema":"denovosync.trace.v1","cores":1,"arena_words":1}`, "no operations"},
		{"unknown op", validTrace + `{"c":0,"op":"fence","a":0}`, "unknown op"},
		{"core out of range", validTrace + `{"c":2,"op":"ld","a":0}`, "core 2"},
		{"addr out of range", validTrace + `{"c":0,"op":"ld","a":64}`, "outside"},
		{"unknown op field", validTrace + `{"c":0,"op":"ld","a":0,"t":1}`, "unknown field"},
		{"trailing data", validTrace + `{"c":0,"op":"ld","a":0}{"c":0,"op":"ld","a":0}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Ingest(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Ingest accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzTraceIngest hammers the external-trace trust boundary: arbitrary
// bytes must produce an error or an in-bounds program, never a panic.
func FuzzTraceIngest(f *testing.F) {
	f.Add([]byte(validTrace))
	f.Add([]byte(`{"schema":"denovosync.trace.v1","cores":16,"arena_words":2097152}` + "\n" + `{"c":15,"op":"xchg","a":2097151,"v":18446744073709551615}`))
	f.Add([]byte(`{"schema":"denovosync.trace.v1"`))
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Ingest(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if p.Cores < 1 || p.Cores > MaxIngestCores || len(p.Streams) != p.Cores {
			t.Fatalf("accepted program out of bounds: cores=%d streams=%d", p.Cores, len(p.Streams))
		}
		total := 0
		for c, stream := range p.Streams {
			for _, op := range stream {
				total++
				if op.Core != c {
					t.Fatalf("op filed under core %d but records core %d", c, op.Core)
				}
				if op.Addr < 0 || op.Addr >= p.ArenaWords {
					t.Fatalf("accepted op outside the arena: %+v", op)
				}
			}
		}
		if total == 0 || total > MaxIngestOps {
			t.Fatalf("accepted program with %d ops", total)
		}
	})
}
