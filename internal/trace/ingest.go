package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// IngestSchema is the versioned identifier of the external trace format:
// JSONL, one header object followed by one op object per line. The
// format carries per-core memory/sync operation streams captured outside
// the simulator (e.g. from an instrumented application), which the
// scenario fuzzer converts into replayable program scenarios.
//
//	{"schema":"denovosync.trace.v1","cores":4,"arena_words":1024}
//	{"c":0,"op":"syst","a":0,"v":1}
//	{"c":1,"op":"syld","a":0}
//	...
const IngestSchema = "denovosync.trace.v1"

// Op kinds accepted in a trace line. These deliberately mirror the
// scenario schema's op vocabulary minus the synthetic ops (compute,
// sweep) that have no counterpart in a captured memory trace.
var ingestOps = map[string]bool{
	"ld": true, "st": true, "syld": true, "syst": true,
	"fa": true, "cas": true, "tas": true, "xchg": true,
}

// TraceOp is one captured operation: core c performed op on arena word a
// with operand v (and expected value old, for cas).
type TraceOp struct {
	Core int    `json:"c"`
	Op   string `json:"op"`
	Addr int    `json:"a"`
	Val  uint64 `json:"v,omitempty"`
	Old  uint64 `json:"old,omitempty"`
}

// header is the first line of a trace file.
type header struct {
	Schema     string `json:"schema"`
	Cores      int    `json:"cores"`
	ArenaWords int    `json:"arena_words"`
}

// Program is a parsed trace: per-core operation streams over one shared
// arena. Streams preserve each core's program order; cross-core
// interleaving is deliberately not represented — the simulator's own
// timing (plus fuzzed jitter) decides it, which is the point of
// replaying a trace through the machine rather than linearizing it.
type Program struct {
	Cores      int
	ArenaWords int
	Streams    [][]TraceOp // indexed by core
}

// ingestLimits bound a parsed trace; they are intentionally the same
// order of magnitude as the scenario schema's, so every ingestible trace
// converts into a valid scenario.
const (
	MaxIngestCores = 16
	MaxIngestWords = 1 << 21
	MaxIngestOps   = 1 << 20
)

// Ingest strictly parses a trace.v1 stream. Malformed input of any kind
// — bad JSON, unknown fields, unknown ops, out-of-range cores or
// addresses, a missing or wrong header — returns an error and never
// panics: this is the trust boundary for externally produced files, and
// FuzzTraceIngest hammers it.
func Ingest(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input (want a %s header line)", IngestSchema)
	}
	var h header
	if err := strictUnmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if h.Schema != IngestSchema {
		return nil, fmt.Errorf("trace: schema %q, want %q", h.Schema, IngestSchema)
	}
	if h.Cores < 1 || h.Cores > MaxIngestCores {
		return nil, fmt.Errorf("trace: cores %d out of range [1, %d]", h.Cores, MaxIngestCores)
	}
	if h.ArenaWords < 1 || h.ArenaWords > MaxIngestWords {
		return nil, fmt.Errorf("trace: arena %d words out of range [1, %d]", h.ArenaWords, MaxIngestWords)
	}

	p := &Program{Cores: h.Cores, ArenaWords: h.ArenaWords, Streams: make([][]TraceOp, h.Cores)}
	total, line := 0, 1
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var op TraceOp
		if err := strictUnmarshal(b, &op); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if !ingestOps[op.Op] {
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, op.Op)
		}
		if op.Core < 0 || op.Core >= h.Cores {
			return nil, fmt.Errorf("trace: line %d: core %d out of range [0, %d)", line, op.Core, h.Cores)
		}
		if op.Addr < 0 || op.Addr >= h.ArenaWords {
			return nil, fmt.Errorf("trace: line %d: address %d outside the %d-word arena", line, op.Addr, h.ArenaWords)
		}
		if total++; total > MaxIngestOps {
			return nil, fmt.Errorf("trace: more than %d ops", MaxIngestOps)
		}
		p.Streams[op.Core] = append(p.Streams[op.Core], op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	if total == 0 {
		return nil, fmt.Errorf("trace: no operations after the header")
	}
	return p, nil
}

// strictUnmarshal decodes one JSON object rejecting unknown fields and
// trailing data.
func strictUnmarshal(b []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}
