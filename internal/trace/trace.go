// Package trace provides an optional message-level tracer for debugging
// protocol behavior: every network message (the complete protocol-visible
// activity of both coherence protocols) is logged with its cycle, route,
// traffic class and size. Tracing costs nothing when disabled.
package trace

import (
	"fmt"
	"io"
	"sync"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Tracer formats simulator events to a writer. The zero value is
// disabled; use New to attach a writer.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	classes proto.MsgClass // bitmask-free filter: NumMsgClasses = all
	limit   int            // stop after this many events (0 = unlimited)
	count   int
}

// New returns a tracer writing to w. class filters to one traffic class
// (pass proto.NumMsgClasses for all). limit caps the number of events.
func New(w io.Writer, class proto.MsgClass, limit int) *Tracer {
	return &Tracer{w: w, classes: class, limit: limit}
}

// Message logs one network message; wired into noc.Network.
func (t *Tracer) Message(at sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int) {
	if t == nil || t.w == nil {
		return
	}
	if t.classes != proto.NumMsgClasses && class != t.classes {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && t.count >= t.limit {
		return
	}
	t.count++
	fmt.Fprintf(t.w, "%10d  %-5s  n%02d -> n%02d  %2d flits\n", at, class, src, dst, flits)
}

// Count returns the number of events emitted.
func (t *Tracer) Count() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
