package denovo

import (
	"sort"

	"denovosync/internal/cache"
	"denovosync/internal/proto"
)

// Observer hooks: read-only views of controller and registry state for
// the live invariant monitor and the watchdog's diagnostic snapshot
// (internal/chaos, internal/machine). Observers run on the engine
// goroutine between protocol events and must not mutate what they see.

// OutstandingWords returns the coherence-unit base addresses with an
// outstanding MSHR transaction (registration or data read in flight),
// sorted. A word listed here is mid-transition and exempt from
// stable-state invariant checks.
func (c *L1) OutstandingWords() []proto.Addr {
	out := make([]proto.Addr, 0, len(c.txns))
	for word := range c.txns { //simlint:allow determinism: keys are sorted before use
		out = append(out, word)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParkedRequesters returns the cores whose forwarded registrations are
// parked in this L1's MSHR entry for word (the distributed registration
// queue), in arrival order. Empty if the word has no outstanding
// transaction.
func (c *L1) ParkedRequesters(word proto.Addr) []proto.CoreID {
	t := c.txns[word]
	if t == nil {
		return nil
	}
	out := make([]proto.CoreID, 0, len(t.parked))
	for _, p := range t.parked {
		out = append(out, p.from.id)
	}
	return out
}

// PendingWritebacks returns the words whose eviction writeback has not
// been acked by the registry yet, sorted. Those words are mid-transition
// and exempt from stable-state invariant checks.
func (c *L1) PendingWritebacks() []proto.Addr {
	var out []proto.Addr
	for word := range c.wbPending { //simlint:allow determinism: keys are sorted before use
		out = append(out, word)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PendingStoreCount returns the number of issued-but-uncommitted
// non-blocking stores.
func (c *L1) PendingStoreCount() int { return c.pendingStores }

// ForEachLine visits every cached line in deterministic order.
func (c *L1) ForEachLine(fn func(l *cache.Line)) { c.cache.ForEach(fn) }

// HoldsRegistered reports whether this L1 currently caches word in the
// Registered state.
func (c *L1) HoldsRegistered(word proto.Addr) bool {
	l := c.cache.Lookup(word)
	return l != nil && l.WordState[word.WordIndex()] == wr
}

// IsRegistered reports whether s is the Registered word state.
func IsRegistered(s cache.WordState) bool { return s == wr }

// IsValidWord reports whether s is the Valid word state.
func IsValidWord(s cache.WordState) bool { return s == wv }

// FetchingLines returns the registry lines currently mid cold-fetch
// (requests queue behind the fetch), sorted. Words of those lines are
// exempt from stable-state invariant checks.
func (r *Registry) FetchingLines() []proto.Addr {
	var out []proto.Addr
	r.forEachLine(func(lineAddr proto.Addr, e *regLine) {
		if e.fetching || len(e.pending) > 0 {
			out = append(out, lineAddr)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachOwned visits every word the registry has pointed at a core
// (owner != L2), in ascending word order.
func (r *Registry) ForEachOwned(fn func(word proto.Addr, owner proto.CoreID)) {
	var lineAddrs []proto.Addr
	r.forEachLine(func(lineAddr proto.Addr, _ *regLine) { lineAddrs = append(lineAddrs, lineAddr) })
	sort.Slice(lineAddrs, func(i, j int) bool { return lineAddrs[i] < lineAddrs[j] })
	for _, lineAddr := range lineAddrs {
		e := r.lookup(lineAddr)
		for i, o := range e.owner {
			if o == ownerL2 {
				continue
			}
			fn(lineAddr+proto.Addr(i*proto.WordBytes), proto.CoreID(o))
		}
	}
}
