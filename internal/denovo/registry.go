package denovo

import (
	"denovosync/internal/proto"
)

// ownerL2 marks a word whose up-to-date copy lives in the L2 data bank.
const ownerL2 = -1

// regOwnerState classifies a word's registry entry relative to one
// requesting core — the registry's whole per-word "state machine" (the
// paper's point: no sharer list, no busy bit, no transient states).
// Typed so that simlint's exhauststate analyzer verifies every switch
// over it covers all three classifications, and so the atlas extractor
// (internal/lint/atlas) can read the registry's transition nests the
// same way it reads the L1s'.
type regOwnerState byte

const (
	roL2    regOwnerState = iota // registry/LLC owns the word's data
	roSelf                       // the requesting core is the registrant
	roOther                      // another core is the registrant
)

// regLine is the registry's per-line record: for every word, either the
// L2 holds the data (ownerL2) or the ID of the core registered for it.
// This replaces a MESI directory entry — there is no sharer list and no
// busy/transient state: the registry is non-blocking (§4.1).
type regLine struct {
	resident bool
	fetching bool
	owner    [proto.WordsPerLine]int16
	pending  []func() // requests that arrived during the cold fetch
	// serial counts this line's serialized ownership events (registrations
	// and writebacks). Forwarded registrations and writeback acks carry the
	// stamp so an L1 can order a late-delivered forward against its own
	// writeback — classes only give per-class point-to-point order, so the
	// network cannot (see L1.recvFwdReg).
	serial uint64
}

// ownerState classifies word's entry relative to requester from.
func (e *regLine) ownerState(word proto.Addr, from *L1) regOwnerState {
	switch o := e.owner[word.WordIndex()]; {
	case o == ownerL2:
		return roL2
	case o == int16(from.id):
		return roSelf
	default:
		return roOther
	}
}

// register points word's coherence unit at core — the single serialized
// update every registration transfer reduces to.
func (e *regLine) register(cfg *Config, word proto.Addr, core proto.CoreID) {
	base := cfg.unitOf(word)
	for k := 0; k < cfg.unitWords(); k++ {
		e.owner[(base + proto.Addr(k*proto.WordBytes)).WordIndex()] = int16(core)
	}
}

// release returns one word to registry/LLC ownership.
func (e *regLine) release(word proto.Addr) {
	e.owner[word.WordIndex()] = ownerL2
}

func newRegLine() *regLine {
	l := &regLine{}
	for i := range l.owner {
		l.owner[i] = ownerL2
	}
	return l
}

// Registry is DeNovo's LLC-side structure: the data banks of the shared
// L2 double as the registry, storing either data or a pointer to the
// registered core (§2.2).
type Registry struct {
	cfg   *Config
	tiles int
	// lines is sharded per home bank: lines[b] holds the lines whose L2
	// bank is tile b, and is touched only by events running at that tile —
	// so a partitioned machine needs no locking around it.
	lines []map[proto.Addr]*regLine
	l1s   []*L1

	// obs, when set, receives one (controller, state, event) hit per
	// handler activation (see coverage.go).
	//lpisolate:boundary(Set*-injected coverage observer; read-only by contract, enforced by simlint observerpurity)
	obs TransitionObserver
}

// NewRegistry creates the registry for a tiles-tile system.
func NewRegistry(cfg *Config, tiles int) *Registry {
	r := &Registry{cfg: cfg, tiles: tiles, lines: make([]map[proto.Addr]*regLine, tiles)}
	for i := range r.lines {
		r.lines[i] = make(map[proto.Addr]*regLine)
	}
	return r
}

// SetL1s wires the L1 controllers (after construction).
func (r *Registry) SetL1s(l1s []*L1) { r.l1s = l1s }

// NodeFor returns the tile node hosting line's L2 bank.
func (r *Registry) NodeFor(line proto.Addr) proto.NodeID {
	return proto.NodeID(int(line/proto.LineBytes) % r.tiles)
}

func (r *Registry) line(addr proto.Addr) *regLine {
	bank := r.lines[int(addr.Line()/proto.LineBytes)%r.tiles]
	l := bank[addr.Line()]
	if l == nil {
		l = newRegLine()
		bank[addr.Line()] = l
	}
	return l
}

// lookup returns word's line record without creating it (nil if unknown).
func (r *Registry) lookup(addr proto.Addr) *regLine {
	return r.lines[int(addr.Line()/proto.LineBytes)%r.tiles][addr.Line()]
}

// forEachLine visits every line record across all banks (diagnostics and
// validation only; callers sort whatever they collect).
func (r *Registry) forEachLine(fn func(proto.Addr, *regLine)) {
	for _, bank := range r.lines {
		for lineAddr, e := range bank { //simlint:allow determinism: callers sort collected keys
			fn(lineAddr, e)
		}
	}
}

// withResident runs fn once the line is resident, fetching it from memory
// on first touch. Requests arriving mid-fetch queue in arrival order, so
// per-word serialization (the single point the protocol relies on for
// write and read-registration ordering) is preserved.
func (r *Registry) withResident(word proto.Addr, class proto.MsgClass, fn func(*regLine)) {
	e := r.line(word)
	if e.resident {
		fn(e)
		return
	}
	e.pending = append(e.pending, func() { fn(e) })
	if e.fetching {
		return
	}
	e.fetching = true
	r.cfg.DRAM.Fetch(r.NodeFor(word), word.Line(), class, func() {
		e.resident = true
		e.fetching = false
		ps := e.pending
		e.pending = nil
		for _, p := range ps {
			p()
		}
	})
}

// recvDataRead services a data-load miss: if the registry owns the word it
// responds with every word of the line it owns (DeNovo responses carry
// only valid data, §7.1.1); otherwise it forwards to the registered core,
// which answers directly (and stays registered — data reads do not steal).
func (r *Registry) recvDataRead(word proto.Addr, from *L1) {
	r.cfg.engAt(r.NodeFor(word)).Schedule(r.cfg.L2AccessLat, func() {
		r.withResident(word, proto.ClassLD, func(e *regLine) {
			node := r.NodeFor(word)
			st := e.ownerState(word, from)
			r.observe(st, "recvDataRead")
			switch st {
			case roL2, roSelf:
				// Registry-owned (or a stale self-pointer): respond with
				// every registry-owned word of the line.
				line := word.Line()
				var mask [proto.WordsPerLine]bool
				var vals [proto.WordsPerLine]uint64
				words := 0
				for i := range e.owner {
					if e.owner[i] == ownerL2 {
						mask[i] = true
						vals[i] = r.cfg.Store.Read(line + proto.Addr(i*proto.WordBytes))
						words++
					}
				}
				// Guarantee the requested word is in the response even in
				// the stale-owner corner (the committed image is always
				// current).
				if !mask[word.WordIndex()] {
					mask[word.WordIndex()] = true
					vals[word.WordIndex()] = r.cfg.Store.Read(word)
					words++
				}
				r.cfg.Net.Send(node, from.node, proto.ClassLD, proto.DataFlits(words), func() {
					from.recvDataFill(line, mask, vals)
				})
			case roOther:
				prev := r.l1s[e.owner[word.WordIndex()]]
				r.cfg.Net.Send(node, prev.node, proto.ClassLD, proto.CtrlFlits, func() {
					prev.recvFwdDataRead(word, from)
				})
			}
		})
	})
}

// recvReg services a registration request (data write, sync write, sync
// RMW, or sync read — the paper's single-reader rule makes sync reads
// register too). The registry is non-blocking: it updates the registrant
// immediately and forwards the request to the previous one, never queuing
// a transaction (§4.1).
//
//atlas:unreachable denovo.Registry roSelf recvReg: the writeback-ack gate (recvWB) orders a re-registration after the evictor's writeback serialized, and that writeback either released the words or found them re-registered elsewhere — the registry never still names the re-registrant
func (r *Registry) recvReg(word proto.Addr, kind proto.AccessKind, from *L1) {
	class := regClass(kind)
	r.cfg.engAt(r.NodeFor(word)).Schedule(r.cfg.L2AccessLat, func() {
		r.withResident(word, class, func(e *regLine) {
			node := r.NodeFor(word)
			st := e.ownerState(word, from)
			r.observeReg(st, kind)
			e.serial++
			seq := e.serial
			prev := e.owner[word.WordIndex()]
			// The whole coherence unit changes hands (a single word at the
			// paper's granularity).
			e.register(r.cfg, word, from.id)
			switch st {
			case roL2, roSelf:
				// Registry-owned (or a re-registration after an in-flight
				// writeback): ack directly with the committed value.
				flits := r.ackFlits(kind)
				r.cfg.Net.Send(node, from.node, class, flits, func() {
					from.recvRegAck(word, kind, r.cfg.Store.Read(word))
				})
			case roOther:
				prevL1 := r.l1s[prev]
				r.cfg.Net.Send(node, prevL1.node, class, proto.CtrlFlits, func() {
					prevL1.recvFwdReg(word, kind, from, seq)
				})
			}
		})
	})
}

// recvWB retires an eviction writeback: every word still registered to the
// writer returns to registry ownership. Writebacks that raced a newer
// registration are simply stale for those words (the newer registrant's
// request was serialized first) and ignored. The ack gates the evictor's
// re-registration of the same words: without it, a forwarded registration
// aimed at the evictor's stale ownership can mutually park with the
// evictor's own new registration (a deadlock the bundled model checker
// finds; see internal/verify). The gate alone is not enough on a network
// with per-class virtual channels: a forward sent before this writeback
// serialized can still be delivered after the ack (different class), so
// the ack carries the line serial and the L1 classifies such late
// forwards as stale by comparison (see L1.recvFwdReg). A writeback can
// even find the word back in registry ownership (roL2): the evictor's
// writeback lingers in the mesh while another core registers, evicts,
// and has its own writeback release the word first.
func (r *Registry) recvWB(lineAddr proto.Addr, mask [proto.WordsPerLine]bool, from *L1) {
	r.cfg.engAt(r.NodeFor(lineAddr)).Schedule(r.cfg.L2AccessLat, func() {
		// The writeback must serialize through the same queue as other
		// requests: a WB arriving during the line's cold fetch would
		// otherwise be processed before the registration it follows
		// (dropping it leaves a dangling ownership pointer — a bug the
		// end-of-run validator caught).
		r.withResident(lineAddr, proto.ClassWB, func(e *regLine) {
			e.serial++
			seq := e.serial
			for i, m := range mask {
				if !m {
					continue
				}
				word := lineAddr + proto.Addr(i*proto.WordBytes)
				st := e.ownerState(word, from)
				r.observe(st, "recvWB")
				if st == roSelf {
					e.release(word)
				}
			}
			r.cfg.Net.Send(r.NodeFor(lineAddr), from.node, proto.ClassWB, proto.CtrlFlits, func() {
				from.recvWBAck(lineAddr, mask, seq)
			})
		})
	})
}

// OwnerOf exposes the registered core for tests (-1 = registry).
func (r *Registry) OwnerOf(word proto.Addr) int {
	e := r.lookup(word)
	if e == nil {
		return ownerL2
	}
	return int(e.owner[word.WordIndex()])
}

// regClass maps a registration kind to its traffic class.
func regClass(kind proto.AccessKind) proto.MsgClass {
	if kind.IsSync() {
		return proto.ClassSynch
	}
	return proto.ClassST
}

// ackFlits sizes a registration ack: sync reads and RMWs need the unit's
// data; blind writes transfer ownership without data.
func (r *Registry) ackFlits(kind proto.AccessKind) int {
	switch kind {
	case proto.SyncLoad, proto.SyncRMW:
		return proto.DataFlits(r.cfg.unitWords())
	default:
		return proto.CtrlFlits
	}
}
