package denovo

import (
	"denovosync/internal/cache"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// parkedFwd is a forwarded registration that arrived while this L1's own
// registration for the word was still in flight: it waits in the MSHR and
// is serviced when the ack lands — the distributed registration queue of
// §4.1 (after [12, 13, 34]).
type parkedFwd struct {
	kind proto.AccessKind
	from *L1
}

// wtxn is an outstanding word-granularity miss.
type wtxn struct {
	word   proto.Addr
	kind   proto.AccessKind
	isReg  bool // registration (writes + sync reads) vs. plain data read
	region proto.RegionID

	waiters []func() // access retries to run after the fill/ack
	onAck   []func() // completions that need no retry (data stores)
	parked  []parkedFwd
}

// L1 is one core's private DeNovo cache controller, implementing
// DeNovoSync0 (cfg.Backoff = false) or DeNovoSync (true).
type L1 struct {
	cfg  *Config
	eng  *sim.Engine // the engine driving this tile (cfg.engAt(node))
	id   proto.CoreID
	node proto.NodeID
	reg  *Registry

	cache   *cache.Cache
	txns    map[proto.Addr]*wtxn
	regions proto.RegionMapper

	pendingStores int
	drainWaiters  []func()

	epochs   map[proto.Addr]uint64 // per word
	disturbs map[proto.Addr][]func()

	// wbPending marks words whose eviction writeback has not been acked
	// by the registry yet; re-registrations of those words wait (see
	// registry.recvWB for the deadlock this prevents).
	wbPending map[proto.Addr]bool
	wbWaiters map[proto.Addr][]func()
	// wbBound records, per coherence unit, the registry serial carried by
	// the last writeback ack. A forwarded registration stamped with an
	// older serial was generated before that writeback serialized, so it
	// targets ownership this core has already relinquished: it must be
	// answered from the committed image, never parked behind (or allowed
	// to downgrade) a registration issued after the ack. Message classes
	// only guarantee per-class point-to-point order, so such a forward
	// can legally arrive arbitrarily late (see recvFwdReg).
	wbBound map[proto.Addr]uint64

	// writeSig accumulates the word addresses this core has written since
	// its last release — the DeNovoND hardware write signature.
	writeSig proto.Signature

	// Hardware backoff state (§4.2). backoffCtr delays sync-read misses to
	// Valid words; incCtr is its adaptive increment; remoteSyncReads counts
	// incoming remote sync-read registrations toward increment growth.
	backoffCtr      sim.Cycle
	incCtr          sim.Cycle
	remoteSyncReads int
	backoffStall    sim.Cycle

	// obs, when set, receives one (controller, state, event) hit per
	// handler activation (see coverage.go).
	//lpisolate:boundary(Set*-injected coverage observer; read-only by contract, enforced by simlint observerpurity)
	obs TransitionObserver

	stats proto.L1Stats
}

// NewL1 constructs the DeNovo L1 for core id on node node. regions may be
// nil (all data in region 0).
func NewL1(cfg *Config, id proto.CoreID, node proto.NodeID, regions proto.RegionMapper) *L1 {
	return &L1{
		cfg:       cfg,
		eng:       cfg.engAt(node),
		id:        id,
		node:      node,
		cache:     cache.New(cfg.L1Size, cfg.L1Ways),
		txns:      make(map[proto.Addr]*wtxn),
		regions:   regions,
		epochs:    make(map[proto.Addr]uint64),
		disturbs:  make(map[proto.Addr][]func()),
		wbPending: make(map[proto.Addr]bool),
		wbWaiters: make(map[proto.Addr][]func()),
		wbBound:   make(map[proto.Addr]uint64),
		incCtr:    cfg.initialIncrement(),
	}
}

// SetRegistry wires the shared registry (after construction).
func (c *L1) SetRegistry(r *Registry) { c.reg = r }

// Stats returns the hit/miss counters.
func (c *L1) Stats() *proto.L1Stats { return &c.stats }

// BackoffStallCycles returns cumulative hardware-backoff stall cycles.
func (c *L1) BackoffStallCycles() sim.Cycle { return c.backoffStall }

// BackoffCounter exposes the current backoff counter value (tests).
func (c *L1) BackoffCounter() sim.Cycle { return c.backoffCtr }

// IncrementCounter exposes the current increment counter value (tests).
func (c *L1) IncrementCounter() sim.Cycle { return c.incCtr }

// Epoch returns the disturbance counter for addr's word.
func (c *L1) Epoch(addr proto.Addr) uint64 { return c.epochs[addr.Word()] }

// WaitDisturb calls fn when the word's epoch moves past epoch.
func (c *L1) WaitDisturb(addr proto.Addr, epoch uint64, fn func()) {
	w := addr.Word()
	if c.epochs[w] != epoch {
		c.eng.Schedule(0, fn)
		return
	}
	c.disturbs[w] = append(c.disturbs[w], fn)
}

func (c *L1) disturb(word proto.Addr) {
	c.epochs[word]++
	ws := c.disturbs[word]
	if len(ws) == 0 {
		return
	}
	delete(c.disturbs, word)
	for _, fn := range ws {
		c.eng.Schedule(0, fn)
	}
}

// OnWritesDrained calls fn once all non-blocking stores have committed.
func (c *L1) OnWritesDrained(fn func()) {
	if c.pendingStores == 0 {
		c.eng.Schedule(0, fn)
		return
	}
	c.drainWaiters = append(c.drainWaiters, fn)
}

func (c *L1) storeCommitted() {
	c.pendingStores--
	if c.pendingStores == 0 {
		ws := c.drainWaiters
		c.drainWaiters = nil
		for _, fn := range ws {
			c.eng.Schedule(0, fn)
		}
	}
}

// SelfInvalidate drops every cached Valid word whose region is in set.
// Registered words stay: they are this core's own up-to-date data
// (footnote 1 of the paper).
func (c *L1) SelfInvalidate(set proto.RegionSet) {
	if set.Empty() {
		return
	}
	c.cache.ForEach(func(l *cache.Line) {
		for i := range l.WordState {
			if l.WordState[i] == wv && set.Has(l.Regions[i]) {
				l.WordState[i] = wi
				c.disturb(l.Addr + proto.Addr(i*proto.WordBytes))
			}
		}
	})
}

// setUnit applies state st to every word of addr's coherence unit within
// line l, filling values from the committed image for words that were not
// already in that state (unit granularity > 1 transfers whole-unit data).
func (c *L1) setUnit(l *cache.Line, addr proto.Addr, st cache.WordState, region proto.RegionID) {
	base := c.cfg.unitOf(addr)
	n := c.cfg.unitWords()
	for k := 0; k < n; k++ {
		w := base + proto.Addr(k*proto.WordBytes)
		i := w.WordIndex()
		if l.WordState[i] != st {
			l.WordState[i] = st
			l.Values[i] = c.cfg.Store.Read(w)
			if region != 0 {
				l.Regions[i] = region
			} else {
				l.Regions[i] = c.regionOf(w)
			}
		}
	}
}

// downUnit downgrades every Registered word of addr's unit to st (wv or
// wi), signaling disturbance.
func (c *L1) downUnit(l *cache.Line, addr proto.Addr, st cache.WordState) {
	base := c.cfg.unitOf(addr)
	n := c.cfg.unitWords()
	for k := 0; k < n; k++ {
		w := base + proto.Addr(k*proto.WordBytes)
		i := w.WordIndex()
		if l.WordState[i] == wr {
			l.WordState[i] = st
			c.disturb(w)
		}
	}
}

// ensureLine returns the resident line for addr, installing one (evicting
// a victim) if needed.
func (c *L1) ensureLine(addr proto.Addr) *cache.Line {
	l := c.cache.Lookup(addr)
	if l != nil {
		c.cache.Touch(l)
		return l
	}
	v := c.cache.Victim(addr)
	if v.Present {
		c.evict(v)
	}
	c.cache.Install(v, addr)
	return v
}

// evict writes back any registered words of the victim and drops it. The
// writeback covers whole coherence units: a unit mid-registration (one
// word locally Registered, the rest pending the ack) must return every
// word the registry may have pointed at us.
func (c *L1) evict(v *cache.Line) {
	lineAddr := v.Addr
	uw := c.cfg.unitWords()
	var mask [proto.WordsPerLine]bool
	words := 0
	for i, st := range v.WordState {
		c.observe(st, "evict")
		if st == wr {
			base := i / uw * uw
			for k := base; k < base+uw; k++ {
				if !mask[k] {
					mask[k] = true
					words++
				}
			}
		}
		if st != wi {
			c.disturb(lineAddr + proto.Addr(i*proto.WordBytes))
		}
	}
	c.cache.Evict(v)
	c.stats.Evicted++
	if words == 0 {
		return
	}
	c.stats.WB++
	for i, m := range mask {
		if m && i%uw == 0 {
			c.wbPending[lineAddr+proto.Addr(i*proto.WordBytes)] = true
		}
	}
	c.cfg.Net.Send(c.node, c.reg.NodeFor(lineAddr), proto.ClassWB, proto.DataFlits(words), func() {
		c.reg.recvWB(lineAddr, mask, c)
	})
}

// recvWBAck unblocks registrations that waited for an eviction writeback
// to be serialized at the registry (keyed per coherence unit). serial is
// the registry's serialization stamp for the writeback; it becomes the
// staleness bound for forwarded registrations (see wbBound).
func (c *L1) recvWBAck(lineAddr proto.Addr, mask [proto.WordsPerLine]bool, serial uint64) {
	uw := c.cfg.unitWords()
	for i, m := range mask {
		if !m || i%uw != 0 {
			continue
		}
		word := lineAddr + proto.Addr(i*proto.WordBytes)
		c.observe(c.wordState(word), "recvWBAck")
		c.wbBound[word] = serial
		delete(c.wbPending, word)
		ws := c.wbWaiters[word]
		if len(ws) > 0 {
			delete(c.wbWaiters, word)
			for _, fn := range ws {
				fn()
			}
		}
	}
}

// Access starts a memory access (see proto.L1Controller).
func (c *L1) Access(req *proto.Request) {
	if req.Kind == proto.DataStore || req.Kind == proto.SyncStore {
		// Non-blocking store (DeNovo writes are non-blocking by default,
		// §5.2): retire after the L1 access cycle; the registration
		// completes in the background. Program order for the *next* sync
		// access is enforced by the core's drain-before-sync rule.
		//
		// Unlike MESI (see mesi.L1.storeFwd), DeNovo needs no store→load
		// forwarding buffer: a data store transitions the word to Registered
		// and writes line.Values *at issue time* (no transient states, §2.2),
		// so a younger same-core load always hits the new value.
		c.pendingStores++
		done := req.Done
		c.eng.Schedule(c.cfg.L1AccessLat, func() { done(0) })
		c.access(req, func(uint64) { c.storeCommitted() }, true)
		return
	}
	c.access(req, req.Done, true)
}

func (c *L1) access(req *proto.Request, commit func(uint64), first bool) {
	word := req.Addr.Word()
	unit := c.cfg.unitOf(req.Addr)
	// A registration (any write, or a sync read) for a unit whose eviction
	// writeback is still in flight waits for the registry's ack — the
	// writeback must serialize before our new registration request.
	if c.wbPending[unit] && req.Kind != proto.DataLoad {
		c.wbWaiters[unit] = append(c.wbWaiters[unit], func() { c.access(req, commit, first) })
		return
	}
	widx := req.Addr.WordIndex()
	line := c.cache.Lookup(req.Addr)
	st := wi
	if line != nil {
		st = line.WordState[widx]
	}
	c.observeKind(st, "access", req.Kind)

	finish := func(v uint64) {
		if first {
			c.eng.Schedule(c.cfg.L1AccessLat, func() { commit(v) })
		} else {
			commit(v)
		}
	}

	switch req.Kind {
	case proto.DataLoad:
		if st == wv || st == wr {
			if first {
				c.stats.Hit(req.Kind)
			}
			c.cache.Touch(line)
			finish(line.Values[widx])
			return
		}
		if first {
			c.stats.Miss(req.Kind)
		}
		c.readMiss(req, commit, first)
		return

	case proto.DataStore:
		if st == wr {
			if first {
				c.stats.Hit(req.Kind)
			}
			c.cache.Touch(line)
			line.Values[widx] = req.Value
			c.cfg.Store.Write(word, req.Value)
			c.writeSig.Add(word)
			finish(0)
			return
		}
		// Immediate transition to Registered — no transient states (§2.2).
		// DRF data makes the local commit safe; the registration request
		// establishes global locatability in the background.
		if first {
			c.stats.Miss(req.Kind)
		}
		l := c.ensureLine(req.Addr)
		l.WordState[widx] = wr
		l.Values[widx] = req.Value
		l.Regions[widx] = req.Region
		c.cfg.Store.Write(word, req.Value)
		c.writeSig.Add(word)
		if t := c.txns[unit]; t != nil {
			// A registration for this unit is already in flight (an
			// earlier store); ride on it.
			t.onAck = append(t.onAck, func() { commit(0) })
			return
		}
		t := &wtxn{word: unit, kind: req.Kind, isReg: true, region: req.Region}
		t.onAck = append(t.onAck, func() { commit(0) })
		c.txns[unit] = t
		c.sendReg(t, 0)
		return

	case proto.SyncLoad:
		if st == wr {
			if first {
				c.stats.Hit(req.Kind)
				// A sync read hit means no other core intervened: reset
				// the backoff counter (§4.2.1).
				c.backoffCtr = 0
			}
			c.cache.Touch(line)
			finish(line.Values[widx])
			return
		}
		// Always a miss unless Registered (§4.1): the single-reader rule.
		if first {
			c.stats.Miss(req.Kind)
		}
		if t := c.txns[unit]; t != nil {
			t.waiters = append(t.waiters, func() { c.access(req, commit, false) })
			return
		}
		t := &wtxn{word: unit, kind: req.Kind, isReg: true, region: req.Region}
		t.waiters = append(t.waiters, func() { c.access(req, commit, false) })
		c.txns[unit] = t
		// DeNovoSync: a sync read to Valid state stalls for the backoff
		// counter before issuing its miss (§4.2.1). Reads to Invalid state
		// (initial reads) issue immediately.
		var stall sim.Cycle
		if c.cfg.Backoff && st == wv {
			stall = c.backoffCtr
			c.backoffStall += stall
		}
		c.sendReg(t, stall)
		return

	case proto.SyncStore, proto.SyncRMW:
		if st == wr {
			if first {
				c.stats.Hit(req.Kind)
			}
			c.cache.Touch(line)
			old := c.cfg.Store.Read(word)
			if req.Kind == proto.SyncRMW {
				if first {
					c.backoffCtr = 0 // an RMW hit also resets (§4.2.1)
				}
				if nv, doStore := req.RMW(old); doStore {
					line.Values[widx] = nv
					c.cfg.Store.Write(word, nv)
					c.writeSig.Add(word)
					// A storing RMW completes a synchronization construct
					// (e.g. the final CAS of a non-blocking operation):
					// treat it as a release for the increment counter
					// (§4.2.2).
					c.incCtr = c.cfg.DefaultIncrement
				}
				finish(old)
			} else {
				line.Values[widx] = req.Value
				c.cfg.Store.Write(word, req.Value)
				c.writeSig.Add(word)
				// A release completed: reset the increment counter (§4.2.2).
				c.incCtr = c.cfg.DefaultIncrement
				finish(0)
			}
			return
		}
		if first {
			c.stats.Miss(req.Kind)
		}
		if t := c.txns[unit]; t != nil {
			t.waiters = append(t.waiters, func() { c.access(req, commit, false) })
			return
		}
		t := &wtxn{word: unit, kind: req.Kind, isReg: true, region: req.Region}
		t.waiters = append(t.waiters, func() { c.access(req, commit, false) })
		c.txns[unit] = t
		// Sync writes are never delayed by backoff (§4.2.4).
		c.sendReg(t, 0)
		return
	}
	panic("denovo: unknown access kind")
}

// sendReg issues a registration request after the L1 access latency plus
// any hardware-backoff stall.
func (c *L1) sendReg(t *wtxn, stall sim.Cycle) {
	c.eng.Schedule(c.cfg.L1AccessLat+stall, func() {
		c.cfg.Net.Send(c.node, c.reg.NodeFor(t.word), regClass(t.kind), proto.CtrlFlits, func() {
			c.reg.recvReg(t.word, t.kind, c)
		})
	})
}

// readMiss issues a plain data-read request (no registration).
func (c *L1) readMiss(req *proto.Request, commit func(uint64), first bool) {
	word := req.Addr.Word()
	retry := func() { c.access(req, commit, false) }
	if t := c.txns[word]; t != nil {
		t.waiters = append(t.waiters, retry)
		return
	}
	t := &wtxn{word: word, kind: req.Kind, region: req.Region}
	t.waiters = append(t.waiters, retry)
	c.txns[word] = t
	c.eng.Schedule(c.cfg.L1AccessLat, func() {
		c.cfg.Net.Send(c.node, c.reg.NodeFor(word), proto.ClassLD, proto.CtrlFlits, func() {
			c.reg.recvDataRead(word, c)
		})
	})
}

// regionOf resolves a word's region via the global software map.
func (c *L1) regionOf(word proto.Addr) proto.RegionID {
	if c.regions == nil {
		return 0
	}
	return c.regions.RegionOf(word)
}

// recvDataFill installs a registry data response: the registry-owned words
// of the line arrive Valid. Registered words are never overwritten.
func (c *L1) recvDataFill(lineAddr proto.Addr, mask [proto.WordsPerLine]bool, vals [proto.WordsPerLine]uint64) {
	l := c.ensureLine(lineAddr)
	for i := range mask {
		if !mask[i] {
			continue
		}
		c.observe(l.WordState[i], "recvDataFill")
		if l.WordState[i] == wr {
			continue
		}
		l.WordState[i] = wv
		l.Values[i] = vals[i]
		l.Regions[i] = c.regionOf(lineAddr + proto.Addr(i*proto.WordBytes))
	}
	c.finishTxn(lineAddr, mask)
}

// finishTxn completes every outstanding data-read transaction covered by
// the filled words.
func (c *L1) finishTxn(lineAddr proto.Addr, mask [proto.WordsPerLine]bool) {
	for i := range mask {
		if !mask[i] {
			continue
		}
		word := lineAddr + proto.Addr(i*proto.WordBytes)
		t := c.txns[word]
		if t == nil || t.isReg {
			continue
		}
		delete(c.txns, word)
		for _, w := range t.waiters {
			w()
		}
	}
}

// recvFwdDataRead services a data read forwarded by the registry. The
// owner stays Registered; per DeNovo's flexible-communication-granularity
// optimization [10], the response carries the requested word plus every
// other word of the line this owner holds Registered (the requester will
// likely want them next — e.g. a data structure rebalanced wholesale by
// the previous lock holder).
func (c *L1) recvFwdDataRead(word proto.Addr, from *L1) {
	c.eng.Schedule(c.cfg.RemoteL1Lat, func() {
		c.observe(c.wordState(word), "recvFwdDataRead")
		lineAddr := word.Line()
		var mask [proto.WordsPerLine]bool
		var vals [proto.WordsPerLine]uint64
		words := 0
		if l := c.cache.Lookup(word); l != nil {
			for i, st := range l.WordState {
				if st == wr {
					mask[i] = true
					vals[i] = c.cfg.Store.Read(lineAddr + proto.Addr(i*proto.WordBytes))
					words++
				}
			}
		}
		if !mask[word.WordIndex()] {
			// Stale forward (the word was evicted): the committed image is
			// authoritative.
			mask[word.WordIndex()] = true
			vals[word.WordIndex()] = c.cfg.Store.Read(word)
			words++
		}
		c.cfg.Net.Send(c.node, from.node, proto.ClassLD, proto.DataFlits(words), func() {
			from.recvDataFill(lineAddr, mask, vals)
		})
	})
}

// recvRegAck completes this L1's own registration: the word becomes
// Registered with the serialized value, stalled accesses retry (and now
// hit), then any parked forwarded registration is serviced — handing the
// registration down the distributed queue.
//
//atlas:unreachable denovo.L1 * recvRegAck:DataLoad: data loads never register — they complete via recvDataFill
func (c *L1) recvRegAck(word proto.Addr, kind proto.AccessKind, val uint64) {
	t := c.txns[word]
	if t == nil {
		panic("denovo: registration ack for absent transaction")
	}
	c.observeKind(c.wordState(word), "recvRegAck", kind)
	delete(c.txns, word)

	switch kind {
	case proto.SyncLoad, proto.SyncStore, proto.SyncRMW:
		l := c.ensureLine(word)
		widx := word.WordIndex()
		l.WordState[widx] = wr
		l.Values[widx] = val
		l.Regions[widx] = t.region
		if c.cfg.unitWords() > 1 {
			c.setUnit(l, word, wr, t.region)
		}
	case proto.DataStore:
		// Data stores already committed locally at issue (no data travels
		// with the ack). At line granularity the ack carries the rest of
		// the unit, which becomes Registered alongside the written word.
		// DataLoad never arrives here: data reads do not register and
		// complete via recvDataFill.
		if c.cfg.unitWords() > 1 {
			c.setUnit(c.ensureLine(word), word, wr, t.region)
		}
	}
	// Data stores already committed locally at issue; sync retries now hit
	// in Registered state and commit in serialization order.
	for _, fn := range t.onAck {
		fn()
	}
	for _, w := range t.waiters {
		w()
	}
	for _, p := range t.parked {
		c.serviceFwd(p.kind, p.from, word, false)
	}
}

// recvFwdReg handles a registration request forwarded by the registry to
// this (previous-registrant) L1. If our own registration for the word is
// still pending, the request parks in the MSHR (§4.1); otherwise it is
// serviced after the remote-L1 access latency.
//
// Parking is only sound for forwards that chase this core's pending
// registration (the requester serialized *after* us, so our ack will
// arrive and hand the queue down). Network classes preserve point-to-
// point order only per class, so a forward can also arrive late: sent
// while we were still the registrant, overtaken by our writeback's ack
// (a different class), and delivered after we re-registered. Parking
// that forward deadlocks — the requester serialized *before* us, and
// our own ack transitively waits on theirs (mutual parking; the bundled
// model checker derives this cycle under same-channel reordering, see
// internal/verify). The registry's serialization stamp resolves the
// ambiguity: a forward older than the last writeback ack (wbBound)
// targets relinquished ownership and is answered immediately from the
// committed image, without touching the new registration.
func (c *L1) recvFwdReg(word proto.Addr, kind proto.AccessKind, from *L1, serial uint64) {
	c.observeKind(c.wordState(word), "recvFwdReg", kind)
	stale := serial < c.wbBound[c.cfg.unitOf(word)]
	if t := c.txns[word]; t != nil && t.isReg && !stale {
		t.parked = append(t.parked, parkedFwd{kind: kind, from: from})
		return
	}
	c.eng.Schedule(c.cfg.RemoteL1Lat, func() {
		c.serviceFwd(kind, from, word, stale)
	})
}

// serviceFwd relinquishes this core's registration of word to from:
//   - a sync read downgrades R→Valid and bumps the backoff machinery
//     (§4.2.1: remote sync reads signal contention);
//   - any write invalidates the word.
//
// The response acks the requester directly; values come from the committed
// image (this core's writes are committed, so the image is its data).
//
// stale marks a forward that predates this core's last writeback ack
// (see recvFwdReg): it targets ownership already given back, so it must
// not downgrade a registration acquired since — only the committed-image
// ack below applies.
func (c *L1) serviceFwd(kind proto.AccessKind, from *L1, word proto.Addr, stale bool) {
	l := c.cache.Lookup(word)
	widx := word.WordIndex()
	if !stale && l != nil && l.WordState[widx] == wr {
		c.observeKind(wr, "serviceFwd", kind)
		switch kind {
		case proto.SyncLoad:
			c.downUnit(l, word, wv)
			c.noteRemoteSyncRead()
		case proto.DataStore, proto.SyncStore, proto.SyncRMW:
			c.downUnit(l, word, wi)
		}
	}
	v := c.cfg.Store.Read(word)
	c.cfg.Net.Send(c.node, from.node, regClass(kind), c.ackFlits(kind), func() {
		from.recvRegAck(word, kind, v)
	})
}

// ackFlits sizes this L1's registration-ack responses: value-carrying
// acks transfer the whole coherence unit.
func (c *L1) ackFlits(kind proto.AccessKind) int {
	switch kind {
	case proto.SyncLoad, proto.SyncRMW:
		return proto.DataFlits(c.cfg.unitWords())
	default:
		return proto.CtrlFlits
	}
}

// noteRemoteSyncRead updates the backoff counters on an incoming remote
// sync-read registration (§4.2.1–§4.2.2).
func (c *L1) noteRemoteSyncRead() {
	if !c.cfg.Backoff {
		return
	}
	mask := c.cfg.backoffMask()
	c.backoffCtr = (c.backoffCtr + c.incCtr) & mask
	c.remoteSyncReads++
	if c.cfg.IncEveryN > 0 && c.remoteSyncReads%c.cfg.IncEveryN == 0 {
		c.incCtr += c.cfg.DefaultIncrement
		if c.incCtr > mask {
			c.incCtr = mask
		}
	}
}

// SignatureRelease publishes the accumulated write signature to lock and
// starts a fresh one (DeNovoND-style release).
func (c *L1) SignatureRelease(lock proto.Addr) {
	if c.cfg.Signatures == nil {
		return
	}
	c.cfg.Signatures.Publish(lock, c.writeSig, int(c.id))
	c.writeSig.Clear()
}

// SignatureAcquire self-invalidates cached Valid words that match lock's
// accumulated write signature — selective where region invalidation is
// wholesale. Registered words stay, as always.
func (c *L1) SignatureAcquire(lock proto.Addr) {
	if c.cfg.Signatures == nil {
		return
	}
	sig := c.cfg.Signatures.Consume(lock, int(c.id))
	if sig.Empty() {
		return
	}
	c.cache.ForEach(func(l *cache.Line) {
		for i := range l.WordState {
			word := l.Addr + proto.Addr(i*proto.WordBytes)
			if l.WordState[i] == wv && sig.MightContain(word) {
				l.WordState[i] = wi
				c.disturb(word)
			}
		}
	})
}

var _ proto.L1Controller = (*L1)(nil)
