package denovo

import (
	"testing"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// FuzzBackoffCounterWrap checks the §4.2 backoff machinery against a
// direct model of the spec arithmetic for arbitrary counter widths and
// increment cadences: the counter wraps to zero on overflow (§4.2.1,
// modulo 2^bits), the adaptive increment grows by DefaultIncrement every
// IncEveryN remote sync reads and saturates at the mask (§4.2.2), and
// neither ever leaves the counter's range. The seed corpus pins the two
// configurations the paper evaluates: 9 bits at 16 cores and 12 bits at
// 64 cores (§5.2).
func FuzzBackoffCounterWrap(f *testing.F) {
	f.Add(uint8(9), uint16(1), uint8(16), uint16(600))
	f.Add(uint8(12), uint16(64), uint8(64), uint16(5000))
	f.Add(uint8(1), uint16(1), uint8(1), uint16(100))
	f.Add(uint8(12), uint16(4095), uint8(2), uint16(200))
	f.Fuzz(func(t *testing.T, bits uint8, inc uint16, everyN uint8, reads uint16) {
		cfg := &Config{
			Backoff:          true,
			BackoffBits:      uint(bits%63) + 1,
			DefaultIncrement: sim.Cycle(inc),
			IncEveryN:        int(everyN),
		}
		l1 := &L1{cfg: cfg, incCtr: cfg.initialIncrement()}
		mask := cfg.backoffMask()

		var ctr, incCtr sim.Cycle
		incCtr = cfg.initialIncrement()
		for i := 1; i <= int(reads)%2048; i++ {
			l1.noteRemoteSyncRead()
			ctr = (ctr + incCtr) & mask
			if cfg.IncEveryN > 0 && i%cfg.IncEveryN == 0 {
				incCtr += cfg.DefaultIncrement
				if incCtr > mask {
					incCtr = mask
				}
			}
			if l1.backoffCtr != ctr {
				t.Fatalf("read %d: backoffCtr = %d, model %d (bits=%d inc=%d everyN=%d)",
					i, l1.backoffCtr, ctr, cfg.BackoffBits, inc, everyN)
			}
			if l1.incCtr != incCtr {
				t.Fatalf("read %d: incCtr = %d, model %d", i, l1.incCtr, incCtr)
			}
			if l1.backoffCtr > mask || l1.incCtr > mask {
				t.Fatalf("read %d: counter escaped its %d-bit range", i, cfg.BackoffBits)
			}
		}
	})
}

// FuzzMSHRSyncParking drives arbitrary interleavings of sync fetch-adds
// and sync loads from all four mini-system cores at a handful of words,
// with the event engine pumped in fuzz-chosen slices so registration
// forwards arrive while the target's own registration is still pending —
// the §4.1 MSHR parking path. Invariants checked after the drain:
//
//   - every access completed exactly once (no registration was dropped or
//     double-serviced along a parked forward chain);
//   - each word's committed value equals its fetch-add count (atomicity
//     survives arbitrary distributed-queue handoffs);
//   - no transaction or parked forward is left behind, and the registry's
//     single-registrant invariant holds (Validate).
//
// The seed corpus includes the degenerate all-cores-one-word script that
// maximizes parking depth.
func FuzzMSHRSyncParking(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x00, 0x01, 0x02, 0x03})       // 4 cores FAI one word, no pumping
	f.Add([]byte{0x04, 0x05, 0x06, 0x07, 0x04, 0x05, 0x06, 0x07})       // sync loads chase one word
	f.Add([]byte{0x00, 0x44, 0x10, 0x54, 0x21, 0x65, 0x32, 0x76, 0x03}) // mixed words, partial pumps
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		eng, reg, l1s := mini()
		addrs := []proto.Addr{0x100, 0x104, 0x180, 0x1040}
		faiCount := make(map[proto.Addr]uint64)
		issued, completed := 0, 0

		for _, b := range script {
			l1 := l1s[int(b&3)]
			addr := addrs[int(b>>4)&3]
			req := &proto.Request{Addr: addr, Done: func(uint64) { completed++ }}
			if b&4 == 0 {
				req.Kind = proto.SyncRMW
				req.RMW = func(cur uint64) (uint64, bool) { return cur + 1, true }
				faiCount[addr]++
			} else {
				req.Kind = proto.SyncLoad
			}
			issued++
			l1.Access(req)
			// A fuzz-chosen partial pump (0 keeps everything in flight,
			// maximizing overlap with the next issue).
			if pump := uint64(b >> 6); pump > 0 {
				eng.Run(pump)
			}
		}
		eng.Run(0)

		if completed != issued {
			t.Fatalf("completed %d of %d accesses", completed, issued)
		}
		for addr, want := range faiCount {
			if got := eng.Now(); got == 0 {
				t.Fatalf("engine never advanced despite %d accesses", issued)
			}
			if got := reg.cfg.Store.Read(addr); got != want {
				t.Fatalf("word %#x = %d after %d fetch-adds", uint64(addr), got, want)
			}
		}
		for i, l1 := range l1s {
			if n := len(l1.txns); n != 0 {
				t.Fatalf("L1 %d left %d transactions (parked forwards leak)", i, n)
			}
		}
		if err := reg.Validate(l1s); err != nil {
			t.Fatal(err)
		}
	})
}
