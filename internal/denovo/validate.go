package denovo

import (
	"fmt"
	"sort"

	"denovosync/internal/cache"
	"denovosync/internal/proto"
)

// Validate checks DeNovo's stable-state invariants across the system at
// quiescence. Machines run it automatically at the end of every
// simulation:
//
//   - at most one Registered copy per word;
//   - the registry's owner pointer names the L1 that actually holds the
//     word Registered (a registry pointer at an L1 that dropped the word
//     would strand requests);
//   - Registered word values match the committed image;
//   - no outstanding transactions, parked forwards, or pending
//     writeback acks remain.
func (r *Registry) Validate(l1s []*L1) error {
	owners := map[proto.Addr][]proto.CoreID{}
	for _, c := range l1s {
		if len(c.txns) != 0 {
			return fmt.Errorf("denovo: L1 %d has %d outstanding transactions at quiescence", c.id, len(c.txns))
		}
		if len(c.wbPending) != 0 {
			return fmt.Errorf("denovo: L1 %d has %d unacked writebacks at quiescence", c.id, len(c.wbPending))
		}
		var err error
		c.cache.ForEach(func(l *cache.Line) {
			for i, st := range l.WordState {
				if st != wr {
					continue
				}
				word := l.Addr + proto.Addr(i*proto.WordBytes)
				owners[word] = append(owners[word], c.id)
				if l.Values[i] != r.cfg.Store.Read(word) {
					err = fmt.Errorf("denovo: registered word %v at core %d diverges from committed image", word, c.id)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	// Report errors in a fixed address order: which violation surfaces
	// first must not depend on map iteration order.
	words := make([]proto.Addr, 0, len(owners))
	for word := range owners { //simlint:allow determinism: keys are sorted before use
		words = append(words, word)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for _, word := range words {
		os := owners[word]
		if len(os) > 1 {
			return fmt.Errorf("denovo: word %v registered at %v", word, os)
		}
		if got := r.OwnerOf(word); got != int(os[0]) {
			return fmt.Errorf("denovo: registry says word %v belongs to %d, but core %d holds it", word, got, os[0])
		}
	}
	// The converse: a registry pointer must name a core that still holds
	// the word (or the word was never cached — impossible once pointed).
	var lineAddrs []proto.Addr
	r.forEachLine(func(lineAddr proto.Addr, _ *regLine) { lineAddrs = append(lineAddrs, lineAddr) })
	sort.Slice(lineAddrs, func(i, j int) bool { return lineAddrs[i] < lineAddrs[j] })
	for _, lineAddr := range lineAddrs {
		e := r.lookup(lineAddr)
		for i, o := range e.owner {
			if o == ownerL2 {
				continue
			}
			word := lineAddr + proto.Addr(i*proto.WordBytes)
			l := l1s[o].cache.Lookup(word)
			if l == nil || l.WordState[word.WordIndex()] != wr {
				return fmt.Errorf("denovo: registry points word %v at core %d, which does not hold it", word, o)
			}
		}
	}
	return nil
}
