package denovo

import (
	"testing"
	"testing/quick"

	"denovosync/internal/mem"
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

func TestBackoffMask(t *testing.T) {
	cases := []struct {
		bits uint
		want sim.Cycle
	}{
		{9, 511},
		{12, 4095},
		{1, 1},
		{0, ^sim.Cycle(0)},
		{63, ^sim.Cycle(0)},
	}
	for _, c := range cases {
		cfg := &Config{BackoffBits: c.bits}
		if got := cfg.backoffMask(); got != c.want {
			t.Fatalf("backoffMask(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

// Property: the backoff counter always stays within its mask under an
// arbitrary mix of increments and never goes negative — the wraparound
// semantics of §4.2.1.
func TestBackoffWrapProperty(t *testing.T) {
	f := func(incs []uint16, bits uint8) bool {
		b := uint(bits%12) + 1
		cfg := &Config{BackoffBits: b, DefaultIncrement: 1, IncEveryN: 4, Backoff: true}
		l1 := &L1{cfg: cfg, incCtr: cfg.DefaultIncrement}
		mask := cfg.backoffMask()
		for range incs {
			l1.noteRemoteSyncRead()
			if l1.backoffCtr > mask {
				return false
			}
			if l1.incCtr > mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNoteRemoteSyncReadDisabledWithoutBackoff(t *testing.T) {
	cfg := &Config{Backoff: false, BackoffBits: 9, DefaultIncrement: 1, IncEveryN: 16}
	l1 := &L1{cfg: cfg, incCtr: cfg.DefaultIncrement}
	for i := 0; i < 100; i++ {
		l1.noteRemoteSyncRead()
	}
	if l1.backoffCtr != 0 {
		t.Fatal("DeNovoSync0 grew a backoff counter")
	}
}

func TestIncrementGrowthCadence(t *testing.T) {
	cfg := &Config{Backoff: true, BackoffBits: 12, DefaultIncrement: 64, IncEveryN: 64}
	l1 := &L1{cfg: cfg, incCtr: cfg.DefaultIncrement}
	for i := 0; i < 63; i++ {
		l1.noteRemoteSyncRead()
	}
	if l1.incCtr != 64 {
		t.Fatalf("increment grew early: %d", l1.incCtr)
	}
	l1.noteRemoteSyncRead() // the 64th
	if l1.incCtr != 128 {
		t.Fatalf("increment after 64th = %d, want 128", l1.incCtr)
	}
}

func TestRegClassAndAckFlits(t *testing.T) {
	if regClass(proto.DataStore) != proto.ClassST {
		t.Fatal("data write class")
	}
	for _, k := range []proto.AccessKind{proto.SyncLoad, proto.SyncStore, proto.SyncRMW} {
		if regClass(k) != proto.ClassSynch {
			t.Fatalf("%v class", k)
		}
	}
	r := &Registry{cfg: &Config{}}
	if r.ackFlits(proto.SyncLoad) != proto.WordDataFlits || r.ackFlits(proto.SyncRMW) != proto.WordDataFlits {
		t.Fatal("value-carrying acks must be word-sized at word granularity")
	}
	if r.ackFlits(proto.SyncStore) != proto.CtrlFlits || r.ackFlits(proto.DataStore) != proto.CtrlFlits {
		t.Fatal("blind-write acks must be control-sized")
	}
	rl := &Registry{cfg: &Config{UnitWords: proto.WordsPerLine}}
	if rl.ackFlits(proto.SyncLoad) != proto.LineDataFlits {
		t.Fatal("line-granularity value acks must be line-sized")
	}
}

func TestUnitOf(t *testing.T) {
	cw := &Config{} // word granularity
	if cw.unitOf(0x1234) != 0x1234 {
		t.Fatal("word granularity must not align")
	}
	cl := &Config{UnitWords: proto.WordsPerLine}
	if cl.unitOf(0x1234) != 0x1200 {
		t.Fatalf("line granularity unit = %v", cl.unitOf(0x1234))
	}
	c4 := &Config{UnitWords: 4}
	if c4.unitOf(0x1234) != 0x1230 {
		t.Fatalf("4-word unit = %v", c4.unitOf(0x1234))
	}
}

// mini builds a 4-tile DeNovo system without cores for direct controller
// tests.
func mini() (*sim.Engine, *Registry, []*L1) {
	eng := sim.NewEngine()
	net := noc.New(eng, noc.Mesh{W: 2, H: 2}, 10, 3)
	store := mem.NewStore()
	dram := mem.NewDRAM(eng, net, 169)
	cfg := &Config{
		Eng: eng, Net: net, Store: store, DRAM: dram,
		L1Size: 1024, L1Ways: 2,
		L1AccessLat: 1, L2AccessLat: 27, RemoteL1Lat: 9,
	}
	reg := NewRegistry(cfg, 4)
	var l1s []*L1
	for i := 0; i < 4; i++ {
		l1 := NewL1(cfg, proto.CoreID(i), proto.NodeID(i), nil)
		l1.SetRegistry(reg)
		l1s = append(l1s, l1)
	}
	reg.SetL1s(l1s)
	return eng, reg, l1s
}

// TestRegistrationTransfer drives a write, a remote sync read (downgrade),
// and a remote write (invalidate) through the raw controllers.
func TestRegistrationTransfer(t *testing.T) {
	eng, reg, l1s := mini()
	addr := proto.Addr(0x100)
	done := 0
	l1s[0].Access(&proto.Request{Kind: proto.SyncStore, Addr: addr, Value: 5, Done: func(uint64) { done++ }})
	eng.Run(0)
	if reg.OwnerOf(addr) != 0 {
		t.Fatalf("owner = %d, want 0", reg.OwnerOf(addr))
	}
	var got uint64
	l1s[1].Access(&proto.Request{Kind: proto.SyncLoad, Addr: addr, Done: func(v uint64) { got = v; done++ }})
	eng.Run(0)
	if got != 5 {
		t.Fatalf("sync read got %d, want 5", got)
	}
	if reg.OwnerOf(addr) != 1 {
		t.Fatalf("read registration did not transfer ownership: %d", reg.OwnerOf(addr))
	}
	// Previous owner downgraded to Valid, not Invalid (§4.2.1).
	if l := l1s[0].cache.Lookup(addr); l == nil || l.WordState[addr.WordIndex()] != wv {
		t.Fatal("previous registrant not downgraded to Valid")
	}
	// A remote write invalidates instead.
	l1s[2].Access(&proto.Request{Kind: proto.SyncStore, Addr: addr, Value: 9, Done: func(uint64) { done++ }})
	eng.Run(0)
	if l := l1s[1].cache.Lookup(addr); l != nil && l.WordState[addr.WordIndex()] == wr {
		t.Fatal("write steal left previous registrant Registered")
	}
	if done != 3 {
		t.Fatalf("completions = %d", done)
	}
	if err := reg.Validate(l1s); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesDoubleRegistrant: the invariant checker flags a
// hand-forged second Registered copy.
func TestValidateCatchesDoubleRegistrant(t *testing.T) {
	eng, reg, l1s := mini()
	addr := proto.Addr(0x200)
	l1s[0].Access(&proto.Request{Kind: proto.SyncStore, Addr: addr, Value: 1, Done: func(uint64) {}})
	eng.Run(0)
	v := l1s[1].cache.Victim(addr)
	l1s[1].cache.Install(v, addr)
	v.WordState[addr.WordIndex()] = wr
	v.Values[addr.WordIndex()] = 1
	if err := reg.Validate(l1s); err == nil {
		t.Fatal("validator accepted two registrants")
	}
}
