package denovo

import (
	"denovosync/internal/cache"
	"denovosync/internal/proto"
)

// Transition-coverage hooks: each protocol handler reports the
// (controller, state, event) pair it fires with to an optional observer,
// using exactly the naming scheme of the static transition atlas
// (internal/lint/atlas, docs/atlas/denovo.json). cmd/protocov aggregates
// these hits across the full kernel grid and gates every implemented
// transition on being either covered or //atlas:unreachable-annotated.
//
// With no observer attached the hooks are a nil check — nothing on the
// hot path allocates or formats.

// Controller names as they appear in atlas tuples.
const (
	CtrlL1  = "denovo.L1"
	CtrlReg = "denovo.Registry"
)

// TransitionObserver receives one (controller, state, event) hit per
// handler activation. state is the atlas constant name ("wi", "wv", "wr"
// for L1 word states; "roL2", "roSelf", "roOther" for the registry's
// per-word owner classification); event is the handler name,
// kind-qualified for access-kind-dispatched handlers (e.g.
// "recvFwdReg:SyncLoad").
type TransitionObserver func(controller, state, event string)

// WordStateName returns the atlas name of an L1 word state.
func WordStateName(s cache.WordState) string {
	switch s {
	case wi:
		return "wi"
	case wv:
		return "wv"
	case wr:
		return "wr"
	}
	return "?"
}

// OwnerStateName returns the atlas name of a registry owner state.
func OwnerStateName(s regOwnerState) string {
	switch s {
	case roL2:
		return "roL2"
	case roSelf:
		return "roSelf"
	case roOther:
		return "roOther"
	}
	return "?"
}

// SetTransitionObserver attaches (or with nil, detaches) the coverage
// observer for this L1's handlers.
func (c *L1) SetTransitionObserver(o TransitionObserver) { c.obs = o }

// SetTransitionObserver attaches (or with nil, detaches) the coverage
// observer for the registry's handlers.
func (r *Registry) SetTransitionObserver(o TransitionObserver) { r.obs = o }

// wordState returns the current cached state of word (wi if absent).
func (c *L1) wordState(word proto.Addr) cache.WordState {
	if l := c.cache.Lookup(word); l != nil {
		return l.WordState[word.WordIndex()]
	}
	return wi
}

func (c *L1) observe(s cache.WordState, event string) {
	if c.obs != nil {
		c.obs(CtrlL1, WordStateName(s), event)
	}
}

func (c *L1) observeKind(s cache.WordState, event string, k proto.AccessKind) {
	if c.obs != nil {
		c.obs(CtrlL1, WordStateName(s), event+":"+k.String())
	}
}

func (r *Registry) observe(s regOwnerState, event string) {
	if r.obs != nil {
		r.obs(CtrlReg, OwnerStateName(s), event)
	}
}

func (r *Registry) observeReg(s regOwnerState, k proto.AccessKind) {
	if r.obs != nil {
		r.obs(CtrlReg, OwnerStateName(s), "recvReg:"+k.String())
	}
}
