// Package denovo implements the DeNovo protocol family of the paper:
// word-granularity coherence with exactly three states (Invalid, Valid,
// Registered), no writer-initiated invalidations, no sharer lists, and a
// non-blocking registry at the shared L2 — extended for arbitrary
// synchronization per the paper's contribution:
//
//   - DeNovoSync0 (§4.1): synchronization reads register at the LLC like
//     writes (single-reader rule), so a sync read always sees the latest
//     registered value without any writer-initiated invalidation. Racy
//     registration transfers are resolved by a distributed queue: a
//     forwarded registration arriving at an L1 whose own registration is
//     still pending parks in the MSHR and is serviced when the ack lands.
//
//   - DeNovoSync (§4.2): adds an adaptive per-core hardware backoff. A
//     remote sync-read registration request downgrades the owner R→Valid
//     and bumps its backoff counter by the increment counter; every Nth
//     incoming remote sync-read request (N = core count) grows the
//     increment; a sync read hit resets the backoff counter; a release
//     resets the increment. Sync reads to Valid state stall for the
//     backoff value before issuing their miss.
//
// Data consistency uses DeNovo's region-based static self-invalidation
// (§3): SelfInvalidate drops cached Valid words of the named regions;
// Registered words stay (they are the core's own latest writes).
package denovo

import (
	"denovosync/internal/cache"
	"denovosync/internal/mem"
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Word states (cache.Line.WordState values). Typed so that simlint's
// exhauststate analyzer verifies every switch over a word state covers all
// three states (or panics explicitly).
const (
	wi cache.WordState = iota // Invalid
	wv                        // Valid
	wr                        // Registered
)

// Config wires a DeNovo system together.
type Config struct {
	Eng   *sim.Engine
	Net   *noc.Network
	Store *mem.Store
	DRAM  *mem.DRAM

	// EngAt, when non-nil, maps a node to the engine of the logical
	// process owning it (partitioned machines); nil means Eng drives
	// everything. Controllers resolve their engine once, at wiring time.
	EngAt func(proto.NodeID) *sim.Engine

	L1Size, L1Ways int

	// Latencies (cycles), fitted to Table 1 (1 / 27 / 9).
	L1AccessLat, L2AccessLat, RemoteL1Lat sim.Cycle

	// Backoff enables the DeNovoSync hardware backoff (false = DeNovoSync0).
	Backoff bool
	// BackoffBits sizes the backoff counter (9 bits at 16 cores, 12 at 64;
	// §5.2). The counter wraps to zero on overflow (§4.2.1).
	BackoffBits uint
	// DefaultIncrement is the increment counter's reset value (1 cycle at
	// 16 cores, 64 at 64 cores; §5.2).
	DefaultIncrement sim.Cycle
	// IncEveryN grows the increment counter by DefaultIncrement on every
	// Nth incoming remote sync-read registration request (§4.2.2: the core
	// count is a good indicator).
	IncEveryN int

	// Signatures enables DeNovoND-style hardware write signatures for
	// dynamic self-invalidation (the §3 alternative to static regions).
	// Locks built with UseSignatures consult it via the thread API.
	Signatures *mem.SigTable

	// UnitWords sets the coherence-state granularity in words: 1 (or 0)
	// is the paper's word granularity; WordsPerLine gives a line-granular
	// DeNovo variant that reintroduces false sharing — the ablation behind
	// the §2.2 claim that word-granularity state eliminates it. Must
	// divide WordsPerLine.
	UnitWords int
}

// engAt resolves the engine driving node.
func (c *Config) engAt(node proto.NodeID) *sim.Engine {
	if c.EngAt != nil {
		return c.EngAt(node)
	}
	return c.Eng
}

// unitWords returns the effective granularity.
func (c *Config) unitWords() int {
	if c.UnitWords <= 1 {
		return 1
	}
	if proto.WordsPerLine%c.UnitWords != 0 {
		panic("denovo: UnitWords must divide WordsPerLine")
	}
	return c.UnitWords
}

// unitOf returns the coherence-unit base address containing a.
func (c *Config) unitOf(a proto.Addr) proto.Addr {
	return a &^ proto.Addr(c.unitWords()*proto.WordBytes-1)
}

// initialIncrement returns the increment counter's reset value, clamped
// to the counter width like every later growth step — a DefaultIncrement
// wider than the register cannot exist in hardware.
func (c *Config) initialIncrement() sim.Cycle {
	if mask := c.backoffMask(); c.DefaultIncrement > mask {
		return mask
	}
	return c.DefaultIncrement
}

// backoffMask returns the wrap mask for the backoff counter.
func (c *Config) backoffMask() sim.Cycle {
	if c.BackoffBits == 0 || c.BackoffBits >= 63 {
		return ^sim.Cycle(0)
	}
	return (sim.Cycle(1) << c.BackoffBits) - 1
}
