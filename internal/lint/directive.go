package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive comments share one scoping rule across the lint tooling,
// whatever their syntax: an end-of-line directive applies to its own
// line ONLY, and a standalone directive comment applies to its own line
// plus the line below it. (A trailing directive deliberately does NOT
// bless the next line — it used to, and one suppression silently
// swallowed unrelated findings on the following statement.) The
// suppression filter (//simlint:allow) and the isolation prover's
// audited-crossing annotation (//lpisolate:boundary) both parse through
// this helper so the scoping bug cannot regress in one and not the
// other.

// allowRE matches a suppression directive. The reason after the colon is
// mandatory: an unjustified suppression is itself a finding.
var allowRE = regexp.MustCompile(`//simlint:allow\s+([a-z]+)\s*:\s*(\S.*)`)

// BoundaryRE matches an lpisolate audited-crossing annotation:
// //lpisolate:boundary(reason). The reason is mandatory.
var BoundaryRE = regexp.MustCompile(`//lpisolate:boundary\((\S[^)]*)\)`)

// BlessedLines scans the files' comments with parse — which returns the
// directive's payload (e.g. a suppression reason) and whether the
// comment is a recognized directive — and returns, per filename, the
// lines each directive applies to, mapped to the payload. Files must
// have been parsed with parser.ParseComments.
func BlessedLines(fset *token.FileSet, files []*ast.File, parse func(text string) (payload string, ok bool)) map[string]map[int]string {
	blessed := map[string]map[int]string{}
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if blessed[pos.Filename] == nil {
					blessed[pos.Filename] = map[int]string{}
				}
				blessed[pos.Filename][pos.Line] = payload
				if !code[pos.Line] { // standalone comment: bless the next line
					blessed[pos.Filename][pos.Line+1] = payload
				}
			}
		}
	}
	return blessed
}

// AllowDirective parses one //simlint:allow comment for analyzer name,
// returning the mandatory reason.
func AllowDirective(text, analyzer string) (reason string, ok bool) {
	m := allowRE.FindStringSubmatch(text)
	if m == nil || m[1] != analyzer || strings.TrimSpace(m[2]) == "" {
		return "", false
	}
	return strings.TrimSpace(m[2]), true
}

// BoundaryDirective parses one //lpisolate:boundary(reason) comment,
// returning the mandatory reason.
func BoundaryDirective(text string) (reason string, ok bool) {
	m := BoundaryRE.FindStringSubmatch(text)
	if m == nil || strings.TrimSpace(m[1]) == "" {
		return "", false
	}
	return strings.TrimSpace(m[1]), true
}

// codeLines marks the lines of f on which non-comment code starts (used
// to tell an end-of-line directive from a standalone directive comment).
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}
