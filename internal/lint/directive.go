package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"denovosync/internal/lint/analysis"
)

// Directive comments share one scoping rule across the lint tooling,
// whatever their syntax: an end-of-line directive applies to its own
// line ONLY, and a standalone directive comment applies to its own line
// plus the line below it. (A trailing directive deliberately does NOT
// bless the next line — it used to, and one suppression silently
// swallowed unrelated findings on the following statement.) The
// suppression filter (//simlint:allow) and the isolation prover's
// audited-crossing annotation (//lpisolate:boundary) both parse through
// this helper so the scoping bug cannot regress in one and not the
// other.

// allowRE matches a suppression directive. The reason after the colon is
// mandatory: an unjustified suppression is itself a finding.
var allowRE = regexp.MustCompile(`//simlint:allow\s+([a-z]+)\s*:\s*(\S.*)`)

// BoundaryRE matches an lpisolate audited-crossing annotation:
// //lpisolate:boundary(reason). The reason is mandatory.
var BoundaryRE = regexp.MustCompile(`//lpisolate:boundary\((\S[^)]*)\)`)

// AssumeRE matches a protolive audited-obligation escape:
// //protolive:assume(reason). The reason is mandatory.
var AssumeRE = regexp.MustCompile(`//protolive:assume\((\S[^)]*)\)`)

// BlessedLines scans the files' comments with parse — which returns the
// directive's payload (e.g. a suppression reason) and whether the
// comment is a recognized directive — and returns, per filename, the
// lines each directive applies to, mapped to the payload. Files must
// have been parsed with parser.ParseComments.
func BlessedLines(fset *token.FileSet, files []*ast.File, parse func(text string) (payload string, ok bool)) map[string]map[int]string {
	blessed := map[string]map[int]string{}
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if blessed[pos.Filename] == nil {
					blessed[pos.Filename] = map[int]string{}
				}
				blessed[pos.Filename][pos.Line] = payload
				if !code[pos.Line] { // standalone comment: bless the next line
					blessed[pos.Filename][pos.Line+1] = payload
				}
			}
		}
	}
	return blessed
}

// AllowDirective parses one //simlint:allow comment for analyzer name,
// returning the mandatory reason.
func AllowDirective(text, analyzer string) (reason string, ok bool) {
	m := allowRE.FindStringSubmatch(text)
	if m == nil || m[1] != analyzer || strings.TrimSpace(m[2]) == "" {
		return "", false
	}
	return strings.TrimSpace(m[2]), true
}

// BoundaryDirective parses one //lpisolate:boundary(reason) comment,
// returning the mandatory reason.
func BoundaryDirective(text string) (reason string, ok bool) {
	m := BoundaryRE.FindStringSubmatch(text)
	if m == nil || strings.TrimSpace(m[1]) == "" {
		return "", false
	}
	return strings.TrimSpace(m[1]), true
}

// AssumeDirective parses one //protolive:assume(reason) comment,
// returning the mandatory reason.
func AssumeDirective(text string) (reason string, ok bool) {
	m := AssumeRE.FindStringSubmatch(text)
	if m == nil || strings.TrimSpace(m[1]) == "" {
		return "", false
	}
	return strings.TrimSpace(m[1]), true
}

// Malformed-directive detection. A directive that names an unknown
// analyzer (or omits its mandatory reason) suppresses nothing — silently,
// which turns a typo into a no-op waiver. CheckDirectives makes that
// shape a build-failing diagnostic (wired into the driver, so `make
// lint` and the simlint CI step fail on it). The attempt patterns are
// deliberately stricter than free prose: an identifier followed by a
// colon for //simlint:allow, an open parenthesis for the
// reason-in-parens directives — documentation like
// "`//simlint:allow <analyzer>: <reason>`" does not match.
var (
	allowAttemptRE  = regexp.MustCompile(`//simlint:allow\s+([A-Za-z][A-Za-z0-9]*)\s*:`)
	assumeAttemptRE = regexp.MustCompile(`//protolive:assume\(`)
	boundaryAttRE   = regexp.MustCompile(`//lpisolate:boundary\(`)
)

// CheckDirectives validates every lint directive comment in files against
// the known analyzer registry and the mandatory-reason rules, returning
// one diagnostic per malformed directive. known reports whether an
// analyzer name is valid (pass lint.ByName(name) != nil; a parameter so
// the directive layer stays decoupled from the analyzer registry).
// Files must have been parsed with parser.ParseComments.
func CheckDirectives(files []*ast.File, known func(name string) bool) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, analysis.Diagnostic{Pos: pos, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if m := allowAttemptRE.FindStringSubmatch(text); m != nil {
					switch {
					case !known(m[1]):
						report(c.Pos(), "//simlint:allow names unknown analyzer "+strconv.Quote(m[1])+" — the directive suppresses nothing")
					case m[1] != strings.ToLower(m[1]):
						report(c.Pos(), "//simlint:allow analyzer name "+strconv.Quote(m[1])+" must be lowercase — the directive suppresses nothing")
					default:
						if _, ok := AllowDirective(text, m[1]); !ok {
							report(c.Pos(), "//simlint:allow "+m[1]+" is missing its mandatory reason — the directive suppresses nothing")
						}
					}
					continue
				}
				if assumeAttemptRE.MatchString(text) {
					if _, ok := AssumeDirective(text); !ok {
						report(c.Pos(), "//protolive:assume is missing its mandatory reason — the escape audits nothing")
					}
					continue
				}
				if boundaryAttRE.MatchString(text) {
					if _, ok := BoundaryDirective(text); !ok {
						report(c.Pos(), "//lpisolate:boundary is missing its mandatory reason — the annotation audits nothing")
					}
				}
			}
		}
	}
	return out
}

// codeLines marks the lines of f on which non-comment code starts (used
// to tell an end-of-line directive from a standalone directive comment).
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}
