package driver_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/driver"
)

// TestRepoIsClean is the smoke test behind `make lint`: the full suite
// over this repository must come back empty.
func TestRepoIsClean(t *testing.T) {
	findings, err := driver.Run(repoRoot(t), lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestCatchesUnhandledState demonstrates the acceptance criterion: a new
// protocol state constant with an unhandled switch makes simlint fail.
func TestCatchesUnhandledState(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/mesi/mesi.go": `package mesi

type LineState byte

const (
	Invalid LineState = iota
	Shared
	Modified
	Forwarded // the newly introduced state
)

func Transition(s LineState) int {
	switch s {
	case Invalid:
		return 0
	case Shared:
		return 1
	case Modified:
		return 2
	}
	return -1
}
`,
	})
	findings, err := driver.Run(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "exhauststate" {
		t.Fatalf("want exactly one exhauststate finding, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "Forwarded") {
		t.Fatalf("finding does not name the missing state: %s", findings[0].Message)
	}
}

// TestCatchesWallClock demonstrates the other acceptance criterion: a
// time.Now call in internal/sim makes simlint fail.
func TestCatchesWallClock(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/sim/engine.go": `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	findings, err := driver.Run(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "determinism" {
		t.Fatalf("want exactly one determinism finding, got %v", findings)
	}
}

// TestSuppressionNeedsScope checks an allow directive silences exactly
// its own analyzer, end to end through the driver.
func TestSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/stats/dump.go": `package stats

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { //simlint:allow determinism: keys are sorted by the caller
		out = append(out, k)
	}
	return out
}

func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // no directive: must be reported
		s += v
	}
	return s
}
`,
	})
	findings, err := driver.Run(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if len(findings) != 1 || findings[0].Pos.Line != 13 {
		t.Fatalf("want exactly the undirected range reported (line 13), got %v", findings)
	}
}

// TestRunAllReportsSuppression checks the -json feed: RunAll returns the
// suppressed diagnostic with its directive's reason alongside the live
// finding, and Run filters it.
func TestRunAllReportsSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/stats/dump.go": `package stats

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { //simlint:allow determinism: keys are sorted by the caller
		out = append(out, k)
	}
	return out
}

func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // no directive: must be reported
		s += v
	}
	return s
}
`,
	})
	all, err := driver.RunAll(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.RunAll: %v", err)
	}
	if len(all) != 2 {
		t.Fatalf("want 2 diagnostics (1 live + 1 suppressed), got %v", all)
	}
	var live, supp *driver.Finding
	for i := range all {
		if all[i].Suppressed {
			supp = &all[i]
		} else {
			live = &all[i]
		}
	}
	if live == nil || supp == nil {
		t.Fatalf("want one live and one suppressed, got %v", all)
	}
	if supp.Pos.Line != 5 || supp.Reason != "keys are sorted by the caller" {
		t.Errorf("suppressed finding wrong: line %d, reason %q", supp.Pos.Line, supp.Reason)
	}
	if live.Pos.Line != 13 || live.Reason != "" {
		t.Errorf("live finding wrong: line %d, reason %q", live.Pos.Line, live.Reason)
	}
	kept, err := driver.Run(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if len(kept) != 1 || kept[0].Suppressed {
		t.Fatalf("Run must filter suppressed diagnostics, got %v", kept)
	}
}

// TestFabricScopeBoundary pins the determinism boundary around the
// distributed fabric: the identical wall-clock/map-range constructs are
// clean in internal/fabric (host-service code — leases and heartbeats
// are wall-clock business) but findings in internal/backoff, whose
// seeded retry schedule must stay a pure function.
func TestFabricScopeBoundary(t *testing.T) {
	src := `package %s

import "time"

func Deadline(ttl time.Duration) time.Time { return time.Now().Add(ttl) }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	dir := writeModule(t, map[string]string{
		"internal/fabric/lease.go":  fmt.Sprintf(src, "fabric"),
		"internal/backoff/clock.go": fmt.Sprintf(src, "backoff"),
	})
	findings, err := driver.Run(dir, lint.Analyzers())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, f := range findings {
		if f.Analyzer != "determinism" {
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
			continue
		}
		if !strings.Contains(filepath.ToSlash(f.Pos.Filename), "internal/backoff/") {
			t.Errorf("determinism finding outside the backoff scope: %s", f)
		}
	}
	// Both constructs caught in backoff (time.Now + map range), none in
	// fabric.
	if len(findings) != 2 {
		t.Fatalf("want exactly 2 findings (both in internal/backoff), got %v", findings)
	}
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module demo\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}
