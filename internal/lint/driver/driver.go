// Package driver runs the simlint suite over a Go module on disk. It is
// the engine behind cmd/simlint and the in-process smoke tests: it
// enumerates the module's packages, loads each one that any analyzer's
// scope covers, runs the scoped analyzers, and applies the
// //simlint:allow suppression filter.
package driver

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
	"denovosync/internal/lint/loader"
)

// Finding is one diagnostic: either a live finding or one a
// //simlint:allow directive suppressed (Suppressed true, with the
// directive's mandatory reason).
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string

	Suppressed bool
	Reason     string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// ModulePath reads the module path from dir/go.mod.
func ModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRE.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("driver: no module line in %s/go.mod", dir)
	}
	return string(m[1]), nil
}

// ModulePathUp finds the nearest enclosing module of dir (walking up to
// the filesystem root) and returns its module path.
func ModulePathUp(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if mod, err := ModulePath(dir); err == nil {
			return mod, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("driver: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run applies analyzers to every package of the module rooted at
// moduleDir and returns the surviving (unsuppressed) findings, sorted by
// position. A package that fails to load is an error: simlint findings
// are only trustworthy on code the type checker accepted.
func Run(moduleDir string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	all, err := RunAll(moduleDir, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0:0]
	for _, f := range all {
		if !f.Suppressed {
			kept = append(kept, f)
		}
	}
	return kept, nil
}

// RunAll is Run without the suppression filter: every diagnostic comes
// back, the silenced ones marked Suppressed with their directive's
// reason. It feeds cmd/simlint -json, where an auditor wants to see the
// waivers alongside the live findings.
func RunAll(moduleDir string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	moduleDir, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := ModulePath(moduleDir)
	if err != nil {
		return nil, err
	}
	rels, err := packageDirs(moduleDir)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := loader.New(fset, func(path string) (string, bool) {
		if path == modulePath {
			return moduleDir, true
		}
		if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			dir := filepath.Join(moduleDir, filepath.FromSlash(rest))
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				return dir, true
			}
		}
		return "", false
	})

	var findings []Finding
	for _, rel := range rels {
		// Directive hygiene runs on every package — including ones outside
		// all analyzer scopes — so a //simlint:allow naming an unknown
		// analyzer (or a reason-less //protolive:assume or
		// //lpisolate:boundary) is a build-failing diagnostic instead of a
		// silent no-op. Comment scanning needs parsing only, not types, and
		// covers _test.go files the typed load below excludes.
		dfset, dfiles, err := parseDirComments(filepath.Join(moduleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, fmt.Errorf("driver: parsing %s for directives: %w", rel, err)
		}
		for _, d := range lint.CheckDirectives(dfiles, func(name string) bool { return lint.ByName(name) != nil }) {
			findings = append(findings, Finding{
				Analyzer: "directive",
				Pos:      dfset.Position(d.Pos),
				Message:  d.Message,
			})
		}

		var scoped []*analysis.Analyzer
		for _, a := range analyzers {
			if lint.InScope(a, rel) {
				scoped = append(scoped, a)
			}
		}
		if len(scoped) == 0 {
			continue
		}
		pkgPath := modulePath
		if rel != "." {
			pkgPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.Load(pkgPath)
		if err != nil {
			return nil, err
		}
		for _, a := range scoped {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, pkgPath, err)
			}
			kept, supp := lint.Partition(fset, pkg.Files, a, diags)
			for _, d := range kept {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			for _, s := range supp {
				findings = append(findings, Finding{
					Analyzer:   a.Name,
					Pos:        fset.Position(s.Diag.Pos),
					Message:    s.Diag.Message,
					Suppressed: true,
					Reason:     s.Reason,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// parseDirComments parses every .go file of one directory (tests
// included) with comments, for the directive hygiene scan. No type
// checking: directive validation is purely syntactic.
func parseDirComments(dir string) (*token.FileSet, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return fset, files, nil
}

// packageDirs returns the module-relative directories containing
// buildable Go files, in sorted order. testdata, vendor, hidden
// directories, and nested modules are skipped, matching the go tool.
func packageDirs(moduleDir string) ([]string, error) {
	var rels []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				rel, err := filepath.Rel(moduleDir, path)
				if err != nil {
					return err
				}
				rels = append(rels, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}
