package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"denovosync/internal/lint/analysis"
)

// ThreadDiscipline forbids native Go concurrency in workload packages.
// Workload code runs *inside* the simulation: every cross-thread
// interaction must flow through the simulated thread API (cpu.Thread
// loads/stores, simulated locks/barriers) so that it is timed, ordered by
// the event engine, and visible to the coherence protocols. A native
// goroutine, channel, or sync primitive would communicate through the Go
// runtime instead — untimed, invisible to the protocol under test, and
// racy against the engine (exactly the class of bug PR 1 fixed by hand in
// a kernel's prefill path). Flagged: go statements, channel types and
// operations, select statements, and imports of sync or sync/atomic.
var ThreadDiscipline = &analysis.Analyzer{
	Name: "threaddiscipline",
	Doc: "workload packages must not use go/chan/select/sync: all " +
		"cross-thread communication flows through the simulated thread API",
	Run: runThreadDiscipline,
}

func runThreadDiscipline(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				pass.Reportf(imp.Pos(),
					"import of %s in a workload package: use the simulated locks/barriers instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement in a workload package: spawn simulated threads via the machine instead")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select statement in a workload package: native channel communication bypasses the simulated memory system")
			case *ast.ChanType:
				pass.Reportf(n.Pos(),
					"channel type in a workload package: communicate through simulated memory instead")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"channel send in a workload package: communicate through simulated memory instead")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(),
						"channel receive in a workload package: communicate through simulated memory instead")
				}
			case *ast.CallExpr:
				// make(chan T) without a literal chan type in scope still
				// carries one in the argument, caught by the ChanType case;
				// nothing extra needed here. But flag close(ch).
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(), "channel close in a workload package")
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
