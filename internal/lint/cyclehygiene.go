package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"denovosync/internal/lint/analysis"
)

// CycleHygiene flags untyped integer literals that the type checker
// converts to sim.Cycle inside simulator packages. Latencies belong in
// Config structs and the params layer, where sweeps can reach them; a
// magic `27` buried in a protocol controller is invisible to every sweep
// and silently diverges from Table 1 when the params change. The literals
// 0 and 1 are allowed everywhere: "this cycle" and "next cycle" are
// scheduling structure, not tunable latency.
var CycleHygiene = &analysis.Analyzer{
	Name: "cyclehygiene",
	Doc: "untyped integer literals used as sim.Cycle outside the " +
		"config/params layer hide latencies from sweeps; 0 and 1 are allowed",
	Run: runCycleHygiene,
}

func runCycleHygiene(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || tv.Value == nil || !isSimCycle(tv.Type) {
				return true
			}
			v, exact := constant.Uint64Val(tv.Value)
			if exact && v <= 1 {
				return true
			}
			pass.Reportf(lit.Pos(),
				"untyped literal %s used as sim.Cycle: name it in a Config/params field so sweeps can reach it", lit.Value)
			return true
		})
	}
	return nil, nil
}

// isSimCycle reports whether t is the sim package's Cycle type. Matching
// is by type name and package name (not full import path) so the linttest
// fixtures' local "sim" package is recognized the same way as
// denovosync/internal/sim.
func isSimCycle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Cycle" && named.Obj().Pkg().Name() == "sim"
}
