package lint_test

import (
	"strings"
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
)

// TestBlessedLinesBoundaryScoping pins the shared directive-scoping rule
// for the lpisolate boundary annotation: a trailing
// //lpisolate:boundary(...) covers only its own line, a standalone one
// covers its own line and the next — exactly the //simlint:allow rule,
// because both parse through the same helper. (The PR 5 scoping bug —
// a trailing directive also blessing the NEXT line — must stay fixed
// for both directives.)
func TestBlessedLinesBoundaryScoping(t *testing.T) {
	fset, files, _ := filterFixture(t, map[string]string{
		"a.go": `package p

type S struct {
	//lpisolate:boundary(standalone: blesses the field below)
	A int
	B int //lpisolate:boundary(trailing: blesses only this line)
	C int
}
`,
	})
	blessed := lint.BlessedLines(fset, files, lint.BoundaryDirective)
	want := map[int]string{
		4: "standalone: blesses the field below",
		5: "standalone: blesses the field below",
		6: "trailing: blesses only this line",
	}
	got := blessed["a.go"]
	if len(got) != len(want) {
		t.Fatalf("blessed lines = %v, want %v", got, want)
	}
	for line, reason := range want {
		if got[line] != reason {
			t.Errorf("line %d: reason %q, want %q", line, got[line], reason)
		}
	}
	if _, ok := got[7]; ok {
		t.Errorf("line 7 (below a trailing directive) must NOT be blessed")
	}
}

func TestBoundaryDirectiveRequiresReason(t *testing.T) {
	for _, text := range []string{
		"//lpisolate:boundary()",
		"//lpisolate:boundary( )",
		"//lpisolate:boundary",
		"// an ordinary comment",
	} {
		if _, ok := lint.BoundaryDirective(text); ok {
			t.Errorf("%q parsed as a valid boundary directive", text)
		}
	}
	reason, ok := lint.BoundaryDirective("//lpisolate:boundary(committed image: PDES port shards by home tile)")
	if !ok || reason != "committed image: PDES port shards by home tile" {
		t.Errorf("valid directive parsed as (%q, %v)", reason, ok)
	}
}

// TestAssumeDirectiveRequiresReason pins the protolive escape syntax to
// the boundary rules: parenthesized, reason mandatory.
func TestAssumeDirectiveRequiresReason(t *testing.T) {
	for _, text := range []string{
		"//protolive:assume()",
		"//protolive:assume( )",
		"//protolive:assume",
		"// an ordinary comment",
	} {
		if _, ok := lint.AssumeDirective(text); ok {
			t.Errorf("%q parsed as a valid assume directive", text)
		}
	}
	reason, ok := lint.AssumeDirective("//protolive:assume(handoff bounded by the registry serial)")
	if !ok || reason != "handoff bounded by the registry serial" {
		t.Errorf("valid directive parsed as (%q, %v)", reason, ok)
	}
}

// TestCheckDirectivesUnknownAnalyzer pins the build-failing diagnostic
// for directives naming an unknown analyzer: a typo used to silently
// suppress nothing.
func TestCheckDirectivesUnknownAnalyzer(t *testing.T) {
	fset, files, _ := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	_ = 1 //simlint:allow determinsm: typo in the analyzer name
	_ = 2 //simlint:allow determinism: valid directive
	_ = 3 //simlint:allow Determinism: miscased name never matches
	_ = 4 //simlint:allow determinism:
	//protolive:assume()
	_ = 5
	//protolive:assume(justified: fixture)
	_ = 6
	//lpisolate:boundary()
	_ = 7
}
`,
	})
	known := func(name string) bool { return lint.ByName(name) != nil }
	diags := lint.CheckDirectives(files, known)
	wantLines := map[int]string{
		4:  "unknown analyzer",
		6:  "must be lowercase",
		7:  "missing its mandatory reason",
		8:  "//protolive:assume is missing",
		12: "//lpisolate:boundary is missing",
	}
	if len(diags) != len(wantLines) {
		for _, d := range diags {
			t.Logf("diag: %s: %s", fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wantLines))
	}
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		substr, ok := wantLines[line]
		if !ok {
			t.Errorf("unexpected diagnostic at line %d: %s", line, d.Message)
			continue
		}
		if !strings.Contains(d.Message, substr) {
			t.Errorf("line %d: message %q does not mention %q", line, d.Message, substr)
		}
	}
}

// TestCheckDirectivesIgnoresProse proves documentation that merely
// mentions the directive syntax is not flagged.
func TestCheckDirectivesIgnoresProse(t *testing.T) {
	_, files, _ := filterFixture(t, map[string]string{
		"a.go": `package p

// Suppress a finding at the site with
// "//simlint:allow <analyzer>: <reason>"; audit a crossing with
// //lpisolate:boundary(reason) and an obligation with
// //protolive:assume(reason). The //simlint:allow suppression filter
// shares its scoping rule with both.
func f() {}
`,
	})
	known := func(name string) bool { return lint.ByName(name) != nil }
	if diags := lint.CheckDirectives(files, known); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("prose flagged: %s", d.Message)
		}
	}
}

// TestPartitionReportsSuppressions pins the machine-readable suppression
// info behind cmd/simlint -json: Partition returns both the kept
// findings and the suppressed ones with their directive reasons.
func TestPartitionReportsSuppressions(t *testing.T) {
	fset, files, at := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	_ = 1 //simlint:allow determinism: justified here
	_ = 2
}
`,
	})
	diags := []analysis.Diagnostic{at("a.go", 4), at("a.go", 5)}
	kept, supp := lint.Partition(fset, files, lint.Determinism, diags)
	if len(kept) != 1 || fset.Position(kept[0].Pos).Line != 5 {
		t.Fatalf("want the line-5 finding kept, got %v", positions(fset, kept))
	}
	if len(supp) != 1 || supp[0].Reason != "justified here" {
		t.Fatalf("want one suppression with its reason, got %+v", supp)
	}
	if fset.Position(supp[0].Diag.Pos).Line != 4 {
		t.Fatalf("suppressed diagnostic at line %d, want 4", fset.Position(supp[0].Diag.Pos).Line)
	}
}
