package lint_test

import (
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
)

// TestBlessedLinesBoundaryScoping pins the shared directive-scoping rule
// for the lpisolate boundary annotation: a trailing
// //lpisolate:boundary(...) covers only its own line, a standalone one
// covers its own line and the next — exactly the //simlint:allow rule,
// because both parse through the same helper. (The PR 5 scoping bug —
// a trailing directive also blessing the NEXT line — must stay fixed
// for both directives.)
func TestBlessedLinesBoundaryScoping(t *testing.T) {
	fset, files, _ := filterFixture(t, map[string]string{
		"a.go": `package p

type S struct {
	//lpisolate:boundary(standalone: blesses the field below)
	A int
	B int //lpisolate:boundary(trailing: blesses only this line)
	C int
}
`,
	})
	blessed := lint.BlessedLines(fset, files, lint.BoundaryDirective)
	want := map[int]string{
		4: "standalone: blesses the field below",
		5: "standalone: blesses the field below",
		6: "trailing: blesses only this line",
	}
	got := blessed["a.go"]
	if len(got) != len(want) {
		t.Fatalf("blessed lines = %v, want %v", got, want)
	}
	for line, reason := range want {
		if got[line] != reason {
			t.Errorf("line %d: reason %q, want %q", line, got[line], reason)
		}
	}
	if _, ok := got[7]; ok {
		t.Errorf("line 7 (below a trailing directive) must NOT be blessed")
	}
}

func TestBoundaryDirectiveRequiresReason(t *testing.T) {
	for _, text := range []string{
		"//lpisolate:boundary()",
		"//lpisolate:boundary( )",
		"//lpisolate:boundary",
		"// an ordinary comment",
	} {
		if _, ok := lint.BoundaryDirective(text); ok {
			t.Errorf("%q parsed as a valid boundary directive", text)
		}
	}
	reason, ok := lint.BoundaryDirective("//lpisolate:boundary(committed image: PDES port shards by home tile)")
	if !ok || reason != "committed image: PDES port shards by home tile" {
		t.Errorf("valid directive parsed as (%q, %v)", reason, ok)
	}
}

// TestPartitionReportsSuppressions pins the machine-readable suppression
// info behind cmd/simlint -json: Partition returns both the kept
// findings and the suppressed ones with their directive reasons.
func TestPartitionReportsSuppressions(t *testing.T) {
	fset, files, at := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	_ = 1 //simlint:allow determinism: justified here
	_ = 2
}
`,
	})
	diags := []analysis.Diagnostic{at("a.go", 4), at("a.go", 5)}
	kept, supp := lint.Partition(fset, files, lint.Determinism, diags)
	if len(kept) != 1 || fset.Position(kept[0].Pos).Line != 5 {
		t.Fatalf("want the line-5 finding kept, got %v", positions(fset, kept))
	}
	if len(supp) != 1 || supp[0].Reason != "justified here" {
		t.Fatalf("want one suppression with its reason, got %+v", supp)
	}
	if fset.Position(supp[0].Diag.Pos).Line != 4 {
		t.Fatalf("suppressed diagnostic at line %d, want 4", fset.Position(supp[0].Diag.Pos).Line)
	}
}
