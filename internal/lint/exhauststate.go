package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"denovosync/internal/lint/analysis"
)

// ExhaustState checks that every switch over a protocol state type covers
// all declared constants of that type, or carries an explicit panicking
// default. State types are recognized by convention: a defined (named)
// type whose name ends in "State" (case-insensitive) — cache.LineState,
// cache.WordState, cache.MSHRState, mesi's dirState, the verify models'
// meCoreState/meDirState/dnWordState. The required constant set is the
// union of constants of that type declared in the type's defining package
// and in the analyzed package (protocol packages declare their own
// constants of cache-owned types, e.g. mesi's li/ls/le/lm).
//
// The same rule applies to map-keyed transition tables: a composite
// literal of type map[SomeState]V must list an entry for every declared
// constant of the state type. A handler refactored from a switch into a
// table lookup stays in scope, and a newly added state can no more be
// silently absent from the table than fall through a switch. Tables
// that deliberately cover a subset carry a per-site //simlint:allow
// with a reason (there is no map analog of a panicking default — a
// missing key is a silent zero value, the exact hazard).
var ExhaustState = &analysis.Analyzer{
	Name: "exhauststate",
	Doc: "switches over protocol state types must cover every declared " +
		"constant or panic in an explicit default, and map literals keyed " +
		"by a state type must list every constant, so a newly added state " +
		"can never silently fall through a transition",
	Run: runExhaustState,
}

func runExhaustState(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				checkStateMapLit(pass, lit)
				return true
			}
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.TypeOf(sw.Tag)
			named := stateType(tagType)
			if named == nil {
				return true
			}
			required := stateConstants(named, pass.Pkg)
			if len(required) == 0 {
				return true
			}

			covered := map[string]bool{} // constant exact value -> seen
			hasDefault, defaultPanics := false, false
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					defaultPanics = clausePanics(cc)
					continue
				}
				for _, e := range cc.List {
					if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault && defaultPanics {
				return true
			}

			var missing []string
			for val, names := range required { //simlint:allow determinism: names are sorted before reporting
				if !covered[val] {
					missing = append(missing, strings.Join(names, "/"))
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			what := "no default"
			if hasDefault {
				what = "a non-panicking default"
			}
			pass.Reportf(sw.Pos(),
				"switch over %s misses constants %s and has %s (cover them or panic in the default)",
				typeString(named, pass.Pkg), strings.Join(missing, ", "), what)
			return true
		})
	}
	return nil, nil
}

// checkStateMapLit applies the exhaustiveness rule to a composite
// literal whose type is a map keyed by a protocol state type.
func checkStateMapLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	named := stateType(m.Key())
	if named == nil {
		return
	}
	required := stateConstants(named, pass.Pkg)
	if len(required) == 0 {
		return
	}
	covered := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[kv.Key]; ok && tv.Value != nil {
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for val, names := range required { //simlint:allow determinism: names are sorted before reporting
		if !covered[val] {
			missing = append(missing, strings.Join(names, "/"))
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(lit.Pos(),
		"map literal keyed by %s misses constants %s (a missing key is a silent zero value — add the entries or suppress with a reason)",
		typeString(named, pass.Pkg), strings.Join(missing, ", "))
}

// stateType returns t as a defined type whose name marks it a protocol
// state type, or nil.
func stateType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if !strings.HasSuffix(strings.ToLower(named.Obj().Name()), "state") {
		return nil
	}
	return named
}

// stateConstants collects the declared constants of type named from the
// type's defining package and from pkg, keyed by exact constant value
// (several names may alias one value).
func stateConstants(named *types.Named, pkg *types.Package) map[string][]string {
	out := map[string][]string{}
	scopes := []*types.Scope{named.Obj().Pkg().Scope()}
	if pkg != nil && pkg != named.Obj().Pkg() {
		scopes = append(scopes, pkg.Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), named) {
				continue
			}
			key := c.Val().ExactString()
			out[key] = append(out[key], c.Name())
		}
	}
	return out
}

// clausePanics reports whether the clause body's control flow ends in a
// call to the panic builtin (directly, or inside a trailing block).
func clausePanics(cc *ast.CaseClause) bool {
	stmts := cc.Body
	for len(stmts) > 0 {
		last := stmts[len(stmts)-1]
		switch s := last.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "panic"
		case *ast.BlockStmt:
			stmts = s.List
		default:
			return false
		}
	}
	return false
}

func typeString(named *types.Named, pkg *types.Package) string {
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() == pkg {
		return obj.Name()
	}
	return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
}
