// Package linttest runs a simlint analyzer over fixture packages under a
// testdata/src directory and checks its diagnostics against `// want`
// comments, following the golang.org/x/tools/go/analysis/analysistest
// convention: a comment `// want "regexp"` (or a backquoted regexp) on a
// line asserts exactly one diagnostic on that line whose message matches.
// The //simlint:allow suppression filter is applied before matching, so
// fixtures exercise the directive too.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
	"denovosync/internal/lint/loader"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(?:"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`" + `)`)

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package from testdata/src/<pkg>, applies a, and
// reports mismatches between diagnostics and want comments on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	ld := loader.New(fset, func(path string) (string, bool) {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})

	for _, pkgPath := range pkgs {
		pkg, err := ld.Load(pkgPath)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkgPath, err)
			continue
		}

		wants := map[string]map[int][]*want{} // filename -> line -> expectations
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					raw := m[2]
					if m[1] != "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Errorf("%s: bad want string %q: %v", a.Name, m[1], err)
							continue
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", a.Name, raw, err)
						continue
					}
					pos := fset.Position(c.Pos())
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]*want{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &want{re: re, raw: raw})
				}
			}
		}

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, pkgPath, err)
			continue
		}
		diags = lint.Filter(fset, pkg.Files, a, diags)

		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if !consume(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
			}
		}
		for fname, byLine := range wants {
			for line, ws := range byLine {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, fname, line, w.raw)
					}
				}
			}
		}
	}
}

// consume marks the first unmatched expectation on (file, line) whose
// regexp matches msg.
func consume(wants map[string]map[int][]*want, file string, line int, msg string) bool {
	for _, w := range wants[file][line] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
