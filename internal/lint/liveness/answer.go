package liveness

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"denovosync/internal/lint/atlas"
)

// ruleUnansweredRequest: every consumed request is answered (replied,
// forwarded), parked on a chain, or fail-stopped, on all control paths.
// A request is a pointer-to-controller parameter (the requester) or a
// queued request record (a chain-element struct parameter).
func ruleUnansweredRequest(g *Graph, p *pkgModel, in *inclusion) {
	for _, m := range sortedMethods(in) {
		if m.kind != "message" {
			continue
		}
		reqs := requesterParams(p, m)
		all := reqs.all()
		if len(all) == 0 {
			continue
		}
		objs := make([]types.Object, 0, len(all))
		for o := range all {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].Name() < objs[j].Name() })
		for _, obj := range objs {
			ck := &answerCheck{p: p, in: in, memo: map[string]bool{}, inProgress: map[string]bool{}}
			r := ck.analyzeMethod(m, map[types.Object]bool{obj: true})
			answered := r.ok && (!r.falls || r.answered)
			ob := Obligation{
				Rule:    "unanswered-request",
				Subject: m.id() + "(" + obj.Name() + ")",
				Pos:     p.posString(m.decl.Pos()),
			}
			if reason, okA := p.assumeFor(m.decl.Pos()); okA && !answered {
				ob.Status = "discharged"
				ob.By = "assumed: " + reason
			} else if answered {
				ob.Status = "discharged"
				ob.By = "answered, parked, or fail-stopped on all paths"
			} else {
				ob.Status = "violated"
				pos := ck.violPos
				if pos == token.NoPos {
					pos = m.decl.Body.Rbrace
				}
				g.Findings = append(g.Findings, Finding{
					Rule: "unanswered-request",
					Pos:  p.posString(pos),
					Message: fmt.Sprintf("request %s consumed by %s is dropped on this path: not answered, parked, or fail-stopped", obj.Name(), m.id()),
				})
			}
			g.Obligations = append(g.Obligations, ob)
		}
	}
}

// answerCheck carries one rule run's state: the memo table for
// propagated helper calls and the first violating exit position.
type answerCheck struct {
	p          *pkgModel
	in         *inclusion
	memo       map[string]bool
	inProgress map[string]bool
	violPos    token.Pos
}

// pathResult summarizes a statement (or list): ok means every
// terminating path inside answered first; falls means control can fall
// past it; answered describes the fall path.
type pathResult struct {
	ok       bool
	falls    bool
	answered bool
}

func (ck *answerCheck) analyzeMethod(m *method, req map[types.Object]bool) pathResult {
	fr := &answerFrame{ck: ck, m: m, req: req, defs: ck.p.localDefsCache(m)}
	return fr.list(m.decl.Body.List, false)
}

// answerFrame is the per-method analysis frame (requester object set and
// local definitions are method-scoped).
type answerFrame struct {
	ck   *answerCheck
	m    *method
	req  map[types.Object]bool
	defs map[types.Object][]ast.Expr
}

func (fr *answerFrame) list(stmts []ast.Stmt, answeredIn bool) pathResult {
	answered := answeredIn
	ok := true
	for _, s := range stmts {
		r := fr.stmt(s, answered)
		ok = ok && r.ok
		if !r.falls {
			return pathResult{ok: ok, falls: false}
		}
		answered = r.answered
	}
	return pathResult{ok: ok, falls: true, answered: answered}
}

func (fr *answerFrame) stmt(s ast.Stmt, answered bool) pathResult {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		if !answered {
			if fr.ck.violPos == token.NoPos {
				fr.ck.violPos = v.Pos()
			}
			return pathResult{ok: false, falls: false}
		}
		return pathResult{ok: true, falls: false}
	case *ast.BlockStmt:
		return fr.list(v.List, answered)
	case *ast.IfStmt:
		if v.Init != nil {
			r := fr.stmt(v.Init, answered)
			answered = answered || r.answered
		}
		then := fr.list(v.Body.List, answered)
		els := pathResult{ok: true, falls: true, answered: answered}
		if v.Else != nil {
			els = fr.stmt(v.Else, answered)
		}
		return merge(then, els)
	case *ast.SwitchStmt:
		if v.Init != nil {
			r := fr.stmt(v.Init, answered)
			answered = answered || r.answered
		}
		return fr.switchArms(v.Tag, v.Body, answered)
	case *ast.TypeSwitchStmt:
		return fr.switchArms(nil, v.Body, answered)
	case *ast.ForStmt:
		body := fr.list(v.Body.List, answered)
		// The loop may run zero times: answers inside do not cover the
		// fall path; returns inside still must be answered.
		return pathResult{ok: body.ok, falls: true, answered: answered}
	case *ast.RangeStmt:
		body := fr.list(v.Body.List, answered)
		return pathResult{ok: body.ok, falls: true, answered: answered}
	case *ast.ExprStmt:
		if isPanic(v.X) {
			return pathResult{ok: true, falls: false}
		}
		if fr.answersExpr(v.X) {
			answered = true
		}
		return pathResult{ok: true, falls: true, answered: answered}
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			if fr.answersExpr(rhs) {
				answered = true
			}
		}
		return pathResult{ok: true, falls: true, answered: answered}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt, *ast.BranchStmt, *ast.SendStmt:
		return pathResult{ok: true, falls: true, answered: answered}
	}
	return pathResult{ok: true, falls: true, answered: answered}
}

// merge combines two alternative branches.
func merge(a, b pathResult) pathResult {
	out := pathResult{ok: a.ok && b.ok, falls: a.falls || b.falls}
	switch {
	case a.falls && b.falls:
		out.answered = a.answered && b.answered
	case a.falls:
		out.answered = a.answered
	case b.falls:
		out.answered = b.answered
	}
	return out
}

// switchArms analyzes a switch body; a non-exhaustive switch gets a
// virtual empty arm for the skipped-values path.
func (fr *answerFrame) switchArms(tag ast.Expr, body *ast.BlockStmt, answered bool) pathResult {
	results := []pathResult{}
	hasDefault := false
	var caseConsts []string
	for _, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			if name := fr.constNameOf(e); name != "" {
				caseConsts = append(caseConsts, name)
			}
		}
		results = append(results, fr.list(clause.Body, answered))
	}
	exhaustive := hasDefault
	if !exhaustive && tag != nil {
		exhaustive = fr.coversEnum(tag, caseConsts)
	}
	if !exhaustive {
		results = append(results, pathResult{ok: true, falls: true, answered: answered})
	}
	if len(results) == 0 {
		return pathResult{ok: true, falls: true, answered: answered}
	}
	out := results[0]
	for _, r := range results[1:] {
		out = merge(out, r)
	}
	return out
}

func (fr *answerFrame) constNameOf(e ast.Expr) string {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return ""
	}
	if c, ok := fr.ck.p.info.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// coversEnum reports whether the case constants cover every declared
// constant of the tag's named type (so the switch is exhaustive).
func (fr *answerFrame) coversEnum(tag ast.Expr, caseConsts []string) bool {
	tv, ok := fr.ck.p.info.Types[tag]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	scopes := []*types.Scope{fr.ck.p.tpkg.Scope()}
	if named.Obj().Pkg() != nil && named.Obj().Pkg() != fr.ck.p.tpkg {
		scopes = append(scopes, named.Obj().Pkg().Scope())
	}
	covered := map[string]bool{}
	for _, c := range caseConsts {
		covered[c] = true
	}
	total := 0
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), named) {
				continue
			}
			total++
			if !covered[c.Name()] {
				return false
			}
		}
	}
	return total > 0
}

// answersExpr reports whether evaluating e answers the request: a Send
// mentioning the requester, a park (append-to-chain) mentioning it, a
// covered same-context callback, or a propagated helper call.
func (fr *answerFrame) answersExpr(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	p := fr.ck.p
	// append(chain, ... requester ...): parked.
	if isAppend(call) && len(call.Args) >= 2 {
		if f := p.resolveFieldExpr(call.Args[0], fr.defs, 0); f != nil {
			if _, isChain := p.chains[f]; isChain && p.mentionsObj(call, fr.req) {
				return true
			}
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name == "Send" && len(call.Args) > 0 {
		if _, isLit := call.Args[len(call.Args)-1].(*ast.FuncLit); isLit {
			return p.mentionsObj(call, fr.req)
		}
	}
	if fr.isDescend(name, call) {
		fn := call.Args[len(call.Args)-1].(*ast.FuncLit)
		r := fr.list(fn.Body.List, false)
		return r.ok && (!r.falls || r.answered)
	}
	// Same-controller helper call propagating the requester.
	if recv := p.recvControllerName(sel); recv == fr.m.recvName {
		callee := p.methodByRecv(recv, name)
		if callee == nil {
			return false
		}
		return fr.ck.propagates(callee, call, fr.req, fr.p())
	}
	return false
}

func (fr *answerFrame) p() *pkgModel { return fr.ck.p }

func (fr *answerFrame) isDescend(name string, call *ast.CallExpr) bool {
	if !atlas.DescendCall(name) || len(call.Args) == 0 {
		return false
	}
	_, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return ok
}

// propagates reports whether a helper call forwards the requester into
// the callee and the callee answers it on all paths. Memoized per
// (callee, forwarded-parameter set); in-progress recursion is
// conservatively "not answered".
func (ck *answerCheck) propagates(callee *method, call *ast.CallExpr, req map[types.Object]bool, p *pkgModel) bool {
	params := flatParams(p, callee.decl)
	if len(params) == 0 {
		return false
	}
	var idxs []int
	calleeReq := map[types.Object]bool{}
	n := len(call.Args)
	if n > len(params) {
		n = len(params)
	}
	for i := 0; i < n; i++ {
		if p.mentionsObj(call.Args[i], req) {
			idxs = append(idxs, i)
			calleeReq[params[i]] = true
		}
	}
	if len(idxs) == 0 {
		return false
	}
	keyParts := make([]string, len(idxs))
	for i, ix := range idxs {
		keyParts[i] = fmt.Sprint(ix)
	}
	key := callee.id() + ":" + strings.Join(keyParts, ",")
	if v, ok := ck.memo[key]; ok {
		return v
	}
	if ck.inProgress[key] {
		return false
	}
	ck.inProgress[key] = true
	r := ck.analyzeInner(callee, calleeReq)
	delete(ck.inProgress, key)
	ans := r.ok && (!r.falls || r.answered)
	ck.memo[key] = ans
	return ans
}

// analyzeInner runs the frame analysis on a callee without clobbering
// the outer violation position.
func (ck *answerCheck) analyzeInner(m *method, req map[types.Object]bool) pathResult {
	saved := ck.violPos
	fr := &answerFrame{ck: ck, m: m, req: req, defs: ck.p.localDefsCache(m)}
	r := fr.list(m.decl.Body.List, false)
	ck.violPos = saved
	return r
}

// flatParams returns a method's parameter objects in declaration order.
func flatParams(p *pkgModel, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Params == nil {
		return out
	}
	for _, f := range decl.Type.Params.List {
		for _, name := range f.Names {
			out = append(out, p.info.Defs[name])
		}
	}
	return out
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
