package liveness_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"denovosync/internal/lint/atlas"
	"denovosync/internal/lint/liveness"
)

// fixtureGraph certifies one livefix package (testdata/livefix is its
// own module so the planted bugs never enter the real build).
func fixtureGraph(t *testing.T, pkg string, controllers []liveness.Controller) *liveness.Graph {
	t.Helper()
	g, err := liveness.ExtractDir(filepath.Join("testdata", "livefix"), liveness.Spec{
		{Path: "livefix/" + pkg, Controllers: controllers},
	})
	if err != nil {
		t.Fatalf("ExtractDir(livefix/%s): %v", pkg, err)
	}
	return g
}

// wantFinding asserts exactly one finding of the rule, anchored to the
// fixture file with its message naming the defect.
func wantFinding(t *testing.T, g *liveness.Graph, rule, filePrefix, substr string) liveness.Finding {
	t.Helper()
	var hits []liveness.Finding
	for _, f := range g.Findings {
		if f.Rule == rule {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		for _, f := range g.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d %s findings, want exactly 1", len(hits), rule)
	}
	f := hits[0]
	if !strings.HasPrefix(f.Pos, filePrefix) {
		t.Errorf("%s finding at %s, want an arm-level position in %s", rule, f.Pos, filePrefix)
	}
	if !strings.Contains(f.Message, substr) {
		t.Errorf("%s message %q does not mention %q", rule, f.Message, substr)
	}
	return f
}

// TestPlantedRegistrationForwardDeadlock replays the PR 5 bug shape:
// recvFwdReg parking forwarded registrations with no
// serialization-order guard, while its own send path answers peer
// parks. Reverting the fix (dropping the `stale` ordering comparison)
// reintroduces exactly this shape in the real tree.
func TestPlantedRegistrationForwardDeadlock(t *testing.T) {
	g := fixtureGraph(t, "dn", []liveness.Controller{
		{Name: "dn.L1", Recv: "L1", Handlers: []string{"recvFwdReg", "serviceFwd", "recvRegAck"}},
	})
	if len(g.Findings) != 1 {
		for _, f := range g.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want exactly the planted deadlock", len(g.Findings))
	}
	wantFinding(t, g, "mutual-park", "dn.go:", "serialization-order guard")
	// The mutual-park obligation must name both sides of the deadlock:
	// the parked chain and the send path that answers peer parks.
	found := false
	for _, o := range g.Obligations {
		if o.Rule == "mutual-park" && o.Status == "violated" &&
			strings.Contains(o.Subject, "dn.L1.recvFwdReg") && strings.Contains(o.Subject, "dn.txn.parked") {
			found = true
		}
	}
	if !found {
		t.Errorf("no violated mutual-park obligation for dn.L1.recvFwdReg parks dn.txn.parked: %+v", g.Obligations)
	}
}

// TestPlantedStaleRetireAndDroppedRequest replays the PR 6 stale-Put
// shape (ownership retired on sender identity with no epoch check) plus
// a silently dropped request.
func TestPlantedStaleRetireAndDroppedRequest(t *testing.T) {
	g := fixtureGraph(t, "md", []liveness.Controller{
		{Name: "md.Dir", Recv: "Dir", Handlers: []string{"recvPut", "recvDrop"}},
		{Name: "md.L1", Recv: "L1"},
	})
	if len(g.Findings) != 2 {
		for _, f := range g.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want the planted stale-retire and dropped request", len(g.Findings))
	}
	wantFinding(t, g, "stale-retire", "md.go:", "grant-serial")
	f := wantFinding(t, g, "unanswered-request", "md.go:", "dropped on this path")
	if !strings.Contains(f.Message, "md.Dir.recvDrop") {
		t.Errorf("unanswered-request finding %q does not name the dropping arm", f.Message)
	}
}

// TestPlantedUnguardedPark pins both halves of the rule: a park chain
// with no discharge arm is flagged, and the same shape under
// //protolive:assume(reason) is an audited escape recorded in the
// certificate instead.
func TestPlantedUnguardedPark(t *testing.T) {
	g := fixtureGraph(t, "park", []liveness.Controller{
		{Name: "park.Ctl", Recv: "Ctl", Handlers: []string{"recvMiss", "recvStall"}},
	})
	if len(g.Findings) != 1 {
		for _, f := range g.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want only the unassumed park", len(g.Findings))
	}
	f := wantFinding(t, g, "unguarded-park", "park.go:", "never woken")
	if !strings.Contains(f.Message, "park.line.waiters") {
		t.Errorf("finding %q does not name the undischarged chain", f.Message)
	}
	if len(g.Assumes) != 1 || g.Assumes[0].Reason != "drained by the host runtime between epochs" {
		t.Fatalf("assumes = %+v, want the one audited escape with its reason", g.Assumes)
	}
	// The assumed chain's obligation is discharged, not silently skipped.
	ok := false
	for _, o := range g.Obligations {
		if o.Rule == "unguarded-park" && o.Subject == "park.line.stalls" &&
			o.Status == "discharged" && strings.Contains(o.By, "assumed:") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("no discharged-by-assume obligation for park.line.stalls: %+v", g.Obligations)
	}
}

// TestPlantedUnclampedBackoff: growth without mask or clamp inside a
// masked-update arm is flagged.
func TestPlantedUnclampedBackoff(t *testing.T) {
	g := fixtureGraph(t, "boff", []liveness.Controller{
		{Name: "boff.Ctl", Recv: "Ctl", Handlers: []string{"noteRemote"}},
	})
	if len(g.Findings) != 1 {
		for _, f := range g.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want the unclamped counter", len(g.Findings))
	}
	wantFinding(t, g, "backoff-clamped", "boff.go:", "without a mask or clamp")
}

// TestPlantedClassCycle: two arms answering each other on one network
// class with no finite-queue discharge form a flagged cycle.
func TestPlantedClassCycle(t *testing.T) {
	g := fixtureGraph(t, "ping", []liveness.Controller{
		{Name: "ping.Node", Recv: "Node", Handlers: []string{"recvPing", "recvPong"}},
	})
	if len(g.Findings) != 1 {
		for _, f := range g.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want the ping-pong cycle", len(g.Findings))
	}
	f := wantFinding(t, g, "class-cycle", "ping.go:", "ClassSynch")
	if !strings.Contains(f.Message, "recvPing") || !strings.Contains(f.Message, "recvPong") {
		t.Errorf("cycle finding %q does not name both arms", f.Message)
	}
}

// repoModuleDir walks up to the repository's own go.mod.
func repoModuleDir(t *testing.T) string {
	t.Helper()
	d, err := atlas.FindModuleDir(".")
	if err != nil {
		t.Fatalf("FindModuleDir: %v", err)
	}
	return d
}

// TestRepoLivenessClean certifies the real protocol packages: zero
// findings (the fixed trees stay silent — the fixture replicas above
// prove the rules would catch the pre-fix shapes), every obligation
// discharged, and the checked-in golden exactly matching a fresh
// extraction.
func TestRepoLivenessClean(t *testing.T) {
	moduleDir := repoModuleDir(t)
	module, err := atlas.ModulePath(moduleDir)
	if err != nil {
		t.Fatalf("ModulePath: %v", err)
	}
	fresh, err := liveness.ExtractDir(moduleDir, liveness.DefaultSpec(module))
	if err != nil {
		t.Fatalf("ExtractDir: %v", err)
	}
	for _, f := range fresh.Findings {
		t.Errorf("finding on the fixed tree: %s", f)
	}
	for _, o := range fresh.Obligations {
		if o.Status != "discharged" {
			t.Errorf("obligation not discharged: %s %s at %s", o.Rule, o.Subject, o.Pos)
		}
	}
	// The certificate is non-vacuous: the PR 5 and PR 6 shapes appear as
	// discharged obligations, not as silence.
	wantDischarged := map[string]bool{"mutual-park": false, "stale-retire": false, "unanswered-request": false, "class-cycle": false, "unguarded-park": false, "backoff-clamped": false}
	for _, o := range fresh.Obligations {
		wantDischarged[o.Rule] = true
	}
	for rule, seen := range wantDischarged {
		if !seen {
			t.Errorf("rule %s produced no obligations — the certificate is vacuous for it", rule)
		}
	}
	golden, err := liveness.ReadFile(filepath.Join(moduleDir, "docs", "liveness", "waitgraph.json"))
	if err != nil {
		t.Fatalf("golden: %v (run `make liveness`)", err)
	}
	if diffs := liveness.Diff(golden, fresh); len(diffs) > 0 {
		for _, d := range diffs {
			t.Errorf("waitgraph drift: %s", d)
		}
	}
	if !liveness.Equal(golden, fresh) {
		t.Errorf("golden waitgraph.json differs from a fresh extraction — run `make liveness`")
	}
}

// TestCertificateByteStable regenerates the certificate twice through
// the full serialization path and requires identical bytes.
func TestCertificateByteStable(t *testing.T) {
	moduleDir := repoModuleDir(t)
	module, err := atlas.ModulePath(moduleDir)
	if err != nil {
		t.Fatalf("ModulePath: %v", err)
	}
	paths := make([]string, 2)
	for i := range paths {
		g, err := liveness.ExtractDir(moduleDir, liveness.DefaultSpec(module))
		if err != nil {
			t.Fatalf("ExtractDir #%d: %v", i+1, err)
		}
		p := filepath.Join(t.TempDir(), "waitgraph.json")
		if err := g.WriteFile(p); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		paths[i] = p
	}
	a, _ := os.ReadFile(paths[0])
	b, _ := os.ReadFile(paths[1])
	if string(a) != string(b) {
		t.Fatalf("two regenerations differ byte-for-byte")
	}
}
