module livefix

go 1.22
