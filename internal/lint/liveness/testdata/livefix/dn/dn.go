// Package dn pins the pre-fix shape of the denovo registration-forward
// parking deadlock: recvFwdReg parks every forwarded request while a
// local registration is in flight, with no serialization-order guard.
// Two L1s forwarding to each other can then park each other's
// registration forever. The liveness certifier must flag the park as a
// mutual-park violation; the fixed tree (guarded by the registry-serial
// ordering comparison) must stay silent.
package dn

type Class int

const (
	ClassST Class = iota
	ClassSynch
)

type Net struct{}

func (n *Net) Send(from, to int, cls Class, flits int, fn func()) { fn() }

type Eng struct{}

func (e *Eng) Schedule(d int, fn func()) { fn() }

type parked struct {
	kind int
	from *L1
}

type txn struct {
	word    int
	parked  []parked
	waiters []func()
}

type L1 struct {
	node int
	net  *Net
	eng  *Eng
	txns map[int]*txn
}

// recvFwdReg parks the forwarded request whenever a local registration
// is outstanding — unconditionally, which is the deadlock.
func (c *L1) recvFwdReg(word, kind int, from *L1) {
	if t := c.txns[word]; t != nil {
		t.parked = append(t.parked, parked{kind: kind, from: from})
		return
	}
	c.eng.Schedule(1, func() { c.serviceFwd(kind, from, word) })
}

func (c *L1) serviceFwd(kind int, from *L1, word int) {
	c.net.Send(c.node, from.node, ClassSynch, 1, func() { from.recvRegAck(word, kind) })
}

func (c *L1) recvRegAck(word, kind int) {
	t := c.txns[word]
	if t == nil {
		panic("dn: ack without txn")
	}
	delete(c.txns, word)
	for _, fn := range t.waiters {
		fn()
	}
	for _, p := range t.parked {
		c.serviceFwd(p.kind, p.from, word)
	}
}
