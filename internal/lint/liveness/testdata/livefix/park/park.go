// Package park pins the unguarded-park rule: a chain that accumulates
// parked continuations with no discharge arm anywhere in the package is
// a black hole, while an identical park under //protolive:assume is an
// audited escape, not a finding.
package park

type line struct {
	waiters []func()
	stalls  []func()
}

type Ctl struct {
	lines map[int]*line
}

// recvMiss parks the access with no wakeup arm anywhere in the package.
func (c *Ctl) recvMiss(word int, fn func()) {
	l := c.lines[word]
	l.waiters = append(l.waiters, fn)
}

// recvStall parks on a chain drained outside the modeled controllers.
func (c *Ctl) recvStall(word int, fn func()) {
	l := c.lines[word]
	//protolive:assume(drained by the host runtime between epochs)
	l.stalls = append(l.stalls, fn)
}
