// Package ping pins the class-cycle rule: two arms that answer each
// other on the same network class, with no finite-queue discharge in
// the cycle, can ping-pong forever without making progress.
package ping

type Class int

const ClassSynch Class = 0

type Net struct{}

func (n *Net) Send(from, to int, cls Class, flits int, fn func()) { fn() }

type Node struct {
	net  *Net
	id   int
	peer *Node
}

func (a *Node) recvPing(v int) {
	a.net.Send(a.id, a.peer.id, ClassSynch, 1, func() { a.peer.recvPong(v) })
}

func (a *Node) recvPong(v int) {
	a.net.Send(a.id, a.peer.id, ClassSynch, 1, func() { a.peer.recvPing(v) })
}
