// Package boff pins the backoff-clamped rule: inside a masked-update
// arm, a companion counter that grows without a mask or compare-clamp
// escapes the bounded-backoff guarantee (§4.2's clamp).
package boff

type Cycle uint64

type Ctl struct {
	backoff Cycle
	inc     Cycle
	mask    Cycle
}

// noteRemote grows the increment with no clamp toward the mask.
func (c *Ctl) noteRemote() {
	c.backoff = (c.backoff + c.inc) & c.mask
	c.inc += 2
}
