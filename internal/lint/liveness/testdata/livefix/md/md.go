// Package md pins two planted directory bugs. recvPut is the pre-fix
// MESI stale-Put shape: ownership is retired on sender identity alone,
// with no epoch (grant-serial) check, so a stale writeback racing a
// re-grant can revoke the newer owner (stale-retire). recvDrop consumes
// a request and silently returns while the entry is busy — neither
// answered, parked, nor fail-stopped (unanswered-request).
package md

type Class int

const ClassWB Class = 0

type Net struct{}

func (n *Net) Send(from, to int, cls Class, flits int, fn func()) { fn() }

type entry struct {
	state int
	owner *L1
	busy  bool
}

type L1 struct{ node int }

func (c *L1) recvAck(line int) {}

type Dir struct {
	node    int
	net     *Net
	entries map[int]*entry
}

// recvPut retires ownership if the sender is the recorded owner: no
// grant-serial freshness check.
func (d *Dir) recvPut(line int, from *L1) {
	e := d.entries[line]
	if !e.busy && e.owner == from {
		e.state = 0
		e.owner = nil
	}
	d.net.Send(d.node, from.node, ClassWB, 1, func() { from.recvAck(line) })
}

// recvDrop silently drops the request while the entry is busy.
func (d *Dir) recvDrop(line int, from *L1) {
	e := d.entries[line]
	if e.busy {
		return
	}
	d.net.Send(d.node, from.node, ClassWB, 1, func() { from.recvAck(line) })
}
