// Package liveness is protolive's analysis core: a whole-program static
// certifier for the protocol-liveness obligations of internal/mesi and
// internal/denovo. From every (controller, state, event) handler arm it
// derives the arm's blocking behavior — replies immediately, parks the
// request on a chain, forwards it, or NACKs into bounded backoff — and
// assembles the cross-controller waits-for graph over message classes
// and finite resources (MSHRs, park chains, registry entries). Six rules
// then prove the liveness obligations:
//
//	unguarded-park     every chain with park sites has a statically
//	                   reachable discharge arm (wakeup)
//	mutual-park        a handler that parks requests AND answers its
//	                   peers' parks carries a serialization-order guard
//	                   (the PR 5 registration-forward deadlock shape)
//	unanswered-request every consumed request is answered, parked, or
//	                   fail-stopped on all paths
//	class-cycle        the per-class message dependency graph is acyclic
//	                   unless a finite-queue discharge breaks the cycle
//	backoff-clamped    counters in masked-update functions only grow
//	                   toward their clamp
//	stale-retire       ownership retired on sender identity also checks
//	                   a grant serial (the PR 6 stale-Put shape)
//
// The result is a deterministic Graph, checked in as
// docs/liveness/waitgraph.json and gated byte-for-byte by
// `make liveness-check`. Audited escapes use //protolive:assume(reason).
package liveness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies the golden file format.
const Schema = "liveness.v1"

// Node is one handler arm or helper in the waits-for graph.
type Node struct {
	ID         string `json:"id"`         // "denovo.L1.recvFwdReg"
	Controller string `json:"controller"` // "denovo.L1"
	Handler    string `json:"handler"`    // method name
	// Kind: "message" (a message-consuming arm: send target or declared
	// handler), "entry" (externally driven exported method), "helper".
	Kind string `json:"kind"`
	Pos  string `json:"pos"`
}

// Edge is one waits-for dependency: a message send (kind "message",
// with its network class) or a local call (kind "call").
type Edge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Class string `json:"class,omitempty"` // constant name, "?" if unresolved
	Kind  string `json:"kind"`
	// ViaDischarge marks an edge originating in a function that drains a
	// park chain: traversing it consumes finite queued work, so a cycle
	// through it is bounded progress, not a livelock.
	ViaDischarge bool   `json:"viaDischarge,omitempty"`
	Pos          string `json:"pos"`
}

// Chain is one park chain: a slice (or map-of-slice) field holding
// parked continuations or parked requests.
type Chain struct {
	ID         string   `json:"id"`   // "denovo.wtxn.parked"
	Elem       string   `json:"elem"` // "func" or the element struct name
	Parks      []string `json:"parks,omitempty"`
	Discharges []string `json:"discharges,omitempty"`
}

// Resource is one finite allocation table (MSHRs, registry/directory
// entries): a map field holding per-key records.
type Resource struct {
	ID string `json:"id"` // "denovo.L1.txns"
	// Kind: "transaction" (entries are freed — MSHR-like) or
	// "persistent" (entries live for the run — registry/directory state).
	Kind   string   `json:"kind"`
	Allocs []string `json:"allocs,omitempty"`
	Frees  []string `json:"frees,omitempty"`
}

// Obligation is one liveness proof obligation and how it was discharged.
type Obligation struct {
	Rule    string `json:"rule"`
	Subject string `json:"subject"`
	// Status: "discharged" or "violated" (violations also produce a
	// Finding; the golden is only accepted at zero findings).
	Status string `json:"status"`
	By     string `json:"by,omitempty"` // discharge argument
	Pos    string `json:"pos"`
}

// Assume is one audited //protolive:assume(reason) escape.
type Assume struct {
	Pos    string `json:"pos"`
	Reason string `json:"reason"`
}

// Finding is one liveness violation.
type Finding struct {
	Rule    string `json:"rule"`
	Pos     string `json:"pos"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Rule)
}

// Graph is the checked-in liveness certificate.
type Graph struct {
	Schema      string       `json:"schema"`
	Packages    []string     `json:"packages"`
	Nodes       []Node       `json:"nodes"`
	Edges       []Edge       `json:"edges"`
	Chains      []Chain      `json:"chains"`
	Resources   []Resource   `json:"resources"`
	Obligations []Obligation `json:"obligations"`
	Assumes     []Assume     `json:"assumes,omitempty"`
	Findings    []Finding    `json:"findings,omitempty"`
}

// Sort puts the graph in canonical order so serialization is
// deterministic and regenerations are byte-stable.
func (g *Graph) Sort() {
	sort.Strings(g.Packages)
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pos < b.Pos
	})
	for i := range g.Chains {
		sort.Strings(g.Chains[i].Parks)
		sort.Strings(g.Chains[i].Discharges)
	}
	sort.Slice(g.Chains, func(i, j int) bool { return g.Chains[i].ID < g.Chains[j].ID })
	for i := range g.Resources {
		sort.Strings(g.Resources[i].Allocs)
		sort.Strings(g.Resources[i].Frees)
	}
	sort.Slice(g.Resources, func(i, j int) bool { return g.Resources[i].ID < g.Resources[j].ID })
	sort.Slice(g.Obligations, func(i, j int) bool {
		a, b := g.Obligations[i], g.Obligations[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Pos < b.Pos
	})
	sort.Slice(g.Assumes, func(i, j int) bool { return g.Assumes[i].Pos < g.Assumes[j].Pos })
	sort.Slice(g.Findings, func(i, j int) bool {
		a, b := g.Findings[i], g.Findings[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Rule < b.Rule
	})
}

// WriteFile writes the canonical JSON encoding (sorted, indented, with a
// trailing newline) to path.
func (g *Graph) WriteFile(path string) error {
	g.Sort()
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a golden waitgraph.
func ReadFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("liveness: parsing %s: %w", path, err)
	}
	if g.Schema != Schema {
		return nil, fmt.Errorf("liveness: %s has schema %q, want %q", path, g.Schema, Schema)
	}
	return &g, nil
}

// Equal reports whether two graphs have identical canonical forms.
func Equal(a, b *Graph) bool {
	a.Sort()
	b.Sort()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

// Diff returns human-readable drift lines between the golden (want) and
// a fresh extraction (got).
func Diff(want, got *Graph) []string {
	var out []string
	diffKeys := func(kind string, w, g []string) {
		ws, gs := map[string]bool{}, map[string]bool{}
		for _, k := range w {
			ws[k] = true
		}
		for _, k := range g {
			gs[k] = true
		}
		var lines []string
		for _, k := range w {
			if !gs[k] {
				lines = append(lines, fmt.Sprintf("- %s %s", kind, k))
			}
		}
		for _, k := range g {
			if !ws[k] {
				lines = append(lines, fmt.Sprintf("+ %s %s", kind, k))
			}
		}
		sort.Strings(lines)
		out = append(out, lines...)
	}
	diffKeys("node", nodeKeys(want), nodeKeys(got))
	diffKeys("edge", edgeKeys(want), edgeKeys(got))
	diffKeys("chain", chainKeys(want), chainKeys(got))
	diffKeys("resource", resourceKeys(want), resourceKeys(got))
	diffKeys("obligation", obligationKeys(want), obligationKeys(got))
	diffKeys("assume", assumeKeys(want), assumeKeys(got))
	diffKeys("finding", findingKeys(want), findingKeys(got))
	return out
}

func nodeKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, fmt.Sprintf("%s kind=%s pos=%s", n.ID, n.Kind, n.Pos))
	}
	return out
}

func edgeKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Edges))
	for _, e := range g.Edges {
		k := fmt.Sprintf("%s -> %s kind=%s", e.From, e.To, e.Kind)
		if e.Class != "" {
			k += " class=" + e.Class
		}
		if e.ViaDischarge {
			k += " viaDischarge"
		}
		out = append(out, k+" pos="+e.Pos)
	}
	return out
}

func chainKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Chains))
	for _, c := range g.Chains {
		out = append(out, fmt.Sprintf("%s elem=%s parks=%d discharges=%d", c.ID, c.Elem, len(c.Parks), len(c.Discharges)))
	}
	return out
}

func resourceKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Resources))
	for _, r := range g.Resources {
		out = append(out, fmt.Sprintf("%s kind=%s", r.ID, r.Kind))
	}
	return out
}

func obligationKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Obligations))
	for _, o := range g.Obligations {
		out = append(out, fmt.Sprintf("%s %s status=%s pos=%s", o.Rule, o.Subject, o.Status, o.Pos))
	}
	return out
}

func assumeKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Assumes))
	for _, a := range g.Assumes {
		out = append(out, fmt.Sprintf("%s %q", a.Pos, a.Reason))
	}
	return out
}

func findingKeys(g *Graph) []string {
	out := make([]string, 0, len(g.Findings))
	for _, f := range g.Findings {
		out = append(out, f.String())
	}
	return out
}
