package liveness

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// certify assembles the waits-for graph of the extracted packages and
// runs the six liveness rules, producing the full certificate.
func certify(models []*pkgModel) *Graph {
	g := &Graph{Schema: Schema}
	for _, p := range models {
		g.Packages = append(g.Packages, p.pkgPath)
		inc := include(p)
		emitNodes(g, p, inc)
		emitEdges(g, p, inc)
		emitChains(g, p, inc)
		emitResources(g, p)
		ruleUnguardedPark(g, p, inc)
		ruleMutualPark(g, p, inc)
		ruleUnansweredRequest(g, p, inc)
		ruleClassCycle(g, p, inc)
		ruleBackoffClamped(g, p, inc)
		ruleStaleRetire(g, p, inc)
		g.Assumes = append(g.Assumes, p.assumes...)
	}
	g.Sort()
	return g
}

// inclusion is the set of methods that form the graph, with their node
// kinds resolved.
type inclusion struct {
	methods map[string]*method // "Recv.name"
	kinds   map[string]string  // "Recv.name" -> message|entry|helper
}

func (in *inclusion) has(recv, name string) bool {
	_, ok := in.methods[recv+"."+name]
	return ok
}

// include computes the reachable method set: roots are the declared
// handlers plus exported (externally driven) methods; the closure
// follows local call edges and send targets.
func include(p *pkgModel) *inclusion {
	in := &inclusion{methods: map[string]*method{}, kinds: map[string]string{}}
	isHandler := map[string]bool{}
	var queue []*method
	push := func(m *method, kind string) {
		key := m.recvName + "." + m.name
		if prev, ok := in.kinds[key]; ok {
			// message outranks entry outranks helper.
			if rank(kind) > rank(prev) {
				in.kinds[key] = kind
			}
			return
		}
		in.methods[key] = m
		in.kinds[key] = kind
		queue = append(queue, m)
	}
	for _, c := range p.controllers {
		for _, h := range c.Handlers {
			isHandler[c.Recv+"."+h] = true
			if m := p.methodByRecv(c.Recv, h); m != nil {
				push(m, "message")
			}
		}
	}
	for key, m := range p.methods {
		if ast.IsExported(m.name) && interestingCallee(m.name) && !isHandler[key] {
			push(m, "entry")
		}
	}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, c := range m.calls {
			if callee := p.methodByRecv(m.recvName, c.callee); callee != nil {
				push(callee, "helper")
			}
		}
		for _, s := range m.sends {
			for _, t := range s.targets {
				if tm := p.methodByRecv(t.typeName, t.method); tm != nil {
					push(tm, "message")
				}
			}
		}
	}
	// Drop isolated fact-free non-message nodes (pure entry stubs).
	incident := map[string]bool{}
	for _, m := range in.methods {
		for _, c := range m.calls {
			if in.has(m.recvName, c.callee) {
				incident[m.recvName+"."+c.callee] = true
				incident[m.recvName+"."+m.name] = true
			}
		}
		for _, s := range m.sends {
			for _, t := range s.targets {
				if in.has(t.typeName, t.method) {
					incident[t.typeName+"."+t.method] = true
					incident[m.recvName+"."+m.name] = true
				}
			}
		}
	}
	for key, m := range in.methods {
		facts := len(m.sends) + len(m.calls) + len(m.parks) + len(m.discharges) + len(m.growths)
		if facts == 0 && !incident[key] && in.kinds[key] != "message" {
			delete(in.methods, key)
			delete(in.kinds, key)
		}
	}
	for key, m := range in.methods {
		m.kind = in.kinds[key]
	}
	return in
}

func rank(kind string) int {
	switch kind {
	case "message":
		return 2
	case "entry":
		return 1
	}
	return 0
}

func emitNodes(g *Graph, p *pkgModel, in *inclusion) {
	for _, m := range in.methods {
		g.Nodes = append(g.Nodes, Node{
			ID:         m.id(),
			Controller: m.controller,
			Handler:    m.name,
			Kind:       m.kind,
			Pos:        p.posString(m.decl.Pos()),
		})
	}
}

// graphEdge is the internal (pre-dedup) edge form shared by emitEdges
// and the cycle rule.
type graphEdge struct {
	from, to     string
	class        string // "" for call edges
	kind         string
	viaDischarge bool
	pos          string
}

func modelEdges(p *pkgModel, in *inclusion) []graphEdge {
	var out []graphEdge
	for _, m := range in.methods {
		via := len(m.discharges) > 0
		for _, c := range m.calls {
			if !in.has(m.recvName, c.callee) {
				continue
			}
			out = append(out, graphEdge{
				from: m.id(), to: m.controller + "." + c.callee,
				kind: "call", viaDischarge: via, pos: p.posString(c.pos),
			})
		}
		for _, s := range m.sends {
			for _, t := range s.targets {
				if !in.has(t.typeName, t.method) {
					continue
				}
				to := p.controllers[t.typeName].Name + "." + t.method
				for _, cls := range s.classes {
					out = append(out, graphEdge{
						from: m.id(), to: to, class: cls,
						kind: "message", viaDischarge: via, pos: p.posString(s.pos),
					})
				}
			}
		}
	}
	return out
}

func emitEdges(g *Graph, p *pkgModel, in *inclusion) {
	best := map[string]graphEdge{}
	for _, e := range modelEdges(p, in) {
		key := e.from + "\x00" + e.to + "\x00" + e.kind + "\x00" + e.class
		if prev, ok := best[key]; !ok || e.pos < prev.pos {
			best[key] = e
		}
	}
	for _, e := range best {
		g.Edges = append(g.Edges, Edge{
			From: e.from, To: e.to, Class: e.class, Kind: e.kind,
			ViaDischarge: e.viaDischarge, Pos: e.pos,
		})
	}
}

func emitChains(g *Graph, p *pkgModel, in *inclusion) {
	for _, c := range p.chains {
		ch := Chain{ID: c.id, Elem: c.elem}
		for _, m := range in.methods {
			for _, pk := range m.parks {
				if pk.chain == c {
					ch.Parks = append(ch.Parks, m.id()+"@"+p.posString(pk.pos))
				}
			}
			for _, d := range m.discharges {
				if d.chain == c {
					ch.Discharges = append(ch.Discharges, m.id()+"@"+p.posString(d.pos))
				}
			}
		}
		g.Chains = append(g.Chains, ch)
	}
}

func emitResources(g *Graph, p *pkgModel) {
	for _, r := range p.resources {
		kind := "persistent"
		if len(r.frees) > 0 {
			kind = "transaction"
		}
		res := Resource{ID: r.id, Kind: kind}
		for _, a := range r.allocs {
			res.Allocs = append(res.Allocs, p.posString(a))
		}
		for _, f := range r.frees {
			res.Frees = append(res.Frees, p.posString(f))
		}
		g.Resources = append(g.Resources, res)
	}
}

// ruleUnguardedPark: every chain with park sites has a statically
// reachable discharge arm.
func ruleUnguardedPark(g *Graph, p *pkgModel, in *inclusion) {
	type sites struct {
		parks      []*parkSite
		parkOwners []*method
		discharges []string
	}
	byChain := map[*chainInfo]*sites{}
	for _, m := range in.methods {
		for _, pk := range m.parks {
			s := byChain[pk.chain]
			if s == nil {
				s = &sites{}
				byChain[pk.chain] = s
			}
			s.parks = append(s.parks, pk)
			s.parkOwners = append(s.parkOwners, m)
		}
		for _, d := range m.discharges {
			s := byChain[d.chain]
			if s == nil {
				s = &sites{}
				byChain[d.chain] = s
			}
			s.discharges = append(s.discharges, m.id())
		}
	}
	for c, s := range byChain {
		if len(s.parks) == 0 {
			continue
		}
		// Parks blessed by //protolive:assume are out of scope.
		var live []*parkSite
		var reasons []string
		for _, pk := range s.parks {
			if r, ok := p.assumeFor(pk.pos); ok {
				reasons = append(reasons, r)
			} else {
				live = append(live, pk)
			}
		}
		first := s.parks[0].pos
		for _, pk := range s.parks[1:] {
			if pk.pos < first {
				first = pk.pos
			}
		}
		ob := Obligation{Rule: "unguarded-park", Subject: c.id, Pos: p.posString(first)}
		switch {
		case len(live) == 0:
			ob.Status = "discharged"
			ob.By = "assumed: " + strings.Join(reasons, "; ")
		case len(s.discharges) > 0:
			ob.Status = "discharged"
			ds := append([]string(nil), s.discharges...)
			sort.Strings(ds)
			ob.By = "drained in " + strings.Join(dedupStrings(ds), ", ")
		default:
			ob.Status = "violated"
			for _, pk := range live {
				g.Findings = append(g.Findings, Finding{
					Rule: "unguarded-park",
					Pos:  p.posString(pk.pos),
					Message: fmt.Sprintf("park on %s has no reachable discharge arm: requests queued here are never woken", c.id),
				})
			}
		}
		g.Obligations = append(g.Obligations, ob)
	}
}

// ruleMutualPark: a handler that parks requests while its own send path
// answers peer parks of the same chain must carry a serialization-order
// guard (the registration-forward deadlock shape).
func ruleMutualPark(g *Graph, p *pkgModel, in *inclusion) {
	// Direct dischargers per chain, per receiver type.
	dischargers := map[*chainInfo]map[string]map[string]bool{} // chain -> recv -> method
	for _, m := range in.methods {
		for _, d := range m.discharges {
			if dischargers[d.chain] == nil {
				dischargers[d.chain] = map[string]map[string]bool{}
			}
			if dischargers[d.chain][m.recvName] == nil {
				dischargers[d.chain][m.recvName] = map[string]bool{}
			}
			dischargers[d.chain][m.recvName][m.name] = true
		}
	}
	for _, m := range sortedMethods(in) {
		for _, pk := range m.parks {
			peers := dischargers[pk.chain][m.recvName]
			if len(peers) == 0 {
				continue
			}
			hazard := ""
			for _, rm := range localReach(p, in, m) {
				for _, s := range rm.sends {
					for _, t := range s.targets {
						if t.typeName == m.recvName && peers[t.method] {
							hazard = rm.id() + " sends " + t.typeName + "." + t.method
						}
					}
				}
			}
			if hazard == "" {
				continue
			}
			ob := Obligation{
				Rule:    "mutual-park",
				Subject: m.id() + " parks " + pk.chain.id,
				Pos:     p.posString(pk.pos),
			}
			if reason, ok := p.assumeFor(pk.pos); ok {
				ob.Status = "discharged"
				ob.By = "assumed: " + reason
			} else if guard, ok := orderingGuard(p, m, pk); ok {
				ob.Status = "discharged"
				ob.By = "serialization-order guard: " + guard
			} else {
				ob.Status = "violated"
				g.Findings = append(g.Findings, Finding{
					Rule: "mutual-park",
					Pos:  p.posString(pk.pos),
					Message: fmt.Sprintf("%s parks on %s while its send path (%s) answers peer parks: mutual park can deadlock without a serialization-order guard", m.id(), pk.chain.id, hazard),
				})
			}
			g.Obligations = append(g.Obligations, ob)
		}
	}
}

// localReach is the same-controller call closure from m.
func localReach(p *pkgModel, in *inclusion, m *method) []*method {
	seen := map[string]*method{m.id(): m}
	queue := []*method{m}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range cur.calls {
			callee := p.methodByRecv(cur.recvName, c.callee)
			if callee == nil || !in.has(cur.recvName, c.callee) {
				continue
			}
			if _, ok := seen[callee.id()]; !ok {
				seen[callee.id()] = callee
				queue = append(queue, callee)
			}
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*method, 0, len(ids))
	for _, id := range ids {
		out = append(out, seen[id])
	}
	return out
}

// orderingGuard reports whether a park site is dominated by an
// ordering comparison (<, <=, >, >=) — directly in an enclosing
// condition, or one local-alias hop away (stale := serial < bound).
func orderingGuard(p *pkgModel, m *method, pk *parkSite) (string, bool) {
	defs := p.localDefsCache(m)
	for _, cond := range pk.conds {
		if e, ok := findOrdering(cond); ok {
			return renderExpr(p, e), true
		}
		found := ""
		ast.Inspect(cond, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.info.Uses[id]
			if obj == nil {
				return true
			}
			for _, def := range defs[obj] {
				if e, ok := findOrdering(def); ok {
					found = id.Name + " = " + renderExpr(p, e)
					return false
				}
			}
			return true
		})
		if found != "" {
			return found, true
		}
	}
	return "", false
}

func findOrdering(e ast.Expr) (*ast.BinaryExpr, bool) {
	var out *ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			out = b
			return false
		}
		return true
	})
	return out, out != nil
}

// renderExpr prints a guard expression compactly for the ledger.
func renderExpr(p *pkgModel, e ast.Expr) string {
	start := p.fset.Position(e.Pos())
	end := p.fset.Position(e.End())
	_ = end
	return fmt.Sprintf("ordering comparison at %s:%d", start.Filename[strings.LastIndex(start.Filename, "/")+1:], start.Line)
}

// ruleBackoffClamped: counters in masked-update functions only grow
// toward their clamp.
func ruleBackoffClamped(g *Graph, p *pkgModel, in *inclusion) {
	for _, m := range sortedMethods(in) {
		for _, gr := range m.growths {
			ob := Obligation{
				Rule:    "backoff-clamped",
				Subject: m.id() + "." + gr.field.Name(),
				Pos:     p.posString(gr.pos),
			}
			if reason, ok := p.assumeFor(gr.pos); ok {
				ob.Status = "discharged"
				ob.By = "assumed: " + reason
			} else if gr.masked {
				ob.Status = "discharged"
				ob.By = "mask-bounded or compare-clamped in the same arm"
			} else {
				ob.Status = "violated"
				g.Findings = append(g.Findings, Finding{
					Rule: "backoff-clamped",
					Pos:  p.posString(gr.pos),
					Message: fmt.Sprintf("backoff counter %s grows without a mask or clamp: unbounded growth defeats the bounded-backoff guarantee", gr.field.Name()),
				})
			}
			g.Obligations = append(g.Obligations, ob)
		}
	}
}

// ruleClassCycle: per network class, the message dependency graph must
// be acyclic unless a finite-queue discharge bounds the cycle.
func ruleClassCycle(g *Graph, p *pkgModel, in *inclusion) {
	edges := modelEdges(p, in)
	classes := map[string]bool{}
	for _, e := range edges {
		if e.kind == "message" && e.class != "?" && e.class != "" {
			classes[e.class] = true
		}
	}
	if len(classes) == 0 {
		for _, e := range edges {
			if e.kind == "message" {
				classes["?"] = true
				break
			}
		}
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, cls := range names {
		sub := make([]graphEdge, 0, len(edges))
		firstMsgPos := ""
		for _, e := range edges {
			if e.kind == "call" || e.class == cls || e.class == "?" || cls == "?" {
				sub = append(sub, e)
				if e.kind == "message" && (firstMsgPos == "" || e.pos < firstMsgPos) {
					firstMsgPos = e.pos
				}
			}
		}
		ob := Obligation{Rule: "class-cycle", Subject: p.pkgName + " class " + cls, Pos: firstMsgPos}
		cycles := sccCycles(sub)
		violated := false
		var brokenBy []string
		for _, scc := range cycles {
			hasMsg, hasDischarge := false, false
			var dischargeFroms []string
			for _, e := range scc.edges {
				if e.kind == "message" {
					hasMsg = true
				}
				if e.viaDischarge {
					hasDischarge = true
					dischargeFroms = append(dischargeFroms, e.from)
				}
			}
			if !hasMsg {
				continue
			}
			if hasDischarge {
				brokenBy = append(brokenBy, dischargeFroms...)
				continue
			}
			violated = true
			pos := scc.edges[0].pos
			for _, e := range scc.edges {
				if e.kind == "message" && e.pos < pos {
					pos = e.pos
				}
			}
			g.Findings = append(g.Findings, Finding{
				Rule: "class-cycle",
				Pos:  pos,
				Message: fmt.Sprintf("class %s dependency cycle through %s: no finite-queue discharge bounds it", cls, strings.Join(scc.nodes, " -> ")),
			})
		}
		if violated {
			ob.Status = "violated"
		} else if len(brokenBy) > 0 {
			sort.Strings(brokenBy)
			ob.Status = "discharged"
			ob.By = "cycle bounded by discharge in " + strings.Join(dedupStrings(brokenBy), ", ")
		} else {
			ob.Status = "discharged"
			ob.By = "acyclic"
		}
		g.Obligations = append(g.Obligations, ob)
	}
}

// scc holds one non-trivial strongly connected component and its
// internal edges.
type scc struct {
	nodes []string
	edges []graphEdge
}

// sccCycles runs Tarjan's algorithm and returns the components that can
// sustain a cycle (size > 1, or a self-loop).
func sccCycles(edges []graphEdge) []scc {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from] = true
		nodes[e.to] = true
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, vs := range adj {
		sort.Strings(vs)
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range names {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	var out []scc
	for _, comp := range comps {
		in := map[string]bool{}
		for _, n := range comp {
			in[n] = true
		}
		var internal []graphEdge
		selfLoop := false
		for _, e := range edges {
			if in[e.from] && in[e.to] {
				internal = append(internal, e)
				if e.from == e.to {
					selfLoop = true
				}
			}
		}
		if len(comp) > 1 || selfLoop {
			sort.Strings(comp)
			out = append(out, scc{nodes: comp, edges: internal})
		}
	}
	sort.Slice(out, func(i, j int) bool { return strings.Join(out[i].nodes, ",") < strings.Join(out[j].nodes, ",") })
	return out
}

// ruleStaleRetire: an arm that retires ownership on sender identity must
// also check a grant serial (the stale-Put shape).
func ruleStaleRetire(g *Graph, p *pkgModel, in *inclusion) {
	for _, m := range sortedMethods(in) {
		if m.kind != "message" {
			continue
		}
		reqs := requesterParams(p, m)
		if len(reqs.ptrObjs) == 0 {
			continue
		}
		ints := integerParams(p, m)
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if !condComparesIdentity(p, ifs.Cond, reqs.ptrObjs) || !bodyAssignsField(p, ifs.Body) {
				return true
			}
			ob := Obligation{
				Rule:    "stale-retire",
				Subject: m.id(),
				Pos:     p.posString(ifs.Pos()),
			}
			if reason, okA := p.assumeFor(ifs.Pos()); okA {
				ob.Status = "discharged"
				ob.By = "assumed: " + reason
			} else if condComparesSerial(p, ifs.Cond, ints) {
				ob.Status = "discharged"
				ob.By = "grant-serial equality in the same guard"
			} else {
				ob.Status = "violated"
				g.Findings = append(g.Findings, Finding{
					Rule: "stale-retire",
					Pos:  p.posString(ifs.Pos()),
					Message: fmt.Sprintf("%s retires ownership on sender identity without a grant-serial check: a stale message can revoke a newer grant", m.id()),
				})
			}
			g.Obligations = append(g.Obligations, ob)
			return true
		})
	}
}

type reqParams struct {
	ptrObjs  map[types.Object]bool // pointer-to-controller params
	elemObjs map[types.Object]bool // chain-element struct params
}

func (r reqParams) all() map[types.Object]bool {
	out := map[types.Object]bool{}
	for o := range r.ptrObjs {
		out[o] = true
	}
	for o := range r.elemObjs {
		out[o] = true
	}
	return out
}

// requesterParams finds a method's request-carrying parameters: pointers
// to controllers, and package chain-element structs (queued requests).
func requesterParams(p *pkgModel, m *method) reqParams {
	out := reqParams{ptrObjs: map[types.Object]bool{}, elemObjs: map[types.Object]bool{}}
	elemNames := map[string]bool{}
	for _, c := range p.chains {
		if c.elem != "func" {
			elemNames[c.elem] = true
		}
	}
	if m.decl.Type.Params == nil {
		return out
	}
	for _, f := range m.decl.Type.Params.List {
		for _, name := range f.Names {
			obj := p.info.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			if p.controllerPtr(t) != "" {
				out.ptrObjs[obj] = true
				continue
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() == p.tpkg && elemNames[n.Obj().Name()] {
				out.elemObjs[obj] = true
			}
		}
	}
	return out
}

func integerParams(p *pkgModel, m *method) map[types.Object]bool {
	out := map[types.Object]bool{}
	if m.decl.Type.Params == nil {
		return out
	}
	for _, f := range m.decl.Type.Params.List {
		for _, name := range f.Names {
			obj := p.info.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				out[obj] = true
			}
		}
	}
	return out
}

// condComparesIdentity: cond contains `x == param` for a requester
// pointer param.
func condComparesIdentity(p *pkgModel, cond ast.Expr, reqs map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.EQL {
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			if id, ok := side.(*ast.Ident); ok {
				if obj := p.info.Uses[id]; obj != nil && reqs[obj] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// condComparesSerial: cond contains `field == intParam` (a grant-serial
// freshness check).
func condComparesSerial(p *pkgModel, cond ast.Expr, ints map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.EQL {
			return true
		}
		var paramSide, otherSide ast.Expr
		if id, ok := b.X.(*ast.Ident); ok && p.info.Uses[id] != nil && ints[p.info.Uses[id]] {
			paramSide, otherSide = b.X, b.Y
		} else if id, ok := b.Y.(*ast.Ident); ok && p.info.Uses[id] != nil && ints[p.info.Uses[id]] {
			paramSide, otherSide = b.Y, b.X
		}
		if paramSide == nil {
			return true
		}
		if p.fieldOf(otherSide) != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

func bodyAssignsField(p *pkgModel, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if p.fieldOf(lhs) != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func sortedMethods(in *inclusion) []*method {
	keys := make([]string, 0, len(in.methods))
	for k := range in.methods {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*method, 0, len(keys))
	for _, k := range keys {
		out = append(out, in.methods[k])
	}
	return out
}

func dedupStrings(sorted []string) []string {
	var out []string
	for _, s := range sorted {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}
