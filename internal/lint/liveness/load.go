package liveness

import (
	"denovosync/internal/lint/atlas"
)

// DefaultSpec is the repo's certification target: the two protocol
// packages, with the controller/handler registry shared with the atlas
// extractor so the two analyzers cannot drift apart.
func DefaultSpec(module string) Spec {
	var s Spec
	for _, protocol := range []string{"denovo", "mesi"} {
		pkg := Package{Path: module + "/internal/" + protocol}
		for _, cs := range atlas.Specs(protocol) {
			pkg.Controllers = append(pkg.Controllers, Controller{
				Name:     cs.Controller,
				Recv:     cs.Recv,
				Handlers: cs.Handlers,
			})
		}
		s = append(s, pkg)
	}
	return s
}

// ExtractDir loads every spec package from the module rooted at
// moduleDir (source-only, offline), extracts the waits-for model, and
// certifies it.
func ExtractDir(moduleDir string, spec Spec) (*Graph, error) {
	var models []*pkgModel
	for _, sp := range spec {
		fset, pkg, err := atlas.LoadDir(moduleDir, sp.Path)
		if err != nil {
			return nil, err
		}
		m, err := extractPackage(fset, pkg.Files, pkg.Types, pkg.Info, sp)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return certify(models), nil
}
