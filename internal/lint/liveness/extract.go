package liveness

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"strings"

	"denovosync/internal/lint"
	"denovosync/internal/lint/atlas"
)

// Controller names one protocol controller inside an analyzed package.
type Controller struct {
	Name     string   // node prefix, e.g. "denovo.L1"
	Recv     string   // receiver type name within the package
	Handlers []string // declared message-arm methods (entry points)
}

// Package names one package to certify and its controllers.
type Package struct {
	Path        string
	Controllers []Controller
}

// Spec is the full certification target.
type Spec []Package

// target is one method invoked inside a Send callback: the remote
// handler the message reaches.
type target struct {
	typeName string // receiver type name ("L1", "Registry")
	method   string
}

// sendSite is one Net.Send call.
type sendSite struct {
	pos     token.Pos
	classes []string // resolved class constant names ("?" if unresolved)
	targets []target
}

// callSite is one same-controller local method call.
type callSite struct {
	pos    token.Pos
	callee string
}

// parkSite is one append onto a park chain.
type parkSite struct {
	pos   token.Pos
	chain *chainInfo
	expr  *ast.CallExpr // the append call (for requester-mention checks)
	conds []ast.Expr    // enclosing if conditions, innermost last
}

// dischargeSite is one drain of a park chain: a ranged wakeup loop or a
// head-of-queue pop.
type dischargeSite struct {
	pos   token.Pos
	chain *chainInfo
	kind  string // "range" or "pop"
}

// growthSite is one unbounded-growth candidate write to a counter field
// inside a masked-update function (backoff-clamped rule).
type growthSite struct {
	pos    token.Pos
	field  *types.Var
	masked bool // the growth itself is mask-bounded
}

// chainInfo is one park chain (slice / map-of-slice field whose elements
// carry continuations or parked requests).
type chainInfo struct {
	id    string // "denovo.wtxn.parked"
	field *types.Var
	elem  string
}

// resourceInfo is one finite allocation table (map field of per-key
// records).
type resourceInfo struct {
	id     string
	field  *types.Var
	allocs []token.Pos
	frees  []token.Pos
}

// method carries the extracted facts of one controller method.
type method struct {
	controller string
	recvName   string
	name       string
	decl       *ast.FuncDecl
	kind       string // message | entry | helper ("" until classified)

	sends      []*sendSite
	calls      []*callSite
	parks      []*parkSite
	discharges []*dischargeSite
	growths    []*growthSite
	maskedUpd  bool       // contains a masked counter update
	maskType   types.Type // the masked counter's named type

	defsCache map[types.Object][]ast.Expr
}

func (m *method) id() string { return m.controller + "." + m.name }

// pkgModel is the extracted model of one package.
type pkgModel struct {
	pkgName string // short name ("denovo")
	pkgPath string
	fset    *token.FileSet
	info    *types.Info
	tpkg    *types.Package
	files   []*ast.File

	controllers map[string]Controller // recv type name -> controller
	recvTypes   map[string]*types.Named
	methods     map[string]*method // "Recv.name" -> method
	chains      map[*types.Var]*chainInfo
	resources   []*resourceInfo
	funcDecls   map[string]*ast.FuncDecl // package-level functions
	assumed     map[string]string        // "file.go:line" -> reason
	assumes     []Assume
}

func (p *pkgModel) posString(pos token.Pos) string {
	ps := p.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(ps.Filename), ps.Line)
}

// methodByRecv returns the extracted method recv.name, or nil.
func (p *pkgModel) methodByRecv(recv, name string) *method {
	return p.methods[recv+"."+name]
}

// extractPackage builds the model of one package.
func extractPackage(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info, spec Package) (*pkgModel, error) {
	p := &pkgModel{
		pkgName:     path.Base(spec.Path),
		pkgPath:     spec.Path,
		fset:        fset,
		info:        info,
		tpkg:        tpkg,
		files:       files,
		controllers: map[string]Controller{},
		recvTypes:   map[string]*types.Named{},
		methods:     map[string]*method{},
		chains:      map[*types.Var]*chainInfo{},
		funcDecls:   map[string]*ast.FuncDecl{},
		assumed:     map[string]string{},
	}
	for _, c := range spec.Controllers {
		p.controllers[c.Recv] = c
		obj := tpkg.Scope().Lookup(c.Recv)
		if obj == nil {
			return nil, fmt.Errorf("liveness: controller type %s not found in %s", c.Recv, spec.Path)
		}
		n, ok := obj.Type().(*types.Named)
		if !ok {
			return nil, fmt.Errorf("liveness: controller %s in %s is not a named type", c.Recv, spec.Path)
		}
		p.recvTypes[c.Recv] = n
	}
	p.scanStructs()
	p.scanAssumes()
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn.Recv == nil || len(fn.Recv.List) == 0 {
				p.funcDecls[fn.Name.Name] = fn
				continue
			}
			recv := recvTypeName(fn)
			c, ok := p.controllers[recv]
			if !ok || fn.Body == nil {
				continue
			}
			m := &method{controller: c.Name, recvName: recv, name: fn.Name.Name, decl: fn}
			p.methods[recv+"."+fn.Name.Name] = m
		}
	}
	for _, m := range p.methods {
		p.extractMethod(m)
	}
	return p, nil
}

// recvTypeName returns a method's receiver type name (pointer-stripped).
func recvTypeName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// scanAssumes records every //protolive:assume(reason) in the package,
// keyed by the lines it blesses (shared directive scoping).
func (p *pkgModel) scanAssumes() {
	blessed := lint.BlessedLines(p.fset, p.files, lint.AssumeDirective)
	seen := map[string]bool{}
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if reason, ok := lint.AssumeDirective(c.Text); ok {
					pos := p.posString(c.Pos())
					if !seen[pos] {
						seen[pos] = true
						p.assumes = append(p.assumes, Assume{Pos: pos, Reason: reason})
					}
				}
			}
		}
	}
	for file, lines := range blessed {
		base := filepath.Base(file)
		for line, reason := range lines {
			p.assumed[fmt.Sprintf("%s:%d", base, line)] = reason
		}
	}
}

// assumeFor returns the audited escape reason blessing pos, if any.
func (p *pkgModel) assumeFor(pos token.Pos) (string, bool) {
	r, ok := p.assumed[p.posString(pos)]
	return r, ok
}

// scanStructs finds every park chain and finite resource declared by the
// package's struct types.
func (p *pkgModel) scanStructs() {
	scope := p.tpkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if elem, ok := p.chainElem(f.Type()); ok {
				p.chains[f] = &chainInfo{
					id:    p.pkgName + "." + name + "." + f.Name(),
					field: f,
					elem:  elem,
				}
				continue
			}
			if p.isResourceMap(f.Type()) {
				p.resources = append(p.resources, &resourceInfo{
					id:    p.pkgName + "." + name + "." + f.Name(),
					field: f,
				})
			}
		}
	}
}

// chainElem classifies a field type as a park chain: a slice (or
// map-of-slice) whose element is a func or a package struct carrying a
// continuation or a parked requester pointer.
func (p *pkgModel) chainElem(t types.Type) (string, bool) {
	if m, ok := t.(*types.Map); ok {
		t = m.Elem()
	}
	s, ok := t.(*types.Slice)
	if !ok {
		return "", false
	}
	e := s.Elem()
	if _, ok := e.Underlying().(*types.Signature); ok {
		return "func", true
	}
	n, ok := e.(*types.Named)
	if !ok || n.Obj().Pkg() != p.tpkg {
		return "", false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if _, ok := ft.Underlying().(*types.Signature); ok {
			return n.Obj().Name(), true
		}
		if p.controllerPtr(ft) != "" {
			return n.Obj().Name(), true
		}
	}
	return "", false
}

// controllerPtr returns the controller recv name if t is a pointer to a
// declared controller type, else "".
func (p *pkgModel) controllerPtr(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	if _, ok := p.controllers[n.Obj().Name()]; ok && n.Obj().Pkg() == p.tpkg {
		return n.Obj().Name()
	}
	return ""
}

// isResourceMap reports a map (or slice-of-map shard array) whose values
// are pointers to package structs: a finite allocation table.
func (p *pkgModel) isResourceMap(t types.Type) bool {
	if s, ok := t.(*types.Slice); ok {
		t = s.Elem()
	}
	m, ok := t.(*types.Map)
	if !ok {
		return false
	}
	ptr, ok := m.Elem().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() != p.tpkg {
		return false
	}
	_, ok = n.Underlying().(*types.Struct)
	return ok
}

// fieldOf resolves a selector expression to the struct field it reads,
// or nil.
func (p *pkgModel) fieldOf(e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.info.Selections[sel]
	if !ok {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// resolveFieldExpr resolves e — possibly through index expressions and
// one local alias hop (ws := c.disturbs[word]) — to a struct field.
// localDefs maps local objects to their defining expressions.
func (p *pkgModel) resolveFieldExpr(e ast.Expr, localDefs map[types.Object][]ast.Expr, depth int) *types.Var {
	if depth > 4 {
		return nil
	}
	switch v := e.(type) {
	case *ast.ParenExpr:
		return p.resolveFieldExpr(v.X, localDefs, depth+1)
	case *ast.IndexExpr:
		return p.resolveFieldExpr(v.X, localDefs, depth+1)
	case *ast.SliceExpr:
		return p.resolveFieldExpr(v.X, localDefs, depth+1)
	case *ast.SelectorExpr:
		return p.fieldOf(v)
	case *ast.Ident:
		obj := p.info.Uses[v]
		if obj == nil {
			return nil
		}
		for _, def := range localDefs[obj] {
			if f := p.resolveFieldExpr(def, localDefs, depth+1); f != nil {
				return f
			}
		}
	}
	return nil
}

// localDefs collects ident := expr / ident = expr definitions in fn.
func (p *pkgModel) localDefs(fn *ast.FuncDecl) map[types.Object][]ast.Expr {
	defs := map[types.Object][]ast.Expr{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.info.Defs[id]
			if obj == nil {
				obj = p.info.Uses[id]
			}
			if obj != nil {
				defs[obj] = append(defs[obj], as.Rhs[i])
			}
		}
		return true
	})
	return defs
}

// extractMethod walks one method body and fills its fact lists.
func (p *pkgModel) extractMethod(m *method) {
	defs := p.localDefs(m.decl)
	p.walkFacts(m, m.decl.Body.List, defs, nil)
	p.scanBackoff(m, defs)
	p.scanResourceOps(m, defs)
}

// walkFacts is the recursive statement walker. conds is the stack of
// enclosing if conditions (for park-guard analysis).
func (p *pkgModel) walkFacts(m *method, stmts []ast.Stmt, defs map[types.Object][]ast.Expr, conds []ast.Expr) {
	for _, stmt := range stmts {
		p.walkFactsStmt(m, stmt, defs, conds)
	}
}

func (p *pkgModel) walkFactsStmt(m *method, stmt ast.Stmt, defs map[types.Object][]ast.Expr, conds []ast.Expr) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			p.walkFactsStmt(m, s.Init, defs, conds)
		}
		p.factsInExpr(m, s.Cond, defs, conds)
		inner := append(append([]ast.Expr{}, conds...), s.Cond)
		p.walkFacts(m, s.Body.List, defs, inner)
		if s.Else != nil {
			p.walkFactsStmt(m, s.Else, defs, conds)
		}
	case *ast.BlockStmt:
		p.walkFacts(m, s.List, defs, conds)
	case *ast.ForStmt:
		if s.Init != nil {
			p.walkFactsStmt(m, s.Init, defs, conds)
		}
		p.walkFacts(m, s.Body.List, defs, conds)
	case *ast.RangeStmt:
		if f := p.resolveFieldExpr(s.X, defs, 0); f != nil {
			if c, ok := p.chains[f]; ok && containsCall(s.Body) {
				m.discharges = append(m.discharges, &dischargeSite{pos: s.Pos(), chain: c, kind: "range"})
			}
		}
		p.walkFacts(m, s.Body.List, defs, conds)
	case *ast.SwitchStmt:
		if s.Init != nil {
			p.walkFactsStmt(m, s.Init, defs, conds)
		}
		if s.Tag != nil {
			p.factsInExpr(m, s.Tag, defs, conds)
		}
		for _, cc := range s.Body.List {
			p.walkFacts(m, cc.(*ast.CaseClause).Body, defs, conds)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			p.walkFacts(m, cc.(*ast.CaseClause).Body, defs, conds)
		}
	case *ast.AssignStmt:
		// Park: x = append(x, e) onto a chain field.
		for i, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isAppend(call) && len(call.Args) >= 2 {
				if f := p.resolveFieldExpr(call.Args[0], defs, 0); f != nil {
					if c, ok := p.chains[f]; ok {
						m.parks = append(m.parks, &parkSite{
							pos:   s.Pos(),
							chain: c,
							expr:  call,
							conds: append([]ast.Expr{}, conds...),
						})
					}
				}
			}
			// Pop: x = x[1:] over a chain field.
			if sl, ok := rhs.(*ast.SliceExpr); ok && i < len(s.Lhs) {
				if f := p.resolveFieldExpr(s.Lhs[i], defs, 0); f != nil {
					if fr := p.resolveFieldExpr(sl.X, defs, 0); fr == f {
						if c, ok := p.chains[f]; ok {
							m.discharges = append(m.discharges, &dischargeSite{pos: s.Pos(), chain: c, kind: "pop"})
						}
					}
				}
			}
			p.factsInExpr(m, rhs, defs, conds)
		}
	default:
		// Every other statement: scan contained expressions for sends,
		// descend callbacks, and local calls.
		ast.Inspect(stmt, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if p.factsInExpr(m, e, defs, conds) {
				return false
			}
			return true
		})
	}
}

// factsInExpr records sends, descend-callback bodies, and local calls
// found in e. Returns true if e was fully handled (no deeper scan
// needed).
func (p *pkgModel) factsInExpr(m *method, e ast.Expr, defs map[types.Object][]ast.Expr, conds []ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name == "Send" && len(call.Args) > 0 {
		if fn, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
			site := &sendSite{pos: call.Pos()}
			site.classes = p.resolveClasses(classArg(p, call), m.decl, defs, 0)
			site.targets = p.sendTargets(fn)
			m.sends = append(m.sends, site)
			// Non-callback args may carry further calls.
			for _, a := range call.Args[:len(call.Args)-1] {
				ast.Inspect(a, func(n ast.Node) bool {
					if ie, ok := n.(ast.Expr); ok && p.factsInExpr(m, ie, defs, conds) {
						return false
					}
					return true
				})
			}
			return true
		}
	}
	if atlas.DescendCall(name) && len(call.Args) > 0 {
		if fn, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
			// A controller-method descend call (withResident) is also a
			// local call edge: its own body runs in the callee.
			if recv := p.recvControllerName(sel); recv == m.recvName && interestingCallee(name) {
				if p.methodByRecv(recv, name) != nil {
					m.calls = append(m.calls, &callSite{pos: call.Pos(), callee: name})
				}
			}
			// Same-context callback: walk its body as part of this method.
			p.walkFacts(m, fn.Body.List, defs, conds)
			for _, a := range call.Args[:len(call.Args)-1] {
				ast.Inspect(a, func(n ast.Node) bool {
					if ie, ok := n.(ast.Expr); ok && p.factsInExpr(m, ie, defs, conds) {
						return false
					}
					return true
				})
			}
			return true
		}
	}
	// Same-controller local call.
	if recv := p.recvControllerName(sel); recv == m.recvName && interestingCallee(name) {
		if p.methodByRecv(recv, name) != nil {
			m.calls = append(m.calls, &callSite{pos: call.Pos(), callee: name})
		}
	}
	return false
}

// recvControllerName resolves a method call's receiver to a declared
// controller type name, or "".
func (p *pkgModel) recvControllerName(sel *ast.SelectorExpr) string {
	tv, ok := p.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() != p.tpkg {
		return ""
	}
	if _, ok := p.controllers[n.Obj().Name()]; !ok {
		return ""
	}
	return n.Obj().Name()
}

// interestingCallee filters pure read/naming helpers out of the call
// graph (shared exclusion list with the atlas extractor, plus observe
// hooks and wiring methods).
func interestingCallee(name string) bool {
	if strings.HasPrefix(name, "observe") || strings.HasPrefix(name, "Set") || strings.HasPrefix(name, "New") {
		return false
	}
	return !atlas.ExcludedAction(name)
}

// sendTargets collects the controller methods a Send callback invokes.
func (p *pkgModel) sendTargets(fn *ast.FuncLit) []target {
	var out []target
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if recv := p.recvControllerName(sel); recv != "" && interestingCallee(sel.Sel.Name) {
			if p.methodByRecv(recv, sel.Sel.Name) != nil {
				out = append(out, target{typeName: recv, method: sel.Sel.Name})
			}
		}
		return true
	})
	return out
}

// classArg picks the message-class argument of a Send call: the first
// argument whose static type is a named type ending in "Class".
func classArg(p *pkgModel, call *ast.CallExpr) ast.Expr {
	for _, a := range call.Args[:len(call.Args)-1] {
		tv, ok := p.info.Types[a]
		if !ok || tv.Type == nil {
			continue
		}
		if n, ok := tv.Type.(*types.Named); ok && strings.HasSuffix(n.Obj().Name(), "Class") {
			return a
		}
	}
	return nil
}

// resolveClasses resolves a class expression to the set of constant
// names it can evaluate to: a direct constant, a local variable (union
// of its assignments within fn), or a call to a package-level function
// (union of its return constants).
func (p *pkgModel) resolveClasses(e ast.Expr, fn *ast.FuncDecl, defs map[types.Object][]ast.Expr, depth int) []string {
	if e == nil || depth > 4 {
		return []string{"?"}
	}
	if n := p.classConstName(e); n != "" {
		return []string{n}
	}
	switch v := e.(type) {
	case *ast.ParenExpr:
		return p.resolveClasses(v.X, fn, defs, depth+1)
	case *ast.Ident:
		obj := p.info.Uses[v]
		if obj == nil {
			return []string{"?"}
		}
		set := map[string]bool{}
		for _, def := range defs[obj] {
			for _, c := range p.resolveClasses(def, fn, defs, depth+1) {
				set[c] = true
			}
		}
		return classSet(set)
	case *ast.CallExpr:
		var fname string
		switch f := v.Fun.(type) {
		case *ast.Ident:
			fname = f.Name
		case *ast.SelectorExpr:
			fname = f.Sel.Name
		}
		decl, ok := p.funcDecls[fname]
		if !ok || decl.Body == nil {
			return []string{"?"}
		}
		set := map[string]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, r := range ret.Results {
				if c := p.classConstName(r); c != "" {
					set[c] = true
				} else {
					set["?"] = true
				}
			}
			return true
		})
		return classSet(set)
	}
	return []string{"?"}
}

func classSet(set map[string]bool) []string {
	if len(set) == 0 {
		return []string{"?"}
	}
	var out []string
	for c := range set {
		out = append(out, c)
	}
	return out
}

// classConstName resolves e to a class constant name, or "".
func (p *pkgModel) classConstName(e ast.Expr) string {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return ""
	}
	if c, ok := p.info.Uses[id].(*types.Const); ok {
		if n, ok := c.Type().(*types.Named); ok && strings.HasSuffix(n.Obj().Name(), "Class") {
			return c.Name()
		}
	}
	return ""
}

// scanBackoff finds masked counter updates and growth writes (the
// backoff-clamped rule's raw material).
func (p *pkgModel) scanBackoff(m *method, defs map[types.Object][]ast.Expr) {
	// Pass 1: masked updates — f = (f + x) & mask, f a named-type field.
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
			return true
		}
		f := p.fieldOf(as.Lhs[0])
		if f == nil {
			return true
		}
		if _, ok := f.Type().(*types.Named); !ok {
			return true
		}
		if exprHasOp(as.Rhs[0], token.AND) {
			m.maskedUpd = true
			m.maskType = f.Type()
		}
		return true
	})
	if !m.maskedUpd {
		return
	}
	// Pass 2: growth writes to fields of the masked type.
	clamped := p.clampedFields(m)
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != 1 {
				return true
			}
			f := p.fieldOf(v.Lhs[0])
			if f == nil || !types.Identical(f.Type(), m.maskType) {
				return true
			}
			grows := v.Tok == token.ADD_ASSIGN
			if v.Tok == token.ASSIGN && exprHasOp(v.Rhs[0], token.ADD) && !exprHasOp(v.Rhs[0], token.AND) {
				grows = true
			}
			if grows {
				m.growths = append(m.growths, &growthSite{
					pos:    v.Pos(),
					field:  f,
					masked: exprHasOp(v.Rhs[0], token.AND) || clamped[f],
				})
			}
		case *ast.IncDecStmt:
			if v.Tok != token.INC {
				return true
			}
			f := p.fieldOf(v.X)
			if f == nil || !types.Identical(f.Type(), m.maskType) {
				return true
			}
			m.growths = append(m.growths, &growthSite{pos: v.Pos(), field: f, masked: clamped[f]})
		}
		return true
	})
}

// clampedFields finds fields with a compare-clamp in m:
// if f > bound { f = bound }.
func (p *pkgModel) clampedFields(m *method) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cmp, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.GTR && cmp.Op != token.GEQ) {
			return true
		}
		f := p.fieldOf(cmp.X)
		if f == nil {
			return true
		}
		for _, st := range ifs.Body.List {
			if as, ok := st.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if p.fieldOf(as.Lhs[0]) == f {
					out[f] = true
				}
			}
		}
		return true
	})
	return out
}

// scanResourceOps records allocation and free sites of finite resource
// tables touched by m.
func (p *pkgModel) scanResourceOps(m *method, defs map[types.Object][]ast.Expr) {
	byField := map[*types.Var]*resourceInfo{}
	for _, r := range p.resources {
		byField[r.field] = r
	}
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if f := p.resolveFieldExpr(idx.X, p.localDefsCache(m), 0); f != nil {
					if r, ok := byField[f]; ok {
						r.allocs = append(r.allocs, v.Pos())
					}
				}
			}
		case *ast.CallExpr:
			id, ok := v.Fun.(*ast.Ident)
			if !ok || id.Name != "delete" || len(v.Args) != 2 {
				return true
			}
			if f := p.resolveFieldExpr(v.Args[0], p.localDefsCache(m), 0); f != nil {
				if r, ok := byField[f]; ok {
					r.frees = append(r.frees, v.Pos())
				}
			}
		}
		return true
	})
	_ = defs
}

// localDefsCache memoizes localDefs per method.
func (p *pkgModel) localDefsCache(m *method) map[types.Object][]ast.Expr {
	if m.defsCache == nil {
		m.defsCache = p.localDefs(m.decl)
	}
	return m.defsCache
}

func isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

func containsCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

func exprHasOp(e ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == op {
			found = true
			return false
		}
		return !found
	})
	return found
}

// mentionsObj reports whether e references any of the given objects
// (including inside nested closures).
func (p *pkgModel) mentionsObj(e ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
