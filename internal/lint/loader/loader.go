// Package loader parses and type-checks Go packages for simlint without
// golang.org/x/tools (the repo builds fully offline). Packages inside the
// analyzed tree are resolved to directories by a caller-supplied function
// and compiled from source; standard-library imports go through the
// go/importer source importer, which reads GOROOT — no network, no
// pre-built export data required.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads packages on demand, caching by import path.
type Loader struct {
	Fset *token.FileSet

	// Resolve maps an import path inside the analyzed tree to its
	// directory. Returning ok=false delegates the path to the standard
	// library importer.
	Resolve func(path string) (dir string, ok bool)

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles (invalid Go, but a clear
	// error beats a stack overflow).
	loading map[string]bool
}

// New returns a loader over fset with the given local-path resolver.
func New(fset *token.FileSet, resolve func(string) (string, bool)) *Loader {
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Load returns the package for an import path the resolver knows.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("loader: %s is not in the analyzed tree", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	p := &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir in name order (with
// comments, for //simlint:allow directives).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts Loader to types.Importer: local paths load from
// source via the resolver, everything else is standard library.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.Resolve(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
