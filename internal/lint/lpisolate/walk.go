package lpisolate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"denovosync/internal/lint/loader"
)

// context is the ownership situation of the statements being walked.
type context struct {
	// domain is the logical process whose code is executing ("" when the
	// function belongs to no classified owner).
	domain string
	// kind is "regular", "wiring" (New*/Set*/model-listed construction)
	// or "message" (the body of a network-delivery closure, which runs
	// at the destination).
	kind string
	// recvObj is the receiver variable for methods (nil otherwise).
	recvObj types.Object
	// fn names the enclosing function ("mesi.L1.recvInv") for findings
	// and method summaries.
	fn string
}

// hop is one field traversal of an access path, outermost (the accessed
// field) first.
type hop struct {
	ti      *typeInfo // owner of the field; nil for out-of-scope owners
	ownerQ  string
	field   string
	fi      *fieldInfo
	indexed bool // an index/key was applied to this field's value
}

// pathInfo is a resolved access path: the deepest classified location it
// touches plus how it got there.
type pathInfo struct {
	// owner/field identify the classified written (or called-through)
	// location; owner is nil when the path only touches a global.
	owner  *typeInfo
	field  string
	global *globalInfo

	slicedOK    bool
	viaBoundary string
	viaPeer     bool

	baseObj    types.Object
	baseIsRecv bool
	nhops      int
}

type writeEvent struct {
	pos  token.Pos
	ctx  context
	path *pathInfo
}

type callEvent struct {
	pos token.Pos
	ctx context
	// path is the receiver access path (nil for free functions).
	path *pathInfo
	// key is "pkg.Type.Method" or "pkg.Func"; iface lists the candidate
	// keys when the static receiver is an interface.
	key       string
	iface     []string
	funcField bool
	// peerCall marks a mutating-call-shaped peer touch (the callee's
	// receiver is a tile controller other than the caller itself).
	peerCall     bool
	targetDomain string
}

// funcFacts feeds the mutating-method summaries: what a function writes
// of its own receiver's state, and which same-receiver methods it calls.
type funcFacts struct {
	recvWrites []*writeEvent
	recvCalls  []string
}

func (a *analyzer) walkFile(pkg *loader.Package, f *ast.File) {
	pkgName := pkg.Types.Name()
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ctx := a.declContext(pkg, pkgName, fd)
		a.walkBody(fd.Body, ctx, pkg.Info)
	}
}

// declContext computes the ownership context of a top-level function.
func (a *analyzer) declContext(pkg *loader.Package, pkgName string, fd *ast.FuncDecl) context {
	name := fd.Name.Name
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		ctx := context{kind: "regular", fn: pkgName + "." + name}
		if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
			ctx.kind = "wiring"
			if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
				if rt := pkg.Info.Types[fd.Type.Results.List[0].Type].Type; rt != nil {
					if n := namedOf(rt); n != nil {
						ctx.domain = a.domainOf(n)
					}
				}
			}
		}
		return ctx
	}
	recv := fd.Recv.List[0]
	var recvObj types.Object
	if len(recv.Names) > 0 {
		recvObj = pkg.Info.Defs[recv.Names[0]]
	}
	rt := pkg.Info.Types[recv.Type].Type
	n := namedOf(rt)
	typeName := "?"
	domain := ""
	if n != nil {
		typeName = n.Obj().Name()
		domain = a.domainOf(n)
	}
	key := pkgName + "." + typeName + "." + name
	kind := "regular"
	if strings.HasPrefix(name, "Set") || strings.HasPrefix(name, "New") ||
		a.model.Wiring[pkgName+"."+typeName+"."+name] {
		kind = "wiring"
	}
	return context{domain: domain, kind: kind, recvObj: recvObj, fn: key}
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// walkBody traverses one function or closure body under ctx.
func (a *analyzer) walkBody(body ast.Node, ctx context, info *types.Info) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Host-coroutine bodies are the thread-discipline analyzer's
			// domain; the machine's go statements launch workload
			// threads, not simulator events.
			return false
		case *ast.FuncLit:
			if a.consumed[n] {
				return false
			}
			a.consumed[n] = true
			a.walkBody(n.Body, ctx, info)
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				a.recordWrite(lhs, false, ctx, info)
			}
		case *ast.IncDecStmt:
			a.recordWrite(n.X, false, ctx, info)
		case *ast.CallExpr:
			a.handleCall(n, ctx, info)
		}
		return true
	})
}

// resolveChain walks an access expression down to its base object,
// collecting the field hops (outermost first).
func (a *analyzer) resolveChain(expr ast.Expr, initialIndex bool, info *types.Info) (hops []hop, base types.Object, ok bool) {
	pendingIndex := initialIndex
	cur := expr
	for {
		switch e := cur.(type) {
		case *ast.ParenExpr:
			cur = e.X
		case *ast.StarExpr:
			cur = e.X
		case *ast.IndexExpr:
			pendingIndex = true
			cur = e.X
		case *ast.SelectorExpr:
			sel := info.Selections[e]
			if sel == nil {
				// Qualified identifier (pkg.Var or pkg.Fn).
				obj := info.Uses[e.Sel]
				return hops, obj, obj != nil
			}
			if sel.Kind() != types.FieldVal {
				// Method value mid-path: opaque.
				return hops, nil, false
			}
			ownerQ := ""
			var ti *typeInfo
			var fi *fieldInfo
			if n := namedOf(sel.Recv()); n != nil {
				ownerQ = qnameOf(n)
				if t, found := a.infos[n.Obj()]; found {
					ti = t
					fi = t.fields[e.Sel.Name]
				}
			}
			hops = append(hops, hop{ti: ti, ownerQ: ownerQ, field: e.Sel.Name, fi: fi, indexed: pendingIndex})
			pendingIndex = false
			cur = e.X
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return hops, obj, obj != nil
		default:
			// Call result, composite literal, index of call, ...: the
			// base is not a storage location we track.
			return hops, nil, false
		}
	}
}

// makePath classifies a resolved chain against the model.
func (a *analyzer) makePath(hops []hop, base types.Object, ctx context, forCall bool) *pathInfo {
	p := &pathInfo{baseObj: base, nhops: len(hops)}
	if base != nil && ctx.recvObj != nil && base == ctx.recvObj {
		p.baseIsRecv = true
	}
	// The written / called-through location: the outermost hop with a
	// classified owner.
	locIdx := -1
	for i, h := range hops {
		if h.ti != nil && h.ti.domain != "" {
			locIdx = i
			p.owner = h.ti
			p.field = h.field
			break
		}
	}
	if locIdx < 0 && base != nil {
		if v, isVar := base.(*types.Var); isVar && v.Pkg() != nil {
			if g, found := a.globals[v.Pkg().Name()+"."+v.Name()]; found {
				p.global = g
			}
		}
	}
	travStart := locIdx + 1
	if forCall {
		travStart = 0
	}
	for i, h := range hops {
		if h.fi != nil && h.ti != nil && a.model.Sliced[h.ti.qname+"."+h.field] && h.indexed {
			p.slicedOK = true
		}
		if i >= travStart && h.ti != nil {
			if h.fi != nil && h.fi.boundary != "" {
				p.viaBoundary = h.fi.boundary
			}
			if h.ti.boundary != "" && i > locIdx {
				p.viaBoundary = h.ti.boundary
			}
			if h.ti.behindBoundary != "" && i > locIdx {
				p.viaBoundary = h.ti.behindBoundary
			}
		}
		if i >= travStart && h.fi != nil {
			if elem := namedElem(h.fi.typ); elem != nil && a.isTileController(elem) {
				p.viaPeer = true
			}
		}
	}
	if base != nil {
		if n := namedOf(derefType(base.Type())); n != nil && a.isTileController(n) && !p.baseIsRecv {
			p.viaPeer = true
		}
	}
	return p
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedElem unwraps containers to a named type (for peer detection).
func namedElem(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// recordWrite registers one assignment target.
func (a *analyzer) recordWrite(lhs ast.Expr, initialIndex bool, ctx context, info *types.Info) {
	if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name == "_" {
		return
	}
	hops, base, ok := a.resolveChain(lhs, initialIndex, info)
	if !ok && len(hops) == 0 {
		return
	}
	p := a.makePath(hops, base, ctx, false)
	if p.owner == nil && p.global == nil {
		return
	}
	ev := &writeEvent{pos: lhs.Pos(), ctx: ctx, path: p}
	a.writes = append(a.writes, ev)
	if p.owner != nil {
		if fi := p.owner.fields[p.field]; fi != nil {
			fi.writes = append(fi.writes, ev)
		}
	}
	if p.global != nil {
		p.global.writes = append(p.global.writes, ev)
	}
	// Receiver-rooted writes feed the method summaries. Message-context
	// writes are excluded: they run at the destination and are accounted
	// as crossings at their own site, not as effects of calling the
	// enclosing method.
	if p.baseIsRecv && !p.viaPeer && ctx.kind != "message" && p.owner != nil {
		a.factsFor(ctx.fn).recvWrites = append(a.factsFor(ctx.fn).recvWrites, ev)
	}
}

func (a *analyzer) factsFor(fn string) *funcFacts {
	f := a.facts[fn]
	if f == nil {
		f = &funcFacts{}
		a.facts[fn] = f
	}
	return f
}

// handleCall classifies one call site and walks its closure arguments in
// the right context.
func (a *analyzer) handleCall(call *ast.CallExpr, ctx context, info *types.Info) {
	fun := ast.Unparen(call.Fun)
	ev := &callEvent{pos: call.Pos(), ctx: ctx}
	calleeName := ""
	switch fn := fun.(type) {
	case *ast.Ident:
		obj := info.Uses[fn]
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			if fn.Name == "delete" && len(call.Args) > 0 {
				a.recordWrite(call.Args[0], true, ctx, info)
			}
			return
		}
		if f, isFunc := obj.(*types.Func); isFunc {
			calleeName = f.Name()
			if f.Pkg() != nil {
				ev.key = f.Pkg().Name() + "." + f.Name()
			}
			ev.targetDomain = a.resultDomain(f)
		} else if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil {
			// Invoking a package-level hook; func-typed locals are
			// same-context continuations and stay untracked.
			if g, found := a.globals[v.Pkg().Name()+"."+v.Name()]; found {
				ev.funcField = true
				ev.path = &pathInfo{global: g}
			}
		}
	case *ast.SelectorExpr:
		sel := info.Selections[fn]
		switch {
		case sel == nil:
			// Qualified call pkg.Fn(...) or package-level hook pkg.Var(...).
			switch o := info.Uses[fn.Sel].(type) {
			case *types.Func:
				calleeName = o.Name()
				if o.Pkg() != nil {
					ev.key = o.Pkg().Name() + "." + o.Name()
				}
				ev.targetDomain = a.resultDomain(o)
			case *types.Var:
				if o.Pkg() != nil {
					if g, found := a.globals[o.Pkg().Name()+"."+o.Name()]; found {
						ev.funcField = true
						ev.path = &pathInfo{global: g}
					}
				}
			}
		case sel.Kind() == types.MethodVal:
			calleeName = fn.Sel.Name
			recvT := derefType(sel.Recv())
			if iface, isIface := recvT.Underlying().(*types.Interface); isIface {
				ev.iface = a.implementors(iface, calleeName)
			}
			if n := namedOf(sel.Recv()); n != nil {
				ev.key = qnameOf(n) + "." + calleeName
				ev.targetDomain = a.domainOf(n)
				hops, base, _ := a.resolveChain(fn.X, false, info)
				ev.path = a.makePath(hops, base, ctx, true)
				if a.isTileController(n) && !(ev.path.baseIsRecv && len(hops) == 0) {
					ev.peerCall = true
				}
			}
		case sel.Kind() == types.FieldVal:
			// Invoking a func-typed field.
			ev.funcField = true
			hops, base, _ := a.resolveChain(fn, false, info)
			ev.path = a.makePath(hops, base, ctx, true)
		}
	}

	// Closure-argument contexts.
	litCtx := ctx
	messageCall := a.model.MessageFns[ev.key]
	sanctioned := a.model.Sanctioned[ev.key]
	switch {
	case sanctioned:
		// Event-API callbacks run in the scheduling tile's context.
	case messageCall:
		// The final func argument is the delivery closure: it runs at
		// the destination, so tile mutations inside it are mediated.
	case ev.targetDomain != "" && ev.targetDomain != ctx.domain:
		// A closure handed to another domain's constructor or method
		// runs in THAT domain's context (this is how a stats callback
		// captured by a core is caught mutating machine state).
		litCtx = context{domain: ev.targetDomain, kind: "regular", fn: ctx.fn}
	}
	for i, arg := range call.Args {
		lit, isLit := ast.Unparen(arg).(*ast.FuncLit)
		if !isLit {
			continue
		}
		a.consumed[lit] = true
		c := litCtx
		if messageCall && i == len(call.Args)-1 {
			c = context{domain: ctx.domain, kind: "message", recvObj: ctx.recvObj, fn: ctx.fn}
		}
		a.walkBody(lit.Body, c, info)
	}

	if sanctioned || (ev.key == "" && !ev.funcField) {
		return
	}
	if messageCall {
		a.crossing(call.Pos(), ctx.domain, ev.targetDomain, "message", ev.key)
		return
	}
	a.calls = append(a.calls, ev)
	// Same-receiver method calls feed the summary fixpoint. Only direct
	// calls on the receiver itself count — a call through a receiver FIELD
	// (m.rng.Fork()) mutates the field's owner, not the receiver.
	if ev.key != "" && ev.path != nil && ev.path.baseIsRecv && ev.path.nhops == 0 &&
		!ev.peerCall && !ev.path.viaPeer && ctx.kind != "message" {
		a.factsFor(ctx.fn).recvCalls = append(a.factsFor(ctx.fn).recvCalls, ev.key)
	}
}

// resultDomain resolves the domain a New* constructor wires up.
func (a *analyzer) resultDomain(f *types.Func) string {
	if !strings.HasPrefix(f.Name(), "New") {
		return ""
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Results().Len() == 0 {
		return ""
	}
	if n := namedOf(sig.Results().At(0).Type()); n != nil {
		return a.domainOf(n)
	}
	return ""
}

// implementors returns the summary keys of classified scope types whose
// pointer type implements iface and declares method name.
func (a *analyzer) implementors(iface *types.Interface, method string) []string {
	var keys []string
	for _, q := range a.sortedQNames() {
		ti := a.byQName[q]
		if ti.domain == "" {
			continue
		}
		if !types.Implements(types.NewPointer(ti.named), iface) {
			continue
		}
		keys = append(keys, q+"."+method)
	}
	return keys
}
