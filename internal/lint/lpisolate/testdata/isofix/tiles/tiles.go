// Package tiles is the fixture tile-controller package: its Ctrl type
// seeds the tile domain and deliberately plants every cross-tile sharing
// shape the prover must catch — plus the sanctioned alternatives it must
// not flag.
package tiles

import "isofix/fabric"

// Mut is the mutating interface the host reaches controllers through.
type Mut interface {
	Bump()
}

// Ctrl is the fixture tile controller.
type Ctrl struct {
	id    int
	count int
	net   *fabric.Net
	next  *Ctrl
	peers []*Ctrl
	index map[int]*Ctrl

	obs  func(int) //lpisolate:boundary(audited read-only observer: fixture analog of the coverage hooks)
	hook func(int)
}

// NewCtrl wires one controller; report runs in tile context.
func NewCtrl(id int, net *fabric.Net, report func(int)) *Ctrl {
	c := &Ctrl{id: id, net: net, index: map[int]*Ctrl{}}
	report(c.id)
	return c
}

// SetObserver installs the audited observer (boundary field).
func (c *Ctrl) SetObserver(fn func(int)) {
	c.obs = fn
}

// SetHook installs the unaudited hook (stays class injected).
func (c *Ctrl) SetHook(fn func(int)) {
	c.hook = fn
}

// SetNext wires the deliberately shared peer pointer.
func (c *Ctrl) SetNext(n *Ctrl) {
	c.next = n
}

// SetPeers wires the slice-of-pointer and map-value sharing shapes.
func (c *Ctrl) SetPeers(ps []*Ctrl) {
	c.peers = ps
	for _, p := range ps {
		c.index[p.id] = p
	}
}

// Bump mutates only the controller's own state; the observer call is an
// audited boundary crossing, not a finding.
func (c *Ctrl) Bump() {
	c.count++
	if c.obs != nil {
		c.obs(c.count)
	}
}

// Fire invokes the unaudited hook: injected without a boundary — finding.
func (c *Ctrl) Fire() {
	if c.hook != nil {
		c.hook(c.count)
	}
}

// PlantNext is the planted cross-tile pointer mutation.
func (c *Ctrl) PlantNext() {
	c.next.count = 7
}

// PlantSlice writes a peer through the shared slice-of-pointer view.
func (c *Ctrl) PlantSlice(i int) {
	c.peers[i].count++
}

// PlantMap writes a peer through a map value.
func (c *Ctrl) PlantMap(k int) {
	c.index[k].count = 1
}

// SendBump is the sanctioned path: the peer mutates inside the delivery
// closure the fabric runs at the destination.
func (c *Ctrl) SendBump(dst *Ctrl) {
	c.net.Send(c.id, dst.id, func() {
		dst.recvBump()
	})
}

func (c *Ctrl) recvBump() {
	c.count++
}

// Count reads the controller's own state.
func (c *Ctrl) Count() int {
	return c.count
}
