module isofix

go 1.22
