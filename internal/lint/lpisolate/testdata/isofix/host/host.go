// Package host is the fixture orchestrator: it wires the tiles (legal)
// and then reaches into them two forbidden ways — through a mutating
// interface, and through a callback the tile constructor runs in tile
// context that captures host state.
package host

import (
	"isofix/fabric"
	"isofix/tiles"
)

// Host drives the fixture machine.
type Host struct {
	net     *fabric.Net
	ctrls   []*tiles.Ctrl
	started int
}

// New assembles the machine; the report callback it hands each tile
// constructor captures (and mutates) host state from tile context.
func New(n int) *Host {
	h := &Host{net: fabric.New(n)}
	for i := 0; i < n; i++ {
		h.ctrls = append(h.ctrls, tiles.NewCtrl(i, h.net, func(int) {
			h.started++
		}))
	}
	return h
}

// Wire installs the observers on every tile (Set* wiring: legal).
func (h *Host) Wire() {
	for _, c := range h.ctrls {
		c.SetObserver(func(int) {})
		c.SetHook(func(int) {})
	}
}

// Poke reaches a controller through the mutating interface: finding.
func (h *Host) Poke(i int) {
	var m tiles.Mut = h.ctrls[i]
	m.Bump()
}

// Run drains the fabric (boundary-audited fabric state: legal).
func (h *Host) Run() {
	h.net.Drain()
}
