// Package fabric is the fixture interconnect: Send runs the delivery
// closure at the destination, like the real NoC.
package fabric

// Net is the shared fabric of the fixture machine.
type Net struct {
	slots []slot
	queue []func() //lpisolate:boundary(fixture delivery queue: the PDES port replaces it with the event exchange)
}

// slot is one node's per-endpoint traffic counter.
type slot struct {
	sent int
}

// New builds the fabric with one slot per node.
func New(n int) *Net {
	return &Net{slots: make([]slot, n)}
}

// Send enqueues a delivery closure; the source writes only its own slot.
func (n *Net) Send(src, dst int, deliver func()) {
	n.slots[src].sent++
	n.queue = append(n.queue, deliver)
}

// Drain runs the pending deliveries.
func (n *Net) Drain() {
	for len(n.queue) > 0 {
		d := n.queue[0]
		n.queue = n.queue[1:]
		d()
	}
}

// Sent reports node i's send count.
func (n *Net) Sent(i int) int {
	return n.slots[i].sent
}
