package lpisolate

// Model declares the ownership world the prover checks a source tree
// against: which packages are in scope, which types seed which logical
// process, which locations the architecture slices per node, and which
// calls are the sanctioned mediation mechanisms. The model is data, not
// code, so the fixture tests run the same analysis against miniature
// machines with their own seeds.
type Model struct {
	// Packages lists the module-relative package paths in scope.
	Packages []string

	// Seeds maps qualified type names ("mesi.L1") to their domain.
	// Seeded types never inherit a domain through references; they ARE
	// the ownership roots. A seed may live outside the scope packages
	// (cpu.Core): it then contributes typing — peer detection, closure
	// adoption — without its package being analyzed.
	Seeds map[string]string

	// TileControllers lists the seeded tile types that are per-tile
	// controller instances: a write or mutating call into one of these
	// from a context that does not own it is a cross-tile touch.
	TileControllers map[string]bool

	// Shared lists domains whose state is shared fabric by construction:
	// every mutable location there must be sliced or boundary — a plain
	// mutable field is itself a finding.
	Shared map[string]bool

	// Sliced marks "Type.field" locations as per-node sliced: writes
	// must pass through the field with an index (each node touching only
	// its own slot), and types reachable only through sliced fields
	// inherit the sliced class for their own fields.
	Sliced map[string]bool

	// Wiring lists methods beyond the Set*/New* prefixes whose writes
	// count as construction-time wiring ("noc.Network.TrackInFlight").
	Wiring map[string]bool

	// MessageFns lists the mediation calls ("noc.Network.Send"): the
	// call is recorded as a message crossing and its final func argument
	// runs at the destination, so tile mutations inside it are mediated.
	MessageFns map[string]bool

	// Sanctioned lists the event-API calls a PDES runtime replaces
	// wholesale ("sim.Engine.Schedule"): they are neither crossings nor
	// findings, and func arguments inherit the caller's context.
	Sanctioned map[string]bool

	// PackageDomains maps a scope package's base name to the domain
	// owning its package-level variables.
	PackageDomains map[string]string
}

// DefaultModel is the ownership world of this repository: one logical
// process per tile (core + L1 + its L2 bank slice of the directory or
// registry), the discrete-event engine, the mesh fabric, and the memory
// devices behind the controllers.
func DefaultModel() *Model {
	return &Model{
		Packages: []string{
			"internal/sim", "internal/cache", "internal/noc", "internal/mem",
			"internal/mesi", "internal/denovo", "internal/machine",
			"internal/pdes",
		},
		Seeds: map[string]string{
			"mesi.L1":         "tile",
			"mesi.Directory":  "tile",
			"denovo.L1":       "tile",
			"denovo.Registry": "tile",
			"cpu.Core":        "tile",
			"sim.Engine":      "engine",
			"sim.RNG":         "engine",
			"machine.Machine": "engine",
			// The PDES runtime itself: the window coordinator and the
			// mailbox exchange are engine-side infrastructure — workers
			// touch engines only inside the barrier-delimited handoff.
			"pdes.Scheduler": "engine",
			"pdes.Exchange":  "engine",
			"noc.Network":    "noc",
			"mem.Store":       "mem",
			"mem.DRAM":        "mem",
			"mem.SigTable":    "mem",
		},
		TileControllers: map[string]bool{
			"mesi.L1": true, "mesi.Directory": true,
			"denovo.L1": true, "denovo.Registry": true,
			"cpu.Core": true,
		},
		Shared: map[string]bool{"noc": true, "mem": true},
		Sliced: map[string]bool{
			// Each node's traffic endpoint: Send writes the source's
			// slot, the delivery event writes the destination's.
			"noc.Network.eps": true,
			// Each memory controller's request counter, incremented by
			// the delivery event running at that controller.
			"mem.DRAM.accesses": true,
		},
		Wiring: map[string]bool{
			// Pre-run configuration latches: arming in-flight tracking
			// and the contention model happens during machine assembly.
			"noc.Network.TrackInFlight":    true,
			"noc.Network.EnableContention": true,
		},
		MessageFns: map[string]bool{
			"noc.Network.Send": true,
			// The DRAM round-trips are two chained Sends; the done
			// callback is delivered back at the requesting tile.
			"mem.DRAM.Fetch":     true,
			"mem.DRAM.WriteBack": true,
		},
		Sanctioned: map[string]bool{
			"sim.Engine.Schedule": true,
			"sim.Engine.At":       true,
			"sim.Engine.Stop":     true,
			"sim.Engine.Run":      true,
			"sim.Engine.RunUntil": true,
			// The band-1 arrival entry point and the windowed run: the
			// rest of the event API's PDES-mode counterparts, with the
			// same engine-enforced invariants (monotone time, unique
			// keys). Calling either IS the sanctioned mediation.
			"sim.Engine.ScheduleArrivalAt": true,
			"sim.Engine.RunUntilBudget":    true,
		},
		PackageDomains: map[string]string{
			"sim": "engine", "machine": "engine", "pdes": "engine",
			"noc": "noc", "mem": "mem",
			"mesi": "tile", "denovo": "tile", "cache": "tile",
		},
	}
}
