package lpisolate

import (
	"fmt"
	"sort"
)

// Mutation-class ranks for the method summaries: the worst class of
// receiver state a method (transitively) writes.
const (
	rankNone = iota
	rankBoundary
	rankSliced
	rankPlain
)

func classRank(class string) int {
	switch class {
	case "plain", "injected":
		return rankPlain
	case "sliced":
		return rankSliced
	case "boundary":
		return rankBoundary
	}
	return rankNone
}

// classify turns the collected events into location classes, method
// summaries, crossings and findings.
func (a *analyzer) classify() {
	a.classifyFields()
	ranks := a.summarize()
	for _, ev := range a.writes {
		a.classifyWrite(ev)
	}
	for _, ev := range a.calls {
		a.classifyCall(ev, ranks)
	}
	a.emitLocations()
}

// classifyFields assigns each field its location class.
func (a *analyzer) classifyFields() {
	for _, q := range a.sortedQNames() {
		ti := a.byQName[q]
		for _, fname := range ti.fieldOrder {
			fi := ti.fields[fname]
			switch {
			case ti.boundary != "":
				fi.class, fi.reason = "boundary", ti.boundary
			case ti.behindBoundary != "":
				fi.class, fi.reason = "boundary", ti.behindBoundary
			case fi.boundary != "":
				fi.class, fi.reason = "boundary", fi.boundary
			case a.model.Sliced[ti.qname+"."+fname] || ti.behindSliced:
				fi.class = "sliced"
			case fi.funcTyped && len(fi.writes) > 0 && allWiring(fi.writes):
				fi.class = "injected"
			case anyNonWiring(fi.writes):
				fi.class = "plain"
			default:
				fi.class = "frozen"
			}
		}
	}
}

func allWiring(writes []*writeEvent) bool {
	for _, w := range writes {
		if w.ctx.kind != "wiring" {
			return false
		}
	}
	return true
}

func anyNonWiring(writes []*writeEvent) bool {
	for _, w := range writes {
		if w.ctx.kind != "wiring" {
			return true
		}
	}
	return false
}

// summarize computes, per function, the worst class of receiver state it
// writes — directly or through same-receiver calls (fixpoint).
func (a *analyzer) summarize() map[string]int {
	var keys []string
	for k := range a.facts { //simlint:allow determinism: sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ranks := map[string]int{}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			f := a.facts[k]
			r := ranks[k]
			for _, w := range f.recvWrites {
				if w.path.owner != nil {
					if fi := w.path.owner.fields[w.path.field]; fi != nil {
						if cr := classRank(fi.class); cr > r {
							r = cr
						}
					}
				}
			}
			for _, callee := range f.recvCalls {
				if ranks[callee] > r {
					r = ranks[callee]
				}
			}
			if r != ranks[k] {
				ranks[k] = r
				changed = true
			}
		}
	}
	return ranks
}

func (a *analyzer) classifyWrite(ev *writeEvent) {
	ctx, p := ev.ctx, ev.path
	if p.global != nil {
		a.classifyGlobalWrite(ev)
		return
	}
	fi := p.owner.fields[p.field]
	if fi == nil {
		return
	}
	locDomain := p.owner.domain
	detail := p.owner.qname + "." + p.field
	cross := ctx.domain != locDomain
	switch {
	case p.viaBoundary != "" || fi.class == "boundary":
		if cross || p.viaPeer {
			a.crossing(ev.pos, ctx.domain, locDomain, "boundary", detail)
		}
	case fi.class == "sliced":
		if ctx.kind == "wiring" {
			if cross {
				a.crossing(ev.pos, ctx.domain, locDomain, "wiring", detail)
			}
			return
		}
		if !p.slicedOK {
			a.finding(ev.pos, ctx.fn, fmt.Sprintf(
				"write to sliced location %s without indexing a per-node slot", detail))
			return
		}
		if cross {
			a.crossing(ev.pos, ctx.domain, locDomain, "sliced", detail)
		}
	default:
		switch {
		case ctx.kind == "wiring":
			if cross || p.viaPeer {
				a.crossing(ev.pos, ctx.domain, locDomain, "wiring", detail)
			}
		case ctx.kind == "message":
			if cross || p.viaPeer {
				a.crossing(ev.pos, ctx.domain, locDomain, "mediated", detail)
			}
		case p.viaPeer:
			a.finding(ev.pos, ctx.fn, fmt.Sprintf(
				"cross-tile write: %s mutates %s through a peer-controller reference", ctx.fn, detail))
		case cross:
			a.finding(ev.pos, ctx.fn, fmt.Sprintf(
				"cross-domain write: %s context mutates %s-owned %s", domainName(ctx.domain), locDomain, detail))
		}
	}
}

func domainName(d string) string {
	if d == "" {
		return "unowned"
	}
	return d
}

func (a *analyzer) classifyGlobalWrite(ev *writeEvent) {
	g := ev.path.global
	gd := a.model.PackageDomains[g.pkg]
	switch {
	case g.boundary != "":
		if ev.ctx.domain != gd {
			a.crossing(ev.pos, ev.ctx.domain, gd, "boundary", g.pkg+"."+g.name)
		}
	case ev.ctx.kind == "wiring":
	case ev.ctx.domain != gd:
		a.finding(ev.pos, ev.ctx.fn, fmt.Sprintf(
			"cross-domain write: %s context mutates package-level %s.%s (%s-owned)",
			domainName(ev.ctx.domain), g.pkg, g.name, gd))
	}
}

func (a *analyzer) classifyCall(ev *callEvent, ranks map[string]int) {
	ctx := ev.ctx
	if ev.funcField {
		a.classifyFuncFieldCall(ev)
		return
	}
	// Wiring callees (Set*/New*/model-listed) are the construction
	// phase's sanctioned cross-domain touches.
	if isWiringCallee(ev.key, a.model) {
		if (ev.targetDomain != "" && ev.targetDomain != ctx.domain) || ev.peerCall || (ev.path != nil && ev.path.viaPeer) {
			a.crossing(ev.pos, ctx.domain, ev.targetDomain, "wiring", ev.key)
		}
		return
	}
	r := ranks[ev.key]
	for _, k := range ev.iface {
		if ranks[k] > r {
			r = ranks[k]
		}
	}
	if r == rankNone {
		return // read-only, or out-of-scope (the cpu host boundary)
	}
	peer := ev.peerCall || (ev.path != nil && ev.path.viaPeer)
	cross := ev.targetDomain != "" && ev.targetDomain != ctx.domain
	if ev.targetDomain == "" {
		// Interface receiver: derive the touch from the mutating
		// implementors (a method set is as cross-tile as its members).
		for _, k := range ev.iface {
			if ranks[k] == rankNone {
				continue
			}
			i := lastDot(k)
			ti := a.byQName[k[:i]]
			if ti == nil {
				continue
			}
			if ti.domain != ctx.domain {
				cross = true
			}
			if a.model.TileControllers[ti.qname] &&
				!(ev.path != nil && ev.path.baseIsRecv && ev.path.nhops == 0) {
				peer = true
			}
		}
	}
	if ev.path != nil && ev.path.viaBoundary != "" {
		if cross || peer {
			a.crossing(ev.pos, ctx.domain, ev.targetDomain, "boundary", ev.key)
		}
		return
	}
	switch r {
	case rankBoundary:
		if cross || peer {
			a.crossing(ev.pos, ctx.domain, ev.targetDomain, "boundary", ev.key)
		}
	case rankSliced:
		if cross || peer {
			a.crossing(ev.pos, ctx.domain, ev.targetDomain, "sliced", ev.key)
		}
	default: // rankPlain
		switch {
		case ctx.kind == "wiring":
			if cross || peer {
				a.crossing(ev.pos, ctx.domain, ev.targetDomain, "wiring", ev.key)
			}
		case ctx.kind == "message":
			if cross || peer {
				a.crossing(ev.pos, ctx.domain, ev.targetDomain, "mediated", ev.key)
			}
		case peer:
			a.finding(ev.pos, ctx.fn, fmt.Sprintf(
				"cross-tile call: %s invokes mutating %s on a peer controller outside any delivery closure", ctx.fn, ev.key))
		case cross:
			a.finding(ev.pos, ctx.fn, fmt.Sprintf(
				"cross-domain call: %s context invokes mutating %s (%s-owned)",
				domainName(ctx.domain), ev.key, ev.targetDomain))
		}
	}
}

func isWiringCallee(key string, m *Model) bool {
	if key == "" {
		return false
	}
	if m.Wiring[key] {
		return true
	}
	base := key
	if i := lastDot(key); i >= 0 {
		base = key[i+1:]
	}
	return hasPrefix(base, "Set") || hasPrefix(base, "New")
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// classifyFuncFieldCall handles invoking a func-typed field: injected
// hooks require an audited boundary; same-domain continuations are fine.
func (a *analyzer) classifyFuncFieldCall(ev *callEvent) {
	p := ev.path
	if p == nil {
		return
	}
	if p.owner == nil {
		if g := p.global; g != nil {
			gd := a.model.PackageDomains[g.pkg]
			switch {
			case g.boundary != "":
				a.crossing(ev.pos, ev.ctx.domain, gd, "boundary", g.pkg+"."+g.name)
			case gd != ev.ctx.domain:
				a.finding(ev.pos, ev.ctx.fn, fmt.Sprintf(
					"invoking package-level hook %s.%s from %s context without a boundary annotation",
					g.pkg, g.name, domainName(ev.ctx.domain)))
			}
		}
		return
	}
	fi := p.owner.fields[p.field]
	if fi == nil {
		return
	}
	detail := p.owner.qname + "." + p.field
	switch {
	case fi.class == "boundary" || p.viaBoundary != "":
		a.crossing(ev.pos, ev.ctx.domain, p.owner.domain, "boundary", detail)
	case fi.class == "injected":
		a.finding(ev.pos, ev.ctx.fn, fmt.Sprintf(
			"invoking injected hook %s without a //lpisolate:boundary annotation on the field", detail))
	case p.viaPeer:
		a.finding(ev.pos, ev.ctx.fn, fmt.Sprintf(
			"cross-tile call: %s invokes continuation %s on a peer controller", ev.ctx.fn, detail))
	case p.owner.domain != ev.ctx.domain:
		a.finding(ev.pos, ev.ctx.fn, fmt.Sprintf(
			"cross-domain call: %s context invokes continuation %s (%s-owned)",
			domainName(ev.ctx.domain), detail, p.owner.domain))
	}
}

// emitLocations writes every classified storage location into the atlas
// and applies the shared-fabric policy: a plain mutable field on a shared
// domain (noc, mem) is itself a finding.
func (a *analyzer) emitLocations() {
	for _, q := range a.sortedQNames() {
		ti := a.byQName[q]
		if ti.domain == "" {
			continue
		}
		for _, fname := range ti.fieldOrder {
			fi := ti.fields[fname]
			a.atlas.Locations = append(a.atlas.Locations, &Location{
				Owner: ti.qname, Field: fname,
				Domain: ti.domain, Class: fi.class,
				Mutable: len(fi.writes) > 0,
				Reason:  fi.reason,
				Pos:     a.relPos(fi.pos),
			})
			if a.model.Shared[ti.domain] && fi.class == "plain" {
				a.finding(fi.pos, ti.qname, fmt.Sprintf(
					"shared %s fabric location %s.%s is plain mutable state: slice it per node or annotate an audited boundary",
					ti.domain, ti.qname, fname))
			}
		}
	}
	var gkeys []string
	for k := range a.globals { //simlint:allow determinism: sorted immediately below
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	for _, k := range gkeys {
		g := a.globals[k]
		gd := a.model.PackageDomains[g.pkg]
		class := "frozen"
		switch {
		case g.boundary != "":
			class = "boundary"
		case g.funcTyped && len(g.writes) > 0 && allWiring(g.writes):
			class = "injected"
		case anyNonWiring(g.writes):
			class = "plain"
		}
		a.atlas.Locations = append(a.atlas.Locations, &Location{
			Owner: g.pkg, Field: g.name,
			Domain: gd, Class: class,
			Mutable: len(g.writes) > 0,
			Reason:  g.boundary,
			Pos:     a.relPos(g.pos),
		})
		if class == "plain" {
			a.finding(g.pos, g.pkg, fmt.Sprintf(
				"package-level %s.%s is mutable shared state: no logical process owns a global", g.pkg, g.name))
		}
	}
}
