package lpisolate

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"denovosync/internal/lint"
	"denovosync/internal/lint/loader"
)

// typeInfo is one named struct type of the scope packages with its
// ownership classification.
type typeInfo struct {
	obj   *types.TypeName
	named *types.Named
	qname string // "pkg.Type"

	domain string
	seeded bool

	// boundary is a type-level //lpisolate:boundary reason: every field
	// of the type is an audited boundary.
	boundary string
	// behindBoundary / behindSliced mark types reachable only through
	// boundary-annotated / sliced fields: their own fields inherit that
	// class (the audit or slicing covers the object graph behind it).
	behindBoundary string
	behindSliced   bool

	fields     map[string]*fieldInfo
	fieldOrder []string

	// refs records every classified (fromType, field) referencing this
	// type, for domain propagation and behind-* inheritance.
	refs []refEdge
}

type refEdge struct {
	from     *typeInfo
	field    string
	boundary string
	sliced   bool
}

// fieldInfo is one struct field declaration.
type fieldInfo struct {
	name      string
	pos       token.Pos
	typ       types.Type
	funcTyped bool
	// boundary is the field-level //lpisolate:boundary reason.
	boundary string

	class  string // computed in classify: frozen|plain|sliced|boundary|injected
	reason string
	writes []*writeEvent
}

// globalInfo is one package-level variable of a scope package.
type globalInfo struct {
	pkg, name string
	pos       token.Pos
	funcTyped bool
	boundary  string
	writes    []*writeEvent
}

type analyzer struct {
	fset      *token.FileSet
	model     *Model
	moduleDir string
	pkgs      []*loader.Package

	infos   map[*types.TypeName]*typeInfo
	byQName map[string]*typeInfo
	globals map[string]*globalInfo // "pkg.var"
	blessed map[string]map[int]string

	writes   []*writeEvent
	calls    []*callEvent
	consumed map[*ast.FuncLit]bool

	// facts feeds the mutating-method summary fixpoint.
	facts map[string]*funcFacts

	atlas *Atlas
}

// ExtractDir loads the model's scope packages from a module tree (via the
// simlint loader — source-only, offline) and computes the ownership atlas.
func ExtractDir(moduleDir string, model *Model) (*Atlas, error) {
	modPath, err := modulePath(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := loader.New(fset, func(p string) (string, bool) {
		if p == modPath {
			return moduleDir, true
		}
		if rest, ok := strings.CutPrefix(p, modPath+"/"); ok {
			return filepath.Join(moduleDir, filepath.FromSlash(rest)), true
		}
		return "", false
	})
	var pkgs []*loader.Package
	for _, rel := range model.Packages {
		pkg, err := ld.Load(modPath + "/" + rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	a := &analyzer{
		fset: fset, model: model, moduleDir: moduleDir, pkgs: pkgs,
		infos:    map[*types.TypeName]*typeInfo{},
		byQName:  map[string]*typeInfo{},
		globals:  map[string]*globalInfo{},
		consumed: map[*ast.FuncLit]bool{},
		facts:    map[string]*funcFacts{},
	}
	return a.run()
}

func modulePath(moduleDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lpisolate: no module line in %s/go.mod", moduleDir)
}

func (a *analyzer) run() (*Atlas, error) {
	a.atlas = &Atlas{
		Schema:   Schema,
		Packages: append([]string(nil), a.model.Packages...),
		Domains:  map[string]string{},
	}
	a.collectAnnotations()
	a.collectTypes()
	a.propagateDomains()
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			a.walkFile(pkg, f)
		}
	}
	a.classify()
	a.atlas.Sort()
	return a.atlas, nil
}

// collectAnnotations gathers every //lpisolate:boundary(reason) line.
func (a *analyzer) collectAnnotations() {
	a.blessed = map[string]map[int]string{}
	for _, pkg := range a.pkgs {
		for file, lines := range lint.BlessedLines(a.fset, pkg.Files, lint.BoundaryDirective) { //simlint:allow determinism: map-to-map copy, order-insensitive
			a.blessed[file] = lines
		}
	}
}

func (a *analyzer) annotationAt(pos token.Pos) string {
	p := a.fset.Position(pos)
	return a.blessed[p.Filename][p.Line]
}

// collectTypes builds typeInfo for every named struct type declared in the
// scope packages, and globalInfo for every package-level variable.
func (a *analyzer) collectTypes() {
	for _, pkg := range a.pkgs {
		pkgName := pkg.Types.Name()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						a.collectType(pkg, pkgName, spec)
					case *ast.ValueSpec:
						if gd.Tok.String() != "var" {
							continue
						}
						for _, name := range spec.Names {
							if name.Name == "_" {
								continue
							}
							obj := pkg.Info.Defs[name]
							if obj == nil || obj.Parent() != pkg.Types.Scope() {
								continue
							}
							_, isFunc := obj.Type().Underlying().(*types.Signature)
							a.globals[pkgName+"."+name.Name] = &globalInfo{
								pkg: pkgName, name: name.Name, pos: name.Pos(),
								funcTyped: isFunc,
								boundary:  a.annotationAt(name.Pos()),
							}
						}
					}
				}
			}
		}
	}
}

func (a *analyzer) collectType(pkg *loader.Package, pkgName string, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	obj, _ := pkg.Info.Defs[spec.Name].(*types.TypeName)
	if obj == nil {
		return
	}
	named, _ := obj.Type().(*types.Named)
	if named == nil {
		return
	}
	ti := &typeInfo{
		obj: obj, named: named,
		qname:    pkgName + "." + spec.Name.Name,
		boundary: a.annotationAt(spec.Name.Pos()),
		fields:   map[string]*fieldInfo{},
	}
	if d, ok := a.model.Seeds[ti.qname]; ok {
		ti.domain, ti.seeded = d, true
	}
	for _, field := range st.Fields.List {
		ftype := pkg.Info.Types[field.Type].Type
		_, isFunc := ftype.Underlying().(*types.Signature)
		add := func(name string, pos token.Pos) {
			fi := &fieldInfo{
				name: name, pos: pos, typ: ftype,
				funcTyped: isFunc,
				boundary:  a.annotationAt(pos),
			}
			ti.fields[name] = fi
			ti.fieldOrder = append(ti.fieldOrder, name)
		}
		if len(field.Names) == 0 { // embedded
			add(embeddedName(ftype), field.Type.Pos())
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				add(name.Name, name.Pos())
			}
		}
	}
	a.infos[obj] = ti
	a.byQName[ti.qname] = ti
}

// embeddedName returns the field name of an embedded type.
func embeddedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// structElem unwraps pointers, slices, arrays and map values down to a
// named struct type declared in the scope packages, or nil.
func (a *analyzer) structElem(t types.Type) *typeInfo {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if ti, ok := a.infos[u.Obj()]; ok {
				return ti
			}
			return nil
		default:
			return nil
		}
	}
}

// sortedQNames returns the classified type names in deterministic order.
func (a *analyzer) sortedQNames() []string {
	var names []string
	for q := range a.byQName { //simlint:allow determinism: sorted immediately below
		names = append(names, q)
	}
	sort.Strings(names)
	return names
}

// propagateDomains spreads ownership from the seeds along the
// field-reference graph: an unseeded scope struct inherits the domain of
// the types whose fields reference it; a conflict (two domains reference
// it) is a finding, because a location with two owners cannot be
// partitioned.
func (a *analyzer) propagateDomains() {
	names := a.sortedQNames()
	for changed := true; changed; {
		changed = false
		for _, q := range names {
			ti := a.byQName[q]
			if ti.domain == "" {
				continue
			}
			for _, fname := range ti.fieldOrder {
				fi := ti.fields[fname]
				ref := a.structElem(fi.typ)
				if ref == nil || ref == ti {
					continue
				}
				if !ref.seeded {
					ref.refs = append(ref.refs, refEdge{
						from: ti, field: fname,
						boundary: firstNonEmpty(fi.boundary, ti.boundary, ti.behindBoundary),
						sliced:   a.model.Sliced[ti.qname+"."+fname] || ti.behindSliced,
					})
					switch {
					case ref.domain == "":
						ref.domain = ti.domain
						changed = true
					case ref.domain != ti.domain && ref.domain != "conflict":
						ref.domain = "conflict"
						a.finding(fi.pos, ti.qname,
							fmt.Sprintf("type %s is referenced from both the %s and %s domains: a location with two owners cannot be partitioned",
								ref.qname, ref.domain, ti.domain))
						changed = true
					}
				}
			}
		}
	}
	// behind-* inheritance: a non-seeded type whose every reference edge
	// is boundary (or sliced) lives entirely behind that audit.
	for changed := true; changed; {
		changed = false
		for _, q := range names {
			ti := a.byQName[q]
			if ti.seeded || len(ti.refs) == 0 || ti.behindBoundary != "" || ti.behindSliced {
				continue
			}
			allBoundary, allSliced := true, true
			reason := ""
			for _, e := range ti.refs {
				if e.boundary == "" {
					allBoundary = false
				} else if reason == "" {
					reason = e.boundary
				}
				if !e.sliced {
					allSliced = false
				}
			}
			if allBoundary {
				ti.behindBoundary = reason
				changed = true
			} else if allSliced {
				ti.behindSliced = true
				changed = true
			}
		}
	}
	for _, q := range names {
		if ti := a.byQName[q]; ti.domain != "" {
			a.atlas.Domains[q] = ti.domain
		}
	}
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}

// domainOf resolves a named type's domain: classified scope types first,
// then out-of-scope seeds (cpu.Core).
func (a *analyzer) domainOf(n *types.Named) string {
	if ti, ok := a.infos[n.Obj()]; ok {
		return ti.domain
	}
	return a.model.Seeds[qnameOf(n)]
}

func qnameOf(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

func (a *analyzer) isTileController(n *types.Named) bool {
	return a.model.TileControllers[qnameOf(n)]
}

func (a *analyzer) finding(pos token.Pos, context, message string) {
	a.atlas.Findings = append(a.atlas.Findings, &Finding{
		Pos: a.relPos(pos), Context: context, Message: message,
	})
}

func (a *analyzer) crossing(pos token.Pos, from, to, kind, detail string) {
	a.atlas.Crossings = append(a.atlas.Crossings, &Crossing{
		Pos: a.relPos(pos), From: from, To: to, Kind: kind, Detail: detail,
	})
}

// relPos renders pos module-relative ("internal/noc/noc.go:42").
func (a *analyzer) relPos(pos token.Pos) string {
	p := a.fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(a.moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
