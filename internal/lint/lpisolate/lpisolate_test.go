package lpisolate_test

import (
	"path/filepath"
	"strings"
	"testing"

	"denovosync/internal/lint/atlas"
	"denovosync/internal/lint/lpisolate"
)

// fixtureModel is the ownership world of testdata/isofix: one tile
// controller type, a shared fabric with per-node slots, and a host
// orchestrator standing in for the engine.
func fixtureModel() *lpisolate.Model {
	return &lpisolate.Model{
		Packages: []string{"tiles", "fabric", "host"},
		Seeds: map[string]string{
			"tiles.Ctrl": "tile",
			"fabric.Net": "fabric",
			"host.Host":  "host",
		},
		TileControllers: map[string]bool{"tiles.Ctrl": true},
		Shared:          map[string]bool{"fabric": true},
		Sliced:          map[string]bool{"fabric.Net.slots": true},
		Wiring:          map[string]bool{},
		MessageFns:      map[string]bool{"fabric.Net.Send": true},
		Sanctioned:      map[string]bool{},
		PackageDomains: map[string]string{
			"tiles": "tile", "fabric": "fabric", "host": "host",
		},
	}
}

func extractFixture(t *testing.T) *lpisolate.Atlas {
	t.Helper()
	a, err := lpisolate.ExtractDir(filepath.Join("testdata", "isofix"), fixtureModel())
	if err != nil {
		t.Fatalf("ExtractDir(isofix): %v", err)
	}
	return a
}

// TestFixtureFindings proves the prover catches every planted cross-tile
// sharing shape: a shared peer pointer, slice-of-pointer and map-value
// views, an unaudited injected hook, a host-state capture run in tile
// context, and a mutating interface call.
func TestFixtureFindings(t *testing.T) {
	a := extractFixture(t)
	want := []struct{ file, substr string }{
		{"tiles/tiles.go", "cross-tile write: tiles.Ctrl.PlantNext mutates tiles.Ctrl.count"},
		{"tiles/tiles.go", "cross-tile write: tiles.Ctrl.PlantSlice mutates tiles.Ctrl.count"},
		{"tiles/tiles.go", "cross-tile write: tiles.Ctrl.PlantMap mutates tiles.Ctrl.count"},
		{"tiles/tiles.go", "invoking injected hook tiles.Ctrl.hook without a //lpisolate:boundary"},
		{"host/host.go", "cross-domain write: tile context mutates host-owned host.Host.started"},
		{"host/host.go", "cross-tile call: host.Host.Poke invokes mutating tiles.Mut.Bump on a peer controller"},
	}
	for _, w := range want {
		found := false
		for _, f := range a.Findings {
			if strings.HasPrefix(f.Pos, w.file) && strings.Contains(f.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding %q in %s", w.substr, w.file)
		}
	}
	if len(a.Findings) != len(want) {
		for _, f := range a.Findings {
			t.Logf("finding: %s: %s", f.Pos, f.Message)
		}
		t.Errorf("got %d findings, want exactly %d", len(a.Findings), len(want))
	}
}

// TestFixtureSanctionedPaths proves the legal mediation shapes are
// recorded as crossings, not findings: Send-mediated peer mutation, the
// boundary-audited observer, Set* wiring, and the audited fabric queue.
func TestFixtureSanctionedPaths(t *testing.T) {
	a := extractFixture(t)
	want := []struct{ kind, detail string }{
		{"message", "fabric.Net.Send"},
		{"mediated", "tiles.Ctrl.recvBump"},
		{"boundary", "tiles.Ctrl.obs"},
		{"wiring", "tiles.Ctrl.SetObserver"},
		{"wiring", "tiles.Ctrl.SetHook"},
		{"wiring", "tiles.NewCtrl"},
		{"boundary", "fabric.Net.Drain"},
	}
	for _, w := range want {
		found := false
		for _, c := range a.Crossings {
			if c.Kind == w.kind && c.Detail == w.detail {
				found = true
				break
			}
		}
		if !found {
			for _, c := range a.Crossings {
				t.Logf("crossing: %s %s %s->%s at %s", c.Kind, c.Detail, c.From, c.To, c.Pos)
			}
			t.Fatalf("missing %s crossing for %s", w.kind, w.detail)
		}
	}
	for _, f := range a.Findings {
		if strings.Contains(f.Message, "SendBump") || strings.Contains(f.Message, "recvBump") {
			t.Errorf("sanctioned Send-mediated path flagged: %s: %s", f.Pos, f.Message)
		}
	}
}

// TestFixtureLocationClasses spot-checks the location table: sliced
// fabric slots, the injected-vs-boundary hook split, and the shared-
// domain policy holding (no plain mutable fabric state).
func TestFixtureLocationClasses(t *testing.T) {
	a := extractFixture(t)
	classes := map[string]string{}
	for _, l := range a.Locations {
		classes[l.Owner+"."+l.Field] = l.Class
	}
	want := map[string]string{
		"fabric.Net.slots":  "sliced",
		"fabric.slot.sent":  "sliced",
		"fabric.Net.queue":  "boundary",
		"tiles.Ctrl.obs":    "boundary",
		"tiles.Ctrl.hook":   "injected",
		"tiles.Ctrl.count":  "plain",
		"host.Host.started": "plain",
	}
	for k, v := range want {
		if classes[k] != v {
			t.Errorf("%s: class %q, want %q", k, classes[k], v)
		}
	}
	if d := a.Domains["fabric.slot"]; d != "fabric" {
		t.Errorf("fabric.slot domain %q, want fabric (inherited through Net.slots)", d)
	}
}

// TestRepoAtlasClean regenerates the ownership atlas for the real tree:
// it must have zero findings and match the checked-in golden byte for
// byte — the same gate `make isolate-check` enforces.
func TestRepoAtlasClean(t *testing.T) {
	dir, err := atlas.FindModuleDir(".")
	if err != nil {
		t.Fatalf("FindModuleDir: %v", err)
	}
	fresh, err := lpisolate.ExtractDir(dir, lpisolate.DefaultModel())
	if err != nil {
		t.Fatalf("ExtractDir(repo): %v", err)
	}
	for _, f := range fresh.Findings {
		t.Errorf("finding: %s: %s", f.Pos, f.Message)
	}
	golden, err := lpisolate.ReadFile(filepath.Join(dir, "docs", "isolation", "ownership.json"))
	if err != nil {
		t.Fatalf("reading golden (run `make isolate`): %v", err)
	}
	if !lpisolate.Equal(golden, fresh) {
		for _, d := range lpisolate.Diff(golden, fresh) {
			t.Errorf("drift: %s", d)
		}
		t.Fatal("ownership atlas is stale — run `make isolate`")
	}
}
