// Package lint hosts simlint: four custom analyzers that statically
// enforce invariants the simulator otherwise only checks at runtime
// (cycle-exact determinism, exhaustive protocol transitions, workload
// thread discipline, centralized latency constants), plus the shared
// registry, package-scope table, and //simlint:allow suppression filter
// used by cmd/simlint and the tests.
package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"denovosync/internal/lint/analysis"
)

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{ExhaustState, Determinism, ThreadDiscipline, CycleHygiene}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// scopes maps each analyzer to the repo-relative package paths it runs
// on. A nil entry means the whole tree. The scope is a property of what
// each invariant protects: determinism and cycle hygiene guard the
// simulator core (the machine/params layer legitimately reads wall time
// for reports and centralizes latency numbers); thread discipline guards
// code that runs *inside* the simulation. Orchestration layers above the
// simulator — internal/exp, internal/harness, the commands — are
// deliberately outside the determinism scope: wall-clock time (ETAs,
// timeouts) and host parallelism are their job, and every simulation
// they launch is still cycle-exact deterministic inside the boundary.
//
// internal/chaos is the exception among the upper layers: its whole
// point is that a (spec, seed) pair replays bit-identically, so it is
// *inside* the determinism scope — explicitly seeded generators
// (sim.NewRNG, rand.New(rand.NewSource(seed))) are fine, the global
// math/rand source and time.Now are not, and any order-insensitive map
// range needs a per-site //simlint:allow with a reason (no blanket
// suppressions). It stays outside the cycle-hygiene scope for the same
// reason internal/exp does: it is a config-bearing layer (jitter
// bounds, watchdog budgets) above the latency constants.
var scopes = map[string][]string{
	ExhaustState.Name: nil,
	Determinism.Name: {
		"internal/sim", "internal/cache", "internal/mesi", "internal/denovo",
		"internal/noc", "internal/mem", "internal/cpu", "internal/stats",
		"internal/chaos",
	},
	CycleHygiene.Name: {
		"internal/sim", "internal/cache", "internal/mesi", "internal/denovo",
		"internal/noc", "internal/mem", "internal/cpu", "internal/stats",
	},
	ThreadDiscipline.Name: {
		"internal/kernels", "internal/apps", "internal/locks",
		"internal/barrier", "internal/lockfree",
	},
}

// InScope reports whether analyzer a applies to the package at the
// repo-relative path (e.g. "internal/mesi").
func InScope(a *analysis.Analyzer, relPath string) bool {
	paths, ok := scopes[a.Name]
	if !ok {
		return false
	}
	if paths == nil {
		return true
	}
	for _, p := range paths {
		if relPath == p {
			return true
		}
	}
	return false
}

// allowRE matches a suppression directive. The reason after the colon is
// mandatory: an unjustified suppression is itself a finding.
var allowRE = regexp.MustCompile(`//simlint:allow\s+([a-z]+)\s*:\s*(\S.*)`)

// Filter drops diagnostics suppressed by a //simlint:allow directive for
// the analyzer, located on the diagnostic's line or the line above it.
// Files must have been parsed with parser.ParseComments.
func Filter(fset *token.FileSet, files []*ast.File, a *analysis.Analyzer, diags []analysis.Diagnostic) []analysis.Diagnostic {
	allowed := map[string]map[int]bool{} // filename -> lines with a directive for a
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] != a.Name || strings.TrimSpace(m[2]) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if allowed[pos.Filename] == nil {
					allowed[pos.Filename] = map[int]bool{}
				}
				allowed[pos.Filename][pos.Line] = true
			}
		}
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		lines := allowed[pos.Filename]
		if lines != nil && (lines[pos.Line] || lines[pos.Line-1]) {
			continue
		}
		out = append(out, d)
	}
	return out
}
