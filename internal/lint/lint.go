// Package lint hosts simlint: six custom analyzers that statically
// enforce invariants the simulator otherwise only checks at runtime
// (cycle-exact determinism, exhaustive protocol transitions, workload
// thread discipline, centralized latency constants, read-only observer
// hooks, golden-atlas freshness), plus the shared registry,
// package-scope table, and //simlint:allow suppression filter used by
// cmd/simlint and the tests.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"denovosync/internal/lint/analysis"
)

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ExhaustState, Determinism, ThreadDiscipline, CycleHygiene,
		ObserverPurity, AtlasDrift,
	}
}

// ByName returns the analyzer with the given name, or nil. Names are
// matched case-insensitively: analyzer names are all-lowercase by
// convention, and a capitalized spelling ("ExhaustState") used to fall
// through to nil as silently as a typo, making -analyzer filters
// no-ops.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if strings.EqualFold(a.Name, name) {
			return a
		}
	}
	return nil
}

// Names returns the analyzer names in reporting order (for error
// messages listing the valid values).
func Names() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// scopes maps each analyzer to the repo-relative package paths it runs
// on. A nil entry means the whole tree. The scope is a property of what
// each invariant protects: determinism and cycle hygiene guard the
// simulator core (the machine/params layer legitimately reads wall time
// for reports and centralizes latency numbers); thread discipline guards
// code that runs *inside* the simulation. Orchestration layers above the
// simulator — internal/exp, internal/harness, the commands — are
// deliberately outside the determinism scope: wall-clock time (ETAs,
// timeouts) and host parallelism are their job, and every simulation
// they launch is still cycle-exact deterministic inside the boundary.
//
// internal/chaos is the exception among the upper layers: its whole
// point is that a (spec, seed) pair replays bit-identically, so it is
// *inside* the determinism scope — explicitly seeded generators
// (sim.NewRNG, rand.New(rand.NewSource(seed))) are fine, the global
// math/rand source and time.Now are not, and any order-insensitive map
// range needs a per-site //simlint:allow with a reason (no blanket
// suppressions). It stays outside the cycle-hygiene scope for the same
// reason internal/exp does: it is a config-bearing layer (jitter
// bounds, watchdog budgets) above the latency constants.
var scopes = map[string][]string{
	ExhaustState.Name: nil,
	// internal/fuzz joins chaos inside the determinism scope: a campaign
	// is byte-reproducible by contract (candidate generation, acceptance,
	// and corpus contents are a pure function of seed + journal), so the
	// same rules apply — seeded generators only, no wall clock, no
	// order-sensitive map ranges without a per-site justification.
	// internal/lint/lpisolate is in the determinism scope for the same
	// reason the atlas is golden-gated: the ownership atlas it emits is
	// checked-in JSON compared byte-for-byte in CI, so its extraction
	// must be a pure function of the source tree — sorted iterations
	// only, no wall clock.
	// internal/backoff is the one piece of the distributed fabric inside
	// the determinism scope: its retry schedule is a pure seeded function
	// (the same (seed, key, attempt) always yields the same delay, which
	// is what makes fabric fault tests replayable), so the simulator-core
	// rules apply. internal/fabric itself stays host-service code like
	// internal/exp: leases, heartbeats, and RPC timeouts are wall-clock
	// business by design, and every run it distributes is still
	// cycle-exact deterministic inside the simulation boundary.
	Determinism.Name: {
		"internal/sim", "internal/cache", "internal/mesi", "internal/denovo",
		"internal/noc", "internal/mem", "internal/cpu", "internal/stats",
		"internal/chaos", "internal/fuzz", "internal/lint/lpisolate",
		"internal/backoff",
	},
	CycleHygiene.Name: {
		"internal/sim", "internal/cache", "internal/mesi", "internal/denovo",
		"internal/noc", "internal/mem", "internal/cpu", "internal/stats",
	},
	ThreadDiscipline.Name: {
		"internal/kernels", "internal/apps", "internal/locks",
		"internal/barrier", "internal/lockfree",
	},
	// observerpurity guards the read-only hook surfaces: the coverage
	// observers living inside the protocol packages and the invariant
	// monitor in chaos (it further narrows to observe.go / coverage.go /
	// monitor.go by file name).
	ObserverPurity.Name: {
		"internal/mesi", "internal/denovo", "internal/chaos",
	},
	// atlasdrift compares the protocol packages against their checked-in
	// golden transition atlases.
	AtlasDrift.Name: {
		"internal/mesi", "internal/denovo",
	},
}

// InScope reports whether analyzer a applies to the package at the
// repo-relative path (e.g. "internal/mesi").
func InScope(a *analysis.Analyzer, relPath string) bool {
	paths, ok := scopes[a.Name]
	if !ok {
		return false
	}
	if paths == nil {
		return true
	}
	for _, p := range paths {
		if relPath == p {
			return true
		}
	}
	return false
}

// Suppressed is one diagnostic a //simlint:allow directive silenced,
// with the directive's mandatory reason.
type Suppressed struct {
	Diag   analysis.Diagnostic
	Reason string
}

// Filter drops diagnostics suppressed by a //simlint:allow directive for
// the analyzer: an end-of-line directive suppresses its own line; a
// standalone directive comment suppresses its own line and the line
// below it (the shared scoping rule in BlessedLines). Files must have
// been parsed with parser.ParseComments.
func Filter(fset *token.FileSet, files []*ast.File, a *analysis.Analyzer, diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept, _ := Partition(fset, files, a, diags)
	return kept
}

// Partition splits diagnostics into the kept findings and the ones a
// //simlint:allow directive suppressed (with the directive's reason) —
// the machine-readable output of cmd/simlint -json reports both.
func Partition(fset *token.FileSet, files []*ast.File, a *analysis.Analyzer, diags []analysis.Diagnostic) ([]analysis.Diagnostic, []Suppressed) {
	allowed := BlessedLines(fset, files, func(text string) (string, bool) {
		return AllowDirective(text, a.Name)
	})
	var kept []analysis.Diagnostic
	var supp []Suppressed
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if reason, ok := allowed[pos.Filename][pos.Line]; ok {
			supp = append(supp, Suppressed{Diag: d, Reason: reason})
			continue
		}
		kept = append(kept, d)
	}
	return kept, supp
}
