package lint

import (
	"go/ast"
	"go/types"

	"denovosync/internal/lint/analysis"
)

// Determinism forbids, in simulator packages, the three constructs whose
// behavior varies across runs of the same seed and would break the
// cycle-exact determinism goldens:
//
//   - range iteration over a map (Go randomizes the order per run);
//   - time.Now (wall-clock time);
//   - the global math/rand source (seeded from runtime state; simulator
//     randomness must come from internal/sim's explicit xorshift RNG).
//
// Map ranges whose effect is provably order-insensitive (e.g. keys are
// collected and sorted before use) are suppressed at the site with
// //simlint:allow determinism: <reason>.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid map range iteration, time.Now, and global math/rand in " +
		"simulator packages: all three vary across runs of the same seed",
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(),
							"map range iteration in a simulator package: order varies per run; sort the keys first")
					}
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if obj.Name() == "Now" {
						pass.Reportf(n.Pos(),
							"time.Now in a simulator package: wall-clock time is nondeterministic; use the engine's cycle clock")
					}
				case "math/rand", "math/rand/v2":
					// Constructing an explicitly seeded generator is fine
					// (rand.New, rand.NewSource), as are references to the
					// package's types; every package-level function or
					// variable touches the global source.
					if _, isType := obj.(*types.TypeName); isType {
						return true
					}
					if obj.Name() != "New" && obj.Name() != "NewSource" {
						pass.Reportf(n.Pos(),
							"global math/rand (%s.%s) in a simulator package: use internal/sim's seeded RNG", obj.Pkg().Name(), obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
