package lint_test

import (
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/linttest"
)

func TestExhaustState(t *testing.T) {
	linttest.Run(t, "testdata", lint.ExhaustState, "exhaust", "exhaustx", "exhaustmap")
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", lint.Determinism, "determinism")
}

func TestThreadDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", lint.ThreadDiscipline, "threads")
}

func TestCycleHygiene(t *testing.T) {
	linttest.Run(t, "testdata", lint.CycleHygiene, "cycles")
}

func TestObserverPurity(t *testing.T) {
	linttest.Run(t, "testdata", lint.ObserverPurity, "observer")
}

func TestByName(t *testing.T) {
	for _, a := range lint.Analyzers() {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	// Case variants must resolve too: a capitalized spelling used to be
	// silently treated as "no such analyzer".
	if lint.ByName("ExhaustState") != lint.ExhaustState {
		t.Errorf("ByName is case-sensitive: ExhaustState not found")
	}
	if lint.ByName("OBSERVERPURITY") != lint.ObserverPurity {
		t.Errorf("ByName is case-sensitive: OBSERVERPURITY not found")
	}
	if lint.ByName("nosuch") != nil {
		t.Errorf("ByName of an unknown analyzer returned non-nil")
	}
	if len(lint.Names()) != len(lint.Analyzers()) {
		t.Errorf("Names() length mismatch")
	}
}

func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer string
		rel      string
		want     bool
	}{
		{"exhauststate", "internal/mesi", true},
		{"exhauststate", "cmd/simlint", true},
		{"determinism", "internal/sim", true},
		{"determinism", "internal/machine", false}, // params layer reads wall time for reports
		{"cyclehygiene", "internal/denovo", true},
		{"cyclehygiene", "internal/machine", false}, // latencies are declared there
		{"threaddiscipline", "internal/kernels", true},
		{"threaddiscipline", "internal/cpu", false}, // the thread API itself uses channels
		// internal/exp is the host-side orchestration layer: wall-clock
		// progress/timeouts are its job, so only the whole-tree analyzers
		// apply — and no //simlint:allow suppressions are needed there.
		{"exhauststate", "internal/exp", true},
		{"determinism", "internal/exp", false},
		{"cyclehygiene", "internal/exp", false},
		{"threaddiscipline", "internal/exp", false},
		// internal/chaos must replay bit-identically from a (spec, seed)
		// pair, so unlike the other upper layers it *is* in the
		// determinism scope (seeded generators allowed, global
		// math/rand and time.Now banned) — but like internal/exp it is a
		// config-bearing layer, outside cycle hygiene.
		{"determinism", "internal/chaos", true},
		{"cyclehygiene", "internal/chaos", false},
		{"threaddiscipline", "internal/chaos", false},
		{"exhauststate", "internal/chaos", true},
		// internal/fabric is host-service code (leases, heartbeats, RPC
		// timeouts are wall-clock business), outside every scoped
		// analyzer like internal/exp...
		{"exhauststate", "internal/fabric", true},
		{"determinism", "internal/fabric", false},
		{"cyclehygiene", "internal/fabric", false},
		{"threaddiscipline", "internal/fabric", false},
		// ...except its retry schedule, internal/backoff, which is a pure
		// seeded function and *is* held to the determinism rules.
		{"determinism", "internal/backoff", true},
		{"cyclehygiene", "internal/backoff", false},
		{"threaddiscipline", "internal/backoff", false},
	}
	for _, c := range cases {
		if got := lint.InScope(lint.ByName(c.analyzer), c.rel); got != c.want {
			t.Errorf("InScope(%s, %s) = %t, want %t", c.analyzer, c.rel, got, c.want)
		}
	}
}
