// Package analysis is a self-contained subset of the
// golang.org/x/tools/go/analysis API: just enough structure (Analyzer,
// Pass, Diagnostic) for simlint's checkers to be written in the standard
// shape. The repo builds offline, so it cannot vendor x/tools; the types
// here mirror that package's fields one-for-one, and a checker written
// against this package ports to the real API by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's one-paragraph documentation.
	Doc string

	// Run applies the analyzer to a package.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzed, type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver owns filtering
	// (//simlint:allow) and formatting.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
