package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
)

// filterFixture parses srcs (filename -> source) and returns the fset,
// files, and a helper that builds a diagnostic at (filename, line).
func filterFixture(t *testing.T, srcs map[string]string) (*token.FileSet, []*ast.File, func(name string, line int) analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range srcs {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	at := func(name string, line int) analysis.Diagnostic {
		for _, f := range files {
			tf := fset.File(f.Pos())
			if tf.Name() == name {
				return analysis.Diagnostic{Pos: tf.LineStart(line), Message: "finding"}
			}
		}
		t.Fatalf("no parsed file %s", name)
		return analysis.Diagnostic{}
	}
	return fset, files, at
}

func TestFilterSuppressionPlacement(t *testing.T) {
	fset, files, at := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	//simlint:allow determinism: line-above directive
	_ = 1
	_ = 2 //simlint:allow determinism: end-of-line directive
	_ = 3
}
`,
	})
	det := lint.Determinism
	diags := []analysis.Diagnostic{
		at("a.go", 5), // line below a standalone directive: suppressed
		at("a.go", 6), // end-of-line directive: suppressed
		at("a.go", 7), // below an end-of-line directive: NOT blessed — survives
		at("a.go", 4), // the standalone directive's own line also counts
	}
	got := lint.Filter(fset, files, det, diags)
	if len(got) != 1 || fset.Position(got[0].Pos).Line != 7 {
		t.Fatalf("want only the line-7 finding to survive, got %v", positions(fset, got))
	}
}

func TestFilterRequiresReason(t *testing.T) {
	fset, files, at := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	//simlint:allow determinism:
	_ = 1
	//simlint:allow determinism
	_ = 2
}
`,
	})
	diags := []analysis.Diagnostic{at("a.go", 5), at("a.go", 7)}
	got := lint.Filter(fset, files, lint.Determinism, diags)
	if len(got) != 2 {
		t.Fatalf("reason-less directives must not suppress; got %v", positions(fset, got))
	}
}

func TestFilterAnalyzerSpecific(t *testing.T) {
	fset, files, at := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	//simlint:allow cyclehygiene: wrong analyzer for this finding
	_ = 1
}
`,
	})
	diags := []analysis.Diagnostic{at("a.go", 5)}
	if got := lint.Filter(fset, files, lint.Determinism, diags); len(got) != 1 {
		t.Fatalf("directive for another analyzer suppressed a determinism finding")
	}
	if got := lint.Filter(fset, files, lint.CycleHygiene, diags); len(got) != 0 {
		t.Fatalf("directive did not suppress its own analyzer's finding")
	}
}

// TestFilterPerFile pins the suppression to the file that carries it: a
// directive in one file of a package must not swallow a finding at the
// same line number of a sibling file.
func TestFilterPerFile(t *testing.T) {
	fset, files, at := filterFixture(t, map[string]string{
		"a.go": `package p

func f() {
	//simlint:allow determinism: only file a is excused
	_ = 1
}
`,
		"b.go": `package p

func g() {
	_ = 1
	_ = 2
}
`,
	})
	diags := []analysis.Diagnostic{at("a.go", 5), at("b.go", 5)}
	got := lint.Filter(fset, files, lint.Determinism, diags)
	if len(got) != 1 || fset.Position(got[0].Pos).Filename != "b.go" {
		t.Fatalf("want only b.go's finding to survive, got %v", positions(fset, got))
	}
}

func positions(fset *token.FileSet, diags []analysis.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fset.Position(d.Pos).String())
	}
	return out
}
