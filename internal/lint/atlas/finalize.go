package atlas

import "sort"

// finalize turns the accumulated drafts into merged, expanded tuples.
//
// Cross product: a draft's state set (nil => ["*"]) times its kind set
// (nil => unqualified event). Duplicate (state, event) tuples merge their
// atoms (first position wins). Then the residual-expansion rule: within
// one (controller, event), a "*" tuple that coexists with specific-state
// tuples stands for exactly the states that have no specific tuple — it
// is replaced by one tuple per missing declared state (or dropped when
// every state already has one). A "*" tuple with no specific siblings
// stays "*": the handler genuinely does not discriminate on state.
func (ex *extractor) finalize() []*Transition {
	type key struct{ state, event string }
	merged := map[key]*Transition{}
	var order []key

	events := make([]string, 0, len(ex.drafts))
	for e := range ex.drafts { //simlint:allow determinism: sorted on the next line
		events = append(events, e)
	}
	sort.Strings(events)

	for _, event := range events {
		for _, d := range ex.drafts[event] {
			if emptySet(d.states) || emptySet(d.kinds) {
				continue // unreachable guard combination
			}
			states := []string{"*"}
			if d.states != nil {
				states = states[:0]
				for _, s := range ex.stateNames {
					if d.states[s] {
						states = append(states, s)
					}
				}
			}
			eventNames := []string{event}
			if d.kinds != nil {
				eventNames = eventNames[:0]
				for _, k := range ex.kindNames {
					if d.kinds[k] {
						eventNames = append(eventNames, event+":"+k)
					}
				}
			}
			for _, s := range states {
				for _, e := range eventNames {
					k := key{s, e}
					t := merged[k]
					if t == nil {
						t = &Transition{
							Controller: ex.spec.Controller, State: s, Event: e,
							Pos: ex.posString(d.pos),
						}
						merged[k] = t
						order = append(order, k)
					}
					mergeAtoms(t, d.at)
				}
			}
		}
	}

	// Residual expansion.
	byEvent := map[string][]key{}
	for _, k := range order {
		byEvent[k.event] = append(byEvent[k.event], k)
	}
	var out []*Transition
	for _, k := range order {
		t := merged[k]
		if t == nil {
			continue
		}
		if k.state != "*" || len(byEvent[k.event]) == 1 {
			out = append(out, t)
			continue
		}
		// "*" with specific siblings: expand to the uncovered states.
		have := map[string]bool{}
		for _, sib := range byEvent[k.event] {
			if sib.state != "*" {
				have[sib.state] = true
			}
		}
		for _, s := range ex.stateNames {
			if have[s] {
				continue
			}
			out = append(out, &Transition{
				Controller: t.Controller, State: s, Event: t.Event,
				Next: append([]string(nil), t.Next...),
				Sends: append([]string(nil), t.Sends...),
				Actions: append([]string(nil), t.Actions...),
				Pos: t.Pos,
			})
		}
	}
	return out
}

// mergeAtoms folds a draft's atom sets into a tuple (deduplicated).
func mergeAtoms(t *Transition, a atoms) {
	t.Next = addAll(t.Next, a.next)
	t.Sends = addAll(t.Sends, a.sends)
	t.Actions = addAll(t.Actions, a.actions)
}

func addAll(dst []string, src map[string]bool) []string {
	for s := range src {
		found := false
		for _, d := range dst {
			if d == s {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	sort.Strings(dst)
	return dst
}
