// Package atlas extracts a machine-readable protocol-transition atlas
// from the coherence controllers' source code. It walks the state/event
// switch nests of internal/mesi and internal/denovo on the
// internal/lint/analysis API surface (go/ast + go/types only — no
// simulator imports, so lint analyzers may depend on it) and produces,
// for every (controller, state, event) tuple, the possible next states,
// the helper actions invoked, the messages sent (named by the remote
// handler the network callback invokes), and the source position.
//
// The atlas is checked in as golden JSON (docs/atlas/{mesi,denovo}.json)
// and consumed three ways:
//
//   - cmd/protocov regenerates it (drift gate), aggregates runtime
//     (controller, state, event) hits from the coverage observers across
//     the kernel grid, and gates every tuple on being either covered or
//     annotated //atlas:unreachable;
//   - the atlasdrift analyzer fails simlint when a handler grows a
//     transition the golden does not know about;
//   - the model cross-check maps tuples onto the abstract internal/verify
//     models through an explicit abstraction map.
package atlas

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Transition is one (controller, state, event) tuple of the atlas.
//
// State is the source-level constant name of the guarding stable state
// ("li", "ds", "wr", "roOther", ...) or "*" when the handler does not
// discriminate on state. Event is the handler method name, suffixed with
// ":<AccessKind>" when the handler dispatches on the access kind (e.g.
// "access:SyncLoad"). Content fields use may-semantics: they list what
// the tuple's code region can do, attributed at guard granularity.
type Transition struct {
	Controller string `json:"controller"`
	State      string `json:"state"`
	Event      string `json:"event"`

	// Next lists the stable states this transition can install.
	Next []string `json:"next,omitempty"`
	// Sends lists the remote handlers this transition's messages invoke.
	Sends []string `json:"sends,omitempty"`
	// Actions lists local controller/cache helpers the transition calls.
	Actions []string `json:"actions,omitempty"`

	// Pos anchors the tuple's guard in source ("file.go:123").
	Pos string `json:"pos"`

	// Unreachable carries the reason from an //atlas:unreachable
	// annotation; such tuples are exempt from the runtime coverage gate
	// (and flagged if they are covered anyway).
	Unreachable string `json:"unreachable,omitempty"`
}

// Key identifies a tuple.
func (t *Transition) Key() string {
	return t.Controller + " " + t.State + " " + t.Event
}

// EventBase returns the event's handler name without a kind qualifier.
func EventBase(event string) string {
	if i := strings.IndexByte(event, ':'); i >= 0 {
		return event[:i]
	}
	return event
}

// Atlas is one protocol's full transition table.
type Atlas struct {
	// Protocol is "mesi" or "denovo".
	Protocol string `json:"protocol"`
	// States maps each controller to its declared stable states, in
	// declaration (value) order.
	States map[string][]string `json:"states"`
	// Transitions is sorted by (controller, event, state).
	Transitions []*Transition `json:"transitions"`
}

// Lookup returns the tuple with the given key, or nil.
func (a *Atlas) Lookup(controller, state, event string) *Transition {
	for _, t := range a.Transitions {
		if t.Controller == controller && t.State == state && t.Event == event {
			return t
		}
	}
	return nil
}

// sortKey orders states by declaration order within their controller,
// with "*" last.
func (a *Atlas) stateIndex(controller, state string) int {
	if state == "*" {
		return 1 << 20
	}
	for i, s := range a.States[controller] {
		if s == state {
			return i
		}
	}
	return 1 << 19
}

// Sort puts transitions into the canonical golden order.
func (a *Atlas) Sort() {
	sort.Slice(a.Transitions, func(i, j int) bool {
		x, y := a.Transitions[i], a.Transitions[j]
		if x.Controller != y.Controller {
			return x.Controller < y.Controller
		}
		if x.Event != y.Event {
			return x.Event < y.Event
		}
		return a.stateIndex(x.Controller, x.State) < a.stateIndex(y.Controller, y.State)
	})
	for _, t := range a.Transitions {
		sort.Strings(t.Next)
		sort.Strings(t.Sends)
		sort.Strings(t.Actions)
	}
}

// WriteFile writes the atlas as stable, indented golden JSON.
func (a *Atlas) WriteFile(path string) error {
	a.Sort()
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a golden atlas.
func ReadFile(path string) (*Atlas, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Atlas
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("atlas: parsing %s: %w", path, err)
	}
	return &a, nil
}

// Equal reports whether two atlases are semantically identical (same
// tuples with the same content, positions included).
func Equal(a, b *Atlas) bool {
	a.Sort()
	b.Sort()
	da, _ := json.Marshal(a)
	db, _ := json.Marshal(b)
	return string(da) == string(db)
}

// Diff returns a human-readable summary of tuple-level differences
// between the golden and regenerated atlases (empty when identical).
func Diff(golden, fresh *Atlas) []string {
	var out []string
	gk := map[string]*Transition{}
	for _, t := range golden.Transitions {
		gk[t.Key()] = t
	}
	fk := map[string]*Transition{}
	for _, t := range fresh.Transitions {
		fk[t.Key()] = t
	}
	fresh.Sort()
	golden.Sort()
	for _, t := range fresh.Transitions {
		g, ok := gk[t.Key()]
		if !ok {
			out = append(out, fmt.Sprintf("new tuple (%s) at %s", t.Key(), t.Pos))
			continue
		}
		dg, _ := json.Marshal(g)
		df, _ := json.Marshal(t)
		if string(dg) != string(df) {
			out = append(out, fmt.Sprintf("changed tuple (%s) at %s", t.Key(), t.Pos))
		}
	}
	for _, t := range golden.Transitions {
		if _, ok := fk[t.Key()]; !ok {
			out = append(out, fmt.Sprintf("removed tuple (%s), was at %s", t.Key(), t.Pos))
		}
	}
	return out
}

// Hit is one runtime (controller, state, event) activation reported by a
// coverage observer (mesi/denovo SetTransitionObserver).
type Hit struct {
	Controller, State, Event string
}

// Covers reports whether hit h covers tuple t:
//
//   - controllers must match exactly;
//   - tuple state "*" matches any hit state, otherwise exact;
//   - the tuple event matches the hit event exactly, or the hit's
//     kind-qualified event ("access:SyncLoad") covers the tuple's
//     unqualified base event ("access").
func (t *Transition) Covers(h Hit) bool {
	if t.Controller != h.Controller {
		return false
	}
	if t.State != "*" && t.State != h.State {
		return false
	}
	return t.Event == h.Event || t.Event == EventBase(h.Event)
}

// Coverage is the result of matching a hit set against an atlas.
type Coverage struct {
	Covered []*Transition
	// Uncovered are reachable tuples (not annotated) with no hit.
	Uncovered []*Transition
	// Unreachable are annotated tuples with no hit (as expected).
	Unreachable []*Transition
	// Stale are tuples annotated //atlas:unreachable that WERE hit —
	// the annotation no longer tells the truth.
	Stale []*Transition
	// Unknown are hits matching no tuple (informational: the observer
	// fired in a state the static walk attributes to no guard).
	Unknown []Hit
}

// Match computes coverage of atlas a by the hit multiset.
func Match(a *Atlas, hits map[Hit]uint64) *Coverage {
	cov := &Coverage{}
	matched := map[Hit]bool{}
	for _, t := range a.Transitions {
		hit := false
		for h := range hits { //simlint:allow determinism: match result sets are sorted by the caller's report
			if t.Covers(h) {
				hit = true
				matched[h] = true
			}
		}
		switch {
		case hit && t.Unreachable != "":
			cov.Stale = append(cov.Stale, t)
		case hit:
			cov.Covered = append(cov.Covered, t)
		case t.Unreachable != "":
			cov.Unreachable = append(cov.Unreachable, t)
		default:
			cov.Uncovered = append(cov.Uncovered, t)
		}
	}
	for h := range hits { //simlint:allow determinism: sorted below
		if !matched[h] {
			cov.Unknown = append(cov.Unknown, h)
		}
	}
	sort.Slice(cov.Unknown, func(i, j int) bool {
		x, y := cov.Unknown[i], cov.Unknown[j]
		if x.Controller != y.Controller {
			return x.Controller < y.Controller
		}
		if x.Event != y.Event {
			return x.Event < y.Event
		}
		return x.State < y.State
	})
	return cov
}
