package atlas

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"denovosync/internal/lint/loader"
)

// ModulePath reads the module path from moduleDir/go.mod.
func ModulePath(moduleDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("atlas: no module line in %s/go.mod", moduleDir)
}

// LoadDir parses and type-checks one package of the module rooted at
// moduleDir (via the simlint loader — source-only, offline). pkgPath is
// the import path (e.g. "denovosync/internal/mesi"). Shared by the
// atlas extractor and the liveness certifier so both read the module
// tree the same way.
func LoadDir(moduleDir, pkgPath string) (*token.FileSet, *loader.Package, error) {
	modPath, err := ModulePath(moduleDir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	ld := loader.New(fset, func(p string) (string, bool) {
		if p == modPath {
			return moduleDir, true
		}
		if rest, ok := strings.CutPrefix(p, modPath+"/"); ok {
			return filepath.Join(moduleDir, filepath.FromSlash(rest)), true
		}
		return "", false
	})
	pkg, err := ld.Load(pkgPath)
	if err != nil {
		return nil, nil, err
	}
	return fset, pkg, nil
}

// ExtractDir loads one protocol package from a module tree and extracts
// its atlas.
func ExtractDir(moduleDir, pkgPath string) (*Atlas, error) {
	fset, pkg, err := LoadDir(moduleDir, pkgPath)
	if err != nil {
		return nil, err
	}
	return Extract(fset, pkg.Files, pkg.Types, pkg.Info)
}

// FindModuleDir walks up from dir to the enclosing go.mod.
func FindModuleDir(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("atlas: no go.mod above %s", dir)
		}
		d = parent
	}
}
