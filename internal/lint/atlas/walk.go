package atlas

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// walkResult summarizes one statement region.
type walkResult struct {
	drafts []*draft // partition drafts created inside the region
	pass   atoms    // atoms on the fall-through path (includes the seed)
	// states/kinds are the guard sets of the fall-through path after
	// flow narrowing (nil = unconstrained, empty = unreachable).
	states, kinds map[string]bool
	terminated    bool // every path ends in return/panic/continue/break
}

// walkStmts analyzes a straight-line region under guard (states, kinds),
// with seed the pass-through atoms accumulated by the enclosing region so
// far (new drafts inherit them). The walk maintains flow narrowing: a
// guard-terminated or partitioned branch removes its states/kinds from
// the fall-through sets, and partition drafts stay "open" so that atoms
// of later statements (which their paths also execute) reach them.
func (ex *extractor) walkStmts(stmts []ast.Stmt, states, kinds map[string]bool, seed atoms) walkResult {
	r := walkResult{pass: seed.clone(), states: cloneSet(states), kinds: cloneSet(kinds)}

	add := func(a atoms) {
		r.pass.merge(a)
		for _, d := range r.drafts {
			if d.open {
				d.at.merge(a)
			}
		}
	}
	absorb := func(sub walkResult) { // pass-through sub-region (loop, callback, ...)
		r.drafts = append(r.drafts, sub.drafts...)
		add(sub.pass)
	}

	for _, stmt := range stmts {
		if r.terminated {
			break // dead code
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			r.terminated = true
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
				r.terminated = true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				ex.simpleStmt(s.Init, r.states, r.kinds, add, &r)
			}
			cs, ck, pure := ex.cond(s.Cond)
			if pure && (cs != nil || ck != nil) {
				ex.pureIf(s, cs, ck, add, &r)
			} else {
				// Impure guard: both branches merge into the fall-through
				// context (may-semantics), no narrowing.
				sub := ex.walkStmts(s.Body.List, r.states, r.kinds, r.pass)
				absorb(sub)
				if s.Else != nil {
					sub := ex.walkStmts(elseStmts(s.Else), r.states, r.kinds, r.pass)
					absorb(sub)
				}
			}
		case *ast.SwitchStmt:
			if s.Init != nil {
				ex.simpleStmt(s.Init, r.states, r.kinds, add, &r)
			}
			ex.switchStmt(s, add, &r)
		case *ast.ForStmt:
			sub := ex.walkStmts(s.Body.List, r.states, r.kinds, r.pass)
			absorb(sub)
		case *ast.RangeStmt:
			sub := ex.walkStmts(s.Body.List, r.states, r.kinds, r.pass)
			absorb(sub)
		case *ast.BlockStmt:
			sub := ex.walkStmts(s.List, r.states, r.kinds, r.pass)
			absorb(sub)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
				r.terminated = true
				continue
			}
			ex.simpleStmt(s, r.states, r.kinds, add, &r)
		default:
			ex.simpleStmt(s, r.states, r.kinds, add, &r)
		}
	}
	return r
}

// pureIf handles an if whose condition is a pure state/kind constraint:
// the then-branch becomes a partition draft and the fall-through guard
// narrows to the complement.
func (ex *extractor) pureIf(s *ast.IfStmt, cs, ck map[string]bool, add func(atoms), r *walkResult) {
	thenStates := intersect(r.states, cs)
	thenKinds := intersect(r.kinds, ck)
	sub := ex.walkStmts(s.Body.List, thenStates, thenKinds, r.pass)
	r.drafts = append(r.drafts, sub.drafts...)
	r.drafts = append(r.drafts, &draft{
		states: sub.states, kinds: sub.kinds, pos: s.Pos(),
		at: sub.pass, open: !sub.terminated,
	})
	if cs != nil {
		r.states = subtract(orUniverse(r.states, ex.stateNames), cs)
	}
	if ck != nil {
		r.kinds = subtract(orUniverse(r.kinds, ex.kindNames), ck)
	}
	if s.Else != nil {
		esub := ex.walkStmts(elseStmts(s.Else), r.states, r.kinds, r.pass)
		r.drafts = append(r.drafts, esub.drafts...)
		r.drafts = append(r.drafts, &draft{
			states: esub.states, kinds: esub.kinds, pos: s.Else.Pos(),
			at: esub.pass, open: !esub.terminated,
		})
		// Both branches are partitioned: nothing falls through untracked.
		if cs != nil {
			r.states = map[string]bool{}
		} else {
			r.kinds = map[string]bool{}
		}
		if sub.terminated && esub.terminated {
			r.terminated = true
		}
	}
	_ = add
}

// switchStmt handles state switches and kind switches as partitions;
// any other switch is plain control flow whose arms merge.
func (ex *extractor) switchStmt(s *ast.SwitchStmt, add func(atoms), r *walkResult) {
	var sort string
	if s.Tag != nil {
		if tv, ok := ex.info.Types[s.Tag]; ok {
			switch {
			case types.Identical(tv.Type, ex.stateType):
				sort = "state"
			case types.Identical(tv.Type, ex.kindType):
				sort = "kind"
			}
		}
	}
	if sort == "" {
		// Tagless or non-guard switch: merge every arm.
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			sub := ex.walkStmts(clause.Body, r.states, r.kinds, r.pass)
			r.drafts = append(r.drafts, sub.drafts...)
			r.pass.merge(sub.pass)
			for _, d := range r.drafts {
				if d.open {
					d.at.merge(sub.pass)
				}
			}
		}
		return
	}

	typ, universe := ex.stateType, ex.stateNames
	if sort == "kind" {
		typ, universe = ex.kindType, ex.kindNames
	}
	cur := orUniverse(guardFor(sort, r), universe)
	covered := map[string]bool{}
	allTerminated := true
	hasDefault := false
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		var arm map[string]bool
		if clause.List == nil {
			hasDefault = true
			arm = subtract(cur, caseValues(ex, s.Body.List, typ))
		} else {
			arm = map[string]bool{}
			for _, v := range clause.List {
				if n := ex.constName(v, typ); n != "" {
					arm[n] = true
					covered[n] = true
				}
			}
			arm = intersect(cloneSet(arm), cur)
		}
		armStates, armKinds := r.states, r.kinds
		if sort == "state" {
			armStates = arm
		} else {
			armKinds = arm
		}
		sub := ex.walkStmts(clause.Body, armStates, armKinds, r.pass)
		r.drafts = append(r.drafts, sub.drafts...)
		r.drafts = append(r.drafts, &draft{
			states: sub.states, kinds: sub.kinds, pos: clause.Pos(),
			at: sub.pass, open: !sub.terminated,
		})
		if !sub.terminated {
			allTerminated = false
		}
	}
	remaining := subtract(cur, covered)
	if hasDefault {
		remaining = map[string]bool{}
	}
	if sort == "state" {
		r.states = remaining
	} else {
		r.kinds = remaining
	}
	if allTerminated && len(remaining) == 0 {
		r.terminated = true
	}
}

// guardFor returns the current guard set for the given sort.
func guardFor(sort string, r *walkResult) map[string]bool {
	if sort == "state" {
		return r.states
	}
	return r.kinds
}

// caseValues unions the constant names of every non-default clause.
func caseValues(ex *extractor, clauses []ast.Stmt, typ types.Type) map[string]bool {
	all := map[string]bool{}
	for _, cc := range clauses {
		for _, v := range cc.(*ast.CaseClause).List {
			if n := ex.constName(v, typ); n != "" {
				all[n] = true
			}
		}
	}
	return all
}

// simpleStmt processes a non-branching statement: descend into
// same-context callbacks (Schedule/withResident/Fetch), record Net.Send
// targets, and collect atoms.
func (ex *extractor) simpleStmt(stmt ast.Stmt, states, kinds map[string]bool, add func(atoms), r *walkResult) {
	handled := map[*ast.FuncLit]bool{}
	ex.scanSpecials(stmt, func(call *ast.CallExpr, name string, fn *ast.FuncLit) {
		handled[fn] = true
		if name == "Send" {
			a := newAtoms()
			ex.sendTargets(fn, a.sends)
			add(a)
			return
		}
		sub := ex.walkStmts(fn.Body.List, states, kinds, r.pass)
		r.drafts = append(r.drafts, sub.drafts...)
		add(sub.pass)
	})
	add(ex.collectAtoms(stmt, handled))
}

// scanSpecials finds the outermost descend/Send calls carrying a trailing
// FuncLit, without entering any FuncLit (nested specials are found by the
// recursive sub-walk).
func (ex *extractor) scanSpecials(n ast.Node, f func(*ast.CallExpr, string, *ast.FuncLit)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name := sel.Sel.Name
		if name != "Send" && !descendCalls[name] {
			return true
		}
		fn, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return true
		}
		f(call, name, fn)
		// Non-callback args may hold further calls (rare); the callback
		// itself was dispatched above.
		for _, a := range call.Args[:len(call.Args)-1] {
			ex.scanSpecials(a, f)
		}
		return false
	})
}

// sendTargets records the protocol-package methods a Net.Send callback
// invokes (the remote handlers the message reaches).
func (ex *extractor) sendTargets(fn *ast.FuncLit, out map[string]bool) {
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if ex.recvPkg(sel) == ex.pkg {
			out[sel.Sel.Name] = true
		}
		return true
	})
}

// recvPkg resolves the defining package of a method call's receiver's
// named type (after pointer deref), or nil.
func (ex *extractor) recvPkg(sel *ast.SelectorExpr) *types.Package {
	tv, ok := ex.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil {
		return nil
	}
	return n.Obj().Pkg()
}

// collectAtoms gathers next-states, sends (none here — Send is handled
// by simpleStmt), and actions from one statement, skipping FuncLits,
// comparisons, and observe hooks.
func (ex *extractor) collectAtoms(stmt ast.Stmt, handledFns map[*ast.FuncLit]bool) atoms {
	a := newAtoms()
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // stored closures / handled callbacks
		case *ast.BinaryExpr:
			if v.Op == token.EQL || v.Op == token.NEQ {
				return false // comparisons are guards, not transitions
			}
		case *ast.AssignStmt:
			// A state constant installed into a persistent structure
			// (field or element) is a next-state; assignments to plain
			// local variables are reads.
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				if _, plain := lhs.(*ast.Ident); plain {
					continue
				}
				if n := ex.constName(v.Rhs[i], ex.stateType); n != "" {
					a.next[n] = true
				}
			}
			// Continue into children for calls; constants directly under
			// ident-LHS assignments are filtered in the Ident case below.
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if strings.HasPrefix(name, "observe") {
					return false
				}
				pkg := ex.recvPkg(sel)
				if pkg != nil && (pkg == ex.pkg || pkg.Path() == cachePkg) &&
					!excludeActions[name] && !descendCalls[name] && name != "Send" {
					a.actions[name] = true
				}
			}
			// State constants passed to helpers (setUnit/downUnit/...)
			// are installed states.
			for _, arg := range v.Args {
				if n := ex.constName(arg, ex.stateType); n != "" {
					a.next[n] = true
				}
			}
		}
		return true
	}
	// Filter plain-ident initializations (st := wi) before inspecting.
	ast.Inspect(stmt, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			allIdent := true
			for _, l := range as.Lhs {
				if _, ok := l.(*ast.Ident); !ok {
					allIdent = false
				}
			}
			if allIdent {
				// Walk only the RHS subtrees for calls, not constants.
				for _, rhs := range as.Rhs {
					if ex.constName(rhs, ex.stateType) != "" {
						continue
					}
					ast.Inspect(rhs, visit)
				}
				return false
			}
		}
		return visit(n)
	})
	return a
}

// cond classifies a guard condition into a state-constant set, a
// kind-constant set, and purity. A pure condition constrains only the
// guard value; any other conjunct (nil checks, flags, counters) makes it
// impure and the walker merges instead of partitioning.
func (ex *extractor) cond(e ast.Expr) (states, kinds map[string]bool, pure bool) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return ex.cond(v.X)
	case *ast.BinaryExpr:
		switch v.Op {
		case token.EQL, token.NEQ:
			name, typ := "", types.Type(nil)
			for _, pair := range [2][2]ast.Expr{{v.X, v.Y}, {v.Y, v.X}} {
				if n := ex.constName(pair[1], ex.stateType); n != "" && pureRead(pair[0]) {
					name, typ = n, ex.stateType
					break
				}
				if n := ex.constName(pair[1], ex.kindType); n != "" && pureRead(pair[0]) {
					name, typ = n, ex.kindType
					break
				}
			}
			if name == "" {
				return nil, nil, false
			}
			set := map[string]bool{name: true}
			if v.Op == token.NEQ {
				if typ == ex.stateType {
					set = subtract(ex.universe(ex.stateNames), set)
				} else {
					set = subtract(ex.universe(ex.kindNames), set)
				}
			}
			if typ == ex.stateType {
				return set, nil, true
			}
			return nil, set, true
		case token.LOR:
			ls, lk, lp := ex.cond(v.X)
			rs, rk, rp := ex.cond(v.Y)
			if !lp || !rp {
				return nil, nil, false
			}
			if ls != nil && rs != nil && lk == nil && rk == nil {
				return union(ls, rs), nil, true
			}
			if lk != nil && rk != nil && ls == nil && rs == nil {
				return nil, union(lk, rk), true
			}
			return nil, nil, false
		case token.LAND:
			ls, lk, lp := ex.cond(v.X)
			rs, rk, rp := ex.cond(v.Y)
			if !lp || !rp {
				return nil, nil, false
			}
			return intersect(ls, rs), intersect(lk, rk), true
		}
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			s, k, p := ex.cond(v.X)
			if !p {
				return nil, nil, false
			}
			if s != nil {
				return subtract(ex.universe(ex.stateNames), s), k, true
			}
			if k != nil {
				return s, subtract(ex.universe(ex.kindNames), k), true
			}
		}
	}
	return nil, nil, false
}

// pureRead reports whether e is a side-effect-free guard-value read.
func pureRead(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return pureRead(v.X)
	case *ast.IndexExpr:
		return pureRead(v.X)
	case *ast.ParenExpr:
		return pureRead(v.X)
	}
	return false
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func elseStmts(e ast.Stmt) []ast.Stmt {
	switch v := e.(type) {
	case *ast.BlockStmt:
		return v.List
	default:
		return []ast.Stmt{v}
	}
}

// Set helpers. nil = unconstrained.

func cloneSet(s map[string]bool) map[string]bool {
	if s == nil {
		return nil
	}
	c := map[string]bool{}
	for k := range s {
		c[k] = true
	}
	return c
}

func intersect(a, b map[string]bool) map[string]bool {
	if a == nil {
		return cloneSet(b)
	}
	if b == nil {
		return cloneSet(a)
	}
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := cloneSet(a)
	if out == nil {
		out = map[string]bool{}
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func subtract(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if !b[k] {
			out[k] = true
		}
	}
	return out
}

// orUniverse materializes a nil (unconstrained) set as the universe.
func orUniverse(s map[string]bool, universe []string) map[string]bool {
	if s != nil {
		return s
	}
	out := map[string]bool{}
	for _, n := range universe {
		out[n] = true
	}
	return out
}
