package atlas

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// ControllerSpec tells the extractor how to read one controller: which
// receiver type's methods are protocol handlers and which named type is
// its stable-state enum.
type ControllerSpec struct {
	// Controller is the atlas tuple name ("mesi.L1", "denovo.Registry").
	Controller string
	// Recv is the receiver type name within the analyzed package.
	Recv string
	// StatePkg is the import path declaring the state type ("" = the
	// analyzed package itself).
	StatePkg string
	// StateType is the state type's name ("LineState", "dirState", ...).
	StateType string
	// Handlers are the method names whose bodies form the transition
	// nest.
	Handlers []string
}

// specs maps a protocol package path suffix to its controller specs.
const cachePkg = "denovosync/internal/cache"

var specs = map[string][]ControllerSpec{
	"mesi": {
		{
			Controller: "mesi.L1", Recv: "L1",
			StatePkg: cachePkg, StateType: "LineState",
			Handlers: []string{
				"access", "recvData", "recvInvAck", "maybeComplete",
				"evict", "recvInv", "recvFwdGetS", "recvFwdGetM",
			},
		},
		{
			Controller: "mesi.Directory", Recv: "Directory",
			StatePkg: "", StateType: "dirState",
			Handlers: []string{"serviceGetS", "serviceGetM", "complete", "recvPut"},
		},
	},
	"denovo": {
		{
			Controller: "denovo.L1", Recv: "L1",
			StatePkg: cachePkg, StateType: "WordState",
			Handlers: []string{
				"access", "evict", "recvWBAck", "recvDataFill",
				"recvFwdDataRead", "recvRegAck", "recvFwdReg", "serviceFwd",
			},
		},
		{
			Controller: "denovo.Registry", Recv: "Registry",
			StatePkg: "", StateType: "regOwnerState",
			Handlers: []string{"recvDataRead", "recvReg", "recvWB"},
		},
	},
}

// excludeActions are protocol-package/cache-package methods that are
// reads, naming helpers, or plumbing — not transition actions.
var excludeActions = map[string]bool{
	"Lookup": true, "NodeFor": true, "Stats": true, "OwnerOf": true,
	"StateOf": true, "unitOf": true, "unitWords": true, "ackFlits": true,
	"backoffMask": true, "regionOf": true, "entry": true, "line": true,
	"ownerState": true, "wordState": true, "lineState": true,
	"regClass": true, "initialIncrement": true, "Epoch": true,
}

// descendCalls have a trailing func() that runs in the SAME controller
// context (latency/residency plumbing): the walker descends into it.
var descendCalls = map[string]bool{"Schedule": true, "withResident": true, "Fetch": true}

// Specs returns the controller specs for one protocol package ("mesi",
// "denovo"), the authoritative handler registry the atlas and the
// liveness certifier both extract from.
func Specs(protocol string) []ControllerSpec {
	out := make([]ControllerSpec, len(specs[protocol]))
	copy(out, specs[protocol])
	return out
}

// DescendCall reports whether a call named name carries a trailing
// closure running in the same controller context (Schedule/withResident/
// Fetch), so cross-analyzer walkers descend consistently.
func DescendCall(name string) bool { return descendCalls[name] }

// ExcludedAction reports whether a method name is a pure read/naming
// helper rather than a transition action, so cross-analyzer call graphs
// stay in sync with the atlas.
func ExcludedAction(name string) bool { return excludeActions[name] }

// FindMethod locates the method declaration recv.name among files.
func FindMethod(files []*ast.File, recv, name string) *ast.FuncDecl {
	return findMethod(files, recv, name)
}

// Extract builds the transition atlas of one protocol package
// (internal/mesi or internal/denovo) from its parsed, type-checked form.
func Extract(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (*Atlas, error) {
	protocol := path.Base(pkg.Path())
	cs, ok := specs[protocol]
	if !ok {
		return nil, fmt.Errorf("atlas: no controller specs for package %s", pkg.Path())
	}
	a := &Atlas{Protocol: protocol, States: map[string][]string{}}
	for _, spec := range cs {
		ex, err := newExtractor(fset, pkg, info, spec)
		if err != nil {
			return nil, err
		}
		a.States[spec.Controller] = ex.stateNames
		for _, h := range spec.Handlers {
			fn := findMethod(files, spec.Recv, h)
			if fn == nil {
				return nil, fmt.Errorf("atlas: handler %s.%s not found in %s", spec.Recv, h, pkg.Path())
			}
			ex.extractHandler(h, fn)
		}
		a.Transitions = append(a.Transitions, ex.finalize()...)
	}
	if err := applyUnreachable(fset, files, a); err != nil {
		return nil, err
	}
	a.Sort()
	return a, nil
}

// findMethod locates the method decl recv.name among files.
func findMethod(files []*ast.File, recv, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Name.Name != name || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			t := fn.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recv {
				return fn
			}
		}
	}
	return nil
}

// atoms is the content of a draft: possible next states, messages sent
// (remote handler names), and local helper actions.
type atoms struct {
	next, sends, actions map[string]bool
}

func newAtoms() atoms {
	return atoms{next: map[string]bool{}, sends: map[string]bool{}, actions: map[string]bool{}}
}

func (a atoms) clone() atoms {
	c := newAtoms()
	c.merge(a)
	return c
}

func (a atoms) merge(b atoms) {
	for k := range b.next {
		a.next[k] = true
	}
	for k := range b.sends {
		a.sends[k] = true
	}
	for k := range b.actions {
		a.actions[k] = true
	}
}

// draft is a proto-tuple: a guard context (state set × kind set) plus the
// atoms its region can perform. nil sets mean unconstrained; empty sets
// mean unreachable.
type draft struct {
	states map[string]bool // nil => "*"
	kinds  map[string]bool // nil => unqualified event
	pos    token.Pos
	at     atoms
	open   bool // still accumulates pass-through atoms of enclosing code
}

// extractor holds per-controller state for one Extract run.
type extractor struct {
	fset *token.FileSet
	pkg  *types.Package
	info *types.Info
	spec ControllerSpec

	stateType  types.Type
	stateNames []string          // declaration (value) order
	stateOf    map[string]string // constant ExactString -> name
	kindType   types.Type
	kindNames  []string

	event  string // current handler
	drafts map[string][]*draft
}

func newExtractor(fset *token.FileSet, pkg *types.Package, info *types.Info, spec ControllerSpec) (*extractor, error) {
	ex := &extractor{
		fset: fset, pkg: pkg, info: info, spec: spec,
		stateOf: map[string]string{}, drafts: map[string][]*draft{},
	}
	st, err := lookupType(pkg, spec.StatePkg, spec.StateType)
	if err != nil {
		return nil, err
	}
	ex.stateType = st
	ex.stateNames = constNames(pkg, st, ex.stateOf)
	if len(ex.stateNames) == 0 {
		return nil, fmt.Errorf("atlas: no %s constants declared for %s", spec.StateType, spec.Controller)
	}
	kt, err := lookupType(pkg, "denovosync/internal/proto", "AccessKind")
	if err != nil {
		return nil, err
	}
	ex.kindType = kt
	ex.kindNames = constNames(pkg, kt, map[string]string{})
	return ex, nil
}

// lookupType resolves a named type from the analyzed package ("") or one
// of its imports.
func lookupType(pkg *types.Package, pkgPath, name string) (types.Type, error) {
	scope := pkg.Scope()
	if pkgPath != "" {
		scope = nil
		for _, imp := range pkg.Imports() {
			if imp.Path() == pkgPath {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil, fmt.Errorf("atlas: package %s does not import %s", pkg.Path(), pkgPath)
		}
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil, fmt.Errorf("atlas: type %s not found in %s", name, pkgPath)
	}
	return obj.Type(), nil
}

// constNames collects the constants of type t visible from pkg (its own
// scope plus t's defining package), in value order, filling byVal with
// value->name.
func constNames(pkg *types.Package, t types.Type, byVal map[string]string) []string {
	type sc struct {
		name string
		val  string
	}
	var cs []sc
	seen := map[string]bool{}
	scopes := []*types.Scope{pkg.Scope()}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg() != pkg {
		scopes = append(scopes, n.Obj().Pkg().Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), t) || seen[name] {
				continue
			}
			seen[name] = true
			cs = append(cs, sc{name, c.Val().ExactString()})
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i].val) != len(cs[j].val) {
			return len(cs[i].val) < len(cs[j].val)
		}
		return cs[i].val < cs[j].val
	})
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.name
		byVal[c.val] = c.name
	}
	return names
}

// constName resolves an expression to a state/kind constant name of the
// given type, or "".
func (ex *extractor) constName(e ast.Expr, t types.Type) string {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return ""
	}
	c, ok := ex.info.Uses[id].(*types.Const)
	if !ok && ex.info.Defs[id] != nil {
		c, ok = ex.info.Defs[id].(*types.Const)
	}
	if !ok || c == nil || !types.Identical(c.Type(), t) {
		return ""
	}
	return c.Name()
}

// universe returns the full constant-name set for sort ("state"/"kind").
func (ex *extractor) universe(names []string) map[string]bool {
	u := map[string]bool{}
	for _, n := range names {
		u[n] = true
	}
	return u
}

func (ex *extractor) posString(p token.Pos) string {
	pos := ex.fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// extractHandler walks one handler body and accumulates drafts.
func (ex *extractor) extractHandler(event string, fn *ast.FuncDecl) {
	ex.event = event
	res := ex.walkStmts(fn.Body.List, nil, nil, newAtoms())
	ds := res.drafts
	// The fall-through path of the handler is itself a tuple context,
	// unless it is unreachable (terminated, or its guard sets emptied).
	if !res.terminated && !emptySet(res.states) && !emptySet(res.kinds) {
		ds = append(ds, &draft{states: res.states, kinds: res.kinds, pos: fn.Pos(), at: res.pass})
	}
	ex.drafts[event] = append(ex.drafts[event], ds...)
}

// emptySet reports a non-nil empty guard set (= no values reach here).
func emptySet(s map[string]bool) bool { return s != nil && len(s) == 0 }

var unreachableRE = regexp.MustCompile(`^//atlas:unreachable\s+(\S+)\s+(\S+)\s+(\S+):\s*(\S.*)$`)

// applyUnreachable transfers //atlas:unreachable annotations onto tuples.
func applyUnreachable(fset *token.FileSet, files []*ast.File, a *Atlas) error {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := unreachableRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				t := a.Lookup(m[1], m[2], m[3])
				if t == nil {
					pos := fset.Position(c.Pos())
					return fmt.Errorf("%s:%d: //atlas:unreachable names unknown tuple (%s %s %s)",
						filepath.Base(pos.Filename), pos.Line, m[1], m[2], m[3])
				}
				t.Unreachable = strings.TrimSpace(m[4])
			}
		}
	}
	return nil
}
