package atlas

import (
	"strings"
	"testing"
)

func extractProtocol(t *testing.T, pkg string) *Atlas {
	t.Helper()
	mod, err := FindModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExtractDir(mod, "denovosync/internal/"+pkg)
	if err != nil {
		t.Fatalf("extracting %s: %v", pkg, err)
	}
	return a
}

func wantTuple(t *testing.T, a *Atlas, ctrl, state, event string) *Transition {
	t.Helper()
	tr := a.Lookup(ctrl, state, event)
	if tr == nil {
		t.Fatalf("missing tuple (%s %s %s)", ctrl, state, event)
	}
	return tr
}

func hasStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func TestExtractMESI(t *testing.T) {
	a := extractProtocol(t, "mesi")
	if a.Protocol != "mesi" {
		t.Fatalf("protocol = %q", a.Protocol)
	}
	if got := a.States["mesi.L1"]; strings.Join(got, ",") != "li,ls,le,lm" {
		t.Fatalf("L1 states = %v", got)
	}
	if got := a.States["mesi.Directory"]; strings.Join(got, ",") != "di,ds,dm" {
		t.Fatalf("Directory states = %v", got)
	}

	// Directory: I-state read grants exclusive (the E optimization).
	tr := wantTuple(t, a, "mesi.Directory", "di", "serviceGetS")
	if !hasStr(tr.Next, "dm") || !hasStr(tr.Sends, "recvData") {
		t.Errorf("(di serviceGetS) = next %v sends %v, want dm / recvData", tr.Next, tr.Sends)
	}
	// Directory: shared-state write invalidates sharers.
	tr = wantTuple(t, a, "mesi.Directory", "ds", "serviceGetM")
	if !hasStr(tr.Sends, "recvInv") || !hasStr(tr.Next, "dm") {
		t.Errorf("(ds serviceGetM) = next %v sends %v, want dm / recvInv", tr.Next, tr.Sends)
	}
	// Stale-Put handling does not discriminate on state.
	tr = wantTuple(t, a, "mesi.Directory", "*", "recvPut")
	if !hasStr(tr.Next, "di") {
		t.Errorf("(* recvPut) next = %v, want di", tr.Next)
	}

	// L1: store hit in M/E upgrades silently to M.
	tr = wantTuple(t, a, "mesi.L1", "lm", "access:DataStore")
	if !hasStr(tr.Next, "lm") {
		t.Errorf("(lm access:DataStore) next = %v, want lm", tr.Next)
	}
	wantTuple(t, a, "mesi.L1", "le", "access:SyncRMW")
	// L1: invalid-state load misses to the directory.
	tr = wantTuple(t, a, "mesi.L1", "li", "access:DataLoad")
	if !hasStr(tr.Sends, "recvGetS") {
		t.Errorf("(li access:DataLoad) sends = %v, want recvGetS", tr.Sends)
	}
	// L1: only M/E evictions write back.
	tr = wantTuple(t, a, "mesi.L1", "lm", "evict")
	if !hasStr(tr.Sends, "recvPut") {
		t.Errorf("(lm evict) sends = %v, want recvPut", tr.Sends)
	}
	tr = wantTuple(t, a, "mesi.L1", "ls", "evict")
	if hasStr(tr.Sends, "recvPut") {
		t.Errorf("(ls evict) sends = %v, want no recvPut", tr.Sends)
	}
	// L1: forwarded GetS downgrades M to S.
	tr = wantTuple(t, a, "mesi.L1", "lm", "recvFwdGetS")
	if !hasStr(tr.Next, "ls") || !hasStr(tr.Sends, "recvOwnerAck") {
		t.Errorf("(lm recvFwdGetS) = next %v sends %v, want ls / recvOwnerAck", tr.Next, tr.Sends)
	}
	// Completion is observed per miss-issuing state; the resident E/M
	// variants exist only as annotated-unreachable tuples (misses issue
	// from I or S only).
	tr = wantTuple(t, a, "mesi.L1", "li", "maybeComplete")
	if !hasStr(tr.Sends, "recvUnblock") {
		t.Errorf("(li maybeComplete) sends = %v, want recvUnblock", tr.Sends)
	}
	wantTuple(t, a, "mesi.L1", "ls", "maybeComplete")
	for _, s := range []string{"le", "lm"} {
		if tr := wantTuple(t, a, "mesi.L1", s, "maybeComplete"); tr.Unreachable == "" {
			t.Errorf("(%s maybeComplete) should be annotated unreachable", s)
		}
	}

	assertWellFormed(t, a)
}

func TestExtractDeNovo(t *testing.T) {
	a := extractProtocol(t, "denovo")
	if got := a.States["denovo.L1"]; strings.Join(got, ",") != "wi,wv,wr" {
		t.Fatalf("L1 states = %v", got)
	}
	if got := a.States["denovo.Registry"]; strings.Join(got, ",") != "roL2,roSelf,roOther" {
		t.Fatalf("Registry states = %v", got)
	}

	// Registry: registration with another core registered forwards.
	tr := wantTuple(t, a, "denovo.Registry", "roOther", "recvReg")
	if !hasStr(tr.Sends, "recvFwdReg") || !hasStr(tr.Actions, "register") {
		t.Errorf("(roOther recvReg) = sends %v actions %v, want recvFwdReg / register", tr.Sends, tr.Actions)
	}
	tr = wantTuple(t, a, "denovo.Registry", "roL2", "recvReg")
	if !hasStr(tr.Sends, "recvRegAck") {
		t.Errorf("(roL2 recvReg) sends = %v, want recvRegAck", tr.Sends)
	}
	// Registry: a writeback releases only self-registered words.
	tr = wantTuple(t, a, "denovo.Registry", "roSelf", "recvWB")
	if !hasStr(tr.Actions, "release") {
		t.Errorf("(roSelf recvWB) actions = %v, want release", tr.Actions)
	}
	tr = wantTuple(t, a, "denovo.Registry", "roOther", "recvWB")
	if hasStr(tr.Actions, "release") {
		t.Errorf("(roOther recvWB) actions = %v, want no release", tr.Actions)
	}
	// Registry: data reads forward without stealing registration.
	tr = wantTuple(t, a, "denovo.Registry", "roOther", "recvDataRead")
	if !hasStr(tr.Sends, "recvFwdDataRead") {
		t.Errorf("(roOther recvDataRead) sends = %v, want recvFwdDataRead", tr.Sends)
	}

	// L1: a data store transitions to Registered immediately at issue.
	tr = wantTuple(t, a, "denovo.L1", "wi", "access:DataStore")
	if !hasStr(tr.Next, "wr") || !hasStr(tr.Actions, "sendReg") {
		t.Errorf("(wi access:DataStore) = next %v actions %v, want wr / sendReg", tr.Next, tr.Actions)
	}
	// L1: sync loads register (single-reader rule) — a miss from Valid too.
	wantTuple(t, a, "denovo.L1", "wv", "access:SyncLoad")
	tr = wantTuple(t, a, "denovo.L1", "wr", "access:SyncLoad")
	if !hasStr(tr.Actions, "Touch") {
		t.Errorf("(wr access:SyncLoad) actions = %v, want Touch (hit)", tr.Actions)
	}
	// L1: a forwarded sync read downgrades R to Valid; writes invalidate.
	tr = wantTuple(t, a, "denovo.L1", "*", "serviceFwd:SyncLoad")
	if !hasStr(tr.Next, "wv") || !hasStr(tr.Actions, "noteRemoteSyncRead") {
		t.Errorf("(* serviceFwd:SyncLoad) = next %v actions %v, want wv / noteRemoteSyncRead", tr.Next, tr.Actions)
	}
	tr = wantTuple(t, a, "denovo.L1", "*", "serviceFwd:SyncStore")
	if !hasStr(tr.Next, "wi") {
		t.Errorf("(* serviceFwd:SyncStore) next = %v, want wi", tr.Next)
	}
	// L1: fills never overwrite Registered words.
	tr = wantTuple(t, a, "denovo.L1", "wr", "recvDataFill")
	if hasStr(tr.Next, "wv") {
		t.Errorf("(wr recvDataFill) next = %v, want no wv (registered words survive fills)", tr.Next)
	}
	tr = wantTuple(t, a, "denovo.L1", "wi", "recvDataFill")
	if !hasStr(tr.Next, "wv") {
		t.Errorf("(wi recvDataFill) next = %v, want wv", tr.Next)
	}
	// L1: only registered words write back on eviction.
	tr = wantTuple(t, a, "denovo.L1", "wr", "evict")
	if !hasStr(tr.Sends, "recvWB") {
		t.Errorf("(wr evict) sends = %v, want recvWB", tr.Sends)
	}

	assertWellFormed(t, a)
}

// assertWellFormed checks atlas-wide invariants: every tuple's state is
// declared (or "*"), every event's base is a known handler, every next
// state is declared for its controller.
func assertWellFormed(t *testing.T, a *Atlas) {
	t.Helper()
	for _, tr := range a.Transitions {
		states, ok := a.States[tr.Controller]
		if !ok {
			t.Errorf("tuple %s: unknown controller", tr.Key())
			continue
		}
		if tr.State != "*" && !hasStr(states, tr.State) {
			t.Errorf("tuple %s: undeclared state", tr.Key())
		}
		for _, n := range tr.Next {
			if !hasStr(states, n) {
				t.Errorf("tuple %s: undeclared next state %s", tr.Key(), n)
			}
		}
		if tr.Pos == "" {
			t.Errorf("tuple %s: missing position", tr.Key())
		}
	}
}

// TestCoversMatching pins the hit-matching rules the runtime gate uses.
func TestCoversMatching(t *testing.T) {
	tr := &Transition{Controller: "denovo.L1", State: "*", Event: "recvFwdReg"}
	if !tr.Covers(Hit{"denovo.L1", "wr", "recvFwdReg:SyncLoad"}) {
		t.Error("base event must cover kind-qualified hit")
	}
	if tr.Covers(Hit{"denovo.Registry", "wr", "recvFwdReg:SyncLoad"}) {
		t.Error("controller mismatch must not cover")
	}
	tr2 := &Transition{Controller: "mesi.L1", State: "li", Event: "access:DataLoad"}
	if !tr2.Covers(Hit{"mesi.L1", "li", "access:DataLoad"}) {
		t.Error("exact match must cover")
	}
	if tr2.Covers(Hit{"mesi.L1", "ls", "access:DataLoad"}) {
		t.Error("state mismatch must not cover")
	}
	if tr2.Covers(Hit{"mesi.L1", "li", "access:DataStore"}) {
		t.Error("kind mismatch must not cover")
	}
}
