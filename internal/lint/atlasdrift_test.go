package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"denovosync/internal/lint"
	"denovosync/internal/lint/analysis"
	"denovosync/internal/lint/atlas"
	"denovosync/internal/lint/driver"
	"denovosync/internal/lint/loader"
)

// loadRealPkg loads a package of this repo's own module through the
// simlint loader (source-only, offline).
func loadRealPkg(t *testing.T, rel string) (*token.FileSet, *loader.Package) {
	t.Helper()
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := driver.ModulePath(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	ld := loader.New(fset, func(p string) (string, bool) {
		if p == modPath {
			return moduleDir, true
		}
		if rest, ok := strings.CutPrefix(p, modPath+"/"); ok {
			dir := filepath.Join(moduleDir, filepath.FromSlash(rest))
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				return dir, true
			}
		}
		return "", false
	})
	pkg, err := ld.Load(modPath + "/" + rel)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	return fset, pkg
}

func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, pkg *loader.Package) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return diags
}

// TestAtlasDriftFresh runs atlasdrift on the real protocol packages
// against the checked-in goldens: no drift findings expected.
func TestAtlasDriftFresh(t *testing.T) {
	for _, rel := range []string{"internal/mesi", "internal/denovo"} {
		fset, pkg := loadRealPkg(t, rel)
		for _, d := range runAnalyzer(t, lint.AtlasDrift, fset, pkg) {
			t.Errorf("%s: unexpected drift finding: %s", rel, d.Message)
		}
	}
}

// TestAtlasDriftDoctored points atlasdrift at a golden with one tuple
// removed, one tuple's content altered, and one fabricated tuple added:
// all three drift directions must be reported.
func TestAtlasDriftDoctored(t *testing.T) {
	fset, pkg := loadRealPkg(t, "internal/mesi")
	g, err := atlas.ReadFile("../../docs/atlas/mesi.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Transitions) < 2 {
		t.Fatal("golden atlas implausibly small")
	}
	removed := g.Transitions[0].Key()
	g.Transitions = g.Transitions[1:]
	altered := g.Transitions[0]
	altered.Next = append(altered.Next, "bogus")
	g.Transitions = append(g.Transitions, &atlas.Transition{
		Controller: "mesi.L1", State: "li", Event: "recvPhantom", Pos: "mesi.go:1",
	})
	dir := t.TempDir()
	if err := g.WriteFile(filepath.Join(dir, "mesi.json")); err != nil {
		t.Fatal(err)
	}

	lint.GoldenAtlasDir = dir
	defer func() { lint.GoldenAtlasDir = "" }()
	diags := runAnalyzer(t, lint.AtlasDrift, fset, pkg)

	want := map[string]string{
		"removed tuple":    "(" + removed + ") is not in the golden atlas",
		"altered tuple":    "(" + altered.Key() + ") drifted from the golden atlas",
		"fabricated tuple": "(mesi.L1 li recvPhantom) has no implementation left",
	}
	for what, substr := range want {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s not reported (want message containing %q); got %d findings", what, substr, len(diags))
			for _, d := range diags {
				t.Logf("  finding: %s", d.Message)
			}
		}
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "make atlas") {
			t.Errorf("finding does not point at `make atlas`: %s", d.Message)
		}
	}
}
