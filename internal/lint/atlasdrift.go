package lint

import (
	"encoding/json"
	"go/token"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"denovosync/internal/lint/analysis"
	"denovosync/internal/lint/atlas"
)

// AtlasDrift checks a protocol package against its checked-in golden
// transition atlas (docs/atlas/<protocol>.json): a handler case arm that
// implements a (controller, state, event) tuple the golden does not
// know, a tuple whose content (next states, sends, actions) changed, or
// a golden tuple with no implementation left, fails lint pointing at
// `make atlas`. This keeps the golden — the artifact reviewers diff and
// the coverage gate trusts — from silently lagging the code.
//
// Comparison is semantic (tuple keys and content); source positions are
// ignored, so pure line shifts do not fail lint. Byte-exact golden
// freshness, positions included, is cmd/protocov -mode check's job.
var AtlasDrift = &analysis.Analyzer{
	Name: "atlasdrift",
	Doc: "protocol handler transitions must match the checked-in golden " +
		"atlas (docs/atlas/<protocol>.json); on drift, regenerate with " +
		"`make atlas` so the diff shows up in review",
	Run: runAtlasDrift,
}

// GoldenAtlasDir overrides where atlasdrift looks for golden atlas JSON
// files (tests point it at doctored goldens). Empty means the default:
// <module root>/docs/atlas, found by walking up from the analyzed
// package's directory.
var GoldenAtlasDir string

func runAtlasDrift(pass *analysis.Pass) (interface{}, error) {
	// Engage only on the real protocol packages — matching by full import
	// path, not base name, so test-fixture packages that mirror the repo
	// layout (e.g. demo/internal/mesi in the driver acceptance tests) are
	// not dragged through extraction they cannot satisfy.
	switch pass.Pkg.Path() {
	case "denovosync/internal/mesi", "denovosync/internal/denovo":
	default:
		return nil, nil
	}
	protocol := path.Base(pass.Pkg.Path())
	fresh, err := atlas.Extract(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	if err != nil {
		return nil, err
	}
	dir := GoldenAtlasDir
	if dir == "" {
		pkgDir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
		modDir, err := atlas.FindModuleDir(pkgDir)
		if err != nil {
			return nil, err
		}
		dir = filepath.Join(modDir, "docs", "atlas")
	}
	golden, err := atlas.ReadFile(filepath.Join(dir, protocol+".json"))
	if err != nil {
		return nil, err
	}

	goldenByKey := map[string]*atlas.Transition{}
	for _, t := range golden.Transitions {
		goldenByKey[t.Key()] = t
	}
	seen := map[string]bool{}
	for _, t := range fresh.Transitions {
		seen[t.Key()] = true
		pos := tuplePos(pass, t.Pos)
		g, ok := goldenByKey[t.Key()]
		switch {
		case !ok:
			pass.Reportf(pos,
				"transition (%s) is not in the golden atlas docs/atlas/%s.json — run `make atlas` and review the diff",
				t.Key(), protocol)
		case !sameContent(g, t):
			pass.Reportf(pos,
				"transition (%s) drifted from the golden atlas docs/atlas/%s.json — run `make atlas` and review the diff",
				t.Key(), protocol)
		}
	}
	var gone []string
	for key := range goldenByKey {
		if !seen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		pass.Reportf(pass.Files[0].Pos(),
			"golden atlas tuple (%s) has no implementation left in this package — run `make atlas` and review the diff",
			key)
	}
	return nil, nil
}

// sameContent compares the semantic content of two tuples: next states,
// sends, actions, and the unreachability annotation (positions excluded).
func sameContent(a, b *atlas.Transition) bool {
	type content struct {
		Next, Sends, Actions []string
		Unreachable          string
	}
	ca, _ := json.Marshal(content{a.Next, a.Sends, a.Actions, a.Unreachable})
	cb, _ := json.Marshal(content{b.Next, b.Sends, b.Actions, b.Unreachable})
	return string(ca) == string(cb)
}

// tuplePos resolves a tuple's "file.go:123" anchor back to a token.Pos
// in the pass's file set (the package's first file when unresolvable).
func tuplePos(pass *analysis.Pass, posStr string) token.Pos {
	i := strings.LastIndexByte(posStr, ':')
	if i < 0 {
		return pass.Files[0].Pos()
	}
	line, err := strconv.Atoi(posStr[i+1:])
	if err != nil {
		return pass.Files[0].Pos()
	}
	base := posStr[:i]
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || filepath.Base(tf.Name()) != base {
			continue
		}
		if line >= 1 && line <= tf.LineCount() {
			return tf.LineStart(line)
		}
	}
	return pass.Files[0].Pos()
}
