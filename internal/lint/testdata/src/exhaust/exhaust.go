// Package exhaust is an exhauststate fixture: a protocol state type with
// exhaustive, missing-case, and panicking-default switches.
package exhaust

// LineState's name marks it a protocol state type by convention.
type LineState int

const (
	Invalid LineState = iota
	Shared
	Modified
)

// Freq has no "State" suffix: switches over it are unconstrained.
type Freq int

const (
	A Freq = iota
	B
)

func full(s LineState) int {
	switch s {
	case Invalid:
		return 0
	case Shared:
		return 1
	case Modified:
		return 2
	}
	return -1
}

func missing(s LineState) int {
	switch s { // want `switch over LineState misses constants Modified and has no default`
	case Invalid, Shared:
		return 0
	}
	return -1
}

func panickingDefault(s LineState) int {
	switch s {
	case Invalid:
		return 0
	default:
		panic("exhaust: unknown line state")
	}
}

func silentDefault(s LineState) int {
	switch s { // want `switch over LineState misses constants Modified, Shared and has a non-panicking default`
	case Invalid:
		return 0
	default:
		return 1
	}
}

func unconstrained(n Freq) int {
	switch n {
	case A:
		return 0
	}
	return 1
}

func noTag(s LineState) int {
	switch {
	case s == Invalid:
		return 0
	}
	return 1
}
