package observer

import "cache"

// Monitor mimics the chaos invariant monitor: its own bookkeeping is not
// simulator state, but the machine it watches is.
type Monitor struct {
	violations []string
	samples    int
	m          *cache.Ctrl
}

// sample records a violation — writes to the monitor's own fields are
// fine (the Monitor type is not defined in a simulator-state package).
func (mo *Monitor) sample() {
	mo.samples++
	mo.violations = append(mo.violations, "v")
}

// corrupt reaches through the monitor into the watched controller.
func (mo *Monitor) corrupt() {
	mo.m.N = 4 // want `observer hook assigns simulator state through \*cache.Ctrl`
}
