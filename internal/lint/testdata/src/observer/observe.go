// Package observer is an observerpurity fixture: hook files (observe.go,
// coverage.go, monitor.go) must not write through simulator-state
// pointers; other files and the hooks' own bookkeeping are unconstrained.
package observer

import "cache"

// ReadN is a pure view: reads are always fine.
func ReadN(c *cache.Ctrl) int { return c.N }

// Snapshot builds a local result — appends to locals are fine.
func Snapshot(c *cache.Ctrl) []int {
	out := make([]int, 0, 2)
	out = append(out, c.N, int(c.Stats.WB))
	return out
}

// LocalCopy mutates a by-value copy, which aliases nothing.
func LocalCopy(c cache.Ctrl) int {
	c.N = 2
	return c.N
}

// Mutate writes through the controller pointer.
func Mutate(c *cache.Ctrl) {
	c.N = 1 // want `observer hook assigns simulator state through \*cache.Ctrl`
}

// MutateNested writes a nested counter through the controller pointer.
func MutateNested(c *cache.Ctrl) {
	c.Stats.WB++ // want `observer hook updates simulator state through \*cache.Ctrl`
}

// Bump writes through a line pointer obtained from a read.
func Bump(c *cache.Ctrl) {
	l := c.Lookup(0)
	l.LRU++ // want `observer hook updates simulator state through \*cache.Line`
}

// Drop deletes from a controller-owned map.
func Drop(c *cache.Ctrl) {
	delete(c.M, 1) // want `observer hook deletes from simulator state through \*cache.Ctrl`
}

// Captured mutates through a captured controller pointer inside a
// closure — exactly the aliasing the analyzer exists for.
func Captured(c *cache.Ctrl) func() {
	return func() {
		c.N = 3 // want `observer hook assigns simulator state through \*cache.Ctrl`
	}
}

// Indexed writes through a pointer element of a slice.
func Indexed(cs []*cache.Ctrl) {
	cs[0].N = 1 // want `observer hook assigns simulator state through \*cache.Ctrl`
}

// SetObs attaches an observer: Set* methods are wiring, not hooks.
func SetObs(c *cache.Ctrl, f func()) { c.Obs = f }

// Allowed carries a justified suppression.
func Allowed(c *cache.Ctrl) {
	//simlint:allow observerpurity: fixture exercises the directive
	c.N = 4
}
