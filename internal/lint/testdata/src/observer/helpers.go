package observer

import "cache"

// MutateElsewhere lives outside the hook files (observe.go, coverage.go,
// monitor.go), so observerpurity does not constrain it.
func MutateElsewhere(c *cache.Ctrl) {
	c.N = 9
}
