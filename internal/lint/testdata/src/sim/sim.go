// Package sim is a stand-in for denovosync/internal/sim in cyclehygiene
// fixtures (the analyzer matches the Cycle type by package and type
// name).
package sim

// Cycle counts simulated clock cycles.
type Cycle uint64

// Engine is a minimal stand-in for the event engine.
type Engine struct{}

// Schedule runs fn after d cycles.
func (e *Engine) Schedule(d Cycle, fn func()) {}
