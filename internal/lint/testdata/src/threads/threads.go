// Package threads is a threaddiscipline fixture: native Go concurrency
// that workload packages must not use.
package threads

import "sync" // want `import of sync in a workload package`

func spawn(work func()) {
	go work() // want `go statement in a workload package`
}

func channels() {
	ch := make(chan int, 1) // want `channel type in a workload package`
	ch <- 1                 // want `channel send in a workload package`
	_ = <-ch                // want `channel receive in a workload package`
	close(ch)               // want `channel close in a workload package`
}

func choose(a, b chan int) int { // want `channel type in a workload package`
	select { // want `select statement in a workload package`
	case x := <-a: // want `channel receive in a workload package`
		return x
	case y := <-b: // want `channel receive in a workload package`
		return y
	}
}

func nativeLock(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// plainHelpers stay legal: the discipline bans concurrency primitives,
// not ordinary sequential code.
func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
