// Package determinism is a determinism fixture: forbidden map ranges,
// wall-clock reads, and global math/rand uses, plus the allowed forms.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func mapRange(m map[int]int) int {
	s := 0
	for k := range m { // want `map range iteration in a simulator package`
		s += k
	}
	return s
}

func sortedMapRange(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //simlint:allow determinism: keys are sorted before use
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func mapRangeAllowedAbove(m map[int]bool) {
	//simlint:allow determinism: directive on the line above also suppresses
	for range m {
	}
}

func wrongAnalyzerName(m map[int]int) int {
	s := 0
	//simlint:allow exhauststate: a directive for another analyzer must not suppress
	for k := range m { // want `map range iteration in a simulator package`
		s += k
	}
	return s
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a simulator package`
}

func duration() time.Duration {
	return 3 * time.Second
}

func globalRand() int {
	return rand.Intn(16) // want `global math/rand \(rand\.Intn\) in a simulator package`
}

func seededRand() *rand.Rand {
	return rand.New(rand.NewSource(1))
}
