// Package exhaustx is an exhauststate fixture for the cross-package
// constant-union rule: the required set is the type's own constants plus
// the ones this package declares.
package exhaustx

import "states"

// Registered extends states.WordState locally, as internal/mesi extends
// cache.LineState.
const Registered states.WordState = 2

func handle(s states.WordState) int {
	switch s { // want `switch over states\.WordState misses constants Registered and has no default`
	case states.Invalid:
		return 0
	case states.Valid:
		return 1
	}
	return -1
}

func handleAll(s states.WordState) int {
	switch s {
	case states.Invalid:
		return 0
	case states.Valid:
		return 1
	case Registered:
		return 2
	}
	return -1
}
