// Package cache is a stand-in for denovosync/internal/cache in
// observerpurity fixtures (the analyzer matches simulator-state types by
// their defining package's base name).
package cache

// Line mimics a cache line observers may inspect.
type Line struct {
	LRU  uint64
	Vals [4]uint64
}

// Stats mimics a controller's counter block.
type Stats struct {
	WB int
}

// Ctrl mimics a coherence controller.
type Ctrl struct {
	N     int
	Obs   func()
	M     map[int]bool
	Stats Stats
	Lines []*Line
}

// Lookup returns a line observers may read.
func (c *Ctrl) Lookup(i int) *Line { return c.Lines[i] }
