// Package cycles is a cyclehygiene fixture: literal latencies handed to
// sim.Cycle contexts.
package cycles

import "sim"

// Config names its latencies, the pattern the analyzer pushes toward.
type Config struct {
	L1AccessLat sim.Cycle
}

func schedule(e *sim.Engine, cfg *Config) {
	e.Schedule(0, nil)               // same-cycle: allowed
	e.Schedule(1, nil)               // next-cycle: allowed
	e.Schedule(cfg.L1AccessLat, nil) // named latency: allowed
	e.Schedule(27, nil)              // want `untyped literal 27 used as sim\.Cycle`
}

func locals() {
	var warmup sim.Cycle = 9 // want `untyped literal 9 used as sim\.Cycle`
	_ = warmup
	lat := sim.Cycle(3) // want `untyped literal 3 used as sim\.Cycle`
	_ = lat
	mask := ^sim.Cycle(0) // zero: allowed
	_ = mask
	bit := sim.Cycle(1) << 7 // one and a plain-int shift count: allowed
	_ = bit
	plain := 27 // untyped literal bound to int, not Cycle: allowed
	_ = plain
}
