// Package exhaustmap is an exhauststate fixture for map-keyed transition
// tables: a map literal keyed by a state type must list every constant.
package exhaustmap

import "states"

type DirState int

const (
	DI DirState = iota
	DS
	DM
)

// full lists every DirState constant.
var full = map[DirState]string{
	DI: "I",
	DS: "S",
	DM: "M",
}

// missing omits DM.
var missing = map[DirState]string{ // want `map literal keyed by DirState misses constants DM`
	DI: "I",
	DS: "S",
}

// crossPkg exercises a state type owned by another package with local
// constants (mirrors protocol packages keying tables by cache types).
const extra states.WordState = 2

var crossPkg = map[states.WordState]int{ // want `map literal keyed by states.WordState misses constants Valid, extra`
	states.Invalid: 0,
}

// valueTyped maps are unconstrained: the state type is the value.
var valueTyped = map[string]DirState{
	"I": DI,
}

// allowed carries a justified suppression.
//
//simlint:allow exhauststate: table deliberately covers the stable subset
var allowed = map[DirState]string{
	DI: "I",
}

// lookup keeps the fixtures referenced.
func lookup(s DirState) string { return full[s] + missing[s] + allowed[s] }
