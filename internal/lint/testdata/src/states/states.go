// Package states declares a state type for cross-package exhauststate
// fixtures (mirrors internal/cache owning the type while protocol
// packages declare constants of it).
package states

type WordState byte

const (
	Invalid WordState = iota
	Valid
)
