package lint

import (
	"go/ast"
	"go/types"
	"path"
	"path/filepath"
	"strings"

	"denovosync/internal/lint/analysis"
)

// ObserverPurity checks that observer and monitor hooks are read-only
// views of simulator state. The invariant monitor and the coverage
// observers run on the engine goroutine between protocol events; a hook
// that mutates a controller silently changes the simulation it claims to
// merely watch (and does so only when observation is attached, making
// the heisenbug unreproducible without it).
//
// Scope is by file convention: observe.go, coverage.go, and monitor.go
// are the hook surfaces. Within them, any assignment, increment, or
// delete whose target is reached through a pointer to a type defined in
// a simulator-state package (sim, cache, noc, mem, cpu, mesi, denovo,
// machine) is a finding. Writes to the hook owner's own bookkeeping
// (e.g. a chaos.Monitor appending a violation) and to locals are fine —
// they do not alias simulator state. Methods named Set* are exempt:
// attaching/detaching an observer is wiring performed at setup, not an
// observation.
var ObserverPurity = &analysis.Analyzer{
	Name: "observerpurity",
	Doc: "observer and monitor hooks (observe.go, coverage.go, monitor.go) " +
		"must not mutate simulator state: no writes through controller, " +
		"cache, or engine pointers — observers are read-only views",
	Run: runObserverPurity,
}

// hookFiles are the file base names that carry observer/monitor hooks.
var hookFiles = map[string]bool{
	"observe.go":  true,
	"coverage.go": true,
	"monitor.go":  true,
}

// statePkgs are the package base names whose types constitute simulator
// state. Matching is by base name so fixture packages under testdata
// stand in for the real tree.
var statePkgs = map[string]bool{
	"sim": true, "cache": true, "noc": true, "mem": true,
	"cpu": true, "mesi": true, "denovo": true, "machine": true,
}

func runObserverPurity(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !hookFiles[name] {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || strings.HasPrefix(fn.Name.Name, "Set") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						checkPurity(pass, lhs, "assigns")
					}
				case *ast.IncDecStmt:
					checkPurity(pass, s.X, "updates")
				case *ast.CallExpr:
					if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "delete" && len(s.Args) > 0 {
						checkPurity(pass, s.Args[0], "deletes from")
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkPurity reports target if writing it mutates state reached through
// a simulator-state pointer.
func checkPurity(pass *analysis.Pass, target ast.Expr, verb string) {
	if owner := stateRoot(pass, target); owner != "" {
		pass.Reportf(target.Pos(),
			"observer hook %s simulator state through *%s — hooks are read-only views (move the mutation out of the observer path)",
			verb, owner)
	}
}

// stateRoot walks a write target inward (selectors, indexes, derefs) and
// returns the type name of the first simulator-state pointer the write
// traverses, or "". A plain local identifier has no such prefix; a local
// *cache.Line or a captured *mesi.L1 does.
func stateRoot(pass *analysis.Pass, e ast.Expr) string {
	for {
		var base ast.Expr
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.SelectorExpr:
			base = v.X
		case *ast.IndexExpr:
			base = v.X
		case *ast.StarExpr:
			base = v.X
		default:
			return ""
		}
		if name := statePointee(pass, base); name != "" {
			return name
		}
		e = base
	}
}

// statePointee returns "pkg.Type" if e's type is a pointer to a named
// type defined in a simulator-state package.
func statePointee(pass *analysis.Pass, e ast.Expr) string {
	ptr, ok := pass.TypesInfo.TypeOf(e).(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	pkg := named.Obj().Pkg()
	if !statePkgs[path.Base(pkg.Path())] {
		return ""
	}
	return pkg.Name() + "." + named.Obj().Name()
}
