package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same cycle: FIFO
	e.Schedule(20, func() { got = append(got, 4) })
	e.Run(0)
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestZeroDelayRunsThisCycle(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var rec func(depth int)
	rec = func(depth int) {
		count++
		if depth < 100 {
			e.Schedule(1, func() { rec(depth + 1) })
		}
	}
	e.Schedule(0, func() { rec(0) })
	e.Run(0)
	if count != 101 {
		t.Fatalf("count = %d, want 101", count)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(i), func() {
			ran++
			if ran == 3 {
				e.Stop()
			}
		})
	}
	n := e.Run(0)
	if n != 3 || ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(1, func() {})
	}
	if n := e.Run(4); n != 4 {
		t.Fatalf("Run(4) dispatched %d", n)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	for _, d := range []Cycle{3, 8, 15} {
		d := d
		e.Schedule(d, func() { hits = append(hits, e.Now()) })
	}
	e.RunUntil(10)
	if len(hits) != 2 || hits[0] != 3 || hits[1] != 8 {
		t.Fatalf("hits = %v", hits)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	e.Run(0)
	if len(hits) != 3 || hits[2] != 15 {
		t.Fatalf("hits after Run = %v", hits)
	}
}

func TestAtPanicsInPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestSchedulePanicsOnNil(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(0, nil)
}

// Property: dispatch order is sorted by time with FIFO tie-break, for
// arbitrary delay sequences.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		type stamp struct {
			at  Cycle
			seq int
		}
		var got []stamp
		for i, d := range delays {
			i, d := i, d
			e.Schedule(Cycle(d), func() { got = append(got, stamp{e.Now(), i}) })
		}
		e.Run(0)
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRNGRangeBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Range(128, 2048)
		if v < 128 || v >= 2048 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
	c := r.Cycles(1400, 1800)
	if c < 1400 || c >= 1800 {
		t.Fatalf("Cycles out of bounds: %d", c)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(9)
	c1, c2 := r.Fork(), r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams suspiciously correlated: %d/100 equal", same)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
