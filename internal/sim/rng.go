package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). The simulator never uses math/rand so that runs are
// reproducible regardless of Go version or global seeding.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift cannot leave the zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a pseudo-random int in [lo, hi). It panics if hi <= lo.
func (r *RNG) Range(lo, hi int) int {
	if hi <= lo {
		panic("sim: Range with empty interval")
	}
	return lo + r.Intn(hi-lo)
}

// Cycles returns a pseudo-random Cycle count in [lo, hi).
func (r *RNG) Cycles(lo, hi Cycle) Cycle {
	if hi <= lo {
		panic("sim: Cycles with empty interval")
	}
	return lo + Cycle(r.Uint64()%uint64(hi-lo))
}

// Fork derives an independent child generator; the parent advances once.
// Use one child per simulated thread so per-thread randomness does not
// depend on global event interleaving.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
