package sim

import "testing"

// TestStopMidRingDrain: Stop called from a same-cycle ring event must end
// the Run after that event, leaving the rest of the ring (and the clock)
// intact; a later Run resumes the drain in the original FIFO order.
func TestStopMidRingDrain(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() {
		for i := 0; i < 5; i++ {
			i := i
			e.Schedule(0, func() {
				got = append(got, i)
				if i == 1 {
					e.Stop()
				}
			})
		}
	})
	n := e.Run(0)
	if n != 3 { // the seeding event plus ring events 0 and 1
		t.Fatalf("first Run dispatched %d events, want 3", n)
	}
	if e.Now() != 3 {
		t.Fatalf("clock moved to %d during the stopped drain, want 3", e.Now())
	}
	if p := e.Pending(); p != 3 {
		t.Fatalf("pending = %d after mid-ring stop, want 3", p)
	}
	if at, ok := e.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %d,%v, want 3,true (ring events stay at now)", at, ok)
	}
	e.Run(0)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed drain reordered: got %v, want %v", got, want)
		}
	}
}

// TestOrderingAtCycleOverflowBoundary: events at the last representable
// cycle still order heap-before-ring, and the clock saturates at maxCycle
// without wrapping.
func TestOrderingAtCycleOverflowBoundary(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(maxCycle-1, func() {
		got = append(got, 1)
		e.Schedule(1, func() { // heap event at maxCycle, schedAt maxCycle-1
			got = append(got, 2)
			e.Schedule(0, func() { got = append(got, 4) }) // ring at maxCycle
		})
	})
	e.At(maxCycle, func() { got = append(got, 3) }) // schedAt 0: before the ring, after nothing earlier...
	e.Run(0)
	// At maxCycle: the At-scheduled event (schedAt 0) precedes the
	// Schedule(1) event (schedAt maxCycle-1); both precede the ring event.
	want := []int{1, 3, 2, 4}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	if e.Now() != maxCycle {
		t.Fatalf("clock = %d, want maxCycle", e.Now())
	}
}

// TestRunUntilAtMaxCycle: a windowed run whose horizon is the last
// representable cycle drains and parks the clock exactly there.
func TestRunUntilAtMaxCycle(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(maxCycle, func() { ran = true })
	e.RunUntil(maxCycle)
	if !ran {
		t.Fatal("event at maxCycle did not run under RunUntil(maxCycle)")
	}
	if e.Now() != maxCycle {
		t.Fatalf("clock = %d, want maxCycle", e.Now())
	}
	// A drained engine reports no next event; scheduling again still works.
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained engine reports a pending event")
	}
	e.Schedule(0, func() {})
	if at, ok := e.NextEventTime(); !ok || at != maxCycle {
		t.Fatalf("NextEventTime = %d,%v, want maxCycle,true", at, ok)
	}
}

// TestArrivalOrderingAtOverflowBoundary: band-1 arrival keys keep their
// (src, ctr) order against band-0 events at the maximum cycle.
func TestArrivalOrderingAtOverflowBoundary(t *testing.T) {
	e := NewEngine()
	var got []int
	// Two arrivals sent at maxCycle-1 from different sources, and one
	// band-0 event scheduled earlier for the same cycle: band 0 first,
	// then arrivals by (src, ctr).
	e.ScheduleArrivalAt(maxCycle, maxCycle-1, 7, 5, func() { got = append(got, 3) })
	e.ScheduleArrivalAt(maxCycle, maxCycle-1, 2, 9, func() { got = append(got, 2) })
	e.At(maxCycle, func() { got = append(got, 1) }) // schedAt 0 < maxCycle-1
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestArenaFreeListReuse: dispatching a wave of events must return every
// arena slot to the free list; scheduling the same-sized wave again — even
// a bulk of same-cycle cancellation-style callbacks dropped by Stop and
// then drained — reuses the slots without growing the arena.
func TestArenaFreeListReuse(t *testing.T) {
	e := NewEngine()
	const waves, per = 8, 100
	nop := func() {}
	for w := 0; w < waves; w++ {
		for i := 0; i < per; i++ {
			e.Schedule(Cycle(i%7), nop)
		}
		e.Run(0)
		if w == 0 {
			continue
		}
		if got := len(e.arena); got > per {
			t.Fatalf("arena grew to %d slots after wave %d, want <= %d (free-list reuse)", got, w, per)
		}
	}
	// Free-list integrity: every slot is on the list exactly once and
	// carries no retained closure.
	seen := make(map[int32]bool)
	n := 0
	for i := e.free; i != nilIdx; i = e.arena[i].next {
		if seen[i] {
			t.Fatalf("arena slot %d linked twice in the free list", i)
		}
		seen[i] = true
		if e.arena[i].fn != nil {
			t.Fatalf("released slot %d retains its closure", i)
		}
		n++
	}
	if n != len(e.arena) {
		t.Fatalf("free list holds %d of %d arena slots after full drain", n, len(e.arena))
	}
}

// TestArenaReuseAfterStopDrain: a bulk of pending events abandoned by
// Stop is recycled once a later Run drains them — the arena never leaks
// slots across a stop/resume cycle.
func TestArenaReuseAfterStopDrain(t *testing.T) {
	e := NewEngine()
	const bulk = 64
	nop := func() {}
	e.Schedule(1, func() { e.Stop() })
	for i := 0; i < bulk; i++ {
		e.Schedule(Cycle(2+i), nop)
	}
	e.Run(0)
	if p := e.Pending(); p != bulk {
		t.Fatalf("pending = %d after stop, want %d", p, bulk)
	}
	e.Run(0) // drain the abandoned bulk
	if p := e.Pending(); p != 0 {
		t.Fatalf("pending = %d after resume, want 0", p)
	}
	grown := len(e.arena)
	for i := 0; i < bulk; i++ {
		e.Schedule(Cycle(1+i), nop)
	}
	if len(e.arena) != grown {
		t.Fatalf("arena grew from %d to %d on reschedule, want pooled reuse", grown, len(e.arena))
	}
	e.Run(0)
}
