// Package sim provides the discrete-event simulation engine that drives
// every other component of the simulator: the network, the caches, the
// protocol controllers, and the cores.
//
// The engine is single-threaded; a machine is either driven by one engine
// (the serial mode) or partitioned into logical processes with one engine
// each, exchanging timestamped events under a conservative time-window
// scheduler (internal/pdes). All simulated concurrency is expressed as
// events on a priority queue ordered by a key designed to be identical in
// both modes:
//
//	(at, schedAt, band|payload)
//
// where at is the dispatch cycle, schedAt the cycle the event was created,
// and the final word breaks remaining ties: locally scheduled events
// (band 0) carry the engine's own sequence number — FIFO by schedule
// order — and cross-tile message arrivals (band 1, see ScheduleArrivalAt)
// carry (source node, per-source message counter), which every partition
// reconstructs identically without any global coordination. Same-tile
// events keep their serial relative order under any partition because a
// tile's schedule order is a subsequence of its engine's sequence numbers;
// cross-tile same-key ties touch disjoint state (certified by
// cmd/lpisolate), so their relative order is outcome-invariant.
//
// Internally the queue is allocation-free on the hot path: events live in
// a pooled arena recycled through a free list, the priority queue is an
// index-based binary heap (no interface boxing, 4-byte swaps), and
// zero-delay events — the most common kind, from completion callbacks and
// wakeups — bypass the heap entirely through a same-cycle FIFO ring.
// Dispatch order is a linearization of the key order: every ring event was
// scheduled while the clock already stood at its cycle (schedAt = at =
// now), so it sorts after every heap event for that cycle, all of which
// were created earlier (schedAt < now).
package sim

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// event is a closure scheduled to run at a particular cycle. schedAt and
// key order same-cycle events deterministically (see the package comment).
// Events are pooled: next links free arena slots.
type event struct {
	at      Cycle
	schedAt Cycle
	key     uint64
	fn      func()
	next    int32 // free-list link; -1 terminates
}

const nilIdx = int32(-1)

// arrivalBand marks a cross-tile arrival key (band 1); band-0 keys are
// engine-local sequence numbers.
const arrivalBand = uint64(1) << 63

// arrivalCtrBits is the per-source message counter width inside an arrival
// key; the source node occupies the bits above it.
const arrivalCtrBits = 40

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	arena []event // pooled event storage
	free  int32   // head of the free list into arena
	heap  []int32 // binary heap of arena indices, ordered by (at, schedAt, key)

	// ring is the same-cycle fast path: a circular FIFO of arena indices
	// for events scheduled with zero delay. All ring events are at e.now.
	ring     []int32
	ringHead int
	ringLen  int

	now     Cycle
	seq     uint64
	stopped bool

	// Executed counts events dispatched since construction; useful for
	// detecting livelock in tests.
	Executed uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{free: nilIdx} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// alloc takes an arena slot from the free list (or grows the arena).
func (e *Engine) alloc(at, schedAt Cycle, key uint64, fn func()) int32 {
	if i := e.free; i != nilIdx {
		ev := &e.arena[i]
		e.free = ev.next
		ev.at, ev.schedAt, ev.key, ev.fn = at, schedAt, key, fn
		return i
	}
	e.arena = append(e.arena, event{at: at, schedAt: schedAt, key: key, fn: fn})
	return int32(len(e.arena) - 1)
}

// release returns slot i to the free list, dropping the closure so the
// pool does not retain captured state.
func (e *Engine) release(i int32) {
	ev := &e.arena[i]
	ev.fn = nil
	ev.next = e.free
	e.free = i
}

// TraceSchedule, when non-nil, observes every Schedule call. Diagnostic
// hook: two runs are bit-identical iff their Schedule traces match, so
// diffing traces pinpoints the first divergent event when an optimization
// that claims to preserve behavior does not.
var TraceSchedule func(now Cycle, delay Cycle, seq uint64)

// Schedule runs fn after delay cycles (0 = later this cycle, after events
// already queued for this cycle).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if TraceSchedule != nil {
		TraceSchedule(e.now, delay, e.seq+1)
	}
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	e.seq++
	i := e.alloc(e.now+delay, e.now, e.seq, fn)
	if delay == 0 {
		e.ringPush(i)
		return
	}
	e.heapPush(i)
}

// ScheduleArrivalAt enqueues a cross-tile message arrival: fn runs at the
// absolute cycle at, ordered against all other events by (at, schedAt,
// src, ctr) — a key the sender computes from its own state alone, so a
// partitioned run reconstructs the exact serial dispatch order. schedAt is
// the cycle the message was sent (strictly before at: cross-router
// latency is at least one cycle), src the sending node, and ctr the
// sender's running arrival counter.
func (e *Engine) ScheduleArrivalAt(at, schedAt Cycle, src uint32, ctr uint64, fn func()) {
	if fn == nil {
		panic("sim: ScheduleArrivalAt with nil fn")
	}
	if at < e.now {
		panic("sim: arrival scheduled in the past")
	}
	if ctr >= 1<<arrivalCtrBits {
		panic("sim: arrival counter overflow")
	}
	key := arrivalBand | uint64(src)<<arrivalCtrBits | ctr
	i := e.alloc(at, schedAt, key, fn)
	e.heapPush(i)
}

// At runs fn at the absolute cycle t. Scheduling in the past panics: it
// would silently corrupt causality.
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		panic("sim: At scheduled in the past")
	}
	e.Schedule(t-e.now, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports how many events remain queued.
func (e *Engine) Pending() int { return len(e.heap) + e.ringLen }

// NextEventTime returns the dispatch cycle of the earliest pending event,
// or ok = false if the queue is empty. The conservative window scheduler
// uses it to compute the global window floor.
func (e *Engine) NextEventTime() (t Cycle, ok bool) {
	if e.ringLen > 0 {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.arena[e.heap[0]].at, true
	}
	return 0, false
}

// next pops the arena index of the earliest pending event — by (time,
// schedAt, key) — advancing the clock as needed, or returns nilIdx if the
// queue is drained or the earliest event lies beyond horizon. Heap events
// at the current cycle precede the ring (they were scheduled before the
// clock reached this cycle, so their schedAt is lower).
func (e *Engine) next(horizon Cycle) int32 {
	if len(e.heap) > 0 && e.arena[e.heap[0]].at == e.now {
		return e.heapPop()
	}
	if e.ringLen > 0 {
		return e.ringPop()
	}
	if len(e.heap) > 0 && e.arena[e.heap[0]].at <= horizon {
		i := e.heapPop()
		e.now = e.arena[i].at
		return i
	}
	return nilIdx
}

const maxCycle = ^Cycle(0)

// Run dispatches events until the queue drains, Stop is called, or limit
// events have run (limit 0 means no limit). It returns the number of events
// dispatched by this call.
func (e *Engine) Run(limit uint64) uint64 {
	e.stopped = false
	var n uint64
	for !e.stopped {
		if limit > 0 && n >= limit {
			break
		}
		i := e.next(maxCycle)
		if i == nilIdx {
			break
		}
		fn := e.arena[i].fn
		e.release(i)
		fn()
		n++
		e.Executed++
	}
	return n
}

// RunUntil dispatches events with time ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t Cycle) {
	e.RunUntilBudget(t, 0)
}

// RunUntilBudget dispatches events with time ≤ t — at most budget of them
// (0 = unlimited) — then sets the clock to t if the queue was exhausted up
// to t. It returns the number of events dispatched. The window scheduler
// uses the budget as a livelock backstop: an event storm that never
// advances time cannot pin a logical process inside one window forever.
func (e *Engine) RunUntilBudget(t Cycle, budget uint64) uint64 {
	var n uint64
	for !e.stopped {
		if budget > 0 && n >= budget {
			return n
		}
		i := e.next(t)
		if i == nilIdx {
			break
		}
		fn := e.arena[i].fn
		e.release(i)
		fn()
		n++
		e.Executed++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// ringPush appends i to the same-cycle FIFO, growing it when full.
func (e *Engine) ringPush(i int32) {
	if e.ringLen == len(e.ring) {
		grown := make([]int32, maxInt(len(e.ring)*2, 16))
		for k := 0; k < e.ringLen; k++ {
			grown[k] = e.ring[(e.ringHead+k)%len(e.ring)]
		}
		e.ring = grown
		e.ringHead = 0
	}
	e.ring[(e.ringHead+e.ringLen)%len(e.ring)] = i
	e.ringLen++
}

func (e *Engine) ringPop() int32 {
	i := e.ring[e.ringHead]
	e.ringHead = (e.ringHead + 1) % len(e.ring)
	e.ringLen--
	return i
}

// less orders arena slots by (time, schedule time, band|payload).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if ea.schedAt != eb.schedAt {
		return ea.schedAt < eb.schedAt
	}
	return ea.key < eb.key
}

func (e *Engine) heapPush(i int32) {
	e.heap = append(e.heap, i)
	// Sift up.
	h := e.heap
	c := len(h) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !e.less(h[c], h[p]) {
			break
		}
		h[c], h[p] = h[p], h[c]
		c = p
	}
}

func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	// Sift down.
	h = e.heap
	p := 0
	for {
		c := 2*p + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && e.less(h[r], h[c]) {
			c = r
		}
		if !e.less(h[c], h[p]) {
			break
		}
		h[p], h[c] = h[c], h[p]
		p = c
	}
	return top
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
