// Package sim provides the discrete-event simulation engine that drives
// every other component of the simulator: the network, the caches, the
// protocol controllers, and the cores.
//
// The engine is deliberately single-threaded. All simulated concurrency is
// expressed as events on one priority queue, ordered by (time, sequence
// number). Because sequence numbers break ties deterministically, two runs
// with the same configuration and seed produce bit-identical statistics.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// event is a closure scheduled to run at a particular cycle. The seq field
// makes the ordering of same-cycle events deterministic (FIFO by schedule
// order).
type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	pq      eventHeap
	now     Cycle
	seq     uint64
	stopped bool

	// Executed counts events dispatched since construction; useful for
	// detecting livelock in tests.
	Executed uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles (0 = later this cycle, after events
// already queued for this cycle).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at the absolute cycle t. Scheduling in the past panics: it
// would silently corrupt causality.
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		panic("sim: At scheduled in the past")
	}
	e.Schedule(t-e.now, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports how many events remain queued.
func (e *Engine) Pending() int { return len(e.pq) }

// Run dispatches events until the queue drains, Stop is called, or limit
// events have run (limit 0 means no limit). It returns the number of events
// dispatched by this call.
func (e *Engine) Run(limit uint64) uint64 {
	e.stopped = false
	var n uint64
	for len(e.pq) > 0 && !e.stopped {
		if limit > 0 && n >= limit {
			break
		}
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
		n++
		e.Executed++
	}
	return n
}

// RunUntil dispatches events with time ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t Cycle) {
	for len(e.pq) > 0 && e.pq[0].at <= t && !e.stopped {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
		e.Executed++
	}
	if e.now < t {
		e.now = t
	}
}
