package sim

import "testing"

// BenchmarkEngineSameCycle measures the zero-delay fast path: each event
// schedules its successor later in the same cycle, so dispatch stays on
// the FIFO ring and never touches the heap.
func BenchmarkEngineSameCycle(b *testing.B) {
	e := NewEngine()
	n := uint64(b.N)
	var fn func()
	fn = func() {
		if n--; n > 0 {
			e.Schedule(0, fn)
		}
	}
	e.Schedule(0, fn)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkEngineFutureChain measures the heap path with a near-empty
// heap: each event schedules its successor one cycle ahead.
func BenchmarkEngineFutureChain(b *testing.B) {
	e := NewEngine()
	n := uint64(b.N)
	var fn func()
	fn = func() {
		if n--; n > 0 {
			e.Schedule(1, fn)
		}
	}
	e.Schedule(1, fn)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkEngineHeap256 measures heap push/pop with ~256 events resident
// — the simulator's steady state, where every core and cache controller
// keeps a few events in flight at staggered future times.
func BenchmarkEngineHeap256(b *testing.B) {
	e := NewEngine()
	n := uint64(b.N)
	var fn func()
	fn = func() {
		if n > 0 {
			n--
			// Varying delays keep the heap exercised rather than FIFO-like.
			e.Schedule(1+Cycle(n%61), fn)
		}
	}
	for i := 0; i < 256; i++ {
		e.Schedule(1+Cycle(i%61), fn)
	}
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkEngineMixed models the observed production mix: roughly
// two-thirds zero-delay completion events, one-third future timing
// events.
func BenchmarkEngineMixed(b *testing.B) {
	e := NewEngine()
	n := uint64(b.N)
	var fn func()
	fn = func() {
		if n == 0 {
			return
		}
		n--
		if n%3 == 0 {
			e.Schedule(1+Cycle(n%17), fn)
		} else {
			e.Schedule(0, fn)
		}
	}
	for i := 0; i < 64; i++ {
		e.Schedule(Cycle(i%7), fn)
	}
	b.ResetTimer()
	e.Run(0)
}
