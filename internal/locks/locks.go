// Package locks implements the lock algorithms evaluated in the paper:
// Test-and-Test-and-Set (TATAS) locks and Anderson-style array queuing
// locks [4], both over the simulator's synchronization accesses.
//
// Locks carry the region set their critical sections protect: DeNovo's
// data consistency requires a self-invalidation of those regions at every
// acquire (§3); MESI ignores it. Lock words are padded to their own cache
// line by default (the paper notes most software pads lock variables).
package locks

import (
	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Lock is the common lock interface used by the kernels.
type Lock interface {
	// Acquire blocks until the calling thread holds the lock and returns a
	// ticket that must be passed to Release.
	Acquire(t *cpu.Thread) int
	// Release releases the lock acquired with ticket.
	Release(t *cpu.Thread, ticket int)
}

// BackoffRange configures optional software exponential backoff between
// failed acquire attempts, as in the §7.1.1 sensitivity study: delays are
// drawn uniformly from [Min, Max) and the window doubles per failure up to
// Max. A zero value disables software backoff.
type BackoffRange struct {
	Min, Max sim.Cycle
}

func (b BackoffRange) enabled() bool { return b.Max > b.Min }

// delay returns the next backoff delay for attempt number att (0-based).
func (b BackoffRange) delay(t *cpu.Thread, att int) sim.Cycle {
	hi := b.Min << uint(att+1)
	if hi > b.Max || hi < b.Min {
		hi = b.Max
	}
	if hi <= b.Min {
		return b.Min
	}
	return t.RNG.Cycles(b.Min, hi)
}

// TATAS is a Test-and-Test-and-Set spin lock on a single word.
type TATAS struct {
	addr    proto.Addr
	protect proto.RegionSet
	backoff BackoffRange

	// Signatures switches the acquire-side invalidation from static
	// regions to the lock's dynamic write signature (DeNovoND-style); the
	// machine must have been built with signatures enabled.
	Signatures bool
}

// NewTATAS allocates a TATAS lock. protect names the regions its critical
// sections guard (self-invalidated at acquire on DeNovo). padded places
// the lock word on its own line.
func NewTATAS(s *alloc.Space, region proto.RegionID, protect proto.RegionSet, padded bool) *TATAS {
	var a proto.Addr
	if padded {
		a = s.AllocPadded(region)
	} else {
		a = s.Alloc(1, region)
	}
	return &TATAS{addr: a, protect: protect}
}

// SetBackoff enables software exponential backoff on failed acquires.
func (l *TATAS) SetBackoff(b BackoffRange) { l.backoff = b }

// Addr exposes the lock word (tests).
func (l *TATAS) Addr() proto.Addr { return l.addr }

// Acquire spins with test-and-test-and-set: a read filter (the
// pre-linearization check of §6.1.1) followed by the Test-and-Set
// linearization point.
func (l *TATAS) Acquire(t *cpu.Thread) int {
	for att := 0; ; att++ {
		// Test: spin until the lock looks free.
		t.SpinSyncLoadUntil(l.addr, func(v uint64) bool { return v == 0 })
		// Test-and-Set: the linearization point.
		if t.TestAndSet(l.addr) == 0 {
			if l.Signatures {
				t.AcquireSignature(l.addr)
			} else {
				t.SelfInvalidate(l.protect)
			}
			return 0
		}
		if l.backoff.enabled() {
			t.SWBackoff(l.backoff.delay(t, att))
		}
	}
}

// Release writes the lock word free; this sync store is the release
// linearization point (and resets DeNovoSync's increment counter).
func (l *TATAS) Release(t *cpu.Thread, _ int) {
	if l.Signatures {
		t.ReleaseSignature(l.addr)
	}
	t.SyncStore(l.addr, 0)
}

// Array is an Anderson array queuing lock [4]: contending cores spin on
// distinct, line-padded array slots, so each slot has a single reader and
// a single writer (§6.1.2).
type Array struct {
	slots   []proto.Addr
	tail    proto.Addr
	n       int
	protect proto.RegionSet

	// Signatures switches acquire-side invalidation to the lock's dynamic
	// write signature (attached to the tail word as the lock identity).
	Signatures bool
}

// NewArray allocates an n-slot array lock (n ≥ the maximum number of
// simultaneous contenders, typically the core count).
func NewArray(s *alloc.Space, region proto.RegionID, protect proto.RegionSet, n int) *Array {
	l := &Array{n: n, protect: protect, tail: s.AllocPadded(region)}
	for i := 0; i < n; i++ {
		l.slots = append(l.slots, s.AllocPadded(region))
	}
	return l
}

// Init marks slot 0 available; call once before use (from any thread).
func (l *Array) Init(t *cpu.Thread) {
	t.SyncStore(l.slots[0], 1)
}

// Acquire takes a slot with a fetch-and-increment, then spins on the
// private slot. The successful acquire read is immediately followed by a
// write resetting the slot for reuse — the extra write miss MESI pays and
// DeNovo gets for free (§6.1.2).
func (l *Array) Acquire(t *cpu.Thread) int {
	pos := int(t.FetchAdd(l.tail, 1)) % l.n
	t.SpinSyncLoadUntil(l.slots[pos], func(v uint64) bool { return v == 1 })
	t.SyncStore(l.slots[pos], 0) // reset own slot for the next round
	if l.Signatures {
		t.AcquireSignature(l.tail)
	} else {
		t.SelfInvalidate(l.protect)
	}
	return pos
}

// Release hands the lock to the next slot.
func (l *Array) Release(t *cpu.Thread, ticket int) {
	if l.Signatures {
		t.ReleaseSignature(l.tail)
	}
	next := (ticket + 1) % l.n
	t.SyncStore(l.slots[next], 1)
}

// SlotAddr exposes slot i's flag word so tests and harnesses can
// pre-initialize slot 0 in the memory image before a run.
func (l *Array) SlotAddr(i int) proto.Addr { return l.slots[i] }
