package locks_test

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/locks"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

var protocols = []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync}

// mutualExclusion runs nIters lock-protected increments of an unpadded,
// non-atomic pair of counter words per thread and checks both mutual
// exclusion (an in-CS overlap detector) and the final count.
func mutualExclusion(t *testing.T, mkLock func(*alloc.Space, *machine.Machine) locks.Lock) {
	const iters = 12
	for _, prot := range protocols {
		space := alloc.New()
		dataRegion := space.Region("csdata")
		a := space.AllocAligned(1, dataRegion)
		b := space.AllocAligned(1, dataRegion)
		m := machine.New(machine.Params16(), prot, space)
		lk := mkLock(space, m)
		inCS := 0
		maxInCS := 0
		_, err := m.Run("mutex", func(th *cpu.Thread) {
			for i := 0; i < iters; i++ {
				tk := lk.Acquire(th)
				inCS++
				if inCS > maxInCS {
					maxInCS = inCS
				}
				// Classic read-modify-write of two words that must agree.
				va := th.Load(a)
				th.Compute(20)
				th.Store(a, va+1)
				vb := th.Load(b)
				th.Store(b, vb+1)
				th.Fence()
				inCS--
				lk.Release(th, tk)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if maxInCS != 1 {
			t.Errorf("%v: mutual exclusion violated: %d threads in CS", prot, maxInCS)
		}
		want := uint64(16 * iters)
		if got := m.Store.Read(a); got != want {
			t.Errorf("%v: counter a = %d, want %d", prot, got, want)
		}
		if got := m.Store.Read(b); got != want {
			t.Errorf("%v: counter b = %d, want %d", prot, got, want)
		}
	}
}

func TestTATASMutualExclusion(t *testing.T) {
	mutualExclusion(t, func(s *alloc.Space, m *machine.Machine) locks.Lock {
		protect := proto.NewRegionSet(s.Region("csdata"))
		return locks.NewTATAS(s, s.Region("lock"), protect, true)
	})
}

func TestTATASWithSWBackoff(t *testing.T) {
	mutualExclusion(t, func(s *alloc.Space, m *machine.Machine) locks.Lock {
		protect := proto.NewRegionSet(s.Region("csdata"))
		l := locks.NewTATAS(s, s.Region("lock"), protect, true)
		l.SetBackoff(locks.BackoffRange{Min: 128, Max: 2048})
		return l
	})
}

func TestTATASUnpadded(t *testing.T) {
	mutualExclusion(t, func(s *alloc.Space, m *machine.Machine) locks.Lock {
		protect := proto.NewRegionSet(s.Region("csdata"))
		return locks.NewTATAS(s, s.Region("lock"), protect, false)
	})
}

func TestArrayMutualExclusion(t *testing.T) {
	mutualExclusion(t, func(s *alloc.Space, m *machine.Machine) locks.Lock {
		protect := proto.NewRegionSet(s.Region("csdata"))
		l := locks.NewArray(s, s.Region("lock"), protect, 16)
		m.Store.Write(l.SlotAddr(0), 1) // slot 0 starts available
		return l
	})
}

// TestArrayLockFIFO: the array lock grants in ticket order.
func TestArrayLockFIFO(t *testing.T) {
	space := alloc.New()
	l := locks.NewArray(space, space.Region("lock"), 0, 16)
	m := machine.New(machine.Params16(), machine.DeNovoSync, space)
	m.Store.Write(l.SlotAddr(0), 1)
	var order []int
	_, err := m.Run("fifo", func(th *cpu.Thread) {
		// Stagger arrivals so ticket order is thread order.
		th.Compute(sim.Cycle(th.ID) * 2000)
		tk := l.Acquire(th)
		order = append(order, th.ID)
		th.Compute(50)
		l.Release(th, tk)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("grants out of FIFO order: %v", order)
		}
	}
}

func TestMCSMutualExclusion(t *testing.T) {
	mutualExclusion(t, func(s *alloc.Space, m *machine.Machine) locks.Lock {
		protect := proto.NewRegionSet(s.Region("csdata"))
		return locks.NewMCS(s, s.Region("lock"), protect, 16)
	})
}

// TestMCSFIFO: MCS grants strictly in queue (arrival) order.
func TestMCSFIFO(t *testing.T) {
	space := alloc.New()
	l := locks.NewMCS(space, space.Region("lock"), 0, 16)
	m := machine.New(machine.Params16(), machine.DeNovoSync, space)
	var order []int
	_, err := m.Run("mcs-fifo", func(th *cpu.Thread) {
		th.Compute(sim.Cycle(th.ID) * 2500)
		tk := l.Acquire(th)
		order = append(order, th.ID)
		th.Compute(50)
		l.Release(th, tk)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("MCS grants out of order: %v", order)
		}
	}
	if len(order) != 16 {
		t.Fatalf("grants = %d", len(order))
	}
}

// TestMCSUncontended: the fast path (empty queue) takes a single
// exchange and release CAS.
func TestMCSUncontended(t *testing.T) {
	space := alloc.New()
	l := locks.NewMCS(space, space.Region("lock"), 0, 16)
	m := machine.New(machine.Params16(), machine.MESI, space)
	_, err := m.Run("mcs-solo", func(th *cpu.Thread) {
		if th.ID != 0 {
			return
		}
		for i := 0; i < 20; i++ {
			tk := l.Acquire(th)
			l.Release(th, tk)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
