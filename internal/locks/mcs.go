package locks

import (
	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/proto"
)

// MCS is the Mellor-Crummey–Scott list-based queuing lock — the "list
// based queuing lock" flavor of [4] in the paper. Each contender spins on
// its own queue node (single reader, single writer per flag, like the
// array lock's slots), and the queue forms dynamically through an
// exchange on the tail pointer.
//
// Queue nodes are preallocated per thread (threads hold at most one
// pending acquire per lock), each on its own cache line.
type MCS struct {
	tail    proto.Addr
	nodes   []mcsNode // indexed by thread ID
	protect proto.RegionSet

	// Signatures switches the acquire-side invalidation to the lock's
	// dynamic write signature (keyed by the tail word).
	Signatures bool
}

type mcsNode struct {
	locked proto.Addr
	next   proto.Addr
}

// NewMCS allocates an MCS lock for up to n threads.
func NewMCS(s *alloc.Space, region proto.RegionID, protect proto.RegionSet, n int) *MCS {
	l := &MCS{tail: s.AllocPadded(region), protect: protect}
	for i := 0; i < n; i++ {
		l.nodes = append(l.nodes, mcsNode{
			locked: s.AllocPadded(region),
			next:   s.AllocPadded(region),
		})
	}
	return l
}

// Acquire enqueues the caller's node and spins on its private locked
// flag until the predecessor hands the lock over.
func (l *MCS) Acquire(t *cpu.Thread) int {
	me := &l.nodes[t.ID]
	t.SyncStore(me.next, 0)
	t.SyncStore(me.locked, 1)
	pred := t.Exchange(l.tail, uint64(me.locked))
	if pred != 0 {
		// Link behind the predecessor (pred is its locked-flag address;
		// the next pointer lives one node-lookup away — resolved via the
		// node table since nodes are per-thread static).
		t.SyncStore(l.nextOf(proto.Addr(pred)), uint64(me.locked))
		t.SpinSyncLoadUntil(me.locked, func(v uint64) bool { return v == 0 })
	}
	if l.Signatures {
		t.AcquireSignature(l.tail)
	} else {
		t.SelfInvalidate(l.protect)
	}
	return t.ID
}

// Release hands the lock to the successor, or clears the tail if none.
func (l *MCS) Release(t *cpu.Thread, ticket int) {
	me := &l.nodes[ticket]
	if l.Signatures {
		t.ReleaseSignature(l.tail)
	}
	if t.SyncLoad(me.next) == 0 {
		// No visible successor: try to swing the tail back to empty.
		if t.CAS(l.tail, uint64(me.locked), 0) {
			return
		}
		// A successor is mid-enqueue: wait for the link.
		t.SpinSyncLoadUntil(me.next, func(v uint64) bool { return v != 0 })
	}
	succ := proto.Addr(t.SyncLoad(me.next))
	t.SyncStore(succ, 0) // succ is the successor's locked flag
}

// nextOf maps a node's locked-flag address to its next-pointer address.
func (l *MCS) nextOf(locked proto.Addr) proto.Addr {
	for i := range l.nodes {
		if l.nodes[i].locked == locked {
			return l.nodes[i].next
		}
	}
	panic("locks: unknown MCS node")
}

var _ Lock = (*MCS)(nil)
