// Package noc models the on-chip interconnection network: a 2D mesh with
// XY routing, 16-bit flits, and per-message-class traffic accounting.
//
// Message latency is modeled analytically (per-hop router+link delay fitted
// to the latency ranges in Table 1 of the paper) rather than flit-by-flit,
// which keeps the simulator fast while preserving the distance sensitivity
// and the traffic metric the paper reports: network traffic is counted as
// flit link-crossings, i.e. flits × hops.
package noc

import (
	"fmt"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Coord is a router position on the mesh.
type Coord struct{ X, Y int }

// Mesh describes a W×H tiled mesh. Tiles are numbered row-major; memory
// controllers occupy the four corner routers (sharing them with the corner
// tiles, as is common for on-chip memory controller placement).
type Mesh struct {
	W, H int
}

// Tiles returns the number of tiles (cores / L2 banks).
func (m Mesh) Tiles() int { return m.W * m.H }

// NumMemCtrl is the number of on-chip memory controllers (Table 1).
const NumMemCtrl = 4

// TileNode returns the NodeID of tile t.
func (m Mesh) TileNode(t int) proto.NodeID { return proto.NodeID(t) }

// MemNode returns the NodeID of memory controller k (0..3).
func (m Mesh) MemNode(k int) proto.NodeID { return proto.NodeID(m.Tiles() + k) }

// IsMemNode reports whether n is a memory-controller node.
func (m Mesh) IsMemNode(n proto.NodeID) bool { return int(n) >= m.Tiles() }

// CoordOf returns the router coordinate of node n.
func (m Mesh) CoordOf(n proto.NodeID) Coord {
	t := int(n)
	if t < m.Tiles() {
		return Coord{X: t % m.W, Y: t / m.W}
	}
	switch t - m.Tiles() {
	case 0:
		return Coord{0, 0}
	case 1:
		return Coord{m.W - 1, 0}
	case 2:
		return Coord{0, m.H - 1}
	case 3:
		return Coord{m.W - 1, m.H - 1}
	}
	panic(fmt.Sprintf("noc: invalid node %d", n))
}

// Hops returns the Manhattan distance between two nodes' routers.
func (m Mesh) Hops(a, b proto.NodeID) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// endpoint is one node's tile-local slice of the traffic accounting.
// Send writes only the source node's endpoint; delivery writes only the
// destination node's. Keeping every mutable counter sliced per node is
// what lets the isolation prover (internal/lint/lpisolate) certify the
// network as PDES-partitionable: a logical process only ever touches
// its own endpoint, and totals are aggregated by read-only sweeps.
type endpoint struct {
	flitCrossings [proto.NumMsgClasses]uint64
	messages      [proto.NumMsgClasses]uint64

	// In-flight accounting splits across the two tiles involved: sent
	// increments at the source when the message enters the mesh,
	// delivered increments at the destination inside the delivery event.
	// A class's in-flight count is sum(sent) - sum(delivered), so
	// neither side ever writes the other's counters.
	sent      [proto.NumMsgClasses]int64
	delivered [proto.NumMsgClasses]int64

	// arrivalSeq is this node's running cross-router message counter: the
	// per-source half of the (src, ctr) arrival tie-break key (see
	// sim.Engine.ScheduleArrivalAt). Source-owned, so every partition of
	// the machine assigns identical keys without coordination.
	arrivalSeq uint64
}

// Exchange routes a cross-router delivery to the destination node's event
// queue. The serial machine needs none (every node shares one engine); the
// conservative window scheduler (internal/pdes) installs one that enqueues
// same-LP arrivals directly and exports cross-LP arrivals as timestamped
// messages into per-edge mailboxes drained at window barriers.
type Exchange interface {
	// Deliver schedules fn at absolute cycle at on dst's queue. schedAt is
	// the send cycle and (src, ctr) the sender-assigned arrival key.
	Deliver(src, dst proto.NodeID, at, schedAt sim.Cycle, ctr uint64, fn func())
}

// Network delivers messages across a Mesh and tallies traffic.
type Network struct {
	Mesh
	eng *sim.Engine

	// engOf maps a node to the engine that executes its events — all the
	// same engine in serial mode, one per logical process under PDES.
	// Wiring-time state, frozen before the first send.
	engOf []*sim.Engine

	// exchange, when non-nil, routes cross-router deliveries (see Exchange).
	//lpisolate:boundary(wiring-injected cross-LP event exchange: per-edge mailboxes owned by the window scheduler, drained at barriers)
	exchange Exchange

	// perHopNum/perHopDen is the per-hop latency in cycles, as a rational
	// so the 16-core fit of 10/3 cycles per hop is exact.
	perHopNum, perHopDen sim.Cycle

	// eps holds the per-node traffic endpoints, indexed by NodeID
	// (tiles first, then the memory-controller nodes).
	eps []endpoint

	// trace, when non-nil, observes every message at send time.
	//lpisolate:boundary(wiring-injected observer: read-only by contract, runs synchronously at the sender)
	trace func(at sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int)

	// perturb, when non-nil, replaces a message's modeled delivery latency
	// with a (possibly jittered) one — the chaos engine's injection point.
	// now is the send cycle (passed in so the policy needs no engine handle
	// of its own — under PDES each sender has a different clock). The
	// callback must return a latency >= 0; it may reorder deliveries
	// across source/destination pairs but is responsible for whatever
	// ordering discipline the attached policy promises.
	//lpisolate:boundary(wiring-injected latency policy: owns only its own jitter state, audited in internal/chaos)
	perturb func(now sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int, lat sim.Cycle) sim.Cycle

	// track enables in-flight accounting (watchdog snapshots, end-of-run
	// quiescence). Opt-in because it wraps every deliver closure.
	track bool

	// cont, when non-nil, switches latency to the link-contention model.
	// Its per-link busy horizons are fabric state mutated on every send:
	// under a PDES partition the contended mesh is its own logical
	// process (or sharded per link), not tile state.
	//lpisolate:boundary(link-contention busy horizons are fabric-owned; a PDES port makes the contended NoC its own LP)
	cont *contention
}

// New creates a network on eng. perHopNum/perHopDen is the per-hop latency.
func New(eng *sim.Engine, mesh Mesh, perHopNum, perHopDen sim.Cycle) *Network {
	if perHopDen == 0 {
		panic("noc: zero per-hop denominator")
	}
	n := &Network{
		Mesh: mesh, eng: eng, perHopNum: perHopNum, perHopDen: perHopDen,
		eps:   make([]endpoint, mesh.Tiles()+NumMemCtrl),
		engOf: make([]*sim.Engine, mesh.Tiles()+NumMemCtrl),
	}
	for i := range n.engOf {
		n.engOf[i] = eng
	}
	return n
}

// SetEngines installs the per-node engine map for a partitioned machine:
// engOf[node] is the engine that executes node's events. Wiring-time only.
func (n *Network) SetEngines(engOf []*sim.Engine) {
	if len(engOf) != len(n.engOf) {
		panic("noc: SetEngines length mismatch")
	}
	copy(n.engOf, engOf)
}

// SetExchange installs the cross-router delivery router (nil restores
// direct scheduling on the destination node's engine). Wiring-time only.
func (n *Network) SetExchange(x Exchange) { n.exchange = x }

// EngineFor returns the engine executing node's events.
func (n *Network) EngineFor(node proto.NodeID) *sim.Engine { return n.engOf[node] }

// Latency returns the modeled network traversal time for hops hops.
func (n *Network) Latency(hops int) sim.Cycle {
	return (sim.Cycle(hops)*n.perHopNum + n.perHopDen - 1) / n.perHopDen
}

// Send transmits a message of flits flits from src to dst and schedules
// deliver at arrival. Same-router transfers (hops = 0) are free and
// instantaneous: they never touch a mesh link, matching the paper's traffic
// metric. Send returns the modeled latency.
//
// Send must be called while executing on src's engine (every caller is a
// tile-local controller or a delivery event already running at src).
// Cross-router deliveries are keyed arrivals — ordered at the destination
// by (arrival cycle, send cycle, src, per-src counter), a key computed
// from sender-owned state alone — so the dispatch order is identical
// whether all nodes share one engine or the machine is partitioned into
// logical processes. Same-router transfers stay band-0 local events: the
// two nodes sharing a router (a tile and its co-located L2 bank, a corner
// tile and its memory controller) are always in the same partition.
func (n *Network) Send(src, dst proto.NodeID, class proto.MsgClass, flits int, deliver func()) sim.Cycle {
	eng := n.engOf[src]
	now := eng.Now()
	if n.trace != nil {
		n.trace(now, src, dst, class, flits)
	}
	hops := n.Hops(src, dst)
	n.eps[src].flitCrossings[class] += uint64(flits * hops)
	n.eps[src].messages[class]++
	var lat sim.Cycle
	if n.cont != nil {
		lat = n.contendedLatency(src, dst, flits)
	} else {
		lat = n.Latency(hops)
	}
	if n.perturb != nil {
		lat = n.perturb(now, src, dst, class, flits, lat)
	}
	if n.track {
		n.eps[src].sent[class]++
		orig := deliver
		deliver = func() {
			n.eps[dst].delivered[class]++
			orig()
		}
	}
	if hops == 0 {
		// Same router ⇒ same logical process under any partition: keep
		// the local FIFO-ring fast path (and with it, the exact serial
		// ordering of co-located transfers).
		eng.Schedule(lat, deliver)
		return lat
	}
	ctr := n.eps[src].arrivalSeq
	n.eps[src].arrivalSeq++
	at := now + lat
	if x := n.exchange; x != nil {
		x.Deliver(src, dst, at, now, ctr, deliver)
	} else {
		n.engOf[dst].ScheduleArrivalAt(at, now, uint32(src), ctr, deliver)
	}
	return lat
}

// SetPerturb installs a delivery-latency perturbation (nil disables).
func (n *Network) SetPerturb(fn func(now sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int, lat sim.Cycle) sim.Cycle) {
	n.perturb = fn
}

// TrackInFlight enables per-class counting of sent-but-undelivered
// messages. It cannot be disabled once enabled: a message sent while
// tracking was on must still decrement its class counter at delivery.
func (n *Network) TrackInFlight() { n.track = true }

// InFlight returns the sent-but-undelivered message count per class
// (all zero unless TrackInFlight was called): the per-endpoint sent
// counters minus the delivered ones, swept in node order.
func (n *Network) InFlight() [proto.NumMsgClasses]int64 {
	var out [proto.NumMsgClasses]int64
	for i := range n.eps {
		for c := range out {
			out[c] += n.eps[i].sent[c] - n.eps[i].delivered[c]
		}
	}
	return out
}

// InFlightTotal returns the total sent-but-undelivered message count.
func (n *Network) InFlightTotal() int64 {
	var t int64
	for _, v := range n.InFlight() {
		t += v
	}
	return t
}

// SetTrace installs a message observer (nil disables tracing).
func (n *Network) SetTrace(fn func(at sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int)) {
	n.trace = fn
}

// Traffic returns flit link-crossings accumulated per message class,
// summed over the per-node endpoints in node order.
func (n *Network) Traffic() [proto.NumMsgClasses]uint64 {
	var out [proto.NumMsgClasses]uint64
	for i := range n.eps {
		for c := range out {
			out[c] += n.eps[i].flitCrossings[c]
		}
	}
	return out
}

// Messages returns message counts per class, summed over the per-node
// endpoints in node order.
func (n *Network) Messages() [proto.NumMsgClasses]uint64 {
	var out [proto.NumMsgClasses]uint64
	for i := range n.eps {
		for c := range out {
			out[c] += n.eps[i].messages[c]
		}
	}
	return out
}

// TotalTraffic returns total flit link-crossings across all classes.
func (n *Network) TotalTraffic() uint64 {
	var t uint64
	for _, v := range n.Traffic() {
		t += v
	}
	return t
}

// ResetStats clears the traffic counters (e.g. after warmup). In-flight
// accounting deliberately survives a reset: a message sent before the
// reset must still balance its sent counter at delivery.
func (n *Network) ResetStats() {
	for i := range n.eps {
		n.eps[i].flitCrossings = [proto.NumMsgClasses]uint64{}
		n.eps[i].messages = [proto.NumMsgClasses]uint64{}
	}
}
