package noc

import (
	"testing"
	"testing/quick"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

func mesh4x4() Mesh { return Mesh{W: 4, H: 4} }
func mesh8x8() Mesh { return Mesh{W: 8, H: 8} }

func TestCoords(t *testing.T) {
	m := mesh4x4()
	if c := m.CoordOf(0); c != (Coord{0, 0}) {
		t.Fatalf("tile 0 at %v", c)
	}
	if c := m.CoordOf(5); c != (Coord{1, 1}) {
		t.Fatalf("tile 5 at %v", c)
	}
	if c := m.CoordOf(15); c != (Coord{3, 3}) {
		t.Fatalf("tile 15 at %v", c)
	}
	// Memory controllers at the four corners.
	corners := []Coord{{0, 0}, {3, 0}, {0, 3}, {3, 3}}
	for k, want := range corners {
		if c := m.CoordOf(m.MemNode(k)); c != want {
			t.Fatalf("mem %d at %v, want %v", k, c, want)
		}
		if !m.IsMemNode(m.MemNode(k)) {
			t.Fatalf("MemNode(%d) not recognized", k)
		}
	}
	if m.IsMemNode(proto.NodeID(15)) {
		t.Fatal("tile 15 misclassified as memory node")
	}
}

func TestHops(t *testing.T) {
	m := mesh4x4()
	cases := []struct {
		a, b proto.NodeID
		want int
	}{
		{0, 0, 0},
		{0, 15, 6}, // (0,0) -> (3,3)
		{0, 3, 3},  // along a row
		{3, 12, 6}, // (3,0) -> (0,3)
		{5, 10, 2}, // (1,1) -> (2,2)
		{0, m.MemNode(3), 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	m8 := mesh8x8()
	if got := m8.Hops(0, 63); got != 14 {
		t.Fatalf("8x8 max hops = %d, want 14", got)
	}
}

// Properties of Manhattan distance: symmetry, identity, triangle inequality.
func TestHopsMetricProperties(t *testing.T) {
	m := mesh8x8()
	n := proto.NodeID(m.Tiles() + NumMemCtrl)
	f := func(a, b, c uint8) bool {
		x := proto.NodeID(int(a) % int(n))
		y := proto.NodeID(int(b) % int(n))
		z := proto.NodeID(int(c) % int(n))
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if m.Hops(x, x) != 0 {
			return false
		}
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyFitsTable1(t *testing.T) {
	e := sim.NewEngine()
	// 16-core fit: 10/3 cycles per hop.
	n16 := New(e, mesh4x4(), 10, 3)
	if lat := n16.Latency(12); lat != 40 {
		t.Fatalf("16c round-trip max = %d, want 40 (L2 28..68)", lat)
	}
	// 64-core fit: 4 cycles per hop.
	n64 := New(e, mesh8x8(), 4, 1)
	if lat := n64.Latency(28); lat != 112 {
		t.Fatalf("64c round-trip max = %d, want 112 (L2 28..140)", lat)
	}
	if lat := n64.Latency(0); lat != 0 {
		t.Fatalf("zero hops latency = %d", lat)
	}
}

func TestSendDeliversAfterLatency(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, mesh4x4(), 10, 3)
	var at sim.Cycle
	lat := n.Send(0, 15, proto.ClassLD, proto.CtrlFlits, func() { at = e.Now() })
	if lat != 20 {
		t.Fatalf("latency = %d, want 20 (6 hops x 10/3)", lat)
	}
	e.Run(0)
	if at != 20 {
		t.Fatalf("delivered at %d, want 20", at)
	}
}

func TestTrafficAccounting(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, mesh4x4(), 10, 3)
	n.Send(0, 15, proto.ClassLD, 4, func() {})   // 4 flits x 6 hops = 24
	n.Send(0, 0, proto.ClassST, 100, func() {})  // same router: 0
	n.Send(1, 2, proto.ClassSynch, 6, func() {}) // 6 flits x 1 hop = 6
	e.Run(0)
	tr := n.Traffic()
	if tr[proto.ClassLD] != 24 {
		t.Fatalf("LD traffic = %d, want 24", tr[proto.ClassLD])
	}
	if tr[proto.ClassST] != 0 {
		t.Fatalf("local transfer counted traffic: %d", tr[proto.ClassST])
	}
	if tr[proto.ClassSynch] != 6 {
		t.Fatalf("SYNCH traffic = %d, want 6", tr[proto.ClassSynch])
	}
	if n.TotalTraffic() != 30 {
		t.Fatalf("total = %d, want 30", n.TotalTraffic())
	}
	msgs := n.Messages()
	if msgs[proto.ClassLD] != 1 || msgs[proto.ClassST] != 1 {
		t.Fatalf("message counts wrong: %v", msgs)
	}
	n.ResetStats()
	if n.TotalTraffic() != 0 {
		t.Fatal("ResetStats did not clear traffic")
	}
}

func TestFlitSizes(t *testing.T) {
	if proto.CtrlFlits != 4 {
		t.Fatalf("CtrlFlits = %d, want 4 (8B header / 2B flits)", proto.CtrlFlits)
	}
	if proto.LineDataFlits != 36 {
		t.Fatalf("LineDataFlits = %d, want 36", proto.LineDataFlits)
	}
	if proto.WordDataFlits != 6 {
		t.Fatalf("WordDataFlits = %d, want 6", proto.WordDataFlits)
	}
	if proto.DataFlits(3) != 10 {
		t.Fatalf("DataFlits(3) = %d, want 10", proto.DataFlits(3))
	}
}
