package noc

import (
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Optional link-contention modeling. The default network model is
// analytic (pure distance-based latency); enabling contention switches to
// a wormhole approximation: every message occupies each link of its XY
// route for flits × (cycles per flit), and a message arriving at a busy
// link waits for the link to drain. This is deterministic, costs O(hops)
// per message, and captures the first-order queueing effect the paper's
// Garnet network would show on hot-spot traffic (e.g. all cores hammering
// one L2 bank), while remaining far cheaper than flit-level simulation.

// linkID identifies a directed mesh link (from router a toward router b,
// one hop apart) or a router-local ejection port.
type linkID struct {
	from, to Coord
}

// route returns the XY route's directed links between two routers.
func (m Mesh) route(a, b Coord) []linkID {
	var links []linkID
	cur := a
	for cur.X != b.X {
		next := cur
		if b.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		links = append(links, linkID{cur, next})
		cur = next
	}
	for cur.Y != b.Y {
		next := cur
		if b.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		links = append(links, linkID{cur, next})
		cur = next
	}
	return links
}

// contention tracks per-link busy horizons.
type contention struct {
	// flitCycles is the serialization time per flit on a link.
	flitCycles sim.Cycle
	freeAt     map[linkID]sim.Cycle
}

// EnableContention switches the network to the wormhole-approximation
// latency model: per-link serialization of flitCycles cycles per flit on
// top of the per-hop pipeline latency. flitCycles = 1 models a link as
// wide as one flit per cycle.
func (n *Network) EnableContention(flitCycles sim.Cycle) {
	if flitCycles == 0 {
		flitCycles = 1
	}
	n.cont = &contention{flitCycles: flitCycles, freeAt: make(map[linkID]sim.Cycle)}
}

// ContentionEnabled reports whether link contention is being modeled.
func (n *Network) ContentionEnabled() bool { return n.cont != nil }

// contendedLatency walks the message's route, reserving each link in
// turn: the head flit waits for a busy link to drain, each link is then
// occupied for flits × flitCycles, and the head moves on after the
// per-hop pipeline latency. Delivery adds the tail's serialization once
// (flits pipeline across links). Returns the delivery delay from now.
func (n *Network) contendedLatency(src, dst proto.NodeID, flits int) sim.Cycle {
	now := n.eng.Now()
	t := now
	perHop := n.Latency(1)
	occupancy := sim.Cycle(flits) * n.cont.flitCycles
	links := n.Mesh.route(n.CoordOf(src), n.CoordOf(dst))
	for _, l := range links {
		if free := n.cont.freeAt[l]; free > t {
			t = free
		}
		n.cont.freeAt[l] = t + occupancy
		t += perHop
	}
	if len(links) > 0 && flits > 1 {
		t += sim.Cycle(flits-1) * n.cont.flitCycles
	}
	return t - now
}
