package noc

import (
	"testing"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

func TestRouteXY(t *testing.T) {
	m := mesh4x4()
	links := m.route(Coord{0, 0}, Coord{2, 1})
	if len(links) != 3 {
		t.Fatalf("route length = %d, want 3", len(links))
	}
	// X first, then Y.
	if links[0] != (linkID{Coord{0, 0}, Coord{1, 0}}) ||
		links[1] != (linkID{Coord{1, 0}, Coord{2, 0}}) ||
		links[2] != (linkID{Coord{2, 0}, Coord{2, 1}}) {
		t.Fatalf("route = %v", links)
	}
	if len(m.route(Coord{1, 1}, Coord{1, 1})) != 0 {
		t.Fatal("self route not empty")
	}
}

func TestContentionUncontendedMatchesAnalytic(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, mesh4x4(), 10, 3)
	n.EnableContention(1)
	// A lone control message pays the analytic latency plus its own tail
	// serialization.
	lat := n.Send(0, 3, proto.ClassLD, proto.CtrlFlits, func() {})
	// Per-link pipeline (3 x per-hop) plus the tail's serialization.
	want := 3*n.Latency(1) + sim.Cycle(proto.CtrlFlits-1)
	if lat != want {
		t.Fatalf("uncontended latency = %d, want %d", lat, want)
	}
}

func TestContentionSerializesHotLink(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, mesh4x4(), 10, 3)
	n.EnableContention(1)
	// Two large messages down the same link: the second waits for the
	// first's occupancy.
	l1 := n.Send(0, 1, proto.ClassLD, proto.LineDataFlits, func() {})
	l2 := n.Send(0, 1, proto.ClassLD, proto.LineDataFlits, func() {})
	if l2 <= l1 {
		t.Fatalf("second message not delayed: %d then %d", l1, l2)
	}
	if l2 < l1+sim.Cycle(proto.LineDataFlits)-5 {
		t.Fatalf("second message delay too small: %d vs %d", l2, l1)
	}
	// A message on a disjoint route is unaffected.
	l3 := n.Send(5, 6, proto.ClassLD, proto.CtrlFlits, func() {})
	if l3 != n.Latency(1)+sim.Cycle(proto.CtrlFlits-1) {
		t.Fatalf("disjoint route delayed: %d", l3)
	}
	e.Run(0)
}

func TestContentionZeroHopFree(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, mesh4x4(), 10, 3)
	n.EnableContention(1)
	if lat := n.Send(0, 0, proto.ClassLD, 100, func() {}); lat != 0 {
		t.Fatalf("local transfer cost %d", lat)
	}
}

func TestContentionDisabledByDefault(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, mesh4x4(), 10, 3)
	if n.ContentionEnabled() {
		t.Fatal("contention on by default")
	}
}
