package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTP wire protocol: four JSON endpoints mirroring Transport. Errors
// return text/plain with a non-200 status; the client surfaces them as
// Go errors, which the worker's seeded-backoff RPC retry absorbs.
//
//	POST /v1/claim      ClaimRequest     -> ClaimResponse
//	POST /v1/heartbeat  HeartbeatRequest -> HeartbeatResponse
//	POST /v1/complete   CompleteRequest  -> CompleteResponse
//	GET  /v1/status                      -> StatusResponse

// Handler exposes a coordinator over HTTP.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		rpc(w, r, &req, func() (interface{}, error) { return c.Claim(req) })
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		rpc(w, r, &req, func() (interface{}, error) { return c.Heartbeat(req) })
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		rpc(w, r, &req, func() (interface{}, error) { return c.Complete(req) })
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		resp, err := c.Status()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	})
	return mux
}

// rpc decodes a POST body into req, invokes the handler, and writes the
// JSON response.
func rpc(w http.ResponseWriter, r *http.Request, req interface{}, call func() (interface{}, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	resp, err := call()
	if err != nil {
		// Protocol/validation errors are the caller's fault; retrying the
		// same request cannot help, but the distinction does not matter to
		// the worker (both park and retry), so keep the mapping simple.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

// Client is the HTTP Transport for workers talking to a remote
// coordinator.
type Client struct {
	Base string       // e.g. "http://127.0.0.1:7716"
	HTTP *http.Client // nil = a 30s-timeout client
}

// Dial builds a client for a coordinator base URL.
func Dial(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) post(path string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.http().Post(strings.TrimRight(c.Base, "/")+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		return fmt.Errorf("fabric: %s: %s: %s", path, r.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// Claim implements Transport.
func (c *Client) Claim(req ClaimRequest) (ClaimResponse, error) {
	var resp ClaimResponse
	err := c.post("/v1/claim", req, &resp)
	return resp, err
}

// Heartbeat implements Transport.
func (c *Client) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.post("/v1/heartbeat", req, &resp)
	return resp, err
}

// Complete implements Transport.
func (c *Client) Complete(req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.post("/v1/complete", req, &resp)
	return resp, err
}

// Status implements Transport.
func (c *Client) Status() (StatusResponse, error) {
	r, err := c.http().Get(strings.TrimRight(c.Base, "/") + "/v1/status")
	if err != nil {
		return StatusResponse{}, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		return StatusResponse{}, fmt.Errorf("fabric: /v1/status: %s: %s", r.Status, strings.TrimSpace(string(msg)))
	}
	var resp StatusResponse
	err = json.NewDecoder(r.Body).Decode(&resp)
	return resp, err
}
