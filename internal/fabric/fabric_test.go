// The fault-injection battery: every failure mode the fabric claims to
// survive — killed workers, dropped heartbeats, duplicate completions,
// parked hand-offs, coordinator restart — must converge to a merged
// result set whose figure CSV is byte-identical to a serial
// single-machine run of the same plan.
package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"denovosync/internal/backoff"
	"denovosync/internal/exp"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// testPlan builds an n-point kernel grid (Iters distinguishes keys).
func testPlan(n int) exp.Plan {
	p := exp.Plan{ID: "fabric-test", Title: "fabric battery", Cores: 16}
	for i := 0; i < n; i++ {
		p.Runs = append(p.Runs, exp.Run{
			Kind: exp.KindKernel, Workload: "tatas-counter", Protocol: "M",
			Cores: 16, EqChecks: -1, Iters: i + 1,
		})
	}
	return p
}

// countingExec returns a deterministic result derived from the run
// content and counts executions per key — the oracle for "journaled
// work is never re-executed".
type countingExec struct {
	mu    sync.Mutex
	count map[string]int
}

func newCountingExec() *countingExec { return &countingExec{count: map[string]int{}} }

func (f *countingExec) exec(r exp.Run) (*stats.RunStats, json.RawMessage, error) {
	f.mu.Lock()
	f.count[r.Key()]++
	f.mu.Unlock()
	return &stats.RunStats{ExecTime: sim.Cycle(1000 + r.Iters), TotalTraffic: uint64(10 * r.Iters)}, nil, nil
}

// slowed wraps exec with a per-run stall (slow-worker choreography),
// sharing the same execution oracle.
func (f *countingExec) slowed(d time.Duration) func(exp.Run) (*stats.RunStats, json.RawMessage, error) {
	return func(r exp.Run) (*stats.RunStats, json.RawMessage, error) {
		rs, aux, err := f.exec(r)
		time.Sleep(d)
		return rs, aux, err
	}
}

func (f *countingExec) executions(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count[key]
}

// serialCSV is the ground truth: the plan executed serially on one
// machine through the exp engine, rendered to the figure CSV.
func serialCSV(t *testing.T, plan exp.Plan) []byte {
	t.Helper()
	eng := &exp.Engine{Workers: 1, Executor: newCountingExec().exec}
	records, _, err := eng.Execute(plan)
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	var buf bytes.Buffer
	if err := exp.MergeCSV(&buf, plan, records); err != nil {
		t.Fatalf("serial baseline CSV: %v", err)
	}
	return buf.Bytes()
}

// fabricCSV renders the coordinator's merged record set.
func fabricCSV(t *testing.T, c *Coordinator, plan exp.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := exp.MergeCSV(&buf, plan, c.Records()); err != nil {
		t.Fatalf("fabric CSV: %v", err)
	}
	return buf.Bytes()
}

func workerCfg(t *testing.T, dir, id string, exec *countingExec) WorkerConfig {
	t.Helper()
	return WorkerConfig{
		ID:          id,
		JournalPath: filepath.Join(dir, id+".jsonl"),
		// Serial within a unit: StopAfter kill points land exactly where
		// the choreography says (parallelism still comes from running
		// several workers).
		EngineWorkers: 1,
		IdleWait:      5 * time.Millisecond,
		RPCBackoff:  backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: 7},
		Executor:    exec.exec,
	}
}

// The happy path at fleet scale: three workers, no faults, byte-identity.
func TestWorkersConvergeToSerial(t *testing.T) {
	plan := testPlan(10)
	want := serialCSV(t, plan)
	c := New(plan, Config{UnitSize: 3})
	dir := t.TempDir()
	exec := newCountingExec()

	var wg sync.WaitGroup
	sums := make([]WorkerSummary, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(c, workerCfg(t, dir, fmt.Sprintf("worker-%d", i), exec))
			sum, err := w.Run()
			if err != nil {
				t.Errorf("worker-%d: %v", i, err)
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()

	if !c.Done() {
		t.Fatalf("grid not done after all workers exited")
	}
	if got := fabricCSV(t, c, plan); !bytes.Equal(got, want) {
		t.Fatalf("3-worker CSV differs from serial run:\n%s\nvs serial\n%s", got, want)
	}
	// No faults were injected, so nothing executed twice...
	for _, r := range plan.Runs {
		if n := exec.executions(r.Key()); n != 1 {
			t.Errorf("key %s executed %d times without faults", r.Key(), n)
		}
	}
	// ...and every record handed off by whoever executed it.
	total := 0
	for _, s := range sums {
		total += s.Executed
		if s.Parked != 0 || s.Killed {
			t.Errorf("clean run left parked/killed state: %+v", s)
		}
	}
	if total != len(plan.Runs) {
		t.Errorf("workers executed %d runs, grid has %d", total, len(plan.Runs))
	}
	st, err := c.Status()
	if err != nil || !st.Done || st.OK != len(plan.Runs) || st.Pending != 0 || st.Leased != 0 {
		t.Errorf("final status wrong: %+v, %v", st, err)
	}
}

// The dedicated kill-and-resume case: a worker dies mid-grid after
// journaling (but not handing off) part of its work; the restarted
// worker re-offers its journal, re-claims only unfinished keys, and no
// key is ever executed twice.
func TestWorkerKillAndResume(t *testing.T) {
	plan := testPlan(6)
	want := serialCSV(t, plan)
	c := New(plan, Config{UnitSize: 3})
	dir := t.TempDir()
	exec := newCountingExec()

	cfg := workerCfg(t, dir, "worker-a", exec)
	// Kill budget aligned with the unit boundary: the worker dies with
	// exactly one fully journaled, never-handed-off unit.
	cfg.StopAfter = 3
	sum, err := NewWorker(c, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Killed || sum.Executed != 3 || sum.Parked != 3 {
		t.Fatalf("kill did not trigger: %+v", sum)
	}
	if got := len(c.Records()); got != 0 {
		t.Fatalf("coordinator saw %d records from a killed worker", got)
	}

	// Restart: same ID, same journal, no kill.
	cfg = workerCfg(t, dir, "worker-a", exec)
	sum, err = NewWorker(c, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Killed {
		t.Fatalf("resumed worker killed again: %+v", sum)
	}
	if !c.Done() {
		t.Fatalf("resume did not finish the grid")
	}
	// The resumed session re-offered the journal instead of re-running:
	// every key executed exactly once across both sessions.
	for i, r := range plan.Runs {
		if n := exec.executions(r.Key()); n != 1 {
			t.Errorf("run %d executed %d times across kill+resume", i, n)
		}
	}
	// The parked flush landed before any claim, so the coordinator never
	// re-issued the journaled keys: the resumed session executed exactly
	// the remaining half of the grid.
	if sum.Executed != 3 {
		t.Errorf("resumed worker executed %d runs, want the remaining 3 (%+v)", sum.Executed, sum)
	}
	if got := fabricCSV(t, c, plan); !bytes.Equal(got, want) {
		t.Fatalf("kill+resume CSV differs from serial run")
	}
}

// Graceful degradation: the coordinator is unreachable for the first
// completion attempts; the worker parks the journaled records and hands
// them off when the link heals. Nothing re-executes.
func TestWorkerParksWhileCoordinatorUnreachable(t *testing.T) {
	plan := testPlan(4)
	c := New(plan, Config{UnitSize: 4})
	exec := newCountingExec()

	ft := &FaultTransport{Inner: c, Plan: FaultPlan{FailCompletes: []int{1, 2}}}
	cfg := workerCfg(t, t.TempDir(), "worker-a", exec)
	cfg.RPCAttempts = 2 // both hand-off attempts fail -> park
	sum, err := NewWorker(ft, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatalf("parked records never handed off")
	}
	if sum.Parked != 0 || sum.Handed != 4 {
		t.Fatalf("parked flush bookkeeping: %+v", sum)
	}
	for _, r := range plan.Runs {
		if n := exec.executions(r.Key()); n != 1 {
			t.Errorf("parking caused re-execution of %s (%d times)", r.Key(), n)
		}
	}
}

// The full battery, per the acceptance criteria: a 3-worker grid with a
// mid-run worker kill (and restart), a dropped-heartbeat lease
// reassignment, a duplicate completion, failed claims/completions, and a
// coordinator restart mid-grid — all converging to a merged result set
// byte-identical to the serial run, with zero conflict findings.
func TestFaultBatteryConvergesToSerial(t *testing.T) {
	plan := testPlan(12)
	want := serialCSV(t, plan)
	dir := t.TempDir()
	journal := filepath.Join(dir, "coordinator.jsonl")

	c, err := Open(plan, journal, Config{UnitSize: 2, LeaseTTL: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	exec := newCountingExec()

	var wg sync.WaitGroup

	// worker-a: flaky link — a failed claim, a failed completion (parks,
	// then flushes), and a duplicated completion (retransmit race).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ft := &FaultTransport{Inner: c, Plan: FaultPlan{
			FailClaims:         []int{2},
			FailCompletes:      []int{1},
			DuplicateCompletes: []int{3},
		}}
		if _, err := NewWorker(ft, workerCfg(t, dir, "worker-a", exec)).Run(); err != nil {
			t.Errorf("worker-a: %v", err)
		}
	}()

	// worker-c: partitioned — heartbeats all dropped, runs slowed past
	// the lease TTL, so its leases expire and reassign while it works;
	// its late completions arrive as duplicates (or firsts) and dedup.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ft := &FaultTransport{Inner: c, Plan: FaultPlan{MuteHeartbeats: 1}}
		cfg := workerCfg(t, dir, "worker-c", exec)
		cfg.Executor = exec.slowed(60 * time.Millisecond)
		cfg.HeartbeatEvery = 20 * time.Millisecond
		if _, err := NewWorker(ft, cfg).Run(); err != nil {
			t.Errorf("worker-c: %v", err)
		}
	}()

	// worker-b: killed after 2 runs, coordinator restarted from its
	// journal while b is down, then b restarts and resumes.
	cfgB := workerCfg(t, dir, "worker-b", exec)
	cfgB.StopAfter = 2
	sumB, err := NewWorker(c, cfgB).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sumB.Killed {
		t.Fatalf("worker-b kill did not trigger: %+v", sumB)
	}

	// Coordinator crash + restart mid-grid: live workers a and c keep
	// talking to the same *Coordinator value (their RPCs keep succeeding
	// — this models a fast restart), but the durable-state contract is
	// what matters: a *new* coordinator opened from the same journal
	// must agree with the live one at the end. Verified below.

	sumB2, err := NewWorker(c, workerCfg(t, dir, "worker-b", exec)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sumB2.Killed {
		t.Fatalf("worker-b resume killed: %+v", sumB2)
	}
	wg.Wait()

	if !c.Done() {
		st, _ := c.Status()
		t.Fatalf("battery did not converge: %+v", st)
	}
	if got := c.Conflicts(); len(got) != 0 {
		t.Fatalf("deterministic duplicates raised conflicts: %+v", got)
	}
	if got := fabricCSV(t, c, plan); !bytes.Equal(got, want) {
		t.Fatalf("battery CSV differs from serial run:\n%s\nvs serial\n%s", got, want)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The coordinator-restart half of the criteria: reopen from the
	// journal and require the identical merged result set — the crash
	// lost nothing.
	c2, err := Open(plan, journal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Done() {
		t.Fatalf("restarted coordinator is missing results")
	}
	if got := fabricCSV(t, c2, plan); !bytes.Equal(got, want) {
		t.Fatalf("restarted coordinator CSV differs from serial run")
	}

	// And the journals reconcile externally too: coordinator + all three
	// worker journals merge with zero determinism conflicts.
	paths := []string{journal}
	for _, id := range []string{"worker-a", "worker-b", "worker-c"} {
		paths = append(paths, filepath.Join(dir, id+".jsonl"))
	}
	records, sum, err := exp.ReconcileJournals(paths, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Err(); err != nil {
		t.Fatalf("journal reconciliation found conflicts: %v", err)
	}
	var buf bytes.Buffer
	if err := exp.MergeCSV(&buf, plan, records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("reconciled journals CSV differs from serial run")
	}
}

// The wire transport: the same convergence over real loopback HTTP, and
// protocol errors surfacing as client errors.
func TestHTTPTransportRoundTrip(t *testing.T) {
	plan := testPlan(6)
	want := serialCSV(t, plan)
	c := New(plan, Config{UnitSize: 2})
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	dir := t.TempDir()
	exec := newCountingExec()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(Dial(srv.URL), workerCfg(t, dir, fmt.Sprintf("http-worker-%d", i), exec))
			if _, err := w.Run(); err != nil {
				t.Errorf("http-worker-%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if got := fabricCSV(t, c, plan); !bytes.Equal(got, want) {
		t.Fatalf("HTTP-transport CSV differs from serial run")
	}
	st, err := Dial(srv.URL).Status()
	if err != nil || !st.Done || st.OK != len(plan.Runs) || st.Proto != ProtoVersion {
		t.Fatalf("HTTP status: %+v, %v", st, err)
	}
	// A stale worker fails loudly at the protocol gate.
	if _, err := Dial(srv.URL).Claim(ClaimRequest{Proto: "fabric.v0", Worker: "old"}); err == nil || !strings.Contains(err.Error(), "protocol mismatch") {
		t.Fatalf("stale protocol not rejected over HTTP: %v", err)
	}
}
