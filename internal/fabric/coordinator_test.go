package fabric

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"denovosync/internal/exp"
)

// fakeClock is an injectable, manually advanced clock: lease expiry
// choreography in these tests is exact, not timing-dependent.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}
func (f *fakeClock) Now() time.Time            { return f.now }
func (f *fakeClock) Advance(d time.Duration)   { f.now = f.now.Add(d) }

func claim(t *testing.T, c *Coordinator, worker string) ClaimResponse {
	t.Helper()
	resp, err := c.Claim(ClaimRequest{Proto: ProtoVersion, Worker: worker})
	if err != nil {
		t.Fatalf("claim(%s): %v", worker, err)
	}
	return resp
}

func unitKeys(u *WorkUnit) []string {
	var keys []string
	for _, r := range u.Runs {
		keys = append(keys, r.Key())
	}
	return keys
}

func TestClaimShardsPlanOrder(t *testing.T) {
	plan := testPlan(10)
	c := New(plan, Config{UnitSize: 4})

	a := claim(t, c, "worker-a")
	b := claim(t, c, "worker-b")
	cc := claim(t, c, "worker-c")
	if len(a.Unit.Runs) != 4 || len(b.Unit.Runs) != 4 || len(cc.Unit.Runs) != 2 {
		t.Fatalf("unit sizes %d/%d/%d, want 4/4/2",
			len(a.Unit.Runs), len(b.Unit.Runs), len(cc.Unit.Runs))
	}
	// Units are disjoint and cover the plan in order.
	var got []string
	got = append(got, unitKeys(a.Unit)...)
	got = append(got, unitKeys(b.Unit)...)
	got = append(got, unitKeys(cc.Unit)...)
	var want []string
	for _, r := range plan.Runs {
		want = append(want, r.Key())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharding is not disjoint plan order:\n%v\nwant\n%v", got, want)
	}
	// Nothing left: a fourth worker idles (not done — work is leased).
	d := claim(t, c, "worker-d")
	if d.Unit != nil || d.Done {
		t.Fatalf("exhausted grid gave worker-d %+v", d)
	}
}

func TestDuplicatePlanEntriesLeaseOnce(t *testing.T) {
	plan := testPlan(3)
	plan.Runs = append(plan.Runs, plan.Runs[0]) // same config, extra row
	c := New(plan, Config{UnitSize: 10})
	a := claim(t, c, "worker-a")
	if len(a.Unit.Runs) != 3 {
		t.Fatalf("duplicate grid point leased twice: %d runs", len(a.Unit.Runs))
	}
}

// The dropped-heartbeat failure mode: a lease that stops renewing
// expires and its keys are reassigned to the next claimant; the original
// worker's heartbeat then reports the lease dead.
func TestLeaseExpiryReassignsKeys(t *testing.T) {
	clock := newFakeClock()
	c := New(testPlan(4), Config{UnitSize: 4, LeaseTTL: 30 * time.Second, Clock: clock.Now})

	a := claim(t, c, "worker-a")
	keysA := unitKeys(a.Unit)

	// Heartbeats inside the TTL keep the lease alive.
	clock.Advance(20 * time.Second)
	hb, err := c.Heartbeat(HeartbeatRequest{Proto: ProtoVersion, Worker: "worker-a", Lease: a.Unit.Lease})
	if err != nil || !hb.Live {
		t.Fatalf("in-TTL heartbeat not live: %+v, %v", hb, err)
	}
	clock.Advance(20 * time.Second) // renewed at t=20, still inside TTL
	if b := claim(t, c, "worker-b"); b.Unit != nil {
		t.Fatalf("live lease reassigned: %+v", b.Unit)
	}

	// Now the heartbeats stop (dropped by the network) and the TTL lapses.
	clock.Advance(31 * time.Second)
	b := claim(t, c, "worker-b")
	if b.Unit == nil {
		t.Fatalf("expired lease not reassigned")
	}
	if !reflect.DeepEqual(unitKeys(b.Unit), keysA) {
		t.Fatalf("reassigned keys %v, want worker-a's %v", unitKeys(b.Unit), keysA)
	}
	// The partitioned worker's next heartbeat tells it the lease is gone.
	hb, err = c.Heartbeat(HeartbeatRequest{Proto: ProtoVersion, Worker: "worker-a", Lease: a.Unit.Lease})
	if err != nil || hb.Live {
		t.Fatalf("expired lease still live: %+v, %v", hb, err)
	}
}

// The worker-restart failure mode: a fresh claim from the same worker ID
// supersedes its old leases immediately — no TTL wait.
func TestClaimSupersedesOwnLeases(t *testing.T) {
	clock := newFakeClock()
	c := New(testPlan(4), Config{UnitSize: 2, Clock: clock.Now})

	a1 := claim(t, c, "worker-a")
	a2 := claim(t, c, "worker-a") // restarted process, same ID
	if !reflect.DeepEqual(unitKeys(a2.Unit), unitKeys(a1.Unit)) {
		t.Fatalf("restart claim got %v, want its own old keys %v back", unitKeys(a2.Unit), unitKeys(a1.Unit))
	}
	if got := c.LeasedKeys(); len(got) != 2 {
		t.Fatalf("superseded lease still counted: %v", got)
	}
	// Another worker's lease is untouched by the supersession.
	b := claim(t, c, "worker-b")
	if len(b.Unit.Runs) != 2 {
		t.Fatalf("worker-b got %d runs, want the remaining 2", len(b.Unit.Runs))
	}
}

// The duplicate-completion failure mode, plus supersede and conflict
// escalation — the coordinator-side merge rules.
func TestCompleteIdempotencyAndConflicts(t *testing.T) {
	plan := testPlan(3)
	c := New(plan, Config{UnitSize: 3})
	claim(t, c, "worker-a")

	exec := newCountingExec()
	recOK := func(i int) *exp.Record {
		r := plan.Runs[i]
		rs, aux, _ := exec.exec(r)
		return &exp.Record{Key: r.Key(), Run: r, Status: exp.StatusOK, Attempts: 1, Stats: rs, Aux: aux}
	}
	complete := func(worker string, recs ...*exp.Record) CompleteResponse {
		resp, err := c.Complete(CompleteRequest{Proto: ProtoVersion, Worker: worker, Lease: ParkedLease, Records: recs})
		if err != nil {
			t.Fatalf("complete: %v", err)
		}
		return resp
	}

	failed := &exp.Record{Key: plan.Runs[0].Key(), Run: plan.Runs[0], Status: exp.StatusFailed, Attempts: 2, Error: "boom"}
	if resp := complete("worker-a", failed, recOK(1)); resp.Accepted != 2 {
		t.Fatalf("first completion: %+v", resp)
	}
	// A retransmitted identical result dedups.
	if resp := complete("worker-a", recOK(1)); resp.Duplicates != 1 || resp.Accepted != 0 {
		t.Fatalf("retransmit not deduped: %+v", resp)
	}
	// A success supersedes the journaled failure.
	if resp := complete("worker-b", recOK(0)); resp.Accepted != 1 {
		t.Fatalf("success did not supersede failure: %+v", resp)
	}
	if rec := c.Records()[plan.Runs[0].Key()]; rec.Status != exp.StatusOK {
		t.Fatalf("superseded record still failed: %+v", rec)
	}
	// A failure arriving after a terminal record is noise.
	if resp := complete("worker-c", failed); resp.Duplicates != 1 {
		t.Fatalf("late failure not dropped: %+v", resp)
	}
	// A record for a key outside this grid is rejected.
	other := testPlan(5).Runs[4]
	stray := &exp.Record{Key: other.Key(), Run: other, Status: exp.StatusOK, Attempts: 1}
	if resp := complete("worker-c", stray); resp.Rejected != 1 {
		t.Fatalf("stray key not rejected: %+v", resp)
	}

	// The acceptance-criteria case: same key, different result — a
	// structured determinism finding, never a silent merge.
	evil := recOK(2)
	complete("worker-a", recOK(2))
	evil.Stats.ExecTime += 7777
	if resp := complete("worker-evil", evil); resp.Conflicts != 1 {
		t.Fatalf("conflicting result not escalated: %+v", resp)
	}
	conflicts := c.Conflicts()
	if len(conflicts) != 1 || conflicts[0].Key != plan.Runs[2].Key() {
		t.Fatalf("conflict finding missing: %+v", conflicts)
	}
	if len(conflicts[0].Results) != 2 || conflicts[0].Results[1].Sources[0] != "worker-evil" {
		t.Fatalf("finding does not blame the conflicting worker: %+v", conflicts[0])
	}
	// The first-seen result stands.
	if rec := c.Records()[plan.Runs[2].Key()]; rec.Stats.ExecTime == evil.Stats.ExecTime {
		t.Fatalf("conflicting result silently replaced the original")
	}
	st, _ := c.Status()
	if len(st.Conflicts) != 1 {
		t.Fatalf("status hides the determinism finding: %+v", st)
	}
}

// The coordinator-crash failure mode: everything accepted before the
// crash is durable in the journal (and the conflict sidecar); a restart
// resumes mid-grid and re-issues only the missing keys.
func TestCoordinatorRestartReplaysJournal(t *testing.T) {
	plan := testPlan(6)
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	exec := newCountingExec()

	c, err := Open(plan, path, Config{UnitSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	claim(t, c, "worker-a")
	var recs []*exp.Record
	for _, r := range plan.Runs[:3] {
		rs, aux, _ := exec.exec(r)
		recs = append(recs, &exp.Record{Key: r.Key(), Run: r, Status: exp.StatusOK, Attempts: 1, Stats: rs, Aux: aux})
	}
	if _, err := c.Complete(CompleteRequest{Proto: ProtoVersion, Worker: "worker-a", Lease: ParkedLease, Records: recs}); err != nil {
		t.Fatal(err)
	}
	// Also raise a conflict finding so the sidecar has content to reload.
	evil := *recs[0]
	evilStats := *recs[0].Stats
	evilStats.ExecTime += 1
	evil.Stats = &evilStats
	resp, err := c.Complete(CompleteRequest{Proto: ProtoVersion, Worker: "worker-evil", Lease: ParkedLease, Records: []*exp.Record{&evil}})
	if err != nil || resp.Conflicts != 1 {
		t.Fatalf("conflict injection: %+v, %v", resp, err)
	}
	if err := c.Close(); err != nil { // crash stand-in: process gone, files remain
		t.Fatal(err)
	}

	c2, err := Open(plan, path, Config{UnitSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := len(c2.Records()); got != 3 {
		t.Fatalf("restart replayed %d records, want 3", got)
	}
	if got := c2.Conflicts(); len(got) != 1 || got[0].Key != plan.Runs[0].Key() {
		t.Fatalf("restart lost the determinism finding: %+v", got)
	}
	// Only the missing half of the grid is re-issued.
	b := claim(t, c2, "worker-b")
	want := []string{plan.Runs[3].Key(), plan.Runs[4].Key(), plan.Runs[5].Key()}
	if !reflect.DeepEqual(unitKeys(b.Unit), want) {
		t.Fatalf("restart re-issued %v, want only the missing %v", unitKeys(b.Unit), want)
	}
}

func TestProtocolMismatchRejected(t *testing.T) {
	c := New(testPlan(1), Config{})
	if _, err := c.Claim(ClaimRequest{Proto: "fabric.v0", Worker: "w"}); err == nil || !strings.Contains(err.Error(), "protocol mismatch") {
		t.Fatalf("stale protocol claim accepted: %v", err)
	}
	if _, err := c.Complete(CompleteRequest{Proto: "", Worker: "w"}); err == nil {
		t.Fatalf("protocol-less completion accepted")
	}
	if _, err := c.Heartbeat(HeartbeatRequest{Proto: "nope", Worker: "w", Lease: "w#1"}); err == nil {
		t.Fatalf("protocol-less heartbeat accepted")
	}
}
