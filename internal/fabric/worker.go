package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"denovosync/internal/backoff"
	"denovosync/internal/exp"
	"denovosync/internal/stats"
)

// WorkerConfig tunes a worker agent.
type WorkerConfig struct {
	// ID names the worker. A restarted worker reusing its ID supersedes
	// its old leases on the first claim, so recovery is immediate
	// instead of waiting out the lease TTL.
	ID string

	// JournalPath is the worker's local fsynced JSONL journal: every run
	// is journaled here *before* hand-off, so a crash or an unreachable
	// coordinator loses nothing. On startup the whole journal is
	// re-offered to the coordinator (idempotent by run key).
	JournalPath string

	// EngineWorkers bounds concurrent runs inside a unit (exp.Engine
	// semantics: <= 0 means GOMAXPROCS).
	EngineWorkers int

	// Timeout / Retries / RunBackoff are the per-run fault-isolation
	// knobs, passed straight to the exp engine.
	Timeout    time.Duration
	Retries    int
	RunBackoff backoff.Policy

	// RPCBackoff schedules retries of worker→coordinator RPCs; the zero
	// value retries immediately (tests). RPCAttempts bounds attempts per
	// completion/heartbeat RPC (default 5); claims retry indefinitely —
	// an idle worker's job is to wait for its coordinator to come back.
	RPCBackoff  backoff.Policy
	RPCAttempts int

	// IdleWait is the pause when the grid has pending work but all of it
	// is leased to other workers (default 100ms).
	IdleWait time.Duration

	// HeartbeatEvery overrides the lease-renewal period (default TTL/3).
	HeartbeatEvery time.Duration

	// StopAfter, when > 0, makes the worker exit after journaling that
	// many runs this session — *without* handing them off or releasing
	// its lease. It is the deterministic stand-in for SIGKILL (à la exp
	// -stop-after): everything after the fsynced local journal write is
	// lost, which is exactly the recovery path a real kill exercises.
	StopAfter int

	// Stop, when closed, ends the session gracefully: in-flight runs
	// finish, journal, and hand off.
	Stop <-chan struct{}

	// Executor overrides run execution (nil = exp.Execute; tests inject
	// fakes).
	Executor func(exp.Run) (*stats.RunStats, json.RawMessage, error)

	// Progress, when set, receives worker progress lines.
	Progress io.Writer
}

func (c WorkerConfig) rpcAttempts() int {
	if c.RPCAttempts <= 0 {
		return 5
	}
	return c.RPCAttempts
}

func (c WorkerConfig) idleWait() time.Duration {
	if c.IdleWait <= 0 {
		return 100 * time.Millisecond
	}
	return c.IdleWait
}

// WorkerSummary describes one worker session.
type WorkerSummary struct {
	Units     int  // work units claimed and started
	Executed  int  // runs executed this session
	Resumed   int  // runs satisfied from the local journal
	Handed    int  // records the coordinator acknowledged
	Parked    int  // records still awaiting hand-off at exit
	Abandoned int  // units dropped after losing their lease
	Killed    bool // exited via StopAfter
}

func (s WorkerSummary) String() string {
	extra := ""
	if s.Abandoned > 0 {
		extra += fmt.Sprintf(", %d abandoned units", s.Abandoned)
	}
	if s.Parked > 0 {
		extra += fmt.Sprintf(", %d parked", s.Parked)
	}
	if s.Killed {
		extra += ", killed"
	}
	return fmt.Sprintf("%d units: %d executed, %d resumed, %d handed off%s",
		s.Units, s.Executed, s.Resumed, s.Handed, extra)
}

// Worker claims lease-based work units from a coordinator and executes
// them through the exp engine.
type Worker struct {
	T   Transport
	Cfg WorkerConfig

	journal *exp.Journal
	prior   map[string]*exp.Record
	parked  []*exp.Record
	sum     WorkerSummary
}

// NewWorker wires a worker to a transport.
func NewWorker(t Transport, cfg WorkerConfig) *Worker {
	return &Worker{T: t, Cfg: cfg}
}

func (w *Worker) progressf(format string, args ...interface{}) {
	if w.Cfg.Progress != nil {
		fmt.Fprintf(w.Cfg.Progress, format, args...)
	}
}

func (w *Worker) stopped() bool {
	select {
	case <-w.Cfg.Stop:
		return true
	default:
		return false
	}
}

// Run executes the worker session: re-offer any locally journaled
// results, then claim, execute, journal, and hand off units until the
// coordinator reports the grid done (or Stop / StopAfter ends the
// session). The returned summary is best-effort bookkeeping; the local
// journal is the durable truth.
func (w *Worker) Run() (WorkerSummary, error) {
	if w.Cfg.ID == "" {
		return w.sum, fmt.Errorf("fabric: worker needs an ID")
	}
	w.prior = map[string]*exp.Record{}
	if w.Cfg.JournalPath != "" {
		j, prior, err := exp.OpenJournal(w.Cfg.JournalPath)
		if err != nil {
			return w.sum, err
		}
		defer j.Close()
		w.journal = j
		w.prior = prior
		// Re-offer everything journaled locally: the coordinator dedups
		// by key, so this is the resume half of parked hand-off.
		for _, rec := range w.prior {
			w.parked = append(w.parked, rec)
		}
		if len(w.parked) > 0 {
			w.progressf("fabric[%s]: re-offering %d journaled record(s)\n", w.Cfg.ID, len(w.parked))
		}
	}

	claimFails := 0
	for {
		if w.stopped() {
			w.sum.Parked = len(w.parked)
			return w.sum, nil
		}
		w.flushParked()
		resp, err := w.T.Claim(ClaimRequest{Proto: ProtoVersion, Worker: w.Cfg.ID})
		if err != nil {
			claimFails++
			if claimFails == 1 {
				w.progressf("fabric[%s]: coordinator unreachable (%v); parking and retrying\n", w.Cfg.ID, err)
			}
			if !w.Cfg.RPCBackoff.Keyed("claim").Sleep(claimFails, w.Cfg.Stop) {
				w.sum.Parked = len(w.parked)
				return w.sum, nil
			}
			continue
		}
		claimFails = 0
		if resp.Unit == nil {
			if resp.Done && len(w.parked) == 0 {
				w.progressf("fabric[%s]: grid complete: %s\n", w.Cfg.ID, w.sum)
				return w.sum, nil
			}
			// Either everything pending is leased elsewhere, or we still
			// hold parked records the coordinator has not acknowledged.
			if !sleepFor(w.Cfg.idleWait(), w.Cfg.Stop) {
				w.sum.Parked = len(w.parked)
				return w.sum, nil
			}
			continue
		}
		killed, err := w.runUnit(resp.Unit)
		if err != nil {
			w.sum.Parked = len(w.parked)
			return w.sum, err
		}
		if killed {
			w.sum.Killed = true
			w.sum.Parked = len(w.parked)
			w.progressf("fabric[%s]: stop-after reached: %s\n", w.Cfg.ID, w.sum)
			return w.sum, nil
		}
	}
}

// runUnit executes one leased unit through the exp engine, with a
// heartbeat loop renewing the lease. Returns killed=true when StopAfter
// ended the session mid-grid.
func (w *Worker) runUnit(unit *WorkUnit) (killed bool, err error) {
	w.sum.Units++
	w.progressf("fabric[%s]: claimed %s (%d runs)\n", w.Cfg.ID, unit.Lease, len(unit.Runs))

	// Merge the three stop sources (graceful Stop, lost lease, engine
	// teardown) into the engine's single stop channel.
	engStop := make(chan struct{})
	leaseLost := make(chan struct{})
	execDone := make(chan struct{})
	var stopOnce sync.Once
	closeEngStop := func() { stopOnce.Do(func() { close(engStop) }) }
	go func() {
		select {
		case <-w.Cfg.Stop:
		case <-leaseLost:
		case <-execDone:
		}
		closeEngStop()
	}()

	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeat(unit, leaseLost, execDone)
	}()

	stopAfter := 0
	if w.Cfg.StopAfter > 0 {
		stopAfter = w.Cfg.StopAfter - w.sum.Executed
		if stopAfter <= 0 {
			stopAfter = 1 // claimed past the budget: stop on the next run
		}
	}
	eng := &exp.Engine{
		Workers: w.Cfg.EngineWorkers,
		Timeout: w.Cfg.Timeout,
		Retries: w.Cfg.Retries,
		Backoff: w.Cfg.RunBackoff,
		Journal: w.journal,
		Prior:   w.prior,

		StopAfter: stopAfter,
		Stop:      engStop,
		Executor:  w.Cfg.Executor,
	}
	records, esum, eerr := eng.Execute(exp.Plan{ID: unit.Lease, Runs: unit.Runs})
	close(execDone)
	hbWG.Wait()
	if eerr != nil && !errors.Is(eerr, exp.ErrStopped) {
		return false, eerr // journal write failure: the session cannot be trusted
	}
	w.sum.Executed += esum.Executed
	w.sum.Resumed += esum.Resumed

	var recs []*exp.Record
	for _, r := range unit.Runs {
		if rec := records[r.Key()]; rec != nil {
			w.prior[r.Key()] = rec
			recs = append(recs, rec)
		}
	}

	if w.Cfg.StopAfter > 0 && w.sum.Executed >= w.Cfg.StopAfter {
		// Deterministic kill: journaled but never handed off — the
		// records are parked for the *next* session's re-offer.
		w.parked = append(w.parked, recs...)
		return true, nil
	}

	select {
	case <-leaseLost:
		w.sum.Abandoned++
		w.progressf("fabric[%s]: lease %s lost; abandoning %d unfinished run(s)\n",
			w.Cfg.ID, unit.Lease, len(unit.Runs)-len(recs))
	default:
	}

	if len(recs) > 0 {
		w.handOff(unit.Lease, recs)
	}
	return false, nil
}

// heartbeat renews the unit's lease until execution finishes, closing
// leaseLost if the coordinator no longer honors it. RPC errors are
// tolerated silently: an unreachable coordinator must not kill the run —
// the results journal locally and park.
func (w *Worker) heartbeat(unit *WorkUnit, leaseLost chan<- struct{}, done <-chan struct{}) {
	every := w.Cfg.HeartbeatEvery
	if every <= 0 {
		every = time.Duration(unit.TTLMillis) * time.Millisecond / 3
	}
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			resp, err := w.T.Heartbeat(HeartbeatRequest{Proto: ProtoVersion, Worker: w.Cfg.ID, Lease: unit.Lease})
			if err != nil {
				continue
			}
			if !resp.Live {
				close(leaseLost)
				return
			}
		}
	}
}

// handOff completes records against the coordinator with bounded
// seeded-backoff retry; on persistent failure they park locally.
func (w *Worker) handOff(leaseID string, recs []*exp.Record) {
	req := CompleteRequest{Proto: ProtoVersion, Worker: w.Cfg.ID, Lease: leaseID, Records: recs}
	for attempt := 1; ; attempt++ {
		resp, err := w.T.Complete(req)
		if err == nil {
			w.sum.Handed += resp.Accepted + resp.Duplicates + resp.Conflicts
			if resp.Conflicts > 0 {
				w.progressf("fabric[%s]: coordinator flagged %d determinism conflict(s) on hand-off\n", w.Cfg.ID, resp.Conflicts)
			}
			return
		}
		if attempt >= w.Cfg.rpcAttempts() || !w.Cfg.RPCBackoff.Keyed("complete:"+leaseID).Sleep(attempt, w.Cfg.Stop) {
			w.progressf("fabric[%s]: hand-off failed (%v); parking %d record(s)\n", w.Cfg.ID, err, len(recs))
			w.parked = append(w.parked, recs...)
			return
		}
	}
}

// flushParked re-offers parked records. A partial/failed flush keeps
// them parked; the claim loop retries before every claim.
func (w *Worker) flushParked() {
	if len(w.parked) == 0 {
		return
	}
	req := CompleteRequest{Proto: ProtoVersion, Worker: w.Cfg.ID, Lease: ParkedLease, Records: w.parked}
	resp, err := w.T.Complete(req)
	if err != nil {
		return
	}
	w.sum.Handed += resp.Accepted + resp.Duplicates + resp.Conflicts
	w.progressf("fabric[%s]: handed off %d parked record(s) (%d new, %d duplicate)\n",
		w.Cfg.ID, len(w.parked), resp.Accepted, resp.Duplicates)
	w.parked = nil
}

// sleepFor waits d unless cancel closes first (false on cancel).
func sleepFor(d time.Duration, cancel <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
