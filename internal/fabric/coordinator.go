package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"denovosync/internal/exp"
)

// Config tunes a coordinator. The zero value gets sane defaults.
type Config struct {
	// UnitSize is the number of runs per lease (default 4). Smaller
	// units spread a grid more evenly and lose less work per crash;
	// larger units amortize RPC overhead.
	UnitSize int

	// LeaseTTL is how long a claimed unit stays assigned without a
	// heartbeat (default 30s). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration

	// Clock supplies the time for lease bookkeeping (default time.Now).
	// Tests inject a fake clock to make expiry choreography exact.
	Clock func() time.Time
}

func (c Config) unitSize() int {
	if c.UnitSize <= 0 {
		return 4
	}
	return c.UnitSize
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 30 * time.Second
	}
	return c.LeaseTTL
}

func (c Config) now() time.Time {
	if c.Clock == nil {
		return time.Now()
	}
	return c.Clock()
}

// lease is one outstanding work unit.
type lease struct {
	id      string
	worker  string
	keys    map[string]bool // unit keys not yet completed
	expires time.Time
}

// Coordinator shards a grid into lease-based work units and accumulates
// results. All completed state is durable: every accepted record is
// appended to the fsynced exp journal and every conflict finding to the
// sidecar before the RPC returns, so a coordinator restarted from the
// same journal path resumes mid-grid with nothing lost but live leases —
// which are deliberately soft state (expired or orphaned leases are
// simply reassigned; duplicate execution is safe by construction).
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	plan      exp.Plan
	order     []string           // distinct run keys in plan order
	runs      map[string]exp.Run // key -> run
	records   map[string]*exp.Record
	journal   *exp.Journal // nil = memory-only (tests)
	conflicts []exp.Conflict
	conflictF *os.File // fsynced JSONL sidecar; nil = memory-only
	leases    map[string]*lease
	leasedKey map[string]string // key -> lease id
	seq       int
}

// New builds a memory-only coordinator (no durability; tests and the
// in-process smoke harness attach journals via Open instead).
func New(plan exp.Plan, cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:       cfg,
		plan:      plan,
		runs:      map[string]exp.Run{},
		records:   map[string]*exp.Record{},
		leases:    map[string]*lease{},
		leasedKey: map[string]string{},
	}
	for _, r := range plan.Runs {
		k := r.Key()
		if _, dup := c.runs[k]; dup {
			continue // identical config under another label: one execution serves both rows
		}
		c.runs[k] = r
		c.order = append(c.order, k)
	}
	return c
}

// ConflictSidecarPath is where a journal-backed coordinator durably
// records determinism findings.
func ConflictSidecarPath(journalPath string) string {
	return journalPath + ".conflicts.jsonl"
}

// Open builds a journal-backed coordinator: prior records are replayed
// from the journal (crash recovery — a restarted coordinator re-issues
// only what is missing) and conflict findings are reloaded from and
// appended to the sidecar.
func Open(plan exp.Plan, journalPath string, cfg Config) (*Coordinator, error) {
	c := New(plan, cfg)
	j, prior, err := exp.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	c.journal = j
	for k, rec := range prior {
		if _, ours := c.runs[k]; ours {
			c.records[k] = rec
		}
	}
	side := ConflictSidecarPath(journalPath)
	if b, err := os.ReadFile(side); err == nil {
		for _, line := range splitLines(b) {
			var cf exp.Conflict
			if err := json.Unmarshal(line, &cf); err != nil {
				return nil, fmt.Errorf("fabric: conflict sidecar %s: %w", side, err)
			}
			c.conflicts = append(c.conflicts, cf)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(side, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.Close()
		return nil, err
	}
	c.conflictF = f
	return c, nil
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i < len(b); i++ {
		if b[i] == '\n' {
			if i > start {
				out = append(out, b[start:i])
			}
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}

// Close releases the journal and sidecar handles.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	if c.journal != nil {
		first = c.journal.Close()
		c.journal = nil
	}
	if c.conflictF != nil {
		if err := c.conflictF.Close(); err != nil && first == nil {
			first = err
		}
		c.conflictF = nil
	}
	return first
}

// expireLocked returns expired leases' outstanding keys to the pool.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expires) {
			c.dropLeaseLocked(id)
		}
	}
}

func (c *Coordinator) dropLeaseLocked(id string) {
	l := c.leases[id]
	if l == nil {
		return
	}
	for k := range l.keys {
		if c.leasedKey[k] == id {
			delete(c.leasedKey, k)
		}
	}
	delete(c.leases, id)
}

// Claim implements Transport.
func (c *Coordinator) Claim(req ClaimRequest) (ClaimResponse, error) {
	if req.Proto != ProtoVersion {
		return ClaimResponse{}, fmt.Errorf("fabric: protocol mismatch: coordinator %s, worker %q", ProtoVersion, req.Proto)
	}
	if req.Worker == "" {
		return ClaimResponse{}, fmt.Errorf("fabric: claim needs a worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)
	// A fresh claim supersedes this worker's outstanding leases: the
	// worker runs one unit at a time, so anything still leased to it
	// belongs to a previous (dead or done) session.
	for id, l := range c.leases {
		if l.worker == req.Worker {
			c.dropLeaseLocked(id)
		}
	}

	var keys []string
	for _, k := range c.order {
		if len(keys) >= c.cfg.unitSize() {
			break
		}
		if _, done := c.records[k]; done {
			continue
		}
		if _, leased := c.leasedKey[k]; leased {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ClaimResponse{Done: c.doneLocked()}, nil
	}
	c.seq++
	l := &lease{
		id:      fmt.Sprintf("%s#%d", req.Worker, c.seq),
		worker:  req.Worker,
		keys:    map[string]bool{},
		expires: now.Add(c.cfg.leaseTTL()),
	}
	unit := &WorkUnit{Lease: l.id, TTLMillis: c.cfg.leaseTTL().Milliseconds()}
	for _, k := range keys {
		l.keys[k] = true
		c.leasedKey[k] = l.id
		unit.Runs = append(unit.Runs, c.runs[k])
	}
	c.leases[l.id] = l
	return ClaimResponse{Unit: unit}, nil
}

// Heartbeat implements Transport.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if req.Proto != ProtoVersion {
		return HeartbeatResponse{}, fmt.Errorf("fabric: protocol mismatch: coordinator %s, worker %q", ProtoVersion, req.Proto)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.expireLocked(now)
	l := c.leases[req.Lease]
	if l == nil || l.worker != req.Worker {
		return HeartbeatResponse{Live: false}, nil
	}
	l.expires = now.Add(c.cfg.leaseTTL())
	return HeartbeatResponse{Live: true}, nil
}

// Complete implements Transport: idempotent, content-addressed result
// ingestion. Every accepted record is journaled (fsync) before the call
// returns; a duplicate with an identical fingerprint is dropped; a
// duplicate with a *different* fingerprint raises a durable determinism
// finding and keeps the first result.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	if req.Proto != ProtoVersion {
		return CompleteResponse{}, fmt.Errorf("fabric: protocol mismatch: coordinator %s, worker %q", ProtoVersion, req.Proto)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var resp CompleteResponse
	for _, rec := range req.Records {
		if rec == nil || rec.Key == "" {
			resp.Rejected++
			continue
		}
		if _, ours := c.runs[rec.Key]; !ours {
			resp.Rejected++ // a record from some other grid: not our result set
			continue
		}
		prev := c.records[rec.Key]
		switch {
		case prev == nil:
			if err := c.acceptLocked(rec); err != nil {
				return resp, err
			}
			resp.Accepted++
		case prev.Status == exp.StatusOK && rec.Status == exp.StatusOK:
			if prev.ResultFingerprint() == rec.ResultFingerprint() {
				resp.Duplicates++
				break
			}
			if err := c.conflictLocked(prev, rec, req.Worker); err != nil {
				return resp, err
			}
			resp.Conflicts++
		case prev.Status != exp.StatusOK && rec.Status == exp.StatusOK:
			// A success supersedes a journaled failure (another worker's
			// bounded retry got further). Journal append order makes the
			// success win on replay, matching exp's later-lines-win rule.
			if err := c.acceptLocked(rec); err != nil {
				return resp, err
			}
			resp.Accepted++
		default:
			resp.Duplicates++ // failure after any terminal record: noise
		}
	}
	return resp, nil
}

// acceptLocked journals and installs one record, retiring its lease
// bookkeeping.
func (c *Coordinator) acceptLocked(rec *exp.Record) error {
	if c.journal != nil {
		if err := c.journal.Append(rec); err != nil {
			return err
		}
	}
	c.records[rec.Key] = rec
	if id, leased := c.leasedKey[rec.Key]; leased {
		delete(c.leasedKey, rec.Key)
		if l := c.leases[id]; l != nil {
			delete(l.keys, rec.Key)
			if len(l.keys) == 0 {
				delete(c.leases, id)
			}
		}
	}
	return nil
}

// conflictLocked records a determinism finding durably.
func (c *Coordinator) conflictLocked(prev, rec *exp.Record, worker string) error {
	finding := exp.Conflict{
		Key: rec.Key,
		Run: prev.Run,
		Results: []exp.ConflictSide{
			{Fingerprint: prev.ResultFingerprint(), Sources: []string{"coordinator"}, Record: prev},
			{Fingerprint: rec.ResultFingerprint(), Sources: []string{worker}, Record: rec},
		},
	}
	c.conflicts = append(c.conflicts, finding)
	if c.conflictF != nil {
		b, err := json.Marshal(finding)
		if err != nil {
			return fmt.Errorf("fabric: encoding conflict: %w", err)
		}
		if _, err := c.conflictF.Write(append(b, '\n')); err != nil {
			return err
		}
		if err := c.conflictF.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Coordinator) doneLocked() bool {
	return len(c.records) >= len(c.order)
}

// Done reports whether every distinct run key has a terminal record.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneLocked()
}

// Records returns a copy of the completed record set keyed by run key.
func (c *Coordinator) Records() map[string]*exp.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*exp.Record, len(c.records))
	for k, rec := range c.records {
		out[k] = rec
	}
	return out
}

// Conflicts returns the determinism findings raised so far.
func (c *Coordinator) Conflicts() []exp.Conflict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]exp.Conflict(nil), c.conflicts...)
}

// Status implements Transport.
func (c *Coordinator) Status() (StatusResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.now())
	resp := StatusResponse{
		Proto:     ProtoVersion,
		Plan:      c.plan.ID,
		Total:     len(c.order),
		Done:      c.doneLocked(),
		Conflicts: append([]exp.Conflict(nil), c.conflicts...),
	}
	for _, rec := range c.records {
		if rec.Status == exp.StatusOK {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	workers := map[string]int{}
	for _, l := range c.leases {
		resp.Leased += len(l.keys)
		workers[l.worker] += len(l.keys)
	}
	if len(workers) > 0 {
		resp.Workers = workers
	}
	resp.Pending = resp.Total - resp.OK - resp.Failed - resp.Leased
	return resp, nil
}

// LeasedKeys reports the keys currently under a live lease, sorted (for
// tests asserting reassignment behavior).
func (c *Coordinator) LeasedKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.now())
	var keys []string
	for k := range c.leasedKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
