// Package fabric takes internal/exp from one machine to a fleet: a
// coordinator service that shards an experiment grid into lease-based
// work units, and a worker agent that claims leases, executes runs
// through the exp engine (per-run fault isolation, timeout, bounded
// retry with the shared seeded backoff policy), journals results locally
// in the established fsynced JSONL format, and hands them off to the
// coordinator.
//
// The design leans entirely on two properties the repo already
// guarantees:
//
//   - runs are content-addressed (exp.Run.Key hashes the full
//     configuration), so executing a run twice is wasteful but never
//     wrong — completions are idempotent by key;
//   - every simulation is cycle-exact deterministic, so two records for
//     the same key must carry the same result, and a mismatch is not a
//     merge conflict but a determinism bug (escalated as a structured
//     exp.Conflict finding, never silently merged).
//
// Together they make every failure mode recoverable by construction:
//
//   - worker crash mid-run: its lease expires (or its restart
//     supersedes it) and the keys are reassigned; results it already
//     journaled locally are re-offered on reconnect and deduplicated;
//   - dropped heartbeats: the lease expires and is reassigned; if the
//     original worker finishes anyway, the duplicate completion dedups;
//   - coordinator crash: all completed results live in its fsynced
//     journal (and conflict findings in the sidecar) — a restarted
//     coordinator replays them and re-issues only the missing keys;
//   - coordinator unreachable: workers finish in-flight runs, park the
//     records in their local journals, and resume hand-off with seeded
//     exponential backoff when the coordinator returns.
//
// Convergence is provable: however the grid was sharded, killed, and
// reassigned, reconciling the coordinator and worker journals
// (exp.Reconcile) yields a result set whose rendered figure CSVs are
// byte-identical to a serial single-machine run — the fault-injection
// battery in this package pins exactly that.
//
// The package is host-service code, deliberately outside the simulator's
// determinism boundary (see internal/lint scopes): goroutines, wall
// clocks, and network timeouts are its job. The only schedule that must
// stay deterministic — retry backoff — lives in internal/backoff, which
// *is* inside the determinism lint scope.
package fabric

import (
	"denovosync/internal/exp"
)

// ProtoVersion guards the worker↔coordinator wire protocol: both sides
// send it and reject mismatches, so a stale worker binary fails loudly
// instead of corrupting a grid.
const ProtoVersion = "fabric.v1"

// ClaimRequest asks the coordinator for a work unit. A claim from a
// worker ID supersedes that worker's outstanding leases (a worker
// processes one unit at a time, so a new claim means the old process is
// gone or done — its keys become claimable again immediately instead of
// waiting out the TTL).
type ClaimRequest struct {
	Proto  string `json:"proto"`
	Worker string `json:"worker"`
}

// WorkUnit is one leased shard of the grid.
type WorkUnit struct {
	Lease     string    `json:"lease"`
	Runs      []exp.Run `json:"runs"`
	TTLMillis int64     `json:"ttl_ms"` // lease TTL; heartbeat well inside it
}

// ClaimResponse carries at most one unit. Done reports the whole grid is
// complete (the worker can exit); a nil Unit with Done false means
// everything pending is currently leased elsewhere — back off and retry.
type ClaimResponse struct {
	Unit *WorkUnit `json:"unit,omitempty"`
	Done bool      `json:"done"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Proto  string `json:"proto"`
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// HeartbeatResponse: Live false means the lease is no longer held (it
// expired and was reassigned, or the coordinator restarted) — the worker
// abandons the unit's remaining runs; everything it already journaled
// still hands off and dedups.
type HeartbeatResponse struct {
	Live bool `json:"live"`
}

// CompleteRequest hands finished records to the coordinator. Lease is
// advisory: completions are accepted idempotently by run key even after
// lease expiry or coordinator restart, because a deterministic run's
// result is valid no matter who executed it. ParkedLease marks records
// re-offered from a worker's local journal rather than a live lease.
type CompleteRequest struct {
	Proto   string        `json:"proto"`
	Worker  string        `json:"worker"`
	Lease   string        `json:"lease"`
	Records []*exp.Record `json:"records"`
}

// ParkedLease is the advisory lease name for journal re-offers.
const ParkedLease = "parked"

// CompleteResponse accounts for every submitted record.
type CompleteResponse struct {
	Accepted   int `json:"accepted"`   // new results recorded
	Duplicates int `json:"duplicates"` // identical key+fingerprint, dropped
	Conflicts  int `json:"conflicts"`  // determinism findings raised
	Rejected   int `json:"rejected"`   // keys not in this grid
}

// StatusResponse is the coordinator's public state summary.
type StatusResponse struct {
	Proto     string         `json:"proto"`
	Plan      string         `json:"plan"`
	Total     int            `json:"total"`   // distinct run keys in the grid
	OK        int            `json:"ok"`      // completed successfully
	Failed    int            `json:"failed"`  // completed as terminal failures
	Leased    int            `json:"leased"`  // outstanding under a live lease
	Pending   int            `json:"pending"` // unleased, unexecuted
	Done      bool           `json:"done"`
	Workers   map[string]int `json:"workers,omitempty"` // live leased keys per worker
	Conflicts []exp.Conflict `json:"conflicts,omitempty"`
}

// Transport is the worker's view of the coordinator. The coordinator
// itself implements it (in-process fabric, tests, the smoke battery);
// Client implements it over HTTP; FaultTransport wraps any of them with
// a deterministic fault script.
type Transport interface {
	Claim(ClaimRequest) (ClaimResponse, error)
	Heartbeat(HeartbeatRequest) (HeartbeatResponse, error)
	Complete(CompleteRequest) (CompleteResponse, error)
	Status() (StatusResponse, error)
}
