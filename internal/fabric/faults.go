package fabric

import (
	"fmt"
	"sync"
)

// FaultPlan scripts deterministic transport faults by call count: each
// field names 1-based call indices of that RPC kind to sabotage. The
// script is exact and repeatable — no probabilities, no clocks — so
// every failure-mode test in the battery replays identically.
type FaultPlan struct {
	// FailClaims: these Claim calls return a transport error.
	FailClaims []int

	// DropHeartbeats: these Heartbeat calls return a transport error
	// without reaching the coordinator (the network ate the renewal, the
	// lease keeps aging).
	DropHeartbeats []int

	// MuteHeartbeats drops every heartbeat from this call index on —
	// the choreography for "worker alive but partitioned": its lease
	// expires and reassigns while it keeps executing.
	MuteHeartbeats int

	// FailCompletes: these Complete calls return a transport error
	// without reaching the coordinator (the records park locally).
	FailCompletes []int

	// DuplicateCompletes: these Complete calls are delivered twice —
	// the retransmit race the coordinator must dedup.
	DuplicateCompletes []int
}

// FaultTransport wraps a Transport with a FaultPlan. Counters are
// per-wrapper, so give each worker its own wrapper to script its faults
// independently.
type FaultTransport struct {
	Inner Transport
	Plan  FaultPlan

	mu         sync.Mutex
	claims     int
	heartbeats int
	completes  int
}

// ErrInjected is the error type FaultTransport returns for scripted
// failures, so tests can tell injected faults from real ones.
type ErrInjected struct{ Op string }

func (e ErrInjected) Error() string { return fmt.Sprintf("fabric: injected %s fault", e.Op) }

func hit(list []int, n int) bool {
	for _, v := range list {
		if v == n {
			return true
		}
	}
	return false
}

// Claim implements Transport.
func (f *FaultTransport) Claim(req ClaimRequest) (ClaimResponse, error) {
	f.mu.Lock()
	f.claims++
	n := f.claims
	f.mu.Unlock()
	if hit(f.Plan.FailClaims, n) {
		return ClaimResponse{}, ErrInjected{"claim"}
	}
	return f.Inner.Claim(req)
}

// Heartbeat implements Transport.
func (f *FaultTransport) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	f.mu.Lock()
	f.heartbeats++
	n := f.heartbeats
	f.mu.Unlock()
	if hit(f.Plan.DropHeartbeats, n) || (f.Plan.MuteHeartbeats > 0 && n >= f.Plan.MuteHeartbeats) {
		return HeartbeatResponse{}, ErrInjected{"heartbeat"}
	}
	return f.Inner.Heartbeat(req)
}

// Complete implements Transport.
func (f *FaultTransport) Complete(req CompleteRequest) (CompleteResponse, error) {
	f.mu.Lock()
	f.completes++
	n := f.completes
	f.mu.Unlock()
	if hit(f.Plan.FailCompletes, n) {
		return CompleteResponse{}, ErrInjected{"complete"}
	}
	if hit(f.Plan.DuplicateCompletes, n) {
		if _, err := f.Inner.Complete(req); err != nil {
			return CompleteResponse{}, err
		}
	}
	return f.Inner.Complete(req)
}

// Status implements Transport.
func (f *FaultTransport) Status() (StatusResponse, error) {
	return f.Inner.Status()
}
