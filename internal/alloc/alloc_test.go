package alloc

import (
	"testing"
	"testing/quick"

	"denovosync/internal/proto"
)

func TestRegionNaming(t *testing.T) {
	s := New()
	a := s.Region("alpha")
	b := s.Region("beta")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := s.Region("alpha"); got != a {
		t.Fatal("same name returned different ID")
	}
	if s.Region("default") != 0 {
		t.Fatal("default region is not 0")
	}
}

func TestAllocTagsWords(t *testing.T) {
	s := New()
	r := s.Region("data")
	a := s.Alloc(4, r)
	for i := 0; i < 4; i++ {
		if got := s.RegionOf(a + proto.Addr(i*proto.WordBytes)); got != r {
			t.Fatalf("word %d region = %d, want %d", i, got, r)
		}
	}
	if s.RegionOf(a+16) == r && s.RegionOf(a+16) != 0 {
		t.Fatal("untagged word has a region")
	}
}

func TestAllocAligned(t *testing.T) {
	s := New()
	s.Alloc(3, 0) // misalign the bump pointer
	a := s.AllocAligned(2, 0)
	if a%proto.LineBytes != 0 {
		t.Fatalf("AllocAligned returned %v, not line-aligned", a)
	}
}

func TestAllocPadded(t *testing.T) {
	s := New()
	a := s.AllocPadded(0)
	b := s.AllocPadded(0)
	if a.Line() == b.Line() {
		t.Fatal("padded allocations share a line")
	}
	if a%proto.LineBytes != 0 {
		t.Fatal("padded word not line-aligned")
	}
}

func TestAllocPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	s.Alloc(0, 0)
}

// Property: allocations never overlap, regardless of the sequence of
// sizes and alignment kinds.
func TestAllocNonOverlapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New()
		type span struct{ lo, hi proto.Addr }
		var spans []span
		for _, op := range ops {
			words := int(op%7) + 1
			var a proto.Addr
			switch op % 3 {
			case 0:
				a = s.Alloc(words, 0)
			case 1:
				a = s.AllocAligned(words, 0)
			case 2:
				a = s.AllocPadded(0)
				words = 1
			}
			sp := span{a, a + proto.Addr(words*proto.WordBytes)}
			for _, o := range spans {
				if sp.lo < o.hi && o.lo < sp.hi {
					return false
				}
			}
			spans = append(spans, sp)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUsed(t *testing.T) {
	s := New()
	if s.Used() != 0 {
		t.Fatal("fresh space reports usage")
	}
	s.Alloc(4, 0)
	if s.Used() != 16 {
		t.Fatalf("Used = %d, want 16", s.Used())
	}
}
