// Package alloc provides the simulated shared-memory allocator and the
// software region map. Disciplined software assigns every shared location
// to a region (§3 of the paper); the allocator is where workloads declare
// those assignments, and it serves as the global RegionMapper consulted by
// cores and DeNovo L1 fills.
//
// Allocation is bump-pointer and never reuses addresses, which (a) keeps
// runs deterministic and (b) sidesteps ABA on CAS-based structures the
// same way counted pointers would, without simulating them.
package alloc

import (
	"fmt"

	"denovosync/internal/proto"
)

// base keeps simulated data away from address 0 so a zero value is never a
// valid pointer (lock-free structures use 0 as nil).
const base proto.Addr = 0x1_0000

// Space is a simulated address space with region tagging.
type Space struct {
	next       proto.Addr
	regionOf   map[proto.Addr]proto.RegionID // per word
	regionIDs  map[string]proto.RegionID
	nextRegion proto.RegionID
}

// New returns an empty space. Region 0 ("default") is pre-assigned to all
// otherwise untagged data.
func New() *Space {
	return &Space{
		next:       base,
		regionOf:   make(map[proto.Addr]proto.RegionID),
		regionIDs:  map[string]proto.RegionID{"default": 0},
		nextRegion: 1,
	}
}

// Region returns the region ID for name, allocating one on first use.
func (s *Space) Region(name string) proto.RegionID {
	if id, ok := s.regionIDs[name]; ok {
		return id
	}
	id := s.nextRegion
	if id >= proto.MaxRegions {
		panic("alloc: out of region IDs")
	}
	s.nextRegion++
	s.regionIDs[name] = id
	return id
}

// Alloc reserves words contiguous words tagged with region and returns the
// base address (word-aligned).
func (s *Space) Alloc(words int, region proto.RegionID) proto.Addr {
	if words <= 0 {
		panic("alloc: non-positive size")
	}
	a := s.next
	s.next += proto.Addr(words * proto.WordBytes)
	for i := 0; i < words; i++ {
		s.regionOf[a+proto.Addr(i*proto.WordBytes)] = region
	}
	return a
}

// AllocAligned reserves words words starting on a fresh cache line,
// consuming the remainder of the line as padding (the paper notes most
// software pads lock variables to avoid false sharing).
func (s *Space) AllocAligned(words int, region proto.RegionID) proto.Addr {
	if rem := s.next % proto.LineBytes; rem != 0 {
		s.next += proto.LineBytes - rem
	}
	return s.Alloc(words, region)
}

// AllocPadded reserves a single word alone on its own cache line — the
// padded-lock layout used for all synchronization variables unless a
// workload opts out (the §7.1.1 padding ablation).
func (s *Space) AllocPadded(region proto.RegionID) proto.Addr {
	a := s.AllocAligned(1, region)
	s.next = a + proto.LineBytes // consume the rest of the line
	return a
}

// RegionOf implements proto.RegionMapper.
func (s *Space) RegionOf(a proto.Addr) proto.RegionID {
	return s.regionOf[a.Word()]
}

// Used returns the number of bytes allocated so far.
func (s *Space) Used() uint64 { return uint64(s.next - base) }

// String summarizes the space for diagnostics.
func (s *Space) String() string {
	return fmt.Sprintf("alloc.Space{%d bytes, %d regions}", s.Used(), s.nextRegion)
}

var _ proto.RegionMapper = (*Space)(nil)
