// Package alloc provides the simulated shared-memory allocator and the
// software region map. Disciplined software assigns every shared location
// to a region (§3 of the paper); the allocator is where workloads declare
// those assignments, and it serves as the global RegionMapper consulted by
// cores and DeNovo L1 fills.
//
// Allocation is bump-pointer and never reuses addresses, which (a) keeps
// runs deterministic and (b) sidesteps ABA on CAS-based structures the
// same way counted pointers would, without simulating them.
package alloc

import (
	"fmt"
	"sync/atomic"

	"denovosync/internal/proto"
)

// base keeps simulated data away from address 0 so a zero value is never a
// valid pointer (lock-free structures use 0 as nil).
const base proto.Addr = 0x1_0000

// Lane address layout. Mid-run allocations (lock-free node carving) go
// through per-thread lanes: disjoint bump arenas far above the shared
// space, so no two threads ever touch the same allocator state and the
// addresses a thread draws depend only on its own allocation sequence —
// identical under serial and partitioned execution by construction.
const (
	// laneBase is the first lane address; everything below it belongs to
	// the shared wiring-time space. All lane addresses stay below 2^32:
	// counted-pointer structures (PLJ queue) pack (address, serial) into
	// one 64-bit word with a 32-bit address field.
	laneBase proto.Addr = 1 << 28
	// laneStride is each lane's arena size (1 MiB — ~16k line-padded
	// two-word nodes, far beyond any kernel's appetite).
	laneStride proto.Addr = 1 << 20
	// maxLanes bounds the lane index (thread/core ID); the top lane ends
	// at laneBase + maxLanes*laneStride = 0x5000_0000 < 2^32.
	maxLanes = 1024
)

// lane is one thread's private bump arena. next is touched only by the
// owning thread; regions slots are written by the owner before the
// address escapes and read by any tile at L1-fill time, so they are
// accessed atomically (the values are race-free by the publish chain, the
// atomicity just makes the benign line-granularity prefetch well-defined).
type lane struct {
	next    proto.Addr
	limit   proto.Addr
	regions []uint32 // per word
}

// Space is a simulated address space with region tagging.
type Space struct {
	next       proto.Addr
	regionOf   map[proto.Addr]proto.RegionID // per word
	regionIDs  map[string]proto.RegionID
	nextRegion proto.RegionID

	// lanes[i] is thread i's arena, created by the owner on first use and
	// published through the atomic pointer for cross-tile RegionOf reads.
	lanes [maxLanes]atomic.Pointer[lane]
}

// New returns an empty space. Region 0 ("default") is pre-assigned to all
// otherwise untagged data.
func New() *Space {
	return &Space{
		next:       base,
		regionOf:   make(map[proto.Addr]proto.RegionID),
		regionIDs:  map[string]proto.RegionID{"default": 0},
		nextRegion: 1,
	}
}

// Region returns the region ID for name, allocating one on first use.
func (s *Space) Region(name string) proto.RegionID {
	if id, ok := s.regionIDs[name]; ok {
		return id
	}
	id := s.nextRegion
	if id >= proto.MaxRegions {
		panic("alloc: out of region IDs")
	}
	s.nextRegion++
	s.regionIDs[name] = id
	return id
}

// Alloc reserves words contiguous words tagged with region and returns the
// base address (word-aligned).
func (s *Space) Alloc(words int, region proto.RegionID) proto.Addr {
	if words <= 0 {
		panic("alloc: non-positive size")
	}
	a := s.next
	s.next += proto.Addr(words * proto.WordBytes)
	if s.next > laneBase {
		panic("alloc: shared space collides with lane arenas")
	}
	for i := 0; i < words; i++ {
		s.regionOf[a+proto.Addr(i*proto.WordBytes)] = region
	}
	return a
}

// AllocAligned reserves words words starting on a fresh cache line,
// consuming the remainder of the line as padding (the paper notes most
// software pads lock variables to avoid false sharing).
func (s *Space) AllocAligned(words int, region proto.RegionID) proto.Addr {
	if rem := s.next % proto.LineBytes; rem != 0 {
		s.next += proto.LineBytes - rem
	}
	return s.Alloc(words, region)
}

// AllocPadded reserves a single word alone on its own cache line — the
// padded-lock layout used for all synchronization variables unless a
// workload opts out (the §7.1.1 padding ablation).
func (s *Space) AllocPadded(region proto.RegionID) proto.Addr {
	a := s.AllocAligned(1, region)
	s.next = a + proto.LineBytes // consume the rest of the line
	return a
}

// LaneAllocAligned reserves words words for thread laneID, starting on a
// fresh cache line of the thread's private arena (see the lane layout
// constants). It is the mid-run allocation path: safe to call from
// workload code at any simulated time, in any partitioning.
func (s *Space) LaneAllocAligned(laneID, words int, region proto.RegionID) proto.Addr {
	if laneID < 0 || laneID >= maxLanes {
		panic("alloc: lane ID out of range")
	}
	if words <= 0 {
		panic("alloc: non-positive size")
	}
	ln := s.lanes[laneID].Load()
	if ln == nil {
		start := laneBase + proto.Addr(laneID)*laneStride
		ln = &lane{
			next:    start,
			limit:   start + laneStride,
			regions: make([]uint32, laneStride/proto.WordBytes),
		}
		s.lanes[laneID].Store(ln)
	}
	if rem := ln.next % proto.LineBytes; rem != 0 {
		ln.next += proto.LineBytes - rem
	}
	a := ln.next
	ln.next += proto.Addr(words * proto.WordBytes)
	if ln.next > ln.limit {
		panic("alloc: lane overflow")
	}
	slot := (a - (ln.limit - laneStride)) / proto.WordBytes
	for i := 0; i < words; i++ {
		atomic.StoreUint32(&ln.regions[slot+proto.Addr(i)], uint32(region))
	}
	return a
}

// RegionOf implements proto.RegionMapper.
func (s *Space) RegionOf(a proto.Addr) proto.RegionID {
	w := a.Word()
	if w >= laneBase {
		li := (w - laneBase) / laneStride
		if li >= maxLanes {
			return 0
		}
		ln := s.lanes[li].Load()
		if ln == nil {
			return 0
		}
		start := ln.limit - laneStride
		return proto.RegionID(atomic.LoadUint32(&ln.regions[(w-start)/proto.WordBytes]))
	}
	return s.regionOf[w]
}

// Used returns the number of bytes allocated so far.
func (s *Space) Used() uint64 { return uint64(s.next - base) }

// String summarizes the space for diagnostics.
func (s *Space) String() string {
	return fmt.Sprintf("alloc.Space{%d bytes, %d regions}", s.Used(), s.nextRegion)
}

var _ proto.RegionMapper = (*Space)(nil)
