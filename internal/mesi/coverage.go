package mesi

import (
	"denovosync/internal/cache"
	"denovosync/internal/proto"
)

// Transition-coverage hooks: each protocol handler reports the
// (controller, state, event) pair it fires with to an optional observer,
// using exactly the naming scheme of the static transition atlas
// (internal/lint/atlas, docs/atlas/mesi.json). cmd/protocov aggregates
// these hits across the full kernel grid and gates every implemented
// transition on being either covered or //atlas:unreachable-annotated.
//
// With no observer attached the hooks are a nil check — nothing on the
// hot path allocates or formats.

// Controller names as they appear in atlas tuples.
const (
	CtrlL1  = "mesi.L1"
	CtrlDir = "mesi.Directory"
)

// TransitionObserver receives one (controller, state, event) hit per
// handler activation. state is the atlas constant name ("li", "ls", "le",
// "lm" for L1 lines; "di", "ds", "dm" for directory entries); event is
// the handler name, kind-qualified for access-kind-dispatched handlers
// (e.g. "access:SyncLoad").
type TransitionObserver func(controller, state, event string)

// LineStateName returns the atlas name of an L1 line state.
func LineStateName(s cache.LineState) string {
	switch s {
	case li:
		return "li"
	case ls:
		return "ls"
	case le:
		return "le"
	case lm:
		return "lm"
	}
	return "?"
}

// DirStateName returns the atlas name of a directory state.
func DirStateName(s dirState) string {
	switch s {
	case di:
		return "di"
	case ds:
		return "ds"
	case dm:
		return "dm"
	}
	return "?"
}

// SetTransitionObserver attaches (or with nil, detaches) the coverage
// observer for this L1's handlers.
func (c *L1) SetTransitionObserver(o TransitionObserver) { c.obs = o }

// SetTransitionObserver attaches (or with nil, detaches) the coverage
// observer for the directory's handlers.
func (d *Directory) SetTransitionObserver(o TransitionObserver) { d.obs = o }

// lineState returns the current cached state of line (li if absent).
func (c *L1) lineState(line proto.Addr) cache.LineState {
	if l := c.cache.Lookup(line); l != nil {
		return l.LineState
	}
	return li
}

func (c *L1) observe(s cache.LineState, event string) {
	if c.obs != nil {
		c.obs(CtrlL1, LineStateName(s), event)
	}
}

func (c *L1) observeAccess(s cache.LineState, k proto.AccessKind) {
	if c.obs != nil {
		c.obs(CtrlL1, LineStateName(s), "access:"+k.String())
	}
}

func (d *Directory) observe(s dirState, event string) {
	if d.obs != nil {
		d.obs(CtrlDir, DirStateName(s), event)
	}
}
