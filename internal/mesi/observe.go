package mesi

import (
	"sort"

	"denovosync/internal/cache"
	"denovosync/internal/proto"
)

// Observer hooks: read-only views of controller state for the live
// invariant monitor and the watchdog's diagnostic snapshot
// (internal/chaos, internal/machine). Observers run on the engine
// goroutine between protocol events and must not mutate what they see.

// OutstandingLines returns the lines with an outstanding L1 transaction
// (miss/upgrade in flight), sorted. A line listed here is mid-transition
// and exempt from stable-state invariant checks.
func (c *L1) OutstandingLines() []proto.Addr {
	out := make([]proto.Addr, 0, len(c.txns))
	for line := range c.txns { //simlint:allow determinism: keys are sorted before use
		out = append(out, line)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PendingStoreCount returns the number of issued-but-uncommitted
// non-blocking stores.
func (c *L1) PendingStoreCount() int { return c.pendingStores }

// ForEachLine visits every cached line in deterministic order.
func (c *L1) ForEachLine(fn func(l *cache.Line)) { c.cache.ForEach(fn) }

// IsOwned reports whether s is an ownership state (M or E).
func IsOwned(s cache.LineState) bool { return s == lm || s == le }

// IsShared reports whether s is the Shared state.
func IsShared(s cache.LineState) bool { return s == ls }

// BusyLines returns the lines the directory currently has blocked for an
// in-flight transaction, sorted. A busy line is mid-transition and exempt
// from stable-state invariant checks.
func (d *Directory) BusyLines() []proto.Addr {
	var out []proto.Addr
	d.forEachEntry(func(line proto.Addr, e *dirEntry) {
		if e.busy {
			out = append(out, line)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnerOf returns the core the directory records as line's M-state owner
// (ok = false when the directory holds the line in I or S).
func (d *Directory) OwnerOf(line proto.Addr) (proto.CoreID, bool) {
	e := d.lookup(line)
	if e == nil || e.state != dm || e.owner == nil {
		return 0, false
	}
	return e.owner.id, true
}

// Sharers returns the core IDs the directory lists as sharers of line,
// sorted (empty if the line is unknown or not in the Shared state).
func (d *Directory) Sharers(line proto.Addr) []proto.CoreID {
	e := d.lookup(line)
	if e == nil {
		return nil
	}
	var out []proto.CoreID
	for l1 := range e.sharers { //simlint:allow determinism: keys are sorted before use
		out = append(out, l1.id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
