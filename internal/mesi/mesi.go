// Package mesi implements the baseline protocol of the paper: a full-map
// directory MESI with writer-initiated invalidations, a *blocking*
// directory (as in the GEMS implementation the paper compares against,
// §4.1), and non-blocking data stores at the core (§5.2, for a fair
// comparison with DeNovo).
//
// Structure: each tile has a private L1; the directory lives in the shared
// L2 banks, line-interleaved across tiles. Transactions:
//
//	GetS  — read miss. Directory I→E (exclusive grant), S→add sharer,
//	        M/E→forward to owner, owner downgrades to S and writes back.
//	GetM  — write miss/upgrade. Directory invalidates sharers (acks are
//	        collected at the requestor) or forwards to the owner.
//	PutM/PutE — dirty/clean-exclusive eviction writeback.
//
// The directory blocks a line while a transaction is in flight (requests
// queue behind it) and reopens on the requestor's Unblock — exactly the
// serialization DeNovo's non-blocking registry avoids.
package mesi

import (
	"denovosync/internal/cache"
	"denovosync/internal/mem"
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// L1 line states (cache.Line.LineState). Typed so that simlint's
// exhauststate analyzer verifies every switch over a line state covers all
// four (or panics explicitly): a fifth state added for a protocol
// extension can then never silently fall through a transition.
const (
	li cache.LineState = iota // Invalid (also: line absent)
	ls                        // Shared
	le                        // Exclusive clean
	lm                        // Modified
)

// Config wires a MESI system together.
type Config struct {
	Eng   *sim.Engine
	Net   *noc.Network
	Store *mem.Store
	DRAM  *mem.DRAM

	// EngAt, when non-nil, maps a node to the engine of the logical
	// process owning it (partitioned machines); nil means Eng drives
	// everything. Controllers resolve their engine once, at wiring time.
	EngAt func(proto.NodeID) *sim.Engine

	L1Size, L1Ways int

	// Latencies (cycles): L1 access, L2/directory access, remote-L1 tag
	// access for forwarded requests. Fitted to Table 1 (1 / 27 / 9).
	L1AccessLat, L2AccessLat, RemoteL1Lat sim.Cycle
}

// engAt resolves the engine driving node.
func (cfg *Config) engAt(node proto.NodeID) *sim.Engine {
	if cfg.EngAt != nil {
		return cfg.EngAt(node)
	}
	return cfg.Eng
}

// txn is an outstanding L1 miss (one per line).
type txn struct {
	line     proto.Addr
	wantM    bool
	dataRecv bool
	excl     bool // exclusive grant (GetS → E)
	unblock  bool // the directory blocked for this txn and awaits Unblock
	acksNeed int  // -1 until the Data/AckCount message announces the count
	acksGot  int
	epoch    uint64 // directory grant epoch (exclusive grants only)
	waiters  []func()

	// cap bounds the state a delayed grant may still install (li < ls <
	// lm). Non-blocking GetS grants (directory E/S grants served from
	// I/S, which reopen the line immediately) can be overtaken by an
	// invalidation or an owner-forward from a transaction the directory
	// serialized *after* the grant — message classes only preserve
	// per-class point-to-point order. The classic IS_D-receives-Inv
	// race: the core must ack (and respond to forwards) right away, and
	// its late fill must then complete the stalled loads without
	// re-installing the ownership the later transaction already took.
	cap cache.LineState
}

// L1 is one core's private MESI cache controller.
type L1 struct {
	cfg  *Config
	eng  *sim.Engine // the engine driving this tile (cfg.engAt(node))
	id   proto.CoreID
	node proto.NodeID
	dir  *Directory

	cache *cache.Cache
	txns  map[proto.Addr]*txn

	pendingStores int
	drainWaiters  []func()

	// storeFwd is the store→load forwarding buffer: per word, the values of
	// this core's in-flight non-blocking stores, oldest first. A store that
	// misses (e.g. an S→M upgrade) retires at the core long before its
	// coherence transaction commits the value to the line; a younger load
	// from the same core must still see it (single-thread program order), so
	// the hit check consults this buffer before the cached snapshot.
	storeFwd map[proto.Addr][]uint64

	epochs   map[proto.Addr]uint64 // per line, disturbance counter (WaitDisturb)
	disturbs map[proto.Addr][]func()

	// ownEpoch records, per E/M-resident line, the directory epoch of the
	// exclusive grant that installed it. Evictions return it on the Put so
	// the directory can tell a current writeback from a stale one (see
	// Directory.recvPut). Distinct from `epochs` above, which counts local
	// disturbances for sync-load retry wakeups.
	ownEpoch map[proto.Addr]uint64

	// obs, when set, receives one (controller, state, event) hit per
	// handler activation (see coverage.go).
	//lpisolate:boundary(Set*-injected coverage observer; read-only by contract, enforced by simlint observerpurity)
	obs TransitionObserver

	stats proto.L1Stats
}

// NewL1 constructs the L1 for core id on node node.
func NewL1(cfg *Config, id proto.CoreID, node proto.NodeID) *L1 {
	return &L1{
		cfg:      cfg,
		eng:      cfg.engAt(node),
		id:       id,
		node:     node,
		cache:    cache.New(cfg.L1Size, cfg.L1Ways),
		txns:     make(map[proto.Addr]*txn),
		epochs:   make(map[proto.Addr]uint64),
		ownEpoch: make(map[proto.Addr]uint64),
		disturbs: make(map[proto.Addr][]func()),
		storeFwd: make(map[proto.Addr][]uint64),
	}
}

// SetDirectory wires the shared directory (after construction).
func (c *L1) SetDirectory(d *Directory) { c.dir = d }

// Stats returns the hit/miss counters.
func (c *L1) Stats() *proto.L1Stats { return &c.stats }

// BackoffStallCycles is always zero for MESI (no hardware backoff).
func (c *L1) BackoffStallCycles() sim.Cycle { return 0 }

// SelfInvalidate is a no-op: MESI relies on writer-initiated invalidations.
func (c *L1) SelfInvalidate(proto.RegionSet) {}

// SignatureRelease is a no-op on MESI (no self-invalidation to direct).
func (c *L1) SignatureRelease(proto.Addr) {}

// SignatureAcquire is a no-op on MESI.
func (c *L1) SignatureAcquire(proto.Addr) {}

// Epoch returns the disturbance counter for addr's line.
func (c *L1) Epoch(addr proto.Addr) uint64 { return c.epochs[addr.Line()] }

// WaitDisturb calls fn when the line's epoch moves past epoch.
func (c *L1) WaitDisturb(addr proto.Addr, epoch uint64, fn func()) {
	line := addr.Line()
	if c.epochs[line] != epoch {
		c.eng.Schedule(0, fn)
		return
	}
	c.disturbs[line] = append(c.disturbs[line], fn)
}

func (c *L1) disturb(line proto.Addr) {
	c.epochs[line]++
	ws := c.disturbs[line]
	if len(ws) == 0 {
		return
	}
	delete(c.disturbs, line)
	for _, fn := range ws {
		c.eng.Schedule(0, fn)
	}
}

// OnWritesDrained calls fn once all non-blocking stores have committed.
func (c *L1) OnWritesDrained(fn func()) {
	if c.pendingStores == 0 {
		c.eng.Schedule(0, fn)
		return
	}
	c.drainWaiters = append(c.drainWaiters, fn)
}

// popStoreFwd retires the oldest forwarding-buffer entry for word. Stores
// to one word commit in issue order (same-line transactions serialize
// through the txn waiter list), so FIFO retirement matches commit order.
func (c *L1) popStoreFwd(word proto.Addr) {
	vs := c.storeFwd[word]
	if len(vs) <= 1 {
		delete(c.storeFwd, word)
		return
	}
	c.storeFwd[word] = vs[1:]
}

func (c *L1) storeCommitted() {
	c.pendingStores--
	if c.pendingStores == 0 {
		ws := c.drainWaiters
		c.drainWaiters = nil
		for _, fn := range ws {
			c.eng.Schedule(0, fn)
		}
	}
}

// Access starts a memory access (see proto.L1Controller).
func (c *L1) Access(req *proto.Request) {
	if req.Kind == proto.DataStore || req.Kind == proto.SyncStore {
		// Non-blocking store (§5.2: the GEMS MESI was modified to support
		// non-blocking writes for a fair comparison with DeNovo): the core
		// retires it after the L1 access cycle; the coherence transaction
		// — including the invalidation fan-out — completes in the
		// background. The invalidation latency still lands on the critical
		// path of the *next* acquirer, per §6.1.1.
		c.pendingStores++
		word := req.Addr.Word()
		c.storeFwd[word] = append(c.storeFwd[word], req.Value)
		done := req.Done
		c.eng.Schedule(c.cfg.L1AccessLat, func() { done(0) })
		c.access(req, func(uint64) {
			c.popStoreFwd(word)
			c.storeCommitted()
		}, true)
		return
	}
	c.access(req, req.Done, true)
}

// access runs one attempt; commit fires exactly once at protocol commit.
// first distinguishes the initial issue (charged an L1 access cycle and
// counted in hit/miss stats) from post-miss retries.
func (c *L1) access(req *proto.Request, commit func(uint64), first bool) {
	line := c.cache.Lookup(req.Addr)
	state := li
	if line != nil {
		state = line.LineState
	}
	c.observeAccess(state, req.Kind)
	wi := req.Addr.WordIndex()

	finish := func(v uint64) {
		if first {
			c.eng.Schedule(c.cfg.L1AccessLat, func() { commit(v) })
		} else {
			commit(v)
		}
	}

	switch req.Kind {
	case proto.DataLoad, proto.SyncLoad:
		// Store→load forwarding: the youngest in-flight store to this word
		// from this core supplies the value, whatever the line state — the
		// cached snapshot may predate the store's still-uncommitted upgrade.
		if vs := c.storeFwd[req.Addr.Word()]; len(vs) > 0 {
			if first {
				c.stats.Hit(req.Kind)
			}
			finish(vs[len(vs)-1])
			return
		}
		if state != li {
			if first {
				c.stats.Hit(req.Kind)
			}
			c.cache.Touch(line)
			finish(line.Values[wi])
			return
		}
	case proto.DataStore, proto.SyncStore, proto.SyncRMW:
		if state == lm || state == le {
			if first {
				c.stats.Hit(req.Kind)
			}
			line.LineState = lm // silent E→M upgrade
			c.cache.Touch(line)
			old := c.cfg.Store.Read(req.Addr)
			switch req.Kind {
			case proto.SyncRMW:
				if nv, doStore := req.RMW(old); doStore {
					line.Values[wi] = nv
					c.cfg.Store.Write(req.Addr, nv)
				}
				finish(old)
			default:
				line.Values[wi] = req.Value
				c.cfg.Store.Write(req.Addr, req.Value)
				finish(0)
			}
			return
		}
	}

	// Miss.
	if first {
		c.stats.Miss(req.Kind)
	}
	wantM := req.Kind.IsWrite()
	retry := func() { c.access(req, commit, false) }
	if t, ok := c.txns[req.Addr.Line()]; ok {
		t.waiters = append(t.waiters, retry)
		return
	}
	t := &txn{line: req.Addr.Line(), wantM: wantM, acksNeed: -1, cap: lm}
	t.waiters = append(t.waiters, retry)
	c.txns[t.line] = t
	class := proto.ClassLD
	if wantM {
		class = proto.ClassST
	}
	c.eng.Schedule(c.cfg.L1AccessLat, func() {
		dirNode := c.dir.NodeFor(t.line)
		c.cfg.Net.Send(c.node, dirNode, class, proto.CtrlFlits, func() {
			if wantM {
				c.dir.recvGetM(t.line, c)
			} else {
				c.dir.recvGetS(t.line, c)
			}
		})
	})
}

// recvData handles the data (or ack-count) grant of an outstanding miss.
// epoch is the directory's grant epoch for exclusive grants (E or M), zero
// for plain Shared fills; the L1 returns it on a later eviction Put.
func (c *L1) recvData(line proto.Addr, acks int, excl, unblock bool, epoch uint64) {
	t := c.txns[line]
	if t == nil {
		panic("mesi: data for absent transaction")
	}
	c.observe(c.lineState(line), "recvData")
	t.dataRecv = true
	t.excl = excl
	t.unblock = unblock
	t.acksNeed = acks
	t.epoch = epoch
	c.maybeComplete(t)
}

// recvInvAck counts an invalidation ack collected at the requestor.
func (c *L1) recvInvAck(line proto.Addr) {
	t := c.txns[line]
	if t == nil {
		panic("mesi: inv-ack for absent transaction")
	}
	c.observe(c.lineState(line), "recvInvAck")
	t.acksGot++
	c.maybeComplete(t)
}

//atlas:unreachable mesi.L1 le maybeComplete: a resident E line never has a miss transaction outstanding — misses issue only from I or S
//atlas:unreachable mesi.L1 lm maybeComplete: a resident M line never has a miss transaction outstanding — misses issue only from I or S
func (c *L1) maybeComplete(t *txn) {
	if !t.dataRecv || t.acksNeed < 0 || t.acksGot < t.acksNeed {
		return
	}
	c.observe(c.lineState(t.line), "maybeComplete")
	delete(c.txns, t.line)

	// Install, reusing the resident line on an S→M upgrade, otherwise
	// evicting a victim. Snapshot committed values at fill time.
	v := c.cache.Lookup(t.line)
	if v == nil {
		v = c.cache.Victim(t.line)
		if v.Present {
			c.evict(v)
		}
		c.cache.Install(v, t.line)
	} else {
		c.cache.Touch(v)
	}
	st := ls
	switch {
	case t.wantM:
		st = lm
	case t.excl:
		st = le
	}
	// A grant overtaken by a later-serialized invalidation or forward
	// (see txn.cap) must not re-install the state that transaction took
	// away. A cap of li still installs Shared for the duration of this
	// event so the stalled loads below hit the fill once; the line is
	// dropped before any other event can observe it.
	useOnce := false
	if !t.wantM && t.cap < st {
		st = t.cap
		if st == li {
			st, useOnce = ls, true
		}
	}
	v.LineState = st
	vals := c.cfg.Store.ReadLine(t.line)
	v.Values = vals
	if st == lm || st == le {
		c.ownEpoch[t.line] = t.epoch
	} else {
		delete(c.ownEpoch, t.line)
	}

	// Reopen the directory (ownership-transfer transactions only), then
	// rerun the stalled accesses.
	if t.unblock {
		class := proto.ClassLD
		if t.wantM {
			class = proto.ClassST
		}
		c.cfg.Net.Send(c.node, c.dir.NodeFor(t.line), class, proto.CtrlFlits, func() {
			c.dir.recvUnblock(t.line)
		})
	}
	for _, w := range t.waiters {
		w()
	}
	if useOnce {
		if l := c.cache.Lookup(t.line); l != nil && l.LineState == ls {
			c.cache.Evict(l)
			c.disturb(t.line)
		}
	}
}

// evict removes a victim line, writing back M (data) or E (clean notice).
//
//atlas:unreachable mesi.L1 li evict: present victims are never Invalid — invalidations and downgrades remove the line outright, so capacity victims are always S/E/M
func (c *L1) evict(v *cache.Line) {
	line := v.Addr
	state := v.LineState
	c.observe(state, "evict")
	c.cache.Evict(v)
	c.stats.Evicted++
	c.disturb(line)
	if state == lm || state == le {
		ep := c.ownEpoch[line]
		delete(c.ownEpoch, line)
		flits := proto.CtrlFlits
		if state == lm {
			flits = proto.LineDataFlits
			c.stats.WB++
		}
		c.cfg.Net.Send(c.node, c.dir.NodeFor(line), proto.ClassWB, flits, func() {
			c.dir.recvPut(line, c, state == lm, ep)
		})
	}
}

// recvInv handles a directory invalidation on behalf of requestor req:
// drop the line (if present) and ack directly to the requestor.
func (c *L1) recvInv(line proto.Addr, req *L1) {
	c.observe(c.lineState(line), "recvInv")
	if l := c.cache.Lookup(line); l != nil {
		c.cache.Evict(l)
		c.disturb(line)
	}
	delete(c.ownEpoch, line)
	// An invalidation overlapping our own read miss kills the in-flight
	// grant (see txn.cap). Write misses are exempt: the directory blocks
	// on GetM, so an overlapping invalidation can only stem from an
	// *earlier* write that targeted our stale Shared copy — our own
	// grant, serialized later, stays good.
	if t := c.txns[line]; t != nil && !t.wantM {
		t.cap = li
	}
	c.cfg.Net.Send(c.node, req.node, proto.ClassInv, proto.CtrlFlits, func() {
		req.recvInvAck(line)
	})
}

// recvFwdGetS services a read forwarded by the directory: downgrade to S,
// send data to the requestor and the writeback/ack to the directory. If the
// line is gone (eviction raced the forward) respond from the committed
// image; the directory's later PutM from us will be recognized as stale.
//
//atlas:unreachable mesi.L1 ls recvFwdGetS: the directory forwards GetS only to the pending exclusive owner and blocks until the handoff acks, so the target is E, M, or already evicted — never observed in S
func (c *L1) recvFwdGetS(line proto.Addr, req *L1) {
	c.eng.Schedule(c.cfg.RemoteL1Lat, func() {
		c.observe(c.lineState(line), "recvFwdGetS")
		wbFlits := proto.CtrlFlits
		if l := c.cache.Lookup(line); l != nil && (l.LineState == lm || l.LineState == le) {
			if l.LineState == lm {
				wbFlits = proto.LineDataFlits
			}
			l.LineState = ls
			delete(c.ownEpoch, line) // S evictions are silent: no Put to stamp
		}
		// The forward chases an exclusive grant whose fill is still in
		// flight: the late fill may install at most Shared (txn.cap).
		if t := c.txns[line]; t != nil && !t.wantM && t.cap > ls {
			t.cap = ls
		}
		c.cfg.Net.Send(c.node, req.node, proto.ClassLD, proto.LineDataFlits, func() {
			req.recvData(line, 0, false, true, 0)
		})
		c.cfg.Net.Send(c.node, c.dir.NodeFor(line), proto.ClassWB, wbFlits, func() {
			c.dir.recvOwnerAck(line)
		})
	})
}

// recvFwdGetM services a write forwarded by the directory: invalidate and
// send data to the requestor. epoch is the directory's grant epoch for the
// requestor's new ownership (the data response doubles as the grant).
func (c *L1) recvFwdGetM(line proto.Addr, req *L1, epoch uint64) {
	c.eng.Schedule(c.cfg.RemoteL1Lat, func() {
		c.observe(c.lineState(line), "recvFwdGetM")
		if l := c.cache.Lookup(line); l != nil {
			c.cache.Evict(l)
			c.disturb(line)
		}
		delete(c.ownEpoch, line)
		// The forward chases an exclusive grant whose fill is still in
		// flight: the new writer owns the line now, so the late fill
		// must not install at all (txn.cap).
		if t := c.txns[line]; t != nil && !t.wantM {
			t.cap = li
		}
		c.cfg.Net.Send(c.node, req.node, proto.ClassST, proto.LineDataFlits, func() {
			req.recvData(line, 0, false, true, epoch)
		})
	})
}

var _ proto.L1Controller = (*L1)(nil)
