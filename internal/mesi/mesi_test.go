package mesi

import (
	"testing"

	"denovosync/internal/mem"
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// mini builds a 4-tile MESI system without cores (direct controller tests).
func mini() (*sim.Engine, *Directory, []*L1) {
	eng := sim.NewEngine()
	net := noc.New(eng, noc.Mesh{W: 2, H: 2}, 10, 3)
	store := mem.NewStore()
	dram := mem.NewDRAM(eng, net, 169)
	cfg := &Config{
		Eng: eng, Net: net, Store: store, DRAM: dram,
		L1Size: 1024, L1Ways: 2,
		L1AccessLat: 1, L2AccessLat: 27, RemoteL1Lat: 9,
	}
	dir := NewDirectory(cfg, 4)
	var l1s []*L1
	for i := 0; i < 4; i++ {
		l1 := NewL1(cfg, proto.CoreID(i), proto.NodeID(i))
		l1.SetDirectory(dir)
		l1s = append(l1s, l1)
	}
	return eng, dir, l1s
}

func TestDirectoryNodeFor(t *testing.T) {
	_, dir, _ := mini()
	seen := map[proto.NodeID]bool{}
	for i := 0; i < 8; i++ {
		seen[dir.NodeFor(proto.Addr(i*proto.LineBytes))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("lines interleave over %d banks, want 4", len(seen))
	}
}

// TestReadThenWriteTransitions drives GetS → E, silent E→M upgrade, and a
// remote GetM forward through the raw controllers.
func TestReadThenWriteTransitions(t *testing.T) {
	eng, dir, l1s := mini()
	addr := proto.Addr(0x100)
	var val uint64
	done := 0
	l1s[0].Access(&proto.Request{Kind: proto.DataLoad, Addr: addr, Done: func(v uint64) { val = v; done++ }})
	eng.Run(0)
	if done != 1 {
		t.Fatal("load never completed")
	}
	if st, owner, _, busy := dir.StateOf(addr.Line()); st != byte(dm) || owner != 0 || busy {
		t.Fatalf("after exclusive read: state=%d owner=%d busy=%t", st, owner, busy)
	}
	_ = val
	// Silent E→M upgrade on write.
	l1s[0].Access(&proto.Request{Kind: proto.DataStore, Addr: addr, Value: 7, Done: func(uint64) { done++ }})
	eng.Run(0)
	if l1s[0].cfg.Store.Read(addr) != 7 {
		t.Fatal("write hit lost")
	}
	// Remote write: FwdGetM invalidates core 0.
	l1s[1].Access(&proto.Request{Kind: proto.SyncStore, Addr: addr, Value: 9, Done: func(uint64) { done++ }})
	eng.Run(0)
	if st, owner, _, busy := dir.StateOf(addr.Line()); st != byte(dm) || owner != 1 || busy {
		t.Fatalf("after remote write: state=%d owner=%d busy=%t", st, owner, busy)
	}
	if l := l1s[0].cache.Lookup(addr); l != nil && l.LineState != li {
		t.Fatal("previous owner not invalidated")
	}
	if err := dir.Validate(l1s); err != nil {
		t.Fatal(err)
	}
}

// TestSharersThenInvalidate: readers populate the sharer set; a writer's
// invalidations clear it and the acks complete at the requestor.
func TestSharersThenInvalidate(t *testing.T) {
	eng, dir, l1s := mini()
	addr := proto.Addr(0x200)
	for _, c := range l1s[:3] {
		c.Access(&proto.Request{Kind: proto.DataLoad, Addr: addr, Done: func(uint64) {}})
		eng.Run(0)
	}
	if st, _, sharers, _ := dir.StateOf(addr.Line()); st != byte(ds) || sharers != 3 {
		t.Fatalf("after three reads: state=%d sharers=%d", st, sharers)
	}
	doneW := false
	l1s[3].Access(&proto.Request{Kind: proto.SyncRMW, Addr: addr,
		RMW:  func(old uint64) (uint64, bool) { return old + 1, true },
		Done: func(uint64) { doneW = true }})
	eng.Run(0)
	if !doneW {
		t.Fatal("RMW never completed (ack collection broken)")
	}
	if st, owner, sharers, _ := dir.StateOf(addr.Line()); st != byte(dm) || owner != 3 || sharers != 0 {
		t.Fatalf("after invalidating write: state=%d owner=%d sharers=%d", st, owner, sharers)
	}
	for _, c := range l1s[:3] {
		if l := c.cache.Lookup(addr); l != nil && l.LineState != li {
			t.Fatal("stale sharer copy survived")
		}
	}
	if err := dir.Validate(l1s); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesCorruption: the invariant checker flags a hand-broken
// double-owner state.
func TestValidateCatchesCorruption(t *testing.T) {
	eng, dir, l1s := mini()
	addr := proto.Addr(0x300)
	l1s[0].Access(&proto.Request{Kind: proto.DataStore, Addr: addr, Value: 1, Done: func(uint64) {}})
	eng.Run(0)
	// Forge a second M copy.
	v := l1s[1].cache.Victim(addr)
	l1s[1].cache.Install(v, addr)
	v.LineState = lm
	if err := dir.Validate(l1s); err == nil {
		t.Fatal("validator accepted two M copies")
	}
}

// TestBackoffStallAlwaysZero: MESI reports no hardware backoff.
func TestBackoffStallAlwaysZero(t *testing.T) {
	_, _, l1s := mini()
	if l1s[0].BackoffStallCycles() != 0 {
		t.Fatal("MESI reported backoff stalls")
	}
	l1s[0].SelfInvalidate(proto.AllRegions) // no-op must not panic
	l1s[0].SignatureAcquire(0x40)
	l1s[0].SignatureRelease(0x40)
}
