package mesi

import (
	"sort"

	"denovosync/internal/proto"
)

// dirState is the directory's per-line stable state. Typed so that
// simlint's exhauststate analyzer verifies transition switches cover every
// declared state.
type dirState byte

// Directory state per line.
const (
	di dirState = iota // no cached copies
	ds                 // shared, sharer list valid
	dm                 // owned (E or M at the owner)
)

type dirPending struct {
	req   *L1
	wantM bool
}

type dirEntry struct {
	resident bool // line present in the L2 (cold misses fetch from DRAM)
	state    dirState
	owner    *L1
	epoch    uint64 // bumped per exclusive grant; Puts return it (see recvPut)
	sharers  map[*L1]bool
	busy     bool
	needAcks int // completion messages outstanding for the current txn
	queue    []dirPending
}

// Directory is the shared L2: home for every line, full-map sharer
// tracking, blocking per-line transactions. Banks are line-interleaved
// across tiles; bank placement only affects message distances.
type Directory struct {
	cfg   *Config
	tiles int
	// entries is sharded per home bank: entries[b] holds the lines whose
	// L2 bank is tile b, and is touched only by events running at that
	// tile — so a partitioned machine needs no locking around it.
	entries []map[proto.Addr]*dirEntry

	// obs, when set, receives one (controller, state, event) hit per
	// handler activation (see coverage.go).
	//lpisolate:boundary(Set*-injected coverage observer; read-only by contract, enforced by simlint observerpurity)
	obs TransitionObserver
}

// NewDirectory creates the directory for a tiles-tile system.
func NewDirectory(cfg *Config, tiles int) *Directory {
	d := &Directory{cfg: cfg, tiles: tiles, entries: make([]map[proto.Addr]*dirEntry, tiles)}
	for i := range d.entries {
		d.entries[i] = make(map[proto.Addr]*dirEntry)
	}
	return d
}

// NodeFor returns the tile node hosting line's L2 bank.
func (d *Directory) NodeFor(line proto.Addr) proto.NodeID {
	return proto.NodeID(int(line/proto.LineBytes) % d.tiles)
}

// lookup returns line's entry without creating it (nil if unknown).
func (d *Directory) lookup(line proto.Addr) *dirEntry {
	return d.entries[int(line/proto.LineBytes)%d.tiles][line]
}

// forEachEntry visits every entry across all banks (diagnostics and
// validation only; callers sort whatever they collect).
func (d *Directory) forEachEntry(fn func(proto.Addr, *dirEntry)) {
	for _, bank := range d.entries {
		for line, e := range bank { //simlint:allow determinism: callers sort collected keys
			fn(line, e)
		}
	}
}

func (d *Directory) entry(line proto.Addr) *dirEntry {
	bank := d.entries[int(line/proto.LineBytes)%d.tiles]
	e := bank[line]
	if e == nil {
		e = &dirEntry{sharers: make(map[*L1]bool)}
		bank[line] = e
	}
	return e
}

func (d *Directory) recvGetS(line proto.Addr, req *L1) { d.enqueue(line, dirPending{req, false}) }
func (d *Directory) recvGetM(line proto.Addr, req *L1) { d.enqueue(line, dirPending{req, true}) }

func (d *Directory) enqueue(line proto.Addr, p dirPending) {
	e := d.entry(line)
	e.queue = append(e.queue, p)
	d.maybeStart(line, e)
}

func (d *Directory) maybeStart(line proto.Addr, e *dirEntry) {
	if e.busy || len(e.queue) == 0 {
		return
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	e.busy = true
	class := proto.ClassLD
	if p.wantM {
		class = proto.ClassST
	}
	// Directory/L2 access latency, then a cold fetch if needed — on the
	// home bank's engine (the request was delivered at the home tile).
	d.cfg.engAt(d.NodeFor(line)).Schedule(d.cfg.L2AccessLat, func() {
		if !e.resident {
			d.cfg.DRAM.Fetch(d.NodeFor(line), line, class, func() {
				e.resident = true
				d.service(line, e, p)
			})
			return
		}
		d.service(line, e, p)
	})
}

// service dispatches the transaction at the head of the line's queue to
// the per-event handler (the state/event transition nests the atlas
// extractor walks; see internal/lint/atlas).
func (d *Directory) service(line proto.Addr, e *dirEntry, p dirPending) {
	if p.wantM {
		d.serviceGetM(line, e, p.req)
	} else {
		d.serviceGetS(line, e, p.req)
	}
}

// serviceGetS handles a read request at the directory.
func (d *Directory) serviceGetS(line proto.Addr, e *dirEntry, req *L1) {
	node := d.NodeFor(line)
	d.observe(e.state, "serviceGetS")
	switch e.state {
	case di:
		// Exclusive grant (the E state of MESI). Reads serviced from
		// the directory involve no ownership transfer and no pending
		// invalidations, so they complete without blocking the line.
		e.state = dm
		e.owner = req
		e.epoch++
		e.busy = false
		ep := e.epoch
		d.cfg.Net.Send(node, req.node, proto.ClassLD, proto.LineDataFlits, func() {
			req.recvData(line, 0, true, false, ep)
		})
		d.maybeStart(line, e)
	case ds:
		e.sharers[req] = true
		e.busy = false
		d.cfg.Net.Send(node, req.node, proto.ClassLD, proto.LineDataFlits, func() {
			req.recvData(line, 0, false, false, 0)
		})
		d.maybeStart(line, e)
	case dm:
		owner := e.owner
		e.state = ds
		e.sharers = map[*L1]bool{owner: true, req: true}
		e.owner = nil
		e.needAcks = 2 // owner's writeback/ack + requestor's Unblock
		d.cfg.Net.Send(node, owner.node, proto.ClassLD, proto.CtrlFlits, func() {
			owner.recvFwdGetS(line, req)
		})
	}
}

// serviceGetM handles a write/upgrade request at the directory.
func (d *Directory) serviceGetM(line proto.Addr, e *dirEntry, req *L1) {
	node := d.NodeFor(line)
	d.observe(e.state, "serviceGetM")
	switch e.state {
	case di:
		e.state = dm
		e.owner = req
		e.epoch++
		e.needAcks = 1
		ep := e.epoch
		d.cfg.Net.Send(node, req.node, proto.ClassST, proto.LineDataFlits, func() {
			req.recvData(line, 0, false, true, ep)
		})
	case ds:
		invs := 0
		wasSharer := e.sharers[req]
		// Deterministic invalidation order (sorted by core ID): map
		// iteration order must never leak into simulated timing.
		var ss []*L1
		for s := range e.sharers { //simlint:allow determinism: sharers are sorted by core ID below
			if s != req {
				ss = append(ss, s)
			}
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].id < ss[j].id })
		for _, s := range ss {
			invs++
			s := s
			d.cfg.Net.Send(node, s.node, proto.ClassInv, proto.CtrlFlits, func() {
				s.recvInv(line, req)
			})
		}
		e.state = dm
		e.owner = req
		e.epoch++
		e.sharers = make(map[*L1]bool)
		e.needAcks = 1
		// If the requestor already holds the line in S, only the ack count
		// travels (no data); otherwise a full data response.
		flits := proto.LineDataFlits
		if wasSharer {
			flits = proto.CtrlFlits
		}
		n := invs
		ep := e.epoch
		d.cfg.Net.Send(node, req.node, proto.ClassST, flits, func() {
			req.recvData(line, n, false, true, ep)
		})
	case dm:
		owner := e.owner
		e.owner = req
		e.epoch++
		e.needAcks = 1
		ep := e.epoch
		d.cfg.Net.Send(node, owner.node, proto.ClassST, proto.CtrlFlits, func() {
			owner.recvFwdGetM(line, req, ep)
		})
	}
}

// recvUnblock ends the requestor's part of the current transaction.
func (d *Directory) recvUnblock(line proto.Addr) { d.complete(line) }

// recvOwnerAck ends the previous owner's part of a forwarded GetS.
func (d *Directory) recvOwnerAck(line proto.Addr) { d.complete(line) }

func (d *Directory) complete(line proto.Addr) {
	e := d.entry(line)
	if !e.busy {
		panic("mesi: completion for idle directory entry")
	}
	d.observe(e.state, "complete")
	e.needAcks--
	if e.needAcks > 0 {
		return
	}
	e.busy = false
	d.maybeStart(line, e)
}

// recvPut handles an eviction writeback. Stale writebacks (the owner lost
// the line to a forwarded request that raced the Put) are acknowledged
// without touching state. Staleness cannot be judged by sender identity
// alone: an owner that evicts (its Put in flight on the writeback class)
// and then re-acquires the same line is the legitimate owner again by the
// time the old Put lands, and clearing the entry then leaves that core
// holding E/M while the directory records no owner — the next exclusive
// grant mints a second owner (a SWMR violation, found by scenfuzz). Each
// exclusive grant therefore carries an epoch, and a Put retires the entry
// only when it returns the epoch of the *current* grant.
func (d *Directory) recvPut(line proto.Addr, from *L1, dirty bool, epoch uint64) {
	e := d.entry(line)
	d.observe(e.state, "recvPut")
	if !e.busy && e.state == dm && e.owner == from && e.epoch == epoch {
		e.state = di
		e.owner = nil
	}
	_ = dirty // data value lives in the committed store
	// PutAck (the L1 keeps no writeback buffer: committed values are
	// always recoverable, so the ack needs no handler).
	d.cfg.Net.Send(d.NodeFor(line), from.node, proto.ClassWB, proto.CtrlFlits, func() {})
}

// StateOf exposes directory state for invariant checks in tests:
// returns (state, ownerID or -1, sharer count, busy).
func (d *Directory) StateOf(line proto.Addr) (byte, proto.CoreID, int, bool) {
	e := d.lookup(line)
	if e == nil {
		return byte(di), -1, 0, false
	}
	owner := proto.CoreID(-1)
	if e.owner != nil {
		owner = e.owner.id
	}
	return byte(e.state), owner, len(e.sharers), e.busy
}
