package mesi

import (
	"fmt"
	"sort"

	"denovosync/internal/cache"
	"denovosync/internal/proto"
)

// Validate checks the protocol's stable-state invariants across the whole
// system at quiescence (no outstanding transactions). Machines run it
// automatically at the end of every simulation, so every workload doubles
// as an invariant test:
//
//   - at most one M/E copy per line, and never alongside S copies;
//   - the directory's owner field names the L1 that actually holds M/E;
//   - every L1 holding a line in S appears in the directory's sharer set
//     (stale extra sharers are legal — silent S eviction — but a missing
//     sharer would lose an invalidation);
//   - cached values of owned (M/E) words match the committed image;
//   - no L1 has an outstanding transaction and the directory is idle.
func (d *Directory) Validate(l1s []*L1) error {
	type holder struct {
		owners  []proto.CoreID
		sharers []proto.CoreID
	}
	lines := map[proto.Addr]*holder{}
	for _, c := range l1s {
		if len(c.txns) != 0 {
			return fmt.Errorf("mesi: L1 %d has %d outstanding transactions at quiescence", c.id, len(c.txns))
		}
		var err error
		c.cache.ForEach(func(l *cache.Line) {
			h := lines[l.Addr]
			if h == nil {
				h = &holder{}
				lines[l.Addr] = h
			}
			switch l.LineState {
			case lm, le:
				h.owners = append(h.owners, c.id)
				for i := 0; i < proto.WordsPerLine; i++ {
					a := l.Addr + proto.Addr(i*proto.WordBytes)
					if l.Values[i] != d.cfg.Store.Read(a) {
						err = fmt.Errorf("mesi: owned word %v at core %d diverges from committed image", a, c.id)
					}
				}
			case ls:
				h.sharers = append(h.sharers, c.id)
			case li:
				// Present lines are never left Invalid: Install is always
				// immediately followed by a state assignment.
				err = fmt.Errorf("mesi: present line %v at core %d is Invalid", l.Addr, c.id)
			default:
				panic("mesi: unknown line state")
			}
		})
		if err != nil {
			return err
		}
	}
	// Report errors in a fixed line order: which violation surfaces first
	// must not depend on map iteration order.
	addrs := make([]proto.Addr, 0, len(lines))
	for line := range lines { //simlint:allow determinism: keys are sorted before use
		addrs = append(addrs, line)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, line := range addrs {
		h := lines[line]
		if len(h.owners) > 1 {
			return fmt.Errorf("mesi: line %v owned by %v", line, h.owners)
		}
		if len(h.owners) == 1 && len(h.sharers) > 0 {
			return fmt.Errorf("mesi: line %v owned by %d with sharers %v", line, h.owners[0], h.sharers)
		}
		e := d.lookup(line)
		if e == nil {
			if len(h.owners)+len(h.sharers) > 0 {
				return fmt.Errorf("mesi: line %v cached but unknown to the directory", line)
			}
			continue
		}
		if e.busy {
			return fmt.Errorf("mesi: directory busy for line %v at quiescence", line)
		}
		if len(h.owners) == 1 {
			if e.state != dm || e.owner == nil || e.owner.id != h.owners[0] {
				return fmt.Errorf("mesi: directory/owner mismatch for line %v", line)
			}
		}
		for _, s := range h.sharers {
			if e.state != ds || !e.sharers[l1s[s]] {
				return fmt.Errorf("mesi: sharer %d of line %v missing from directory", s, line)
			}
		}
	}
	return nil
}
