// Package cpu models the simulated cores and the thread API that workloads
// are written against.
//
// The paper's core model (§5.1): simple, single-issue, in-order, 1 CPI for
// non-memory instructions, blocking loads, non-blocking stores;
// synchronization accesses obey program order (a sync access is not issued
// until the previous one completes).
//
// Each simulated thread is an ordinary Go function running on its own
// goroutine, coroutined with the single-threaded simulation engine through
// a strict channel handshake: the engine blocks while the thread decides
// its next operation, and the thread blocks while the engine simulates it.
// Exactly one of the two is ever runnable, so simulation remains
// deterministic and race-free.
package cpu

import (
	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// Phase labels what part of the workload is executing, driving the
// execution-time breakdown of Figures 3–6: kernel code, the dummy
// computation between kernel iterations, or the closing barrier.
type Phase int

const (
	PhaseKernel Phase = iota
	PhaseNonSynch
	PhaseBarrier
)

func (p Phase) String() string {
	switch p {
	case PhaseKernel:
		return "kernel"
	case PhaseNonSynch:
		return "nonsynch"
	case PhaseBarrier:
		return "barrier"
	default:
		panic("cpu: unknown phase")
	}
}

// threadOp is one simulated operation, executed on the engine goroutine.
// It must arrange for c.complete to be called exactly once.
type threadOp func(c *Core)

// Core is one simulated processor.
type Core struct {
	eng *sim.Engine
	id  proto.CoreID
	l1  proto.L1Controller

	ops  chan threadOp
	resp chan uint64

	phase    Phase
	time     stats.CoreTime
	retired  uint64
	finished bool
	onFinish func()
}

// NewCore builds core id over l1. onFinish runs when the thread ends.
func NewCore(eng *sim.Engine, id proto.CoreID, l1 proto.L1Controller, onFinish func()) *Core {
	return &Core{
		eng:      eng,
		id:       id,
		l1:       l1,
		ops:      make(chan threadOp),
		resp:     make(chan uint64),
		onFinish: onFinish,
	}
}

// ID returns the core's ID.
func (c *Core) ID() proto.CoreID { return c.id }

// L1 returns the core's cache controller.
func (c *Core) L1() proto.L1Controller { return c.l1 }

// Time returns the core's accumulated cycle breakdown.
func (c *Core) Time() stats.CoreTime { return c.time }

// Finished reports whether the thread has ended.
func (c *Core) Finished() bool { return c.finished }

// Phase returns the core's current workload phase.
func (c *Core) Phase() Phase { return c.phase }

// Retired counts completed thread operations — the progress signal the
// deadlock/livelock watchdog monitors.
func (c *Core) Retired() uint64 { return c.retired }

// Start schedules the core's first service of its thread at cycle 0.
func (c *Core) Start() {
	c.eng.Schedule(0, c.serviceThread)
}

// serviceThread blocks the engine until the thread issues its next
// operation (or ends), then runs it. The thread is guaranteed to be either
// computing natively (and will promptly send) or already blocked sending.
func (c *Core) serviceThread() {
	op, ok := <-c.ops
	if !ok {
		c.finished = true
		c.time.Finish = c.eng.Now()
		if c.onFinish != nil {
			c.onFinish()
		}
		return
	}
	op(c)
}

// complete resumes the thread with value v, then waits for its next op.
// Called exactly once per threadOp, from an engine event.
func (c *Core) complete(v uint64) {
	c.retired++
	c.resp <- v
	c.serviceThread()
}

// replay re-enacts batched lazy steps as the exact event chain the eager
// thread API would have produced — one event per step, each scheduled from
// inside its predecessor — then runs op inside the final event. Keeping
// the schedule-call sequence identical keeps (time, seq) dispatch order,
// and therefore all simulated results, bit-identical to unbatched runs.
func (c *Core) replay(steps []lazyStep, op threadOp) {
	var run func(i int)
	run = func(i int) {
		if i == len(steps) {
			op(c)
			return
		}
		s := steps[i]
		if s.setPhase {
			c.eng.Schedule(0, func() {
				c.phase = s.phase
				run(i + 1)
			})
			return
		}
		c.eng.Schedule(s.delay, func() {
			c.charge(s.comp, s.delay)
			run(i + 1)
		})
	}
	run(0)
}

// charge attributes n cycles to component comp, redirected by the current
// phase: everything in the non-synch phase lands in NonSynch, and in the
// barrier phase all waiting lands in BarrierStall. Hardware and software
// backoff keep their own buckets in the kernel phase (the paper plots them
// separately).
func (c *Core) charge(comp stats.TimeComponent, n sim.Cycle) {
	if n == 0 {
		return
	}
	switch c.phase {
	case PhaseNonSynch:
		comp = stats.NonSynch
	case PhaseBarrier:
		if comp != stats.HWBackoff && comp != stats.SWBackoff {
			comp = stats.BarrierStall
		}
	}
	c.time.Add(comp, n)
}

// chargeAccess splits a memory access's duration: one L1-access cycle as
// compute (instruction issue), hardware-backoff stall in its own bucket,
// and the rest as memory stall.
func (c *Core) chargeAccess(dur, hwBackoff sim.Cycle) {
	issue := sim.Cycle(1)
	if dur < issue {
		issue = dur
	}
	c.charge(stats.Compute, issue)
	dur -= issue
	if hwBackoff > dur {
		hwBackoff = dur
	}
	c.charge(stats.HWBackoff, hwBackoff)
	c.charge(stats.MemStall, dur-hwBackoff)
}
