package cpu

import (
	"testing"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// fakeL1 is a minimal L1 with fixed hit latency for core-accounting tests.
type fakeL1 struct {
	eng     *sim.Engine
	latency sim.Cycle
	backoff sim.Cycle
	stats   proto.L1Stats
	mem     map[proto.Addr]uint64
}

func newFakeL1(eng *sim.Engine, lat sim.Cycle) *fakeL1 {
	return &fakeL1{eng: eng, latency: lat, mem: map[proto.Addr]uint64{}}
}

func (f *fakeL1) Access(req *proto.Request) {
	done := req.Done
	addr, kind, val, rmw := req.Addr, req.Kind, req.Value, req.RMW
	f.eng.Schedule(f.latency, func() {
		switch kind {
		case proto.DataStore, proto.SyncStore:
			f.mem[addr] = val
			done(0)
		case proto.SyncRMW:
			old := f.mem[addr]
			if nv, st := rmw(old); st {
				f.mem[addr] = nv
			}
			done(old)
		default:
			done(f.mem[addr])
		}
	})
}
func (f *fakeL1) SelfInvalidate(proto.RegionSet)                {}
func (f *fakeL1) SignatureRelease(proto.Addr)                   {}
func (f *fakeL1) SignatureAcquire(proto.Addr)                   {}
func (f *fakeL1) Epoch(proto.Addr) uint64                       { return 0 }
func (f *fakeL1) WaitDisturb(_ proto.Addr, _ uint64, fn func()) { f.eng.Schedule(5, fn) }
func (f *fakeL1) OnWritesDrained(fn func())                     { f.eng.Schedule(0, fn) }
func (f *fakeL1) BackoffStallCycles() sim.Cycle                 { return f.backoff }
func (f *fakeL1) Stats() *proto.L1Stats                         { return &f.stats }

var _ proto.L1Controller = (*fakeL1)(nil)

// runOne drives a single-core workload to completion and returns the core.
func runOne(t *testing.T, lat sim.Cycle, fn func(*Thread)) *Core {
	t.Helper()
	eng := sim.NewEngine()
	l1 := newFakeL1(eng, lat)
	finished := false
	core := NewCore(eng, 0, l1, func() { finished = true })
	core.Start()
	th := NewThread(core, nil, sim.NewRNG(1))
	go func() {
		defer th.Close()
		fn(th)
	}()
	eng.Run(0)
	if !finished {
		t.Fatal("thread did not finish")
	}
	return core
}

func TestComputeAccounting(t *testing.T) {
	core := runOne(t, 10, func(th *Thread) {
		th.Compute(100)
		th.Compute(50)
	})
	ct := core.Time()
	if ct.Cycles[stats.Compute] != 150 {
		t.Fatalf("compute = %d", ct.Cycles[stats.Compute])
	}
	if ct.Finish != 150 {
		t.Fatalf("finish = %d", ct.Finish)
	}
}

func TestMemOpSplitsIssueAndStall(t *testing.T) {
	core := runOne(t, 40, func(th *Thread) {
		_ = th.Load(0x100)
	})
	ct := core.Time()
	if ct.Cycles[stats.Compute] != 1 {
		t.Fatalf("issue cycle = %d, want 1", ct.Cycles[stats.Compute])
	}
	if ct.Cycles[stats.MemStall] != 39 {
		t.Fatalf("memstall = %d, want 39", ct.Cycles[stats.MemStall])
	}
}

func TestPhaseRedirection(t *testing.T) {
	core := runOne(t, 10, func(th *Thread) {
		th.SetPhase(PhaseNonSynch)
		th.Compute(100)
		_ = th.Load(4)
		th.SetPhase(PhaseBarrier)
		_ = th.Load(8)
		th.SetPhase(PhaseKernel)
		th.Compute(7)
	})
	ct := core.Time()
	if ct.Cycles[stats.NonSynch] != 110 {
		t.Fatalf("nonsynch = %d, want 110 (compute+load)", ct.Cycles[stats.NonSynch])
	}
	if ct.Cycles[stats.BarrierStall] != 10 {
		t.Fatalf("barrier = %d, want 10", ct.Cycles[stats.BarrierStall])
	}
	if ct.Cycles[stats.Compute] != 7 {
		t.Fatalf("kernel compute = %d, want 7", ct.Cycles[stats.Compute])
	}
}

func TestSWBackoffBucket(t *testing.T) {
	core := runOne(t, 1, func(th *Thread) {
		th.SWBackoff(500)
	})
	if got := core.Time().Cycles[stats.SWBackoff]; got != 500 {
		t.Fatalf("sw backoff = %d", got)
	}
}

func TestRMWHelpers(t *testing.T) {
	runOne(t, 1, func(th *Thread) {
		if th.TestAndSet(8) != 0 {
			panic("TAS initial")
		}
		if th.TestAndSet(8) != 1 {
			panic("TAS second")
		}
		if !th.CAS(12, 0, 5) {
			panic("CAS expected success")
		}
		if th.CAS(12, 0, 9) {
			panic("CAS expected failure")
		}
		if th.FetchAdd(12, 10) != 5 {
			panic("FetchAdd old value")
		}
		if th.Exchange(12, 99) != 15 {
			panic("Exchange old value")
		}
		if th.SyncLoad(12) != 99 {
			panic("final value")
		}
	})
}

func TestSpinHelperChargesCompute(t *testing.T) {
	eng := sim.NewEngine()
	l1 := newFakeL1(eng, 2)
	core := NewCore(eng, 0, l1, nil)
	core.Start()
	th := NewThread(core, nil, sim.NewRNG(1))
	go func() {
		defer th.Close()
		th.SpinSyncLoadUntil(0x40, func(v uint64) bool { return v == 3 })
	}()
	// Another event sets the value after a while (fakeL1 wakes spinners
	// every 5 cycles regardless).
	eng.Schedule(30, func() { l1.mem[0x40] = 3 })
	eng.Run(0)
	if core.Time().Finish < 30 {
		t.Fatalf("spin finished too early: %d", core.Time().Finish)
	}
	if core.Time().Cycles[stats.Compute] == 0 {
		t.Fatal("spin wait charged no compute")
	}
}

func TestZeroComputeIsFree(t *testing.T) {
	core := runOne(t, 1, func(th *Thread) {
		th.Compute(0)
		th.SWBackoff(0)
	})
	ct := core.Time()
	if ct.Busy() != 0 {
		t.Fatalf("zero-length ops charged cycles: %v", ct)
	}
}
