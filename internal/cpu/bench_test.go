package cpu

import (
	"testing"

	"denovosync/internal/sim"
)

// benchRun drives one single-core workload to completion for b.
func benchRun(b *testing.B, fn func(*Thread)) {
	b.Helper()
	eng := sim.NewEngine()
	l1 := newFakeL1(eng, 1)
	core := NewCore(eng, 0, l1, nil)
	core.Start()
	th := NewThread(core, nil, sim.NewRNG(1))
	go func() {
		defer th.Close()
		fn(th)
	}()
	eng.Run(0)
	if !core.Finished() {
		b.Fatal("workload did not finish")
	}
}

// BenchmarkHandshakeMemOp measures the full coroutine round-trip of a
// blocking memory operation: channel send, engine event, channel receive.
func BenchmarkHandshakeMemOp(b *testing.B) {
	benchRun(b, func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.Load(64)
		}
	})
}

// BenchmarkHandshakeCompute measures batched Compute calls interleaved
// with a flushing blocking op — the shape kernel driver loops produce.
// With lazy batching the Computes cost one queue append each; the replay
// chain runs on the engine side without extra goroutine switches.
func BenchmarkHandshakeCompute(b *testing.B) {
	benchRun(b, func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.SetPhase(PhaseNonSynch)
			t.Compute(10)
			t.SetPhase(PhaseKernel)
			t.Load(64)
		}
	})
}

// BenchmarkHandshakeComputeEager is the same workload with batching
// disabled: every Compute/SetPhase pays its own handshake, as the
// reference implementation did. The gap to BenchmarkHandshakeCompute is
// the batching win.
func BenchmarkHandshakeComputeEager(b *testing.B) {
	defer func(old bool) { EagerOps = old }(EagerOps)
	EagerOps = true
	benchRun(b, func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.SetPhase(PhaseNonSynch)
			t.Compute(10)
			t.SetPhase(PhaseKernel)
			t.Load(64)
		}
	})
}
