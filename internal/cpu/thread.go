package cpu

import (
	"os"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// RegionMapper resolves an address to its software region (the
// self-invalidation unit). The allocator implements it.
type RegionMapper interface {
	RegionOf(proto.Addr) proto.RegionID
}

// Thread is the API simulated workload code is written against. All
// methods marked "blocking" suspend the calling goroutine for the
// simulated duration of the operation. A Thread's methods must only be
// called from its own workload goroutine.
//
// Pure time-advancing operations (Compute, SWBackoff, SetPhase) are
// batched: they queue locally and are replayed as the exact event chain
// the eager implementation would have produced when the next blocking
// operation (or Close/Now/Epoch) flushes them. This skips two goroutine
// context switches per batched call without perturbing the engine's event
// sequence, so simulated results are bit-identical to unbatched runs.
type Thread struct {
	// ID is the thread index, equal to the core ID it runs on.
	ID int
	// RNG is the thread-private deterministic random source.
	RNG *sim.RNG

	core    *Core
	regions RegionMapper
	pending []lazyStep
}

// lazyStep is one queued time-advancing operation awaiting flush.
type lazyStep struct {
	delay    sim.Cycle
	comp     stats.TimeComponent
	setPhase bool
	phase    Phase
}

// NewThread binds a workload thread to core. regions may be nil if the
// workload never uses regions.
func NewThread(core *Core, regions RegionMapper, rng *sim.RNG) *Thread {
	return &Thread{ID: int(core.id), RNG: rng, core: core, regions: regions}
}

// do hands op to the core and blocks until the simulated completion.
// Queued lazy steps are replayed first, as a chain of events identical to
// the one the eager path would have scheduled; op runs inside the chain's
// final event, exactly where it would have run after the last handshake.
func (t *Thread) do(op threadOp) uint64 {
	if len(t.pending) > 0 {
		steps := t.pending
		t.pending = t.pending[:0] // safe: t blocks until the chain completes
		inner := op
		op = func(c *Core) { c.replay(steps, inner) }
	}
	t.core.ops <- op
	return <-t.core.resp
}

// flush drains queued lazy steps so the engine state observed by
// non-blocking accessors (Now, Epoch) reflects them.
func (t *Thread) flush() {
	if len(t.pending) > 0 {
		t.do(func(c *Core) { c.complete(0) })
	}
}

// Rendezvous performs one empty handshake with the core, blocking the
// calling goroutine until the core's cycle-0 thread-service event runs.
// The spawner calls it before the workload function so that native code
// ahead of the first blocking operation (including host-level access to
// shared simulation state like the allocator) executes serialized, in
// core order, under the engine's one-runnable-goroutine discipline —
// instead of racing across freshly spawned workload goroutines. The
// handshake schedules no events and charges no time, so the simulated
// event sequence is untouched.
func (t *Thread) Rendezvous() {
	t.do(func(c *Core) { c.complete(0) })
}

// Flush replays any batched time-advancing operations before returning.
// Workload code MUST call it before natively reading or mutating host
// state shared across threads (e.g. the simulated-memory allocator): the
// flush pins that access to the current simulated time, keeping the
// cross-thread interleaving of such accesses identical to an unbatched
// run. Blocking operations flush implicitly.
func (t *Thread) Flush() { t.flush() }

// Now returns the current simulated cycle. (Safe: the engine is blocked
// whenever workload code runs.)
func (t *Thread) Now() sim.Cycle {
	t.flush()
	return t.core.eng.Now()
}

func (t *Thread) regionOf(addr proto.Addr) proto.RegionID {
	if t.regions == nil {
		return 0
	}
	return t.regions.RegionOf(addr)
}

// memOp issues one memory access and blocks until its commit. Sync
// accesses first drain outstanding stores (fence semantics of the
// data-race-free model: acquire/release ordering at sync points).
func (t *Thread) memOp(kind proto.AccessKind, addr proto.Addr, value uint64, rmw proto.RMWOp) uint64 {
	return t.do(func(c *Core) {
		start := c.eng.Now()
		b0 := c.l1.BackoffStallCycles()
		issue := func() {
			c.l1.Access(&proto.Request{
				Kind:   kind,
				Addr:   addr,
				Value:  value,
				RMW:    rmw,
				Region: t.regionOf(addr),
				Done: func(v uint64) {
					c.chargeAccess(c.eng.Now()-start, c.l1.BackoffStallCycles()-b0)
					c.complete(v)
				},
			})
		}
		if kind.IsSync() {
			c.l1.OnWritesDrained(issue)
		} else {
			issue()
		}
	})
}

// Load performs a blocking data load.
func (t *Thread) Load(addr proto.Addr) uint64 {
	return t.memOp(proto.DataLoad, addr, 0, nil)
}

// Store performs a non-blocking data store: it returns after the L1
// access; the coherence transaction drains in the background (see Fence).
func (t *Thread) Store(addr proto.Addr, value uint64) {
	t.memOp(proto.DataStore, addr, value, nil)
}

// SyncLoad performs a synchronization (volatile/atomic) load: sequentially
// consistent, ordered after all prior accesses.
func (t *Thread) SyncLoad(addr proto.Addr) uint64 {
	return t.memOp(proto.SyncLoad, addr, 0, nil)
}

// SyncStore performs a synchronization store, blocking until the write is
// globally visible (write atomicity).
func (t *Thread) SyncStore(addr proto.Addr, value uint64) {
	t.memOp(proto.SyncStore, addr, value, nil)
}

// rmw runs an atomic read-modify-write, returning the pre-update value.
func (t *Thread) rmw(addr proto.Addr, op proto.RMWOp) uint64 {
	return t.memOp(proto.SyncRMW, addr, 0, op)
}

// CAS atomically compares-and-swaps, reporting success.
func (t *Thread) CAS(addr proto.Addr, old, new uint64) bool {
	got := t.rmw(addr, func(cur uint64) (uint64, bool) {
		if cur == old {
			return new, true
		}
		return 0, false
	})
	return got == old
}

// FetchAdd atomically adds delta, returning the previous value.
func (t *Thread) FetchAdd(addr proto.Addr, delta uint64) uint64 {
	return t.rmw(addr, func(cur uint64) (uint64, bool) { return cur + delta, true })
}

// TestAndSet atomically sets the word to 1, returning the previous value.
func (t *Thread) TestAndSet(addr proto.Addr) uint64 {
	return t.rmw(addr, func(uint64) (uint64, bool) { return 1, true })
}

// Exchange atomically swaps in value, returning the previous value.
func (t *Thread) Exchange(addr proto.Addr, value uint64) uint64 {
	return t.rmw(addr, func(uint64) (uint64, bool) { return value, true })
}

// EagerOps disables the lazy batching of Compute/SWBackoff/SetPhase,
// restoring the one-handshake-per-call reference implementation. The two
// modes must produce bit-identical simulations (TestBatchingMatchesEager
// checks this); set CPU_EAGER=1 to bisect a suspected batching bug.
var EagerOps = os.Getenv("CPU_EAGER") != ""

// Compute burns n cycles of computation (1 CPI instructions). Batched:
// the cycles are charged and the clock advanced when the next blocking
// operation flushes the queue.
func (t *Thread) Compute(n sim.Cycle) {
	if n == 0 {
		return
	}
	if EagerOps {
		t.do(func(c *Core) {
			c.eng.Schedule(n, func() {
				c.charge(stats.Compute, n)
				c.complete(0)
			})
		})
		return
	}
	t.pending = append(t.pending, lazyStep{delay: n, comp: stats.Compute})
}

// SWBackoff stalls n cycles of software backoff (plotted separately).
// Batched like Compute.
func (t *Thread) SWBackoff(n sim.Cycle) {
	if n == 0 {
		return
	}
	if EagerOps {
		t.do(func(c *Core) {
			c.eng.Schedule(n, func() {
				c.charge(stats.SWBackoff, n)
				c.complete(0)
			})
		})
		return
	}
	t.pending = append(t.pending, lazyStep{delay: n, comp: stats.SWBackoff})
}

// SelfInvalidate drops cached Valid words of the given regions (DeNovo's
// region-based static self-invalidation; a no-op on MESI). Costs one
// instruction cycle.
func (t *Thread) SelfInvalidate(set proto.RegionSet) {
	t.do(func(c *Core) {
		c.l1.SelfInvalidate(set)
		c.eng.Schedule(1, func() {
			c.charge(stats.Compute, 1)
			c.complete(0)
		})
	})
}

// AcquireSignature self-invalidates cached stale data matching the
// write signature attached to lock (DeNovoND-style dynamic
// self-invalidation; a no-op on MESI). Costs one instruction cycle.
func (t *Thread) AcquireSignature(lock proto.Addr) {
	t.do(func(c *Core) {
		c.l1.SignatureAcquire(lock)
		c.eng.Schedule(1, func() {
			c.charge(stats.Compute, 1)
			c.complete(0)
		})
	})
}

// ReleaseSignature publishes this core's writes-since-last-release
// signature to lock (a no-op on MESI). Costs one instruction cycle.
func (t *Thread) ReleaseSignature(lock proto.Addr) {
	t.do(func(c *Core) {
		c.l1.SignatureRelease(lock)
		c.eng.Schedule(1, func() {
			c.charge(stats.Compute, 1)
			c.complete(0)
		})
	})
}

// Fence blocks until all outstanding non-blocking stores have committed.
func (t *Thread) Fence() {
	t.do(func(c *Core) {
		start := c.eng.Now()
		c.l1.OnWritesDrained(func() {
			c.charge(stats.MemStall, c.eng.Now()-start)
			c.complete(0)
		})
	})
}

// SetPhase switches the accounting phase (kernel / non-synch / barrier).
// Batched: the switch takes effect, in program order, when the queue is
// flushed (it costs its original zero-delay event then).
func (t *Thread) SetPhase(p Phase) {
	if EagerOps {
		t.do(func(c *Core) {
			c.phase = p
			c.eng.Schedule(0, func() { c.complete(0) })
		})
		return
	}
	t.pending = append(t.pending, lazyStep{setPhase: true, phase: p})
}

// Epoch samples the local disturbance counter for addr; pair with
// WaitDisturb to implement efficient spin-waiting.
func (t *Thread) Epoch(addr proto.Addr) uint64 {
	t.flush()
	return t.core.l1.Epoch(addr)
}

// WaitDisturb blocks until the cached state of addr's word is disturbed by
// remote protocol activity (epoch advances past the sampled epoch). The
// wait is charged as compute: architecturally the core is spinning on
// local cache hits (the paper notes spin hits dominate compute time).
func (t *Thread) WaitDisturb(addr proto.Addr, epoch uint64) {
	t.do(func(c *Core) {
		start := c.eng.Now()
		c.l1.WaitDisturb(addr, epoch, func() {
			c.charge(stats.Compute, c.eng.Now()-start)
			c.complete(0)
		})
	})
}

// SpinSyncLoadUntil repeatedly sync-loads addr until pred accepts the
// value, sleeping between attempts until the local copy is disturbed.
// This is the efficient spin primitive: on MESI it models spinning on a
// cached copy until invalidation; on DeNovo it models spinning on a
// Registered word until a remote access revokes the registration.
func (t *Thread) SpinSyncLoadUntil(addr proto.Addr, pred func(uint64) bool) uint64 {
	for {
		e := t.Epoch(addr)
		v := t.SyncLoad(addr)
		if pred(v) {
			return v
		}
		t.WaitDisturb(addr, e)
	}
}

// Close ends the thread: the core observes the closed op channel and
// records its finish time (after any queued lazy steps play out).
// Deferred by the machine around the workload body; workload code never
// calls it.
func (t *Thread) Close() {
	t.flush()
	close(t.core.ops)
}
