// Package profiling wires the standard -cpuprofile / -memprofile flags
// into the simulator's command-line tools. The resulting profiles feed
// `go tool pprof` and drove the engine's event-pool and handshake-batching
// optimizations (see EXPERIMENTS.md for the workflow).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (no-op if empty) and returns a
// stop function that finishes the CPU profile and, if memPath is
// non-empty, writes an allocation profile there. Call the stop function
// exactly once, after the measured work completes.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
