package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"denovosync/internal/stats"
)

func testRecord(key string) *Record {
	rs := &stats.RunStats{
		Protocol: "DeNovoSync", Workload: "counter", Cores: 16,
		ExecTime: 12345, TotalTraffic: 678,
		L1Hits: 10, L1Misses: 2, Events: 999,
	}
	rs.Time[0] = 1.5
	rs.Traffic[0] = 678
	return &Record{
		Key:      key,
		Fig:      "Figure 3 (16c)",
		Run:      Run{Kind: KindKernel, Workload: "tatas-counter", Protocol: "DS", Cores: 16, EqChecks: -1},
		Status:   StatusOK,
		Attempts: 1,
		Stats:    rs,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	j, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal has %d prior records", len(prior))
	}
	want := testRecord("aaaa")
	if err := j.Append(want); err != nil {
		t.Fatalf("Append: %v", err)
	}
	failed := &Record{Key: "bbbb", Run: Run{Workload: "x"}, Status: StatusFailed, Attempts: 3, Error: "panic: boom"}
	if err := j.Append(failed); err != nil {
		t.Fatalf("Append failed-record: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, prior, err = OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(prior) != 2 {
		t.Fatalf("reloaded %d records, want 2", len(prior))
	}
	got := prior["aaaa"]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(prior["bbbb"], failed) {
		t.Errorf("failed record mismatch: %+v", prior["bbbb"])
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a truncated trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"bbbb","run":{"kind":"ker`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("LoadJournal with torn tail: %v", err)
	}
	if len(recs) != 1 || recs[0].Key != "aaaa" {
		t.Fatalf("got %d records, want the 1 intact record", len(recs))
	}

	// But corruption in the middle is an error, not silent data loss.
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n{\"key\":\"cccc\",\"run\":{},\"status\":\"ok\",\"attempts\":1}\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("mid-file corruption: got %v, want parse error", err)
	}
}

func TestSanitizeStatsStripsHostDiagnostics(t *testing.T) {
	rs := &stats.RunStats{ExecTime: 5, PerCore: make([]stats.CoreTime, 16)}
	rs.SetWallTime(2 * time.Second)
	c := sanitizeStats(rs)
	if c.WallTime != 0 || c.EventsPerSec != 0 || c.PerCore != nil {
		t.Errorf("host diagnostics survived: %+v", c)
	}
	if c.ExecTime != 5 {
		t.Errorf("simulated results must survive: %+v", c)
	}
	if rs.WallTime == 0 {
		t.Errorf("sanitize must copy, not mutate the original")
	}
	if sanitizeStats(nil) != nil {
		t.Errorf("sanitize(nil) != nil")
	}
}
