package exp

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Journal salvage: LoadJournal deliberately treats mid-file corruption as
// a hard error — a grid driver must never silently drop results. But a
// journal that *did* get damaged (bad sector, concurrent writer, manual
// edit) still holds real CPU-days of results, so SalvageJournal is the
// explicit repair path: it recovers every parseable record, quarantines
// each unparseable line with its exact byte extent into a sidecar
// report, and leaves the original file untouched. The caller chose
// salvage, so recovery is not silent — the report says precisely what
// was lost and where.

// BadLine is one quarantined journal line: its position, byte extent,
// parse error, and a bounded prefix of the raw bytes for forensics.
type BadLine struct {
	Line   int    `json:"line"`   // 1-based line number
	Offset int64  `json:"offset"` // byte offset of the line start
	Length int    `json:"length"` // bytes in the line, excluding the newline
	Error  string `json:"error"`  // why it did not parse
	Prefix string `json:"prefix"` // up to 128 raw bytes, for identification
}

// SalvageReport describes one salvage pass over a journal.
type SalvageReport struct {
	Journal   string    `json:"journal"`
	Lines     int       `json:"lines"`     // non-empty lines seen
	Recovered int       `json:"recovered"` // records kept
	Bad       []BadLine `json:"bad,omitempty"`
	// TornTail is true when the only damage is a malformed final line —
	// the signature of a crash mid-append, which LoadJournal already
	// tolerates. Anything else in Bad is real mid-file corruption.
	TornTail bool `json:"torn_tail,omitempty"`
}

// Clean reports whether the journal needed no repair at all.
func (r *SalvageReport) Clean() bool {
	return len(r.Bad) == 0
}

// String summarizes the pass for progress output.
func (r *SalvageReport) String() string {
	switch {
	case r.Clean():
		return fmt.Sprintf("%s: clean (%d records)", r.Journal, r.Recovered)
	case r.TornTail && len(r.Bad) == 1:
		return fmt.Sprintf("%s: %d records recovered, torn tail dropped (offset %d)",
			r.Journal, r.Recovered, r.Bad[0].Offset)
	}
	return fmt.Sprintf("%s: %d records recovered, %d corrupt line(s) quarantined (first at offset %d)",
		r.Journal, r.Recovered, len(r.Bad), r.Bad[0].Offset)
}

// SidecarPath is where WriteSidecar puts the report for a journal.
func SidecarPath(journalPath string) string {
	return journalPath + ".salvage.json"
}

// WriteSidecar writes the report next to the journal (journal path +
// ".salvage.json") and returns the path. The write is atomic-ish
// (temp file + rename) so a crash mid-report never leaves a torn
// sidecar pointing at a repaired journal.
func (r *SalvageReport) WriteSidecar() (string, error) {
	path := SidecarPath(r.Journal)
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("exp: encoding salvage report: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}

// SalvageJournal reads a journal in repair mode: every parseable record
// is returned in file order, every unparseable line is quarantined into
// the report with its byte offset and length. The file itself is not
// modified. A journal that LoadJournal would accept yields an identical
// record list and a Clean report.
func SalvageJournal(path string) ([]*Record, *SalvageReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	rep := &SalvageReport{Journal: path}
	var out []*Record
	rd := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	line := 0
	for {
		b, err := rd.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return nil, nil, fmt.Errorf("exp: reading journal %s: %w", path, err)
		}
		raw := b
		if n := len(raw); n > 0 && raw[n-1] == '\n' {
			raw = raw[:n-1]
		}
		if len(raw) > 0 {
			line++
			rep.Lines++
			rec := &Record{}
			perr := json.Unmarshal(raw, rec)
			if perr == nil && rec.Key == "" {
				perr = fmt.Errorf("record has no key")
			}
			if perr != nil {
				prefix := raw
				if len(prefix) > 128 {
					prefix = prefix[:128]
				}
				rep.Bad = append(rep.Bad, BadLine{
					Line:   line,
					Offset: offset,
					Length: len(raw),
					Error:  perr.Error(),
					Prefix: string(prefix),
				})
			} else {
				out = append(out, rec)
				rep.Recovered++
			}
		}
		offset += int64(len(b))
		if atEOF {
			break
		}
	}
	// A single bad line that is also the file's last line is a torn
	// tail: the same case LoadJournal drops silently.
	if len(rep.Bad) == 1 && rep.Bad[0].Line == line {
		rep.TornTail = true
	}
	return out, rep, nil
}

// RewriteJournal writes the salvaged records as a fresh journal at dst
// (refusing to overwrite the source in place): the repair output a
// subsequent resume or merge can consume with the strict loader.
func RewriteJournal(dst string, recs []*Record) error {
	if dst == "" {
		return fmt.Errorf("exp: rewrite needs a destination path")
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("exp: encoding record %s: %w", rec.Key, err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
