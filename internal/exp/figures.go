package exp

import (
	"fmt"
	"io"
	"strings"

	"denovosync/internal/apps"
	"denovosync/internal/chaos"
	"denovosync/internal/harness"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/sim"
)

// Options tunes a planned reproduction (mirrors harness.Options).
type Options struct {
	// Scale shrinks workloads by this divisor; 1 = the paper's sizes.
	Scale int
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

// scaledIters mirrors harness.Options.kernelCfg: 0 keeps each kernel's
// paper default; larger scales divide the canonical 100 iterations.
func (o Options) scaledIters() int {
	s := o.scale()
	if s <= 1 {
		return 0
	}
	it := 100 / s
	if it < 2 {
		it = 2
	}
	return it
}

// FigureNames lists the plannable figure/ablation IDs in display order.
func FigureNames() []string {
	return []string{
		"fig3", "fig4", "fig5", "fig6", "fig7",
		"swbackoff", "padding", "eqchecks", "signatures", "invall",
		"contention", "mcs", "granularity", "hwparams",
	}
}

// FigurePlan expands one of the paper's figures or ablation studies into
// a grid plan. The plan IDs, titles, row order and per-run configuration
// mirror the internal/harness figure functions exactly, so a merged
// figure renders byte-identically to the serial harness path (the
// equivalence is pinned by TestFigurePlanMatchesHarness).
func FigurePlan(name string, cores int, o Options) (Plan, error) {
	switch name {
	case "fig3":
		return kernelGroupPlan(fmt.Sprintf("Figure 3 (%dc)", cores),
			"Test-and-Test-and-Set (TATAS) locks", kernels.LockTATAS, cores, o, nil)
	case "fig4":
		return kernelGroupPlan(fmt.Sprintf("Figure 4 (%dc)", cores),
			"Array locks", kernels.LockArray, cores, o, nil)
	case "fig5":
		return kernelGroupPlan(fmt.Sprintf("Figure 5 (%dc)", cores),
			"Non-blocking algorithms", kernels.NonBlocking, cores, o, nil)
	case "fig6":
		return kernelGroupPlan(fmt.Sprintf("Figure 6 (%dc)", cores),
			"Barrier synchronization (UB = unbalanced)", kernels.Barriers, cores, o, nil)
	case "fig7":
		return fig7Plan(o)
	case "swbackoff":
		return kernelGroupPlan(fmt.Sprintf("Ablation: sw backoff (%dc)", cores),
			"TATAS kernels with software exponential backoff [128,2048)", kernels.LockTATAS, cores, o,
			func(r *Run) { r.SWBackoffMin, r.SWBackoffMax = 128, 2048 })
	case "padding":
		return kernelGroupPlan(fmt.Sprintf("Ablation: no lock padding (%dc)", cores),
			"TATAS kernels without lock padding", kernels.LockTATAS, cores, o,
			func(r *Run) { r.NoPadding = true })
	case "eqchecks":
		return kernelGroupPlan(fmt.Sprintf("Ablation: reduced equality checks (%dc)", cores),
			"Non-blocking kernels, Herlihy equality checks removed", kernels.NonBlocking, cores, o,
			func(r *Run) { r.EqChecks = 0 })
	case "mcs":
		return kernelGroupPlan(fmt.Sprintf("Ablation: MCS locks (%dc)", cores),
			"Lock kernels with MCS list-based queuing locks", kernels.LockTATAS, cores, o,
			func(r *Run) { r.ForceMCS = true })
	case "invall":
		return invalidateAllPlan(cores, o)
	case "signatures":
		return signaturesPlan(cores, o)
	case "contention":
		return contentionPlan(cores, o)
	case "granularity":
		return granularityPlan(cores, o)
	case "hwparams":
		return backoffParamsPlan(cores, o)
	}
	return Plan{}, fmt.Errorf("exp: unknown figure %q (want one of %s)", name, strings.Join(FigureNames(), ", "))
}

func checkCores(cores int) error {
	if cores != 16 && cores != 64 {
		return fmt.Errorf("exp: unsupported core count %d (want 16 or 64)", cores)
	}
	return nil
}

// kernelBase is the paper-default kernel run at a scale.
func kernelBase(o Options) Run {
	return Run{Kind: KindKernel, EqChecks: -1, Iters: o.scaledIters()}
}

var protocols3 = []string{"M", "DS0", "DS"}

func kernelGroupPlan(id, title string, g kernels.Group, cores int, o Options, mutate func(*Run)) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	p := Plan{ID: id, Title: title, Cores: cores}
	for _, k := range kernels.ByGroup(g) {
		for _, prot := range protocols3 {
			r := kernelBase(o)
			r.Workload, r.Display, r.Protocol, r.Cores = k.ID, k.Name, prot, cores
			if mutate != nil {
				mutate(&r)
			}
			p.Runs = append(p.Runs, r)
		}
	}
	return p, nil
}

func fig7Plan(o Options) (Plan, error) {
	p := Plan{ID: "Figure 7", Title: "Applications (ferret/x264 at 16 cores, rest at 64)", Cores: 64}
	for _, a := range apps.All() {
		for _, prot := range []string{"M", "DS"} {
			p.Runs = append(p.Runs, Run{
				Kind: KindApp, Workload: a.ID, Display: a.Name,
				Protocol: prot, Cores: a.DefaultCores, Scale: o.scale(),
			})
		}
	}
	return p, nil
}

func invalidateAllPlan(cores int, o Options) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	p := Plan{
		ID:    fmt.Sprintf("Ablation: invalidate-all fallback (%dc)", cores),
		Title: "Region-based self-invalidation vs the no-information fallback",
		Cores: cores,
	}
	for _, id := range []string{"tatas-single-q", "tatas-heap", "array-stack"} {
		for _, v := range []struct {
			prot  string
			all   bool
			label string
		}{
			{"M", false, ""},
			{"DS", false, "DS/regions"},
			{"DS", true, "DS/inv-all"},
		} {
			r := kernelBase(o)
			r.Workload, r.Display, r.Protocol, r.Cores = id, id, v.prot, cores
			r.Label, r.InvalidateAll = v.label, v.all
			p.Runs = append(p.Runs, r)
		}
	}
	return p, nil
}

func signaturesPlan(cores int, o Options) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	p := Plan{
		ID:    fmt.Sprintf("Ablation: hw signatures (%dc)", cores),
		Title: "Static region self-invalidation vs DeNovoND-style write signatures",
		Cores: cores,
	}
	for _, id := range []string{"tatas-heap", "array-heap"} {
		for _, v := range []struct {
			prot  string
			sigs  bool
			label string
		}{
			{"M", false, ""},
			{"DS", false, "DS/regions"},
			{"DS", true, "DS/sigs"},
		} {
			r := kernelBase(o)
			r.Workload, r.Display, r.Protocol, r.Cores = id, id, v.prot, cores
			r.Label, r.Signatures, r.UseSignatures = v.label, v.sigs, v.sigs
			p.Runs = append(p.Runs, r)
		}
	}
	fa, ok := apps.ByID("fluidanimate")
	if !ok {
		return Plan{}, fmt.Errorf("exp: missing app fluidanimate")
	}
	for _, v := range []struct {
		prot  string
		sigs  bool
		label string
	}{
		{"M", false, ""},
		{"DS", false, "DS/regions"},
		{"DS", true, "DS/sigs"},
	} {
		p.Runs = append(p.Runs, Run{
			Kind: KindApp, Workload: fa.ID, Display: fa.Name,
			Protocol: v.prot, Cores: fa.DefaultCores, Scale: o.scale(),
			Label: v.label, Signatures: v.sigs, UseSignatures: v.sigs,
		})
	}
	return p, nil
}

func contentionPlan(cores int, o Options) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	p := Plan{
		ID:    fmt.Sprintf("Ablation: link contention (%dc)", cores),
		Title: "Analytic mesh latency vs wormhole link-contention model",
		Cores: cores,
	}
	for _, id := range []string{"tatas-counter", "nb-fai-counter"} {
		for _, v := range []struct {
			prot      string
			contended bool
			label     string
		}{
			{"M", false, "M/analytic"},
			{"M", true, "M/contended"},
			{"DS", false, "DS/analytic"},
			{"DS", true, "DS/contended"},
		} {
			r := kernelBase(o)
			r.Workload, r.Display, r.Protocol, r.Cores = id, id, v.prot, cores
			r.Label, r.LinkContention = v.label, v.contended
			p.Runs = append(p.Runs, r)
		}
	}
	return p, nil
}

func granularityPlan(cores int, o Options) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	p := Plan{
		ID:    fmt.Sprintf("Ablation: coherence granularity (%dc)", cores),
		Title: "Word-granularity DeNovo vs line-granularity variant",
		Cores: cores,
	}
	variants := []struct {
		prot  string
		line  bool
		label string
	}{
		{"M", false, ""},
		{"DS", false, "DS/word"},
		{"DS", true, "DS/line"},
	}
	for _, id := range []string{"tatas-counter", "tatas-single-q"} {
		for _, v := range variants {
			r := kernelBase(o)
			r.Workload, r.Display, r.Protocol, r.Cores = id, id+" (unpadded)", v.prot, cores
			r.NoPadding = true // unpadded locks share lines with data
			r.Label, r.LineGranularity = v.label, v.line
			p.Runs = append(p.Runs, r)
		}
	}
	lu, ok := apps.ByID("lu")
	if !ok {
		return Plan{}, fmt.Errorf("exp: missing app lu")
	}
	for _, v := range variants {
		p.Runs = append(p.Runs, Run{
			Kind: KindApp, Workload: lu.ID, Display: lu.Name,
			Protocol: v.prot, Cores: lu.DefaultCores, Scale: o.scale(),
			Label: v.label, LineGranularity: v.line,
		})
	}
	return p, nil
}

func backoffParamsPlan(cores int, o Options) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	p := Plan{
		ID:    fmt.Sprintf("Ablation: hw backoff params (%dc)", cores),
		Title: "DeNovoSync backoff counter width x default increment, M-S queue",
		Cores: cores,
	}
	k, ok := kernels.ByID("nb-m-s-queue")
	if !ok {
		return Plan{}, fmt.Errorf("exp: missing kernel nb-m-s-queue")
	}
	base := machine.Params16()
	if cores == 64 {
		base = machine.Params64()
	}
	for _, prot := range []string{"M", "DS0"} {
		r := kernelBase(o)
		r.Workload, r.Display, r.Protocol, r.Cores = k.ID, k.Name, prot, cores
		p.Runs = append(p.Runs, r)
	}
	for _, v := range []struct {
		name string
		bits uint
		inc  sim.Cycle
	}{
		{"paper", base.BackoffBits, base.DefaultIncrement},
		{"narrow(6b)", 6, base.DefaultIncrement},
		{"wide(14b)", 14, base.DefaultIncrement},
		{"inc=1", base.BackoffBits, 1},
		{"inc=256", base.BackoffBits, 256},
	} {
		r := kernelBase(o)
		r.Workload, r.Display, r.Protocol, r.Cores = k.ID, k.Name, "DS", cores
		r.Label = "DS/" + v.name
		r.BackoffBits, r.Increment = v.bits, v.inc
		p.Runs = append(p.Runs, r)
	}
	return p, nil
}

// Figure assembles the harness figure for a plan from a record set, in
// plan order (deterministic regardless of execution order). It errors if
// any grid point is missing or journaled as failed, listing them all.
func Figure(p Plan, records map[string]*Record) (*harness.Figure, error) {
	f := &harness.Figure{ID: p.ID, Title: p.Title, Cores: p.Cores}
	var bad []string
	for _, r := range p.Runs {
		rec, ok := records[r.Key()]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s: missing (not yet executed)", r))
			continue
		case rec.Status != StatusOK:
			bad = append(bad, fmt.Sprintf("%s: %s after %d attempt(s): %s", r, rec.Status, rec.Attempts, rec.Error))
			continue
		}
		prot, err := ParseProtocol(r.Protocol)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, harness.Row{
			Workload: r.display(), Protocol: prot, Label: r.Label, Stats: rec.Stats,
		})
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("exp: %s: %d of %d runs unusable:\n  %s",
			p.ID, len(bad), len(p.Runs), strings.Join(bad, "\n  "))
	}
	return f, nil
}

// MergeCSV renders a plan's journaled records in the harness figure CSV
// format (the same bytes paperbench -csv emits for the figure). Chaos
// plans render in the per-seed verdict format instead (ChaosCSV): their
// failed records carry verdicts, not broken figures.
func MergeCSV(w io.Writer, p Plan, records map[string]*Record) error {
	if p.IsChaos() {
		return ChaosCSV(w, p, records)
	}
	f, err := Figure(p, records)
	if err != nil {
		return err
	}
	f.CSV(w)
	return nil
}

// SweepPlan expands the cmd/sweep grid — one kernel across the offered-
// load (gap) axis under every protocol — into a plan. gaps are dummy-
// computation windows in cycles; each expands to [g, g+g/4+1) exactly as
// the serial sweep driver did.
func SweepPlan(kernelID string, cores, iters int, gaps []int64) (Plan, error) {
	if err := checkCores(cores); err != nil {
		return Plan{}, err
	}
	k, ok := kernels.ByID(kernelID)
	if !ok {
		return Plan{}, fmt.Errorf("exp: unknown kernel %q", kernelID)
	}
	p := Plan{
		ID:    fmt.Sprintf("sweep %s (%dc)", k.ID, cores),
		Title: fmt.Sprintf("Contention sweep: %s, %d iterations/thread", k.Name, iters),
		Cores: cores,
	}
	for _, gap := range gaps {
		for _, prot := range protocols3 {
			p.Runs = append(p.Runs, Run{
				Kind: KindKernel, Workload: k.ID, Display: k.Name,
				Protocol: prot, Cores: cores, Iters: iters, EqChecks: -1,
				GapMin: sim.Cycle(gap), GapMax: sim.Cycle(gap) + sim.Cycle(gap)/4 + 1,
			})
		}
	}
	return p, nil
}

// ChaosPlan expands the cmd/chaos grid directly (the manifest-free
// path): kernels × chaos protocol configs × seeds at one core count.
func ChaosPlan(kernelIDs, configs []string, cores, iters, seeds int, seedBase uint64, jitter, watchdog int64) (Plan, error) {
	m := Manifest{
		Name:      fmt.Sprintf("chaos (%dc, %d seeds)", cores, seeds),
		Title:     "Chaos sweep: perturbed schedules with live invariant checking",
		Kernels:   kernelIDs,
		Protocols: configs,
		Cores:     []int{cores},
		Iters:     []int{iters},
		Chaos:     &ChaosAxis{Seeds: seeds, SeedBase: seedBase, Jitter: jitter, Watchdog: watchdog},
	}
	return m.Expand()
}

// ChaosVerdict extracts the chaos verdict a journal record carries: "ok"
// for a green run, the bracketed verdict of the deterministic
// "chaos[verdict]: ..." error otherwise.
func ChaosVerdict(rec *Record) string {
	if rec.Status == StatusOK {
		return chaos.VerdictOK
	}
	if i := strings.Index(rec.Error, "chaos["); i >= 0 {
		rest := rec.Error[i+len("chaos["):]
		if j := strings.IndexByte(rest, ']'); j >= 0 {
			return rest[:j]
		}
	}
	return StatusFailed
}

// ChaosCSV renders a chaos plan's journaled records: one row per grid
// point with its per-seed verdict. Byte-identical however the grid was
// executed (serially, in parallel, or resumed across sessions).
func ChaosCSV(w io.Writer, p Plan, records map[string]*Record) error {
	if _, err := fmt.Fprintln(w, "kernel,config,cores,iters,seed,verdict,exec_cycles"); err != nil {
		return err
	}
	for _, r := range p.Runs {
		rec, ok := records[r.Key()]
		if !ok {
			continue // unexecuted points are reported by the driver
		}
		cycles := uint64(0)
		if rec.Status == StatusOK && rec.Stats != nil {
			cycles = uint64(rec.Stats.ExecTime)
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%s,%d\n",
			r.Workload, r.Protocol, r.Cores, r.Iters, r.ChaosSeed, ChaosVerdict(rec), cycles); err != nil {
			return err
		}
	}
	return nil
}

// SweepCSV renders a sweep plan's records in cmd/sweep's CSV format.
func SweepCSV(w io.Writer, p Plan, records map[string]*Record) error {
	if _, err := fmt.Fprintln(w, "kernel,protocol,gap_cycles,exec_cycles,traffic_flit_hops"); err != nil {
		return err
	}
	for _, r := range p.Runs {
		rec, ok := records[r.Key()]
		if !ok || rec.Status != StatusOK {
			continue // failures are reported by the driver, not silently zeroed
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d\n",
			r.Workload, r.Protocol, r.GapMin, rec.Stats.ExecTime, rec.Stats.TotalTraffic); err != nil {
			return err
		}
	}
	return nil
}
