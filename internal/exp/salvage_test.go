package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeJournalLines writes raw lines (joined with \n) as a journal file.
func writeJournalLines(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func recordLine(t *testing.T, key string) string {
	t.Helper()
	b, err := json.Marshal(testRecord(key))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSalvageCleanJournalMatchesStrictLoader(t *testing.T) {
	path := writeJournalLines(t, recordLine(t, "aaaa"), recordLine(t, "bbbb"), "")
	strict, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, rep, err := SalvageJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Recovered != 2 || rep.TornTail {
		t.Fatalf("clean journal salvage report: %+v", rep)
	}
	if !reflect.DeepEqual(recs, strict) {
		t.Fatalf("salvage of a clean journal differs from LoadJournal:\n%v\nvs\n%v", recs, strict)
	}
}

// TestSalvageMidFileCorruption: the case LoadJournal refuses — a bad
// line with valid records after it — recovers everything parseable and
// quarantines the bad line with its exact byte extent.
func TestSalvageMidFileCorruption(t *testing.T) {
	good1 := recordLine(t, "aaaa")
	bad := `{"key":"bbbb","run":{"kind":XXX corrupted bytes`
	good2 := recordLine(t, "cccc")
	path := writeJournalLines(t, good1, bad, good2, "")

	// The strict loader must still refuse.
	if _, err := LoadJournal(path); err == nil {
		t.Fatalf("LoadJournal accepted mid-file corruption")
	}

	recs, rep, err := SalvageJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "aaaa" || recs[1].Key != "cccc" {
		t.Fatalf("salvage recovered %d records, want aaaa+cccc: %+v", len(recs), recs)
	}
	if rep.TornTail {
		t.Fatalf("mid-file corruption misclassified as a torn tail: %+v", rep)
	}
	if len(rep.Bad) != 1 {
		t.Fatalf("want 1 quarantined line, got %+v", rep.Bad)
	}
	bl := rep.Bad[0]
	if bl.Line != 2 {
		t.Errorf("bad line number %d, want 2", bl.Line)
	}
	if want := int64(len(good1) + 1); bl.Offset != want {
		t.Errorf("bad line offset %d, want %d", bl.Offset, want)
	}
	if bl.Length != len(bad) {
		t.Errorf("bad line length %d, want %d", bl.Length, len(bad))
	}
	if !strings.Contains(bl.Prefix, `"bbbb"`) {
		t.Errorf("bad line prefix does not identify the line: %q", bl.Prefix)
	}
	if bl.Error == "" {
		t.Errorf("bad line carries no parse error")
	}
}

func TestSalvageTornTail(t *testing.T) {
	path := writeJournalLines(t, recordLine(t, "aaaa"), `{"key":"bbbb","run":{"kind":"ker`)
	recs, rep, err := SalvageJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "aaaa" {
		t.Fatalf("torn-tail salvage kept %d records, want 1", len(recs))
	}
	if !rep.TornTail || len(rep.Bad) != 1 {
		t.Fatalf("torn tail not classified: %+v", rep)
	}
	if !strings.Contains(rep.String(), "torn tail") {
		t.Errorf("report summary does not mention the torn tail: %s", rep)
	}
}

// A record missing its key parses as JSON but is still quarantined.
func TestSalvageQuarantinesKeylessRecords(t *testing.T) {
	path := writeJournalLines(t, `{"run":{},"status":"ok","attempts":1}`, recordLine(t, "aaaa"), "")
	recs, rep, err := SalvageJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "aaaa" {
		t.Fatalf("keyless salvage kept %d records", len(recs))
	}
	if len(rep.Bad) != 1 || !strings.Contains(rep.Bad[0].Error, "no key") {
		t.Fatalf("keyless record not quarantined: %+v", rep.Bad)
	}
}

func TestSalvageSidecarRoundTrip(t *testing.T) {
	path := writeJournalLines(t, recordLine(t, "aaaa"), "not json at all", recordLine(t, "cccc"), "")
	_, rep, err := SalvageJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	side, err := rep.WriteSidecar()
	if err != nil {
		t.Fatal(err)
	}
	if side != SidecarPath(path) {
		t.Errorf("sidecar at %s, want %s", side, SidecarPath(path))
	}
	b, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	var back SalvageReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("sidecar is not valid JSON: %v", err)
	}
	if back.Recovered != 2 || len(back.Bad) != 1 || back.Bad[0].Offset == 0 {
		t.Errorf("sidecar round trip lost content: %+v", back)
	}
}

func TestRewriteJournalProducesStrictlyLoadableFile(t *testing.T) {
	path := writeJournalLines(t, recordLine(t, "aaaa"), "garbage", recordLine(t, "cccc"), "")
	recs, _, err := SalvageJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "repaired.jsonl")
	if err := RewriteJournal(dst, recs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJournal(dst)
	if err != nil {
		t.Fatalf("repaired journal fails the strict loader: %v", err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Fatalf("repair round trip mismatch")
	}
	// Refuses to clobber an existing file (the source, typically).
	if err := RewriteJournal(dst, recs); err == nil {
		t.Fatalf("RewriteJournal overwrote an existing file")
	}
}
