package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestChaosManifestExpand(t *testing.T) {
	m := Manifest{
		Name:    "chaos-x",
		Kernels: []string{"tatas-counter", "bar-tree"},
		Iters:   []int{5},
		Chaos:   &ChaosAxis{Seeds: 3, SeedBase: 10, Jitter: 8, Watchdog: 500_000},
	}
	p, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 kernels × 4 default configs × 1 core count × 1 iters × 3 seeds.
	if len(p.Runs) != 24 {
		t.Fatalf("expanded %d runs, want 24", len(p.Runs))
	}
	if !p.IsChaos() {
		t.Error("chaos plan not recognized as chaos")
	}
	keys := map[string]bool{}
	configs := map[string]bool{}
	for _, r := range p.Runs {
		if r.Kind != KindChaos {
			t.Fatalf("run %s has kind %q", r, r.Kind)
		}
		if r.ChaosSeed < 10 || r.ChaosSeed > 12 {
			t.Errorf("run %s: seed %d outside [10,12]", r, r.ChaosSeed)
		}
		if r.ChaosJitter != 8 || r.ChaosWatchdog != 500_000 {
			t.Errorf("run %s: jitter/watchdog not propagated", r)
		}
		keys[r.Key()] = true
		configs[r.Protocol] = true
	}
	if len(keys) != 24 {
		t.Errorf("%d distinct keys for 24 runs — seeds not keyed?", len(keys))
	}
	for _, want := range []string{"M", "DS0", "DS", "DSsig"} {
		if !configs[want] {
			t.Errorf("default chaos configs missing %q", want)
		}
	}
}

func TestChaosManifestErrors(t *testing.T) {
	cases := []Manifest{
		{Name: "a", Kernels: []string{"tatas-counter"}, Apps: []string{"barnes"}, Chaos: &ChaosAxis{Seeds: 2}},
		{Name: "b", Kernels: []string{"tatas-counter"}, Chaos: &ChaosAxis{Seeds: 0}},
		{Name: "c", Kernels: []string{"tatas-counter"}, Protocols: []string{"DSx"}, Chaos: &ChaosAxis{Seeds: 2}},
		{Name: "d", Kernels: []string{"no-such"}, Chaos: &ChaosAxis{Seeds: 2}},
		{Name: "e", Kernels: []string{"tatas-counter"}, Cores: []int{32}, Chaos: &ChaosAxis{Seeds: 2}},
	}
	for _, m := range cases {
		if _, err := m.Expand(); err == nil {
			t.Errorf("manifest %q: expected an expansion error", m.Name)
		}
	}
}

func TestChaosVerdictExtraction(t *testing.T) {
	cases := []struct {
		rec  Record
		want string
	}{
		{Record{Status: StatusOK}, "ok"},
		{Record{Status: StatusFailed, Error: "chaos[watchdog]: no core retired"}, "watchdog"},
		{Record{Status: StatusFailed, Error: "run x: chaos[violation]: 3 invariant violations"}, "violation"},
		{Record{Status: StatusFailed, Error: "panic: boom"}, StatusFailed},
	}
	for _, c := range cases {
		if got := ChaosVerdict(&c.rec); got != c.want {
			t.Errorf("ChaosVerdict(%q) = %q, want %q", c.rec.Error, got, c.want)
		}
	}
}

// TestChaosKillResumeByteIdenticalCSV interrupts a real chaos grid
// mid-flight and resumes it; the merged per-seed verdict CSV must be
// byte-identical to an uninterrupted serial run.
func TestChaosKillResumeByteIdenticalCSV(t *testing.T) {
	plan, err := ChaosPlan([]string{"tatas-counter"}, []string{"M", "DS"}, 16, 4, 3, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 6 {
		t.Fatalf("chaos plan has %d runs, want 6", len(plan.Runs))
	}

	refRecords, _, err := (&Engine{Workers: 1}).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := MergeCSV(&refCSV, plan, refRecords); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(refCSV.String(), ",ok,") {
		t.Fatalf("reference chaos CSV has no ok verdicts:\n%s", refCSV.String())
	}

	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	j, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := (&Engine{Workers: 2, StopAfter: 2, Journal: j, Prior: prior}).Execute(plan)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.Executed >= len(plan.Runs) {
		t.Fatalf("interruption executed the whole grid; test is vacuous")
	}

	j, prior, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	records, sum2, err := (&Engine{Workers: 2, Journal: j, Prior: prior}).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if sum2.Resumed != sum.Executed {
		t.Errorf("resume re-executed journaled runs: resumed %d, first session executed %d", sum2.Resumed, sum.Executed)
	}

	var gotCSV bytes.Buffer
	if err := MergeCSV(&gotCSV, plan, records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), refCSV.Bytes()) {
		t.Errorf("kill-and-resume chaos CSV diverges:\n--- resumed ---\n%s--- serial ---\n%s",
			gotCSV.String(), refCSV.String())
	}
}

// TestChaosRunKeysUnchangedForFigureRuns pins that adding the chaos
// fields did not invalidate pre-existing journals: a figure run's key is
// computed from the identical JSON as before (all chaos fields are
// omitempty and zero).
func TestChaosRunKeysUnchangedForFigureRuns(t *testing.T) {
	r := Run{Kind: KindKernel, Workload: "tatas-counter", Protocol: "M", Cores: 16, EqChecks: -1}
	if got := r.Key(); got != "4f267a348938fd13" {
		t.Errorf("figure run key drifted to %q — journaled results would re-execute", got)
	}
	// The structural reason keys survived the chaos fields: they are all
	// omitempty, so a figure run's canonical JSON never mentions them.
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "chaos") {
		t.Errorf("figure run JSON mentions chaos fields: %s", b)
	}
}
