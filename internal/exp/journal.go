package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"denovosync/internal/stats"
)

// Record statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Record is one journaled run outcome: the full run description (so a
// journal is self-describing), the status, and the sanitized result.
type Record struct {
	Key      string          `json:"key"`
	Fig      string          `json:"fig,omitempty"` // owning plan ID
	Run      Run             `json:"run"`
	Status   string          `json:"status"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Stats    *stats.RunStats `json:"stats,omitempty"`

	// Aux is an opaque executor-defined payload (Engine.Executor) that
	// round-trips through the journal. The fuzz campaign stores each
	// scenario's coverage result here, so a corpus-accepted run journaled
	// mid-campaign is deduplicated on resume by run key *with* its
	// result — the campaign replays its acceptance decisions from the
	// journal instead of re-simulating.
	Aux json.RawMessage `json:"aux,omitempty"`
}

// sanitizeStats copies rs without its host-dependent diagnostics
// (wall time, events/sec) and without the bulky per-core breakdown, so
// journal contents depend only on the simulated configuration and two
// journals of the same grid are semantically identical regardless of
// host, parallelism, or interruption history.
func sanitizeStats(rs *stats.RunStats) *stats.RunStats {
	if rs == nil {
		return nil
	}
	c := *rs
	c.WallTime = 0
	c.EventsPerSec = 0
	c.PerCore = nil
	return &c
}

// Journal is an append-only JSONL result log. Every Append is written
// and fsynced as one line, so a crash loses at most the in-flight
// record — and a torn final line is tolerated on load.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal loads any existing records from path and opens it for
// appending, creating it if needed.
func OpenJournal(path string) (*Journal, map[string]*Record, error) {
	prior, err := LoadJournal(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	byKey := make(map[string]*Record, len(prior))
	for _, rec := range prior {
		byKey[rec.Key] = rec // later lines win (e.g. a retried failure)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f, path: path}, byKey, nil
}

// LoadJournal reads the records of a journal file in file order.
func LoadJournal(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var parseErr error
	for sc.Scan() {
		line++
		if parseErr != nil {
			// A malformed line followed by more lines is corruption, not
			// a torn tail: refuse to silently drop results.
			return nil, parseErr
		}
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(b, rec); err != nil {
			parseErr = fmt.Errorf("exp: journal %s:%d: %w", path, line, err)
			continue
		}
		if rec.Key == "" {
			parseErr = fmt.Errorf("exp: journal %s:%d: record has no key", path, line)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("exp: reading journal %s: %w", path, err)
	}
	// parseErr still set here means the *last* line was malformed — the
	// signature of a crash mid-append. Drop it; the run re-executes.
	return out, nil
}

// Append durably writes one record.
func (j *Journal) Append(rec *Record) error {
	rec.Stats = sanitizeStats(rec.Stats)
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("exp: encoding journal record %s: %w", rec.Key, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("exp: appending to journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("exp: syncing journal %s: %w", j.path, err)
	}
	return nil
}

// Close releases the append handle, reporting any deferred write error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("exp: closing journal %s: %w", j.path, err)
	}
	return nil
}
