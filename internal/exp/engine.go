package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"denovosync/internal/backoff"
	"denovosync/internal/stats"
)

// ErrStopped reports that Execute returned before the grid completed —
// a requested stop (Stop channel, StopAfter) with every in-flight run
// finished and journaled. Re-running the same plan against the same
// journal resumes exactly where it left off.
var ErrStopped = errors.New("exp: stopped before the grid completed (journal preserved; run again to resume)")

// Engine executes a plan's pending runs on a bounded worker pool with
// per-run fault isolation. The zero value is usable: GOMAXPROCS
// workers, no timeout, no retries, no journal.
type Engine struct {
	// Workers bounds concurrent runs; <= 0 means GOMAXPROCS.
	Workers int

	// Timeout bounds one attempt's wall-clock time; 0 = none. A timed-out
	// simulation cannot be preempted, so its goroutine is abandoned (it
	// burns a core until process exit) and the attempt is recorded failed.
	Timeout time.Duration

	// Retries is the number of *extra* attempts after a failed one.
	Retries int

	// Backoff schedules the delay before each retry attempt (the shared
	// seeded exponential-backoff-with-jitter policy, internal/backoff).
	// Each run key retries on its own derived jitter stream, so the
	// schedule is deterministic however the grid is partitioned. The
	// zero value keeps the historical retry-immediately behavior.
	Backoff backoff.Policy

	// RetryFailed re-executes journaled failures instead of skipping them.
	RetryFailed bool

	// StopAfter stops dispatching new runs once this many have completed
	// in this session (0 = no limit). Deterministic stand-in for ^C in
	// tests and CI smoke checks.
	StopAfter int

	// Stop, when closed, stops dispatching new runs; in-flight runs
	// finish and are journaled.
	Stop <-chan struct{}

	// Journal, when set, durably records every completed run; Prior is
	// the already-journaled record set (from OpenJournal) to resume from.
	Journal *Journal
	Prior   map[string]*Record

	// Progress, when set, receives live progress lines (completed /
	// failed / remaining, runs/sec, ETA) at most every ProgressEvery
	// (default 2s) plus a final summary.
	Progress      io.Writer
	ProgressEvery time.Duration

	// Executor overrides how a run executes (nil = Execute). The aux
	// payload, if any, is journaled on the record (Record.Aux) so a
	// resumed session recovers executor-specific results — the fuzz
	// campaign's coverage verdicts — without re-running. Required for
	// KindScenario runs, which Execute cannot build on its own.
	Executor func(Run) (*stats.RunStats, json.RawMessage, error)
}

// Summary describes one Execute call's outcome.
type Summary struct {
	Total    int           // grid points in the plan
	Resumed  int           // skipped: already journaled
	Deduped  int           // skipped: identical to an earlier grid point
	Executed int           // run in this session
	Failed   int           // failed records (this session + resumed)
	Elapsed  time.Duration // wall clock of this session
}

// RunsPerSec is the session throughput.
func (s Summary) RunsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Executed) / s.Elapsed.Seconds()
}

func (s Summary) String() string {
	dedup := ""
	if s.Deduped > 0 {
		dedup = fmt.Sprintf(", %d deduplicated", s.Deduped)
	}
	return fmt.Sprintf("%d/%d complete (%d executed, %d resumed, %d failed%s) in %.1fs (%.2f runs/s)",
		s.Resumed+s.Deduped+s.Executed, s.Total, s.Executed, s.Resumed, s.Failed, dedup,
		s.Elapsed.Seconds(), s.RunsPerSec())
}

// Execute runs every plan run that is not already journaled, returning
// the merged record set (prior + this session) keyed by run key. The
// record set is complete iff err is nil; ErrStopped means a clean
// partial run. Failed runs do not make Execute fail — inspect the
// records (or use Figure / the Summary) to surface them.
func (e *Engine) Execute(plan Plan) (map[string]*Record, Summary, error) {
	start := time.Now()
	sum := Summary{Total: len(plan.Runs)}

	records := make(map[string]*Record, len(plan.Runs))
	var pending []Run
	seen := make(map[string]bool, len(plan.Runs))
	for _, r := range plan.Runs {
		k := r.Key()
		if seen[k] {
			// Identical configuration under a different label (e.g. an
			// ablation variant that coincides with the paper default):
			// execute once, render every row from the shared record.
			sum.Deduped++
			continue
		}
		seen[k] = true
		if prev, ok := e.Prior[k]; ok && (prev.Status == StatusOK || !e.RetryFailed) {
			records[k] = prev
			sum.Resumed++
			if prev.Status == StatusFailed {
				sum.Failed++
			}
			continue
		}
		pending = append(pending, r)
	}

	if len(pending) == 0 {
		sum.Elapsed = time.Since(start)
		e.progressf("exp: %s: %s\n", plan.ID, sum)
		return records, sum, nil
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	// quit stops the feeder; closed on StopAfter, Stop, or journal error.
	quit := make(chan struct{})
	var quitOnce sync.Once
	stopFeed := func() { quitOnce.Do(func() { close(quit) }) }
	if e.Stop != nil {
		stopC := e.Stop
		go func() {
			select {
			case <-stopC:
				stopFeed()
			case <-quit:
			}
		}()
	}
	defer stopFeed()

	jobs := make(chan Run)
	go func() {
		defer close(jobs)
		for _, r := range pending {
			select {
			case jobs <- r:
			case <-quit:
				return
			}
		}
	}()

	out := make(chan *Record)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				out <- e.runOne(r, plan.ID)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	every := e.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	var lastProgress time.Time
	var journalErr error
	for rec := range out {
		records[rec.Key] = rec
		sum.Executed++
		if rec.Status == StatusFailed {
			sum.Failed++
			e.progressf("exp: FAILED %s (attempt %d): %s\n", rec.Run, rec.Attempts, rec.Error)
		}
		if e.Journal != nil && journalErr == nil {
			if err := e.Journal.Append(rec); err != nil {
				journalErr = err
				stopFeed()
			}
		}
		if e.StopAfter > 0 && sum.Executed >= e.StopAfter {
			stopFeed()
		}
		if e.Progress != nil && time.Since(lastProgress) >= every {
			lastProgress = time.Now()
			done := sum.Resumed + sum.Deduped + sum.Executed
			remaining := sum.Total - done
			rate := float64(sum.Executed) / time.Since(start).Seconds()
			eta := "?"
			if rate > 0 {
				eta = (time.Duration(float64(remaining) / rate * float64(time.Second))).Round(time.Second).String()
			}
			e.progressf("exp: %s: %d/%d done (%d failed), %d remaining, %.2f runs/s, ETA %s\n",
				plan.ID, done, sum.Total, sum.Failed, remaining, rate, eta)
		}
	}

	sum.Elapsed = time.Since(start)
	e.progressf("exp: %s: %s\n", plan.ID, sum)
	if journalErr != nil {
		return records, sum, journalErr
	}
	if sum.Executed < len(pending) {
		return records, sum, ErrStopped
	}
	return records, sum, nil
}

func (e *Engine) progressf(format string, args ...interface{}) {
	if e.Progress != nil {
		fmt.Fprintf(e.Progress, format, args...)
	}
}

// runOne executes one grid point with bounded retry, converting panics
// and timeouts into a failed record rather than a dead process.
func (e *Engine) runOne(r Run, fig string) *Record {
	exec := e.Executor
	if exec == nil {
		exec = func(r Run) (*stats.RunStats, json.RawMessage, error) {
			rs, err := Execute(r)
			return rs, nil, err
		}
	}
	rec := &Record{Key: r.Key(), Fig: fig, Run: r}
	for attempt := 1; ; attempt++ {
		rec.Attempts = attempt
		rs, aux, err := e.isolated(exec, r)
		if err == nil {
			rec.Status, rec.Error, rec.Stats, rec.Aux = StatusOK, "", sanitizeStats(rs), aux
			return rec
		}
		rec.Status, rec.Error, rec.Stats, rec.Aux = StatusFailed, err.Error(), nil, nil
		if attempt > e.Retries {
			return rec
		}
		// A stop request cancels the wait (the failed record stands as-is
		// and the grid resumes it — with -retry-failed — next session).
		if !e.Backoff.Keyed(rec.Key).Sleep(attempt, e.Stop) {
			return rec
		}
	}
}

// isolated runs one attempt in its own goroutine so a panicking kernel
// configuration fails one grid point, not the whole grid, and so an
// attempt can be abandoned on timeout.
func (e *Engine) isolated(exec func(Run) (*stats.RunStats, json.RawMessage, error), r Run) (*stats.RunStats, json.RawMessage, error) {
	type outcome struct {
		rs  *stats.RunStats
		aux json.RawMessage
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned attempt must not block
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{nil, nil, fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
			}
		}()
		rs, aux, err := exec(r)
		ch <- outcome{rs, aux, err}
	}()
	if e.Timeout <= 0 {
		o := <-ch
		return o.rs, o.aux, o.err
	}
	t := time.NewTimer(e.Timeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.rs, o.aux, o.err
	case <-t.C:
		return nil, nil, fmt.Errorf("run exceeded the %v timeout (attempt abandoned)", e.Timeout)
	}
}
