package exp

import (
	"strings"
	"testing"
)

func TestRunKeyProperties(t *testing.T) {
	base := Run{Kind: KindKernel, Workload: "tatas-counter", Protocol: "DS", Cores: 16, EqChecks: -1}
	k := base.Key()
	if len(k) != 16 {
		t.Fatalf("key %q: want 16 hex digits", k)
	}
	if base.Key() != k {
		t.Fatalf("key is not stable across calls")
	}

	// Cosmetic fields must not affect the key (relabeling a figure must
	// not invalidate a journal).
	cosmetic := base
	cosmetic.Display, cosmetic.Label = "counter", "DS/paper"
	if cosmetic.Key() != k {
		t.Errorf("Display/Label changed the key: %s vs %s", cosmetic.Key(), k)
	}

	// Every semantic field must affect the key.
	mutations := map[string]func(*Run){
		"Kind":            func(r *Run) { r.Kind = KindApp },
		"Workload":        func(r *Run) { r.Workload = "tatas-heap" },
		"Protocol":        func(r *Run) { r.Protocol = "M" },
		"Cores":           func(r *Run) { r.Cores = 64 },
		"Iters":           func(r *Run) { r.Iters = 7 },
		"EqChecks":        func(r *Run) { r.EqChecks = 0 },
		"GapMin":          func(r *Run) { r.GapMin = 400 },
		"GapMax":          func(r *Run) { r.GapMax = 501 },
		"SWBackoffMin":    func(r *Run) { r.SWBackoffMin = 128 },
		"SWBackoffMax":    func(r *Run) { r.SWBackoffMax = 2048 },
		"NoPadding":       func(r *Run) { r.NoPadding = true },
		"InvalidateAll":   func(r *Run) { r.InvalidateAll = true },
		"ForceMCS":        func(r *Run) { r.ForceMCS = true },
		"UseSignatures":   func(r *Run) { r.UseSignatures = true },
		"Scale":           func(r *Run) { r.Scale = 10 },
		"BackoffBits":     func(r *Run) { r.BackoffBits = 6 },
		"Increment":       func(r *Run) { r.Increment = 256 },
		"Signatures":      func(r *Run) { r.Signatures = true },
		"LineGranularity": func(r *Run) { r.LineGranularity = true },
		"LinkContention":  func(r *Run) { r.LinkContention = true },
	}
	for field, mutate := range mutations {
		m := base
		mutate(&m)
		if m.Key() == k {
			t.Errorf("mutating %s did not change the key", field)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	cases := []struct {
		name string
		run  Run
		want string
	}{
		{"unknown kernel", Run{Kind: KindKernel, Workload: "nope", Protocol: "M", Cores: 16}, "unknown kernel"},
		{"unknown app", Run{Kind: KindApp, Workload: "nope", Protocol: "M", Cores: 16}, "unknown app"},
		{"unknown protocol", Run{Kind: KindKernel, Workload: "tatas-counter", Protocol: "X", Cores: 16}, "unknown protocol"},
		{"bad cores", Run{Kind: KindKernel, Workload: "tatas-counter", Protocol: "M", Cores: 12}, "unsupported core count"},
		{"bad kind", Run{Kind: "job", Workload: "tatas-counter", Protocol: "M", Cores: 16}, "unknown run kind"},
	}
	for _, c := range cases {
		if _, err := Execute(c.run); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got err %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestExecuteKernelRun(t *testing.T) {
	rs, err := Execute(Run{
		Kind: KindKernel, Workload: "tatas-counter", Protocol: "DS",
		Cores: 16, Iters: 2, EqChecks: -1,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rs.ExecTime == 0 || rs.TotalTraffic == 0 {
		t.Errorf("implausible stats: exec=%d traffic=%d", rs.ExecTime, rs.TotalTraffic)
	}
}

func TestManifestExpand(t *testing.T) {
	eq := 0
	m := Manifest{
		Name:      "grid",
		Kernels:   []string{"tatas-counter", "nb-m-s-queue"},
		Protocols: []string{"M", "DS"},
		Cores:     []int{16, 64},
		Iters:     []int{4},
		Gaps:      []int64{400, 800},
		EqChecks:  &eq,
	}
	p, err := m.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if want := 2 * 2 * 2 * 2; len(p.Runs) != want {
		t.Fatalf("expanded %d runs, want %d", len(p.Runs), want)
	}
	for _, r := range p.Runs {
		if r.EqChecks != 0 {
			t.Errorf("EqChecks not propagated: %+v", r)
		}
		if r.GapMin == 0 || r.GapMax != r.GapMin+r.GapMin/4+1 {
			t.Errorf("gap window wrong: [%d,%d)", r.GapMin, r.GapMax)
		}
	}

	// Omitted EqChecks keeps the as-adapted default.
	p2, err := Manifest{Name: "d", Kernels: []string{"tatas-counter"}}.Expand()
	if err != nil {
		t.Fatalf("Expand default: %v", err)
	}
	if len(p2.Runs) != 3 || p2.Runs[0].EqChecks != -1 {
		t.Fatalf("defaults wrong: %d runs, EqChecks %d", len(p2.Runs), p2.Runs[0].EqChecks)
	}

	for _, bad := range []Manifest{
		{Kernels: []string{"tatas-counter"}},                                      // no name
		{Name: "x"},                                                               // no workloads
		{Name: "x", Kernels: []string{"nope"}},                                    // unknown kernel
		{Name: "x", Apps: []string{"nope"}},                                       // unknown app
		{Name: "x", Kernels: []string{"tatas-counter"}, Cores: []int{32}},         // bad cores
		{Name: "x", Kernels: []string{"tatas-counter"}, Protocols: []string{"Q"}}, // bad protocol
		{Name: "x", Apps: []string{"lu"}, Cores: []int{16, 64}},                   // apps pin cores
	} {
		if _, err := bad.Expand(); err == nil {
			t.Errorf("Expand(%+v): want error", bad)
		}
	}
}
