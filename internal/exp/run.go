// Package exp is the experiment-orchestration layer above the simulator:
// declarative grid manifests expanded into content-addressed runs, a
// worker pool that executes them with per-run fault isolation (panic
// recovery, timeout, bounded retry), a durable JSONL result journal that
// makes interrupted grids resumable, and a merge step that renders the
// journal back into the repo's figure and sweep CSV formats.
//
// The layer is deliberately outside the simulator's determinism
// boundary: every individual simulation is cycle-exact deterministic, so
// a grid's merged results are byte-identical whether it ran serially,
// in parallel, or across several interrupted sessions — the journal only
// changes *when* a run executes, never what it produces.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"denovosync/internal/alloc"
	"denovosync/internal/apps"
	"denovosync/internal/chaos"
	"denovosync/internal/kernels"
	"denovosync/internal/locks"
	"denovosync/internal/machine"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// Run kinds.
const (
	KindKernel = "kernel"
	KindApp    = "app"
	// KindChaos is one chaos grid point: a self-contained
	// chaos.RunSpec execution (perturbed run + baseline + differential
	// check) whose verdict lands in the journal. For chaos runs the
	// Protocol field holds the chaos protocol-config abbreviation
	// (M/DS0/DS/DSsig) rather than a plain protocol.
	KindChaos = "chaos"
	// KindScenario is one fuzz-scenario execution: the Scenario field
	// carries the canonical scenario JSON (internal/fuzz) and Workload
	// its content fingerprint. Scenario runs need an Engine.Executor —
	// the exp layer cannot execute them itself without an import cycle.
	KindScenario = "scenario"
)

// Run is one point of an experiment grid: everything needed to rebuild
// the machine and workload configuration from scratch. The zero value of
// each optional field means "the paper default" (with the one exception
// of EqChecks, where -1 is the as-adapted default and 0 is the §7.1.3
// ablation — planners set it explicitly).
//
// Runs are content-addressed: Key is a hash of every semantically
// meaningful field, so a journaled result is reused on resume only if
// the configuration is bit-identical. Display and Label are cosmetic
// (table rendering) and excluded from the key.
type Run struct {
	Kind     string `json:"kind"`     // "kernel" | "app"
	Workload string `json:"workload"` // kernel or app slug
	Protocol string `json:"protocol"` // M | DS0 | DS
	Cores    int    `json:"cores"`

	// Display overrides the workload name in rendered tables; Label
	// overrides the protocol column (ablation variants). Not keyed.
	Display string `json:"display,omitempty"`
	Label   string `json:"label,omitempty"`

	// Kernel configuration (see kernels.Config).
	Iters         int       `json:"iters,omitempty"`
	EqChecks      int       `json:"eq_checks"`
	GapMin        sim.Cycle `json:"gap_min,omitempty"`
	GapMax        sim.Cycle `json:"gap_max,omitempty"`
	SWBackoffMin  sim.Cycle `json:"sw_backoff_min,omitempty"`
	SWBackoffMax  sim.Cycle `json:"sw_backoff_max,omitempty"`
	NoPadding     bool      `json:"no_padding,omitempty"`
	InvalidateAll bool      `json:"invalidate_all,omitempty"`
	ForceMCS      bool      `json:"force_mcs,omitempty"`
	UseSignatures bool      `json:"use_signatures,omitempty"`

	// App configuration: workload divisor (1 = paper scale).
	Scale int `json:"scale,omitempty"`

	// Chaos configuration (Kind == KindChaos). All omitempty: adding
	// them left every pre-existing run key unchanged.
	ChaosSeed     uint64    `json:"chaos_seed,omitempty"`
	ChaosJitter   sim.Cycle `json:"chaos_jitter,omitempty"`
	ChaosWatchdog sim.Cycle `json:"chaos_watchdog,omitempty"`

	// Scenario carries the canonical scenario JSON for KindScenario runs
	// (internal/fuzz emits it; Workload holds its fingerprint). It is
	// keyed: two runs of different scenarios never collide. Adding the
	// field left every pre-existing run key unchanged (omitempty).
	Scenario json.RawMessage `json:"scenario,omitempty"`

	// Machine parameter overrides (zero = the Table 1 value for Cores).
	BackoffBits     uint      `json:"backoff_bits,omitempty"`
	Increment       sim.Cycle `json:"increment,omitempty"`
	Signatures      bool      `json:"signatures,omitempty"`
	LineGranularity bool      `json:"line_granularity,omitempty"`
	LinkContention  bool      `json:"link_contention,omitempty"`
}

// keySchema versions the Key computation: bump it whenever Run's keyed
// fields or their meaning change, so stale journals are re-executed
// rather than silently misread.
const keySchema = "exp.v1:"

// Key returns the run's deterministic content hash (16 hex digits).
// Cosmetic fields (Display, Label) do not participate, so relabeling a
// figure does not invalidate journaled results.
func (r Run) Key() string {
	r.Display, r.Label = "", ""
	b, err := json.Marshal(r) // struct field order is fixed → canonical
	if err != nil {
		panic(fmt.Sprintf("exp: marshaling Run: %v", err)) // unreachable: Run has no unmarshalable fields
	}
	sum := sha256.Sum256(append([]byte(keySchema), b...))
	return hex.EncodeToString(sum[:8])
}

// display returns the table workload name.
func (r Run) display() string {
	if r.Display != "" {
		return r.Display
	}
	return r.Workload
}

// String identifies the run for error messages and progress lines.
func (r Run) String() string {
	s := fmt.Sprintf("%s/%s/%dc", r.Workload, r.Protocol, r.Cores)
	if r.Kind == KindChaos {
		s += fmt.Sprintf("/seed=%d", r.ChaosSeed)
	}
	if r.Label != "" {
		s += "/" + r.Label
	}
	return s
}

// ParseProtocol maps a figure abbreviation to a machine protocol.
func ParseProtocol(s string) (machine.Protocol, error) {
	switch s {
	case "M":
		return machine.MESI, nil
	case "DS0":
		return machine.DeNovoSync0, nil
	case "DS":
		return machine.DeNovoSync, nil
	}
	return 0, fmt.Errorf("exp: unknown protocol %q (want M, DS0 or DS)", s)
}

// LPs partitions every machine Execute builds into that many logical
// processes (the -lps knob; <= 1 keeps the serial engine, larger values
// clamp to the machine's tile count). Deliberately a package knob and
// NOT a Run field: partitioning is result-invariant — the pdes
// differential battery pins parallel runs to the serial fingerprints
// bit-for-bit — so it must never enter Run.Key() or journal contents.
// Chaos runs (KindChaos) build their machines through chaos.RunSpec and
// stay serial regardless: the legacy RNG perturber is order-dependent.
var LPs int

// params builds the machine configuration: the Table 1 preset for the
// run's core count plus any explicit overrides.
func (r Run) params() (machine.Params, error) {
	var p machine.Params
	switch r.Cores {
	case 16:
		p = machine.Params16()
	case 64:
		p = machine.Params64()
	default:
		return p, fmt.Errorf("exp: unsupported core count %d (want 16 or 64)", r.Cores)
	}
	if r.BackoffBits != 0 {
		p.BackoffBits = r.BackoffBits
	}
	if r.Increment != 0 {
		p.DefaultIncrement = r.Increment
	}
	p.Signatures = r.Signatures
	p.LineGranularity = r.LineGranularity
	p.LinkContention = r.LinkContention
	if !r.LinkContention { // link contention is serial-only
		if p.LPs = LPs; p.LPs > p.Cores {
			p.LPs = p.Cores
		}
	}
	return p, nil
}

// kernelConfig maps the run onto kernels.Config.
func (r Run) kernelConfig() kernels.Config {
	return kernels.Config{
		Cores:         r.Cores,
		Iters:         r.Iters,
		EqChecks:      r.EqChecks,
		NonSynchMin:   r.GapMin,
		NonSynchMax:   r.GapMax,
		LockBackoff:   locks.BackoffRange{Min: r.SWBackoffMin, Max: r.SWBackoffMax},
		NoPadding:     r.NoPadding,
		InvalidateAll: r.InvalidateAll,
		ForceMCS:      r.ForceMCS,
		UseSignatures: r.UseSignatures,
	}
}

func (r Run) scale() int {
	if r.Scale < 1 {
		return 1
	}
	return r.Scale
}

// chaosSpec maps a chaos run onto chaos.Spec. The EqChecks conventions
// differ (exp: -1 = default, 0 = disabled; chaos.Spec: 0 = default,
// -1 = disabled), so the value is translated.
func (r Run) chaosSpec() chaos.Spec {
	eq := r.EqChecks
	switch eq {
	case -1:
		eq = 0
	case 0:
		eq = -1
	}
	return chaos.Spec{
		Kernel:         r.Workload,
		Config:         r.Protocol,
		Cores:          r.Cores,
		Iters:          r.Iters,
		EqChecks:       eq,
		Seed:           r.ChaosSeed,
		MaxJitter:      r.ChaosJitter,
		WatchdogCycles: r.ChaosWatchdog,
	}
}

// Execute builds a fresh machine and runs the workload. Each call is
// fully independent (its own address space and memory image), which is
// what makes grid points safe to execute concurrently.
func Execute(r Run) (*stats.RunStats, error) {
	if r.Kind == KindChaos {
		// The verdict travels in the error string ("chaos[verdict]: ...",
		// fully deterministic), so the journal records it per seed and
		// ChaosCSV can render it without a schema change.
		res := chaos.RunSpec(r.chaosSpec())
		if err := res.Err(); err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	if r.Kind == KindScenario {
		return nil, fmt.Errorf("exp: scenario runs need an Engine.Executor (internal/fuzz provides one)")
	}
	prot, err := ParseProtocol(r.Protocol)
	if err != nil {
		return nil, err
	}
	p, err := r.params()
	if err != nil {
		return nil, err
	}
	switch r.Kind {
	case KindKernel, "":
		k, ok := kernels.ByID(r.Workload)
		if !ok {
			return nil, fmt.Errorf("exp: unknown kernel %q", r.Workload)
		}
		m := machine.New(p, prot, alloc.New())
		return kernels.Run(k, m, r.kernelConfig())
	case KindApp:
		a, ok := apps.ByID(r.Workload)
		if !ok {
			return nil, fmt.Errorf("exp: unknown app %q", r.Workload)
		}
		m := machine.New(p, prot, alloc.New())
		return apps.RunSig(a, m, r.scale(), r.UseSignatures)
	}
	return nil, fmt.Errorf("exp: unknown run kind %q", r.Kind)
}
