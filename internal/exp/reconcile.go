package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Journal reconciliation: merge N append-only journals — written by
// different machines, sessions, or fabric workers — into one record set
// keyed by content-addressed run key. Because every run key hashes the
// full configuration and every simulation is cycle-exact deterministic,
// two records for the same key MUST carry the same result: an
// identical-key/identical-fingerprint pair is a trivial duplicate, and
// an identical-key/different-result pair is not a merge conflict to
// resolve but a determinism bug to report (Bayou's ordered-log merge
// with the strongest possible conflict oracle). Reconcile never picks a
// winner silently — conflicting keys are escalated as structured
// Conflict findings and the summary's Err makes drivers fail loudly.

// ResultFingerprint is the content hash of what a record claims the run
// produced: status plus the sanitized stats and aux payload. Two
// journals agree on a key iff their records' fingerprints match. Error
// text, attempt counts, and the owning figure are excluded — they
// legitimately vary across hosts and sessions without the *result*
// differing.
func (rec *Record) ResultFingerprint() string {
	probe := struct {
		Status string          `json:"status"`
		Stats  interface{}     `json:"stats,omitempty"`
		Aux    json.RawMessage `json:"aux,omitempty"`
	}{Status: rec.Status, Aux: rec.Aux}
	if rec.Stats != nil {
		probe.Stats = sanitizeStats(rec.Stats)
	}
	b, err := json.Marshal(probe)
	if err != nil {
		panic(fmt.Sprintf("exp: marshaling record fingerprint: %v", err)) // unreachable: Record round-trips JSON
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Source is one journal's worth of records entering a merge, with the
// name (path, worker ID) conflict findings should blame.
type Source struct {
	Name    string
	Records []*Record
}

// Conflict is a structured determinism finding: one run key with two or
// more successful records whose results differ. Given content-addressed
// keys and a deterministic simulator this must never happen, so a
// Conflict means a simulator (or journal-integrity) bug, and the merge
// refuses to pick a side.
type Conflict struct {
	Key string `json:"key"`
	Run Run    `json:"run"`
	// Results holds one entry per distinct fingerprint, naming every
	// source that produced it.
	Results []ConflictSide `json:"results"`
}

// ConflictSide is one of the disagreeing results.
type ConflictSide struct {
	Fingerprint string   `json:"fingerprint"`
	Sources     []string `json:"sources"`
	Record      *Record  `json:"record"`
}

func (c Conflict) String() string {
	var sides []string
	for _, s := range c.Results {
		sides = append(sides, fmt.Sprintf("%s from %s", s.Fingerprint, strings.Join(s.Sources, "+")))
	}
	return fmt.Sprintf("determinism conflict on %s (%s): %s", c.Key, c.Run.String(), strings.Join(sides, " vs "))
}

// MergeSummary describes one Reconcile pass.
type MergeSummary struct {
	Sources    []string   `json:"sources"`
	Records    int        `json:"records"`    // records read across all sources
	Unique     int        `json:"unique"`     // distinct keys in the merged set
	Duplicates int        `json:"duplicates"` // identical-key/identical-fingerprint dedups
	Superseded int        `json:"superseded"` // failed records replaced by a success
	Conflicts  []Conflict `json:"conflicts,omitempty"`
}

// Err surfaces conflicts as a hard error listing every affected key;
// a clean merge returns nil.
func (s *MergeSummary) Err() error {
	if len(s.Conflicts) == 0 {
		return nil
	}
	var lines []string
	for _, c := range s.Conflicts {
		lines = append(lines, "  "+c.String())
	}
	return fmt.Errorf("exp: %d determinism conflict(s) — identical run keys with different results (file a bug, do not merge):\n%s",
		len(s.Conflicts), strings.Join(lines, "\n"))
}

func (s *MergeSummary) String() string {
	return fmt.Sprintf("%d sources, %d records -> %d unique (%d duplicates, %d superseded failures, %d conflicts)",
		len(s.Sources), s.Records, s.Unique, s.Duplicates, s.Superseded, len(s.Conflicts))
}

// merged tracks one key's state during a merge.
type merged struct {
	rec   *Record
	fp    string              // ResultFingerprint of rec (ok records only)
	srcs  map[string][]string // fingerprint -> sources that produced it
	order []string            // fingerprint first-seen order (deterministic findings)
}

// Reconcile merges record sets by run key under the determinism
// contract. Within and across sources:
//
//   - a success supersedes any failure for the same key (the retry
//     semantic journals already rely on);
//   - two successes must agree on ResultFingerprint — agreement is a
//     duplicate, disagreement a Conflict finding;
//   - competing failures keep the record with the most attempts (error
//     text may legitimately differ across hosts — not a conflict).
//
// The merged map is complete even when conflicts exist (each conflicted
// key keeps its first-seen success so inspection tools still work), but
// callers must check summary.Err() before trusting or rendering it.
func Reconcile(sources []Source) (map[string]*Record, *MergeSummary) {
	sum := &MergeSummary{}
	state := make(map[string]*merged)
	for _, src := range sources {
		sum.Sources = append(sum.Sources, src.Name)
		for _, rec := range src.Records {
			sum.Records++
			m := state[rec.Key]
			if m == nil {
				m = &merged{srcs: map[string][]string{}}
				state[rec.Key] = m
			}
			if rec.Status == StatusOK {
				fp := rec.ResultFingerprint()
				if _, seen := m.srcs[fp]; !seen {
					m.order = append(m.order, fp)
				}
				m.srcs[fp] = append(m.srcs[fp], src.Name)
				switch {
				case m.rec == nil || m.rec.Status != StatusOK:
					if m.rec != nil {
						sum.Superseded++
					}
					m.rec, m.fp = rec, fp
				case m.fp == fp:
					sum.Duplicates++
				}
				// A disagreeing fingerprint is detected below once all
				// sources are in; keep the first-seen success.
				continue
			}
			// Failed record: only survives while no success exists.
			switch {
			case m.rec == nil:
				m.rec = rec
			case m.rec.Status == StatusOK:
				sum.Superseded++
			case rec.Attempts > m.rec.Attempts:
				m.rec = rec
				sum.Duplicates++
			default:
				sum.Duplicates++
			}
		}
	}

	out := make(map[string]*Record, len(state))
	keys := make([]string, 0, len(state))
	for k := range state { // order-insensitive: keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := state[k]
		out[k] = m.rec
		sum.Unique++
		if len(m.order) > 1 {
			c := Conflict{Key: k, Run: m.rec.Run}
			for _, fp := range m.order {
				srcs := m.srcs[fp]
				side := ConflictSide{Fingerprint: fp, Sources: srcs}
				if fp == m.fp {
					side.Record = m.rec
				}
				c.Results = append(c.Results, side)
			}
			sum.Conflicts = append(sum.Conflicts, c)
		}
	}
	return out, sum
}

// ReconcileJournals loads and merges journal files. With salvage false
// the strict loader applies (mid-file corruption is an error); with
// salvage true damaged journals contribute their recoverable records
// and each repair writes its sidecar report.
func ReconcileJournals(paths []string, salvage bool) (map[string]*Record, *MergeSummary, error) {
	var sources []Source
	for _, path := range paths {
		var recs []*Record
		var err error
		if salvage {
			var rep *SalvageReport
			recs, rep, err = SalvageJournal(path)
			if err == nil && !rep.Clean() {
				if _, werr := rep.WriteSidecar(); werr != nil {
					return nil, nil, werr
				}
			}
		} else {
			recs, err = LoadJournal(path)
		}
		if err != nil {
			return nil, nil, err
		}
		sources = append(sources, Source{Name: path, Records: recs})
	}
	records, sum := Reconcile(sources)
	return records, sum, nil
}
