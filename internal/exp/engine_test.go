package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// fakePlan builds an n-point grid that a fake executor can serve.
func fakePlan(n int) Plan {
	p := Plan{ID: "fake"}
	for i := 0; i < n; i++ {
		p.Runs = append(p.Runs, Run{
			Kind: KindKernel, Workload: "tatas-counter", Protocol: "M",
			Cores: 16, EqChecks: -1, Iters: i + 1, // Iters distinguishes the keys
		})
	}
	return p
}

// fakeExec returns a deterministic result derived from the run content
// and counts executions per key.
type fakeExec struct {
	mu    sync.Mutex
	count map[string]int
}

func newFakeExec() *fakeExec { return &fakeExec{count: map[string]int{}} }

func (f *fakeExec) exec(r Run) (*stats.RunStats, json.RawMessage, error) {
	f.mu.Lock()
	f.count[r.Key()]++
	f.mu.Unlock()
	return &stats.RunStats{ExecTime: sim.Cycle(1000 + r.Iters), TotalTraffic: uint64(10 * r.Iters)}, nil, nil
}

func (f *fakeExec) executions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.count {
		n += c
	}
	return n
}

func TestEngineStopAfterAndResumeExecutesNothingTwice(t *testing.T) {
	plan := fakePlan(9)
	path := filepath.Join(t.TempDir(), "grid.jsonl")

	j, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := newFakeExec()
	eng := &Engine{Workers: 4, Journal: j, Prior: prior, StopAfter: 3, Executor: fake.exec}
	_, sum, err := eng.Execute(plan)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("interrupted Execute: err=%v, want ErrStopped", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	firstBatch := fake.executions()
	// In-flight runs finish after the stop, so at least StopAfter and at
	// most StopAfter+workers runs completed; all must be journaled.
	if firstBatch < 3 || firstBatch > 3+4 {
		t.Fatalf("first session executed %d runs, want 3..7", firstBatch)
	}
	if sum.Executed != firstBatch {
		t.Fatalf("summary says %d executed, fake saw %d", sum.Executed, firstBatch)
	}

	// Resume: only the missing runs execute; nothing re-runs.
	j, prior, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != firstBatch {
		t.Fatalf("journal has %d records, want %d", len(prior), firstBatch)
	}
	fake2 := newFakeExec()
	eng2 := &Engine{Workers: 4, Journal: j, Prior: prior, Executor: fake2.exec}
	records, sum2, err := eng2.Execute(plan)
	if err != nil {
		t.Fatalf("resumed Execute: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := fake2.executions(), len(plan.Runs)-firstBatch; got != want {
		t.Errorf("resume executed %d runs, want exactly the %d missing ones", got, want)
	}
	if sum2.Resumed != firstBatch {
		t.Errorf("resume skipped %d, want %d", sum2.Resumed, firstBatch)
	}
	for _, r := range plan.Runs {
		if fake.count[r.Key()]+fake2.count[r.Key()] != 1 {
			t.Errorf("run %s executed %d+%d times, want exactly once",
				r, fake.count[r.Key()], fake2.count[r.Key()])
		}
	}
	if len(records) != len(plan.Runs) {
		t.Errorf("merged record set has %d entries, want %d", len(records), len(plan.Runs))
	}
}

// TestEngineDeduplicatesIdenticalRuns: two grid points with identical
// configuration but different labels (the hwparams ablation's "paper"
// and "inc=1" variants coincide at 16 cores) execute exactly once, and
// both plan rows render from the shared record.
func TestEngineDeduplicatesIdenticalRuns(t *testing.T) {
	r := Run{Kind: KindKernel, Workload: "tatas-counter", Protocol: "M", Cores: 16, EqChecks: -1}
	dup := r
	dup.Label = "DS/paper" // cosmetic: same key
	plan := Plan{ID: "dup", Runs: []Run{r, dup}}
	fake := newFakeExec()
	_, sum, err := (&Engine{Executor: fake.exec}).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if fake.executions() != 1 {
		t.Errorf("duplicate grid point executed %d times, want 1", fake.executions())
	}
	if sum.Executed != 1 || sum.Deduped != 1 || sum.Total != 2 {
		t.Errorf("summary %+v: want 1 executed, 1 deduped of 2", sum)
	}
	if !strings.Contains(sum.String(), "2/2 complete") || !strings.Contains(sum.String(), "1 deduplicated") {
		t.Errorf("summary string does not account for the duplicate: %s", sum)
	}
}

func TestEnginePanicIsolation(t *testing.T) {
	plan := fakePlan(5)
	bad := plan.Runs[2].Key()
	eng := &Engine{
		Workers: 2,
		Retries: 1,
		Executor: func(r Run) (*stats.RunStats, json.RawMessage, error) {
			if r.Key() == bad {
				panic("injected kernel bug")
			}
			return &stats.RunStats{ExecTime: 1}, nil, nil
		},
	}
	records, sum, err := eng.Execute(plan)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if sum.Failed != 1 || sum.Executed != 5 {
		t.Fatalf("summary %+v: want 5 executed, 1 failed", sum)
	}
	rec := records[bad]
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "injected kernel bug") {
		t.Errorf("panicking run not recorded as failed: %+v", rec)
	}
	if rec.Attempts != 2 {
		t.Errorf("panicking run attempted %d times, want Retries+1 = 2", rec.Attempts)
	}
	for _, r := range plan.Runs {
		if r.Key() == bad {
			continue
		}
		if got := records[r.Key()]; got == nil || got.Status != StatusOK {
			t.Errorf("healthy run %s disturbed by the panicking one: %+v", r, got)
		}
	}
}

func TestEngineRetryRecovers(t *testing.T) {
	plan := fakePlan(1)
	calls := 0
	eng := &Engine{
		Retries: 2,
		Executor: func(r Run) (*stats.RunStats, json.RawMessage, error) {
			calls++
			if calls < 3 {
				return nil, nil, fmt.Errorf("transient %d", calls)
			}
			return &stats.RunStats{ExecTime: 7}, nil, nil
		},
	}
	records, _, err := eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := records[plan.Runs[0].Key()]
	if rec.Status != StatusOK || rec.Attempts != 3 || rec.Error != "" {
		t.Errorf("retry did not recover: %+v", rec)
	}
}

func TestEngineTimeout(t *testing.T) {
	plan := fakePlan(1)
	eng := &Engine{
		Timeout: 20 * time.Millisecond,
		Executor: func(r Run) (*stats.RunStats, json.RawMessage, error) {
			time.Sleep(5 * time.Second)
			return &stats.RunStats{}, nil, nil
		},
	}
	records, _, err := eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := records[plan.Runs[0].Key()]
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "timeout") {
		t.Errorf("timed-out run not failed: %+v", rec)
	}
}

func TestEngineRetryFailed(t *testing.T) {
	plan := fakePlan(2)
	failKey := plan.Runs[0].Key()
	prior := map[string]*Record{
		failKey: {Key: failKey, Run: plan.Runs[0], Status: StatusFailed, Attempts: 1, Error: "old failure"},
	}
	fake := newFakeExec()

	// Default: journaled failures are skipped.
	eng := &Engine{Prior: prior, Executor: fake.exec}
	records, sum, err := eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if records[failKey].Status != StatusFailed || sum.Executed != 1 {
		t.Errorf("default run re-executed the journaled failure: %+v", sum)
	}

	// RetryFailed re-runs them.
	eng = &Engine{Prior: prior, RetryFailed: true, Executor: fake.exec}
	records, sum, err = eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if records[failKey].Status != StatusOK || sum.Executed != 2 {
		t.Errorf("RetryFailed did not re-execute: %+v, %+v", records[failKey], sum)
	}
}

func TestEngineStopChannel(t *testing.T) {
	plan := fakePlan(50)
	stop := make(chan struct{})
	started := make(chan struct{}, 50)
	eng := &Engine{
		Workers: 1,
		Stop:    stop,
		Executor: func(r Run) (*stats.RunStats, json.RawMessage, error) {
			started <- struct{}{}
			time.Sleep(time.Millisecond)
			return &stats.RunStats{}, nil, nil
		},
	}
	go func() {
		<-started // let one run begin, then interrupt
		close(stop)
	}()
	_, sum, err := eng.Execute(plan)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if sum.Executed == 0 || sum.Executed == len(plan.Runs) {
		t.Errorf("executed %d of %d: want a clean partial run", sum.Executed, len(plan.Runs))
	}
}

func TestEngineProgressReporting(t *testing.T) {
	plan := fakePlan(4)
	fake := newFakeExec()
	var buf bytes.Buffer
	eng := &Engine{Progress: &buf, ProgressEvery: time.Nanosecond, Executor: fake.exec}
	if _, _, err := eng.Execute(plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"runs/s", "ETA", "4/4 complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}
