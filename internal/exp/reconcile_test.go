package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"denovosync/internal/backoff"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

func okRecord(r Run, exec sim.Cycle) *Record {
	return &Record{
		Key: r.Key(), Run: r, Status: StatusOK, Attempts: 1,
		Stats: &stats.RunStats{ExecTime: exec, TotalTraffic: 42},
	}
}

func failedRecord(r Run, attempts int, msg string) *Record {
	return &Record{Key: r.Key(), Run: r, Status: StatusFailed, Attempts: attempts, Error: msg}
}

func TestResultFingerprintIgnoresHostDetail(t *testing.T) {
	r := fakePlan(1).Runs[0]
	a := okRecord(r, 1000)
	b := okRecord(r, 1000)
	b.Attempts = 3                  // retried elsewhere
	b.Fig = "another plan"          // owning plan differs
	b.Error = ""                    // (already empty)
	b.Stats.WallTime = time.Second  // host diagnostics
	b.Stats.EventsPerSec = 123456.0 // stripped by sanitize
	if a.ResultFingerprint() != b.ResultFingerprint() {
		t.Fatalf("fingerprint depends on host/session detail")
	}
	c := okRecord(r, 1001) // a genuinely different result
	if a.ResultFingerprint() == c.ResultFingerprint() {
		t.Fatalf("fingerprint does not see a result difference")
	}
	d := okRecord(r, 1000)
	d.Aux = json.RawMessage(`{"verdict":"other"}`)
	if a.ResultFingerprint() == d.ResultFingerprint() {
		t.Fatalf("fingerprint does not see an aux difference")
	}
}

// The core merge: three journals covering a 6-run grid with overlap, one
// failure superseded by a success, and clean dedup of identical results.
func TestReconcileMergesDisjointAndOverlapping(t *testing.T) {
	plan := fakePlan(6)
	rs := plan.Runs
	a := Source{Name: "worker-a", Records: []*Record{
		okRecord(rs[0], 1000), okRecord(rs[1], 1001), failedRecord(rs[2], 2, "panic: host a"),
	}}
	b := Source{Name: "worker-b", Records: []*Record{
		okRecord(rs[1], 1001), // duplicate of a's result
		okRecord(rs[2], 1002), // supersedes a's failure
		okRecord(rs[3], 1003),
	}}
	c := Source{Name: "worker-c", Records: []*Record{
		okRecord(rs[4], 1004), okRecord(rs[5], 1005),
	}}
	records, sum := Reconcile([]Source{a, b, c})
	if err := sum.Err(); err != nil {
		t.Fatalf("clean merge reported conflicts: %v", err)
	}
	if sum.Unique != 6 || sum.Records != 8 {
		t.Fatalf("summary %+v: want 6 unique of 8 records", sum)
	}
	if sum.Duplicates != 1 || sum.Superseded != 1 {
		t.Fatalf("summary %+v: want 1 duplicate, 1 superseded", sum)
	}
	for i, r := range rs {
		rec := records[r.Key()]
		if rec == nil || rec.Status != StatusOK {
			t.Fatalf("run %d missing or failed after merge: %+v", i, rec)
		}
	}
	if records[rs[2].Key()].Stats.ExecTime != 1002 {
		t.Fatalf("superseded failure did not adopt the success")
	}
}

// Order independence: a success supersedes a failure regardless of which
// journal is read first.
func TestReconcileSuccessBeatsFailureEitherOrder(t *testing.T) {
	r := fakePlan(1).Runs[0]
	ok := Source{Name: "ok", Records: []*Record{okRecord(r, 1000)}}
	bad := Source{Name: "bad", Records: []*Record{failedRecord(r, 3, "boom")}}
	for _, order := range [][]Source{{ok, bad}, {bad, ok}} {
		records, sum := Reconcile(order)
		if rec := records[r.Key()]; rec.Status != StatusOK {
			t.Fatalf("order %s+%s: merged status %s", order[0].Name, order[1].Name, rec.Status)
		}
		if sum.Superseded != 1 {
			t.Fatalf("order %s+%s: superseded=%d", order[0].Name, order[1].Name, sum.Superseded)
		}
	}
}

func TestReconcileCompetingFailuresKeepMostAttempts(t *testing.T) {
	r := fakePlan(1).Runs[0]
	records, sum := Reconcile([]Source{
		{Name: "a", Records: []*Record{failedRecord(r, 1, "first")}},
		{Name: "b", Records: []*Record{failedRecord(r, 4, "second host, different stack")}},
	})
	if err := sum.Err(); err != nil {
		t.Fatalf("differing failure text must not be a conflict: %v", err)
	}
	if rec := records[r.Key()]; rec.Attempts != 4 {
		t.Fatalf("kept the lesser failure: %+v", rec)
	}
}

// The acceptance-criteria case: an identical key with a different result
// is escalated as a structured determinism finding, never merged away.
func TestReconcileConflictIsDeterminismFinding(t *testing.T) {
	plan := fakePlan(2)
	r := plan.Runs[0]
	good := Source{Name: "journal-a", Records: []*Record{okRecord(r, 1000), okRecord(plan.Runs[1], 1001)}}
	evil := Source{Name: "journal-b", Records: []*Record{okRecord(r, 9999)}} // same key, different result
	records, sum := Reconcile([]Source{good, evil})

	if len(sum.Conflicts) != 1 {
		t.Fatalf("want exactly 1 conflict, got %+v", sum.Conflicts)
	}
	c := sum.Conflicts[0]
	if c.Key != r.Key() {
		t.Errorf("conflict names key %s, want %s", c.Key, r.Key())
	}
	if len(c.Results) != 2 {
		t.Fatalf("conflict must list both results: %+v", c.Results)
	}
	blames := c.Results[0].Sources[0] + "+" + c.Results[1].Sources[0]
	if !strings.Contains(blames, "journal-a") || !strings.Contains(blames, "journal-b") {
		t.Errorf("conflict does not blame both journals: %+v", c)
	}
	err := sum.Err()
	if err == nil || !strings.Contains(err.Error(), "determinism conflict") || !strings.Contains(err.Error(), r.Key()) {
		t.Errorf("summary error is not a loud determinism finding: %v", err)
	}
	// The merged map still carries the key (first-seen) for inspection.
	if records[r.Key()] == nil {
		t.Errorf("conflicted key dropped from the merged set")
	}
	// The finding round-trips as JSON (it is journaled by the fabric).
	b, jerr := json.Marshal(c)
	if jerr != nil {
		t.Fatalf("conflict does not marshal: %v", jerr)
	}
	var back Conflict
	if err := json.Unmarshal(b, &back); err != nil || back.Key != c.Key {
		t.Fatalf("conflict does not round-trip: %v", err)
	}
}

// End to end over real files, including a salvaged damaged journal, and
// the single-journal equivalence with OpenJournal's prior map.
func TestReconcileJournals(t *testing.T) {
	plan := fakePlan(4)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.jsonl")
	pathB := filepath.Join(dir, "b.jsonl")

	jA, _, err := OpenJournal(pathA)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan.Runs[:2] {
		if err := jA.Append(okRecord(r, sim.Cycle(1000+r.Iters))); err != nil {
			t.Fatal(err)
		}
	}
	if err := jA.Close(); err != nil {
		t.Fatal(err)
	}
	jB, _, err := OpenJournal(pathB)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plan.Runs[1:] { // overlaps run 1
		if err := jB.Append(okRecord(r, sim.Cycle(1000+r.Iters))); err != nil {
			t.Fatal(err)
		}
	}
	if err := jB.Close(); err != nil {
		t.Fatal(err)
	}

	records, sum, err := ReconcileJournals([]string{pathA, pathB}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Unique != 4 || sum.Duplicates != 1 {
		t.Fatalf("summary %+v: want 4 unique, 1 duplicate", sum)
	}
	if len(records) != 4 {
		t.Fatalf("merged %d records, want 4", len(records))
	}

	// Damage journal B mid-file: strict reconcile refuses, salvage heals.
	writeJournalAppend(t, pathB, "\nCORRUPT LINE\n"+mustLine(t, okRecord(plan.Runs[0], 1001))+"\n")
	if _, _, err := ReconcileJournals([]string{pathA, pathB}, false); err == nil {
		t.Fatalf("strict reconcile accepted a corrupt journal")
	}
	records, sum, err = ReconcileJournals([]string{pathA, pathB}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("salvaged merge has %d records, want 4", len(records))
	}
	// The repair wrote its sidecar.
	if _, _, err := ReconcileJournals([]string{SidecarPath(pathB)}, false); err == nil {
		t.Logf("note: sidecar parses as a journal (harmless)")
	}
}

func mustLine(t *testing.T, rec *Record) string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func writeJournalAppend(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineBackoffDelaysRetries: the engine sleeps the policy's
// deterministic schedule between attempts and a stop request cancels the
// wait.
func TestEngineBackoffDelaysRetries(t *testing.T) {
	plan := fakePlan(1)
	key := plan.Runs[0].Key()
	pol := backoff.Policy{Base: 30 * time.Millisecond, Max: 30 * time.Millisecond, Seed: 5}
	calls := 0
	eng := &Engine{
		Retries: 2,
		Backoff: pol,
		Executor: func(r Run) (*stats.RunStats, json.RawMessage, error) {
			calls++
			if calls < 3 {
				return nil, nil, errTransient
			}
			return &stats.RunStats{ExecTime: 7}, nil, nil
		},
	}
	start := time.Now()
	records, _, err := eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rec := records[key]; rec.Status != StatusOK || rec.Attempts != 3 {
		t.Fatalf("retry with backoff did not recover: %+v", rec)
	}
	// Two waits, each at least nominal/2 = 15ms.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("engine did not observe the backoff schedule: %v elapsed", elapsed)
	}

	// A pre-closed stop channel cancels the retry wait immediately.
	stop := make(chan struct{})
	close(stop)
	slow := backoff.Policy{Base: time.Hour, Seed: 5}
	eng2 := &Engine{
		Retries: 5, Backoff: slow, Stop: stop,
		Executor: func(r Run) (*stats.RunStats, json.RawMessage, error) {
			return nil, nil, errTransient
		},
	}
	start = time.Now()
	records, _, _ = eng2.Execute(plan)
	if time.Since(start) > 10*time.Second {
		t.Fatalf("stopped engine still slept the backoff")
	}
	if rec := records[key]; rec != nil && rec.Status == StatusOK {
		t.Fatalf("cancelled retry reported success")
	}
}

var errTransient = errTransientType{}

type errTransientType struct{}

func (errTransientType) Error() string { return "transient fault" }
