package exp

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"denovosync/internal/harness"
)

// TestFigurePlanMatchesHarness pins the planners against the serial
// harness figure functions: the exp-planned, pool-executed figure must
// render to byte-identical CSV. This is the drift guard that lets
// cmd/paperbench route its grids through exp without changing output.
func TestFigurePlanMatchesHarness(t *testing.T) {
	o := Options{Scale: 10}
	ho := harness.Options{Scale: 10}
	cases := []struct {
		name  string
		cores int
		ref   func() (*harness.Figure, error)
	}{
		{"fig3", 16, func() (*harness.Figure, error) { return harness.Fig3(16, ho) }},
		{"eqchecks", 16, func() (*harness.Figure, error) { return harness.AblationEqChecks(16, ho) }},
		{"invall", 16, func() (*harness.Figure, error) { return harness.AblationInvalidateAll(16, ho) }},
		{"hwparams", 16, func() (*harness.Figure, error) { return harness.AblationBackoffParams(16, ho) }},
	}
	if !testing.Short() {
		cases = append(cases,
			struct {
				name  string
				cores int
				ref   func() (*harness.Figure, error)
			}{"fig7", 0, func() (*harness.Figure, error) { return harness.Fig7(harness.Options{Scale: 25}) }},
		)
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opt := o
			if c.name == "fig7" {
				opt = Options{Scale: 25}
			}
			plan, err := FigurePlan(c.name, c.cores, opt)
			if err != nil {
				t.Fatalf("FigurePlan: %v", err)
			}
			eng := &Engine{Workers: 4}
			records, _, err := eng.Execute(plan)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			got, err := Figure(plan, records)
			if err != nil {
				t.Fatalf("Figure: %v", err)
			}
			want, err := c.ref()
			if err != nil {
				t.Fatalf("harness reference: %v", err)
			}
			var gotCSV, wantCSV bytes.Buffer
			got.CSV(&gotCSV)
			want.CSV(&wantCSV)
			if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
				t.Errorf("exp-planned %s diverges from the harness figure:\n--- exp ---\n%s--- harness ---\n%s",
					c.name, gotCSV.String(), wantCSV.String())
			}
		})
	}
}

func TestFigurePlanUnknown(t *testing.T) {
	if _, err := FigurePlan("fig99", 16, Options{}); err == nil {
		t.Fatal("want error for unknown figure")
	}
	if _, err := FigurePlan("fig3", 12, Options{}); err == nil {
		t.Fatal("want error for unsupported cores")
	}
}

func TestFigureReportsMissingAndFailedRuns(t *testing.T) {
	plan, err := FigurePlan("fig3", 16, Options{Scale: 50})
	if err != nil {
		t.Fatal(err)
	}
	records := map[string]*Record{}
	for i, r := range plan.Runs {
		if i == 0 {
			continue // missing
		}
		rec := &Record{Key: r.Key(), Run: r, Status: StatusOK, Attempts: 1}
		if i == 1 {
			rec.Status, rec.Error = StatusFailed, "panic: boom"
		}
		records[r.Key()] = rec
	}
	_, err = Figure(plan, records)
	if err == nil {
		t.Fatal("Figure accepted an incomplete record set")
	}
	for _, want := range []string{"missing", "panic: boom", "2 of"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestKillAndResumeByteIdenticalCSV is the end-to-end resumability
// guarantee on real simulations: interrupt a sweep grid mid-flight,
// resume it in a second session, and the merged CSV must be
// byte-identical to an uninterrupted serial run of the same plan.
func TestKillAndResumeByteIdenticalCSV(t *testing.T) {
	plan, err := SweepPlan("tatas-counter", 16, 2, []int64{400, 1600})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 6 {
		t.Fatalf("sweep plan has %d runs, want 6", len(plan.Runs))
	}

	// Reference: uninterrupted, serial, no journal.
	refRecords, _, err := (&Engine{Workers: 1}).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := SweepCSV(&refCSV, plan, refRecords); err != nil {
		t.Fatal(err)
	}

	// Interrupted parallel session...
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := (&Engine{Workers: 2, StopAfter: 2, Journal: j, Prior: prior}).Execute(plan)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.Executed >= len(plan.Runs) {
		t.Fatalf("interruption executed the whole grid (%d runs); test is vacuous", sum.Executed)
	}

	// ...then a resumed session completes the rest.
	j, prior, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	records, sum2, err := (&Engine{Workers: 2, Journal: j, Prior: prior}).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if sum2.Resumed != sum.Executed {
		t.Errorf("resume re-executed journaled runs: resumed %d, first session executed %d", sum2.Resumed, sum.Executed)
	}

	var gotCSV bytes.Buffer
	if err := SweepCSV(&gotCSV, plan, records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), refCSV.Bytes()) {
		t.Errorf("kill-and-resume CSV diverges from the uninterrupted run:\n--- resumed ---\n%s--- serial ---\n%s",
			gotCSV.String(), refCSV.String())
	}

	// And the journal alone (reloaded from disk) merges identically.
	reloaded, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*Record{}
	for _, rec := range reloaded {
		byKey[rec.Key] = rec
	}
	var fromDisk bytes.Buffer
	if err := SweepCSV(&fromDisk, plan, byKey); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDisk.Bytes(), refCSV.Bytes()) {
		t.Errorf("journal-merged CSV diverges from the uninterrupted run")
	}
}
